#include "scenario/scenario.h"

#include <cmath>
#include <functional>
#include <numbers>

namespace cmdsmc::scenario {

namespace {

constexpr double kRad = std::numbers::pi / 180.0;

// --- Enum <-> string tables --------------------------------------------------

struct WallName {
  const char* name;
  geom::WallModel model;
};
constexpr WallName kWallNames[] = {
    {"specular", geom::WallModel::kSpecular},
    {"diffuse_isothermal", geom::WallModel::kDiffuseIsothermal},
    {"diffuse_adiabatic", geom::WallModel::kDiffuseAdiabatic},
};

geom::WallModel parse_wall(const std::string& key, const std::string& value) {
  for (const auto& w : kWallNames)
    if (value == w.name) return w.model;
  cli::throw_bad_choice(key, value,
                        {"specular", "diffuse_isothermal", "diffuse_adiabatic"});
}

struct BodyKindName {
  const char* name;
  BodyKind kind;
};
constexpr BodyKindName kBodyKindNames[] = {
    {"none", BodyKind::kNone},           {"wedge", BodyKind::kWedge},
    {"flat_plate", BodyKind::kFlatPlate}, {"cylinder", BodyKind::kCylinder},
    {"biconic", BodyKind::kBiconic},
};

BodyKind parse_body_kind(const std::string& key, const std::string& value) {
  std::vector<std::string> choices;
  for (const auto& k : kBodyKindNames) {
    if (value == k.name) return k.kind;
    choices.push_back(k.name);
  }
  cli::throw_bad_choice(key, value, choices);
}

// --- Override table ----------------------------------------------------------

struct OverrideEntry {
  const char* key;
  const char* help;
  std::function<void(ScenarioSpec&, const std::string&, const std::string&)>
      apply;
};

// Shorthand builders for the table below.
auto set_int(int core::SimConfig::* field) {
  return [field](ScenarioSpec& s, const std::string& k, const std::string& v) {
    s.config.*field = cli::parse_int(k, v);
  };
}
auto set_double(double core::SimConfig::* field) {
  return [field](ScenarioSpec& s, const std::string& k, const std::string& v) {
    s.config.*field = cli::parse_double(k, v);
  };
}
auto set_bool(bool core::SimConfig::* field) {
  return [field](ScenarioSpec& s, const std::string& k, const std::string& v) {
    s.config.*field = cli::parse_bool(k, v);
  };
}
// --- Per-body override table -------------------------------------------------
// Body factory parameters are addressed as body.<key> (body 0) or
// body<N>.<key> (scene body N, the list growing on first mention), so the
// same table serves every body of a multi-body scene.

struct BodyOverrideEntry {
  const char* key;  // suffix after "bodyN."
  const char* help;
  std::function<void(BodySpec&, const std::string&, const std::string&)> apply;
};

auto set_body_double(double BodySpec::* field) {
  return [field](BodySpec& b, const std::string& k, const std::string& v) {
    b.*field = cli::parse_double(k, v);
  };
}

const std::vector<BodyOverrideEntry>& body_override_table() {
  static const std::vector<BodyOverrideEntry> table = {
      {"kind", "body: none|wedge|flat_plate|cylinder|biconic",
       [](BodySpec& b, const std::string& k, const std::string& v) {
         b.kind = parse_body_kind(k, v);
       }},
      {"x0", "body anchor x (leading edge / centre / nose)",
       set_body_double(&BodySpec::x0)},
      {"y0", "body anchor y", set_body_double(&BodySpec::y0)},
      {"chord", "wedge base / plate chord", set_body_double(&BodySpec::chord)},
      {"thickness", "plate thickness", set_body_double(&BodySpec::thickness)},
      {"angle_deg", "wedge angle (degrees)",
       set_body_double(&BodySpec::angle_deg)},
      {"incidence_deg", "plate incidence (degrees)",
       set_body_double(&BodySpec::incidence_deg)},
      {"radius", "cylinder radius", set_body_double(&BodySpec::radius)},
      {"facets", "cylinder facet count",
       [](BodySpec& b, const std::string& k, const std::string& v) {
         b.facets = cli::parse_int(k, v);
       }},
      {"len1", "biconic fore-cone length", set_body_double(&BodySpec::len1)},
      {"angle1_deg", "biconic fore-cone half-angle (degrees)",
       set_body_double(&BodySpec::angle1_deg)},
      {"len2", "biconic aft-cone length", set_body_double(&BodySpec::len2)},
      {"angle2_deg", "biconic aft-cone half-angle (degrees)",
       set_body_double(&BodySpec::angle2_deg)},
      {"wall", "body wall model: specular|diffuse_isothermal|"
               "diffuse_adiabatic",
       [](BodySpec& b, const std::string& k, const std::string& v) {
         b.wall = parse_wall(k, v);
       }},
      {"twall", "body wall temperature as T_wall / T_inf",
       [](BodySpec& b, const std::string& k, const std::string& v) {
         b.wall_temperature_ratio = cli::parse_double(k, v);
       }},
  };
  return table;
}

// Scene bodies addressable through overrides; a backstop against typo'd
// indices allocating absurd lists, not a geometric limit.
constexpr std::size_t kMaxOverrideBodies = 16;

// Parses "body.<suffix>" / "body<N>.<suffix>".  Returns false when the key
// is not body-addressed at all; throws on a valid body prefix with an
// unknown suffix or out-of-range index.
bool apply_body_override(ScenarioSpec& spec, const std::string& key,
                         const std::string& value) {
  if (key.rfind("body", 0) != 0) return false;
  std::size_t i = 4;
  std::size_t index = 0;
  bool has_digits = false;
  while (i < key.size() && key[i] >= '0' && key[i] <= '9') {
    index = index * 10 + static_cast<std::size_t>(key[i] - '0');
    has_digits = true;
    ++i;
    if (index > 1000) break;  // overflow guard; rejected below anyway
  }
  if (i >= key.size() || key[i] != '.') return false;
  if (has_digits && index >= kMaxOverrideBodies)
    throw cli::ArgError(key + ": body index " + std::to_string(index) +
                        " out of range (max " +
                        std::to_string(kMaxOverrideBodies - 1) + ")");
  const std::string suffix = key.substr(i + 1);
  for (const BodyOverrideEntry& e : body_override_table()) {
    if (suffix == e.key) {
      while (index >= spec.bodies.size()) {
        // Bodies appended after a global `twall=` override must still
        // inherit it (the CLI is otherwise silently order-dependent); a
        // later bodyN.twall= still wins.
        BodySpec fresh;
        fresh.wall_temperature_ratio = spec.wall_temperature_ratio;
        spec.bodies.push_back(fresh);
      }
      e.apply(spec.bodies[index], key, value);
      return true;
    }
  }
  std::string keys;
  for (const BodyOverrideEntry& e : body_override_table()) {
    if (!keys.empty()) keys += ", ";
    keys += e.key;
  }
  throw cli::ArgError("unknown body key '" + key + "'; body" +
                      (has_digits ? std::to_string(index) : std::string()) +
                      ".<key> accepts: " + keys);
}

const std::vector<OverrideEntry>& override_table() {
  static const std::vector<OverrideEntry> table = {
      // --- Domain ---
      {"nx", "grid cells in x", set_int(&core::SimConfig::nx)},
      {"ny", "grid cells in y", set_int(&core::SimConfig::ny)},
      {"nz", "grid cells in z (0 = 2D)", set_int(&core::SimConfig::nz)},
      {"axisymmetric",
       "axisymmetric (z-r) mode: y is radius, radially weighted particles "
       "(2D only, generalized bodies centred on r=0)",
       set_bool(&core::SimConfig::axisymmetric)},
      // --- Freestream ---
      {"mach", "freestream Mach number", set_double(&core::SimConfig::mach)},
      {"sigma", "freestream thermal std dev (cells/step)",
       set_double(&core::SimConfig::sigma)},
      {"lambda_inf", "freestream mean free path (cells; 0 = near continuum)",
       set_double(&core::SimConfig::lambda_inf)},
      {"particles_per_cell", "freestream particles per cell",
       set_double(&core::SimConfig::particles_per_cell)},
      {"reservoir_fraction", "extra particles parked in the reservoir",
       set_double(&core::SimConfig::reservoir_fraction)},
      // --- Legacy wedge ---
      {"has_wedge", "enable the legacy wedge body",
       set_bool(&core::SimConfig::has_wedge)},
      {"wedge_x0", "wedge leading edge x (cells)",
       set_double(&core::SimConfig::wedge_x0)},
      {"wedge_base", "wedge base length (cells)",
       set_double(&core::SimConfig::wedge_base)},
      {"wedge_angle_deg", "wedge angle (degrees)",
       set_double(&core::SimConfig::wedge_angle_deg)},
      // --- Gas model ---
      {"potential", "molecular potential: maxwell|inverse_power|hard_sphere",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         if (v == "maxwell")
           s.config.gas.potential = physics::Potential::kMaxwell;
         else if (v == "inverse_power")
           s.config.gas.potential = physics::Potential::kInversePower;
         else if (v == "hard_sphere")
           s.config.gas.potential = physics::Potential::kHardSphere;
         else
           cli::throw_bad_choice(k, v,
                                 {"maxwell", "inverse_power", "hard_sphere"});
       }},
      {"alpha", "inverse-power-law exponent",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.config.gas.alpha = cli::parse_double(k, v);
       }},
      {"vibrational", "enable the vibrational-energy extension",
       set_bool(&core::SimConfig::vibrational)},
      {"vib_exchange_prob", "vibrational exchange probability (1/Z_v)",
       set_double(&core::SimConfig::vib_exchange_prob)},
      {"vib_init_temperature", "initial T_vib / T_inf",
       set_double(&core::SimConfig::vib_init_temperature)},
      // --- Boundaries ---
      {"closed_box", "closed specular box (no sink/source/plunger)",
       set_bool(&core::SimConfig::closed_box)},
      {"upstream", "upstream boundary: plunger|source",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         if (v == "plunger")
           s.config.upstream = geom::UpstreamMode::kPlunger;
         else if (v == "source")
           s.config.upstream = geom::UpstreamMode::kSoftSource;
         else
           cli::throw_bad_choice(k, v, {"plunger", "source"});
       }},
      {"plunger_trigger", "plunger withdrawal trigger (cells)",
       set_double(&core::SimConfig::plunger_trigger)},
      {"wall", "legacy wall model: specular|diffuse_isothermal|"
               "diffuse_adiabatic",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.config.wall = parse_wall(k, v);
       }},
      {"twall", "wall temperature as T_wall / T_inf (all bodies)",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         const double r = cli::parse_double(k, v);
         s.wall_temperature_ratio = r;
         for (BodySpec& b : s.bodies) b.wall_temperature_ratio = r;
       }},
      {"wall_sigma", "diffuse-wall thermal std dev (overrides twall)",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.wall_sigma_override = cli::parse_double(k, v);
       }},
      // --- Algorithm knobs ---
      {"sort_scale", "cell-key scale factor for sort randomization",
       set_int(&core::SimConfig::sort_scale)},
      {"randomize_sort", "randomize the sort key",
       set_bool(&core::SimConfig::randomize_sort)},
      {"transpositions_per_collision", "post-collision transpositions",
       set_int(&core::SimConfig::transpositions_per_collision)},
      {"rounding", "fixed-point rounding: stochastic|truncate",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         if (v == "stochastic")
           s.config.rounding = core::Rounding::kStochastic;
         else if (v == "truncate")
           s.config.rounding = core::Rounding::kTruncate;
         else
           cli::throw_bad_choice(k, v, {"stochastic", "truncate"});
       }},
      {"rng_mode", "low-impact random bits: counter|dirty",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         if (v == "counter")
           s.config.rng_mode = core::RngMode::kCounter;
         else if (v == "dirty")
           s.config.rng_mode = core::RngMode::kDirty;
         else
           cli::throw_bad_choice(k, v, {"counter", "dirty"});
       }},
      {"reservoir_collisions", "collide reservoir particles",
       set_bool(&core::SimConfig::reservoir_collisions)},
      // --- Cell-block sharding / load balancing ---
      {"shard.enable", "cell-block shard load balancing (default 1)",
       set_bool(&core::SimConfig::shard_enable)},
      {"shard.per_lane", "shards per lane (shards = lanes * this)",
       set_int(&core::SimConfig::shard_per_lane)},
      {"shard.threshold", "predicted max/mean imbalance repartition trigger",
       set_double(&core::SimConfig::shard_rebalance_threshold)},
      {"shard.interval", "min steps between repartitions",
       set_int(&core::SimConfig::shard_rebalance_interval)},
      {"shard.collide_weight", "initial pair-vs-particle cost blend",
       set_double(&core::SimConfig::shard_collide_weight)},
      {"shard.adapt", "adapt the cost blend from the phase timers",
       set_bool(&core::SimConfig::shard_adapt)},
      {"seed", "RNG seed (decimal or 0x hex)",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.config.seed = cli::parse_uint64(k, v);
       }},
      // (Body factory keys live in body_override_table(): body.* / bodyN.*)
      // --- Schedule ---
      {"steady", "fixed warmup steps before averaging",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.schedule.steady_steps = cli::parse_int(k, v);
       }},
      {"avg", "time-averaging steps",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.schedule.avg_steps = cli::parse_int(k, v);
       }},
      {"steps", "shorthand: steady=N and avg=N",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         const int n = cli::parse_int(k, v);
         s.schedule.steady_steps = n;
         s.schedule.avg_steps = n;
       }},
      {"auto_steady", "detect steady state instead of a fixed warmup",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.schedule.auto_steady = cli::parse_bool(k, v);
       }},
      {"max_steady", "steady-detection step cap",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.schedule.max_steady_steps = cli::parse_int(k, v);
       }},
      {"precision", "numeric engine: double|fixed",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         if (v == "double")
           s.schedule.precision = Precision::kDouble;
         else if (v == "fixed")
           s.schedule.precision = Precision::kFixed;
         else
           cli::throw_bad_choice(k, v, {"double", "fixed"});
       }},
      // --- Output ---
      {"out", "output file prefix",
       [](ScenarioSpec& s, const std::string&, const std::string& v) {
         s.output_prefix = v;
       }},
      {"sinks", "comma list of ascii|report|json|field_csv|surface_csv|vtk, "
                "or none",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.sinks.clear();
         if (v == "none") return;
         std::size_t start = 0;
         while (start <= v.size()) {
           const std::size_t comma = v.find(',', start);
           const std::string name =
               v.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
           if (name.empty()) throw cli::ArgError(k + ": empty sink name");
           s.sinks.push_back(name);
           if (comma == std::string::npos) break;
           start = comma + 1;
         }
       }},
      // --- Telemetry ---
      {"telemetry", "per-step JSONL metrics stream: a path, or 1/on for "
                    "<out>_telemetry.jsonl; 0/off disables",
       [](ScenarioSpec& s, const std::string&, const std::string& v) {
         s.telemetry_path = (v == "0" || v == "off") ? std::string() : v;
       }},
      {"trace", "Chrome trace-event spans (Perfetto): a path, or 1/on for "
                "<out>_trace.json; 0/off disables",
       [](ScenarioSpec& s, const std::string&, const std::string& v) {
         s.trace_path = (v == "0" || v == "off") ? std::string() : v;
       }},
      {"telemetry_every", "telemetry/trace recording cadence (every Nth step)",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         const int n = cli::parse_int(k, v);
         if (n < 1) throw cli::ArgError(k + ": must be >= 1");
         s.telemetry_every = n;
       }},
      {"progress", "stderr heartbeat: step, particles, us/particle, ETA",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.progress = cli::parse_bool(k, v);
       }},
      // --- Invariant audit ---
      {"audit", "in-situ invariant audit (needs a -DCMDSMC_AUDIT=ON build); "
                "violations abort the run",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         s.audit = cli::parse_bool(k, v);
       }},
      {"audit_every", "audit cadence (check every Nth step)",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         const int n = cli::parse_int(k, v);
         if (n < 1) throw cli::ArgError(k + ": must be >= 1");
         s.audit_every = n;
       }},
      {"audit_tol", "relative tolerance for the audit conservation checks",
       [](ScenarioSpec& s, const std::string& k, const std::string& v) {
         const double t = cli::parse_double(k, v);
         if (!(t > 0.0)) throw cli::ArgError(k + ": must be > 0");
         s.audit_tol = t;
       }},
  };
  return table;
}

// Convenience aliases accepted alongside the canonical field names.
struct Alias {
  const char* alias;
  const char* target;
};
constexpr Alias kAliases[] = {
    {"ppc", "particles_per_cell"},
    {"lambda", "lambda_inf"},
};

const OverrideEntry* find_entry(const std::string& key) {
  std::string canonical = key;
  for (const auto& a : kAliases)
    if (key == a.alias) canonical = a.target;
  for (const auto& e : override_table())
    if (canonical == e.key) return &e;
  return nullptr;
}

// --- Registry ----------------------------------------------------------------

std::vector<ScenarioSpec> make_registry() {
  std::vector<ScenarioSpec> reg;

  {
    // The paper's validation case, on the legacy wedge-specific path so the
    // Runner reproduces examples/wedge_mach4 counters bit-for-bit.
    ScenarioSpec s;
    s.name = "wedge-mach4";
    s.description =
        "Near-continuum Mach 4 flow over the paper's 30-degree wedge "
        "(figs. 1-3): oblique shock at 45 deg, 3.7x density rise";
    s.config.nx = 98;
    s.config.ny = 64;
    s.config.mach = 4.0;
    s.config.sigma = 0.09;
    s.config.lambda_inf = 0.0;
    s.config.particles_per_cell = 16.0;
    s.config.wedge_x0 = 20.0;
    s.config.wedge_base = 25.0;
    s.config.wedge_angle_deg = 30.0;
    s.schedule.steady_steps = 600;
    s.schedule.avg_steps = 600;
    s.sinks = {"ascii", "report", "json"};
    reg.push_back(s);
  }
  {
    ScenarioSpec s = reg.back();
    s.name = "wedge-mach4-rarefied";
    s.description =
        "Rarefied Mach 4 wedge, lambda_inf = 0.5 cells (figs. 4-6): wider "
        "shock, washed-out wake";
    s.config.lambda_inf = 0.5;
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "cylinder-mach10";
    s.description =
        "Mach 10 rarefied flow over a faceted circular cylinder with a "
        "diffuse-isothermal wall; stagnation Cp near the Newtonian limit";
    s.config.nx = 96;
    s.config.ny = 64;
    s.config.mach = 10.0;
    s.config.sigma = 0.12;
    s.config.lambda_inf = 0.5;
    s.config.particles_per_cell = 10.0;
    s.config.has_wedge = false;
    s.config.seed = 0xC1C1ULL;
    s.bodies[0].kind = BodyKind::kCylinder;
    s.bodies[0].x0 = 32.0;
    s.bodies[0].y0 = 32.0;
    s.bodies[0].radius = 8.0;
    s.bodies[0].facets = 36;
    s.bodies[0].wall = geom::WallModel::kDiffuseIsothermal;
    s.bodies[0].wall_temperature_ratio = 1.0;
    s.schedule.steady_steps = 400;
    s.schedule.avg_steps = 400;
    s.sinks = {"ascii", "report", "json", "surface_csv"};
    s.contour_vmax = 6.0;
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "biconic";
    s.description =
        "Mach 6 rarefied flow over a free-flying biconic (25/10 degree "
        "cones), diffuse-isothermal surface";
    s.config.nx = 120;
    s.config.ny = 64;
    s.config.mach = 6.0;
    s.config.sigma = 0.12;
    s.config.lambda_inf = 0.5;
    s.config.particles_per_cell = 8.0;
    s.config.has_wedge = false;
    s.bodies[0].kind = BodyKind::kBiconic;
    s.bodies[0].x0 = 30.0;
    s.bodies[0].y0 = 32.0;
    s.bodies[0].len1 = 20.0;
    s.bodies[0].angle1_deg = 25.0;
    s.bodies[0].len2 = 15.0;
    s.bodies[0].angle2_deg = 10.0;
    s.bodies[0].wall = geom::WallModel::kDiffuseIsothermal;
    s.schedule.steady_steps = 400;
    s.schedule.avg_steps = 400;
    s.sinks = {"ascii", "report", "json", "surface_csv"};
    s.contour_vmax = 6.0;
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "flat-plate-diffuse";
    s.description =
        "Rarefied Mach 4 flow over a thin flat plate at 10 degrees "
        "incidence with diffuse no-slip walls (paper future-work BCs)";
    s.config.nx = 98;
    s.config.ny = 64;
    s.config.mach = 4.0;
    s.config.sigma = 0.12;
    s.config.lambda_inf = 0.5;
    s.config.particles_per_cell = 12.0;
    s.config.has_wedge = false;
    s.bodies[0].kind = BodyKind::kFlatPlate;
    s.bodies[0].x0 = 30.0;
    s.bodies[0].y0 = 28.0;
    s.bodies[0].chord = 30.0;
    s.bodies[0].thickness = 2.0;
    s.bodies[0].incidence_deg = 10.0;
    s.bodies[0].wall = geom::WallModel::kDiffuseIsothermal;
    s.schedule.steady_steps = 400;
    s.schedule.avg_steps = 400;
    s.sinks = {"ascii", "report", "json", "surface_csv"};
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "duct3d";
    s.description =
        "3D duct with a 25-degree compression ramp extruded along z "
        "(paper future work); solution must be z-uniform";
    s.config.nx = 64;
    s.config.ny = 32;
    s.config.nz = 16;
    s.config.mach = 4.0;
    s.config.sigma = 0.12;
    s.config.lambda_inf = 0.5;
    s.config.particles_per_cell = 8.0;
    s.config.reservoir_fraction = 0.2;
    s.config.wedge_x0 = 16.0;
    s.config.wedge_base = 16.0;
    s.config.wedge_angle_deg = 25.0;
    s.schedule.steady_steps = 400;
    s.schedule.avg_steps = 400;
    s.sinks = {"ascii", "report", "json"};
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "reservoir-relax";
    s.description =
        "Closed box of rectangular-velocity gas relaxing to a Maxwellian "
        "through collisions (the paper's reservoir idea)";
    s.config.nx = 16;
    s.config.ny = 16;
    s.config.closed_box = true;
    s.config.has_wedge = false;
    s.config.mach = 0.01;
    s.config.sigma = 0.2;
    s.config.lambda_inf = 0.0;
    s.config.particles_per_cell = 64.0;
    s.config.reservoir_fraction = 0.0;
    s.schedule.steady_steps = 0;
    s.schedule.avg_steps = 20;
    s.schedule.rectangular_start = true;
    s.sinks = {"report", "json"};
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "tandem_cylinders";
    s.description =
        "Mach 10 rarefied flow over two cylinders in tandem (multi-body "
        "scene); per-body Cd/Cl shows the wake shielding of the aft body";
    s.config.nx = 140;
    s.config.ny = 64;
    s.config.mach = 10.0;
    s.config.sigma = 0.12;
    s.config.lambda_inf = 0.5;
    s.config.particles_per_cell = 8.0;
    s.config.has_wedge = false;
    s.config.seed = 0x7A2DE3ULL;
    s.bodies.resize(2);
    for (BodySpec& b : s.bodies) {
      b.kind = BodyKind::kCylinder;
      b.y0 = 32.0;
      b.radius = 6.0;
      b.facets = 36;
      b.wall = geom::WallModel::kDiffuseIsothermal;
      b.wall_temperature_ratio = 1.0;
    }
    s.bodies[0].x0 = 36.0;
    s.bodies[1].x0 = 92.0;
    s.schedule.steady_steps = 400;
    s.schedule.avg_steps = 400;
    s.sinks = {"ascii", "report", "json", "surface_csv"};
    s.contour_vmax = 6.0;
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "biconic_axi";
    s.description =
        "Axisymmetric Mach 6 rarefied flow over a biconic body of "
        "revolution (25/10 degree cones on the r=0 axis): radially "
        "weighted particles, true revolved-body Cd and heat flux";
    s.config.axisymmetric = true;
    s.config.nx = 120;
    s.config.ny = 48;
    s.config.mach = 6.0;
    s.config.sigma = 0.12;
    s.config.lambda_inf = 0.5;
    s.config.particles_per_cell = 8.0;
    s.config.has_wedge = false;
    s.config.seed = 0xA71B1CULL;
    s.bodies[0].kind = BodyKind::kBiconic;
    s.bodies[0].x0 = 30.0;
    s.bodies[0].y0 = 0.0;  // nose on the symmetry axis
    s.bodies[0].len1 = 20.0;
    s.bodies[0].angle1_deg = 25.0;
    s.bodies[0].len2 = 15.0;
    s.bodies[0].angle2_deg = 10.0;
    s.bodies[0].wall = geom::WallModel::kDiffuseIsothermal;
    s.schedule.steady_steps = 400;
    s.schedule.avg_steps = 400;
    s.sinks = {"ascii", "report", "json", "surface_csv"};
    s.contour_vmax = 6.0;
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "sphere_axi";
    s.description =
        "Axisymmetric Mach 6 rarefied flow over a sphere (faceted circle "
        "on the r=0 axis revolved): the canonical free-molecular-drag "
        "validation body";
    s.config.axisymmetric = true;
    s.config.nx = 80;
    s.config.ny = 32;
    s.config.mach = 6.0;
    s.config.sigma = 0.12;
    s.config.lambda_inf = 0.5;
    s.config.particles_per_cell = 8.0;
    s.config.has_wedge = false;
    s.config.seed = 0x5fe3a1ULL;
    s.bodies[0].kind = BodyKind::kCylinder;  // circle about r=0 -> sphere
    s.bodies[0].x0 = 28.0;
    s.bodies[0].y0 = 0.0;
    s.bodies[0].radius = 8.0;
    s.bodies[0].facets = 36;
    s.bodies[0].wall = geom::WallModel::kDiffuseIsothermal;
    s.bodies[0].wall_temperature_ratio = 1.0;
    s.schedule.steady_steps = 400;
    s.schedule.avg_steps = 400;
    s.sinks = {"ascii", "report", "json", "surface_csv"};
    s.contour_vmax = 6.0;
    reg.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "biconic_flare";
    s.description =
        "Mach 6 rarefied biconic with an aft flat-plate flare (multi-body "
        "scene): nose shock impinging on a downstream surface";
    s.config.nx = 140;
    s.config.ny = 64;
    s.config.mach = 6.0;
    s.config.sigma = 0.12;
    s.config.lambda_inf = 0.5;
    s.config.particles_per_cell = 8.0;
    s.config.has_wedge = false;
    s.config.seed = 0xB1F1A2ULL;
    s.bodies.resize(2);
    s.bodies[0].kind = BodyKind::kBiconic;
    s.bodies[0].x0 = 28.0;
    s.bodies[0].y0 = 36.0;
    s.bodies[0].len1 = 20.0;
    s.bodies[0].angle1_deg = 25.0;
    s.bodies[0].len2 = 15.0;
    s.bodies[0].angle2_deg = 10.0;
    s.bodies[0].wall = geom::WallModel::kDiffuseIsothermal;
    s.bodies[1].kind = BodyKind::kFlatPlate;
    s.bodies[1].x0 = 72.0;
    s.bodies[1].y0 = 18.0;
    s.bodies[1].chord = 30.0;
    s.bodies[1].thickness = 2.0;
    s.bodies[1].incidence_deg = 0.0;
    s.bodies[1].wall = geom::WallModel::kDiffuseIsothermal;
    s.schedule.steady_steps = 400;
    s.schedule.avg_steps = 400;
    s.sinks = {"ascii", "report", "json", "surface_csv"};
    s.contour_vmax = 6.0;
    reg.push_back(s);
  }
  return reg;
}

}  // namespace

const char* body_kind_name(BodyKind kind) {
  for (const auto& k : kBodyKindNames)
    if (k.kind == kind) return k.name;
  return "?";
}

// --- BodySpec ----------------------------------------------------------------

std::optional<geom::Body> BodySpec::make(double sigma_inf) const {
  std::optional<geom::Body> body;
  switch (kind) {
    case BodyKind::kNone:
      return std::nullopt;
    case BodyKind::kWedge:
      body = geom::Body::Wedge(x0, chord, angle_deg * kRad);
      break;
    case BodyKind::kFlatPlate:
      body = geom::Body::FlatPlate(x0, y0, chord, thickness,
                                   incidence_deg * kRad);
      break;
    case BodyKind::kCylinder:
      body = geom::Body::Cylinder(x0, y0, radius, facets);
      break;
    case BodyKind::kBiconic:
      body = geom::Body::Biconic(x0, y0, len1, angle1_deg * kRad, len2,
                                 angle2_deg * kRad);
      break;
  }
  if (wall != geom::WallModel::kSpecular)
    body->set_wall_model(wall, sigma_inf * std::sqrt(wall_temperature_ratio));
  return body;
}

// --- ScenarioSpec ------------------------------------------------------------

core::SimConfig ScenarioSpec::build_config() const {
  core::SimConfig cfg = config;
  // T_wall / T_inf -> wall_sigma, from the final sigma (possibly overridden);
  // an explicit wall_sigma override wins.
  cfg.set_wall_temperature_ratio(wall_temperature_ratio);
  if (wall_sigma_override) cfg.wall_sigma = *wall_sigma_override;
  std::vector<geom::Body> made;
  for (std::size_t n = 0; n < bodies.size(); ++n) {
    BodySpec b = bodies[n];
    // `body.kind=wedge` with no explicit geometry upgrades the legacy wedge
    // in place: inherit the config's wedge fields so the two paths describe
    // the same body (body 0 only; extra bodies must be explicit).
    if (n == 0 && b.kind == BodyKind::kWedge && b.chord <= 0.0) {
      b.x0 = cfg.wedge_x0;
      b.chord = cfg.wedge_base;
      b.angle_deg = cfg.wedge_angle_deg;
    }
    if (auto body = b.make(cfg.sigma)) made.push_back(std::move(*body));
  }
  // First body keeps the legacy cfg.body slot; the rest form the scene list.
  cfg.body.reset();
  cfg.bodies.clear();
  if (!made.empty()) {
    cfg.body = std::move(made.front());
    cfg.bodies.assign(std::make_move_iterator(made.begin() + 1),
                      std::make_move_iterator(made.end()));
  }
  cfg.validate();
  return cfg;
}

// --- Registry ----------------------------------------------------------------

const std::vector<ScenarioSpec>& all_scenarios() {
  static const std::vector<ScenarioSpec> registry = make_registry();
  return registry;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& s : all_scenarios())
    if (s.name == name) return &s;
  return nullptr;
}

ScenarioSpec get_scenario(const std::string& name) {
  if (const ScenarioSpec* s = find_scenario(name)) {
    ScenarioSpec copy = *s;
    if (copy.output_prefix.empty()) copy.output_prefix = copy.name;
    return copy;
  }
  std::string names;
  for (const auto& s : all_scenarios()) {
    if (!names.empty()) names += ", ";
    names += s.name;
  }
  throw cli::ArgError("unknown scenario '" + name +
                      "'; run `cmdsmc list` or pick one of: " + names);
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioSpec& s : all_scenarios()) names.push_back(s.name);
  return names;
}

// --- Overrides ---------------------------------------------------------------

const std::vector<std::string>& override_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> k;
    for (const auto& e : override_table()) k.push_back(e.key);
    // Body factory keys, advertised in their body.* spelling (each is also
    // addressable per scene body as body<N>.*).
    for (const auto& e : body_override_table())
      k.push_back(std::string("body.") + e.key);
    return k;
  }();
  return keys;
}

std::string override_help(const std::string& key) {
  // bodyN.suffix / body.suffix routes to the body table.
  if (key.rfind("body", 0) == 0) {
    const std::size_t dot = key.find('.');
    if (dot != std::string::npos) {
      const std::string suffix = key.substr(dot + 1);
      for (const auto& e : body_override_table())
        if (suffix == e.key) return e.help;
    }
  }
  const OverrideEntry* e = find_entry(key);
  return e != nullptr ? e->help : "";
}

void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value) {
  if (apply_body_override(spec, key, value)) return;
  const OverrideEntry* e = find_entry(key);
  if (e == nullptr) cli::throw_unknown_key(key, override_keys());
  e->apply(spec, key, value);
}

void apply_overrides(ScenarioSpec& spec,
                     const std::vector<cli::KeyValue>& overrides) {
  for (const cli::KeyValue& kv : overrides)
    apply_override(spec, kv.key, kv.value);
}

}  // namespace cmdsmc::scenario
