// The unified run driver: one warmup -> steady-detection -> averaging loop
// for every scenario, replacing the per-binary copies in the old examples
// and benches.  Results fan out to pluggable OutputSinks (field CSV,
// surface CSV, VTK, ASCII contour, console report, JSON summary).
#pragma once

#include <array>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cmdp/thread_pool.h"
#include "core/sampling.h"
#include "core/simulation.h"
#include "core/surface_sampling.h"
#include "scenario/scenario.h"

namespace cmdsmc::scenario {

// Everything one run produces, independent of the numeric engine.
struct RunResult {
  std::string scenario;
  core::SimConfig config;    // the final, validated configuration
  Precision precision = Precision::kDouble;

  core::FieldStats field;
  // Present when the run had a body scene (surface sampling on): the scene
  // totals (for a one-body scene: exactly that body's stats).
  std::optional<core::SurfaceStats> surface;
  // Per-body resolution of the same moments (size == scene body count;
  // empty without a scene).
  std::vector<core::SurfaceStats> surfaces;

  core::SimCounters counters;
  std::size_t flow_count = 0;
  std::size_t reservoir_count = 0;
  std::size_t total_count = 0;

  int steady_steps = 0;  // warmup steps actually run
  int avg_steps = 0;
  bool steady_detected = false;  // true when auto_steady converged early

  // Wall-clock phase breakdown (Table A order: move, sort, select, collide,
  // sample) and its sum.  The select slot reads 0 since the PR 3 fusion;
  // reporting folds it into a fused select+collide entry (see
  // select_collide_seconds) and keeps the raw slots for compat.
  std::array<double, 5> phase_seconds{};
  double total_seconds = 0.0;
  double select_collide_seconds() const {
    return phase_seconds[2] + phase_seconds[3];
  }

  // Perf summary: steps actually run (steady + avg) and the run's
  // per-particle step cost.
  std::int64_t total_steps = 0;
  double usec_per_particle_step = 0.0;

  // Cell-block sharding summary at end of run (zeros when sharding was
  // inactive): shard count, cumulative repartitions, and the predicted
  // cost-imbalance pair (current assignment / right after the last
  // repartition).
  unsigned shards = 0;
  std::uint64_t repartitions = 0;
  double imbalance = 0.0;
  double post_repartition_imbalance = 0.0;

  // Invariant audit summary (audit=1 runs only; zeros otherwise).  A
  // completed fatal-mode run always reads violations == 0 — the first
  // violation would have thrown before the result was built.
  bool audit_enabled = false;
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_violations = 0;

  // Peak pressure coefficient over non-embedded segments (0 if no surface).
  double cp_max() const;
  // Same over one body's stats (shared by the per-body JSON/report output).
  static double cp_max_of(const core::SurfaceStats& s);
};

// A result consumer.  Sinks must not mutate the result.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual void write(const RunResult& result) = 0;
};

// <prefix>_{density,t_total,ux,uy}.csv field dumps.
class FieldCsvSink : public OutputSink {
 public:
  explicit FieldCsvSink(std::string prefix) : prefix_(std::move(prefix)) {}
  void write(const RunResult& r) override;

 private:
  std::string prefix_;
};

// <prefix>_surface.csv per-segment coefficients (no-op without a surface).
class SurfaceCsvSink : public OutputSink {
 public:
  explicit SurfaceCsvSink(std::string prefix) : prefix_(std::move(prefix)) {}
  void write(const RunResult& r) override;

 private:
  std::string prefix_;
};

// <prefix>.vtk legacy VTK structured-points dump.
class VtkSink : public OutputSink {
 public:
  explicit VtkSink(std::string prefix) : prefix_(std::move(prefix)) {}
  void write(const RunResult& r) override;

 private:
  std::string prefix_;
};

// ASCII density contour to a stream (default std::cout).
class AsciiContourSink : public OutputSink {
 public:
  explicit AsciiContourSink(std::ostream* os = nullptr, double vmax = 4.5)
      : os_(os), vmax_(vmax) {}
  void write(const RunResult& r) override;

 private:
  std::ostream* os_;
  double vmax_;
};

// Human-readable run report: particle counts, counters, shock metrics for
// wedge scenarios, surface coefficients, phase shares.
class ConsoleReportSink : public OutputSink {
 public:
  explicit ConsoleReportSink(std::ostream* os = nullptr) : os_(os) {}
  void write(const RunResult& r) override;

 private:
  std::ostream* os_;
};

// <prefix>_summary.json machine-readable summary: configuration echoes,
// particle counts, Cd/Cl/Cp_max, incident/reflected heat split, counters
// and phase timings.
class JsonSummarySink : public OutputSink {
 public:
  explicit JsonSummarySink(std::string path) : path_(std::move(path)) {}
  void write(const RunResult& r) override;
  // Serialization shared with tests.
  static std::string to_json(const RunResult& r);

 private:
  std::string path_;
};

// Sink factory for the names accepted by the `sinks=` override: ascii,
// report, json, field_csv, surface_csv, vtk.  Throws cli::ArgError on an
// unknown name.
std::unique_ptr<OutputSink> make_sink(const std::string& name,
                                      const std::string& prefix);

// Drives one scenario end to end: build_config -> Simulation<Real> ->
// warmup (fixed or steady-detected) -> averaging with field/surface
// sampling -> RunResult -> sinks.
class Runner {
 public:
  explicit Runner(ScenarioSpec spec) : spec_(std::move(spec)) {}

  const ScenarioSpec& spec() const { return spec_; }

  void add_sink(std::unique_ptr<OutputSink> sink);
  // Instantiates spec.sinks (with spec.output_prefix) via make_sink.
  void add_spec_sinks();

  // Runs with the spec's precision.  `pool` defaults to the global pool.
  RunResult run(cmdp::ThreadPool* pool = nullptr);

 private:
  template <class Real>
  RunResult run_impl(cmdp::ThreadPool* pool);

  ScenarioSpec spec_;
  std::vector<std::unique_ptr<OutputSink>> sinks_;
};

}  // namespace cmdsmc::scenario
