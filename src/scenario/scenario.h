// Declarative scenario registry: scenarios are data, not main() functions.
//
// A ScenarioSpec bundles everything a run needs — the SimConfig, the body
// factory parameters, the warmup/averaging schedule and the default output
// sinks — under a stable name.  The registry is pre-populated with the
// paper's experiment matrix (wedge-mach4 continuum/rarefied, cylinder,
// biconic, flat plate, 3D duct, reservoir relaxation); examples, benches
// and the `cmdsmc` CLI all configure runs by looking a spec up and applying
// `key=value` overrides, so adding a scenario is a registry entry instead
// of ~100 lines of copied argv/loop/output boilerplate.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cli/args.h"
#include "core/config.h"
#include "geom/body.h"

namespace cmdsmc::scenario {

// Which geom::Body factory builds the scenario's body (kNone = the legacy
// wedge-specific path, or no body at all when config.has_wedge is false).
enum class BodyKind { kNone, kWedge, kFlatPlate, kCylinder, kBiconic };

// The override-syntax name of a kind ("none", "wedge", ...); one table
// shared by parsing, error messages and `cmdsmc list/describe`.
const char* body_kind_name(BodyKind kind);

// Body factory parameters, addressable by name through overrides.  Body 0
// answers both the legacy `body.*` spelling and `body0.*`; additional scene
// bodies are addressed as `body1.*`, `body2.*`, ... (the bodies list grows
// on first mention).
struct BodySpec {
  BodyKind kind = BodyKind::kNone;
  double x0 = 0.0, y0 = 0.0;     // anchor (leading edge / centre / nose)
  double chord = 0.0;            // wedge base or plate chord
  double thickness = 0.0;        // plate thickness
  double angle_deg = 0.0;        // wedge half-angle
  double incidence_deg = 0.0;    // plate incidence to the flow
  double radius = 0.0;           // cylinder radius
  int facets = 36;               // cylinder facet count
  double len1 = 0.0, angle1_deg = 0.0;  // biconic fore cone
  double len2 = 0.0, angle2_deg = 0.0;  // biconic aft cone
  geom::WallModel wall = geom::WallModel::kSpecular;
  // T_wall / T_inf of diffuse segments; the wall standard deviation is
  // derived as sigma_inf * sqrt(ratio) in one place (build_config).
  double wall_temperature_ratio = 1.0;

  // Builds the body (nullopt for kNone).  `sigma_inf` is the freestream
  // thermal standard deviation the wall temperature ratio is referenced to.
  std::optional<geom::Body> make(double sigma_inf) const;
};

// Numeric engine for the run.
enum class Precision { kDouble, kFixed };

// Warmup -> (optional steady detection) -> averaging schedule.
struct RunSchedule {
  int steady_steps = 400;  // fixed warmup length when auto_steady is off
  int avg_steps = 400;
  // When on, the Runner watches windowed means of the flow population and
  // flow energy (core/steady.h) and starts averaging as soon as both are
  // steady, capped at max_steady_steps.
  bool auto_steady = false;
  int max_steady_steps = 4000;
  Precision precision = Precision::kDouble;
  // Replace the initial Maxwellian with the reservoir's rectangular
  // velocity distribution (the reservoir-relax scenario).
  bool rectangular_start = false;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  core::SimConfig config;  // config.body/bodies are never set here; see below
  // The scene's bodies, in order (bodies[0] is the legacy single body;
  // kNone entries are skipped at build time).  Never empty.
  std::vector<BodySpec> bodies{BodySpec{}};
  RunSchedule schedule;
  // T_wall / T_inf of the legacy (non-Body) diffuse walls; config.wall_sigma
  // is derived from the *final* sigma at build_config time, so overriding
  // sigma can no longer silently leave the wall at the 0.18 default.
  double wall_temperature_ratio = 1.0;
  // Explicit wall_sigma override (wall_sigma=... wins over twall=...).
  std::optional<double> wall_sigma_override;
  std::string output_prefix;  // defaults to the scenario name
  // Default output sinks for the CLI (see runner.h make_sink): any of
  // "ascii", "report", "json", "field_csv", "surface_csv", "vtk".
  std::vector<std::string> sinks;
  // Upper end of the ASCII contour's density scale (blunt-body scenarios
  // compress past the wedge's 4.5x).
  double contour_vmax = 4.5;

  // --- Run telemetry (obs/telemetry.h; the Runner attaches the session) ---
  // JSONL metrics stream path; "1"/"on" derive <output_prefix>_telemetry
  // .jsonl; empty = off.
  std::string telemetry_path;
  // Chrome trace-event path; "1"/"on" derive <output_prefix>_trace.json.
  std::string trace_path;
  int telemetry_every = 1;  // record every Nth step
  bool progress = false;    // stderr heartbeat

  // --- Invariant audit (audit/auditor.h; needs a -DCMDSMC_AUDIT=ON build,
  // the Runner rejects audit=1 on a build without the hooks) ---
  bool audit = false;       // attach the in-situ invariant auditor
  int audit_every = 1;      // audit every Nth step
  double audit_tol = 1e-9;  // relative tolerance for conservation checks

  // Final SimConfig: derives the diffuse-wall sigma from the temperature
  // ratio, constructs the body, and validates.  Throws std::invalid_argument
  // on inconsistent parameters.
  core::SimConfig build_config() const;
};

// --- Registry ---------------------------------------------------------------

// The built-in scenarios, in presentation order.
const std::vector<ScenarioSpec>& all_scenarios();

// nullptr when absent.
const ScenarioSpec* find_scenario(const std::string& name);

// Copy of the named spec; throws cli::ArgError listing the valid names.
ScenarioSpec get_scenario(const std::string& name);

std::vector<std::string> scenario_names();

// --- Overrides --------------------------------------------------------------

// Every key apply_override accepts, in table order (for error messages and
// `cmdsmc describe`).  Body factory keys are listed in their `body.*`
// spelling; every one of them is equally addressable per scene body as
// `body<N>.*` (body0.* == body.*).
const std::vector<std::string>& override_keys();

// One-line description of an override key ("" for unknown keys).
std::string override_help(const std::string& key);

// Applies one key=value override onto the spec.  Unknown keys and malformed
// values throw cli::ArgError; nothing is silently ignored.
void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value);

void apply_overrides(ScenarioSpec& spec,
                     const std::vector<cli::KeyValue>& overrides);

}  // namespace cmdsmc::scenario
