#include "scenario/runner.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "audit/auditor.h"
#include "cli/args.h"
#include "core/steady.h"
#include "io/contour.h"
#include "obs/telemetry.h"
#include "io/csv.h"
#include "io/shock_analysis.h"
#include "io/surface_csv.h"
#include "io/vtk.h"
#include "physics/theory.h"
#include "rng/rng.h"
#include "rng/samplers.h"

namespace cmdsmc::scenario {

namespace {

const char* precision_name(Precision p) {
  return p == Precision::kFixed ? "fixed" : "double";
}

// Replaces the initial Maxwellian with the reservoir's rectangular
// distribution (same variance) — what removed particles receive.
template <class Real>
void rectangular_start(core::Simulation<Real>& sim, const core::SimConfig& cfg) {
  using N = physics::Num<Real>;
  rng::SplitMix64 g(cfg.seed ^ 0x7ec7a9ULL);
  auto& s = sim.particles();
  for (std::size_t i = 0; i < s.size(); ++i) {
    s.ux[i] = N::from_double(rng::sample_rectangular(g, cfg.sigma));
    s.uy[i] = N::from_double(rng::sample_rectangular(g, cfg.sigma));
    s.uz[i] = N::from_double(rng::sample_rectangular(g, cfg.sigma));
    s.r0[i] = N::from_double(rng::sample_rectangular(g, cfg.sigma));
    s.r1[i] = N::from_double(rng::sample_rectangular(g, cfg.sigma));
  }
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

double RunResult::cp_max_of(const core::SurfaceStats& s) {
  double best = 0.0;
  for (const auto& seg : s.segments)
    if (!seg.embedded && seg.cp > best) best = seg.cp;
  return best;
}

double RunResult::cp_max() const {
  return surface ? cp_max_of(*surface) : 0.0;
}

// --- Sinks -------------------------------------------------------------------

void FieldCsvSink::write(const RunResult& r) {
  // Axisymmetric runs label the transverse axis as radius.
  const char* y = r.config.axisymmetric ? "r" : "y";
  io::write_field_csv_file(prefix_ + "_density.csv", r.field, r.field.density,
                           "rho", 0, y);
  io::write_field_csv_file(prefix_ + "_t_total.csv", r.field, r.field.t_total,
                           "T", 0, y);
  io::write_field_csv_file(prefix_ + "_ux.csv", r.field, r.field.ux, "ux", 0,
                           y);
  io::write_field_csv_file(prefix_ + "_uy.csv", r.field,
                           r.field.uy, r.config.axisymmetric ? "ur" : "uy", 0,
                           y);
}

void SurfaceCsvSink::write(const RunResult& r) {
  if (!r.surface) return;
  // Multi-body scenes get the per-body layout (leading body/name columns);
  // single-body output keeps the legacy column set.
  if (r.surfaces.size() > 1)
    io::write_scene_surface_csv_file(prefix_ + "_surface.csv", r.surfaces);
  else
    io::write_surface_csv_file(prefix_ + "_surface.csv", *r.surface);
}

void VtkSink::write(const RunResult& r) {
  io::write_vtk(prefix_ + ".vtk", r.field,
                r.config.axisymmetric
                    ? r.scenario + " (axisymmetric z-r; the y axis is radius)"
                    : r.scenario);
}

void AsciiContourSink::write(const RunResult& r) {
  std::ostream& os = os_ != nullptr ? *os_ : std::cout;
  io::ContourOptions opt;
  opt.vmax = vmax_;
  if (r.config.is3d()) opt.z_plane = r.config.nz / 2;
  os << io::render_ascii(r.field, r.field.density, opt) << "\n";
}

void ConsoleReportSink::write(const RunResult& r) {
  std::ostream& os = os_ != nullptr ? *os_ : std::cout;
  std::ostringstream buf;
  char line[256];

  char zdim[16] = "";
  if (r.config.is3d()) std::snprintf(zdim, sizeof zdim, "x%d", r.config.nz);
  std::snprintf(line, sizeof line,
                "%s: %s precision, grid %dx%d%s%s, Mach %.2f, lambda_inf %g\n",
                r.scenario.c_str(), precision_name(r.precision), r.config.nx,
                r.config.ny, zdim,
                r.config.axisymmetric ? " axisymmetric (z-r)" : "",
                r.config.mach, r.config.lambda_inf);
  buf << line;
  std::snprintf(line, sizeof line,
                "particles     : %zu flow + %zu reservoir\n", r.flow_count,
                r.reservoir_count);
  buf << line;
  std::snprintf(line, sizeof line,
                "schedule      : %d steady + %d averaging steps%s\n",
                r.steady_steps, r.avg_steps,
                r.steady_detected ? " (steady state detected)" : "");
  buf << line;
  std::snprintf(line, sizeof line,
                "collisions    : %llu flow + %llu reservoir "
                "(%llu candidates)\n",
                static_cast<unsigned long long>(r.counters.collisions),
                static_cast<unsigned long long>(
                    r.counters.reservoir_collisions),
                static_cast<unsigned long long>(r.counters.candidates));
  buf << line;
  if (r.config.axisymmetric) {
    std::snprintf(line, sizeof line,
                  "weight balance: %llu cloned + %llu merged simulators\n",
                  static_cast<unsigned long long>(r.counters.cloned),
                  static_cast<unsigned long long>(r.counters.merged));
    buf << line;
  }

  // Shock metrics for 2D wedge scenarios (legacy or Body::Wedge: the wedge
  // outline comes from the config either way).
  if (r.config.has_wedge && !r.config.is3d()) {
    namespace th = physics::theory;
    const geom::Wedge wedge(r.config.wedge_x0, r.config.wedge_base,
                            r.config.wedge_angle_rad());
    const auto fit = io::measure_oblique_shock(r.field, wedge);
    if (fit.valid) {
      try {
        const double beta =
            th::oblique_shock_angle(r.config.wedge_angle_rad(), r.config.mach);
        std::snprintf(line, sizeof line,
                      "shock angle   : %6.2f deg (theory %6.2f)\n",
                      fit.angle_deg, beta * 180.0 / std::numbers::pi);
        buf << line;
        std::snprintf(line, sizeof line,
                      "density ratio : %6.2f     (theory %6.2f)\n",
                      fit.density_ratio,
                      th::oblique_shock_density_ratio(beta, r.config.mach));
        buf << line;
      } catch (const std::domain_error&) {
        std::snprintf(line, sizeof line,
                      "shock angle   : %6.2f deg (theory: detached)\n",
                      fit.angle_deg);
        buf << line;
      }
      std::snprintf(line, sizeof line,
                    "shock width   : %4.1f cells (vertical 10-90%%)\n",
                    fit.thickness_vertical);
      buf << line;
    } else {
      buf << "no attached oblique shock detected\n";
    }
    const auto wake = io::measure_wake(r.field, wedge);
    std::snprintf(line, sizeof line, "wake base     : %.3f (%s)\n",
                  wake.base_density,
                  wake.shock_present ? "recompression present"
                                     : "washed out");
    buf << line;
  }

  if (r.surface) {
    std::snprintf(line, sizeof line,
                  "surface       : Cd %.3f  Cl %.3f  Cp_max %.3f\n",
                  r.surface->cd, r.surface->cl, r.cp_max());
    buf << line;
    std::snprintf(line, sizeof line,
                  "wall heating  : %.4f (incident %.4f - reflected %.4f)\n",
                  r.surface->heat_total, r.surface->q_incident_total,
                  r.surface->q_reflected_total);
    buf << line;
    if (r.surfaces.size() > 1) {
      for (const core::SurfaceStats& b : r.surfaces) {
        std::snprintf(line, sizeof line,
                      "  body%d %-8s: Cd %.3f  Cl %.3f  Cp_max %.3f  "
                      "heat %.4f\n",
                      b.body_index, b.body_name.c_str(), b.cd, b.cl,
                      RunResult::cp_max_of(b), b.heat_total);
        buf << line;
      }
    }
  }

  if (r.total_seconds > 0.0) {
    // Selection has been fused into the collide pass since PR 3, so its
    // slot is 0 by design — reporting it as a real phase (as this sink
    // once did) skewed the paper comparison.  Report the fused entry.
    std::snprintf(line, sizeof line,
                  "phase shares  : move %.0f%% sort %.0f%% "
                  "select+collide %.0f%% sample %.0f%% "
                  "(select fused into collide)\n",
                  100.0 * r.phase_seconds[0] / r.total_seconds,
                  100.0 * r.phase_seconds[1] / r.total_seconds,
                  100.0 * r.select_collide_seconds() / r.total_seconds,
                  100.0 * r.phase_seconds[4] / r.total_seconds);
    buf << line;
    if (r.usec_per_particle_step > 0.0) {
      std::snprintf(line, sizeof line,
                    "perf          : %.3f us/particle/step over %lld steps\n",
                    r.usec_per_particle_step,
                    static_cast<long long>(r.total_steps));
      buf << line;
    }
  }
  os << buf.str();
}

std::string JsonSummarySink::to_json(const RunResult& r) {
  std::ostringstream os;
  os.precision(10);
  os << "{\n  \"scenario\": \"";
  json_escape(os, r.scenario);
  os << "\",\n  \"precision\": \"" << precision_name(r.precision) << "\",\n";
  os << "  \"grid\": {\"nx\": " << r.config.nx << ", \"ny\": " << r.config.ny
     << ", \"nz\": " << r.config.nz << "},\n";
  os << "  \"axisymmetric\": " << (r.config.axisymmetric ? "true" : "false")
     << ",\n";
  os << "  \"mach\": " << r.config.mach
     << ",\n  \"sigma\": " << r.config.sigma
     << ",\n  \"lambda_inf\": " << r.config.lambda_inf
     << ",\n  \"particles_per_cell\": " << r.config.particles_per_cell
     << ",\n  \"seed\": " << r.config.seed << ",\n";
  os << "  \"particles\": {\"flow\": " << r.flow_count
     << ", \"reservoir\": " << r.reservoir_count
     << ", \"total\": " << r.total_count << "},\n";
  os << "  \"steps\": {\"steady\": " << r.steady_steps
     << ", \"avg\": " << r.avg_steps << ", \"steady_detected\": "
     << (r.steady_detected ? "true" : "false") << "},\n";
  os << "  \"samples\": " << r.field.samples << ",\n";
  os << "  \"counters\": {\"candidates\": " << r.counters.candidates
     << ", \"collisions\": " << r.counters.collisions
     << ", \"reservoir_collisions\": " << r.counters.reservoir_collisions
     << ", \"removed\": " << r.counters.removed
     << ", \"injected\": " << r.counters.injected
     << ", \"synthesized\": " << r.counters.synthesized
     << ", \"cloned\": " << r.counters.cloned
     << ", \"merged\": " << r.counters.merged << "},\n";
  // "select_collide" is the truthful fused entry (selection fused into the
  // collide pass since PR 3); "select" and "collide" stay as compat aliases
  // for pre-fusion consumers ("select" reads 0 by design).
  os << "  \"phase_seconds\": {\"move\": " << r.phase_seconds[0]
     << ", \"sort\": " << r.phase_seconds[1]
     << ", \"select_collide\": " << r.select_collide_seconds()
     << ", \"select\": " << r.phase_seconds[2]
     << ", \"collide\": " << r.phase_seconds[3]
     << ", \"sample\": " << r.phase_seconds[4]
     << ", \"total\": " << r.total_seconds << "},\n";
  // Per-particle cost and the phase split next to the paper's CM-2 numbers
  // (move 14 / sort 27 / select 20 / collide 39, Table A).
  const double tot = r.total_seconds > 0.0 ? r.total_seconds : 1.0;
  os << "  \"perf\": {\"usec_per_particle_step\": "
     << r.usec_per_particle_step << ", \"steps\": " << r.total_steps
     << ",\n    \"phase_share\": {\"move\": "
     << 100.0 * r.phase_seconds[0] / tot
     << ", \"sort\": " << 100.0 * r.phase_seconds[1] / tot
     << ", \"select_collide\": " << 100.0 * r.select_collide_seconds() / tot
     << ", \"sample\": " << 100.0 * r.phase_seconds[4] / tot
     << "},\n    \"paper_share\": {\"move\": 14, \"sort\": 27, "
        "\"select\": 20, \"collide\": 39},\n    \"shards\": " << r.shards
     << ", \"repartitions\": " << r.repartitions
     << ", \"imbalance\": " << r.imbalance
     << ", \"post_repartition_imbalance\": "
     << r.post_repartition_imbalance << "},\n";
  os << "  \"audit\": {\"enabled\": " << (r.audit_enabled ? "true" : "false")
     << ", \"checks\": " << r.audit_checks
     << ", \"violations\": " << r.audit_violations << "}";
  if (r.surface) {
    os << ",\n  \"surface\": {\"cd\": " << r.surface->cd
       << ", \"cl\": " << r.surface->cl << ", \"cp_max\": " << r.cp_max()
       << ", \"heat_total\": " << r.surface->heat_total
       << ", \"q_incident\": " << r.surface->q_incident_total
       << ", \"q_reflected\": " << r.surface->q_reflected_total
       << ", \"segments\": " << r.surface->segments.size();
    if (!r.surfaces.empty()) {
      // Per-body coefficients, keyed "body0", "body1", ... in scene order.
      os << ",\n    \"bodies\": [";
      for (std::size_t b = 0; b < r.surfaces.size(); ++b) {
        const core::SurfaceStats& s = r.surfaces[b];
        os << (b == 0 ? "" : ", ") << "\n      {\"id\": \"body" << b
           << "\", \"name\": \"";
        json_escape(os, s.body_name);
        os << "\", \"cd\": " << s.cd << ", \"cl\": " << s.cl
           << ", \"cp_max\": " << RunResult::cp_max_of(s)
           << ", \"heat_total\": " << s.heat_total
           << ", \"segments\": " << s.segments.size() << "}";
      }
      os << "\n    ]";
    }
    os << "}";
  }
  os << "\n}\n";
  return os.str();
}

void JsonSummarySink::write(const RunResult& r) {
  std::ofstream os(path_);
  if (!os)
    throw std::runtime_error("JsonSummarySink: cannot open " + path_);
  os << to_json(r);
}

std::unique_ptr<OutputSink> make_sink(const std::string& name,
                                      const std::string& prefix) {
  if (name == "ascii") return std::make_unique<AsciiContourSink>();
  if (name == "report") return std::make_unique<ConsoleReportSink>();
  if (name == "json")
    return std::make_unique<JsonSummarySink>(prefix + "_summary.json");
  if (name == "field_csv") return std::make_unique<FieldCsvSink>(prefix);
  if (name == "surface_csv") return std::make_unique<SurfaceCsvSink>(prefix);
  if (name == "vtk") return std::make_unique<VtkSink>(prefix);
  cli::throw_bad_choice(
      "sinks", name,
      {"ascii", "report", "json", "field_csv", "surface_csv", "vtk"});
}

// --- Runner ------------------------------------------------------------------

void Runner::add_sink(std::unique_ptr<OutputSink> sink) {
  sinks_.push_back(std::move(sink));
}

void Runner::add_spec_sinks() {
  const std::string prefix =
      spec_.output_prefix.empty() ? spec_.name : spec_.output_prefix;
  for (const std::string& name : spec_.sinks) {
    // The ASCII contour takes the spec's density scale (blunt bodies
    // compress past the generic 4.5x default).
    if (name == "ascii")
      add_sink(std::make_unique<AsciiContourSink>(nullptr,
                                                  spec_.contour_vmax));
    else
      add_sink(make_sink(name, prefix));
  }
}

template <class Real>
RunResult Runner::run_impl(cmdp::ThreadPool* pool) {
  RunResult result;
  result.scenario = spec_.name;
  result.precision = spec_.schedule.precision;
  result.config = spec_.build_config();
  const core::SimConfig& cfg = result.config;

  core::Simulation<Real> sim(cfg, pool);
  if (spec_.schedule.rectangular_start) rectangular_start(sim, cfg);

  // Run telemetry: stream per-step metrics / trace spans / the progress
  // heartbeat through a StepObserver for the whole warmup + averaging run.
  std::unique_ptr<obs::TelemetrySession> telemetry;
  if (!spec_.telemetry_path.empty() || !spec_.trace_path.empty() ||
      spec_.progress) {
    const std::string prefix =
        spec_.output_prefix.empty() ? spec_.name : spec_.output_prefix;
    obs::TelemetryOptions topt;
    topt.jsonl_path = spec_.telemetry_path == "1" || spec_.telemetry_path == "on"
                          ? prefix + "_telemetry.jsonl"
                          : spec_.telemetry_path;
    topt.trace_path = spec_.trace_path == "1" || spec_.trace_path == "on"
                          ? prefix + "_trace.json"
                          : spec_.trace_path;
    topt.every = spec_.telemetry_every;
    topt.progress = spec_.progress;
    topt.expected_steps =
        (spec_.schedule.auto_steady ? spec_.schedule.max_steady_steps
                                    : spec_.schedule.steady_steps) +
        spec_.schedule.avg_steps;
    telemetry = std::make_unique<obs::TelemetrySession>(std::move(topt));
    if (!telemetry->ok())
      throw std::runtime_error("telemetry: cannot open output file");
    sim.set_step_observer(telemetry.get());
  }

  // Invariant audit: attach the in-situ auditor.  Usage error (exit 2), not
  // a silent no-op, when the build compiled the step-loop hooks out.
  std::unique_ptr<audit::Auditor<Real>> auditor;
  if (spec_.audit) {
    if (!audit::kAuditCompiled)
      throw cli::ArgError(
          "audit=1 requires an audit-enabled build (configure with "
          "-DCMDSMC_AUDIT=ON)");
    audit::AuditOptions aopt;
    aopt.every = spec_.audit_every;
    aopt.tol = spec_.audit_tol;
    auditor = std::make_unique<audit::Auditor<Real>>(aopt);
    sim.set_auditor(auditor.get());
  }

  // Warmup: fixed length, or adaptive via windowed means of the flow
  // population and flow energy (both must settle).
  if (spec_.schedule.auto_steady) {
    core::SteadyDetector count_det(50, 0.01, 3);
    core::SteadyDetector energy_det(10, 0.01, 3);
    int steps = 0;
    while (steps < spec_.schedule.max_steady_steps) {
      sim.step();
      ++steps;
      const bool count_ok =
          count_det.push(static_cast<double>(sim.flow_count()));
      // The energy sum is O(N); sample it every 10 steps.
      if (steps % 10 == 0) energy_det.push(sim.flow_energy());
      if (count_ok && energy_det.steady()) {
        result.steady_detected = true;
        break;
      }
    }
    result.steady_steps = steps;
  } else {
    sim.run(spec_.schedule.steady_steps);
    result.steady_steps = spec_.schedule.steady_steps;
  }

  sim.set_sampling(true);
  if (cfg.has_body_scene()) sim.set_surface_sampling(true);
  sim.run(spec_.schedule.avg_steps);
  result.avg_steps = spec_.schedule.avg_steps;

  result.field = sim.field();
  if (cfg.has_body_scene()) {
    result.surface = sim.surface();
    result.surfaces = sim.surface_per_body();
  }
  result.counters = sim.counters();
  result.flow_count = sim.flow_count();
  result.reservoir_count = sim.reservoir_count();
  result.total_count = sim.total_count();
  using Sim = core::Simulation<Real>;
  result.phase_seconds = {sim.phase_seconds(Sim::kPhaseMove),
                          sim.phase_seconds(Sim::kPhaseSort),
                          sim.phase_seconds(Sim::kPhaseSelect),
                          sim.phase_seconds(Sim::kPhaseCollide),
                          sim.phase_seconds(Sim::kPhaseSample)};
  result.total_seconds = sim.total_seconds();
  const auto shard_stats = sim.shard_stats();
  result.shards = shard_stats.shards;
  result.repartitions = shard_stats.repartitions;
  result.imbalance = shard_stats.cost_imbalance;
  result.post_repartition_imbalance = shard_stats.post_imbalance;
  result.total_steps = result.steady_steps + result.avg_steps;
  if (result.total_steps > 0 && result.total_count > 0)
    result.usec_per_particle_step =
        result.total_seconds * 1e6 /
        (static_cast<double>(result.total_steps) *
         static_cast<double>(result.total_count));

  if (auditor) {
    result.audit_enabled = true;
    result.audit_checks = auditor->counters().total_checks();
    result.audit_violations = auditor->counters().total_violations();
    sim.set_auditor(nullptr);
  }

  if (telemetry) {
    sim.set_step_observer(nullptr);
    telemetry->finish();
  }

  for (auto& sink : sinks_) sink->write(result);
  return result;
}

RunResult Runner::run(cmdp::ThreadPool* pool) {
  if (spec_.schedule.precision == Precision::kFixed)
    return run_impl<fixedpoint::Fixed32>(pool);
  return run_impl<double>(pool);
}

}  // namespace cmdsmc::scenario
