// Uniform cell grid (2D or quasi-3D), cell width 1 (paper: "a rectangular
// grid of square cells of unit normal width").
#pragma once

#include <cstdint>
#include <stdexcept>

namespace cmdsmc::geom {

struct Grid {
  int nx = 0;
  int ny = 0;
  int nz = 0;  // 0 => 2D

  bool is3d() const { return nz > 0; }
  std::int64_t ncells() const {
    return static_cast<std::int64_t>(nx) * ny * (is3d() ? nz : 1);
  }

  // Cell index of a clamped integer coordinate triple.
  std::uint32_t index(int ix, int iy, int iz = 0) const {
    if (ix < 0) ix = 0;
    if (ix >= nx) ix = nx - 1;
    if (iy < 0) iy = 0;
    if (iy >= ny) iy = ny - 1;
    if (is3d()) {
      if (iz < 0) iz = 0;
      if (iz >= nz) iz = nz - 1;
      return static_cast<std::uint32_t>((static_cast<std::int64_t>(iz) * ny +
                                         iy) *
                                            nx +
                                        ix);
    }
    return static_cast<std::uint32_t>(iy * nx + ix);
  }

  int cell_ix(std::uint32_t cell) const { return static_cast<int>(cell % nx); }
  int cell_iy(std::uint32_t cell) const {
    return static_cast<int>((cell / nx) % ny);
  }
  int cell_iz(std::uint32_t cell) const {
    return is3d() ? static_cast<int>(cell / (static_cast<std::uint32_t>(nx) *
                                             ny))
                  : 0;
  }

  void validate() const {
    if (nx <= 0 || ny <= 0 || nz < 0)
      throw std::invalid_argument("Grid: nx, ny must be positive, nz >= 0");
    if (ncells() > (std::int64_t{1} << 31))
      throw std::invalid_argument("Grid: too many cells for 32-bit indices");
  }
};

}  // namespace cmdsmc::geom
