#include "geom/wedge.h"

#include <cmath>
#include <stdexcept>

#include "geom/clip.h"

namespace cmdsmc::geom {

Wedge::Wedge(double x0, double base, double angle_rad)
    : x0_(x0), base_(base), angle_(angle_rad), tan_(std::tan(angle_rad)) {
  if (base <= 0.0)
    throw std::invalid_argument("Wedge: base must be positive");
  if (angle_rad <= 0.0 || angle_rad >= std::atan(1.0) * 2.0)
    throw std::invalid_argument("Wedge: angle must be in (0, 90) degrees");
  // Hypotenuse direction (cos a, sin a); outward normal (-sin a, cos a).
  hx_ = -std::sin(angle_rad);
  hy_ = std::cos(angle_rad);
}

double Wedge::surface_y(double x) const {
  if (x <= x0_ || x >= apex_x()) return 0.0;
  return (x - x0_) * tan_;
}

bool Wedge::inside(double x, double y) const {
  return x > x0_ && x < apex_x() && y > 0.0 && y < (x - x0_) * tan_;
}

std::optional<SurfaceHit> Wedge::nearest_face(double x, double y) const {
  if (!inside(x, y)) return std::nullopt;
  // Signed distance to the hypotenuse plane through A with normal (hx, hy):
  // negative inside the solid.
  const double d_hyp = (x - x0_) * hx_ + y * hy_;
  // Signed distance to the back face plane x = apex_x with outward normal
  // (+1, 0): negative inside.
  const double d_back = x - apex_x();
  // Floor is the wind-tunnel wall, not a wedge face; the only candidate
  // faces are the hypotenuse and the back face.
  if (d_hyp >= d_back) {  // both negative; larger = shallower penetration
    return SurfaceHit{hx_, hy_, d_hyp};
  }
  return SurfaceHit{1.0, 0.0, d_back};
}

double Wedge::cell_open_fraction(int ix, int iy) const {
  const std::vector<Vec2> tri = {
      {x0_, 0.0}, {apex_x(), 0.0}, {apex_x(), height()}};
  const double solid =
      intersection_area_rect(tri, ix, iy, ix + 1.0, iy + 1.0);
  double open = 1.0 - solid;
  if (open < 0.0) open = 0.0;
  if (open > 1.0) open = 1.0;
  return open;
}

std::vector<double> Wedge::open_fraction_table(const Grid& grid) const {
  std::vector<double> table(static_cast<std::size_t>(grid.ncells()), 1.0);
  // Only cells overlapping the wedge bounding box need clipping.
  const int ix_lo = static_cast<int>(std::floor(x0_));
  const int ix_hi = static_cast<int>(std::ceil(apex_x()));
  const int iy_hi = static_cast<int>(std::ceil(height()));
  const int nz = grid.is3d() ? grid.nz : 1;
  for (int ix = ix_lo; ix < ix_hi && ix < grid.nx; ++ix) {
    if (ix < 0) continue;
    for (int iy = 0; iy < iy_hi && iy < grid.ny; ++iy) {
      const double f = cell_open_fraction(ix, iy);
      for (int iz = 0; iz < nz; ++iz)
        table[grid.index(ix, iy, iz)] = f;
    }
  }
  return table;
}

}  // namespace cmdsmc::geom
