// Wind-tunnel boundary system (paper: "Boundary Conditions" and "Particle
// Motion and Boundary Interaction").
//
// Hard boundaries: tunnel floor/ceiling (specular), the body (the paper's
// wedge, or any geom::Body; specular by default, with the paper's
// future-work no-slip diffuse isothermal/adiabatic walls as options), and
// the upstream *plunger* — a hard boundary moving with the freestream that
// is withdrawn when it crosses a trigger point, the void behind it being
// refilled with reservoir particles.
//
// Soft boundaries: the downstream sink (supersonic outflow; exiting particles
// are removed to the reservoir) and, alternatively to the plunger, a soft
// upstream source (the vector-architecture variant the paper describes).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/body.h"
#include "geom/grid.h"
#include "geom/scene.h"
#include "geom/wedge.h"

namespace cmdsmc::geom {

enum class UpstreamMode {
  kPlunger,     // hard moving boundary (the paper's parallel-machine choice)
  kSoftSource,  // density-controlled inflow strip (vector-machine choice)
};

// The upstream plunger.  Starts at x = 0, advances with the freestream, and
// is withdrawn the instant it crosses `trigger`.
struct Plunger {
  double x = 0.0;
  double speed = 0.0;
  double trigger = 3.0;

  // Advances one time step.  Returns the void width (> 0) if the plunger
  // retracted this step, else 0.  Withdrawal happens at the crossing moment,
  // so each void is exactly `trigger` wide and the overshoot carries over as
  // the restarted plunger's head start (returning the post-overshoot x would
  // conflate the trigger point with the void width).  When speed > trigger
  // the plunger can cross more than once per step; the loop keeps x bounded
  // by trigger instead of drifting downstream.
  double advance() {
    x += speed;
    double width = 0.0;
    while (x >= trigger) {
      width += trigger;
      x -= trigger;
    }
    return width;
  }
};

// Double-precision working copy of one particle's state for boundary math.
struct ParticleState {
  double x = 0.0, y = 0.0, z = 0.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  double r0 = 0.0, r1 = 0.0;
};

// One reflection off a body face, in wall-transfer convention: dp/de are the
// momentum/energy the particle *gave to the wall* (incoming minus outgoing).
// The incident/reflected split (normal momentum and total energy of the
// arriving vs departing particle) is kept separately so accommodation
// studies can compare what the stream delivers against what the surface
// re-emits; dp/de remain the authoritative net transfer.  `segment` is the
// *scene-wide flat* segment index (Scene::segment_base(body) + local), so
// one contiguous accumulator covers every body in the scene.
struct WallEvent {
  int segment = -1;
  double dpx = 0.0;
  double dpy = 0.0;
  double de = 0.0;
  double p_in = 0.0;   // incident normal momentum (> 0 toward the wall)
  double p_out = 0.0;  // reflected normal momentum (> 0 away from the wall)
  double e_in = 0.0;   // incident kinetic + internal energy
  double e_out = 0.0;  // reflected energy (== e_in for specular/adiabatic)
};

// Fixed-capacity per-particle recorder (a particle can touch the body more
// than once per step near corners; 4 boundary passes bound the count).
struct WallEventBuffer {
  static constexpr int kCapacity = 4;
  int count = 0;
  WallEvent events[kCapacity];

  void add(int segment, double dpx, double dpy, double de, double p_in = 0.0,
           double p_out = 0.0, double e_in = 0.0, double e_out = 0.0) {
    if (count < kCapacity)
      events[count++] =
          WallEvent{segment, dpx, dpy, de, p_in, p_out, e_in, e_out};
  }
};

struct BoundaryConfig {
  double x_max = 0.0;  // downstream sink plane
  double y_max = 0.0;  // ceiling
  double z_max = 0.0;  // 3D side walls; <= 0 disables z handling
  // Body geometry: a multi-body Scene (takes precedence when non-empty; a
  // legacy single body is a one-body scene); the Wedge pointer remains for
  // the wedge-specific code path.
  const Scene* scene = nullptr;
  const Wedge* wedge = nullptr;
  double plunger_x = 0.0;      // current plunger face (0 = inactive wall at 0)
  double plunger_speed = 0.0;  // freestream speed (for moving-frame reflect)
  bool plunger_active = false;
  // Wall model of the legacy wedge path (Body segments carry their own).
  WallModel wall = WallModel::kSpecular;
  double wall_sigma = 0.0;  // thermal std dev of diffuse walls
  // Closed-box mode: the downstream plane becomes a specular wall instead of
  // a sink (used by conservation tests and the baseline comparisons).
  bool closed = false;
};

// Applies every wall/body interaction to a tentatively moved particle.
// Returns false if the particle left through the downstream sink (caller
// removes it to the reservoir).  `rand_bits` seeds any sampling needed by
// diffuse walls.  When `events` is non-null, every body-face reflection is
// recorded there for surface-flux accumulation.
bool enforce_boundaries(ParticleState& p, const BoundaryConfig& bc,
                        std::uint64_t rand_bits,
                        WallEventBuffer* events = nullptr);

// Per-cell interior mask for the move-phase fast path.  mask[c] != 0 means
// no boundary — domain face, upstream wall anywhere in its sweep range, any
// scene body or the wedge — is reachable from anywhere inside cell c by a
// displacement of at most `max_disp` cells per axis.  A particle in a masked
// cell moving slower than that bound provably needs no boundary enforcement
// this step (enforce_boundaries would return true without touching it).
//
// `upstream_reach` is the largest x the upstream hard wall can occupy: the
// plunger trigger plus one step of sweep for the plunger mode, 0 for the
// fixed wall / soft source.  Cells adjacent to any boundary (closer than
// max_disp) are never masked; the mask is geometry-only and step-invariant.
std::vector<std::uint8_t> interior_cell_mask(const Grid& grid,
                                             const BoundaryConfig& bc,
                                             double upstream_reach,
                                             double max_disp);

}  // namespace cmdsmc::geom
