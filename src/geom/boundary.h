// Wind-tunnel boundary system (paper: "Boundary Conditions" and "Particle
// Motion and Boundary Interaction").
//
// Hard boundaries: tunnel floor/ceiling (specular), the wedge body (specular
// by default; the paper's future-work no-slip diffuse isothermal/adiabatic
// walls are implemented as options), and the upstream *plunger* — a hard
// boundary moving with the freestream that is withdrawn when it crosses a
// trigger point, the void behind it being refilled with reservoir particles.
//
// Soft boundaries: the downstream sink (supersonic outflow; exiting particles
// are removed to the reservoir) and, alternatively to the plunger, a soft
// upstream source (the vector-architecture variant the paper describes).
#pragma once

#include <cstdint>

#include "geom/wedge.h"

namespace cmdsmc::geom {

enum class WallModel {
  kSpecular,           // inviscid: mirror reflection (paper's validation mode)
  kDiffuseIsothermal,  // full accommodation to a fixed wall temperature
  kDiffuseAdiabatic,   // diffuse directions, particle energy preserved
};

enum class UpstreamMode {
  kPlunger,     // hard moving boundary (the paper's parallel-machine choice)
  kSoftSource,  // density-controlled inflow strip (vector-machine choice)
};

// The upstream plunger.  Starts at x = 0, advances with the freestream, and
// retracts once it crosses `trigger`, reporting the void width to refill.
struct Plunger {
  double x = 0.0;
  double speed = 0.0;
  double trigger = 3.0;

  // Advances one time step.  Returns the void width (> 0) if the plunger
  // retracted this step, else 0.
  double advance() {
    x += speed;
    if (x >= trigger) {
      const double width = x;
      x = 0.0;
      return width;
    }
    return 0.0;
  }
};

// Double-precision working copy of one particle's state for boundary math.
struct ParticleState {
  double x = 0.0, y = 0.0, z = 0.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  double r0 = 0.0, r1 = 0.0;
};

struct BoundaryConfig {
  double x_max = 0.0;  // downstream sink plane
  double y_max = 0.0;  // ceiling
  double z_max = 0.0;  // 3D side walls; <= 0 disables z handling
  const Wedge* wedge = nullptr;
  double plunger_x = 0.0;      // current plunger face (0 = inactive wall at 0)
  double plunger_speed = 0.0;  // freestream speed (for moving-frame reflect)
  bool plunger_active = false;
  WallModel wall = WallModel::kSpecular;
  double wall_sigma = 0.0;  // thermal std dev of diffuse walls
  // Closed-box mode: the downstream plane becomes a specular wall instead of
  // a sink (used by conservation tests and the baseline comparisons).
  bool closed = false;
};

// Applies every wall/body interaction to a tentatively moved particle.
// Returns false if the particle left through the downstream sink (caller
// removes it to the reservoir).  `rand_bits` seeds any sampling needed by
// diffuse walls.
bool enforce_boundaries(ParticleState& p, const BoundaryConfig& bc,
                        std::uint64_t rand_bits);

}  // namespace cmdsmc::geom
