#include "geom/body.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace cmdsmc::geom {

namespace {

constexpr double kEps = 1e-12;

}  // namespace

Body::Body(std::vector<Vec2> vertices, std::string name)
    : name_(std::move(name)), vertices_(std::move(vertices)) {
  const std::size_t n = vertices_.size();
  if (n < 3) throw std::invalid_argument("Body: need at least 3 vertices");
  area_ = polygon_area(vertices_);
  if (area_ <= kEps)
    throw std::invalid_argument(
        "Body: vertices must wind counter-clockwise with positive area");
  xmin_ = ymin_ = std::numeric_limits<double>::infinity();
  xmax_ = ymax_ = -std::numeric_limits<double>::infinity();
  segments_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& p = vertices_[i];
    const Vec2& q = vertices_[(i + 1) % n];
    const double dx = q.x - p.x;
    const double dy = q.y - p.y;
    const double len = std::hypot(dx, dy);
    if (len <= kEps)
      throw std::invalid_argument("Body: zero-length edge");
    BodySegment s;
    s.x0 = p.x;
    s.y0 = p.y;
    s.x1 = q.x;
    s.y1 = q.y;
    s.tx = dx / len;
    s.ty = dy / len;
    // Counter-clockwise winding: outward normal is the tangent rotated -90.
    s.nx = s.ty;
    s.ny = -s.tx;
    s.length = len;
    segments_.push_back(s);
    if (p.x < xmin_) xmin_ = p.x;
    if (p.x > xmax_) xmax_ = p.x;
    if (p.y < ymin_) ymin_ = p.y;
    if (p.y > ymax_) ymax_ = p.y;
  }
  ref_length_ = xmax_ - xmin_;  // generic default; factories override
  // Convex iff every turn is a left turn (allowing collinear edges).
  convex_ = true;
  for (std::size_t i = 0; i < n; ++i) {
    const BodySegment& a = segments_[i];
    const BodySegment& b = segments_[(i + 1) % n];
    if (a.tx * b.ty - a.ty * b.tx < -kEps) {
      convex_ = false;
      break;
    }
  }
}

Body Body::Wedge(double x0, double base, double angle_rad) {
  if (base <= 0.0)
    throw std::invalid_argument("Body::Wedge: base must be positive");
  if (angle_rad <= 0.0 || angle_rad >= std::atan(1.0) * 2.0)
    throw std::invalid_argument("Body::Wedge: angle must be in (0, 90) deg");
  const double h = base * std::tan(angle_rad);
  Body b({{x0, 0.0}, {x0 + base, 0.0}, {x0 + base, h}}, "wedge");
  b.segments_[0].embedded = true;  // floor edge: the tunnel wall owns it
  return b;
}

void Body::set_ref_length(double length) {
  if (length <= 0.0)
    throw std::invalid_argument("Body::set_ref_length: must be positive");
  ref_length_ = length;
}

Body Body::FlatPlate(double x0, double y0, double chord, double thickness,
                     double incidence_rad) {
  if (chord <= 0.0 || thickness <= 0.0)
    throw std::invalid_argument(
        "Body::FlatPlate: chord and thickness must be positive");
  const double c = std::cos(-incidence_rad);
  const double s = std::sin(-incidence_rad);
  // Rectangle in plate coordinates, rotated by -incidence about the leading
  // edge (positive incidence pitches the nose up into a -x flow... here the
  // flow comes from -x, so positive incidence drops the trailing edge).
  const Vec2 local[4] = {
      {0.0, 0.0}, {chord, 0.0}, {chord, thickness}, {0.0, thickness}};
  std::vector<Vec2> v;
  v.reserve(4);
  for (const Vec2& p : local)
    v.push_back({x0 + p.x * c - p.y * s, y0 + p.x * s + p.y * c});
  Body b(std::move(v), "flat_plate");
  b.ref_length_ = chord;  // true chord, not the incidence-shrunk x-extent
  return b;
}

Body Body::Cylinder(double cx, double cy, double radius, int n_facets) {
  if (radius <= 0.0)
    throw std::invalid_argument("Body::Cylinder: radius must be positive");
  if (n_facets < 8)
    throw std::invalid_argument("Body::Cylinder: need at least 8 facets");
  std::vector<Vec2> v;
  v.reserve(static_cast<std::size_t>(n_facets));
  for (int i = 0; i < n_facets; ++i) {
    const double a = 2.0 * std::numbers::pi *
                     (static_cast<double>(i) / n_facets);
    v.push_back({cx + radius * std::cos(a), cy + radius * std::sin(a)});
  }
  Body b(std::move(v), "cylinder");
  b.ref_length_ = 2.0 * radius;  // diameter, independent of faceting
  return b;
}

Body Body::Biconic(double x0, double y_axis, double len1, double angle1_rad,
                   double len2, double angle2_rad) {
  if (len1 <= 0.0 || len2 <= 0.0)
    throw std::invalid_argument("Body::Biconic: lengths must be positive");
  if (angle1_rad <= 0.0 || angle2_rad <= 0.0 ||
      angle1_rad >= std::atan(1.0) * 2.0 || angle2_rad >= std::atan(1.0) * 2.0)
    throw std::invalid_argument("Body::Biconic: angles must be in (0, 90) deg");
  const double h1 = len1 * std::tan(angle1_rad);
  const double h2 = h1 + len2 * std::tan(angle2_rad);
  const double xj = x0 + len1;        // cone junction
  const double xb = x0 + len1 + len2;  // base plane
  // Counter-clockwise starting from the nose: lower fore cone, lower aft
  // cone, base, upper aft cone, upper fore cone.
  return Body({{x0, y_axis},
               {xj, y_axis - h1},
               {xb, y_axis - h2},
               {xb, y_axis + h2},
               {xj, y_axis + h1}},
              "biconic");
}

void Body::set_wall_model(WallModel model, double wall_sigma) {
  for (BodySegment& s : segments_) {
    s.wall = model;
    s.wall_sigma = wall_sigma;
  }
}

void Body::set_segment_wall(int segment, WallModel model, double wall_sigma) {
  if (segment < 0 || segment >= segment_count())
    throw std::out_of_range("Body::set_segment_wall: bad segment index");
  segments_[static_cast<std::size_t>(segment)].wall = model;
  segments_[static_cast<std::size_t>(segment)].wall_sigma = wall_sigma;
}

bool Body::any_diffuse() const {
  for (const BodySegment& s : segments_)
    if (!s.embedded && s.wall != WallModel::kSpecular) return true;
  return false;
}

bool Body::inside(double x, double y) const {
  // Boundary-inclusive bbox: a vertex lying exactly on the bounding box
  // (a cylinder's extreme points) must fall through to the facet tests.
  if (x < xmin_ || x > xmax_ || y < ymin_ || y > ymax_) return false;
  if (convex_) {
    // Outside iff strictly beyond some face.  The un-normalized cross form
    // (x - x0, y - y0) x (x1 - x0, y1 - y0) evaluates to exactly 0.0 at
    // *both* endpoints of every facet (fl(a*b) - fl(b*a) == 0), so a point
    // on a shared vertex is claimed — with the normalized-normal form the
    // end-vertex test rounds to +-1 ulp and adjacent faces can each disown
    // the vertex, letting a surface-riding particle tunnel through.
    for (const BodySegment& s : segments_) {
      const double cross =
          (x - s.x0) * (s.y1 - s.y0) - (y - s.y0) * (s.x1 - s.x0);
      if (cross > 0.0) return false;
    }
    return true;
  }
  // Exact on-boundary check first (shared vertices / edges are claimed),
  // then the even-odd crossing test for general simple polygons.
  for (const BodySegment& s : segments_) {
    const double dx = s.x1 - s.x0;
    const double dy = s.y1 - s.y0;
    const double rx = x - s.x0;
    const double ry = y - s.y0;
    if (rx * dy - ry * dx != 0.0) continue;  // off this edge's line
    const double t = rx * dx + ry * dy;
    if (t >= 0.0 && t <= dx * dx + dy * dy) return true;
  }
  bool in = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[j];
    if ((a.y > y) != (b.y > y)) {
      const double xint = a.x + (y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x < xint) in = !in;
    }
  }
  return in;
}

std::optional<BodyHit> Body::nearest_face(double x, double y) const {
  if (!inside(x, y)) return std::nullopt;
  const BodyHit hit = nearest_face_inside(x, y);
  if (hit.segment < 0) return std::nullopt;  // all faces embedded
  return hit;
}

BodyHit Body::nearest_face_inside(double x, double y) const {
  // Pick the candidate face whose *segment* (not infinite plane) is closest;
  // report the plane depth so the caller can mirror about the face plane.
  // Strict `<` keeps the lowest segment index on exact ties (a shared
  // vertex), so the claim is deterministic.
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (int i = 0; i < segment_count(); ++i) {
    const BodySegment& s = segments_[static_cast<std::size_t>(i)];
    if (s.embedded) continue;
    const double rx = x - s.x0;
    const double ry = y - s.y0;
    double t = rx * s.tx + ry * s.ty;
    if (t < 0.0) t = 0.0;
    if (t > s.length) t = s.length;
    const double dx = rx - t * s.tx;
    const double dy = ry - t * s.ty;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  if (best < 0) return BodyHit{};  // all faces embedded (degenerate body)
  const BodySegment& s = segments_[static_cast<std::size_t>(best)];
  double depth = (x - s.x0) * s.nx + (y - s.y0) * s.ny;
  // Near a vertex the plane distance can differ from the segment distance;
  // clamp so callers always see a penetration.
  if (depth > -kEps) depth = -std::sqrt(best_d2);
  return BodyHit{best, s.nx, s.ny, depth};
}

double Body::solid_area_in_rect(double rx0, double ry0, double rx1,
                                double ry1) const {
  // Fan decomposition with signed clipped areas handles convex and simple
  // non-convex polygons alike: triangle (v0, vi, vi+1) keeps its winding
  // through Sutherland-Hodgman clipping, so the signed areas sum to the
  // polygon/rect intersection area.
  double acc = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const std::vector<Vec2> tri = {vertices_[0], vertices_[i],
                                   vertices_[i + 1]};
    acc += polygon_area(clip_rect(tri, rx0, ry0, rx1, ry1));
  }
  return acc;
}

double Body::cell_open_fraction(int ix, int iy) const {
  const double solid = solid_area_in_rect(ix, iy, ix + 1.0, iy + 1.0);
  double open = 1.0 - solid;
  if (open < 0.0) open = 0.0;
  if (open > 1.0) open = 1.0;
  return open;
}

std::vector<double> Body::open_fraction_table(const Grid& grid) const {
  std::vector<double> table(static_cast<std::size_t>(grid.ncells()), 1.0);
  const int ix_lo = static_cast<int>(std::floor(xmin_));
  const int ix_hi = static_cast<int>(std::ceil(xmax_));
  const int iy_lo = static_cast<int>(std::floor(ymin_));
  const int iy_hi = static_cast<int>(std::ceil(ymax_));
  const int nz = grid.is3d() ? grid.nz : 1;
  for (int ix = ix_lo; ix < ix_hi && ix < grid.nx; ++ix) {
    if (ix < 0) continue;
    for (int iy = iy_lo; iy < iy_hi && iy < grid.ny; ++iy) {
      if (iy < 0) continue;
      const double f = cell_open_fraction(ix, iy);
      for (int iz = 0; iz < nz; ++iz)
        table[grid.index(ix, iy, iz)] = f;
    }
  }
  return table;
}

}  // namespace cmdsmc::geom
