#include "geom/scene.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cmdsmc::geom {

std::uint64_t fnv1a_hash(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  return fnv1a_hash(h, v);
}

std::uint64_t fnv1a(std::uint64_t h, double v) {
  return fnv1a_hash(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

bool segment_touches_box(double sx0, double sy0, double sx1, double sy1,
                         double bx0, double by0, double bx1, double by1) {
  double t0 = 0.0, t1 = 1.0;
  const double dx = sx1 - sx0;
  const double dy = sy1 - sy0;
  auto clip = [&](double p, double q) {
    if (p == 0.0) return q >= 0.0;
    const double r = q / p;
    if (p < 0.0) {
      if (r > t1) return false;
      if (r > t0) t0 = r;
    } else {
      if (r < t0) return false;
      if (r < t1) t1 = r;
    }
    return true;
  };
  return clip(-dx, sx0 - bx0) && clip(dx, bx1 - sx0) &&
         clip(-dy, sy0 - by0) && clip(dy, by1 - sy0) && t0 <= t1;
}

Scene::Scene(std::vector<Body> bodies) : bodies_(std::move(bodies)) {
  if (bodies_.size() >
      static_cast<std::size_t>(std::numeric_limits<std::int16_t>::max()))
    throw std::invalid_argument("Scene: too many bodies");
  segment_base_.reserve(bodies_.size());
  total_segments_ = 0;
  xmin_ = ymin_ = std::numeric_limits<double>::infinity();
  xmax_ = ymax_ = -std::numeric_limits<double>::infinity();
  for (const Body& b : bodies_) {
    segment_base_.push_back(total_segments_);
    total_segments_ += b.segment_count();
    xmin_ = std::min(xmin_, b.xmin());
    xmax_ = std::max(xmax_, b.xmax());
    ymin_ = std::min(ymin_, b.ymin());
    ymax_ = std::max(ymax_, b.ymax());
  }
  build_accel();
}

void Scene::build_accel() {
  if (bodies_.empty()) return;
  ax0_ = static_cast<int>(std::floor(xmin_)) - 1;
  ay0_ = static_cast<int>(std::floor(ymin_)) - 1;
  anx_ = static_cast<int>(std::floor(xmax_)) + 2 - ax0_;
  any_ = static_cast<int>(std::floor(ymax_)) + 2 - ay0_;
  accel_.assign(static_cast<std::size_t>(anx_) * any_, AccelCell{});
  candidates_.clear();
  std::vector<std::int16_t> cands;
  for (int iy = 0; iy < any_; ++iy) {
    for (int ix = 0; ix < anx_; ++ix) {
      const double bx0 = ax0_ + ix;
      const double by0 = ay0_ + iy;
      const double bx1 = bx0 + 1.0;
      const double by1 = by0 + 1.0;
      cands.clear();
      for (std::size_t b = 0; b < bodies_.size(); ++b) {
        for (const BodySegment& s : bodies_[b].segments()) {
          if (segment_touches_box(s.x0, s.y0, s.x1, s.y1, bx0, by0, bx1,
                                  by1)) {
            cands.push_back(static_cast<std::int16_t>(b));
            break;
          }
        }
      }
      AccelCell& cell = accel_[static_cast<std::size_t>(iy) * anx_ + ix];
      if (!cands.empty()) {
        // Some facet reaches the cell: the point queries must consult these
        // bodies (and only these — no facet of any other body can separate
        // a point in this cell from that body's exterior).
        cell.cls = CellClass::kMixed;
        cell.cand_begin = static_cast<std::uint32_t>(candidates_.size());
        candidates_.insert(candidates_.end(), cands.begin(), cands.end());
        cell.cand_end = static_cast<std::uint32_t>(candidates_.size());
        continue;
      }
      // No facet touches the (closed) cell box, so every point of the cell
      // has the same inside/outside status as the center — the
      // classification is exact, not approximate.
      const double cx = bx0 + 0.5;
      const double cy = by0 + 0.5;
      cell.cls = CellClass::kOpen;
      for (std::size_t b = 0; b < bodies_.size(); ++b) {
        if (bodies_[b].inside(cx, cy)) {
          cell.cls = CellClass::kSolid;
          cell.solid_body = static_cast<std::int16_t>(b);
          break;
        }
      }
    }
  }
}

const Scene::AccelCell* Scene::accel_at(double x, double y) const {
  const int ix = static_cast<int>(std::floor(x)) - ax0_;
  const int iy = static_cast<int>(std::floor(y)) - ay0_;
  if (ix < 0 || ix >= anx_ || iy < 0 || iy >= any_) return nullptr;
  return &accel_[static_cast<std::size_t>(iy) * anx_ + ix];
}

int Scene::body_of_segment(int flat) const {
  if (flat < 0 || flat >= total_segments_) return -1;
  const auto it = std::upper_bound(segment_base_.begin(), segment_base_.end(),
                                   flat);
  return static_cast<int>(it - segment_base_.begin()) - 1;
}

bool Scene::any_diffuse() const {
  for (const Body& b : bodies_)
    if (b.any_diffuse()) return true;
  return false;
}

int Scene::inside_body(double x, double y) const {
  if (bodies_.empty()) return -1;
  if (x < xmin_ || x > xmax_ || y < ymin_ || y > ymax_) return -1;
  const AccelCell* cell = accel_at(x, y);
  if (cell == nullptr || cell->cls == CellClass::kOpen) return -1;
  if (cell->cls == CellClass::kSolid) return cell->solid_body;
  for (std::uint32_t k = cell->cand_begin; k < cell->cand_end; ++k) {
    const int b = candidates_[k];
    if (bodies_[static_cast<std::size_t>(b)].inside(x, y)) return b;
  }
  return -1;
}

std::optional<SceneHit> Scene::nearest_face(double x, double y) const {
  const int b = inside_body(x, y);
  if (b < 0) return std::nullopt;
  const BodyHit hit =
      bodies_[static_cast<std::size_t>(b)].nearest_face_inside(x, y);
  if (hit.segment < 0) return std::nullopt;  // all faces embedded
  return SceneHit{b, segment_base_[static_cast<std::size_t>(b)] + hit.segment,
                  hit};
}

std::optional<SceneRayHit> Scene::segment_hit(double x0, double y0, double x1,
                                              double y1) const {
  if (bodies_.empty()) return std::nullopt;
  // Candidate bodies: those with a facet in any accel cell the query
  // segment's bounding box overlaps (particle steps span a few cells, so
  // this walk is short).  Bodies outside that band cannot be crossed.
  const double lox = std::min(x0, x1);
  const double hix = std::max(x0, x1);
  const double loy = std::min(y0, y1);
  const double hiy = std::max(y0, y1);
  if (hix < xmin_ || lox > xmax_ || hiy < ymin_ || loy > ymax_)
    return std::nullopt;
  const int ix_lo = std::max(0, static_cast<int>(std::floor(lox)) - ax0_);
  const int ix_hi =
      std::min(anx_ - 1, static_cast<int>(std::floor(hix)) - ax0_);
  const int iy_lo = std::max(0, static_cast<int>(std::floor(loy)) - ay0_);
  const int iy_hi =
      std::min(any_ - 1, static_cast<int>(std::floor(hiy)) - ay0_);
  std::vector<bool> seen(bodies_.size(), false);
  std::optional<SceneRayHit> best;
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  for (int iy = iy_lo; iy <= iy_hi; ++iy) {
    for (int ix = ix_lo; ix <= ix_hi; ++ix) {
      const AccelCell& cell =
          accel_[static_cast<std::size_t>(iy) * anx_ + ix];
      if (cell.cls != CellClass::kMixed) continue;
      const double bx0 = ax0_ + ix;
      const double by0 = ay0_ + iy;
      if (!segment_touches_box(x0, y0, x1, y1, bx0, by0, bx0 + 1.0,
                               by0 + 1.0))
        continue;
      for (std::uint32_t k = cell.cand_begin; k < cell.cand_end; ++k) {
        const int b = candidates_[k];
        if (seen[static_cast<std::size_t>(b)]) continue;
        seen[static_cast<std::size_t>(b)] = true;
        const Body& body = bodies_[static_cast<std::size_t>(b)];
        for (int s = 0; s < body.segment_count(); ++s) {
          const BodySegment& seg =
              body.segments()[static_cast<std::size_t>(s)];
          if (seg.embedded) continue;
          const double ex = seg.x1 - seg.x0;
          const double ey = seg.y1 - seg.y0;
          const double denom = dx * ey - dy * ex;
          if (denom == 0.0) continue;  // parallel (collinear grazing: miss)
          const double wx = seg.x0 - x0;
          const double wy = seg.y0 - y0;
          const double t = (wx * ey - wy * ex) / denom;
          const double u = (wx * dy - wy * dx) / denom;
          if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) continue;
          // Strict `<` keeps the earliest hit; exact ties resolve to the
          // lowest (body, segment) by iteration order.
          if (!best || t < best->t)
            best = SceneRayHit{b, s, t, x0 + t * dx, y0 + t * dy};
        }
      }
    }
  }
  return best;
}

double Scene::cell_open_fraction(int ix, int iy) const {
  if (bodies_.empty()) return 1.0;
  // Start from the first body's fraction and subtract the others' solid
  // areas: exactly the single body's value for one-body scenes (no 1-(1-f)
  // round trip), and exact for non-overlapping bodies.
  double open = bodies_[0].cell_open_fraction(ix, iy);
  for (std::size_t b = 1; b < bodies_.size(); ++b)
    open -= 1.0 - bodies_[b].cell_open_fraction(ix, iy);
  if (open < 0.0) open = 0.0;
  if (open > 1.0) open = 1.0;
  return open;
}

std::vector<double> Scene::open_fraction_table(const Grid& grid) const {
  if (bodies_.empty())
    return std::vector<double>(static_cast<std::size_t>(grid.ncells()), 1.0);
  std::vector<double> table = bodies_[0].open_fraction_table(grid);
  for (std::size_t b = 1; b < bodies_.size(); ++b) {
    const std::vector<double> tb = bodies_[b].open_fraction_table(grid);
    for (std::size_t c = 0; c < table.size(); ++c) {
      if (tb[c] == 1.0) continue;  // untouched cells stay bit-identical
      double open = table[c] - (1.0 - tb[c]);
      if (open < 0.0) open = 0.0;
      table[c] = open;
    }
  }
  return table;
}

std::uint64_t Scene::geometry_hash() const {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, static_cast<std::uint64_t>(bodies_.size()));
  for (const Body& b : bodies_) {
    h = fnv1a(h, static_cast<std::uint64_t>(b.segment_count()));
    for (const BodySegment& s : b.segments()) {
      h = fnv1a(h, s.x0);
      h = fnv1a(h, s.y0);
      h = fnv1a(h, s.x1);
      h = fnv1a(h, s.y1);
      h = fnv1a(h, static_cast<std::uint64_t>(s.wall));
      h = fnv1a(h, s.wall_sigma);
      h = fnv1a(h, static_cast<std::uint64_t>(s.embedded ? 1 : 0));
    }
    h = fnv1a(h, b.chord());
  }
  return h;
}

}  // namespace cmdsmc::geom
