// Generalized body geometry: a closed polyline of oriented segments.
//
// The paper supports exactly one body (a wedge on the tunnel floor).  This
// subsystem generalizes that to an arbitrary simple polygon (2D; in quasi-3D
// runs the body is prism-extruded along z like the legacy wedge).  Each
// segment carries its own wall model and wall temperature, so a body can mix
// e.g. a diffuse-isothermal windward face with a specular base.
//
// Conventions:
//   - Vertices are listed counter-clockwise; the outward unit normal of the
//     edge p->q is (qy - py, -(qx - px)) / |q - p| (pointing into the gas).
//   - A segment flagged `embedded` coincides with a wind-tunnel wall (e.g.
//     the wedge's floor edge) and is never a collision candidate: the tunnel
//     wall handles those particles.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geom/clip.h"
#include "geom/grid.h"

namespace cmdsmc::geom {

// Gas-surface interaction model of a wall or body segment.
enum class WallModel {
  kSpecular,           // inviscid: mirror reflection (paper's validation mode)
  kDiffuseIsothermal,  // full accommodation to a fixed wall temperature
  kDiffuseAdiabatic,   // diffuse directions, particle energy preserved
};

// One oriented face of a body.
struct BodySegment {
  double x0 = 0.0, y0 = 0.0;  // start vertex
  double x1 = 0.0, y1 = 0.0;  // end vertex (counter-clockwise)
  double nx = 0.0, ny = 0.0;  // unit outward normal
  double tx = 0.0, ty = 0.0;  // unit tangent (x1-x0)/length
  double length = 0.0;
  WallModel wall = WallModel::kSpecular;
  double wall_sigma = 0.0;  // thermal std dev of a diffuse wall
  bool embedded = false;    // lies on a tunnel wall; not a hit candidate

  double mid_x() const { return 0.5 * (x0 + x1); }
  double mid_y() const { return 0.5 * (y0 + y1); }
};

// Result of a nearest-face query for a point inside a body.
struct BodyHit {
  int segment = -1;
  // Unit outward normal of the violated face.
  double nx = 0.0;
  double ny = 0.0;
  // Signed distance of the point from the face plane (negative = inside).
  double depth = 0.0;
};

class Body {
 public:
  // `vertices` is the closed counter-clockwise polyline (>= 3 vertices, no
  // implicit closing vertex).  Throws std::invalid_argument on degenerate
  // input (too few vertices, zero-length edges, clockwise winding).
  explicit Body(std::vector<Vec2> vertices, std::string name = "body");

  // --- Factory helpers (all produce convex bodies) ---
  // The paper's wedge: right triangle with leading edge at (x0, 0), base
  // along the floor, apex height base*tan(angle).  The floor edge is
  // embedded (handled by the tunnel floor, matching the legacy Wedge).
  static Body Wedge(double x0, double base, double angle_rad);
  // Thin rectangular plate of given chord and thickness, leading edge at
  // (x0, y0), inclined by `incidence_rad` to the flow.
  static Body FlatPlate(double x0, double y0, double chord, double thickness,
                        double incidence_rad = 0.0);
  // Circle of radius r centred at (cx, cy), approximated by n_facets
  // segments (n_facets >= 8).
  static Body Cylinder(double cx, double cy, double radius, int n_facets);
  // Symmetric biconic profile: nose at (x0, y_axis), fore cone of length
  // len1 and half-angle angle1, aft cone of length len2 and half-angle
  // angle2 (angle2 < angle1 for the classic convex biconic), closed by a
  // vertical base.
  static Body Biconic(double x0, double y_axis, double len1, double angle1_rad,
                      double len2, double angle2_rad);

  // --- Geometry ---
  const std::string& name() const { return name_; }
  const std::vector<BodySegment>& segments() const { return segments_; }
  int segment_count() const { return static_cast<int>(segments_.size()); }
  bool convex() const { return convex_; }
  double xmin() const { return xmin_; }
  double xmax() const { return xmax_; }
  double ymin() const { return ymin_; }
  double ymax() const { return ymax_; }
  // Reference length for force coefficients.  Factories set the natural
  // chord (wedge base, plate chord, cylinder diameter, biconic length) so
  // coefficients stay comparable across incidence; generic polygons default
  // to the x-extent.  Override with set_ref_length for custom referencing.
  double chord() const { return ref_length_; }
  void set_ref_length(double length);
  // Frontal height for 2D drag referencing.
  double height() const { return ymax_ - ymin_; }
  double area() const { return area_; }

  // --- Wall models ---
  void set_wall_model(WallModel model, double wall_sigma);
  void set_segment_wall(int segment, WallModel model, double wall_sigma);
  // True if any non-embedded segment needs random bits (non-specular).
  bool any_diffuse() const;

  // --- Queries ---
  // Inside the solid polygon, boundary-inclusive: a point exactly on a
  // facet, edge or shared vertex is claimed by the body (it is at the
  // surface and must be reflected deterministically, never left to tunnel
  // through).  The facet tests use the exact cross-product form, so vertex
  // and endpoint coordinates evaluate to exactly zero and the tie-break is
  // deterministic — no face can disown a shared vertex by one ulp.
  bool inside(double x, double y) const;
  // For a point inside the body, the nearest non-embedded face (the face
  // the particle most plausibly crossed).  nullopt outside.  Equidistant
  // faces (a shared vertex) resolve to the lowest segment index.
  std::optional<BodyHit> nearest_face(double x, double y) const;
  // Same, for a point already known to be inside (skips the containment
  // recheck; geom::Scene calls this after its own accelerated containment
  // query).
  BodyHit nearest_face_inside(double x, double y) const;

  // Fraction of the unit cell (ix, iy) that lies *outside* the body
  // (1 = fully open, 0 = fully solid).
  double cell_open_fraction(int ix, int iy) const;
  // Open fraction for every cell of a grid, row-major (2D slice; in 3D the
  // body is extruded along z so the table repeats per z-plane).
  std::vector<double> open_fraction_table(const Grid& grid) const;

 private:
  double solid_area_in_rect(double rx0, double ry0, double rx1,
                            double ry1) const;

  std::string name_;
  std::vector<Vec2> vertices_;
  std::vector<BodySegment> segments_;
  bool convex_ = false;
  double xmin_ = 0.0, xmax_ = 0.0, ymin_ = 0.0, ymax_ = 0.0;
  double area_ = 0.0;
  double ref_length_ = 0.0;
};

}  // namespace cmdsmc::geom
