#include "geom/clip.h"

#include <cmath>

namespace cmdsmc::geom {

double polygon_area(const std::vector<Vec2>& poly) {
  const std::size_t n = poly.size();
  if (n < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& p = poly[i];
    const Vec2& q = poly[(i + 1) % n];
    acc += p.x * q.y - q.x * p.y;
  }
  return 0.5 * acc;
}

std::vector<Vec2> clip_halfplane(const std::vector<Vec2>& poly, double a,
                                 double b, double c) {
  std::vector<Vec2> out;
  const std::size_t n = poly.size();
  if (n == 0) return out;
  out.reserve(n + 2);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& p = poly[i];
    const Vec2& q = poly[(i + 1) % n];
    const double dp = a * p.x + b * p.y - c;
    const double dq = a * q.x + b * q.y - c;
    const bool pin = dp <= 0.0;
    const bool qin = dq <= 0.0;
    if (pin) out.push_back(p);
    if (pin != qin) {
      const double t = dp / (dp - dq);
      out.push_back({p.x + t * (q.x - p.x), p.y + t * (q.y - p.y)});
    }
  }
  return out;
}

std::vector<Vec2> clip_rect(const std::vector<Vec2>& poly, double x0,
                            double y0, double x1, double y1) {
  std::vector<Vec2> p = clip_halfplane(poly, -1.0, 0.0, -x0);  // x >= x0
  p = clip_halfplane(p, 1.0, 0.0, x1);                         // x <= x1
  p = clip_halfplane(p, 0.0, -1.0, -y0);                       // y >= y0
  p = clip_halfplane(p, 0.0, 1.0, y1);                         // y <= y1
  return p;
}

double intersection_area_rect(const std::vector<Vec2>& poly, double x0,
                              double y0, double x1, double y1) {
  return std::abs(polygon_area(clip_rect(poly, x0, y0, x1, y1)));
}

}  // namespace cmdsmc::geom
