#include "geom/boundary.h"

#include <cmath>

#include "rng/rng.h"
#include "rng/samplers.h"

namespace cmdsmc::geom {

namespace {

// Mirror position and velocity about the plane through `wall` with outward
// unit normal (nx, ny) (2D in the x-y plane).
void specular_reflect(ParticleState& p, double px, double py, double nx,
                      double ny) {
  const double d = (p.x - px) * nx + (p.y - py) * ny;  // signed distance
  p.x -= 2.0 * d * nx;
  p.y -= 2.0 * d * ny;
  const double vn = p.ux * nx + p.uy * ny;
  if (vn < 0.0) {
    p.ux -= 2.0 * vn * nx;
    p.uy -= 2.0 * vn * ny;
  }
}

// Diffuse re-emission from a wall with outward normal (nx, ny).  The
// particle is placed on the surface (its penetration is reflected) and its
// velocity resampled: flux-weighted half-Maxwellian along the normal,
// Gaussian tangentially and rotationally.
void diffuse_reflect(ParticleState& p, double px, double py, double nx,
                     double ny, WallModel model, double wall_sigma,
                     std::uint64_t rand_bits) {
  const double d = (p.x - px) * nx + (p.y - py) * ny;
  p.x -= 2.0 * d * nx;
  p.y -= 2.0 * d * ny;
  const double e_in = 0.5 * (p.ux * p.ux + p.uy * p.uy + p.uz * p.uz +
                             p.r0 * p.r0 + p.r1 * p.r1);
  rng::SplitMix64 g(rand_bits);
  const double vn = rng::sample_flux_normal(g, wall_sigma);
  const double vt = wall_sigma * rng::sample_gaussian(g);
  // Tangent (ty, tx) chosen as the normal rotated -90 degrees.
  const double tx = ny;
  const double ty = -nx;
  p.ux = vn * nx + vt * tx;
  p.uy = vn * ny + vt * ty;
  p.uz = wall_sigma * rng::sample_gaussian(g);
  p.r0 = wall_sigma * rng::sample_gaussian(g);
  p.r1 = wall_sigma * rng::sample_gaussian(g);
  if (model == WallModel::kDiffuseAdiabatic) {
    // Rescale so the particle leaves with the energy it arrived with.
    const double e_out = 0.5 * (p.ux * p.ux + p.uy * p.uy + p.uz * p.uz +
                                p.r0 * p.r0 + p.r1 * p.r1);
    if (e_out > 0.0) {
      const double s = std::sqrt(e_in / e_out);
      p.ux *= s;
      p.uy *= s;
      p.uz *= s;
      p.r0 *= s;
      p.r1 *= s;
    }
  }
}

double particle_energy(const ParticleState& p) {
  return 0.5 * (p.ux * p.ux + p.uy * p.uy + p.uz * p.uz + p.r0 * p.r0 +
                p.r1 * p.r1);
}

// Reflects a particle off a violated face plane (outward normal (nx, ny),
// penetration `depth` < 0) with the given wall model.  Shared by the
// generalized-body and legacy-wedge paths.
void reflect_off_face(ParticleState& p, double nx, double ny, double depth,
                      WallModel model, double wall_sigma,
                      std::uint64_t rand_bits) {
  const double px = p.x - depth * nx;
  const double py = p.y - depth * ny;
  if (model == WallModel::kSpecular) {
    specular_reflect(p, px, py, nx, ny);
  } else {
    diffuse_reflect(p, px, py, nx, ny, model, wall_sigma, rand_bits);
  }
}

// Reflects a particle found inside a scene body off its nearest face, using
// that segment's wall model, and records the momentum/energy handed to the
// wall under the scene-wide flat segment index.
void scene_reflect(ParticleState& p, const Scene& scene, const SceneHit& sh,
                   std::uint64_t rand_bits, WallEventBuffer* events) {
  const BodyHit& hit = sh.hit;
  const BodySegment& seg =
      scene.body(sh.body).segments()[static_cast<std::size_t>(hit.segment)];
  const double pre_ux = p.ux;
  const double pre_uy = p.uy;
  const double pre_e = particle_energy(p);
  reflect_off_face(p, hit.nx, hit.ny, hit.depth, seg.wall, seg.wall_sigma,
                   rand_bits);
  if (events != nullptr) {
    const double post_e = particle_energy(p);
    // Incident normal momentum points into the wall (u.n < 0 on arrival),
    // reflected points away; both recorded positive in their own sense.
    const double vn_in = -(pre_ux * hit.nx + pre_uy * hit.ny);
    const double vn_out = p.ux * hit.nx + p.uy * hit.ny;
    events->add(sh.flat_segment, pre_ux - p.ux, pre_uy - p.uy, pre_e - post_e,
                vn_in, vn_out, pre_e, post_e);
  }
}

}  // namespace

bool enforce_boundaries(ParticleState& p, const BoundaryConfig& bc,
                        std::uint64_t rand_bits, WallEventBuffer* events) {
  // A particle can violate several boundaries in one step (e.g. floor then
  // body near the leading edge); iterate until clean.  Four passes always
  // suffice at sane CFL; afterwards clamp defensively.
  for (int pass = 0; pass < 4; ++pass) {
    bool dirty = false;

    // Downstream sink first: supersonic outflow removes the particle.
    if (p.x >= bc.x_max) {
      if (!bc.closed) return false;
      p.x = 2.0 * bc.x_max - p.x;
      if (p.ux > 0.0) p.ux = -p.ux;
      dirty = true;
    }

    // Upstream plunger (moving hard wall) or the fixed upstream wall at 0.
    const double wall_x = bc.plunger_active ? bc.plunger_x : 0.0;
    if (p.x < wall_x) {
      p.x = 2.0 * wall_x - p.x;
      // Specular reflection in the moving wall frame: u' = 2 U_wall - u.
      const double uw = bc.plunger_active ? bc.plunger_speed : 0.0;
      if (p.ux < uw) p.ux = 2.0 * uw - p.ux;
      dirty = true;
    }

    // Floor and ceiling: specular.
    if (p.y < 0.0) {
      p.y = -p.y;
      if (p.uy < 0.0) p.uy = -p.uy;
      dirty = true;
    } else if (p.y >= bc.y_max) {
      p.y = 2.0 * bc.y_max - p.y;
      if (p.uy > 0.0) p.uy = -p.uy;
      dirty = true;
    }

    // 3D side walls: specular.
    if (bc.z_max > 0.0) {
      if (p.z < 0.0) {
        p.z = -p.z;
        if (p.uz < 0.0) p.uz = -p.uz;
        dirty = true;
      } else if (p.z >= bc.z_max) {
        p.z = 2.0 * bc.z_max - p.z;
        if (p.uz > 0.0) p.uz = -p.uz;
        dirty = true;
      }
    }

    // The bodies: the scene takes precedence over the legacy wedge.
    if (bc.scene != nullptr && !bc.scene->empty()) {
      if (auto hit = bc.scene->nearest_face(p.x, p.y)) {
        scene_reflect(p, *bc.scene, *hit,
                      rng::mix64(rand_bits + 0x9e37u * (pass + 1)), events);
        // A zero-depth contact (exactly on a facet — the boundary-inclusive
        // claim) mirrors about the particle's own position, which would be
        // re-claimed on every pass: one physical contact must record one
        // wall event, so nudge the particle just off the surface.
        if (hit->hit.depth == 0.0) {
          p.x += 1e-9 * hit->hit.nx;
          p.y += 1e-9 * hit->hit.ny;
        }
        dirty = true;
      }
    } else if (bc.wedge != nullptr) {
      if (auto hit = bc.wedge->nearest_face(p.x, p.y)) {
        reflect_off_face(p, hit->nx, hit->ny, hit->depth, bc.wall,
                         bc.wall_sigma,
                         rng::mix64(rand_bits + 0x9e37u * (pass + 1)));
        dirty = true;
      }
    }

    if (!dirty) return true;
  }

  // Defensive clamp for pathological corner cases (e.g. a particle trapped
  // exactly in a body vertex): project to the nearest open location.
  if (p.x < 0.0) p.x = 0.0;
  if (p.x >= bc.x_max) p.x = bc.x_max - 1e-9;
  if (p.y < 0.0) p.y = 0.0;
  if (p.y >= bc.y_max) p.y = bc.y_max - 1e-9;
  if (bc.z_max > 0.0) {
    if (p.z < 0.0) p.z = 0.0;
    if (p.z >= bc.z_max) p.z = bc.z_max - 1e-9;
  }
  if (bc.scene != nullptr && !bc.scene->empty()) {
    // Push the particle just outside the violated face.  Near a concave
    // vertex (or in the gap between two close bodies) one push can land
    // inside the solid owned by another face, so recheck and push again a
    // few times.
    for (int k = 0; k < 4; ++k) {
      const auto hit = bc.scene->nearest_face(p.x, p.y);
      if (!hit) break;
      p.x += (-hit->hit.depth + 1e-9) * hit->hit.nx;
      p.y += (-hit->hit.depth + 1e-9) * hit->hit.ny;
      if (p.x < 0.0) p.x = 0.0;
      if (p.x >= bc.x_max) p.x = bc.x_max - 1e-9;
      if (p.y < 0.0) p.y = 0.0;
      if (p.y >= bc.y_max) p.y = bc.y_max - 1e-9;
    }
  } else if (bc.wedge != nullptr && bc.wedge->inside(p.x, p.y)) {
    // Lift the particle just above the ramp surface.
    p.y = bc.wedge->surface_y(p.x) + 1e-9;
    if (p.y >= bc.y_max) p.y = bc.y_max - 1e-9;
  }
  return true;
}

std::vector<std::uint8_t> interior_cell_mask(const Grid& grid,
                                             const BoundaryConfig& bc,
                                             double upstream_reach,
                                             double max_disp) {
  // Margin absorbing the floating-point rounding of x + ux: the true
  // post-move position clears each boundary by construction, but the rounded
  // sum may land up to half an ulp past it.  1e-6 cells dwarfs any such
  // error (the fixed-point engine adds exactly, with no error at all).
  constexpr double kMargin = 1e-6;
  const double d = max_disp + kMargin;
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(grid.ncells()), 0);
  // The solid outline as segments, tested exactly (not by bounding box, which
  // would wrongly exclude the whole high-density region above a wedge's
  // hypotenuse).  A box avoiding every face either misses the solid entirely
  // or lies fully inside it; the center-point inside() test separates those.
  // The outline is the *union* of every scene body, so adding a second body
  // can never leave a stale "interior" cell beside its surface.
  struct Seg {
    double x0, y0, x1, y1;
  };
  std::vector<Seg> segs;
  const bool has_scene = bc.scene != nullptr && !bc.scene->empty();
  if (has_scene) {
    for (const Body& b : bc.scene->bodies())
      for (const BodySegment& s : b.segments())
        segs.push_back({s.x0, s.y0, s.x1, s.y1});
  } else if (bc.wedge != nullptr) {
    const double x0 = bc.wedge->x0();
    const double ax = bc.wedge->apex_x();
    const double h = bc.wedge->height();
    segs.push_back({x0, 0.0, ax, h});   // hypotenuse
    segs.push_back({ax, h, ax, 0.0});   // back face
    segs.push_back({ax, 0.0, x0, 0.0});  // floor edge
  }
  auto box_touches_solid = [&](double bx0, double by0, double bx1,
                               double by1) {
    for (const Seg& s : segs)
      if (segment_touches_box(s.x0, s.y0, s.x1, s.y1, bx0, by0, bx1, by1))
        return true;
    const double cx = 0.5 * (bx0 + bx1);
    const double cy = 0.5 * (by0 + by1);
    if (has_scene) return bc.scene->inside(cx, cy);
    if (bc.wedge != nullptr) return bc.wedge->inside(cx, cy);
    return false;
  };
  const int nz = grid.is3d() ? grid.nz : 1;
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < grid.ny; ++iy) {
      for (int ix = 0; ix < grid.nx; ++ix) {
        // A particle starting anywhere in [ix, ix+1) x [iy, iy+1) and moving
        // at most d per axis stays strictly inside (ix-d, ix+1+d) x ... —
        // interior iff that expanded box clears every boundary.
        bool ok = ix - d >= upstream_reach && ix + 1 + d <= bc.x_max &&
                  iy - d >= 0.0 && iy + 1 + d <= bc.y_max;
        if (bc.z_max > 0.0)
          ok = ok && iz - d >= 0.0 && iz + 1 + d <= bc.z_max;
        if (ok && !segs.empty())
          ok = !box_touches_solid(ix - d, iy - d, ix + 1 + d, iy + 1 + d);
        mask[grid.index(ix, iy, iz)] = ok ? 1u : 0u;
      }
    }
  }
  return mask;
}

}  // namespace cmdsmc::geom
