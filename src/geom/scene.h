// Multi-body scene: an owning list of geom::Body instances plus a
// uniform-grid acceleration structure over all of their facets.
//
// Every query the single-body path used to answer with a linear facet scan
// — point-in-solid, nearest violated face, segment-vs-facet hit, per-cell
// open fraction — is answered here in near-O(1) per query: the unit-cell
// acceleration grid classifies each cell as fully open (no body reachable),
// fully solid (strictly inside one body, no facet touches the cell) or
// mixed (a short candidate-body list).  Open cells reject immediately,
// solid cells identify their body immediately, and mixed cells consult only
// the bodies whose geometry actually reaches the cell — never the whole
// scene's facet list.
//
// The classification is *exact*, not heuristic: a cell is only marked
// open/solid when no facet of any body touches its (closed) box, so every
// point of the cell provably shares the center's inside/outside status.
// Consequently a one-body Scene answers every query bit-identically to the
// underlying Body, which is what keeps the single-body golden runs pinned.
//
// Segments are also addressable by a scene-wide flat index
// (segment_base(body) + local segment) so per-(body, segment) surface-flux
// accumulation can keep using one contiguous accumulator array.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/body.h"
#include "geom/grid.h"

namespace cmdsmc::geom {

// Conservative segment-vs-closed-box overlap (Liang–Barsky clip).  Ties and
// touching contacts count as overlap, so false negatives are impossible —
// which is what makes the Scene cell classification and the interior-cell
// mask exact rather than heuristic.
bool segment_touches_box(double sx0, double sy0, double sx1, double sy1,
                         double bx0, double by0, double bx1, double by1);

// Byte-wise FNV-1a fold of one 64-bit word — the shared kernel of the
// geometry/provenance hashes (Scene::geometry_hash and the simulation
// checkpoint hash must stay in lockstep).
std::uint64_t fnv1a_hash(std::uint64_t h, std::uint64_t v);

// Result of a scene nearest-face query: which body was violated, the local
// face hit, and the scene-wide flat segment index.
struct SceneHit {
  int body = -1;
  int flat_segment = -1;  // segment_base(body) + hit.segment
  BodyHit hit;
};

// First crossing of a directed segment with any non-embedded facet.
struct SceneRayHit {
  int body = -1;
  int segment = -1;    // local segment index within the body
  double t = 0.0;      // parameter along p0 -> p1 in [0, 1]
  double x = 0.0, y = 0.0;
};

class Scene {
 public:
  // An empty scene: no bodies, every query trivially misses.
  Scene() = default;
  // Takes ownership of the bodies and builds the acceleration grid.
  explicit Scene(std::vector<Body> bodies);

  bool empty() const { return bodies_.empty(); }
  int body_count() const { return static_cast<int>(bodies_.size()); }
  const Body& body(int i) const {
    return bodies_[static_cast<std::size_t>(i)];
  }
  const std::vector<Body>& bodies() const { return bodies_; }

  // --- Flat segment indexing (surface sampling) ---
  int total_segments() const { return total_segments_; }
  int segment_base(int body) const {
    return segment_base_[static_cast<std::size_t>(body)];
  }
  // Body owning a flat segment index (inverse of segment_base).
  int body_of_segment(int flat) const;

  bool any_diffuse() const;

  // Union bounding box (undefined when empty).
  double xmin() const { return xmin_; }
  double xmax() const { return xmax_; }
  double ymin() const { return ymin_; }
  double ymax() const { return ymax_; }

  // --- Point queries (accelerated) ---
  // Body index strictly containing (x, y), or -1.  Bodies are tested in
  // list order, so overlapping bodies resolve deterministically.
  int inside_body(double x, double y) const;
  bool inside(double x, double y) const { return inside_body(x, y) >= 0; }
  // Nearest non-embedded face of the containing body; nullopt outside.
  std::optional<SceneHit> nearest_face(double x, double y) const;

  // --- Segment query ---
  // Earliest intersection of the directed segment p0 -> p1 with any
  // non-embedded facet of any body (grid walk over the acceleration cells;
  // only candidate bodies are tested).  nullopt when the segment crosses no
  // facet.
  std::optional<SceneRayHit> segment_hit(double x0, double y0, double x1,
                                         double y1) const;

  // --- Open fractions ---
  // Fraction of the unit cell lying outside every body.  Exactly the
  // single body's open fraction for one-body scenes; for disjoint bodies
  // the solid areas add.
  double cell_open_fraction(int ix, int iy) const;
  std::vector<double> open_fraction_table(const Grid& grid) const;

  // FNV-1a hash over every body's exact geometry (vertices, normals, wall
  // models, embedded flags) — the provenance tag checkpoints use to refuse
  // restoring against mismatched geometry.
  std::uint64_t geometry_hash() const;

 private:
  // Acceleration-cell classification.
  enum class CellClass : std::uint8_t {
    kOpen,   // no facet touches the cell; center outside every body
    kSolid,  // no facet touches the cell; center strictly inside one body
    kMixed,  // some facet reaches the cell: consult the candidate bodies
  };
  struct AccelCell {
    CellClass cls = CellClass::kOpen;
    std::int16_t solid_body = -1;   // body id for kSolid
    std::uint32_t cand_begin = 0;   // [begin, end) into candidates_
    std::uint32_t cand_end = 0;
  };

  void build_accel();
  const AccelCell* accel_at(double x, double y) const;

  std::vector<Body> bodies_;
  std::vector<int> segment_base_;
  int total_segments_ = 0;
  double xmin_ = 0.0, xmax_ = 0.0, ymin_ = 0.0, ymax_ = 0.0;

  // Acceleration grid: unit cells covering the union bbox (one ring of
  // margin), indexed row-major from (ax0_, ay0_).
  int ax0_ = 0, ay0_ = 0;   // integer origin of the accel grid
  int anx_ = 0, any_ = 0;   // accel grid extent in cells
  std::vector<AccelCell> accel_;
  std::vector<std::int16_t> candidates_;  // body ids, cell-sliced
};

}  // namespace cmdsmc::geom
