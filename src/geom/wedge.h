// The body geometry: an inclined flat plate forming a wedge on the lower
// wall of the wind tunnel (the paper's only supported body).
//
// The wedge is the right triangle with vertices
//     A = (x0, 0)            leading edge on the floor
//     C = (x0 + base, h)     apex, h = base * tan(angle)
//     B = (x0 + base, 0)     foot of the vertical back face
// Flow arrives from -x; the hypotenuse A->C is the compression surface and
// the vertical face C->B faces the wake.
#pragma once

#include <optional>
#include <vector>

#include "geom/grid.h"

namespace cmdsmc::geom {

struct SurfaceHit {
  // Unit outward normal of the violated face.
  double nx = 0.0;
  double ny = 0.0;
  // Signed distance of the point from the face plane (negative = inside).
  double depth = 0.0;
};

class Wedge {
 public:
  Wedge(double x0, double base, double angle_rad);

  double x0() const { return x0_; }
  double base() const { return base_; }
  double angle() const { return angle_; }
  double height() const { return base_ * tan_; }
  double apex_x() const { return x0_ + base_; }

  // Surface height of the compression ramp at abscissa x (0 outside).
  double surface_y(double x) const;

  // Strictly inside the solid triangle.
  bool inside(double x, double y) const;

  // For a point inside the wedge, the face with the smallest penetration
  // depth (the face the particle most plausibly crossed).  nullopt outside.
  std::optional<SurfaceHit> nearest_face(double x, double y) const;

  // Fraction of the unit cell (ix,iy) that lies *outside* the wedge
  // (1 = fully open, 0 = fully solid).
  double cell_open_fraction(int ix, int iy) const;

  // Open fraction for every cell of a grid, row-major (2D slice; in 3D the
  // wedge is extruded along z so the table repeats per z-plane).
  std::vector<double> open_fraction_table(const Grid& grid) const;

 private:
  double x0_;
  double base_;
  double angle_;
  double tan_;
  // Unit outward normal of the hypotenuse (points up-left, away from solid).
  double hx_;
  double hy_;
};

}  // namespace cmdsmc::geom
