// Convex polygon clipping used to compute fractional cell volumes for cells
// cut by the wedge surface (paper: "where cells are divided by the wedge
// special allowance must be made for the fractional cell volume").
#pragma once

#include <vector>

namespace cmdsmc::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

// Signed area (positive for counter-clockwise winding).
double polygon_area(const std::vector<Vec2>& poly);

// Sutherland–Hodgman clip of a convex polygon against the half-plane
// a*x + b*y <= c.
std::vector<Vec2> clip_halfplane(const std::vector<Vec2>& poly, double a,
                                 double b, double c);

// Clip a convex polygon to the axis-aligned rectangle [x0,x1] x [y0,y1].
std::vector<Vec2> clip_rect(const std::vector<Vec2>& poly, double x0,
                            double y0, double x1, double y1);

// Area of (convex poly) ∩ ([x0,x1] x [y0,y1]).
double intersection_area_rect(const std::vector<Vec2>& poly, double x0,
                              double y0, double x1, double y1);

}  // namespace cmdsmc::geom
