#include "rng/permutation.h"

#include <algorithm>

namespace cmdsmc::rng {

const std::array<PackedPerm, kPermCount>& perm_table() {
  static const std::array<PackedPerm, kPermCount> table = [] {
    std::array<PackedPerm, kPermCount> t{};
    std::array<std::uint8_t, kPermElems> p = {0, 1, 2, 3, 4};
    int idx = 0;
    do {
      t[idx++] = pack_perm(p);
    } while (std::next_permutation(p.begin(), p.end()));
    return t;
  }();
  return table;
}

int perm_rank(PackedPerm p) {
  if (!perm_is_valid(p)) return -1;
  const auto e = unpack_perm(p);
  // Lehmer code -> factorial number system rank (lexicographic).
  static constexpr int fact[5] = {24, 6, 2, 1, 1};
  int rank = 0;
  for (int k = 0; k < kPermElems - 1; ++k) {
    int smaller_after = 0;
    for (int m = k + 1; m < kPermElems; ++m)
      if (e[m] < e[k]) ++smaller_after;
    rank += smaller_after * fact[k];
  }
  return rank;
}

}  // namespace cmdsmc::rng
