// Five-element permutation vectors.
//
// Each particle carries a permutation of {0..4} as part of its computational
// state; the collision kernel uses it to re-order the five relative velocity
// components.  The paper initialises particles from a table of random
// permutations held on the front end and refreshes them by one random
// transposition per collision (Knuth shuffle step; Aldous & Diaconis show
// n·log n transpositions fully decorrelate).
//
// A permutation is packed 3 bits per element into a uint16_t (15 bits).
#pragma once

#include <array>
#include <cstdint>

#include "rng/rng.h"

namespace cmdsmc::rng {

inline constexpr int kPermElems = 5;
inline constexpr int kPermCount = 120;

using PackedPerm = std::uint16_t;

constexpr PackedPerm pack_perm(const std::array<std::uint8_t, kPermElems>& p) {
  PackedPerm out = 0;
  for (int k = 0; k < kPermElems; ++k)
    out = static_cast<PackedPerm>(out | (p[k] & 7u) << (3 * k));
  return out;
}

constexpr std::array<std::uint8_t, kPermElems> unpack_perm(PackedPerm p) {
  std::array<std::uint8_t, kPermElems> out{};
  for (int k = 0; k < kPermElems; ++k)
    out[k] = static_cast<std::uint8_t>((p >> (3 * k)) & 7u);
  return out;
}

constexpr PackedPerm identity_perm() {
  return pack_perm({0, 1, 2, 3, 4});
}

// Element k of the packed permutation.
constexpr unsigned perm_elem(PackedPerm p, int k) {
  return (p >> (3 * k)) & 7u;
}

// Swaps elements i and j (the paper's "random transposition").
constexpr PackedPerm transpose_perm(PackedPerm p, int i, int j) {
  const unsigned a = perm_elem(p, i);
  const unsigned b = perm_elem(p, j);
  p = static_cast<PackedPerm>(p & ~(7u << (3 * i)) & ~(7u << (3 * j)));
  p = static_cast<PackedPerm>(p | (b << (3 * i)) | (a << (3 * j)));
  return p;
}

// out[k] = in[perm[k]].
template <class T>
constexpr void apply_perm(PackedPerm p, const T* in5, T* out5) {
  for (int k = 0; k < kPermElems; ++k) out5[k] = in5[perm_elem(p, k)];
}

// True iff p encodes a permutation of {0..4}.
constexpr bool perm_is_valid(PackedPerm p) {
  unsigned seen = 0;
  for (int k = 0; k < kPermElems; ++k) {
    const unsigned e = perm_elem(p, k);
    if (e >= kPermElems) return false;
    seen |= 1u << e;
  }
  return seen == 0x1fu;
}

// The front-end table: all 120 permutations of {0..4}, lexicographic order.
const std::array<PackedPerm, kPermCount>& perm_table();

// Uniformly random entry from the table.
inline PackedPerm random_perm(SplitMix64& g) {
  return perm_table()[g.next_below(kPermCount)];
}

// One random transposition of p using bits from `bits` (6 bits consumed):
// indices i, j drawn uniformly from {0..4} via rejection-free mapping.
constexpr PackedPerm random_transposition(PackedPerm p, std::uint64_t bits) {
  // Map 8-bit fields to [0,5) with negligible bias (255/5 buckets).
  const int i = static_cast<int>(((bits & 0xffu) * 5u) >> 8);
  const int j = static_cast<int>((((bits >> 8) & 0xffu) * 5u) >> 8);
  return transpose_perm(p, i, j);
}

// Index of p in the canonical table, or -1 if invalid.  O(1) via Lehmer code.
int perm_rank(PackedPerm p);

}  // namespace cmdsmc::rng
