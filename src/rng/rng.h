// Counter-based pseudo-random numbers.
//
// Every random decision in the simulation is a pure function of
// (seed, stream id, step, salt), so runs are reproducible independently of
// the thread count — the multicore analogue of the CM-2's per-processor
// random state.
#pragma once

#include <cstdint>

namespace cmdsmc::rng {

// SplitMix64 finalizer: a high-quality 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// First round of hash4: depends only on the seed, so hot loops hoist it once
// per run and draw with hash4_seeded below.
constexpr std::uint64_t hash4_seed_round(std::uint64_t seed) {
  return mix64(seed ^ 0x243f6a8885a308d3ull);
}

// Remaining rounds of hash4 given the precomputed seed round.  Bit-identical
// to hash4(seed, id, step, salt) with seed_round = hash4_seed_round(seed),
// at three mix rounds instead of four.
constexpr std::uint64_t hash4_seeded(std::uint64_t seed_round, std::uint64_t id,
                                     std::uint64_t step, std::uint64_t salt) {
  std::uint64_t h = mix64(seed_round ^ id);
  h = mix64(h ^ (step + 0x452821e638d01377ull));
  h = mix64(h ^ (salt * 0x9e3779b97f4a7c15ull + 1));
  return h;
}

// Stateless hash of a (seed, id, step, salt) tuple into 64 random bits.
constexpr std::uint64_t hash4(std::uint64_t seed, std::uint64_t id,
                              std::uint64_t step, std::uint64_t salt) {
  return hash4_seeded(hash4_seed_round(seed), id, step, salt);
}

// Small sequential generator seeded from any 64-bit value (SplitMix64).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    return mix64(state_ - 0x9e3779b97f4a7c15ull + state_);
  }
  constexpr std::uint32_t next_u32() {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }
  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  // Uniform integer in [0, bound) (Lemire's method).
  std::uint32_t next_below(std::uint32_t bound) {
    const std::uint64_t m =
        static_cast<std::uint64_t>(next_u32()) * static_cast<std::uint64_t>(bound);
    return static_cast<std::uint32_t>(m >> 32);
  }
  // +1 or -1 with equal probability.
  double next_sign() { return (next_u64() & 1) ? 1.0 : -1.0; }

 private:
  std::uint64_t state_;
};

// Convenience: uniform double in [0,1) from raw bits.
inline double u64_to_unit_double(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace cmdsmc::rng
