// Velocity distribution samplers: Maxwellian (Gaussian per component),
// the paper's rectangular (uniform with matched variance) reservoir
// distribution, and half-range flux samplers for diffuse walls and soft
// upstream sources.
#pragma once

#include <cmath>
#include <numbers>

#include "rng/rng.h"

namespace cmdsmc::rng {

// Standard normal via Box-Muller; consumes two uniforms.
inline double sample_gaussian(SplitMix64& g) {
  double u1 = g.next_double();
  double u2 = g.next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

// Uniform on [-a, a] with variance sigma^2 requires a = sigma * sqrt(3).
// This is the paper's "rectangular distribution with the same variance as
// the freestream" used for particles entering the reservoir.
inline double sample_rectangular(SplitMix64& g, double sigma) {
  const double a = sigma * std::sqrt(3.0);
  return a * (2.0 * g.next_double() - 1.0);
}

// Positive half-Maxwellian speed component, distribution f(v) ∝ v exp(-v²/2σ²)
// (flux-weighted wall-normal component for diffuse re-emission).  Sampled by
// inversion: v = σ sqrt(-2 ln u).
inline double sample_flux_normal(SplitMix64& g, double sigma) {
  double u = g.next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return sigma * std::sqrt(-2.0 * std::log(u));
}

// Mean molecular speed of a 3D Maxwellian with per-component std dev sigma:
// <|c|> = 2 sigma sqrt(2/pi).
inline double mean_speed(double sigma) {
  return 2.0 * sigma * std::sqrt(2.0 / std::numbers::pi);
}

}  // namespace cmdsmc::rng
