// `cmdsmc serve`: the long-running service mode.  Job specs arrive as
// lines — from stdin, or from *.job files dropped into a spool directory —
// are expanded through the sweep grammar, scheduled on the fleet, and
// answered as streaming JSONL records on stdout.
//
// Line protocol (one request per line):
//   <scenario> [key=value ...] [sweep:key=spec ...]
//   # comments and blank lines are ignored
// A malformed line is answered with a {"event": "reject", ...} record and
// the service keeps running; with the result cache on, a request whose
// content hash was already computed is answered instantly from the
// manifest — the Cd/Cl/heat lookup-service story.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fleet/scheduler.h"

namespace cmdsmc::fleet {

struct ServeOptions {
  FleetOptions fleet;
  // Default overrides prepended to every request line.
  std::vector<cli::KeyValue> defaults;
  // When set, poll this directory for *.job files instead of reading
  // stdin; each processed file is renamed to <name>.done.  Producers must
  // drop files in atomically: write under a temporary name (not *.job),
  // then rename into place.
  std::string spool_dir;
  int poll_ms = 200;
  // Drain what is available (stdin to EOF / one spool scan), then exit —
  // the testable one-shot service.  Continuous spool polling otherwise.
  bool once = false;
};

// Parses serve option keys (spool=, poll_ms=, once=).  Returns false when
// the key is not serve-addressed.
bool apply_serve_option(ServeOptions& options, const std::string& key,
                        const std::string& value);

// Parses one request line into jobs (sweep grammar allowed; job indices
// are local to the line, so identical requests hash identically and hit
// the cache regardless of arrival order).  Throws cli::ArgError.
std::vector<FleetJob> parse_job_line(const std::string& line,
                                     const std::vector<cli::KeyValue>& defaults);

// Runs the service loop: requests from `in` (or the spool directory),
// records to options.fleet.stream (and the manifest).  Returns the process
// exit code (0 on a clean drain; failed jobs are reported in-band).
int run_serve(ServeOptions options, std::istream& in, std::ostream& out);

}  // namespace cmdsmc::fleet
