// The fleet scheduler: a work queue pushing many *independent* Simulation
// instances through the machine concurrently — the paper's throughput story
// applied across runs instead of within one.
//
// Shape: `fleet.threads` worker threads, each owning ONE persistent
// cmdp::ThreadPool of `job.threads` lanes that is reused for every job the
// worker picks up (per-thread Workspace arenas stay warm across jobs).
// Jobs are fully independent; physics is thread-count invariant, so a job's
// result is bit-identical to the same spec run standalone via `cmdsmc run`
// with the job's derived seed.
//
// Failure isolation: a job that throws is recorded as failed with its error
// message and the fleet keeps going.  Every record is appended to the
// manifest JSONL and flushed as soon as the job finishes, so a killed fleet
// resumes from exactly the set of jobs whose records made it to disk; the
// manifest doubles as a content-hash result cache that skips
// already-completed jobs on restart (or on a repeated identical sweep).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/results.h"
#include "fleet/sweep.h"

namespace cmdsmc::cmdp {
class ThreadPool;
}

namespace cmdsmc::fleet {

struct FleetOptions {
  // Concurrent jobs (fleet.threads); 0 picks hardware_concurrency /
  // job_threads, at least 1.
  unsigned fleet_threads = 0;
  // cmdp lanes per job (job.threads).  Independent jobs saturate the
  // machine at job.threads=1; raise it to shorten individual job latency.
  unsigned job_threads = 1;
  // Output directory: manifest.jsonl, aggregate.json and per-job outputs.
  std::string dir = "fleet_out";
  // Consult the manifest's content-hash cache and skip completed jobs.
  bool cache = true;
  // Process at most this many fresh jobs this invocation (0 = unlimited);
  // the rest are recorded as skipped.  Incremental fills and resume tests.
  std::size_t max_jobs = 0;
  // Sinks each job writes (same names as the `sinks=` override).  Default
  // none: the manifest record is the result.  A job whose overrides carry
  // an explicit `sinks=` keeps that instead.
  std::vector<std::string> job_sinks;
  // When set, every record line is also streamed here (serve mode).
  std::ostream* stream = nullptr;
};

// Parses one fleet option key=value ("fleet.*" / "job.threads").  Returns
// false when the key is not fleet-addressed; throws cli::ArgError on a
// fleet-addressed key with an unknown suffix or malformed value.
bool apply_fleet_option(FleetOptions& options, const std::string& key,
                        const std::string& value);

// The fleet option keys, for error messages and docs.
const std::vector<std::string>& fleet_option_keys();

class FleetScheduler {
 public:
  // Creates the output directory, loads the manifest cache (when
  // options.cache) and starts the workers.  Throws on I/O failure.
  explicit FleetScheduler(FleetOptions options);
  ~FleetScheduler();

  FleetScheduler(const FleetScheduler&) = delete;
  FleetScheduler& operator=(const FleetScheduler&) = delete;

  const FleetOptions& options() const { return options_; }

  // Aggregate metadata (sweep scenario + axis keys); optional.
  void set_meta(const FleetMeta& meta) { meta_ = meta; }

  // Enqueues jobs; cache hits are recorded immediately (kCached) without
  // entering the queue, and a job whose content hash is already queued or
  // in flight waits on that run and replays its record when it completes
  // (the serve-mode "identical request" fast path).  Safe to call
  // repeatedly until close().
  void submit(const std::vector<FleetJob>& jobs);

  // Writes one out-of-band line (e.g. a serve-mode reject) to
  // options().stream under the same lock as the workers' record path, so
  // the JSONL protocol never interleaves mid-line.  No-op without a stream.
  void emit_line(const std::string& line);

  // No more submissions; workers drain the queue and exit.
  void close();

  // close() + join, then writes <dir>/aggregate.json and returns the
  // summary.  Records (in job-index order) remain readable afterwards.
  FleetSummary finish();

  // Valid after finish().
  const std::vector<JobRecord>& records() const { return records_; }

 private:
  void worker_main();
  JobRecord run_job(const FleetJob& job, cmdp::ThreadPool& pool);
  void record(JobRecord rec);

  FleetOptions options_;
  FleetMeta meta_;
  std::unordered_map<std::string, JobRecord> cache_;
  std::ofstream manifest_;
  std::string manifest_path_;
  std::chrono::steady_clock::time_point start_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<FleetJob> queue_;
  // Hash -> duplicates waiting on the queued/in-flight run of that hash.
  // An entry exists (possibly empty) for every hash currently in flight.
  std::unordered_map<std::string, std::vector<FleetJob>> pending_;
  bool closed_ = false;
  bool finished_ = false;
  std::size_t executed_ = 0;  // fresh jobs started (max_jobs budget)
  std::vector<JobRecord> records_;
  std::vector<std::thread> workers_;
};

}  // namespace cmdsmc::fleet
