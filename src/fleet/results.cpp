#include "fleet/results.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cmdsmc::fleet {

namespace {

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_string_field(std::string& out, const char* key,
                         const std::string& value, bool comma = true) {
  if (comma) out += ", ";
  out += '"';
  out += key;
  out += "\": \"";
  json_escape(out, value);
  out += '"';
}

void append_number_field(std::string& out, const char* key, double value) {
  out += ", \"";
  out += key;
  out += "\": ";
  if (!std::isfinite(value)) {
    // JSON has no nan/inf; a diverged run's metrics become null (read back
    // as NaN by from_json_line).
    out += "null";
    return;
  }
  char buf[40];
  // %.17g round-trips every finite double exactly: a cached record replayed
  // from the manifest carries bit-identical metrics to the original run.
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_u64_field(std::string& out, const char* key, std::uint64_t value) {
  out += ", \"";
  out += key;
  out += "\": ";
  out += std::to_string(value);
}

// --- Minimal JSON reader for records this subsystem wrote ------------------
// Flat object of string / number / bool fields plus one nested flat object
// of string fields ("params").  Returns false on anything else.

struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
};

bool parse_json_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (c.i < c.s.size()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.i >= c.s.size()) return false;
      const char esc = c.s[c.i++];
      switch (esc) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u':
          // Only ever written for control chars; decode the code unit
          // as a single byte (it is always < 0x20 in our own output).
          if (c.i + 4 > c.s.size()) return false;
          out += static_cast<char>(
              std::strtol(c.s.substr(c.i, 4).c_str(), nullptr, 16));
          c.i += 4;
          break;
        default: out += esc;
      }
    } else {
      out += ch;
    }
  }
  return false;  // unterminated
}

// A number / true / false / null, captured as raw text.
bool parse_json_scalar(Cursor& c, std::string& out) {
  c.skip_ws();
  out.clear();
  while (c.i < c.s.size()) {
    const char ch = c.s[c.i];
    if (ch == ',' || ch == '}' || ch == ' ' || ch == '\t' || ch == '\n' ||
        ch == '\r')
      break;
    out += ch;
    ++c.i;
  }
  return !out.empty();
}

// {"k": "v", ...} of string values only.
bool parse_flat_string_object(Cursor& c, std::vector<cli::KeyValue>& out) {
  if (!c.eat('{')) return false;
  out.clear();
  if (c.eat('}')) return true;
  while (true) {
    cli::KeyValue kv;
    if (!parse_json_string(c, kv.key)) return false;
    if (!c.eat(':')) return false;
    if (!parse_json_string(c, kv.value)) return false;
    out.push_back(std::move(kv));
    if (c.eat('}')) return true;
    if (!c.eat(',')) return false;
  }
}

struct ParsedRecord {
  std::vector<cli::KeyValue> strings;  // string fields, in order
  std::vector<cli::KeyValue> scalars;  // number/bool fields, raw text
  std::vector<cli::KeyValue> params;
};

bool parse_record(const std::string& line, ParsedRecord& out) {
  Cursor c{line};
  if (!c.eat('{')) return false;
  if (c.eat('}')) return true;
  while (true) {
    std::string key;
    if (!parse_json_string(c, key)) return false;
    if (!c.eat(':')) return false;
    if (c.peek('"')) {
      std::string v;
      if (!parse_json_string(c, v)) return false;
      out.strings.push_back({key, std::move(v)});
    } else if (c.peek('{')) {
      if (key != "params") return false;
      if (!parse_flat_string_object(c, out.params)) return false;
    } else {
      std::string v;
      if (!parse_json_scalar(c, v)) return false;
      out.scalars.push_back({key, std::move(v)});
    }
    if (c.eat('}')) break;
    if (!c.eat(',')) return false;
  }
  c.skip_ws();
  return c.i == line.size();
}

const std::string* find(const std::vector<cli::KeyValue>& kvs,
                        const char* key) {
  for (const cli::KeyValue& kv : kvs)
    if (kv.key == key) return &kv.value;
  return nullptr;
}

bool to_u64(const std::string& s, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0' && errno == 0;
}

bool to_double(const std::string& s, double& out) {
  if (s == "null") {
    // to_json_line writes non-finite metrics as null; round-trip as NaN.
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

void append_summary(std::string& out, const FleetSummary& s) {
  out += "\"jobs\": " + std::to_string(s.jobs);
  out += ", \"completed\": " + std::to_string(s.completed);
  out += ", \"cached\": " + std::to_string(s.cached);
  out += ", \"failed\": " + std::to_string(s.failed);
  out += ", \"skipped\": " + std::to_string(s.skipped);
  append_number_field(out, "elapsed_seconds", s.elapsed_seconds);
  append_number_field(out, "jobs_per_second", s.jobs_per_second);
}

}  // namespace

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kDone: return "done";
    case JobStatus::kCached: return "cached";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kSkipped: return "skipped";
  }
  return "?";
}

std::string JobRecord::to_json_line() const {
  std::string out = "{\"event\": \"job\"";
  append_u64_field(out, "index", index);
  append_string_field(out, "name", name);
  append_string_field(out, "scenario", scenario);
  append_string_field(out, "hash", hash);
  append_string_field(out, "status", job_status_name(status));
  append_u64_field(out, "seed", seed);
  out += ", \"params\": {";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    json_escape(out, params[i].key);
    out += "\": \"";
    json_escape(out, params[i].value);
    out += '"';
  }
  out += '}';
  append_number_field(out, "seconds", seconds);
  if (status == JobStatus::kFailed) append_string_field(out, "error", error);
  out += ", \"has_surface\": ";
  out += has_surface ? "true" : "false";
  append_number_field(out, "cd", cd);
  append_number_field(out, "cl", cl);
  append_number_field(out, "cp_max", cp_max);
  append_number_field(out, "heat_total", heat_total);
  append_u64_field(out, "collisions", collisions);
  append_u64_field(out, "candidates", candidates);
  append_u64_field(out, "flow", flow);
  append_u64_field(out, "steps", static_cast<std::uint64_t>(steps));
  append_number_field(out, "usec_per_particle_step", usec_per_particle_step);
  out += '}';
  return out;
}

std::optional<JobRecord> JobRecord::from_json_line(const std::string& line) {
  ParsedRecord p;
  if (!parse_record(line, p)) return std::nullopt;
  const std::string* event = find(p.strings, "event");
  if (event == nullptr || *event != "job") return std::nullopt;

  JobRecord r;
  const std::string* status = find(p.strings, "status");
  if (status == nullptr) return std::nullopt;
  if (*status == "done") r.status = JobStatus::kDone;
  else if (*status == "cached") r.status = JobStatus::kCached;
  else if (*status == "failed") r.status = JobStatus::kFailed;
  else if (*status == "skipped") r.status = JobStatus::kSkipped;
  else return std::nullopt;

  if (const std::string* v = find(p.strings, "name")) r.name = *v;
  if (const std::string* v = find(p.strings, "scenario")) r.scenario = *v;
  if (const std::string* v = find(p.strings, "hash")) r.hash = *v;
  if (const std::string* v = find(p.strings, "error")) r.error = *v;
  r.params = p.params;

  std::uint64_t u = 0;
  double d = 0.0;
  if (const std::string* v = find(p.scalars, "index"); v && to_u64(*v, u))
    r.index = static_cast<std::size_t>(u);
  if (const std::string* v = find(p.scalars, "seed")) {
    if (!to_u64(*v, u)) return std::nullopt;
    r.seed = u;
  } else {
    return std::nullopt;
  }
  if (const std::string* v = find(p.scalars, "seconds"); v && to_double(*v, d))
    r.seconds = d;
  if (const std::string* v = find(p.scalars, "has_surface"))
    r.has_surface = (*v == "true");
  if (const std::string* v = find(p.scalars, "cd"); v && to_double(*v, d))
    r.cd = d;
  if (const std::string* v = find(p.scalars, "cl"); v && to_double(*v, d))
    r.cl = d;
  if (const std::string* v = find(p.scalars, "cp_max"); v && to_double(*v, d))
    r.cp_max = d;
  if (const std::string* v = find(p.scalars, "heat_total");
      v && to_double(*v, d))
    r.heat_total = d;
  if (const std::string* v = find(p.scalars, "collisions"); v && to_u64(*v, u))
    r.collisions = u;
  if (const std::string* v = find(p.scalars, "candidates"); v && to_u64(*v, u))
    r.candidates = u;
  if (const std::string* v = find(p.scalars, "flow"); v && to_u64(*v, u))
    r.flow = u;
  if (const std::string* v = find(p.scalars, "steps"); v && to_u64(*v, u))
    r.steps = static_cast<std::int64_t>(u);
  if (const std::string* v = find(p.scalars, "usec_per_particle_step");
      v && to_double(*v, d))
    r.usec_per_particle_step = d;
  return r;
}

std::vector<JobRecord> load_manifest(const std::string& path) {
  std::vector<JobRecord> records;
  std::ifstream is(path);
  if (!is) return records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (auto rec = JobRecord::from_json_line(line))
      records.push_back(std::move(*rec));
    // Malformed lines (torn writes from a killed fleet) are skipped: the
    // job simply reruns on resume.
  }
  return records;
}

std::unordered_map<std::string, JobRecord> build_result_cache(
    const std::vector<JobRecord>& records) {
  std::unordered_map<std::string, JobRecord> cache;
  for (const JobRecord& r : records)
    if ((r.status == JobStatus::kDone || r.status == JobStatus::kCached) &&
        !r.hash.empty())
      cache[r.hash] = r;
  return cache;
}

FleetSummary summarize(const std::vector<JobRecord>& records,
                       double elapsed_seconds) {
  FleetSummary s;
  s.jobs = records.size();
  for (const JobRecord& r : records) {
    switch (r.status) {
      case JobStatus::kDone: ++s.completed; break;
      case JobStatus::kCached: ++s.cached; break;
      case JobStatus::kFailed: ++s.failed; break;
      case JobStatus::kSkipped: ++s.skipped; break;
    }
  }
  s.elapsed_seconds = elapsed_seconds;
  if (elapsed_seconds > 0.0)
    s.jobs_per_second = static_cast<double>(s.completed) / elapsed_seconds;
  return s;
}

std::string aggregate_json(const FleetMeta& meta, const FleetSummary& summary,
                           std::vector<JobRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.index < b.index;
            });
  std::string out = "{\n  \"fleet\": {\"scenario\": \"";
  json_escape(out, meta.scenario);
  out += "\", \"axes\": [";
  for (std::size_t i = 0; i < meta.axis_keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    json_escape(out, meta.axis_keys[i]);
    out += '"';
  }
  out += "], \"fleet_threads\": " + std::to_string(meta.fleet_threads);
  out += ", \"job_threads\": " + std::to_string(meta.job_threads);
  out += ", ";
  append_summary(out, summary);
  out += "},\n  \"table\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += "    ";
    out += records[i].to_json_line();
    if (i + 1 < records.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

void write_aggregate(const std::string& path, const FleetMeta& meta,
                     const FleetSummary& summary,
                     const std::vector<JobRecord>& records) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("fleet: cannot open " + path);
  os << aggregate_json(meta, summary, records);
  if (!os) throw std::runtime_error("fleet: write failed on " + path);
}

}  // namespace cmdsmc::fleet
