#include "fleet/sweep.h"

#include <cstdio>

#include "rng/rng.h"
#include "scenario/scenario.h"

namespace cmdsmc::fleet {

namespace {

constexpr char kSweepPrefix[] = "sweep:";
constexpr std::size_t kSweepPrefixLen = 6;

// Backstop against typo'd range counts expanding into absurd job lists.
constexpr std::size_t kMaxJobs = 100000;
constexpr int kMaxRangePoints = 10000;

// Keeps job names filesystem- and shell-safe; swept values are free-form
// override text ("0.5", "diffuse_isothermal", ...).
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '-';
  }
  return out;
}

std::string job_name(const std::string& scenario, std::size_t index,
                     const std::vector<cli::KeyValue>& params) {
  char idx[32];
  std::snprintf(idx, sizeof idx, "job%04zu", index);
  std::string name = sanitize(scenario);
  name += '_';
  name += idx;
  for (const cli::KeyValue& kv : params) {
    name += '_';
    name += sanitize(kv.key);
    name += '-';
    name += sanitize(kv.value);
  }
  return name;
}

// FNV-1a 64-bit, finished with one splitmix round so short inputs still
// diffuse into all 64 bits.
std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // Field separator so {"ab","c"} and {"a","bc"} hash apart.
  h ^= 0x1f;
  h *= 0x100000001b3ull;
  return h;
}

}  // namespace

std::size_t SweepRequest::job_count() const {
  std::size_t n = 1;
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty()) return 0;
    n *= axis.values.size();
    if (n > kMaxJobs)
      throw cli::ArgError("sweep expands to more than " +
                          std::to_string(kMaxJobs) + " jobs");
  }
  return n;
}

bool is_sweep_token(const std::string& token) {
  return token.rfind(kSweepPrefix, 0) == 0;
}

SweepAxis parse_sweep_axis(const std::string& token) {
  if (!is_sweep_token(token))
    throw cli::ArgError("not a sweep token: '" + token + "'");
  const std::string body = token.substr(kSweepPrefixLen);
  const std::size_t eq = body.find('=');
  if (eq == std::string::npos || eq == 0)
    throw cli::ArgError("sweep token '" + token +
                        "' must be sweep:key=v1,v2,... or sweep:key=lo..hi/N");
  SweepAxis axis;
  axis.key = body.substr(0, eq);
  const std::string spec = body.substr(eq + 1);
  if (spec.empty())
    throw cli::ArgError(axis.key + ": empty sweep value list");

  const std::size_t dots = spec.find("..");
  if (dots != std::string::npos) {
    // Range form lo..hi/N: N evenly spaced points, both ends inclusive.
    const std::size_t slash = spec.rfind('/');
    if (slash == std::string::npos || slash < dots + 2)
      throw cli::ArgError(axis.key + ": range sweep needs a point count, "
                          "e.g. " + axis.key + "=" + spec + "/8");
    const double lo =
        cli::parse_double(axis.key, spec.substr(0, dots));
    const double hi =
        cli::parse_double(axis.key, spec.substr(dots + 2, slash - dots - 2));
    const int n = cli::parse_int(axis.key, spec.substr(slash + 1));
    if (n < 2)
      throw cli::ArgError(axis.key + ": range sweep needs at least 2 points");
    if (n > kMaxRangePoints)
      throw cli::ArgError(axis.key + ": range sweep capped at " +
                          std::to_string(kMaxRangePoints) + " points");
    for (int i = 0; i < n; ++i) {
      const double v = lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(n - 1);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.9g", v);
      axis.values.emplace_back(buf);
    }
    return axis;
  }

  // List form v1,v2,...
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string v =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (v.empty())
      throw cli::ArgError(axis.key + ": empty value in sweep list '" + spec +
                          "'");
    axis.values.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return axis;
}

std::uint64_t derive_job_seed(std::uint64_t base_seed, std::uint64_t index) {
  // Counter-based hash of (base seed, job index): the same splitmix64
  // mixing the simulation RNG uses, salted so a fleet of one job never
  // degenerates to the base stream.
  return rng::hash4(base_seed, /*id=*/0xf1ee7ull, /*step=*/index, /*salt=*/1);
}

std::string job_content_hash(const std::string& scenario,
                             const std::vector<cli::KeyValue>& overrides,
                             std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, "cmdsmc-fleet-v1");
  h = fnv1a(h, scenario);
  for (const cli::KeyValue& kv : overrides) {
    h = fnv1a(h, kv.key);
    h = fnv1a(h, kv.value);
  }
  h = fnv1a(h, "seed=" + std::to_string(seed));
  h = rng::mix64(h);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::vector<FleetJob> expand_sweep(const SweepRequest& request) {
  for (std::size_t a = 0; a < request.axes.size(); ++a) {
    if (request.axes[a].values.empty())
      throw cli::ArgError(request.axes[a].key + ": empty sweep value list");
    for (std::size_t b = a + 1; b < request.axes.size(); ++b)
      if (request.axes[a].key == request.axes[b].key)
        throw cli::ArgError("duplicate sweep axis '" + request.axes[a].key +
                            "'");
  }
  const std::size_t total = request.job_count();

  // Resolve the scenario and the fixed overrides once; every sweep point
  // starts from this probe, so bad fixed keys fail before expansion and bad
  // sweep values fail on their first job.
  scenario::ScenarioSpec probe = scenario::get_scenario(request.scenario);
  scenario::apply_overrides(probe, request.fixed);

  bool seed_swept = false;
  for (const SweepAxis& axis : request.axes)
    if (axis.key == "seed") seed_swept = true;

  std::vector<FleetJob> jobs;
  jobs.reserve(total);
  for (std::size_t j = 0; j < total; ++j) {
    FleetJob job;
    job.index = j;
    job.scenario = request.scenario;
    job.overrides = request.fixed;

    // Row-major point: the last axis advances fastest.
    job.params.resize(request.axes.size());
    std::size_t rem = j;
    for (std::size_t a = request.axes.size(); a-- > 0;) {
      const SweepAxis& axis = request.axes[a];
      job.params[a] = {axis.key, axis.values[rem % axis.values.size()]};
      rem /= axis.values.size();
    }
    for (const cli::KeyValue& kv : job.params) job.overrides.push_back(kv);

    // Strict validation: the point must apply cleanly onto the spec
    // (unknown keys / malformed values throw, listing the valid keys).
    scenario::ScenarioSpec spec = probe;
    scenario::apply_overrides(spec, job.params);

    job.seed = seed_swept ? spec.config.seed
                          : derive_job_seed(spec.config.seed, j);
    job.name = job_name(request.scenario, j, job.params);
    job.hash = job_content_hash(job.scenario, job.overrides, job.seed);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace cmdsmc::fleet
