#include "fleet/scheduler.h"

#include <algorithm>
#include <filesystem>
#include <iostream>

#include "cmdp/thread_pool.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace cmdsmc::fleet {

namespace {

struct FleetOptionEntry {
  const char* key;
  const char* help;
  void (*apply)(FleetOptions&, const std::string&, const std::string&);
};

const FleetOptionEntry kFleetOptionTable[] = {
    {"fleet.threads", "concurrent jobs (0 = hardware/job.threads)",
     [](FleetOptions& o, const std::string& k, const std::string& v) {
       const int n = cli::parse_int(k, v);
       if (n < 0) throw cli::ArgError(k + ": must be >= 0");
       o.fleet_threads = static_cast<unsigned>(n);
     }},
    {"job.threads", "cmdp lanes per job",
     [](FleetOptions& o, const std::string& k, const std::string& v) {
       const int n = cli::parse_int(k, v);
       if (n < 1) throw cli::ArgError(k + ": must be >= 1");
       o.job_threads = static_cast<unsigned>(n);
     }},
    {"fleet.dir", "output directory (manifest.jsonl, aggregate.json)",
     [](FleetOptions& o, const std::string&, const std::string& v) {
       if (v.empty()) throw cli::ArgError("fleet.dir: empty path");
       o.dir = v;
     }},
    {"fleet.cache", "skip jobs already completed in the manifest",
     [](FleetOptions& o, const std::string& k, const std::string& v) {
       o.cache = cli::parse_bool(k, v);
     }},
    {"fleet.max_jobs", "run at most N fresh jobs this invocation (0 = all)",
     [](FleetOptions& o, const std::string& k, const std::string& v) {
       const int n = cli::parse_int(k, v);
       if (n < 0) throw cli::ArgError(k + ": must be >= 0");
       o.max_jobs = static_cast<std::size_t>(n);
     }},
    {"fleet.stream", "stream each job record to stdout as it completes",
     [](FleetOptions& o, const std::string& k, const std::string& v) {
       o.stream = cli::parse_bool(k, v) ? &std::cout : nullptr;
     }},
};

bool has_key(const std::vector<cli::KeyValue>& kvs, const char* key) {
  for (const cli::KeyValue& kv : kvs)
    if (kv.key == key) return true;
  return false;
}

// A completed record replayed under a duplicate job's identity: metrics
// from the completed run, index/name/params from the duplicate (indices
// are invocation-local).
JobRecord cached_replay(const JobRecord& done, const FleetJob& job) {
  JobRecord rec = done;
  rec.index = job.index;
  rec.name = job.name;
  rec.scenario = job.scenario;
  rec.hash = job.hash;
  rec.params = job.params;
  rec.seed = job.seed;
  rec.status = JobStatus::kCached;
  rec.seconds = 0.0;
  rec.error.clear();
  return rec;
}

}  // namespace

const std::vector<std::string>& fleet_option_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> k;
    for (const auto& e : kFleetOptionTable) k.push_back(e.key);
    return k;
  }();
  return keys;
}

bool apply_fleet_option(FleetOptions& options, const std::string& key,
                        const std::string& value) {
  for (const auto& e : kFleetOptionTable) {
    if (key == e.key) {
      e.apply(options, key, value);
      return true;
    }
  }
  // A fleet-addressed key with an unknown suffix is an error listing the
  // valid fleet keys (cli/args style), not a pass-through.
  if (key.rfind("fleet.", 0) == 0 || key == "job.threads" ||
      key.rfind("job.", 0) == 0)
    cli::throw_unknown_key(key, fleet_option_keys());
  return false;
}

FleetScheduler::FleetScheduler(FleetOptions options)
    : options_(std::move(options)) {
  if (options_.job_threads < 1) options_.job_threads = 1;
  if (options_.fleet_threads == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    options_.fleet_threads = std::max(1u, hw / options_.job_threads);
  }
  meta_.scenario = "fleet";
  meta_.fleet_threads = options_.fleet_threads;
  meta_.job_threads = options_.job_threads;

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec)
    throw std::runtime_error("fleet: cannot create directory " + options_.dir +
                             ": " + ec.message());
  manifest_path_ = options_.dir + "/manifest.jsonl";
  if (options_.cache) cache_ = build_result_cache(load_manifest(manifest_path_));
  manifest_.open(manifest_path_, std::ios::app);
  if (!manifest_)
    throw std::runtime_error("fleet: cannot open " + manifest_path_);

  start_ = std::chrono::steady_clock::now();
  workers_.reserve(options_.fleet_threads);
  for (unsigned w = 0; w < options_.fleet_threads; ++w)
    workers_.emplace_back([this] { worker_main(); });
}

FleetScheduler::~FleetScheduler() {
  if (!finished_) {
    close();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }
}

void FleetScheduler::submit(const std::vector<FleetJob>& jobs) {
  for (const FleetJob& job : jobs) {
    bool cached = false;
    bool enqueued = false;
    JobRecord rec;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) throw std::logic_error("fleet: submit after close");
      if (options_.cache) {
        // cache_ and pending_ are shared with the workers' record() path;
        // consult them under the same lock.
        auto hit = cache_.find(job.hash);
        if (hit != cache_.end()) {
          rec = cached_replay(hit->second, job);
          cached = true;
        } else {
          auto flight = pending_.find(job.hash);
          if (flight != pending_.end()) {
            // The same content is already queued or running: wait on that
            // run instead of repeating it.  record() replays us when the
            // original completes.
            flight->second.push_back(job);
          } else {
            pending_.emplace(job.hash, std::vector<FleetJob>{});
            queue_.push_back(job);
            enqueued = true;
          }
        }
      } else {
        queue_.push_back(job);
        enqueued = true;
      }
    }
    if (cached)
      record(std::move(rec));
    else if (enqueued)
      cv_.notify_one();
  }
}

void FleetScheduler::emit_line(const std::string& line) {
  if (options_.stream == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  *options_.stream << line << '\n';
  options_.stream->flush();
}

void FleetScheduler::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void FleetScheduler::worker_main() {
  // One persistent pool per worker: its Workspace arenas are reused by
  // every job this lane of the fleet runs.
  cmdp::ThreadPool pool(options_.job_threads);
  while (true) {
    FleetJob job;
    bool skip = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
      if (options_.max_jobs > 0 && executed_ >= options_.max_jobs)
        skip = true;
      else
        ++executed_;
    }
    if (skip) {
      JobRecord rec;
      rec.index = job.index;
      rec.name = job.name;
      rec.scenario = job.scenario;
      rec.hash = job.hash;
      rec.params = job.params;
      rec.seed = job.seed;
      rec.status = JobStatus::kSkipped;
      record(std::move(rec));
      continue;
    }
    record(run_job(job, pool));
  }
}

JobRecord FleetScheduler::run_job(const FleetJob& job,
                                  cmdp::ThreadPool& pool) {
  JobRecord rec;
  rec.index = job.index;
  rec.name = job.name;
  rec.scenario = job.scenario;
  rec.hash = job.hash;
  rec.params = job.params;
  rec.seed = job.seed;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    scenario::ScenarioSpec spec = scenario::get_scenario(job.scenario);
    scenario::apply_overrides(spec, job.overrides);
    // The derived per-job seed (see fleet/sweep.h).  For a seed-swept axis
    // this equals the override's value, so the assignment is idempotent.
    spec.config.seed = job.seed;
    spec.output_prefix = options_.dir + "/" + job.name;
    // Fleet jobs are quiet by default: the record is the result.  An
    // explicit sinks= override on the job wins over the fleet default.
    if (!has_key(job.overrides, "sinks")) spec.sinks = options_.job_sinks;

    scenario::Runner runner(std::move(spec));
    runner.add_spec_sinks();
    const scenario::RunResult r = runner.run(&pool);

    rec.status = JobStatus::kDone;
    rec.flow = r.flow_count;
    rec.steps = r.total_steps;
    rec.collisions = r.counters.collisions;
    rec.candidates = r.counters.candidates;
    rec.usec_per_particle_step = r.usec_per_particle_step;
    if (r.surface) {
      rec.has_surface = true;
      rec.cd = r.surface->cd;
      rec.cl = r.surface->cl;
      rec.cp_max = r.cp_max();
      rec.heat_total = r.surface->heat_total;
    }
  } catch (const std::exception& e) {
    // Failure isolation: one diverged or misconfigured job must not kill
    // the fleet.  The record carries the error; the fleet exit code and
    // aggregate count it.
    rec.status = JobStatus::kFailed;
    rec.error = e.what();
  }
  rec.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return rec;
}

void FleetScheduler::record(JobRecord rec) {
  const std::string line = rec.to_json_line();
  std::vector<JobRecord> replays;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Stream + flush per record: a killed fleet loses at most the jobs that
    // were in flight, and `tail -f manifest.jsonl` is the live results feed.
    manifest_ << line << '\n';
    manifest_.flush();
    if (options_.stream != nullptr) {
      *options_.stream << line << '\n';
      options_.stream->flush();
    }
    if (options_.cache) {
      if (rec.status == JobStatus::kDone) cache_[rec.hash] = rec;
      auto flight = pending_.find(rec.hash);
      if (flight != pending_.end()) {
        std::vector<FleetJob> waiters = std::move(flight->second);
        pending_.erase(flight);
        if (!waiters.empty()) {
          if (rec.status == JobStatus::kDone) {
            for (const FleetJob& dup : waiters)
              replays.push_back(cached_replay(rec, dup));
          } else {
            // The run the duplicates were waiting on failed or was
            // skipped: run the first of them for real; the rest keep
            // waiting on that attempt.
            FleetJob retry = std::move(waiters.front());
            waiters.erase(waiters.begin());
            pending_.emplace(retry.hash, std::move(waiters));
            queue_.push_back(std::move(retry));
            cv_.notify_one();
          }
        }
      }
    }
    records_.push_back(std::move(rec));
  }
  for (JobRecord& replay : replays) record(std::move(replay));
}

FleetSummary FleetScheduler::finish() {
  close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  finished_ = true;

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::sort(records_.begin(), records_.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.index < b.index;
            });
  FleetSummary summary = summarize(records_, elapsed);
  summary.manifest_path = manifest_path_;
  summary.aggregate_path = options_.dir + "/aggregate.json";
  write_aggregate(summary.aggregate_path, meta_, summary, records_);
  return summary;
}

}  // namespace cmdsmc::fleet
