// Sweep grammar: parameter-sweep tokens compiled into a deterministic job
// list of fully-resolved scenario runs.
//
//   sweep:mach=4,8,12            explicit value list
//   sweep:lambda=0.01..1/8       linear range, 8 points inclusive
//   sweep:body.twall=0.5,1,2     any override key is sweepable
//
// Multiple sweep tokens cross-product (first axis slowest, last fastest),
// so the job order — and therefore every derived job seed, name and content
// hash — is a pure function of the request.  Validation reuses the strict
// cli/args error style: an unknown or ill-formed key throws cli::ArgError
// listing the valid keys, never a silent no-op.
//
// Every job gets its own RNG stream: the job seed is a splitmix-style hash
// of (base seed, job index), so sweep points never share streams even when
// the user pins seed= (the pinned value simply becomes the base).  The one
// exception is an explicit `sweep:seed=...` axis, where the swept values
// are used verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cli/args.h"

namespace cmdsmc::fleet {

// One swept parameter: the override key and its value list, in sweep order.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

// A sweep request: the scenario, the non-swept overrides (application
// order), and the sweep axes (cross-product order).
struct SweepRequest {
  std::string scenario;
  std::vector<cli::KeyValue> fixed;
  std::vector<SweepAxis> axes;

  // Cross-product size (1 when there are no axes: a single-job "sweep").
  std::size_t job_count() const;
};

// True when the token uses the sweep grammar ("sweep:key=spec").
bool is_sweep_token(const std::string& token);

// Parses one "sweep:key=spec" token.  Throws cli::ArgError on a malformed
// token (missing '=', empty key, empty/short value list, bad range).
SweepAxis parse_sweep_axis(const std::string& token);

// One fully-resolved job of a sweep.
struct FleetJob {
  std::size_t index = 0;     // position in the request's job order
  std::string scenario;
  std::string name;          // filesystem-safe: <scenario>_jobNNNN_<params>
  // All overrides for this job in application order: request.fixed followed
  // by this job's sweep point.  Applying these to the scenario and setting
  // config.seed = `seed` reproduces the job standalone (`cmdsmc run`).
  std::vector<cli::KeyValue> overrides;
  std::vector<cli::KeyValue> params;  // the sweep point only (reporting)
  std::uint64_t seed = 0;    // derived (or swept-verbatim) RNG seed
  std::string hash;          // content hash of (scenario, overrides, seed)
};

// Splitmix-style per-job seed: a counter-based hash of (base seed, index).
// Distinct for every job index, even for a pinned base seed.
std::uint64_t derive_job_seed(std::uint64_t base_seed, std::uint64_t index);

// Content hash of a resolved job (hex string).  Covers the scenario name,
// every override in application order and the final seed — two jobs hash
// equal iff they run the same physics.
std::string job_content_hash(const std::string& scenario,
                             const std::vector<cli::KeyValue>& overrides,
                             std::uint64_t seed);

// Expands the request into its deterministic job list.  Every sweep point
// is validated by applying it onto the scenario spec, so unknown keys and
// malformed values throw cli::ArgError exactly like `cmdsmc run` overrides.
std::vector<FleetJob> expand_sweep(const SweepRequest& request);

}  // namespace cmdsmc::fleet
