#include "fleet/serve.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <unordered_set>

namespace cmdsmc::fleet {

namespace {

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
}

std::string reject_line(const std::string& request, const std::string& error) {
  std::string out = "{\"event\": \"reject\", \"request\": \"";
  json_escape(out, request);
  out += "\", \"error\": \"";
  json_escape(out, error);
  out += "\"}";
  return out;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

// Submits every request line of `text`; rejects are streamed in-band
// through the scheduler's lock so they never interleave with the record
// lines the workers emit concurrently.
void submit_text(FleetScheduler& fleet, const std::string& text,
                 const std::vector<cli::KeyValue>& defaults) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      fleet.submit(parse_job_line(line, defaults));
    } catch (const std::exception& e) {
      fleet.emit_line(reject_line(line, e.what()));
    }
  }
}

// One spool scan: processes every *.job file (sorted, so the intake order
// is deterministic), renaming each to <name>.done.  Returns files seen.
//
// Producers must move job files into the spool atomically (write to a
// temporary name — anything not ending in .job — then rename): a file is
// read the moment a scan sees it, so a non-atomic write can be caught
// half-written.  `submitted` holds files whose .done rename failed; they
// were already submitted once and must not be resubmitted every poll.
std::size_t scan_spool(FleetScheduler& fleet, const std::string& dir,
                       const std::vector<cli::KeyValue>& defaults,
                       std::unordered_set<std::string>& submitted) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".job") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    if (submitted.count(file.string()) > 0) continue;
    std::ifstream in(file);
    std::ostringstream text;
    text << in.rdbuf();
    submit_text(fleet, text.str(), defaults);
    fs::path done = file;
    done += ".done";
    fs::rename(file, done, ec);
    if (ec) {
      // The file stays behind but its jobs are in flight; remember it so
      // the next poll does not resubmit (and re-run) the same work.
      std::fprintf(stderr, "serve: cannot retire %s: %s\n",
                   file.c_str(), ec.message().c_str());
      submitted.insert(file.string());
    } else {
      submitted.erase(file.string());
    }
  }
  return files.size();
}

}  // namespace

bool apply_serve_option(ServeOptions& options, const std::string& key,
                        const std::string& value) {
  if (key == "spool") {
    if (value.empty()) throw cli::ArgError("spool: empty path");
    options.spool_dir = value;
    return true;
  }
  if (key == "poll_ms") {
    const int n = cli::parse_int(key, value);
    if (n < 1) throw cli::ArgError(key + ": must be >= 1");
    options.poll_ms = n;
    return true;
  }
  if (key == "once") {
    options.once = cli::parse_bool(key, value);
    return true;
  }
  return false;
}

std::vector<FleetJob> parse_job_line(
    const std::string& line, const std::vector<cli::KeyValue>& defaults) {
  const std::vector<std::string> tokens = split_ws(line);
  if (tokens.empty()) throw cli::ArgError("empty job request");
  SweepRequest request;
  request.scenario = tokens[0];
  request.fixed = defaults;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    if (is_sweep_token(tokens[i])) {
      request.axes.push_back(parse_sweep_axis(tokens[i]));
    } else {
      const std::vector<cli::KeyValue> kv =
          cli::parse_key_values({tokens[i]});
      request.fixed.push_back(kv[0]);
    }
  }
  return expand_sweep(request);
}

int run_serve(ServeOptions options, std::istream& in, std::ostream& out) {
  options.fleet.stream = &out;
  FleetScheduler fleet(options.fleet);
  FleetMeta meta;
  meta.scenario = "serve";
  meta.fleet_threads = fleet.options().fleet_threads;
  meta.job_threads = fleet.options().job_threads;
  fleet.set_meta(meta);

  if (options.spool_dir.empty()) {
    // stdin mode: one request per line until EOF.
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      try {
        fleet.submit(parse_job_line(line, options.defaults));
      } catch (const std::exception& e) {
        fleet.emit_line(reject_line(line, e.what()));
      }
    }
  } else {
    // Spool mode: poll for *.job files; `once` drains a single scan.
    std::unordered_set<std::string> submitted;
    while (true) {
      scan_spool(fleet, options.spool_dir, options.defaults, submitted);
      if (options.once) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
    }
  }

  const FleetSummary summary = fleet.finish();
  std::fprintf(stderr,
               "serve: %zu jobs (%zu run, %zu cached, %zu failed) in %.2fs; "
               "aggregate %s\n",
               summary.jobs, summary.completed, summary.cached, summary.failed,
               summary.elapsed_seconds, summary.aggregate_path.c_str());
  return 0;
}

}  // namespace cmdsmc::fleet
