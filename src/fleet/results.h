// Fleet results: one JobRecord per scheduled job, streamed as JSONL while
// the fleet runs (the manifest), and folded into a fleet-level aggregate
// JSON at the end (Cd/Cl/heat tables keyed by the swept parameters).
//
// The manifest doubles as the result cache and the resume log: every
// record carries the job's content hash, so a restarted fleet loads the
// manifest, keys completed records by hash, and skips already-completed
// jobs (re-emitting their cached metrics).  Records are flat JSON objects
// parseable by JobRecord::from_json_line — the only JSON this subsystem
// ever reads is the JSON it wrote.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cli/args.h"

namespace cmdsmc::fleet {

enum class JobStatus {
  kDone,     // ran to completion this invocation
  kCached,   // skipped: metrics replayed from a completed manifest record
  kFailed,   // threw; error carries what() (failure isolation: fleet goes on)
  kSkipped,  // not run (fleet.max_jobs budget exhausted)
};

const char* job_status_name(JobStatus s);

// Everything one job contributes to the manifest stream and the aggregate.
struct JobRecord {
  std::size_t index = 0;
  std::string name;
  std::string scenario;
  std::string hash;
  JobStatus status = JobStatus::kDone;
  std::uint64_t seed = 0;
  std::vector<cli::KeyValue> params;  // the sweep point (may be empty)
  double seconds = 0.0;               // job wall time (0 for cached/skipped)
  std::string error;                  // what() for kFailed

  // Metrics (valid for kDone/kCached).
  bool has_surface = false;
  double cd = 0.0, cl = 0.0, cp_max = 0.0, heat_total = 0.0;
  std::uint64_t collisions = 0, candidates = 0;
  std::uint64_t flow = 0;
  std::int64_t steps = 0;
  double usec_per_particle_step = 0.0;

  // One JSON object, single line, no trailing newline.
  std::string to_json_line() const;
  // Parses a line written by to_json_line; nullopt on malformed input.
  static std::optional<JobRecord> from_json_line(const std::string& line);
};

// Reads every well-formed record from a manifest JSONL file (missing file
// => empty).  Malformed lines (e.g. a torn final line after a kill) are
// skipped, which is exactly the resume semantics we want.
std::vector<JobRecord> load_manifest(const std::string& path);

// Completed records (kDone/kCached) keyed by content hash — the result
// cache a resumed or repeated fleet consults.  Later records win.
std::unordered_map<std::string, JobRecord> build_result_cache(
    const std::vector<JobRecord>& records);

// Fleet-level metadata echoed into the aggregate.
struct FleetMeta {
  std::string scenario;          // "serve" for mixed-scenario service runs
  std::vector<std::string> axis_keys;
  std::size_t fleet_threads = 1;
  std::size_t job_threads = 1;
};

// Counts + timing for the aggregate header and the CLI exit status.
struct FleetSummary {
  std::size_t jobs = 0;
  std::size_t completed = 0;  // kDone
  std::size_t cached = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  double elapsed_seconds = 0.0;
  double jobs_per_second = 0.0;  // executed (kDone) jobs / elapsed
  std::string manifest_path;
  std::string aggregate_path;
};

FleetSummary summarize(const std::vector<JobRecord>& records,
                       double elapsed_seconds);

// The fleet aggregate: header (meta + summary) plus a result table in job
// order, each row keyed by its swept parameters.
std::string aggregate_json(const FleetMeta& meta, const FleetSummary& summary,
                           std::vector<JobRecord> records);

// Writes aggregate_json to `path`; throws std::runtime_error on I/O failure.
void write_aggregate(const std::string& path, const FleetMeta& meta,
                     const FleetSummary& summary,
                     const std::vector<JobRecord>& records);

}  // namespace cmdsmc::fleet
