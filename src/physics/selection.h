// The McDonald–Baganoff pairwise selection rule (paper eqs. 3–8).
//
// After the randomized sort, even/odd neighbours within a cell form candidate
// pairs.  Each candidate pair collides with probability
//
//     P / P∞  =  (n / n∞) (g / g∞)^(1 - 4/alpha)            (eq. 7)
//
// which for Maxwell molecules (alpha = 4) reduces to P/P∞ = n/n∞ (eq. 8).
// P∞ is tied to the desired freestream mean free path: in this pairing every
// particle is a member of one candidate pair per step, so its collision
// frequency is P per time step, the mean collision time is t_c = 1/P steps
// and the mean free path is lambda = <|c'|> t_c.  Hence
//
//     P∞ = <|c'|>∞ / lambda∞ ,  <|c'|> = 2 sigma sqrt(2/pi).
//
// lambda∞ = 0 selects the paper's near-continuum mode: every candidate pair
// collides (P = 1), and the number of collisions in a cell is half the number
// of particles in it.
#pragma once

#include <cmath>

#include "physics/gas_model.h"

namespace cmdsmc::physics {

// Freestream collision probability per candidate pair from the target mean
// free path (in cell widths) and thermal std dev sigma (cells per step).
// Returns 1 for lambda <= 0 (near continuum).
double pc_from_lambda(double lambda_inf, double sigma);

// Mean relative speed between two molecules of a 3D Maxwellian with
// per-component std dev sigma: sqrt(2) * <|c|> = 4 sigma / sqrt(pi).
double mean_relative_speed(double sigma);

struct SelectionRule {
  double pc_inf = 1.0;   // freestream per-pair collision probability
  double n_inf = 1.0;    // freestream number density (particles per cell)
  double g_inf = 1.0;    // freestream mean relative speed
  double g_exponent = 0.0;
  bool near_continuum = true;

  static SelectionRule make(const GasModel& gas, double lambda_inf,
                            double sigma, double n_inf);

  // Collision probability for a candidate pair in a cell of density n_local
  // with relative speed g (g ignored for Maxwell molecules).  Clipped to 1.
  double probability(double n_local, double g) const {
    if (near_continuum) return 1.0;
    double p = pc_inf * (n_local / n_inf);
    if (g_exponent != 0.0 && g_inf > 0.0)
      p *= std::pow(g / g_inf, g_exponent);
    return p < 1.0 ? p : 1.0;
  }
};

}  // namespace cmdsmc::physics
