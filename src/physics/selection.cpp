#include "physics/selection.h"

#include <numbers>
#include <stdexcept>

namespace cmdsmc::physics {

double mean_relative_speed(double sigma) {
  return 4.0 * sigma / std::sqrt(std::numbers::pi);
}

double pc_from_lambda(double lambda_inf, double sigma) {
  if (lambda_inf <= 0.0) return 1.0;
  const double mean_speed = 2.0 * sigma * std::sqrt(2.0 / std::numbers::pi);
  const double pc = mean_speed / lambda_inf;
  return pc < 1.0 ? pc : 1.0;
}

SelectionRule SelectionRule::make(const GasModel& gas, double lambda_inf,
                                  double sigma, double n_inf) {
  if (sigma <= 0.0)
    throw std::invalid_argument("SelectionRule: sigma must be positive");
  if (n_inf <= 0.0)
    throw std::invalid_argument("SelectionRule: n_inf must be positive");
  SelectionRule rule;
  rule.near_continuum = lambda_inf <= 0.0;
  rule.pc_inf = pc_from_lambda(lambda_inf, sigma);
  rule.n_inf = n_inf;
  rule.g_inf = mean_relative_speed(sigma);
  rule.g_exponent = gas.g_exponent();
  return rule;
}

}  // namespace cmdsmc::physics
