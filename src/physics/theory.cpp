#include "physics/theory.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cmdsmc::physics::theory {

namespace {
constexpr double kPi = std::numbers::pi;
}

double sound_speed(double sigma, double gamma) {
  return std::sqrt(gamma) * sigma;
}

double normal_shock_density_ratio(double m1, double gamma) {
  const double m2 = m1 * m1;
  return ((gamma + 1.0) * m2) / ((gamma - 1.0) * m2 + 2.0);
}

double normal_shock_pressure_ratio(double m1, double gamma) {
  const double m2 = m1 * m1;
  return 1.0 + 2.0 * gamma / (gamma + 1.0) * (m2 - 1.0);
}

double normal_shock_temperature_ratio(double m1, double gamma) {
  return normal_shock_pressure_ratio(m1, gamma) /
         normal_shock_density_ratio(m1, gamma);
}

double normal_shock_downstream_mach(double m1, double gamma) {
  const double m2 = m1 * m1;
  return std::sqrt((1.0 + 0.5 * (gamma - 1.0) * m2) /
                   (gamma * m2 - 0.5 * (gamma - 1.0)));
}

double deflection_angle(double beta, double m1, double gamma) {
  const double m2 = m1 * m1;
  const double sb = std::sin(beta);
  const double num = 2.0 * (m2 * sb * sb - 1.0) / std::tan(beta);
  const double den = m2 * (gamma + std::cos(2.0 * beta)) + 2.0;
  return std::atan(num / den);
}

double oblique_shock_angle(double theta, double m1, double gamma) {
  if (theta <= 0.0) return std::asin(1.0 / m1);  // Mach wave
  // Scan for the maximum deflection to detect detachment, then bisect on the
  // weak branch [mach angle, beta_max].
  const double beta_min = std::asin(1.0 / m1);
  double beta_max_defl = beta_min;
  double max_defl = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const double b = beta_min + (kPi / 2.0 - beta_min) * i / 1000.0;
    const double d = deflection_angle(b, m1, gamma);
    if (d > max_defl) {
      max_defl = d;
      beta_max_defl = b;
    }
  }
  if (theta > max_defl)
    throw std::domain_error("oblique_shock_angle: shock detached");
  double lo = beta_min;
  double hi = beta_max_defl;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (deflection_angle(mid, m1, gamma) < theta)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

double oblique_shock_density_ratio(double beta, double m1, double gamma) {
  return normal_shock_density_ratio(m1 * std::sin(beta), gamma);
}

double oblique_shock_downstream_mach(double beta, double theta, double m1,
                                     double gamma) {
  const double m1n = m1 * std::sin(beta);
  const double m2n = normal_shock_downstream_mach(m1n, gamma);
  return m2n / std::sin(beta - theta);
}

double prandtl_meyer(double mach, double gamma) {
  if (mach < 1.0)
    throw std::domain_error("prandtl_meyer: requires M >= 1");
  const double k = std::sqrt((gamma + 1.0) / (gamma - 1.0));
  const double m2m1 = std::sqrt(mach * mach - 1.0);
  return k * std::atan(m2m1 / k) - std::atan(m2m1);
}

double mach_from_prandtl_meyer(double nu, double gamma) {
  const double k = std::sqrt((gamma + 1.0) / (gamma - 1.0));
  const double nu_max = (k - 1.0) * kPi / 2.0;
  if (nu < 0.0 || nu >= nu_max)
    throw std::domain_error("mach_from_prandtl_meyer: nu out of range");
  double lo = 1.0;
  double hi = 1e4;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (prandtl_meyer(mid, gamma) < nu)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

double isentropic_density_ratio(double mach, double gamma) {
  return std::pow(1.0 + 0.5 * (gamma - 1.0) * mach * mach,
                  -1.0 / (gamma - 1.0));
}

double maxwell_mean_speed(double sigma) {
  return 2.0 * sigma * std::sqrt(2.0 / kPi);
}

double knudsen_number(double lambda, double length) {
  return lambda / length;
}

double reynolds_from_mach_knudsen(double mach, double kn, double gamma) {
  return std::sqrt(gamma * kPi / 2.0) * mach / kn;
}

}  // namespace cmdsmc::physics::theory
