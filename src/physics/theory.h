// Inviscid compressible-flow and kinetic-theory reference relations.
//
// The paper validates the simulation against 2D inviscid theory: a 45° shock
// angle and a 3.7x density rise for Mach 4 flow over a 30° wedge (gamma =
// 7/5), plus the Prandtl–Meyer fan at the wedge corner.  These relations are
// used by the test suite and by the table/figure benches to print
// paper-vs-theory-vs-measured rows.
#pragma once

namespace cmdsmc::physics::theory {

// Diatomic gas with 3 translational + 2 rotational DOF.
inline constexpr double kGammaDiatomic = 7.0 / 5.0;

// Sound speed for per-component thermal std dev sigma (= sqrt(RT)).
double sound_speed(double sigma, double gamma = kGammaDiatomic);

// --- Normal (Rankine–Hugoniot) shock relations, upstream normal Mach m1 ---
double normal_shock_density_ratio(double m1, double gamma = kGammaDiatomic);
double normal_shock_pressure_ratio(double m1, double gamma = kGammaDiatomic);
double normal_shock_temperature_ratio(double m1,
                                      double gamma = kGammaDiatomic);
double normal_shock_downstream_mach(double m1, double gamma = kGammaDiatomic);

// --- Oblique shocks ---
// Flow deflection angle theta (radians) produced by a shock of wave angle
// beta at upstream Mach m1 (the theta–beta–M relation).
double deflection_angle(double beta, double m1, double gamma = kGammaDiatomic);

// Weak-solution wave angle beta (radians) for deflection theta at Mach m1.
// Throws std::domain_error if theta exceeds the maximum attached deflection.
double oblique_shock_angle(double theta, double m1,
                           double gamma = kGammaDiatomic);

// Density ratio across an oblique shock of wave angle beta.
double oblique_shock_density_ratio(double beta, double m1,
                                   double gamma = kGammaDiatomic);

// Downstream Mach number after an oblique shock (beta, theta known).
double oblique_shock_downstream_mach(double beta, double theta, double m1,
                                     double gamma = kGammaDiatomic);

// --- Prandtl–Meyer expansion ---
// Prandtl–Meyer function nu(M) in radians (M >= 1).
double prandtl_meyer(double mach, double gamma = kGammaDiatomic);
// Inverse: Mach number with nu(M) = nu (radians), Newton iteration.
double mach_from_prandtl_meyer(double nu, double gamma = kGammaDiatomic);
// Isentropic density ratio rho/rho0 as a function of Mach (stagnation ref).
double isentropic_density_ratio(double mach, double gamma = kGammaDiatomic);

// --- Kinetic theory ---
// Mean molecular speed of a 3D Maxwellian with per-component std dev sigma.
double maxwell_mean_speed(double sigma);
// Kn = lambda / L.
double knudsen_number(double lambda, double length);
// Reynolds number estimate from Mach and Knudsen via the standard
// Re = sqrt(gamma pi / 2) * M / Kn relation for a hard-sphere-like gas.
double reynolds_from_mach_knudsen(double mach, double kn,
                                  double gamma = kGammaDiatomic);

}  // namespace cmdsmc::physics::theory
