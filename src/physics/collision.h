// The McDonald–Baganoff collision kernel (paper eqs. 9–18).
//
// State per particle: translational velocity u (3 components) and rotational
// velocity r (2 components) — a perfect diatomic molecule with 3+2 degrees of
// freedom.  Writing S_c = a_c + b_c and G_c = a_c - b_c for each of the five
// components c of the pair (a, b), conservation of momentum (W' = W, paper
// eq. 16) plus the assumption that the mean rotational velocity is unchanged
// (eq. 17) reduce conservation of energy to
//
//        sum_c G'_c^2  =  sum_c G_c^2                       (eq. 18)
//
// Any G' on that 5-sphere is admissible.  The computationally cheapest valid
// choice — and the paper's — is to re-use the pre-collision components:
// permute the five G_c with the particle's permutation vector and give each a
// random sign.  The norm is preserved exactly, so energy conservation is
// exact in exact arithmetic and machine-exact up to the final halving.
//
// Fixed-point note: we halve (S + G') stochastically and recover the partner
// as b' = S - a', which conserves momentum *bit-exactly* and makes the energy
// error a zero-mean ±1 ulp noise (the paper's stochastic rounding).  Plain
// truncation (`collide_pair_truncating`) is kept for the energy-drift
// ablation.
#pragma once

#include <cstdint>

#include "physics/numeric.h"
#include "rng/permutation.h"

namespace cmdsmc::physics {

inline constexpr int kDof = 5;  // 3 translational + 2 rotational

// Velocities of one collision pair as two 5-vectors:
// [ux, uy, uz, r0, r1] per particle.
template <class Real>
struct Pair5 {
  Real a[kDof];
  Real b[kDof];
};

// Random-bit layout inside the 64-bit draw handed to the kernel:
//   bits  0..4  : sign bits for the five permuted components
//   bits  5..9  : stochastic-rounding bits for the five halvings
//   bits 10..25 : transposition indices (consumed by the caller)
inline constexpr int kSignShift = 0;
inline constexpr int kRoundShift = 5;
inline constexpr int kTransposeShift = 10;

// Collides the pair in place.  `perm` re-orders the relative components;
// `bits` supplies signs and rounding bits as laid out above.
template <class Real>
inline void collide_pair(Pair5<Real>& p, rng::PackedPerm perm,
                         std::uint64_t bits) {
  using N = Num<Real>;
  Real sum[kDof];
  Real rel[kDof];
  for (int c = 0; c < kDof; ++c) {
    sum[c] = p.a[c] + p.b[c];
    rel[c] = p.a[c] - p.b[c];
  }
  Real perm_rel[kDof];
  rng::apply_perm(perm, rel, perm_rel);
  for (int c = 0; c < kDof; ++c) {
    const bool neg = (bits >> (kSignShift + c)) & 1u;
    const Real g = N::neg_if(perm_rel[c], neg);
    const std::uint32_t rbit =
        static_cast<std::uint32_t>(bits >> (kRoundShift + c)) & 1u;
    const Real a_new = N::half(sum[c] + g, rbit);
    p.a[c] = a_new;
    p.b[c] = sum[c] - a_new;
  }
}

// Ablation variant: consistent truncation of the halving (fixed point only
// differs).  Demonstrates the paper's energy loss in stagnation regions.
template <class Real>
inline void collide_pair_truncating(Pair5<Real>& p, rng::PackedPerm perm,
                                    std::uint64_t bits) {
  using N = Num<Real>;
  Real sum[kDof];
  Real rel[kDof];
  for (int c = 0; c < kDof; ++c) {
    sum[c] = p.a[c] + p.b[c];
    rel[c] = p.a[c] - p.b[c];
  }
  Real perm_rel[kDof];
  rng::apply_perm(perm, rel, perm_rel);
  for (int c = 0; c < kDof; ++c) {
    const bool neg = (bits >> (kSignShift + c)) & 1u;
    const Real g = N::neg_if(perm_rel[c], neg);
    const Real a_new = N::half_truncate(sum[c] + g);
    p.a[c] = a_new;
    p.b[c] = sum[c] - a_new;
  }
}

// One-sided (Nanbu-style) update: only particle `a` receives its
// post-collision velocity; `b` is read-only.  Conserves momentum and energy
// only in the mean — implemented for the baseline comparison.
template <class Real>
inline void collide_one_sided(Real (&a)[kDof], const Real (&b)[kDof],
                              rng::PackedPerm perm, std::uint64_t bits) {
  using N = Num<Real>;
  Real sum[kDof];
  Real rel[kDof];
  for (int c = 0; c < kDof; ++c) {
    sum[c] = a[c] + b[c];
    rel[c] = a[c] - b[c];
  }
  Real perm_rel[kDof];
  rng::apply_perm(perm, rel, perm_rel);
  for (int c = 0; c < kDof; ++c) {
    const bool neg = (bits >> (kSignShift + c)) & 1u;
    const Real g = N::neg_if(perm_rel[c], neg);
    const std::uint32_t rbit =
        static_cast<std::uint32_t>(bits >> (kRoundShift + c)) & 1u;
    a[c] = N::half(sum[c] + g, rbit);
  }
}

}  // namespace cmdsmc::physics
