// Molecular interaction models.
//
// The paper simulates ideal diatomic *Maxwell* molecules (inverse power law
// exponent alpha = 4), for which the pair collision probability is
// independent of the relative speed g — the property that makes a pure
// integer implementation possible.  The general inverse-power-law form
// (paper eq. 6, P ∝ n g^(1-4/alpha)) and the hard-sphere limit
// (alpha → ∞, P ∝ n g) are provided as the "future work" generalisation.
#pragma once

#include <cmath>
#include <stdexcept>

namespace cmdsmc::physics {

enum class Potential {
  kMaxwell,       // alpha = 4: P independent of g
  kInversePower,  // finite alpha > 4 typical
  kHardSphere,    // alpha -> infinity: P ∝ g
};

struct GasModel {
  Potential potential = Potential::kMaxwell;
  double alpha = 4.0;  // inverse power law exponent (kInversePower only)

  // Exponent of g in the selection rule: 1 - 4/alpha.
  double g_exponent() const {
    switch (potential) {
      case Potential::kMaxwell:
        return 0.0;
      case Potential::kHardSphere:
        return 1.0;
      case Potential::kInversePower:
        return 1.0 - 4.0 / alpha;
    }
    return 0.0;
  }

  // True when the selection probability needs |g| (i.e. a sqrt): everything
  // except Maxwell molecules.
  bool needs_relative_speed() const {
    return potential != Potential::kMaxwell;
  }

  void validate() const {
    if (potential == Potential::kInversePower && alpha <= 0.0)
      throw std::invalid_argument("GasModel: alpha must be positive");
  }
};

}  // namespace cmdsmc::physics
