// Numeric policy abstracting the two state representations the paper
// discusses: IEEE double (reference) and 32-bit fixed point Q8.23 (the CM-2
// implementation).  The simulation engine is templated on Real and works with
// either.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "fixedpoint/fixed32.h"

namespace cmdsmc::physics {

template <class Real>
struct Num;

template <>
struct Num<double> {
  static constexpr bool kIsFixed = false;
  static double from_double(double v) { return v; }
  static double to_double(double v) { return v; }
  // Halving is exact in binary floating point; the random bit is unused.
  static double half(double v, std::uint32_t /*bit*/) { return 0.5 * v; }
  static double half_truncate(double v) { return 0.5 * v; }
  static int floor_int(double v) { return static_cast<int>(std::floor(v)); }
  // Branchless sign flip: the collision kernel calls this five times per
  // pair with *random* sign bits, which a conditional would mispredict half
  // the time.  XOR on the sign bit is exact for every value.
  static double neg_if(double v, bool neg) {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^
                                 (static_cast<std::uint64_t>(neg) << 63));
  }
  // Low-order state bits for the "quick but dirty" random source.
  static std::uint32_t raw32(double v) {
    return static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(v));
  }
};

template <>
struct Num<fixedpoint::Fixed32> {
  using F = fixedpoint::Fixed32;
  static constexpr bool kIsFixed = true;
  static F from_double(double v) { return F::from_double(v); }
  static double to_double(F v) { return v.to_double(); }
  static F half(F v, std::uint32_t bit) {
    return fixedpoint::half_stochastic(v, bit);
  }
  static F half_truncate(F v) { return fixedpoint::half_truncate(v); }
  static int floor_int(F v) { return v.raw >> F::kFracBits; }
  // Branchless two's-complement negation (see Num<double>::neg_if): x^-m
  // + m is x for m == 0 and -x for m == 1, wrap-exact like unary minus.
  static F neg_if(F v, bool neg) {
    const auto m = static_cast<std::uint32_t>(neg);
    const auto u = static_cast<std::uint32_t>(v.raw);
    return F::from_raw(static_cast<std::int32_t>((u ^ (0u - m)) + m));
  }
  static std::uint32_t raw32(F v) { return static_cast<std::uint32_t>(v.raw); }
};

}  // namespace cmdsmc::physics
