#include "baseline/nanbu.h"

#include <atomic>

#include "cmdp/parallel.h"
#include "cmdp/scan.h"
#include "cmdp/sort.h"
#include "physics/collision.h"
#include "rng/rng.h"

namespace cmdsmc::baseline {

NanbuScheme::NanbuScheme(const geom::Grid& grid, const BaselineConfig& cfg)
    : grid_(grid), cfg_(cfg) {}

void NanbuScheme::collision_step(cmdp::ThreadPool& pool,
                                 core::ParticleStore<double>& store) {
  const std::size_t n = store.size();
  const auto ncells = static_cast<std::uint32_t>(grid_.ncells());
  order_.resize(n);
  counts_.resize(ncells);
  starts_.resize(ncells);
  cmdp::counting_sort_index(pool, store.cell, ncells, order_);
  cmdp::histogram(pool, store.cell, ncells, counts_);
  cmdp::exclusive_scan<std::uint32_t>(
      pool, counts_, starts_,
      [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);

  for (auto& v : new_v_) v.resize(n);
  hit_.resize(n);

  std::atomic<std::uint64_t> coll{0};
  // Phase 1: every particle draws its decision and computes its (one-sided)
  // post-collision velocity from a snapshot of the old state.
  cmdp::parallel_chunks(pool, n, [&](cmdp::Range r, unsigned) {
    std::uint64_t local = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      hit_[i] = 0;
      const std::uint32_t c = store.cell[i];
      const std::uint32_t cnt = counts_[c];
      if (cnt < 2) continue;
      rng::SplitMix64 g(rng::hash4(cfg_.seed, i,
                                   static_cast<std::uint64_t>(step_), 78));
      const double p = cfg_.pc_inf * static_cast<double>(cnt) / cfg_.n_inf;
      if (g.next_double() >= p) continue;
      const std::uint32_t s = starts_[c];
      const auto self = static_cast<std::uint32_t>(i);
      std::uint32_t j = self;
      for (int tries = 0; tries < 8 && j == self; ++tries)
        j = order_[s + g.next_below(cnt)];
      if (j == self) continue;
      double a[physics::kDof] = {store.ux[i], store.uy[i], store.uz[i],
                                 store.r0[i], store.r1[i]};
      const double b[physics::kDof] = {store.ux[j], store.uy[j], store.uz[j],
                                       store.r0[j], store.r1[j]};
      const rng::PackedPerm perm =
          rng::perm_table()[g.next_below(rng::kPermCount)];
      physics::collide_one_sided(a, b, perm, g.next_u64());
      for (int c5 = 0; c5 < physics::kDof; ++c5) new_v_[c5][i] = a[c5];
      hit_[i] = 1;
      ++local;
    }
    coll.fetch_add(local, std::memory_order_relaxed);
  });
  // Phase 2: commit.
  cmdp::parallel_for(pool, n, [&](std::size_t i) {
    if (!hit_[i]) return;
    store.ux[i] = new_v_[0][i];
    store.uy[i] = new_v_[1][i];
    store.uz[i] = new_v_[2][i];
    store.r0[i] = new_v_[3][i];
    store.r1[i] = new_v_[4][i];
  });
  collisions_ += coll.load();
  ++step_;
}

}  // namespace cmdsmc::baseline
