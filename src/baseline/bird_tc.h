// Bird's time-counter collision scheme (Bird 1976; the method the paper
// argues against for fine-grained parallel machines).
//
// Collisions are organised per *cell*: each cell keeps an asynchronous time
// counter; random pairs inside the cell are collided, each collision
// advancing the counter by 2 / (N_c * nu), until the counter passes the
// global simulation time.  Parallelism is only available at the cell level,
// so the work per step is bounded by the most populated cell — the load
// imbalance the paper's particles-to-processors mapping eliminates.
//
// To isolate the *selection* scheme difference, the actual two-body collision
// uses the same Baganoff 5-vector kernel as the main code.
#pragma once

#include <cstdint>
#include <vector>

#include "cmdp/thread_pool.h"
#include "core/particles.h"
#include "geom/grid.h"

namespace cmdsmc::baseline {

struct BaselineConfig {
  // Per-particle collision frequency at freestream density, per time step —
  // calibrated identically to the main scheme's P∞ so the comparison is
  // apples-to-apples (Maxwell molecules: frequency independent of g).
  double pc_inf = 0.5;
  double n_inf = 16.0;  // freestream particles per cell
  std::uint64_t seed = 1;
};

class BirdTimeCounter {
 public:
  BirdTimeCounter(const geom::Grid& grid, const BaselineConfig& cfg);

  // Performs the collision sub-step for one global time step.  Particles
  // must carry valid cell indices (< grid.ncells()).  Cell-level parallel.
  void collision_step(cmdp::ThreadPool& pool,
                      core::ParticleStore<double>& store);

  std::uint64_t collisions() const { return collisions_; }
  std::int64_t step_index() const { return step_; }

 private:
  geom::Grid grid_;
  BaselineConfig cfg_;
  std::vector<double> cell_time_;  // asynchronous cell clocks
  std::int64_t step_ = 0;
  std::uint64_t collisions_ = 0;
  // scratch
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> starts_;
};

}  // namespace cmdsmc::baseline
