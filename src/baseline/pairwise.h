// The McDonald–Baganoff pairwise scheme as a standalone collision operator
// (sort by randomized cell key, even/odd pairing, pair-local selection,
// 5-vector collision) — the same algorithm the Simulation driver embeds,
// packaged like the Bird/Nanbu baselines so the three selection schemes can
// be compared on identical workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/bird_tc.h"  // BaselineConfig
#include "cmdp/thread_pool.h"
#include "core/particles.h"
#include "geom/grid.h"

namespace cmdsmc::baseline {

class PairwiseScheme {
 public:
  PairwiseScheme(const geom::Grid& grid, const BaselineConfig& cfg);

  // One collision sub-step (particle-parallel).
  void collision_step(cmdp::ThreadPool& pool,
                      core::ParticleStore<double>& store);

  std::uint64_t collisions() const { return collisions_; }

 private:
  geom::Grid grid_;
  BaselineConfig cfg_;
  std::int64_t step_ = 0;
  std::uint64_t collisions_ = 0;
  core::ParticleStore<double> scratch_;
  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> starts_;
};

}  // namespace cmdsmc::baseline
