// Nanbu's collision scheme in the O(N) vectorizable form due to Ploss (the
// second comparator the paper discusses).
//
// Every particle independently decides, with the cell-density-scaled
// probability, whether it collides this step; if so it picks a random
// partner in its cell and updates *its own* velocity only.  This is
// particle-parallel (like the Baganoff rule) but conserves momentum and
// energy only in the mean — the deficiency the paper points out ("conserve
// only the mean energy and momentum of a cell and their extension to
// reacting flows is questionable").
#pragma once

#include <cstdint>
#include <vector>

#include "cmdp/thread_pool.h"
#include "core/particles.h"
#include "geom/grid.h"

#include "baseline/bird_tc.h"  // BaselineConfig

namespace cmdsmc::baseline {

class NanbuScheme {
 public:
  NanbuScheme(const geom::Grid& grid, const BaselineConfig& cfg);

  // One collision sub-step.  Two-phase (decide+compute into scratch, then
  // commit) so the particle-parallel loop is race-free, as in a vectorized
  // implementation.
  void collision_step(cmdp::ThreadPool& pool,
                      core::ParticleStore<double>& store);

  std::uint64_t collisions() const { return collisions_; }

 private:
  geom::Grid grid_;
  BaselineConfig cfg_;
  std::int64_t step_ = 0;
  std::uint64_t collisions_ = 0;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> rank_;  // particle -> rank within its cell
  std::vector<double> new_v_[5];
  std::vector<std::uint8_t> hit_;
};

}  // namespace cmdsmc::baseline
