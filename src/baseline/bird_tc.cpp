#include "baseline/bird_tc.h"

#include <atomic>
#include <cmath>

#include "cmdp/parallel.h"
#include "cmdp/scan.h"
#include "cmdp/sort.h"
#include "physics/collision.h"
#include "rng/rng.h"

namespace cmdsmc::baseline {

BirdTimeCounter::BirdTimeCounter(const geom::Grid& grid,
                                 const BaselineConfig& cfg)
    : grid_(grid),
      cfg_(cfg),
      cell_time_(static_cast<std::size_t>(grid.ncells()), 0.0) {}

void BirdTimeCounter::collision_step(cmdp::ThreadPool& pool,
                                     core::ParticleStore<double>& store) {
  const std::size_t n = store.size();
  const auto ncells = static_cast<std::uint32_t>(grid_.ncells());
  order_.resize(n);
  counts_.resize(ncells);
  starts_.resize(ncells);
  cmdp::counting_sort_index(pool, store.cell, ncells, order_);
  cmdp::histogram(pool, store.cell, ncells, counts_);
  cmdp::exclusive_scan<std::uint32_t>(
      pool, counts_, starts_,
      [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);

  const double t_end = static_cast<double>(step_ + 1);
  std::atomic<std::uint64_t> coll{0};
  // Cell-level parallelism: this is the scheme's intrinsic granularity.
  cmdp::parallel_for(pool, ncells, [&](std::size_t c) {
    const std::uint32_t cnt = counts_[c];
    if (cnt < 2) {
      cell_time_[c] = t_end;  // empty cells simply keep up with global time
      return;
    }
    const std::uint32_t s = starts_[c];
    // Per-particle collision frequency at this cell's density.
    const double nu = cfg_.pc_inf * static_cast<double>(cnt) / cfg_.n_inf;
    const double dt_coll = 2.0 / (static_cast<double>(cnt) * nu);
    rng::SplitMix64 g(rng::hash4(cfg_.seed, static_cast<std::uint64_t>(c),
                                 static_cast<std::uint64_t>(step_), 77));
    std::uint64_t local = 0;
    double t = cell_time_[c];
    while (t < t_end) {
      const std::uint32_t i = order_[s + g.next_below(cnt)];
      std::uint32_t j = i;
      while (j == i) j = order_[s + g.next_below(cnt)];
      physics::Pair5<double> pv;
      pv.a[0] = store.ux[i];
      pv.a[1] = store.uy[i];
      pv.a[2] = store.uz[i];
      pv.a[3] = store.r0[i];
      pv.a[4] = store.r1[i];
      pv.b[0] = store.ux[j];
      pv.b[1] = store.uy[j];
      pv.b[2] = store.uz[j];
      pv.b[3] = store.r0[j];
      pv.b[4] = store.r1[j];
      const rng::PackedPerm perm = rng::perm_table()[g.next_below(
          rng::kPermCount)];
      physics::collide_pair(pv, perm, g.next_u64());
      store.ux[i] = pv.a[0];
      store.uy[i] = pv.a[1];
      store.uz[i] = pv.a[2];
      store.r0[i] = pv.a[3];
      store.r1[i] = pv.a[4];
      store.ux[j] = pv.b[0];
      store.uy[j] = pv.b[1];
      store.uz[j] = pv.b[2];
      store.r0[j] = pv.b[3];
      store.r1[j] = pv.b[4];
      t += dt_coll;
      ++local;
    }
    cell_time_[c] = t;
    coll.fetch_add(local, std::memory_order_relaxed);
  });
  collisions_ += coll.load();
  ++step_;
}

}  // namespace cmdsmc::baseline
