#include "baseline/pairwise.h"

#include <atomic>

#include "cmdp/parallel.h"
#include "cmdp/scan.h"
#include "cmdp/sort.h"
#include "physics/collision.h"
#include "rng/permutation.h"
#include "rng/rng.h"

namespace cmdsmc::baseline {

namespace {
constexpr std::uint32_t kSortScale = 8;
}

PairwiseScheme::PairwiseScheme(const geom::Grid& grid,
                               const BaselineConfig& cfg)
    : grid_(grid), cfg_(cfg) {}

void PairwiseScheme::collision_step(cmdp::ThreadPool& pool,
                                    core::ParticleStore<double>& store) {
  const std::size_t n = store.size();
  const auto ncells = static_cast<std::uint32_t>(grid_.ncells());
  keys_.resize(n);
  order_.resize(n);
  counts_.resize(ncells);
  starts_.resize(ncells);
  cmdp::parallel_for(pool, n, [&](std::size_t i) {
    const std::uint32_t r = static_cast<std::uint32_t>(
        rng::hash4(cfg_.seed, i, static_cast<std::uint64_t>(step_), 101) %
        kSortScale);
    keys_[i] = store.cell[i] * kSortScale + r;
  });
  cmdp::stable_sort_index(pool, keys_, ncells * kSortScale, order_);
  store.reorder(pool, order_, scratch_);
  cmdp::histogram(pool, store.cell, ncells, counts_);
  cmdp::exclusive_scan<std::uint32_t>(
      pool, counts_, starts_,
      [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);

  std::atomic<std::uint64_t> coll{0};
  cmdp::parallel_chunks(pool, n, [&](cmdp::Range r, unsigned) {
    std::uint64_t local = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const std::uint32_t c = store.cell[i];
      const std::uint32_t s = starts_[c];
      const std::uint32_t rank = static_cast<std::uint32_t>(i) - s;
      if (rank & 1u) continue;
      if (i + 1 >= s + counts_[c]) continue;
      const double p =
          cfg_.pc_inf * static_cast<double>(counts_[c]) / cfg_.n_inf;
      const std::uint64_t bits =
          rng::hash4(cfg_.seed, i, static_cast<std::uint64_t>(step_), 102);
      if (p < 1.0 && rng::u64_to_unit_double(rng::mix64(bits)) >= p) continue;
      physics::Pair5<double> pv;
      pv.a[0] = store.ux[i];
      pv.a[1] = store.uy[i];
      pv.a[2] = store.uz[i];
      pv.a[3] = store.r0[i];
      pv.a[4] = store.r1[i];
      pv.b[0] = store.ux[i + 1];
      pv.b[1] = store.uy[i + 1];
      pv.b[2] = store.uz[i + 1];
      pv.b[3] = store.r0[i + 1];
      pv.b[4] = store.r1[i + 1];
      physics::collide_pair(pv, store.perm[i], bits);
      store.ux[i] = pv.a[0];
      store.uy[i] = pv.a[1];
      store.uz[i] = pv.a[2];
      store.r0[i] = pv.a[3];
      store.r1[i] = pv.a[4];
      store.ux[i + 1] = pv.b[0];
      store.uy[i + 1] = pv.b[1];
      store.uz[i + 1] = pv.b[2];
      store.r0[i + 1] = pv.b[3];
      store.r1[i + 1] = pv.b[4];
      store.perm[i] =
          rng::random_transposition(store.perm[i],
                                    bits >> physics::kTransposeShift);
      store.perm[i + 1] = rng::random_transposition(
          store.perm[i + 1], bits >> (physics::kTransposeShift + 16));
      ++local;
    }
    coll.fetch_add(local, std::memory_order_relaxed);
  });
  collisions_ += coll.load();
  ++step_;
}

}  // namespace cmdsmc::baseline
