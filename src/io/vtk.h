// Legacy-VTK structured-points writer: loads the time-averaged fields into
// any standard visualization tool (ParaView/VisIt) for the paper's contour
// and surface views.
#pragma once

#include <string>

#include "core/sampling.h"

namespace cmdsmc::io {

// Writes density, velocity and temperatures as a legacy VTK file
// (STRUCTURED_POINTS, cell-centered data emitted as point data on the cell
// lattice).  Works for 2D (nz treated as 1) and 3D grids.  Throws
// std::runtime_error if the file cannot be written.
void write_vtk(const std::string& path, const core::FieldStats& f,
               const std::string& title = "cmdsmc fields");

}  // namespace cmdsmc::io
