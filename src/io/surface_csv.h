// CSV emission of per-segment surface quantities (Cp / Cf / Ch
// distributions) with the integrated coefficients in a comment header.
#pragma once

#include <ostream>
#include <string>

#include "core/surface_sampling.h"

namespace cmdsmc::io {

// Columns: segment, x, y, nx, ny, length, hits_per_step, p, tau, q, cp, cf,
// ch, p_in, p_out, q_in, q_out (the last four are the incident/reflected
// normal-momentum and energy flux split for accommodation studies).
// Embedded segments (tunnel-wall edges) are skipped unless
// `include_embedded` is set.  A `# cd=... cl=... heat=... samples=...`
// comment line precedes the header.
void write_surface_csv(std::ostream& os, const core::SurfaceStats& s,
                       bool include_embedded = false);

// Writes to the given path; throws std::runtime_error on failure.
void write_surface_csv_file(const std::string& path,
                            const core::SurfaceStats& s,
                            bool include_embedded = false);

// Multi-body layout: one per-body `# bodyN name=... cd=... cl=...` comment
// line each, then a single table whose rows lead with `body,name,segment`
// (segment indices are body-local) followed by the legacy column set.
void write_scene_surface_csv(std::ostream& os,
                             const std::vector<core::SurfaceStats>& bodies,
                             bool include_embedded = false);

void write_scene_surface_csv_file(
    const std::string& path, const std::vector<core::SurfaceStats>& bodies,
    bool include_embedded = false);

}  // namespace cmdsmc::io
