#include "io/vtk.h"

#include <fstream>
#include <stdexcept>

namespace cmdsmc::io {

void write_vtk(const std::string& path, const core::FieldStats& f,
               const std::string& title) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_vtk: cannot open " + path);
  const int nx = f.grid.nx;
  const int ny = f.grid.ny;
  const int nz = f.grid.is3d() ? f.grid.nz : 1;
  const std::size_t n = static_cast<std::size_t>(nx) * ny * nz;
  os << "# vtk DataFile Version 3.0\n"
     << title << "\n"
     << "ASCII\n"
     << "DATASET STRUCTURED_POINTS\n"
     << "DIMENSIONS " << nx << " " << ny << " " << nz << "\n"
     << "ORIGIN 0.5 0.5 0.5\n"
     << "SPACING 1 1 1\n"
     << "POINT_DATA " << n << "\n";
  auto scalar = [&](const char* name, const std::vector<double>& field) {
    os << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    for (int iz = 0; iz < nz; ++iz)
      for (int iy = 0; iy < ny; ++iy)
        for (int ix = 0; ix < nx; ++ix)
          os << field[f.grid.index(ix, iy, iz)] << "\n";
  };
  scalar("density", f.density);
  scalar("t_trans", f.t_trans);
  scalar("t_rot", f.t_rot);
  scalar("t_total", f.t_total);
  os << "VECTORS velocity double\n";
  for (int iz = 0; iz < nz; ++iz)
    for (int iy = 0; iy < ny; ++iy)
      for (int ix = 0; ix < nx; ++ix)
        os << f.ux[f.grid.index(ix, iy, iz)] << " "
           << f.uy[f.grid.index(ix, iy, iz)] << " 0\n";
  if (!os) throw std::runtime_error("write_vtk: write failed for " + path);
}

}  // namespace cmdsmc::io
