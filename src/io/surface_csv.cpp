#include "io/surface_csv.h"

#include <fstream>
#include <stdexcept>

namespace cmdsmc::io {

void write_surface_csv(std::ostream& os, const core::SurfaceStats& s,
                       bool include_embedded) {
  os << "# samples=" << s.samples << " p_inf=" << s.p_inf
     << " q_inf=" << s.q_inf << " cd=" << s.cd << " cl=" << s.cl
     << " heat=" << s.heat_total << " q_in=" << s.q_incident_total
     << " q_out=" << s.q_reflected_total << "\n";
  os << "segment,x,y,nx,ny,length,hits_per_step,p,tau,q,cp,cf,ch,"
        "p_in,p_out,q_in,q_out\n";
  for (std::size_t i = 0; i < s.segments.size(); ++i) {
    const core::SurfaceSegmentStats& seg = s.segments[i];
    if (seg.embedded && !include_embedded) continue;
    os << i << "," << seg.x << "," << seg.y << "," << seg.nx << "," << seg.ny
       << "," << seg.length << "," << seg.hits_per_step << "," << seg.p << ","
       << seg.tau << "," << seg.q << "," << seg.cp << "," << seg.cf << ","
       << seg.ch << "," << seg.p_incident << "," << seg.p_reflected << ","
       << seg.q_incident << "," << seg.q_reflected << "\n";
  }
}

void write_surface_csv_file(const std::string& path,
                            const core::SurfaceStats& s,
                            bool include_embedded) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_surface_csv: cannot open " + path);
  write_surface_csv(os, s, include_embedded);
}

void write_scene_surface_csv(std::ostream& os,
                             const std::vector<core::SurfaceStats>& bodies,
                             bool include_embedded) {
  for (std::size_t b = 0; b < bodies.size(); ++b) {
    const core::SurfaceStats& s = bodies[b];
    os << "# body" << b << " name=" << s.body_name << " samples=" << s.samples
       << " cd=" << s.cd << " cl=" << s.cl << " heat=" << s.heat_total
       << " q_in=" << s.q_incident_total << " q_out=" << s.q_reflected_total
       << "\n";
  }
  os << "body,name,segment,x,y,nx,ny,length,hits_per_step,p,tau,q,cp,cf,ch,"
        "p_in,p_out,q_in,q_out\n";
  for (std::size_t b = 0; b < bodies.size(); ++b) {
    const core::SurfaceStats& body = bodies[b];
    for (std::size_t i = 0; i < body.segments.size(); ++i) {
      const core::SurfaceSegmentStats& seg = body.segments[i];
      if (seg.embedded && !include_embedded) continue;
      os << b << "," << body.body_name << "," << i << "," << seg.x << ","
         << seg.y << "," << seg.nx << "," << seg.ny << "," << seg.length
         << "," << seg.hits_per_step << "," << seg.p << "," << seg.tau << ","
         << seg.q << "," << seg.cp << "," << seg.cf << "," << seg.ch << ","
         << seg.p_incident << "," << seg.p_reflected << "," << seg.q_incident
         << "," << seg.q_reflected << "\n";
    }
  }
}

void write_scene_surface_csv_file(const std::string& path,
                                  const std::vector<core::SurfaceStats>& bodies,
                                  bool include_embedded) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("write_scene_surface_csv: cannot open " + path);
  write_scene_surface_csv(os, bodies, include_embedded);
}

}  // namespace cmdsmc::io
