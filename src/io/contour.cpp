#include "io/contour.h"

#include <algorithm>

namespace cmdsmc::io {

std::string render_ascii(const core::FieldStats& f,
                         const std::vector<double>& field,
                         const ContourOptions& opt) {
  const int x1 = opt.x1 > 0 ? std::min(opt.x1, f.grid.nx) : f.grid.nx;
  const int y1 = opt.y1 > 0 ? std::min(opt.y1, f.grid.ny) : f.grid.ny;
  const int nglyphs = static_cast<int>(opt.glyphs.size());
  std::string out;
  out.reserve(static_cast<std::size_t>((x1 - opt.x0 + 1) * (y1 - opt.y0)));
  for (int iy = y1 - 1; iy >= opt.y0; --iy) {
    for (int ix = opt.x0; ix < x1; ++ix) {
      const double v = field[f.grid.index(ix, iy, opt.z_plane)];
      double t = (v - opt.vmin) / (opt.vmax - opt.vmin);
      t = std::clamp(t, 0.0, 1.0);
      int g = static_cast<int>(t * (nglyphs - 1) + 0.5);
      out.push_back(opt.glyphs[static_cast<std::size_t>(g)]);
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<double> column_profile(const core::FieldStats& f,
                                   const std::vector<double>& field, int ix,
                                   int z_plane) {
  std::vector<double> out(static_cast<std::size_t>(f.grid.ny));
  for (int iy = 0; iy < f.grid.ny; ++iy)
    out[static_cast<std::size_t>(iy)] = field[f.grid.index(ix, iy, z_plane)];
  return out;
}

std::vector<double> row_profile(const core::FieldStats& f,
                                const std::vector<double>& field, int iy,
                                int z_plane) {
  std::vector<double> out(static_cast<std::size_t>(f.grid.nx));
  for (int ix = 0; ix < f.grid.nx; ++ix)
    out[static_cast<std::size_t>(ix)] = field[f.grid.index(ix, iy, z_plane)];
  return out;
}

}  // namespace cmdsmc::io
