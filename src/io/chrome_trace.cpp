#include "io/chrome_trace.h"

#include <cstdio>

namespace cmdsmc::io {

namespace {
constexpr int kPid = 1;  // one process; tracks are threads
}

void ChromeTraceWriter::open(const std::string& path) {
  close();
  out_.open(path, std::ios::out | std::ios::trunc);
  open_ = out_.is_open();
  first_ = true;
  if (open_) out_ << "[\n";
}

void ChromeTraceWriter::comma() {
  if (!first_) out_ << ",\n";
  first_ = false;
}

void ChromeTraceWriter::thread_name(int tid, const std::string& name,
                                    int sort_index) {
  if (!open_) return;
  comma();
  out_ << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << kPid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << name << "\"}},\n"
       << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":" << kPid
       << ",\"tid\":" << tid << ",\"args\":{\"sort_index\":" << sort_index
       << "}}";
}

void ChromeTraceWriter::span(const char* name, double ts_us, double dur_us,
                             int tid) {
  if (!open_) return;
  comma();
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"X\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d,"
                "\"ts\":%.3f,\"dur\":%.3f}",
                name, kPid, tid, ts_us, dur_us);
  out_ << buf;
}

void ChromeTraceWriter::close() {
  if (!open_) return;
  out_ << "\n]\n";
  out_.close();
  open_ = false;
}

}  // namespace cmdsmc::io
