// StepStats -> one JSON object per line (JSONL).  The schema is documented
// in docs/observability.md and validated by bench/check_telemetry.py; the
// select slot is folded into the fused "select_collide" entry everywhere
// (it reads 0 since the PR 3 fusion).
#pragma once

#include <string>

#include "obs/step_stats.h"

namespace cmdsmc::io {

// Serializes one per-step record as a single JSON line (no trailing
// newline).  Appends to `out` (cleared first), so a streaming writer can
// reuse one buffer across steps.
void telemetry_json_line(const obs::StepStats& s, std::string& out);

// Convenience form returning a fresh string (tests).
std::string telemetry_json_line(const obs::StepStats& s);

}  // namespace cmdsmc::io
