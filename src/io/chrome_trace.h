// Chrome trace-event JSON writer (the array-of-events flavor), loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing.  Only the two event
// types telemetry needs: "M" thread-name metadata (one per track) and "X"
// complete spans (begin + duration in one event, so the file is balanced
// by construction).
#pragma once

#include <fstream>
#include <string>

namespace cmdsmc::io {

class ChromeTraceWriter {
 public:
  ChromeTraceWriter() = default;
  // Opens `path` and writes the array opener.  Check ok() afterwards.
  explicit ChromeTraceWriter(const std::string& path) { open(path); }
  ~ChromeTraceWriter() { close(); }

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  void open(const std::string& path);
  bool ok() const { return open_ && out_.good(); }
  bool is_open() const { return open_; }

  // Names the track `tid` ("control", "lane 3", ...).  sort_index orders
  // tracks in the UI (lower = higher).
  void thread_name(int tid, const std::string& name, int sort_index);

  // One complete span on track `tid`: [ts_us, ts_us + dur_us], microseconds.
  void span(const char* name, double ts_us, double dur_us, int tid);

  // Writes the array closer and flushes; idempotent.
  void close();

 private:
  void comma();

  std::ofstream out_;
  bool open_ = false;
  bool first_ = true;
};

}  // namespace cmdsmc::io
