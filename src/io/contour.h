// ASCII rendering of cell fields: the terminal stand-in for the paper's
// contour (figs. 1, 4) and surface (figs. 2, 3, 5, 6) plots.
#pragma once

#include <string>
#include <vector>

#include "core/sampling.h"

namespace cmdsmc::io {

struct ContourOptions {
  double vmin = 0.0;   // value mapped to the first glyph
  double vmax = 4.0;   // value mapped to the last glyph
  int x0 = 0, y0 = 0;  // window (cells); x1/y1 <= 0 means full extent
  int x1 = 0, y1 = 0;
  int z_plane = 0;
  std::string glyphs = " .:-=+*#%@";  // low -> high
};

// Renders the field as an ASCII map, y increasing upward (row 0 printed
// last), one glyph per cell.
std::string render_ascii(const core::FieldStats& f,
                         const std::vector<double>& field,
                         const ContourOptions& opt = {});

// Extracts a 1D profile of `field` along a vertical line at column ix
// (values bottom to top).
std::vector<double> column_profile(const core::FieldStats& f,
                                   const std::vector<double>& field, int ix,
                                   int z_plane = 0);

// Extracts a horizontal profile at row iy.
std::vector<double> row_profile(const core::FieldStats& f,
                                const std::vector<double>& field, int iy,
                                int z_plane = 0);

}  // namespace cmdsmc::io
