#include "io/csv.h"

#include <fstream>
#include <stdexcept>

namespace cmdsmc::io {

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void CsvTable::add_row(const std::vector<double>& values) {
  if (values.size() != columns_.size())
    throw std::invalid_argument("CsvTable: row width mismatch");
  rows_.push_back(values);
}

void CsvTable::write(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << (c ? "," : "") << columns_[c];
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << row[c];
    os << "\n";
  }
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("CsvTable: cannot open " + path);
  write(os);
}

void write_field_csv(std::ostream& os, const core::FieldStats& f,
                     const std::vector<double>& field,
                     const std::string& value_name, int z_plane,
                     const std::string& y_name) {
  os << "x," << y_name << "," << value_name << "\n";
  for (int iy = 0; iy < f.grid.ny; ++iy)
    for (int ix = 0; ix < f.grid.nx; ++ix)
      os << ix + 0.5 << "," << iy + 0.5 << ","
         << field[f.grid.index(ix, iy, z_plane)] << "\n";
}

void write_field_csv_file(const std::string& path, const core::FieldStats& f,
                          const std::vector<double>& field,
                          const std::string& value_name, int z_plane,
                          const std::string& y_name) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_field_csv: cannot open " + path);
  write_field_csv(os, f, field, value_name, z_plane, y_name);
}

}  // namespace cmdsmc::io
