// Minimal CSV table writer used by the benches and examples to dump the
// density/temperature fields behind the paper's figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/sampling.h"

namespace cmdsmc::io {

// A simple column-oriented table.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns);

  void add_row(const std::vector<double>& values);
  std::size_t rows() const { return rows_.size(); }

  void write(std::ostream& os) const;
  // Writes to the given path; throws std::runtime_error on failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

// Dumps a cell field as rows (x, y[, z], value).  2D fields use the k=0
// plane of 3D grids unless `z_plane` selects another.  `y_name` labels the
// transverse column ("r" for axisymmetric z-r fields).
void write_field_csv(std::ostream& os, const core::FieldStats& f,
                     const std::vector<double>& field,
                     const std::string& value_name, int z_plane = 0,
                     const std::string& y_name = "y");

void write_field_csv_file(const std::string& path, const core::FieldStats& f,
                          const std::vector<double>& field,
                          const std::string& value_name, int z_plane = 0,
                          const std::string& y_name = "y");

}  // namespace cmdsmc::io
