// Quantitative extraction of the features the paper reads off its figures:
// shock angle, post-shock density plateau (Rankine–Hugoniot check), shock
// thickness, wake-shock presence, and the Prandtl–Meyer expansion at the
// wedge corner.
#pragma once

#include <vector>

#include "core/sampling.h"
#include "geom/wedge.h"

namespace cmdsmc::io {

struct ShockFit {
  bool valid = false;
  double angle_deg = 0.0;       // fitted shock wave angle
  double density_ratio = 0.0;   // post-shock plateau / freestream
  double thickness_vertical = 0.0;  // 10-90% rise along vertical cuts (cells)
  double thickness_normal = 0.0;    // resolved along the shock normal
  int columns_used = 0;
  // Fitted front line y = intercept + slope * x (cells).
  double slope = 0.0;
  double intercept = 0.0;
};

// Fits the oblique shock over the wedge from the time-averaged density
// field.  Columns within `margin` cells of the leading edge/apex are
// excluded.
ShockFit measure_oblique_shock(const core::FieldStats& f,
                               const geom::Wedge& wedge, int margin = 4);

struct WakeMetrics {
  // Mean floor density just behind the wedge back face (the recirculation
  // base).  The near-continuum solution recompresses here (wake shock); in
  // the rarefied solution the region is an order of magnitude emptier and
  // the recompression is washed out (paper figs. 2 vs 5).
  double base_density = 0.0;
  double max_density = 0.0;   // maximum of the floor profile in the wake
  double mean_density = 0.0;  // mean over the wake floor band
  // Abscissa where the floor density recovers through `recovery_level`
  // (recompression front); negative if it never does inside the domain.
  double recovery_x = -1.0;
  bool shock_present = false;
};

// Measures the wake recompression along the floor behind the wedge.  The
// wake shock is declared present when the near-face base density exceeds
// `presence_threshold` (default tuned so the paper's near-continuum case
// reads "present" and the lambda = 0.5 case reads "washed out").
WakeMetrics measure_wake(const core::FieldStats& f, const geom::Wedge& wedge,
                         double presence_threshold = 0.03,
                         double recovery_level = 0.2);

struct ExpansionSample {
  double turn_deg = 0.0;       // flow turning angle around the corner
  double measured_ratio = 0.0;  // rho / rho_plateau from the field
  double theory_ratio = 0.0;    // isentropic Prandtl–Meyer prediction
};

// Samples the density on an arc of radius `radius` around the wedge apex and
// compares against the Prandtl–Meyer fan prediction.  `mach_surface` is the
// Mach number of the flow along the wedge surface upstream of the corner
// (e.g. from oblique-shock theory).
std::vector<ExpansionSample> expansion_fan_check(
    const core::FieldStats& f, const geom::Wedge& wedge, double rho_plateau,
    double mach_surface, double radius = 6.0, double max_turn_deg = 40.0,
    double step_deg = 5.0);

// Stagnation-region density peak: maximum time-averaged density in the band
// just upstream of the wedge face (figs. 3/6 territory).
double stagnation_peak_density(const core::FieldStats& f,
                               const geom::Wedge& wedge);

}  // namespace cmdsmc::io
