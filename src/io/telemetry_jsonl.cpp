#include "io/telemetry_jsonl.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace cmdsmc::io {

namespace {

// The fused reporting order: the zero select slot folds into collide.
struct FusedPhase {
  const char* name;
  int a;
  int b;  // -1 when the entry is a single slot
};
constexpr FusedPhase kFused[4] = {
    {"move", obs::StepStats::kMove, -1},
    {"sort", obs::StepStats::kSort, -1},
    {"select_collide", obs::StepStats::kSelect, obs::StepStats::kCollide},
    {"sample", obs::StepStats::kSample, -1},
};

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

void telemetry_json_line(const obs::StepStats& s, std::string& out) {
  out.clear();
  append(out, "{\"step\":%lld", static_cast<long long>(s.step));
  append(out, ",\"flow\":%" PRIu64 ",\"reservoir\":%" PRIu64
              ",\"total\":%" PRIu64,
         s.flow, s.reservoir, s.total);
  append(out, ",\"weighted_census\":%.9g", s.weighted_census);
  append(out, ",\"candidates\":%" PRIu64 ",\"collisions\":%" PRIu64
              ",\"reservoir_collisions\":%" PRIu64,
         s.candidates, s.collisions, s.reservoir_collisions);
  append(out, ",\"accept_rate\":%.6g", s.accept_rate);
  append(out, ",\"removed\":%" PRIu64 ",\"injected\":%" PRIu64
              ",\"synthesized\":%" PRIu64,
         s.removed, s.injected, s.synthesized);
  append(out, ",\"cloned\":%" PRIu64 ",\"merged\":%" PRIu64, s.cloned,
         s.merged);
  append(out, ",\"wall_events\":%" PRIu64, s.wall_events);
  append(out, ",\"occ\":{\"min\":%u,\"max\":%u,\"mean\":%.6g}", s.occ_min,
         s.occ_max, s.occ_mean);
  append(out, ",\"arena_bytes\":%zu", s.arena_bytes);
  append(out,
         ",\"shard\":{\"count\":%u,\"repartitions\":%" PRIu64
         ",\"imbalance\":%.4g,\"post_imbalance\":%.4g}",
         s.shards, s.repartitions, s.cost_imbalance, s.post_imbalance);
  if (s.audit_active)
    append(out, ",\"audit\":{\"checks\":%" PRIu64 ",\"violations\":%" PRIu64
                "}",
           s.audit_checks, s.audit_violations);
  out += ",\"phase_seconds\":{";
  for (int f = 0; f < 4; ++f) {
    double sec = s.phase_seconds[kFused[f].a];
    if (kFused[f].b >= 0) sec += s.phase_seconds[kFused[f].b];
    append(out, "%s\"%s\":%.9g", f == 0 ? "" : ",", kFused[f].name, sec);
  }
  append(out, ",\"step\":%.9g}", s.step_seconds);
  append(out, ",\"lanes\":%u", s.lanes);
  out += ",\"imbalance\":{";
  for (int f = 0; f < 4; ++f) {
    // The fused pair reports the collide slot's gauge (select records no
    // time of its own).
    const int slot = kFused[f].b >= 0 ? kFused[f].b : kFused[f].a;
    append(out, "%s\"%s\":%.4g", f == 0 ? "" : ",", kFused[f].name,
           s.imbalance[slot]);
  }
  out += '}';
  out += ",\"lane_seconds\":{";
  for (int f = 0; f < 4; ++f) {
    append(out, "%s\"%s\":[", f == 0 ? "" : ",", kFused[f].name);
    for (unsigned t = 0; t < s.lanes; ++t) {
      double sec = s.lane_second(kFused[f].a, t);
      if (kFused[f].b >= 0) sec += s.lane_second(kFused[f].b, t);
      append(out, "%s%.9g", t == 0 ? "" : ",", sec);
    }
    out += ']';
  }
  out += '}';
  append(out, ",\"cum\":{\"candidates\":%" PRIu64 ",\"collisions\":%" PRIu64
              "}}",
         s.cum_candidates, s.cum_collisions);
}

std::string telemetry_json_line(const obs::StepStats& s) {
  std::string out;
  telemetry_json_line(s, out);
  return out;
}

}  // namespace cmdsmc::io
