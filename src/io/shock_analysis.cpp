#include "io/shock_analysis.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "io/contour.h"
#include "physics/theory.h"

namespace cmdsmc::io {

namespace {

constexpr double kDeg = 180.0 / std::numbers::pi;

// 3-point smoothed value of a column profile.
double smoothed(const std::vector<double>& p, int iy) {
  const int n = static_cast<int>(p.size());
  double acc = 0.0;
  int cnt = 0;
  for (int k = iy - 1; k <= iy + 1; ++k) {
    if (k < 0 || k >= n) continue;
    acc += p[static_cast<std::size_t>(k)];
    ++cnt;
  }
  return acc / cnt;
}

// Scanning downward from the ceiling, the interpolated y where the raw
// profile first rises through `level`.  Returns a negative value if never
// crossed.
double crossing_from_top(const std::vector<double>& p, double level,
                         int y_floor) {
  for (int iy = static_cast<int>(p.size()) - 2; iy > y_floor; --iy) {
    const double hi = p[static_cast<std::size_t>(iy + 1)];
    const double lo = p[static_cast<std::size_t>(iy)];
    if (hi < level && lo >= level) {
      const double t = (level - hi) / (lo - hi);
      return (iy + 1 + 0.5) - t;  // cell centers at iy + 0.5
    }
  }
  return -1.0;
}

}  // namespace

ShockFit measure_oblique_shock(const core::FieldStats& f,
                               const geom::Wedge& wedge, int margin) {
  ShockFit fit;
  const int x_lo = static_cast<int>(std::ceil(wedge.x0())) + margin;
  const int x_hi = static_cast<int>(std::floor(wedge.apex_x())) - margin;
  if (x_hi - x_lo < 4) return fit;
  const int x_half = (x_lo + x_hi) / 2;

  // Pass 1: post-shock plateau per column (largest smoothed density above
  // the surface).  Near the leading edge the plateau band is thinner than
  // the smeared shock, so the density ratio is taken from the downstream
  // half, where the band is wide; the median rejects outliers.
  std::vector<double> plateau_ds;
  for (int ix = x_half; ix < x_hi; ++ix) {
    const auto profile = column_profile(f, f.density, ix);
    const int y_surf = static_cast<int>(std::ceil(wedge.surface_y(ix + 0.5)));
    const int y_top = f.grid.ny - 3;
    double plateau = 0.0;
    for (int iy = y_surf + 1; iy < y_top; ++iy)
      plateau = std::max(plateau, smoothed(profile, iy));
    if (plateau > 1.2) plateau_ds.push_back(plateau);
  }
  if (plateau_ds.size() < 2) return fit;
  std::nth_element(plateau_ds.begin(),
                   plateau_ds.begin() + plateau_ds.size() / 2,
                   plateau_ds.end());
  const double plateau = plateau_ds[plateau_ds.size() / 2];

  // Pass 2: shock front locus at the fixed mid-density level, raw
  // interpolation, one point per column.
  const double mid = 0.5 * (1.0 + plateau);
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> widths;
  for (int ix = x_lo; ix < x_hi; ++ix) {
    const auto profile = column_profile(f, f.density, ix);
    const int y_surf = static_cast<int>(std::ceil(wedge.surface_y(ix + 0.5)));
    if (f.grid.ny - 3 - y_surf < 6) continue;
    const double y_mid = crossing_from_top(profile, mid, y_surf);
    if (y_mid < 0.0) continue;
    xs.push_back(ix + 0.5);
    ys.push_back(y_mid);
    // 10-90% thickness along the vertical cut; trustworthy only where the
    // plateau band is wide, i.e. the downstream half.
    if (ix >= x_half) {
      const double rise = plateau - 1.0;
      const double y10 = crossing_from_top(profile, 1.0 + 0.1 * rise, y_surf);
      const double y90 = crossing_from_top(profile, 1.0 + 0.9 * rise, y_surf);
      if (y10 > 0.0 && y90 > 0.0 && y10 > y90) widths.push_back(y10 - y90);
    }
  }
  if (xs.size() < 4) return fit;

  // Least-squares line through the mid-crossing locus.
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  fit.angle_deg = std::atan(fit.slope) * kDeg;
  fit.columns_used = static_cast<int>(xs.size());
  fit.density_ratio = plateau;

  if (!widths.empty()) {
    std::nth_element(widths.begin(), widths.begin() + widths.size() / 2,
                     widths.end());
    fit.thickness_vertical = widths[widths.size() / 2];
    fit.thickness_normal =
        fit.thickness_vertical * std::cos(std::atan(fit.slope));
  }
  fit.valid = true;
  return fit;
}

WakeMetrics measure_wake(const core::FieldStats& f, const geom::Wedge& wedge,
                         double presence_threshold, double recovery_level) {
  WakeMetrics wm;
  const int x_lo = static_cast<int>(wedge.apex_x()) + 2;
  const int x_hi = f.grid.nx - 4;
  if (x_hi - x_lo < 8) return wm;
  // Floor profile: density averaged over the first 3 cell rows.
  std::vector<double> floor;
  floor.reserve(static_cast<std::size_t>(x_hi - x_lo));
  for (int ix = x_lo; ix < x_hi; ++ix) {
    double v = 0.0;
    for (int iy = 0; iy < 3 && iy < f.grid.ny; ++iy)
      v += f.at(f.density, ix, iy);
    floor.push_back(v / 3.0);
  }
  double acc = 0.0;
  for (std::size_t k = 0; k < floor.size(); ++k) {
    acc += floor[k];
    wm.max_density = std::max(wm.max_density, floor[k]);
    if (wm.recovery_x < 0.0 && floor[k] >= recovery_level)
      wm.recovery_x = x_lo + static_cast<double>(k) + 0.5;
  }
  wm.mean_density = acc / static_cast<double>(floor.size());
  // Base density: the first 8 columns behind the back face.
  double base = 0.0;
  const std::size_t nb = std::min<std::size_t>(8, floor.size());
  for (std::size_t k = 0; k < nb; ++k) base += floor[k];
  wm.base_density = base / static_cast<double>(nb);
  wm.shock_present = wm.base_density >= presence_threshold;
  return wm;
}

std::vector<ExpansionSample> expansion_fan_check(
    const core::FieldStats& f, const geom::Wedge& wedge, double rho_plateau,
    double mach_surface, double radius, double max_turn_deg,
    double step_deg) {
  namespace th = cmdsmc::physics::theory;
  std::vector<ExpansionSample> out;
  const double cx = wedge.apex_x();
  const double cy = wedge.height();
  const double nu2 = th::prandtl_meyer(mach_surface);
  const double m2sq = mach_surface * mach_surface;
  const double gamma = th::kGammaDiatomic;
  const double a0 = wedge.angle();
  // Walk an arc of sample points around the corner.  At each point the
  // *measured* flow turning angle (from the velocity field) parameterizes
  // the isentropic Prandtl-Meyer prediction, which is compared with the
  // measured density drop.  This avoids committing to the exact fan ray
  // geometry, which a particle method smears anyway.
  for (double ray = 0.0; ray <= max_turn_deg + 30.0; ray += step_deg) {
    const double phi = a0 - ray / kDeg;  // geometric ray below the surface
    const double px = cx + radius * std::cos(phi);
    const double py = cy + radius * std::sin(phi);
    const int ix = static_cast<int>(px);
    const int iy = static_cast<int>(py);
    if (ix < 0 || ix >= f.grid.nx || iy < 0 || iy >= f.grid.ny) continue;
    const double ux = f.at(f.ux, ix, iy);
    const double uy = f.at(f.uy, ix, iy);
    if (ux * ux + uy * uy < 1e-12) continue;
    const double turn_rad = a0 - std::atan2(uy, ux);
    const double turn = turn_rad * kDeg;
    if (turn < -2.0 || turn > max_turn_deg) continue;
    ExpansionSample s;
    s.turn_deg = turn;
    s.measured_ratio = f.at(f.density, ix, iy) / rho_plateau;
    const double clamped = turn_rad > 0.0 ? turn_rad : 0.0;
    const double m3 = th::mach_from_prandtl_meyer(nu2 + clamped, gamma);
    const double num = 1.0 + 0.5 * (gamma - 1.0) * m2sq;
    const double den = 1.0 + 0.5 * (gamma - 1.0) * m3 * m3;
    s.theory_ratio = std::pow(num / den, 1.0 / (gamma - 1.0));
    out.push_back(s);
  }
  return out;
}

double stagnation_peak_density(const core::FieldStats& f,
                               const geom::Wedge& wedge) {
  // Band hugging the compression surface, away from leading edge and apex.
  double peak = 0.0;
  const int x_lo = static_cast<int>(wedge.x0()) + 3;
  const int x_hi = static_cast<int>(wedge.apex_x()) - 2;
  for (int ix = x_lo; ix < x_hi; ++ix) {
    const int y_surf = static_cast<int>(wedge.surface_y(ix + 0.5));
    for (int iy = y_surf; iy < std::min(y_surf + 4, f.grid.ny); ++iy)
      peak = std::max(peak, f.at(f.density, ix, iy));
  }
  return peak;
}

}  // namespace cmdsmc::io
