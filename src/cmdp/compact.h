// Stream compaction — the scan-based "pack" primitive of the CM repertoire
// (Hillis & Steele): keep the flagged elements, preserving order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cmdp/parallel.h"
#include "cmdp/scan.h"
#include "cmdp/thread_pool.h"
#include "cmdp/workspace.h"

namespace cmdsmc::cmdp {

// Writes the indices i with keep[i] != 0, in ascending order, to `out`
// (resized to the number kept).  Returns the count.
inline std::size_t compact_indices(ThreadPool& pool,
                                   std::span<const std::uint8_t> keep,
                                   std::vector<std::uint32_t>& out) {
  const std::size_t n = keep.size();
  Workspace& ws = pool.workspace();
  std::span<std::uint32_t> offsets(grown(ws.compact_offsets, n), n);
  std::span<std::uint32_t> ones(grown(ws.compact_ones, n), n);
  parallel_for(pool, n, [&](std::size_t i) { ones[i] = keep[i] ? 1u : 0u; });
  const std::uint32_t total = exclusive_scan<std::uint32_t>(
      pool, ones, offsets,
      [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);
  out.resize(total);
  parallel_for(pool, n, [&](std::size_t i) {
    if (keep[i]) out[offsets[i]] = static_cast<std::uint32_t>(i);
  });
  return total;
}

// Packs the kept elements of `in` into `out` (resized), preserving order.
template <class T>
std::size_t compact(ThreadPool& pool, std::span<const T> in,
                    std::span<const std::uint8_t> keep, std::vector<T>& out) {
  std::vector<std::uint32_t> idx;
  const std::size_t total = compact_indices(pool, keep, idx);
  out.resize(total);
  parallel_for(pool, total, [&](std::size_t k) { out[k] = in[idx[k]]; });
  return total;
}

}  // namespace cmdsmc::cmdp
