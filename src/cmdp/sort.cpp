#include "cmdp/sort.h"

#include <algorithm>
#include <cassert>

#include "cmdp/scan.h"
#include "cmdp/workspace.h"

namespace cmdsmc::cmdp {

void histogram(ThreadPool& pool, std::span<const std::uint32_t> keys,
               std::uint32_t key_bound, std::span<std::uint32_t> counts) {
  assert(counts.size() >= key_bound);
  std::fill(counts.begin(), counts.begin() + key_bound, 0u);
  const std::size_t n = keys.size();
  if (pool.size() == 1 || n < kSerialCutoff) {
    for (std::size_t i = 0; i < n; ++i) ++counts[keys[i]];
    return;
  }
  const unsigned lanes = pool.size();
  std::uint32_t* local = grown(pool.workspace().hist_lanes,
                               static_cast<std::size_t>(lanes) * key_bound);
  pool.parallel([&](unsigned tid) {
    std::uint32_t* h = local + static_cast<std::size_t>(tid) * key_bound;
    std::fill(h, h + key_bound, 0u);
    const Range r = lane_range(n, tid, lanes);
    for (std::size_t i = r.begin; i < r.end; ++i) ++h[keys[i]];
  });
  parallel_for(pool, key_bound, [&](std::size_t k) {
    std::uint32_t total = 0;
    for (unsigned t = 0; t < lanes; ++t)
      total += local[static_cast<std::size_t>(t) * key_bound + k];
    counts[k] = total;
  });
}

namespace {

// Shared tail of the plan builders once per-lane counts exist in `counts`
// (lanes x key_bound, lane-major).  Converts the counts in place (or into
// the workspace cursor table) to absolute scatter destinations and fills
// starts[0..key_bound] with the per-key exclusive starts.
void finish_plan_tables(ThreadPool& pool, std::uint32_t* starts,
                        std::uint32_t* cursors,
                        const std::uint32_t* counts, unsigned lanes,
                        std::uint32_t key_bound) {
  // Column-wise: cursor(t, k) = prefix of counts within key k across lanes;
  // per-key totals into starts[k + 1].
  starts[0] = 0;
  parallel_for(pool, key_bound, [&](std::size_t k) {
    std::uint32_t running = 0;
    for (unsigned t = 0; t < lanes; ++t) {
      const std::size_t at = static_cast<std::size_t>(t) * key_bound + k;
      const std::uint32_t c = counts[at];
      cursors[at] = running;
      running += c;
    }
    starts[k + 1] = running;
  });
  // starts[k + 1] = total(k)  ->  inclusive scan turns it into the exclusive
  // per-key starts (starts[0] stays 0).  In-place aliasing is supported.
  inclusive_scan<std::uint32_t>(
      pool, std::span<const std::uint32_t>(starts + 1, key_bound),
      std::span<std::uint32_t>(starts + 1, key_bound),
      [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);
  // Make the cursors absolute destinations: cursor(t, k) += starts[k].
  parallel_for(pool, key_bound, [&](std::size_t k) {
    const std::uint32_t base = starts[k];
    for (unsigned t = 0; t < lanes; ++t)
      cursors[static_cast<std::size_t>(t) * key_bound + k] += base;
  });
}

// Lays out a plan over workspace storage.  Single-lane plans alias the
// cursors onto the starts table (the starts ARE the initial cursors), which
// both skips a copy and is why key_starts must be read before apply.
SortPlan lay_out_plan(Workspace& ws, std::size_t n, std::uint32_t key_bound,
                      unsigned lanes) {
  SortPlan plan;
  plan.n = n;
  plan.key_bound = key_bound;
  plan.lanes = lanes;
  std::uint32_t* starts = grown(ws.sort_starts, key_bound + std::size_t{1});
  plan.key_starts = {starts, key_bound + std::size_t{1}};
  std::uint32_t* cursors =
      lanes == 1
          ? starts
          : grown(ws.sort_cursors, static_cast<std::size_t>(lanes) * key_bound);
  plan.cursors = {cursors, static_cast<std::size_t>(lanes) * key_bound};
  return plan;
}

}  // namespace

SortPlan counting_sort_plan(ThreadPool& pool,
                            std::span<const std::uint32_t> keys,
                            std::uint32_t key_bound) {
  assert(key_bound >= 1 && key_bound <= kDirectSortBound);
  const std::size_t n = keys.size();
  const unsigned lanes = sort_plan_lanes(pool, n);
  SortPlan plan = lay_out_plan(pool.workspace(), n, key_bound, lanes);
  std::uint32_t* starts = const_cast<std::uint32_t*>(plan.key_starts.data());
  std::uint32_t* cursors = plan.cursors.data();

  if (lanes == 1) {
    // starts doubles as the cursor table: build the exclusive starts shifted
    // by one, then key_starts[k] and cursors[k] coincide.
    std::fill(starts, starts + key_bound + 1, 0u);
    for (std::size_t i = 0; i < n; ++i) ++starts[keys[i] + 1];
    for (std::uint32_t k = 0; k < key_bound; ++k) starts[k + 1] += starts[k];
    return plan;
  }

  // Per-lane key counts, in place in the cursor table.
  pool.parallel([&](unsigned tid) {
    std::uint32_t* h = cursors + static_cast<std::size_t>(tid) * key_bound;
    std::fill(h, h + key_bound, 0u);
    const Range r = lane_range(n, tid, lanes);
    for (std::size_t i = r.begin; i < r.end; ++i) ++h[keys[i]];
  });
  finish_plan_tables(pool, starts, cursors, cursors, lanes, key_bound);
  return plan;
}

SortPlan counting_sort_plan_from_counts(
    ThreadPool& pool, std::span<const std::uint32_t> lane_counts,
    unsigned lanes, std::size_t n, std::uint32_t key_bound) {
  assert(key_bound >= 1 && key_bound <= kDirectSortBound);
  assert(lane_counts.size() >= static_cast<std::size_t>(lanes) * key_bound);
  assert(lanes == sort_plan_lanes(pool, n));
  SortPlan plan = lay_out_plan(pool.workspace(), n, key_bound, lanes);
  std::uint32_t* starts = const_cast<std::uint32_t*>(plan.key_starts.data());
  if (lanes == 1) {
    starts[0] = 0;
    for (std::uint32_t k = 0; k < key_bound; ++k)
      starts[k + 1] = starts[k] + lane_counts[k];
    return plan;
  }
  finish_plan_tables(pool, starts, plan.cursors.data(), lane_counts.data(),
                     lanes, key_bound);
  return plan;
}

void counting_sort_index(ThreadPool& pool, std::span<const std::uint32_t> keys,
                         std::uint32_t key_bound,
                         std::span<std::uint32_t> order) {
  assert(order.size() == keys.size());
  const SortPlan plan = counting_sort_plan(pool, keys, key_bound);
  apply_sort_plan(pool, keys, plan, [&](std::size_t src, std::size_t dst) {
    order[dst] = static_cast<std::uint32_t>(src);
  });
}

void stable_sort_index(ThreadPool& pool, std::span<const std::uint32_t> keys,
                       std::uint32_t key_bound,
                       std::span<std::uint32_t> order) {
  const std::size_t n = keys.size();
  if (key_bound <= kDirectSortBound) {
    counting_sort_index(pool, keys, key_bound, order);
    return;
  }
  // Two-pass LSD radix over 16-bit digits (workspace-backed scratch).
  Workspace& ws = pool.workspace();
  std::span<std::uint32_t> low(grown(ws.radix_low, n), n);
  std::span<std::uint32_t> order1(grown(ws.radix_order1, n), n);
  std::span<std::uint32_t> high_sorted(grown(ws.radix_high, n), n);
  std::span<std::uint32_t> order2(grown(ws.radix_order2, n), n);
  parallel_for(pool, n, [&](std::size_t i) { low[i] = keys[i] & 0xffffu; });
  counting_sort_index(pool, low, 1u << 16, order1);
  parallel_for(pool, n,
               [&](std::size_t i) { high_sorted[i] = keys[order1[i]] >> 16; });
  const auto high_bound = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(1u << 16, ((std::uint64_t)key_bound >> 16) + 1));
  counting_sort_index(pool, high_sorted, high_bound, order2);
  parallel_for(pool, n, [&](std::size_t i) { order[i] = order1[order2[i]]; });
}

bool is_permutation_of_iota(std::span<const std::uint32_t> order) {
  std::vector<std::uint8_t> seen(order.size(), 0);
  for (std::uint32_t v : order) {
    if (v >= order.size() || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

}  // namespace cmdsmc::cmdp
