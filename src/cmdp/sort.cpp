#include "cmdp/sort.h"

#include <algorithm>
#include <cassert>

#include "cmdp/scan.h"

namespace cmdsmc::cmdp {

void histogram(ThreadPool& pool, std::span<const std::uint32_t> keys,
               std::uint32_t key_bound, std::span<std::uint32_t> counts) {
  assert(counts.size() >= key_bound);
  std::fill(counts.begin(), counts.begin() + key_bound, 0u);
  const std::size_t n = keys.size();
  if (pool.size() == 1 || n < kSerialCutoff) {
    for (std::size_t i = 0; i < n; ++i) ++counts[keys[i]];
    return;
  }
  const unsigned lanes = pool.size();
  std::vector<std::uint32_t> local(static_cast<std::size_t>(lanes) * key_bound,
                                   0u);
  pool.parallel([&](unsigned tid) {
    std::uint32_t* h = local.data() + static_cast<std::size_t>(tid) * key_bound;
    const Range r = lane_range(n, tid, lanes);
    for (std::size_t i = r.begin; i < r.end; ++i) ++h[keys[i]];
  });
  parallel_for(pool, key_bound, [&](std::size_t k) {
    std::uint32_t total = 0;
    for (unsigned t = 0; t < lanes; ++t)
      total += local[static_cast<std::size_t>(t) * key_bound + k];
    counts[k] = total;
  });
}

void counting_sort_index(ThreadPool& pool, std::span<const std::uint32_t> keys,
                         std::uint32_t key_bound,
                         std::span<std::uint32_t> order) {
  const std::size_t n = keys.size();
  assert(order.size() == n);
  if (pool.size() == 1 || n < kSerialCutoff) {
    std::vector<std::uint32_t> offsets(key_bound + 1, 0u);
    for (std::size_t i = 0; i < n; ++i) ++offsets[keys[i] + 1];
    for (std::uint32_t k = 0; k < key_bound; ++k) offsets[k + 1] += offsets[k];
    for (std::size_t i = 0; i < n; ++i)
      order[offsets[keys[i]]++] = static_cast<std::uint32_t>(i);
    return;
  }
  const unsigned lanes = pool.size();
  // Per-lane histograms.
  std::vector<std::uint32_t> local(static_cast<std::size_t>(lanes) * key_bound,
                                   0u);
  pool.parallel([&](unsigned tid) {
    std::uint32_t* h = local.data() + static_cast<std::size_t>(tid) * key_bound;
    const Range r = lane_range(n, tid, lanes);
    for (std::size_t i = r.begin; i < r.end; ++i) ++h[keys[i]];
  });
  // Column-wise conversion to starting offsets: offset(tid, k) =
  // sum_{k'<k} total(k') + sum_{t<tid} local(t, k).  Computed in two steps:
  // per-key totals + prefix within the key column, then an exclusive scan of
  // totals folded back in.
  std::vector<std::uint32_t> totals(key_bound);
  parallel_for(pool, key_bound, [&](std::size_t k) {
    std::uint32_t running = 0;
    for (unsigned t = 0; t < lanes; ++t) {
      std::uint32_t& cell = local[static_cast<std::size_t>(t) * key_bound + k];
      const std::uint32_t c = cell;
      cell = running;
      running += c;
    }
    totals[k] = running;
  });
  std::vector<std::uint32_t> base(key_bound);
  exclusive_scan<std::uint32_t>(
      pool, std::span<const std::uint32_t>(totals),
      std::span<std::uint32_t>(base),
      [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);
  // Scatter: stable because lanes cover ascending index ranges and each lane
  // writes ascending offsets within a key.
  pool.parallel([&](unsigned tid) {
    std::uint32_t* h = local.data() + static_cast<std::size_t>(tid) * key_bound;
    const Range r = lane_range(n, tid, lanes);
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const std::uint32_t k = keys[i];
      order[base[k] + h[k]++] = static_cast<std::uint32_t>(i);
    }
  });
}

void stable_sort_index(ThreadPool& pool, std::span<const std::uint32_t> keys,
                       std::uint32_t key_bound,
                       std::span<std::uint32_t> order) {
  constexpr std::uint32_t kDirectBound = 1u << 21;
  const std::size_t n = keys.size();
  if (key_bound <= kDirectBound) {
    counting_sort_index(pool, keys, key_bound, order);
    return;
  }
  // Two-pass LSD radix over 16-bit digits.
  std::vector<std::uint32_t> low(n), order1(n), high_sorted(n), order2(n);
  parallel_for(pool, n, [&](std::size_t i) { low[i] = keys[i] & 0xffffu; });
  counting_sort_index(pool, std::span<const std::uint32_t>(low), 1u << 16,
                      std::span<std::uint32_t>(order1));
  parallel_for(pool, n,
               [&](std::size_t i) { high_sorted[i] = keys[order1[i]] >> 16; });
  const std::uint32_t high_bound =
      std::min<std::uint64_t>(1u << 16, ((std::uint64_t)key_bound >> 16) + 1);
  counting_sort_index(pool, std::span<const std::uint32_t>(high_sorted),
                      high_bound, std::span<std::uint32_t>(order2));
  parallel_for(pool, n, [&](std::size_t i) { order[i] = order1[order2[i]]; });
}

bool is_permutation_of_iota(std::span<const std::uint32_t> order) {
  std::vector<std::uint8_t> seen(order.size(), 0);
  for (std::uint32_t v : order) {
    if (v >= order.size() || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

}  // namespace cmdsmc::cmdp
