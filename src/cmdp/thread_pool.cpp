#include "cmdp/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <string>

namespace cmdsmc::cmdp {

ThreadPool::ThreadPool(unsigned n) {
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  nthreads_ = n;
  workers_.reserve(nthreads_ - 1);
  for (unsigned tid = 1; tid < nthreads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel(const std::function<void(unsigned)>& fn) {
  if (lane_sink_ == nullptr) {
    dispatch(fn);
    return;
  }
  // Wrap the job so every lane clocks its own busy time.  The wrapper is
  // what gets published to the workers, so the measurement covers exactly
  // the lane's time inside the region (not the fork/join waits).
  LaneTimeSink* const sink = lane_sink_;
  const std::function<void(unsigned)> timed = [&fn, sink](unsigned tid) {
    const auto t0 = std::chrono::steady_clock::now();
    fn(tid);
    sink->record_lane_time(
        tid, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count());
  };
  dispatch(timed);
}

void ThreadPool::dispatch(const std::function<void(unsigned)>& fn) {
  if (nthreads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    job_ = &fn;
    ++generation_;
    pending_ = nthreads_ - 1;
  }
  cv_start_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(unsigned tid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_;
    }
    (*fn)(tid);
    {
      std::lock_guard<std::mutex> lk(m_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("CMDSMC_THREADS")) {
      int v = std::atoi(env);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return 0u;
  }());
  return pool;
}

}  // namespace cmdsmc::cmdp
