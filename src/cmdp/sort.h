// Stable key sorts producing a gather permutation, plus histogram and gather
// helpers.  This is the substrate for the paper's per-step "sort particles by
// (randomized) cell index" — the CM-2 rank-sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cmdp/parallel.h"
#include "cmdp/thread_pool.h"

namespace cmdsmc::cmdp {

// counts[k] = number of occurrences of key k; keys must be < key_bound.
void histogram(ThreadPool& pool, std::span<const std::uint32_t> keys,
               std::uint32_t key_bound, std::span<std::uint32_t> counts);

// Stable counting sort.  Fills `order` (size == keys.size()) such that
// keys[order[0]] <= keys[order[1]] <= ... with equal keys in input order.
// Suitable for key_bound up to a few million (allocates lanes * key_bound
// counters).
void counting_sort_index(ThreadPool& pool, std::span<const std::uint32_t> keys,
                         std::uint32_t key_bound,
                         std::span<std::uint32_t> order);

// Stable sort for arbitrary 32-bit keys: radix over 16-bit digits built on
// counting_sort_index.  Chooses single-pass counting sort when key_bound is
// small enough.
void stable_sort_index(ThreadPool& pool, std::span<const std::uint32_t> keys,
                       std::uint32_t key_bound, std::span<std::uint32_t> order);

// out[i] = in[order[i]] — the gather that applies a sort permutation.
template <class T>
void gather(ThreadPool& pool, std::span<const T> in,
            std::span<const std::uint32_t> order, std::span<T> out) {
  parallel_for(pool, order.size(),
               [&](std::size_t i) { out[i] = in[order[i]]; });
}

// out[order[i]] = in[i] — the inverse scatter.
template <class T>
void scatter(ThreadPool& pool, std::span<const T> in,
             std::span<const std::uint32_t> order, std::span<T> out) {
  parallel_for(pool, order.size(),
               [&](std::size_t i) { out[order[i]] = in[i]; });
}

// Verifies `order` is a permutation of [0, n) — used by tests and debug mode.
bool is_permutation_of_iota(std::span<const std::uint32_t> order);

}  // namespace cmdsmc::cmdp
