// Stable key sorts producing a gather permutation, plus histogram and gather
// helpers.  This is the substrate for the paper's per-step "sort particles by
// (randomized) cell index" — the CM-2 rank-sort.
//
// The hot path is the plan/apply pair: counting_sort_plan counts the keys
// once and lays out the stable scatter (also exposing the per-key starts
// table, which phase_select folds into per-cell tables for free), and
// apply_sort_plan moves every record straight to its sorted position in one
// pass — no intermediate permutation array, no per-field gather passes.
// All scratch lives in the pool's Workspace, so steady-state sorting is
// allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cmdp/parallel.h"
#include "cmdp/thread_pool.h"

namespace cmdsmc::cmdp {

// counts[k] = number of occurrences of key k; keys must be < key_bound.
void histogram(ThreadPool& pool, std::span<const std::uint32_t> keys,
               std::uint32_t key_bound, std::span<std::uint32_t> counts);

// Largest key bound the single-pass counting sort accepts (the per-lane
// count tables stay cache-friendly below this); stable_sort_index switches
// to the two-pass radix above it.
inline constexpr std::uint32_t kDirectSortBound = 1u << 21;

// A prepared stable counting sort over keys < key_bound <= kDirectSortBound.
// Spans borrow the pool's Workspace: a plan is invalidated by the next
// counting_sort_plan / counting_sort_index / stable_sort_index call on the
// same pool.
struct SortPlan {
  std::size_t n = 0;
  std::uint32_t key_bound = 0;
  unsigned lanes = 1;  // scatter lanes the cursors were laid out for
  // key_starts[k] = first sorted position of key k; key_starts[key_bound]
  // = n.  Survives apply_sort_plan.
  std::span<const std::uint32_t> key_starts;
  // lanes x key_bound absolute destination cursors, consumed by apply.
  std::span<std::uint32_t> cursors;
};

// One counting pass over keys plus O(lanes * key_bound) table setup.
// Single-lane plans lay the cursors over the key_starts storage (saving a
// table copy), so read key_starts before applying the plan.
SortPlan counting_sort_plan(ThreadPool& pool,
                            std::span<const std::uint32_t> keys,
                            std::uint32_t key_bound);

// Same plan from per-lane key counts the caller already accumulated (e.g.
// fused into the pass that produced the keys), skipping the counting pass
// entirely.  `lane_counts` holds lanes x key_bound counts where lane t
// counted exactly the keys in lane_range(n, t, lanes); `lanes` must match
// the lane layout counting_sort_plan would pick for (pool, n) so that
// apply_sort_plan partitions identically.
SortPlan counting_sort_plan_from_counts(
    ThreadPool& pool, std::span<const std::uint32_t> lane_counts,
    unsigned lanes, std::size_t n, std::uint32_t key_bound);

// The lane layout counting_sort_plan uses for n elements on this pool; the
// contract callers of counting_sort_plan_from_counts must reproduce.
inline unsigned sort_plan_lanes(ThreadPool& pool, std::size_t n) {
  return (pool.size() == 1 || n < kSerialCutoff) ? 1 : pool.size();
}

// Executes a plan: calls move(src, dst) exactly once per element, where dst
// is the element's stable sorted position (equal keys keep input order).
// Consumes the plan's cursors — apply a plan at most once.
template <class MoveFn>
void apply_sort_plan(ThreadPool& pool, std::span<const std::uint32_t> keys,
                     const SortPlan& plan, MoveFn&& move) {
  const std::size_t n = keys.size();
  auto scatter = [&](Range r, unsigned tid) {
    std::uint32_t* cur =
        plan.cursors.data() + static_cast<std::size_t>(tid) * plan.key_bound;
    constexpr std::size_t kAhead = 16;  // hide the cursor-table load latency
    for (std::size_t i = r.begin; i < r.end; ++i) {
#if defined(__GNUC__) || defined(__clang__)
      if (i + kAhead < r.end) __builtin_prefetch(&cur[keys[i + kAhead]], 1);
#endif
      move(i, static_cast<std::size_t>(cur[keys[i]]++));
    }
  };
  if (plan.lanes == 1) {
    scatter(Range{0, n}, 0);
    return;
  }
  pool.parallel(
      [&](unsigned tid) { scatter(lane_range(n, tid, plan.lanes), tid); });
}

// Stable counting sort.  Fills `order` (size == keys.size()) such that
// keys[order[0]] <= keys[order[1]] <= ... with equal keys in input order.
void counting_sort_index(ThreadPool& pool, std::span<const std::uint32_t> keys,
                         std::uint32_t key_bound,
                         std::span<std::uint32_t> order);

// Stable sort for arbitrary 32-bit keys: radix over 16-bit digits built on
// counting_sort_index.  Chooses single-pass counting sort when key_bound is
// small enough.
void stable_sort_index(ThreadPool& pool, std::span<const std::uint32_t> keys,
                       std::uint32_t key_bound, std::span<std::uint32_t> order);

// out[i] = in[order[i]] — the gather that applies a sort permutation.
template <class T>
void gather(ThreadPool& pool, std::span<const T> in,
            std::span<const std::uint32_t> order, std::span<T> out) {
  parallel_for(pool, order.size(),
               [&](std::size_t i) { out[i] = in[order[i]]; });
}

// out[order[i]] = in[i] — the inverse scatter.
template <class T>
void scatter(ThreadPool& pool, std::span<const T> in,
             std::span<const std::uint32_t> order, std::span<T> out) {
  parallel_for(pool, order.size(),
               [&](std::size_t i) { out[order[i]] = in[i]; });
}

// Verifies `order` is a permutation of [0, n) — used by tests and debug mode.
bool is_permutation_of_iota(std::span<const std::uint32_t> order);

}  // namespace cmdsmc::cmdp
