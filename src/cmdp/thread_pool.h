// cmdp: the data-parallel substrate standing in for the Connection Machine.
//
// The paper's algorithm is expressed purely in terms of data-parallel
// primitives (elementwise maps over "virtual processors", reductions, scans,
// rank-sorts).  On the CM-2 these were provided by Paris / C*; here they are
// provided over a persistent fork-join thread pool on a multicore CPU.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "cmdp/workspace.h"

namespace cmdsmc::cmdp {

// Receiver for per-lane busy time measured inside parallel regions (see
// ThreadPool::set_lane_time_sink).  Called concurrently from every lane,
// each with its own tid — implementations must be safe for distinct-tid
// concurrent calls (e.g. tid-indexed slots), but never see two calls with
// the same tid at once.
class LaneTimeSink {
 public:
  virtual ~LaneTimeSink() = default;
  virtual void record_lane_time(unsigned tid, double seconds) = 0;
};

// Persistent fork-join pool.  The calling thread participates as lane 0, so a
// pool of size N owns N-1 worker threads.  `parallel(fn)` runs `fn(tid)` on
// every lane and blocks until all lanes finish.  The pool is not reentrant:
// `fn` must not itself call `parallel` on the same pool.
class ThreadPool {
 public:
  // n == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return nthreads_; }

  // Runs fn(tid) for tid in [0, size()); blocks until every lane returns.
  void parallel(const std::function<void(unsigned)>& fn);

  // While set, every parallel() measures each lane's wall time inside the
  // region and reports it to the sink — the per-lane phase accounting the
  // telemetry subsystem feeds on.  Control-thread only (like parallel()
  // itself); pass nullptr to detach.  Costs two clock reads per lane per
  // region when attached, nothing when not.
  void set_lane_time_sink(LaneTimeSink* sink) { lane_sink_ = sink; }
  LaneTimeSink* lane_time_sink() const { return lane_sink_; }

  // Scratch buffers shared by the cmdp primitives running on this pool.
  // Safe because the pool is not reentrant: two primitives never execute
  // concurrently on the same pool.
  Workspace& workspace() { return workspace_; }

  // Process-wide pool.  Size taken from env CMDSMC_THREADS if set, else
  // hardware concurrency.  Created on first use.
  static ThreadPool& global();

 private:
  void worker_loop(unsigned tid);
  void dispatch(const std::function<void(unsigned)>& fn);

  unsigned nthreads_;
  LaneTimeSink* lane_sink_ = nullptr;
  std::vector<std::thread> workers_;
  Workspace workspace_;

  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace cmdsmc::cmdp
