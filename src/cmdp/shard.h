// Cell-block domain sharding: the dynamic-load-balance counterpart of the
// static lane_range partition in parallel.h.
//
// The domain is cut into contiguous runs of pairing cells in sort-key order
// ("shards"), so after the counting sort each shard is a contiguous run of
// the particle arrays.  A prefix scan over a per-cell cost model places the
// shard boundaries at cost quantiles; a greedy longest-processing-time pass
// assigns shards to lanes.  Hypersonic runs concentrate particles in the
// shock layer, so equal-cell (or equal-index) partitions leave lanes idle —
// the MPI-era cure (Binder et al., space-filling-curve cost partitioning)
// collapses here to a scan over the per-cell counts the sort plan already
// produces.
//
// The plan carries no physics: which lane executes a cell block changes
// neither the RNG streams (keyed by particle index and step) nor any write
// (per-cell work is disjoint), so any assignment is bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cmdp/thread_pool.h"

namespace cmdsmc::cmdp {

struct ShardPlan {
  // Shard s covers pairing cells [bounds[s], bounds[s+1]).  Monotone
  // non-decreasing; a shard may be empty when one hot cell spans several
  // cost quantiles (a single cell never splits).
  std::vector<std::uint32_t> bounds;
  // Shard ids grouped by owning lane: lane t executes
  // order[lane_begin[t] .. lane_begin[t+1]).
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> lane_begin;  // lanes + 1 offsets into order
  std::vector<double> shard_cost;         // per-shard cost, last evaluation
  unsigned lanes = 0;
  // Predicted max-lane / mean-lane cost of the assignment at build time
  // (1.0 = perfectly balanced).
  double imbalance = 1.0;

  std::size_t count() const { return bounds.empty() ? 0 : bounds.size() - 1; }
  bool active() const { return lanes > 1 && count() > 0; }
  void clear() {
    bounds.clear();
    order.clear();
    lane_begin.clear();
    shard_cost.clear();
    lanes = 0;
    imbalance = 1.0;
  }
};

// Builds `nshards` contiguous shards over cost[0..ncells) with boundaries at
// cost quantiles (prefix scan + lower_bound), then assigns them to `lanes`
// lanes greedily: heaviest shard first into the least-loaded lane, ties to
// the lowest lane.  Deterministic: identical costs give an identical plan.
// nshards is clamped to [1, ncells]; an all-zero cost falls back to an
// equal-cell split.
ShardPlan build_shard_plan(const std::vector<double>& cost, unsigned nshards,
                           unsigned lanes);

// Re-evaluates an existing plan's assignment under fresh per-cell costs
// without moving any boundary: refreshes plan.shard_cost and returns the
// predicted max/mean lane-cost imbalance (the repartition trigger input).
double shard_plan_imbalance(ShardPlan& plan, const std::vector<double>& cost);

// Shard-aware parallel-for: every lane walks its assigned shards, invoking
// fn(cell_begin, cell_end, tid) once per shard.  The caller guarantees
// plan.active() and plan.lanes == pool.size().
template <class Fn>
void parallel_shards(ThreadPool& pool, const ShardPlan& plan, Fn&& fn) {
  pool.parallel([&](unsigned tid) {
    for (std::uint32_t k = plan.lane_begin[tid]; k < plan.lane_begin[tid + 1];
         ++k) {
      const std::uint32_t s = plan.order[k];
      if (plan.bounds[s] < plan.bounds[s + 1])
        fn(plan.bounds[s], plan.bounds[s + 1], tid);
    }
  });
}

}  // namespace cmdsmc::cmdp
