// Reusable scratch for the allocation-heavy cmdp primitives.
//
// The per-step hot loop calls histogram / counting-sort / compaction every
// step; before this arena each call heap-allocated (and freed) its lane
// tables and radix passes.  One Workspace lives on each ThreadPool: a pool is
// not reentrant, so primitives running on the same pool never overlap and can
// share these buffers.  Buffers only grow (resize keeps capacity across
// steps); release() returns the memory to the allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cmdsmc::cmdp {

struct Workspace {
  // counting_sort_plan: per-key exclusive starts (key_bound + 1) and the
  // per-lane scatter cursors (lanes x key_bound).
  std::vector<std::uint32_t> sort_starts;
  std::vector<std::uint32_t> sort_cursors;
  // histogram: per-lane counts (lanes x key_bound).
  std::vector<std::uint32_t> hist_lanes;
  // stable_sort_index radix passes (the four n-sized arrays).
  std::vector<std::uint32_t> radix_low;
  std::vector<std::uint32_t> radix_order1;
  std::vector<std::uint32_t> radix_high;
  std::vector<std::uint32_t> radix_order2;
  // compact_indices: keep-flags to offsets scratch (two n-sized arrays).
  std::vector<std::uint32_t> compact_ones;
  std::vector<std::uint32_t> compact_offsets;

  // Bytes currently held across all buffers (telemetry's arena gauge).
  std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto* v :
         {&sort_starts, &sort_cursors, &hist_lanes, &radix_low, &radix_order1,
          &radix_high, &radix_order2, &compact_ones, &compact_offsets}) {
      total += v->capacity() * sizeof(std::uint32_t);
    }
    return total;
  }

  // Frees every buffer (benchmarks use this to measure the cold-arena cost).
  void release() {
    for (auto* v :
         {&sort_starts, &sort_cursors, &hist_lanes, &radix_low, &radix_order1,
          &radix_high, &radix_order2, &compact_ones, &compact_offsets}) {
      v->clear();
      v->shrink_to_fit();
    }
  }
};

// Grows (never shrinks) `v` to at least n elements and returns its data
// pointer.  Newly exposed contents are unspecified: callers must write
// before reading.
inline std::uint32_t* grown(std::vector<std::uint32_t>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
  return v.data();
}

}  // namespace cmdsmc::cmdp
