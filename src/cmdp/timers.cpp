#include "cmdp/timers.h"

#include <algorithm>

namespace cmdsmc::cmdp {

std::size_t PhaseTimers::phase_id(const std::string& name) {
  auto it = std::find(names_.begin(), names_.end(), name);
  if (it != names_.end())
    return static_cast<std::size_t>(it - names_.begin());
  names_.push_back(name);
  seconds_.push_back(0.0);
  start_.emplace_back();
  if (lanes_ != 0) lane_seconds_.resize(names_.size() * lanes_, 0.0);
  return names_.size() - 1;
}

void PhaseTimers::enable_lane_accumulation(unsigned lanes) {
  lanes_ = lanes;
  lane_seconds_.assign(names_.size() * lanes_, 0.0);
}

double PhaseTimers::total_seconds() const {
  double total = 0.0;
  for (double s : seconds_) total += s;
  return total;
}

std::vector<double> PhaseTimers::percentages() const {
  std::vector<double> out(seconds_.size(), 0.0);
  const double total = total_seconds();
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < seconds_.size(); ++i)
    out[i] = 100.0 * seconds_[i] / total;
  return out;
}

void PhaseTimers::reset() {
  std::fill(seconds_.begin(), seconds_.end(), 0.0);
  std::fill(lane_seconds_.begin(), lane_seconds_.end(), 0.0);
}

}  // namespace cmdsmc::cmdp
