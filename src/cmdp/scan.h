// Scan (parallel prefix) primitives, after Hillis & Steele, "Data Parallel
// Algorithms", CACM 29(12).  The paper uses scans to obtain cell densities
// and to allocate space when refilling the plunger void; tests and samplers
// use the segmented forms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cmdp/parallel.h"
#include "cmdp/thread_pool.h"

namespace cmdsmc::cmdp {

// out[i] = op(in[0], ..., in[i]).  Two-pass: per-lane partials, then offset.
// `in` and `out` may alias.
template <class T, class Op>
void inclusive_scan(ThreadPool& pool, std::span<const T> in, std::span<T> out,
                    Op op, T identity) {
  const std::size_t n = in.size();
  if (pool.size() == 1 || n < kSerialCutoff) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) {
      acc = op(acc, in[i]);
      out[i] = acc;
    }
    return;
  }
  const unsigned lanes = pool.size();
  LanePartials<T> partial(lanes, identity);
  pool.parallel([&](unsigned tid) {
    const Range r = lane_range(n, tid, lanes);
    T acc = identity;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      acc = op(acc, in[i]);
      out[i] = acc;
    }
    partial[tid] = acc;
  });
  LanePartials<T> offset(lanes, identity);
  T acc = identity;
  for (unsigned t = 0; t < lanes; ++t) {
    offset[t] = acc;
    acc = op(acc, partial[t]);
  }
  pool.parallel([&](unsigned tid) {
    if (tid == 0) return;
    const Range r = lane_range(n, tid, lanes);
    const T off = offset[tid];
    for (std::size_t i = r.begin; i < r.end; ++i) out[i] = op(off, out[i]);
  });
}

// out[i] = op(in[0], ..., in[i-1]); out[0] = identity.  Returns the total.
template <class T, class Op>
T exclusive_scan(ThreadPool& pool, std::span<const T> in, std::span<T> out,
                 Op op, T identity) {
  const std::size_t n = in.size();
  if (n == 0) return identity;
  // Serial fallback handles aliasing by carrying the previous value.
  if (pool.size() == 1 || n < kSerialCutoff) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) {
      T v = in[i];
      out[i] = acc;
      acc = op(acc, v);
    }
    return acc;
  }
  const unsigned lanes = pool.size();
  LanePartials<T> partial(lanes, identity);
  pool.parallel([&](unsigned tid) {
    const Range r = lane_range(n, tid, lanes);
    T acc = identity;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      T v = in[i];
      out[i] = acc;
      acc = op(acc, v);
    }
    partial[tid] = acc;
  });
  LanePartials<T> offset(lanes, identity);
  T acc = identity;
  for (unsigned t = 0; t < lanes; ++t) {
    offset[t] = acc;
    acc = op(acc, partial[t]);
  }
  pool.parallel([&](unsigned tid) {
    if (tid == 0) return;
    const Range r = lane_range(n, tid, lanes);
    const T off = offset[tid];
    for (std::size_t i = r.begin; i < r.end; ++i) out[i] = op(off, out[i]);
  });
  return acc;
}

// Segmented inclusive scan: the scan restarts wherever segment_start[i] != 0.
// This is the CM "scan with segment bits" used to combine values per cell
// once particles are sorted by cell index.
template <class T, class Op>
void segmented_inclusive_scan(ThreadPool& pool, std::span<const T> in,
                              std::span<const std::uint8_t> segment_start,
                              std::span<T> out, Op op, T identity) {
  const std::size_t n = in.size();
  if (n == 0) return;
  auto serial = [&](std::size_t b, std::size_t e, T carry) {
    T acc = carry;
    for (std::size_t i = b; i < e; ++i) {
      acc = segment_start[i] ? in[i] : op(acc, in[i]);
      out[i] = acc;
    }
    return acc;
  };
  if (pool.size() == 1 || n < kSerialCutoff) {
    serial(0, n, identity);
    return;
  }
  const unsigned lanes = pool.size();
  // Pass 1: scan each lane independently; record whether any segment start
  // occurred in the lane and the lane's trailing accumulated value.
  LanePartials<T> tail(lanes, identity);
  LanePartials<std::uint8_t> sealed(lanes, 0);  // lane has a segment start
  pool.parallel([&](unsigned tid) {
    const Range r = lane_range(n, tid, lanes);
    T acc = identity;
    bool seen = false;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (segment_start[i]) {
        acc = in[i];
        seen = true;
      } else {
        acc = op(acc, in[i]);
      }
      out[i] = acc;
    }
    tail[tid] = acc;
    sealed[tid] = seen ? 1 : 0;
  });
  // Carry across lanes: a lane's incoming carry is the previous lanes' scan,
  // reset by the most recent sealed lane.
  LanePartials<T> carry(lanes, identity);
  T acc = identity;
  for (unsigned t = 0; t < lanes; ++t) {
    carry[t] = acc;
    acc = sealed[t] ? tail[t] : op(acc, tail[t]);
  }
  // Pass 2: fold the carry into each lane's prefix before its first segment
  // start.
  pool.parallel([&](unsigned tid) {
    const Range r = lane_range(n, tid, lanes);
    const T c = carry[tid];
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (segment_start[i]) break;
      out[i] = op(c, out[i]);
    }
  });
}

// Marks segment starts given keys sorted ascending: flag[i] = 1 iff i == 0 or
// keys[i] != keys[i-1].
inline void mark_segment_starts(ThreadPool& pool,
                                std::span<const std::uint32_t> keys,
                                std::span<std::uint8_t> flags) {
  parallel_for(pool, keys.size(), [&](std::size_t i) {
    flags[i] = (i == 0 || keys[i] != keys[i - 1]) ? 1 : 0;
  });
}

inline void mark_segment_starts(ThreadPool& pool,
                                std::span<const std::uint32_t> keys,
                                std::vector<std::uint8_t>& flags) {
  flags.resize(keys.size());
  mark_segment_starts(pool, keys, std::span<std::uint8_t>(flags));
}

}  // namespace cmdsmc::cmdp
