// Elementwise data-parallel operations: the "one virtual processor per datum"
// primitives of the paper, executed as statically partitioned loops.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "cmdp/thread_pool.h"

namespace cmdsmc::cmdp {

// Half-open index range handed to one lane.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

// Static partition of [0, n) into pool.size() near-equal ranges.
inline Range lane_range(std::size_t n, unsigned tid, unsigned nlanes) {
  const std::size_t base = n / nlanes;
  const std::size_t rem = n % nlanes;
  const std::size_t begin = tid * base + (tid < rem ? tid : rem);
  const std::size_t len = base + (tid < rem ? 1 : 0);
  return {begin, begin + len};
}

// Inverse of lane_range: the lane whose range contains index i.  Callers
// that accumulate per-lane state outside a parallel region (e.g. fixing up
// fused histograms) must agree with the partition above, so the two live
// side by side.  Requires i < n; nlanes > n implies base == 0, which only
// happens below kSerialCutoff where callers use a single lane.
inline unsigned lane_of_index(std::size_t i, std::size_t n, unsigned nlanes) {
  if (nlanes <= 1) return 0;
  const std::size_t base = n / nlanes;
  const std::size_t rem = n % nlanes;
  const std::size_t cut = (base + 1) * rem;
  return i < cut ? static_cast<unsigned>(i / (base + 1))
                 : static_cast<unsigned>(rem + (i - cut) / base);
}

// Below this many elements the fork-join overhead dominates; run serially.
inline constexpr std::size_t kSerialCutoff = 4096;

// Per-lane partial values of reductions and scans.  Up to kInlineLanes the
// partials live on the stack, so the per-call heap allocation the primitives
// used to make disappears on any sane machine.
inline constexpr unsigned kInlineLanes = 64;

template <class T>
class LanePartials {
 public:
  LanePartials(unsigned lanes, const T& init) {
    if (lanes <= kInlineLanes) {
      p_ = stack_.data();
      std::fill(p_, p_ + lanes, init);
    } else {
      heap_.assign(lanes, init);
      p_ = heap_.data();
    }
  }
  // p_ may point into stack_, so copying/moving would dangle.
  LanePartials(const LanePartials&) = delete;
  LanePartials& operator=(const LanePartials&) = delete;
  T& operator[](std::size_t i) { return p_[i]; }

 private:
  std::array<T, kInlineLanes> stack_;
  std::vector<T> heap_;
  T* p_ = nullptr;
};

// f(i) for each i in [0, n).
template <class F>
void parallel_for(ThreadPool& pool, std::size_t n, F&& f) {
  if (n == 0) return;
  if (pool.size() == 1 || n < kSerialCutoff) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  pool.parallel([&](unsigned tid) {
    const Range r = lane_range(n, tid, pool.size());
    for (std::size_t i = r.begin; i < r.end; ++i) f(i);
  });
}

// f(range, tid): one call per lane with its contiguous range.  Always invokes
// on every lane (even empty ranges) so per-lane scratch can be indexed by tid.
template <class F>
void parallel_chunks(ThreadPool& pool, std::size_t n, F&& f) {
  if (pool.size() == 1 || n < kSerialCutoff) {
    f(Range{0, n}, 0u);
    return;
  }
  pool.parallel([&](unsigned tid) { f(lane_range(n, tid, pool.size()), tid); });
}

// Reduction: combine(acc, f(i)) over i in [0, n), associative `combine`.
template <class T, class F, class Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, T identity, F&& f,
                  Combine&& combine) {
  if (pool.size() == 1 || n < kSerialCutoff) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, f(i));
    return acc;
  }
  const unsigned lanes = pool.size();
  LanePartials<T> partial(lanes, identity);
  pool.parallel([&](unsigned tid) {
    const Range r = lane_range(n, tid, pool.size());
    T acc = identity;
    for (std::size_t i = r.begin; i < r.end; ++i) acc = combine(acc, f(i));
    partial[tid] = acc;
  });
  T acc = identity;
  for (unsigned t = 0; t < lanes; ++t) acc = combine(acc, partial[t]);
  return acc;
}

// Convenience sum reduction.
template <class T, class F>
T parallel_sum(ThreadPool& pool, std::size_t n, F&& f) {
  return parallel_reduce(
      pool, n, T{}, std::forward<F>(f),
      [](const T& a, const T& b) { return static_cast<T>(a + b); });
}

}  // namespace cmdsmc::cmdp
