// Elementwise data-parallel operations: the "one virtual processor per datum"
// primitives of the paper, executed as statically partitioned loops.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "cmdp/thread_pool.h"

namespace cmdsmc::cmdp {

// Half-open index range handed to one lane.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

// Static partition of [0, n) into pool.size() near-equal ranges.
inline Range lane_range(std::size_t n, unsigned tid, unsigned nlanes) {
  const std::size_t base = n / nlanes;
  const std::size_t rem = n % nlanes;
  const std::size_t begin = tid * base + (tid < rem ? tid : rem);
  const std::size_t len = base + (tid < rem ? 1 : 0);
  return {begin, begin + len};
}

// Below this many elements the fork-join overhead dominates; run serially.
inline constexpr std::size_t kSerialCutoff = 4096;

// f(i) for each i in [0, n).
template <class F>
void parallel_for(ThreadPool& pool, std::size_t n, F&& f) {
  if (n == 0) return;
  if (pool.size() == 1 || n < kSerialCutoff) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  pool.parallel([&](unsigned tid) {
    const Range r = lane_range(n, tid, pool.size());
    for (std::size_t i = r.begin; i < r.end; ++i) f(i);
  });
}

// f(range, tid): one call per lane with its contiguous range.  Always invokes
// on every lane (even empty ranges) so per-lane scratch can be indexed by tid.
template <class F>
void parallel_chunks(ThreadPool& pool, std::size_t n, F&& f) {
  if (pool.size() == 1 || n < kSerialCutoff) {
    f(Range{0, n}, 0u);
    return;
  }
  pool.parallel([&](unsigned tid) { f(lane_range(n, tid, pool.size()), tid); });
}

// Reduction: combine(acc, f(i)) over i in [0, n), associative `combine`.
template <class T, class F, class Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, T identity, F&& f,
                  Combine&& combine) {
  if (pool.size() == 1 || n < kSerialCutoff) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, f(i));
    return acc;
  }
  std::vector<T> partial(pool.size(), identity);
  pool.parallel([&](unsigned tid) {
    const Range r = lane_range(n, tid, pool.size());
    T acc = identity;
    for (std::size_t i = r.begin; i < r.end; ++i) acc = combine(acc, f(i));
    partial[tid] = acc;
  });
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

// Convenience sum reduction.
template <class T, class F>
T parallel_sum(ThreadPool& pool, std::size_t n, F&& f) {
  return parallel_reduce(
      pool, n, T{}, std::forward<F>(f),
      [](const T& a, const T& b) { return static_cast<T>(a + b); });
}

}  // namespace cmdsmc::cmdp
