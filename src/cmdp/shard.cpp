#include "cmdp/shard.h"

#include <algorithm>
#include <numeric>

namespace cmdsmc::cmdp {

namespace {

// Greedy LPT shard -> lane assignment over plan.shard_cost; fills
// plan.order / plan.lane_begin and returns the predicted max/mean lane-cost
// imbalance.
double assign_lanes(ShardPlan& plan) {
  const std::size_t nshards = plan.count();
  const unsigned lanes = plan.lanes;
  std::vector<std::uint32_t> by_cost(nshards);
  std::iota(by_cost.begin(), by_cost.end(), 0u);
  // Heaviest first; stable so equal costs keep shard order (determinism).
  std::stable_sort(by_cost.begin(), by_cost.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return plan.shard_cost[a] > plan.shard_cost[b];
                   });
  std::vector<double> load(lanes, 0.0);
  std::vector<std::uint32_t> lane_of(nshards, 0);
  for (const std::uint32_t s : by_cost) {
    unsigned best = 0;
    for (unsigned t = 1; t < lanes; ++t)
      if (load[t] < load[best]) best = t;
    lane_of[s] = best;
    load[best] += plan.shard_cost[s];
  }
  // Bucket shard ids by lane, keeping ascending shard order within a lane
  // (contiguous-ish walks help locality).
  plan.lane_begin.assign(lanes + 1, 0);
  for (std::size_t s = 0; s < nshards; ++s) ++plan.lane_begin[lane_of[s] + 1];
  for (unsigned t = 0; t < lanes; ++t)
    plan.lane_begin[t + 1] += plan.lane_begin[t];
  plan.order.resize(nshards);
  std::vector<std::uint32_t> cur(plan.lane_begin.begin(),
                                 plan.lane_begin.end() - 1);
  for (std::size_t s = 0; s < nshards; ++s)
    plan.order[cur[lane_of[s]]++] = static_cast<std::uint32_t>(s);
  double max_load = 0.0;
  double sum = 0.0;
  for (const double l : load) {
    max_load = l > max_load ? l : max_load;
    sum += l;
  }
  return sum > 0.0 ? max_load * lanes / sum : 1.0;
}

}  // namespace

ShardPlan build_shard_plan(const std::vector<double>& cost, unsigned nshards,
                           unsigned lanes) {
  ShardPlan plan;
  plan.lanes = lanes;
  const std::size_t ncells = cost.size();
  if (ncells == 0 || lanes == 0) return plan;
  if (nshards < 1) nshards = 1;
  if (nshards > ncells) nshards = static_cast<unsigned>(ncells);
  std::vector<double> prefix(ncells + 1, 0.0);
  for (std::size_t c = 0; c < ncells; ++c) prefix[c + 1] = prefix[c] + cost[c];
  const double total = prefix[ncells];
  plan.bounds.assign(nshards + 1, 0);
  plan.bounds[nshards] = static_cast<std::uint32_t>(ncells);
  for (unsigned k = 1; k < nshards; ++k) {
    std::uint32_t b;
    if (total > 0.0) {
      const double target = total * k / nshards;
      b = static_cast<std::uint32_t>(
          std::lower_bound(prefix.begin() + 1, prefix.end(), target) -
          prefix.begin());
    } else {
      // No cost signal (empty domain this step): equal-cell split.
      b = static_cast<std::uint32_t>(ncells * k / nshards);
    }
    if (b < plan.bounds[k - 1]) b = plan.bounds[k - 1];
    if (b > ncells) b = static_cast<std::uint32_t>(ncells);
    plan.bounds[k] = b;
  }
  plan.shard_cost.resize(nshards);
  for (unsigned s = 0; s < nshards; ++s)
    plan.shard_cost[s] = prefix[plan.bounds[s + 1]] - prefix[plan.bounds[s]];
  plan.imbalance = assign_lanes(plan);
  return plan;
}

double shard_plan_imbalance(ShardPlan& plan, const std::vector<double>& cost) {
  if (!plan.active()) return 1.0;
  const std::size_t nshards = plan.count();
  plan.shard_cost.assign(nshards, 0.0);
  for (std::size_t s = 0; s < nshards; ++s) {
    double acc = 0.0;
    for (std::uint32_t c = plan.bounds[s]; c < plan.bounds[s + 1]; ++c)
      acc += cost[c];
    plan.shard_cost[s] = acc;
  }
  std::vector<double> load(plan.lanes, 0.0);
  for (unsigned t = 0; t < plan.lanes; ++t)
    for (std::uint32_t k = plan.lane_begin[t]; k < plan.lane_begin[t + 1]; ++k)
      load[t] += plan.shard_cost[plan.order[k]];
  double max_load = 0.0;
  double sum = 0.0;
  for (const double l : load) {
    max_load = l > max_load ? l : max_load;
    sum += l;
  }
  return sum > 0.0 ? max_load * plan.lanes / sum : 1.0;
}

}  // namespace cmdsmc::cmdp
