// Wall-clock phase accounting used to regenerate the paper's performance
// breakdown (move 14% / sort 27% / select 20% / collide 39%).
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "cmdp/thread_pool.h"

namespace cmdsmc::cmdp {

// Accumulates wall-clock seconds per named phase.  Not thread-safe: meant to
// be driven from the simulation's control thread around parallel regions.
//
// Optional per-lane accounting (enable_lane_accumulation): the timers act as
// the pool's LaneTimeSink while a phase Scope holds them attached, so each
// lane's busy seconds inside the phase's parallel regions accumulate under
// (phase, lane).  That per-(phase, lane) table is the load-imbalance input
// the telemetry subsystem emits per step.  Serial work (and the serial
// fallbacks of the cmdp primitives) never enters a parallel region, so with
// more than one lane it shows up in the aggregate but in no lane; with
// exactly one lane, stop() credits lane 0 with the full aggregate so lane 0
// equals the phase total by construction.
class PhaseTimers : public LaneTimeSink {
 public:
  using Clock = std::chrono::steady_clock;

  // Registers (or reuses) a phase and returns its id.
  std::size_t phase_id(const std::string& name);

  void start(std::size_t id) {
    start_[id] = Clock::now();
    current_ = id;
  }
  void stop(std::size_t id) {
    const double dt =
        std::chrono::duration<double>(Clock::now() - start_[id]).count();
    seconds_[id] += dt;
    if (lanes_ == 1) lane_seconds_[id] += dt;
    current_ = kNoPhase;
  }

  double seconds(std::size_t id) const { return seconds_[id]; }
  double total_seconds() const;
  const std::vector<std::string>& names() const { return names_; }

  // Percentage of total time per phase, in registration order.
  std::vector<double> percentages() const;

  void reset();

  // --- Per-lane accumulation ---
  // Sizes the (phase, lane) table and starts routing lane time into it;
  // 0 lanes disables.  Safe to call repeatedly (resets the table).
  void enable_lane_accumulation(unsigned lanes);
  void disable_lane_accumulation() { enable_lane_accumulation(0); }
  unsigned lanes() const { return lanes_; }
  // Cumulative busy seconds of lane `tid` inside phase `id` (0 when lane
  // accumulation is off).
  double lane_seconds(std::size_t id, unsigned tid) const {
    return lanes_ == 0 ? 0.0 : lane_seconds_[id * lanes_ + tid];
  }
  // The whole table, phase-major ([id * lanes() + tid]); empty when off.
  const std::vector<double>& lane_seconds_table() const {
    return lane_seconds_;
  }

  // LaneTimeSink: credits `seconds` to (current phase, tid).  Called
  // concurrently by the pool's lanes while a pool-attached Scope is open;
  // distinct tids write distinct slots.
  void record_lane_time(unsigned tid, double seconds) override {
    if (current_ != kNoPhase) lane_seconds_[current_ * lanes_ + tid] += seconds;
  }

  // RAII scope guard.  The pool-taking form additionally attaches these
  // timers as the pool's lane-time sink for the duration of the phase (only
  // when per-lane accumulation is on with more than one lane — a one-lane
  // table is filled exactly by stop() instead).
  class Scope {
   public:
    Scope(PhaseTimers& t, std::size_t id) : t_(t), id_(id) { t_.start(id_); }
    Scope(PhaseTimers& t, std::size_t id, ThreadPool* pool) : t_(t), id_(id) {
      if (pool != nullptr && t_.lanes() > 1) {
        pool_ = pool;
        pool_->set_lane_time_sink(&t_);
      }
      t_.start(id_);
    }
    ~Scope() {
      t_.stop(id_);
      if (pool_ != nullptr) pool_->set_lane_time_sink(nullptr);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimers& t_;
    std::size_t id_;
    ThreadPool* pool_ = nullptr;
  };

 private:
  static constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

  std::vector<std::string> names_;
  std::vector<double> seconds_;
  std::vector<Clock::time_point> start_;
  unsigned lanes_ = 0;
  std::size_t current_ = kNoPhase;
  std::vector<double> lane_seconds_;  // names_.size() * lanes_, phase-major
};

}  // namespace cmdsmc::cmdp
