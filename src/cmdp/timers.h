// Wall-clock phase accounting used to regenerate the paper's performance
// breakdown (move 14% / sort 27% / select 20% / collide 39%).
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace cmdsmc::cmdp {

// Accumulates wall-clock seconds per named phase.  Not thread-safe: meant to
// be driven from the simulation's control thread around parallel regions.
class PhaseTimers {
 public:
  using Clock = std::chrono::steady_clock;

  // Registers (or reuses) a phase and returns its id.
  std::size_t phase_id(const std::string& name);

  void start(std::size_t id) { start_[id] = Clock::now(); }
  void stop(std::size_t id) {
    seconds_[id] +=
        std::chrono::duration<double>(Clock::now() - start_[id]).count();
  }

  double seconds(std::size_t id) const { return seconds_[id]; }
  double total_seconds() const;
  const std::vector<std::string>& names() const { return names_; }

  // Percentage of total time per phase, in registration order.
  std::vector<double> percentages() const;

  void reset();

  // RAII scope guard.
  class Scope {
   public:
    Scope(PhaseTimers& t, std::size_t id) : t_(t), id_(id) { t_.start(id_); }
    ~Scope() { t_.stop(id_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimers& t_;
    std::size_t id_;
  };

 private:
  std::vector<std::string> names_;
  std::vector<double> seconds_;
  std::vector<Clock::time_point> start_;
};

}  // namespace cmdsmc::cmdp
