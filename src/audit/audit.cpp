#include "audit/audit.h"

#include <algorithm>
#include <cstdio>

namespace cmdsmc::audit {

const char* family_name(Family f) {
  switch (f) {
    case Family::kSort:
      return "sort";
    case Family::kShard:
      return "shard";
    case Family::kConservation:
      return "conservation";
    case Family::kHygiene:
      return "hygiene";
    case Family::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

std::string format_violation(const Violation& v) {
  std::string s = "audit[";
  s += family_name(v.family);
  s += "] step ";
  s += std::to_string(v.step);
  s += " phase ";
  s += v.phase.empty() ? "?" : v.phase;
  if (v.cell >= 0) {
    s += " cell ";
    s += std::to_string(v.cell);
  }
  s += ": ";
  s += v.detail;
  return s;
}

AuditFailure::AuditFailure(Violation v)
    : std::runtime_error(format_violation(v)), v_(std::move(v)) {}

void check_sort_runs(std::span<const std::uint32_t> cell,
                     std::span<const std::uint32_t> counts,
                     std::span<const std::uint32_t> starts, std::int64_t step,
                     std::vector<Violation>& out) {
  const std::size_t n = cell.size();
  const std::size_t pair_cells = counts.size();
  if (starts.size() != pair_cells) {
    out.push_back({Family::kSort, step, "sort", -1,
                   "counts/starts table size mismatch: " +
                       std::to_string(pair_cells) + " vs " +
                       std::to_string(starts.size())});
    return;
  }
  // starts must be the exclusive prefix sum of counts and the runs must
  // tile [0, n) exactly.
  std::uint64_t running = 0;
  for (std::size_t c = 0; c < pair_cells; ++c) {
    if (starts[c] != running) {
      out.push_back({Family::kSort, step, "sort",
                     static_cast<std::int64_t>(c),
                     "starts[" + std::to_string(c) + "] = " +
                         std::to_string(starts[c]) +
                         " breaks the prefix sum (expected " +
                         std::to_string(running) + ")"});
      return;
    }
    running += counts[c];
  }
  if (running != n) {
    out.push_back({Family::kSort, step, "sort", -1,
                   "cell runs cover " + std::to_string(running) + " of " +
                       std::to_string(n) +
                       " particles: the scatter was not a bijection"});
    return;
  }
  // Every particle must sit inside its keyed cell's run.
  std::size_t bad = 0;
  for (std::size_t c = 0; c < pair_cells && bad < 8; ++c) {
    const std::size_t b = starts[c];
    const std::size_t e = b + counts[c];
    for (std::size_t i = b; i < e; ++i) {
      if (cell[i] != c) {
        out.push_back({Family::kSort, step, "sort",
                       static_cast<std::int64_t>(c),
                       "particle " + std::to_string(i) + " carries cell " +
                           std::to_string(cell[i]) + " inside run [" +
                           std::to_string(b) + ", " + std::to_string(e) +
                           ") of cell " + std::to_string(c)});
        if (++bad >= 8) break;
      }
    }
  }
}

void check_shard_plan(const cmdp::ShardPlan& plan, std::uint32_t pair_cells,
                      double reported_imbalance, double tol, std::int64_t step,
                      std::vector<Violation>& out) {
  const std::size_t nshards = plan.count();
  if (nshards == 0) return;  // inactive plan: nothing to cover
  const std::size_t out0 = out.size();
  auto fail = [&](std::int64_t where, std::string detail) {
    out.push_back({Family::kShard, step, "shard", where, std::move(detail)});
  };
  // Exact disjoint cover of [0, pair_cells).
  if (plan.bounds.front() != 0)
    fail(0, "bounds[0] = " + std::to_string(plan.bounds.front()) +
                " (must be 0: shards must cover the cell range from the "
                "start)");
  if (plan.bounds.back() != pair_cells)
    fail(static_cast<std::int64_t>(nshards),
         "bounds[last] = " + std::to_string(plan.bounds.back()) +
             " != pair_cells = " + std::to_string(pair_cells));
  for (std::size_t s = 0; s + 1 < plan.bounds.size(); ++s) {
    if (plan.bounds[s] > plan.bounds[s + 1]) {
      fail(static_cast<std::int64_t>(s),
           "bounds[" + std::to_string(s) + "] = " +
               std::to_string(plan.bounds[s]) + " > bounds[" +
               std::to_string(s + 1) + "] = " +
               std::to_string(plan.bounds[s + 1]) +
               ": shards overlap or run backwards");
      break;
    }
  }
  // order must be a permutation of the shard ids.
  if (plan.order.size() != nshards) {
    fail(-1, "order holds " + std::to_string(plan.order.size()) + " of " +
                 std::to_string(nshards) + " shard ids");
  } else {
    std::vector<std::uint8_t> seen(nshards, 0);
    for (const std::uint32_t s : plan.order) {
      if (s >= nshards || seen[s]) {
        fail(static_cast<std::int64_t>(s),
             "order is not a permutation of the shard ids (duplicate or "
             "out-of-range id " +
                 std::to_string(s) + ")");
        break;
      }
      seen[s] = 1;
    }
  }
  // lane_begin partitions order; per-lane lists stay strictly ascending
  // (the builder's locality contract).
  if (plan.lane_begin.size() != plan.lanes + 1) {
    fail(-1, "lane_begin holds " + std::to_string(plan.lane_begin.size()) +
                 " offsets for " + std::to_string(plan.lanes) + " lanes");
  } else if (plan.lane_begin.front() != 0 ||
             plan.lane_begin.back() != plan.order.size()) {
    fail(-1, "lane_begin does not span order: [" +
                 std::to_string(plan.lane_begin.front()) + ", " +
                 std::to_string(plan.lane_begin.back()) + ") vs " +
                 std::to_string(plan.order.size()));
  } else {
    for (unsigned t = 0; t < plan.lanes; ++t) {
      if (plan.lane_begin[t] > plan.lane_begin[t + 1]) {
        fail(t, "lane_begin runs backwards at lane " + std::to_string(t));
        break;
      }
      for (std::uint32_t k = plan.lane_begin[t];
           k + 1 < plan.lane_begin[t + 1]; ++k) {
        if (plan.order[k] >= plan.order[k + 1]) {
          fail(t, "lane " + std::to_string(t) +
                      " shard list not ascending: order[" +
                      std::to_string(k) + "] = " +
                      std::to_string(plan.order[k]) + " >= order[" +
                      std::to_string(k + 1) + "] = " +
                      std::to_string(plan.order[k + 1]));
          t = plan.lanes - 1;  // one report is enough
          break;
        }
      }
    }
  }
  // Reported imbalance must match the value recomputed from shard_cost +
  // the lane assignment (NaN skips: caller has no fresh gauge).  Pointless
  // once the structure itself is broken.
  if (out.size() != out0) return;
  if (!std::isnan(reported_imbalance) &&
      plan.shard_cost.size() == nshards && plan.lanes > 0) {
    std::vector<double> load(plan.lanes, 0.0);
    for (unsigned t = 0; t < plan.lanes; ++t)
      for (std::uint32_t k = plan.lane_begin[t]; k < plan.lane_begin[t + 1];
           ++k)
        load[t] += plan.shard_cost[plan.order[k]];
    double max_load = 0.0;
    double sum = 0.0;
    for (const double l : load) {
      max_load = std::max(max_load, l);
      sum += l;
    }
    const double recomputed =
        sum > 0.0 ? max_load * plan.lanes / sum : 1.0;
    const double drift = std::abs(recomputed - reported_imbalance);
    if (drift > tol * std::max(1.0, std::abs(recomputed)))
      fail(-1, "reported imbalance " + std::to_string(reported_imbalance) +
                   " does not match the recomputed " +
                   std::to_string(recomputed));
  }
}

void CellMoments::resize(std::size_t ncells) {
  mass.assign(ncells, 0.0);
  px.assign(ncells, 0.0);
  py.assign(ncells, 0.0);
  pz.assign(ncells, 0.0);
  energy.assign(ncells, 0.0);
}

namespace {
bool drifted(double a, double b, double tol, double scale) {
  return std::abs(a - b) > tol * std::max(1.0, std::max(scale, std::abs(a)));
}
}  // namespace

void compare_cell_moments(const CellMoments& before, const CellMoments& after,
                          double tol, std::int64_t step, const char* phase,
                          std::vector<Violation>& out,
                          std::size_t max_report) {
  if (before.size() != after.size()) {
    out.push_back({Family::kConservation, step, phase, -1,
                   "cell-moment table size changed: " +
                       std::to_string(before.size()) + " -> " +
                       std::to_string(after.size())});
    return;
  }
  std::size_t reported = 0;
  for (std::size_t c = 0; c < before.size() && reported < max_report; ++c) {
    // Scale the momentum/energy tolerance by the cell's mass-weighted
    // magnitude: a near-empty cell's sums are tiny but its particle speeds
    // are O(1), so rounding is O(mass), not O(sum).
    const double scale = std::abs(before.mass[c]);
    struct Row {
      const char* name;
      double b, a;
    } rows[] = {
        {"mass", before.mass[c], after.mass[c]},
        {"momentum_x", before.px[c], after.px[c]},
        {"momentum_y", before.py[c], after.py[c]},
        {"momentum_z", before.pz[c], after.pz[c]},
        {"energy", before.energy[c], after.energy[c]},
    };
    for (const Row& r : rows) {
      if (drifted(r.b, r.a, tol, scale)) {
        out.push_back({Family::kConservation, step, phase,
                       static_cast<std::int64_t>(c),
                       std::string("per-cell ") + r.name + " drifted " +
                           std::to_string(r.b) + " -> " +
                           std::to_string(r.a) +
                           " across a phase that must conserve it"});
        ++reported;
        break;
      }
    }
  }
}

void check_finite_span(std::span<const double> values, const char* what,
                       std::int64_t step, const char* phase,
                       std::vector<Violation>& out, std::size_t max_report) {
  std::size_t reported = 0;
  for (std::size_t i = 0; i < values.size() && reported < max_report; ++i) {
    if (!std::isfinite(values[i])) {
      out.push_back({Family::kHygiene, step, phase,
                     static_cast<std::int64_t>(i),
                     std::string("non-finite value in ") + what +
                         " accumulator (slot " + std::to_string(i) + ")"});
      ++reported;
    }
  }
}

}  // namespace cmdsmc::audit
