// In-situ invariant audit: the machine-checked form of the correctness
// arguments PRs 3-8 made by hand (golden hashes, thread/shard invariance,
// exact split/merge conservation).
//
// Layered in two pieces:
//  - This header + audit.cpp: pure check functions over plain data (spans,
//    a ShardPlan, a ParticleStore).  Always compiled, no Simulation
//    dependency, unit-testable against deliberately corrupted inputs.
//  - auditor.h: the Auditor<Real> that snapshots Simulation state at the
//    step-phase hooks and calls these checks.  The hooks themselves are
//    compiled into Simulation::step only under -DCMDSMC_AUDIT=1 (CMake
//    option CMDSMC_AUDIT), so a regular Release build pays nothing.
//
// A check appends Violations instead of throwing, so tests can count how
// many fire; the Auditor turns the first violation of a batch into an
// AuditFailure (a std::runtime_error with step/phase/cell context).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cmdp/shard.h"
#include "core/particles.h"
#include "geom/grid.h"
#include "geom/scene.h"
#include "physics/numeric.h"

namespace cmdsmc::audit {

// True when the Simulation step-loop hooks are compiled in (CMDSMC_AUDIT
// build).  The pure checks below exist in every build.
#if defined(CMDSMC_AUDIT)
inline constexpr bool kAuditCompiled = true;
#else
inline constexpr bool kAuditCompiled = false;
#endif

// Invariant families, one counter slot each (telemetry reports the totals).
enum class Family : int {
  kSort = 0,      // counting-sort plan is a bijection onto the cell runs
  kShard,         // shard plan: disjoint exact cover, sane lane assignment
  kConservation,  // particle ledger + per-cell / global moment conservation
  kHygiene,       // NaN/Inf scans, in-domain, not-inside-solid
  kCheckpoint,    // save -> restore -> rehash round trip
};
inline constexpr int kFamilies = 5;
const char* family_name(Family f);

// One invariant violation, with enough context to locate it.
struct Violation {
  Family family = Family::kSort;
  std::int64_t step = -1;  // step being audited (-1: outside a step)
  std::string phase;       // hook site, e.g. "sort", "collide", "ledger"
  std::int64_t cell = -1;  // offending cell/shard index; -1 when global
  std::string detail;      // human-readable specifics (values, bounds)
};

// Thrown by the Auditor on the first violation of a fatal batch; the
// scenario runner maps it to the runtime-error exit code (3) with the
// formatted context on stderr/JSON.
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(Violation v);
  const Violation& violation() const { return v_; }

 private:
  Violation v_;
};

std::string format_violation(const Violation& v);

// Runtime knobs (scenario overrides audit= / audit_every= / audit_tol=).
struct AuditOptions {
  // Audit every `every`-th step (1 = every step).  <= 0 disables.
  std::int64_t every = 1;
  // Relative tolerance for floating-point conservation comparisons.  The
  // default covers double-precision runs; fixed-point runs quantize every
  // collision result and need a looser value (audit_tol= override).
  double tol = 1e-9;
  // Checkpoint round-trip cadence in *audited* steps (0 = off).  Kept
  // sparse by default: it serializes the whole particle store.
  std::int64_t checkpoint_every = 16;
  // Directory for the round-trip scratch file ("" = std temp dir).
  std::string scratch_dir;
  // Throw AuditFailure on the first violation (production mode).  Tests
  // flip this off to count every violation a corruption produces.
  bool fatal = true;
};

// Per-family check/violation counters (cumulative over the run).
struct AuditCounters {
  std::array<std::uint64_t, kFamilies> checks{};
  std::array<std::uint64_t, kFamilies> violations{};
  std::uint64_t total_checks() const {
    std::uint64_t t = 0;
    for (const std::uint64_t c : checks) t += c;
    return t;
  }
  std::uint64_t total_violations() const {
    std::uint64_t t = 0;
    for (const std::uint64_t c : violations) t += c;
    return t;
  }
};

// --- Sort-plan audit ---------------------------------------------------
// After the scatter, the per-pairing-cell (counts, starts) tables and the
// particle cell array must describe a consistent partition: starts is the
// exclusive prefix sum of counts, the runs tile [0, n) exactly, and every
// particle inside run c carries pairing cell c.  Together with n staying
// the particle count this proves the scatter was a bijection — no particle
// lost, duplicated, or filed under the wrong cell.
void check_sort_runs(std::span<const std::uint32_t> cell,
                     std::span<const std::uint32_t> counts,
                     std::span<const std::uint32_t> starts, std::int64_t step,
                     std::vector<Violation>& out);

// --- Shard-plan structural audit ----------------------------------------
// bounds must cover [0, pair_cells) exactly and monotonically; order must
// be a permutation of the shard ids; lane_begin must partition order with
// each lane's shard list strictly ascending (the builder's locality
// contract); and the imbalance the plan reports must match the value
// recomputed from shard_cost + the lane assignment (pass NaN as
// `reported_imbalance` to skip that comparison).
void check_shard_plan(const cmdp::ShardPlan& plan, std::uint32_t pair_cells,
                      double reported_imbalance, double tol, std::int64_t step,
                      std::vector<Violation>& out);

// --- Conservation: per-cell weighted moments ------------------------------
// Weighted mass / momentum / energy sums per real grid cell over the flow
// particles.  Particles never change cells inside phase_sort (the balance
// pass splits/merges within a cell; the sort only permutes), so comparing
// the tables from before and after the phase checks the whole
// split/merge/scatter chain op-by-op at cell granularity — far stronger
// than a global sum, which hides compensating leaks.
struct CellMoments {
  std::vector<double> mass, px, py, pz, energy;
  void resize(std::size_t ncells);
  std::size_t size() const { return mass.size(); }
};

template <class Real>
void accumulate_cell_moments(const core::ParticleStore<Real>& store,
                             std::uint32_t ncells, CellMoments& m) {
  using N = physics::Num<Real>;
  m.resize(ncells);
  const std::size_t n = store.size();
  const bool wts = store.has_weight;
  for (std::size_t i = 0; i < n; ++i) {
    if (store.flags[i] & core::ParticleStore<Real>::kReservoirFlag) continue;
    const std::uint32_t c = store.cell[i];
    if (c >= ncells) continue;  // merged-away slot already re-keyed
    const double w = wts ? store.weight[i] : 1.0;
    if (w <= 0.0) continue;  // merged-away slot awaiting truncation
    const double ux = N::to_double(store.ux[i]);
    const double uy = N::to_double(store.uy[i]);
    const double uz = N::to_double(store.uz[i]);
    const double r0 = N::to_double(store.r0[i]);
    const double r1 = N::to_double(store.r1[i]);
    double e = 0.5 * (ux * ux + uy * uy + uz * uz + r0 * r0 + r1 * r1);
    if (store.has_vib) {
      const double v0 = N::to_double(store.v0[i]);
      const double v1 = N::to_double(store.v1[i]);
      e += 0.5 * (v0 * v0 + v1 * v1);
    }
    m.mass[c] += w;
    m.px[c] += w * ux;
    m.py[c] += w * uy;
    m.pz[c] += w * uz;
    m.energy[c] += w * e;
  }
}

// Compares two per-cell moment tables; every cell whose relative drift in
// any moment exceeds `tol` becomes one violation (capped at `max_report`).
void compare_cell_moments(const CellMoments& before, const CellMoments& after,
                          double tol, std::int64_t step, const char* phase,
                          std::vector<Violation>& out,
                          std::size_t max_report = 8);

// --- State hygiene ---------------------------------------------------------
// NaN/Inf scan over every active particle array.
template <class Real>
void check_finite_store(const core::ParticleStore<Real>& store,
                        std::int64_t step, const char* phase,
                        std::vector<Violation>& out,
                        std::size_t max_report = 8) {
  using N = physics::Num<Real>;
  const std::size_t n = store.size();
  std::size_t reported = 0;
  for (std::size_t i = 0; i < n && reported < max_report; ++i) {
    const double vals[] = {
        N::to_double(store.x[i]),
        N::to_double(store.y[i]),
        store.has_z ? N::to_double(store.z[i]) : 0.0,
        N::to_double(store.ux[i]),
        N::to_double(store.uy[i]),
        N::to_double(store.uz[i]),
        N::to_double(store.r0[i]),
        N::to_double(store.r1[i]),
        store.has_vib ? N::to_double(store.v0[i]) : 0.0,
        store.has_vib ? N::to_double(store.v1[i]) : 0.0,
        store.has_weight ? store.weight[i] : 1.0,
    };
    static const char* const names[] = {"x",  "y",  "z",  "ux", "uy", "uz",
                                        "r0", "r1", "v0", "v1", "weight"};
    for (std::size_t k = 0; k < std::size(vals); ++k) {
      if (!std::isfinite(vals[k])) {
        out.push_back({Family::kHygiene, step, phase,
                       static_cast<std::int64_t>(i),
                       std::string("non-finite ") + names[k] +
                           " in particle array (value " +
                           std::to_string(vals[k]) + ")"});
        ++reported;
        break;
      }
    }
  }
}

// NaN/Inf scan over a plain accumulator array (field/surface sums).
void check_finite_span(std::span<const double> values, const char* what,
                       std::int64_t step, const char* phase,
                       std::vector<Violation>& out,
                       std::size_t max_report = 4);

// Flow particles must sit inside the grid box and strictly outside every
// body of the scene.  Reservoir-flagged particles are skipped (they park at
// freestream state off-grid by design).
template <class Real>
void check_in_domain(const core::ParticleStore<Real>& store,
                     const geom::Grid& grid, const geom::Scene& scene,
                     std::int64_t step, const char* phase,
                     std::vector<Violation>& out,
                     std::size_t max_report = 8) {
  using N = physics::Num<Real>;
  const std::size_t n = store.size();
  const double nx = grid.nx;
  const double ny = grid.ny;
  const double nz = grid.is3d() ? grid.nz : 0.0;
  std::size_t reported = 0;
  for (std::size_t i = 0; i < n && reported < max_report; ++i) {
    if (store.flags[i] & core::ParticleStore<Real>::kReservoirFlag) continue;
    if (store.has_weight && store.weight[i] <= 0.0) continue;
    const double x = N::to_double(store.x[i]);
    const double y = N::to_double(store.y[i]);
    if (x < 0.0 || x >= nx || y < 0.0 || y >= ny) {
      out.push_back({Family::kHygiene, step, phase,
                     static_cast<std::int64_t>(i),
                     "flow particle outside the grid box at (" +
                         std::to_string(x) + ", " + std::to_string(y) + ")"});
      ++reported;
      continue;
    }
    if (store.has_z && grid.is3d()) {
      const double z = N::to_double(store.z[i]);
      if (z < 0.0 || z >= nz) {
        out.push_back({Family::kHygiene, step, phase,
                       static_cast<std::int64_t>(i),
                       "flow particle outside the grid box at z=" +
                           std::to_string(z)});
        ++reported;
        continue;
      }
    }
    if (!scene.empty() && scene.inside(x, y)) {
      out.push_back({Family::kHygiene, step, phase,
                     static_cast<std::int64_t>(i),
                     "flow particle inside a solid body at (" +
                         std::to_string(x) + ", " + std::to_string(y) + ")"});
      ++reported;
    }
  }
}

// --- Checkpoint round trip ---------------------------------------------
// FNV-1a over every active array's raw bytes: the "rehash" of the
// save -> restore -> rehash self-check.  Byte-exact, so any serialization
// drift (truncation, field reorder, precision loss) trips it.
template <class Real>
std::uint64_t hash_store(const core::ParticleStore<Real>& store) {
  std::uint64_t h = 1469598103934665603ull;
  auto fold_bytes = [&h](const void* p, std::size_t bytes) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  auto fold = [&](const auto& v) {
    fold_bytes(v.data(), v.size() * sizeof(v[0]));
  };
  fold(store.x);
  fold(store.y);
  if (store.has_z) fold(store.z);
  fold(store.ux);
  fold(store.uy);
  fold(store.uz);
  fold(store.r0);
  fold(store.r1);
  if (store.has_vib) {
    fold(store.v0);
    fold(store.v1);
  }
  if (store.has_weight) fold(store.weight);
  fold(store.perm);
  fold(store.cell);
  fold(store.flags);
  fold(store.id);
  return h;
}

}  // namespace cmdsmc::audit
