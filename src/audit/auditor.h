// Auditor<Real>: snapshots Simulation state at the step-phase hook points
// and runs the pure checks from audit.h against it.
//
// Hook protocol (all calls made by Simulation::step, compiled in only under
// -DCMDSMC_AUDIT=1, and only on steps the cadence selects):
//
//   begin_step     census + counter snapshot for the end-of-step ledger
//   after_move     hygiene (NaN/Inf, in-domain, not-inside-solid) and the
//                  per-cell weighted-moment snapshot the sort audit diffs
//                  against — cells are final here and phase_sort must
//                  conserve every cell's moments op-by-op
//   after_sort     sort-run bijection check, shard-plan structural audit,
//                  per-cell conservation across split/merge/scatter, and the
//                  global flow-moment snapshot for the collide drift check
//   after_collide  momentum/energy drift of the collide phase (skipped for
//                  axisymmetric runs: Boyd weighted collisions conserve
//                  only in expectation, by design)
//   end_step       exact particle ledger against the counter deltas,
//                  field/surface accumulator hygiene, and the sparse
//                  checkpoint save -> restore -> rehash round trip
//
// Checks run serially on the control thread between phases: audit mode
// trades speed for certainty, and serial accumulation keeps every reported
// number independent of the lane count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "core/simulation.h"

namespace cmdsmc::audit {

template <class Real>
class Auditor {
 public:
  explicit Auditor(AuditOptions opt = {});

  // True when `step` is selected by the audit cadence.  Simulation latches
  // this once at step entry so a mid-step cadence boundary cannot split the
  // hook sequence.
  bool wants(std::int64_t step) const {
    return opt_.every > 0 && step % opt_.every == 0;
  }

  void begin_step(const core::Simulation<Real>& sim);
  void after_move(const core::Simulation<Real>& sim);
  void after_sort(const core::Simulation<Real>& sim);
  void after_collide(const core::Simulation<Real>& sim);
  void end_step(const core::Simulation<Real>& sim);

  const AuditOptions& options() const { return opt_; }
  const AuditCounters& counters() const { return counters_; }
  // Violations recorded so far (only grows in non-fatal mode; in fatal mode
  // the first one throws AuditFailure instead of accumulating).
  const std::vector<Violation>& violations() const { return log_; }

 private:
  // Counts a finished batch of checks for `family` and either throws the
  // first fresh violation (fatal mode) or appends them to the log.
  void settle(Family family, std::uint64_t checks,
              std::vector<Violation>& fresh);
  std::string scratch_path();

  AuditOptions opt_;
  AuditCounters counters_;
  std::vector<Violation> log_;

  // --- per-step snapshots ---
  std::uint64_t flow0_ = 0, res0_ = 0, total0_ = 0;
  core::SimCounters counters0_;
  CellMoments cells_before_;   // taken after move, diffed after sort
  CellMoments cells_after_;
  double energy_post_sort_ = 0.0;
  std::array<double, 3> momentum_post_sort_{};
  double mass_post_sort_ = 0.0;
  std::int64_t audited_steps_ = 0;
  std::string scratch_file_;  // lazily derived round-trip path
};

extern template class Auditor<double>;
extern template class Auditor<fixedpoint::Fixed32>;

}  // namespace cmdsmc::audit
