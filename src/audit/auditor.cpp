#include "audit/auditor.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <type_traits>

#include "core/checkpoint.h"
#include "geom/wedge.h"

namespace cmdsmc::audit {

namespace {

// Flow particles must also clear the legacy single-wedge boundary when the
// run has no generalized Scene (the wedge predates geom::Scene and is not
// folded into it).
template <class Real>
void check_outside_wedge(const core::ParticleStore<Real>& store,
                         const geom::Wedge& wedge, std::int64_t step,
                         std::vector<Violation>& out,
                         std::size_t max_report = 8) {
  using N = physics::Num<Real>;
  std::size_t reported = 0;
  for (std::size_t i = 0; i < store.size() && reported < max_report; ++i) {
    if (store.flags[i] & core::ParticleStore<Real>::kReservoirFlag) continue;
    const double x = N::to_double(store.x[i]);
    const double y = N::to_double(store.y[i]);
    if (wedge.inside(x, y)) {
      out.push_back({Family::kHygiene, step, "move",
                     static_cast<std::int64_t>(i),
                     "flow particle inside the wedge at (" +
                         std::to_string(x) + ", " + std::to_string(y) + ")"});
      ++reported;
    }
  }
}

std::atomic<std::uint64_t> g_scratch_serial{0};

}  // namespace

template <class Real>
Auditor<Real>::Auditor(AuditOptions opt) : opt_(std::move(opt)) {}

template <class Real>
void Auditor<Real>::settle(Family family, std::uint64_t checks,
                           std::vector<Violation>& fresh) {
  const auto f = static_cast<std::size_t>(family);
  counters_.checks[f] += checks;
  counters_.violations[f] += fresh.size();
  if (fresh.empty()) return;
  if (opt_.fatal) throw AuditFailure(fresh.front());
  for (Violation& v : fresh) log_.push_back(std::move(v));
  fresh.clear();
}

template <class Real>
std::string Auditor<Real>::scratch_path() {
  if (scratch_file_.empty()) {
    namespace fs = std::filesystem;
    const fs::path dir = opt_.scratch_dir.empty()
                             ? fs::temp_directory_path()
                             : fs::path(opt_.scratch_dir);
    const std::uint64_t serial =
        g_scratch_serial.fetch_add(1, std::memory_order_relaxed);
    scratch_file_ = (dir / ("cmdsmc-audit-roundtrip-" +
                            std::to_string(serial) + ".ckpt"))
                        .string();
  }
  return scratch_file_;
}

template <class Real>
void Auditor<Real>::begin_step(const core::Simulation<Real>& sim) {
  flow0_ = sim.flow_count();
  res0_ = sim.reservoir_count();
  total0_ = sim.total_count();
  counters0_ = sim.counters();
}

template <class Real>
void Auditor<Real>::after_move(const core::Simulation<Real>& sim) {
  const std::int64_t step = sim.step_index();
  std::vector<Violation> fresh;
  check_finite_store(sim.particles(), step, "move", fresh);
  check_in_domain(sim.particles(), sim.grid(), sim.scene(), step, "move",
                  fresh);
  if (sim.scene().empty() && sim.wedge() != nullptr)
    check_outside_wedge(sim.particles(), *sim.wedge(), step, fresh);
  settle(Family::kHygiene, 2, fresh);
  // Cells are final for this step from here on: phase_sort (balance pass +
  // scatter) must conserve every cell's weighted moments.
  accumulate_cell_moments(sim.particles(),
                          static_cast<std::uint32_t>(sim.grid().ncells()),
                          cells_before_);
}

template <class Real>
void Auditor<Real>::after_sort(const core::Simulation<Real>& sim) {
  const std::int64_t step = sim.step_index();
  std::vector<Violation> fresh;
  check_sort_runs(sim.particles().cell, sim.sort_counts(), sim.sort_starts(),
                  step, fresh);
  settle(Family::kSort, 1, fresh);

  const cmdp::ShardPlan& plan = sim.shard_plan();
  if (plan.active()) {
    const std::uint32_t pair_cells =
        plan.bounds.empty() ? 0 : plan.bounds.back();
    check_shard_plan(plan, pair_cells, sim.shard_stats().cost_imbalance,
                     1e-6, step, fresh);
    settle(Family::kShard, 1, fresh);
  }

  accumulate_cell_moments(sim.particles(),
                          static_cast<std::uint32_t>(sim.grid().ncells()),
                          cells_after_);
  // Fixed-point runs re-quantize every merged velocity, so the per-cell
  // comparison needs a coarser floor than the double default.
  const double tol = std::is_same_v<Real, fixedpoint::Fixed32>
                         ? std::max(opt_.tol, 1e-3)
                         : opt_.tol;
  compare_cell_moments(cells_before_, cells_after_, tol, step, "sort", fresh);
  settle(Family::kConservation, 1, fresh);

  // Snapshot the global flow moments the collide phase must conserve.
  mass_post_sort_ = sim.flow_weighted_mass();
  momentum_post_sort_ = sim.flow_weighted_momentum();
  energy_post_sort_ = sim.flow_weighted_energy();
}

template <class Real>
void Auditor<Real>::after_collide(const core::Simulation<Real>& sim) {
  const std::int64_t step = sim.step_index();
  std::vector<Violation> fresh;
  // Axisymmetric Boyd weighted collisions conserve momentum/energy only in
  // expectation (the majorant-weight scheme), so the exact drift check is a
  // planar-run invariant.
  if (!sim.config().axisymmetric) {
    const double tol = std::is_same_v<Real, fixedpoint::Fixed32>
                           ? std::max(opt_.tol, 1e-3)
                           : opt_.tol;
    const double scale = std::max(1.0, mass_post_sort_);
    const double mass = sim.flow_weighted_mass();
    const std::array<double, 3> mom = sim.flow_weighted_momentum();
    const double energy = sim.flow_weighted_energy();
    auto drift = [&](const char* what, double before, double after) {
      if (std::abs(after - before) > tol * scale) {
        fresh.push_back({Family::kConservation, step, "collide", -1,
                         std::string("collide phase drifted flow ") + what +
                             ": " + std::to_string(before) + " -> " +
                             std::to_string(after) + " (tol " +
                             std::to_string(tol * scale) + ")"});
      }
    };
    drift("mass", mass_post_sort_, mass);
    drift("momentum_x", momentum_post_sort_[0], mom[0]);
    drift("momentum_y", momentum_post_sort_[1], mom[1]);
    drift("momentum_z", momentum_post_sort_[2], mom[2]);
    drift("energy", energy_post_sort_, energy);
    settle(Family::kConservation, 1, fresh);
  }
}

template <class Real>
void Auditor<Real>::end_step(const core::Simulation<Real>& sim) {
  const std::int64_t step = sim.step_index();
  std::vector<Violation> fresh;

  // Exact particle ledger: every census change must be accounted for by
  // the step's counters.  Removal parks a particle in the reservoir (the
  // array never shrinks there), injection promotes one back (synthesized
  // injections append), splits append clones, merges retire slots.
  const core::SimCounters& c = sim.counters();
  const auto d = [&](std::uint64_t now, std::uint64_t then) {
    return static_cast<std::int64_t>(now) - static_cast<std::int64_t>(then);
  };
  const std::int64_t removed = d(c.removed, counters0_.removed);
  const std::int64_t injected = d(c.injected, counters0_.injected);
  const std::int64_t synthesized = d(c.synthesized, counters0_.synthesized);
  const std::int64_t cloned = d(c.cloned, counters0_.cloned);
  const std::int64_t merged = d(c.merged, counters0_.merged);
  const std::int64_t dflow = d(sim.flow_count(), flow0_);
  const std::int64_t dres = d(sim.reservoir_count(), res0_);
  const std::int64_t dtotal = d(sim.total_count(), total0_);
  auto ledger = [&](const char* what, std::int64_t got,
                    std::int64_t expect) {
    if (got != expect) {
      fresh.push_back({Family::kConservation, step, "ledger", -1,
                       std::string(what) + " changed by " +
                           std::to_string(got) + " but the counters say " +
                           std::to_string(expect) + " (removed " +
                           std::to_string(removed) + ", injected " +
                           std::to_string(injected) + ", synthesized " +
                           std::to_string(synthesized) + ", cloned " +
                           std::to_string(cloned) + ", merged " +
                           std::to_string(merged) + ")"});
    }
  };
  ledger("flow census", dflow, injected - removed + cloned - merged);
  ledger("total census", dtotal, synthesized + cloned - merged);
  ledger("reservoir census", dres, removed - (injected - synthesized));
  settle(Family::kConservation, 3, fresh);

  // Field/surface accumulator hygiene (samplers only advance when sampling
  // is enabled, but stale NaNs would still be caught here).
  const auto rs = sim.resume_state();
  check_finite_span(rs.field_sums, "field", step, "sample", fresh);
  check_finite_span(rs.surface_sums, "surface", step, "sample", fresh);
  settle(Family::kHygiene, 2, fresh);

  ++audited_steps_;
  if (opt_.checkpoint_every > 0 &&
      audited_steps_ % opt_.checkpoint_every == 0) {
    const std::string path = scratch_path();
    std::uint64_t saved_hash = 0;
    bool roundtrip_ok = false;
    std::string error;
    try {
      core::save_checkpoint(path, sim.particles());
      core::ParticleStore<Real> restored;
      core::load_checkpoint(path, restored);
      saved_hash = hash_store(restored);
      roundtrip_ok = true;
    } catch (const std::exception& e) {
      error = e.what();
    }
    std::remove(path.c_str());
    const std::uint64_t live_hash = hash_store(sim.particles());
    if (!roundtrip_ok) {
      fresh.push_back({Family::kCheckpoint, step, "checkpoint", -1,
                       "save/restore round trip failed: " + error});
    } else if (saved_hash != live_hash) {
      fresh.push_back({Family::kCheckpoint, step, "checkpoint", -1,
                       "restored store hash " + std::to_string(saved_hash) +
                           " != live store hash " +
                           std::to_string(live_hash) +
                           ": serialization is lossy"});
    }
    settle(Family::kCheckpoint, 1, fresh);
  }
}

template class Auditor<double>;
template class Auditor<fixedpoint::Fixed32>;

}  // namespace cmdsmc::audit
