// 32-bit fixed-point arithmetic matching the paper's integer implementation:
// "the physical state of a particle is stored in a 32 bit fixed point format
// with 23 bits for precision".
//
// Layout: 1 sign bit, 8 integer bits, 23 fraction bits (Q8.23, two's
// complement), covering ±256 with resolution 2^-23 — enough for a wind tunnel
// a couple of hundred cells long with cell width 1.
//
// The paper's key numerical observation is reproduced here: plain truncation
// of the divide-by-2 in the collision kernel systematically destroys energy
// in stagnation regions; adding 0 or 1 to the result with equal probability
// ("stochastic rounding") restores energy conservation in expectation.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace cmdsmc::fixedpoint {

struct Fixed32 {
  static constexpr int kFracBits = 23;
  static constexpr std::int32_t kOne = std::int32_t{1} << kFracBits;

  std::int32_t raw = 0;

  constexpr Fixed32() = default;
  constexpr explicit Fixed32(std::int32_t raw_value) : raw(raw_value) {}

  static constexpr Fixed32 from_raw(std::int32_t r) { return Fixed32(r); }
  static constexpr Fixed32 from_double(double v) {
    return Fixed32(static_cast<std::int32_t>(
        v * static_cast<double>(kOne) + (v >= 0 ? 0.5 : -0.5)));
  }
  constexpr double to_double() const {
    return static_cast<double>(raw) / static_cast<double>(kOne);
  }

  friend constexpr Fixed32 operator+(Fixed32 a, Fixed32 b) {
    return Fixed32(a.raw + b.raw);
  }
  friend constexpr Fixed32 operator-(Fixed32 a, Fixed32 b) {
    return Fixed32(a.raw - b.raw);
  }
  constexpr Fixed32 operator-() const { return Fixed32(-raw); }
  constexpr Fixed32& operator+=(Fixed32 b) {
    raw += b.raw;
    return *this;
  }
  constexpr Fixed32& operator-=(Fixed32 b) {
    raw -= b.raw;
    return *this;
  }
  friend constexpr bool operator==(Fixed32 a, Fixed32 b) {
    return a.raw == b.raw;
  }
  friend constexpr auto operator<=>(Fixed32 a, Fixed32 b) {
    return a.raw <=> b.raw;
  }

  // Round-to-nearest multiply (used outside the hot collision path).
  friend constexpr Fixed32 mul(Fixed32 a, Fixed32 b) {
    const std::int64_t p =
        static_cast<std::int64_t>(a.raw) * static_cast<std::int64_t>(b.raw);
    return Fixed32(
        static_cast<std::int32_t>((p + (std::int64_t{1} << (kFracBits - 1))) >>
                                  kFracBits));
  }
};

// Truncating halve: rounds toward zero (ordinary integer division
// semantics), so the magnitude of every odd value shrinks by half an ulp on
// average.  This is the "consistent truncation after division by 2" the
// paper identifies as the source of significant energy loss in stagnation
// regions.
constexpr Fixed32 half_truncate(Fixed32 v) { return Fixed32(v.raw / 2); }

// Stochastically rounded halve: add the supplied random bit before shifting,
// making the expected value exact.  `bit` must be 0 or 1.
constexpr Fixed32 half_stochastic(Fixed32 v, std::uint32_t bit) {
  return Fixed32((v.raw + static_cast<std::int32_t>(bit & 1u)) >> 1);
}

// "Quick but dirty" random bits harvested from the low-order bits of a
// physical state quantity (paper, Specific Implementation Issues).  Of
// limited size and unspecified distribution; for low-impact uses only.
constexpr std::uint32_t dirty_bits(Fixed32 v, int nbits) {
  return static_cast<std::uint32_t>(v.raw) & ((1u << nbits) - 1u);
}

}  // namespace cmdsmc::fixedpoint
