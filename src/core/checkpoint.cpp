#include "core/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace cmdsmc::core {

namespace {

constexpr std::uint64_t kMagic = 0x434d44534d433031ull;  // "CMDSMC01"

template <class Real>
constexpr std::uint32_t scalar_tag() {
  if constexpr (std::is_same_v<Real, double>)
    return 1;
  else
    return 2;  // Fixed32
}

template <class T>
void write_vec(std::ofstream& os, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(T)));
}

template <class T>
void read_vec(std::ifstream& is, std::vector<T>& v) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is) throw std::runtime_error("checkpoint: truncated header");
  v.resize(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!is) throw std::runtime_error("checkpoint: truncated array");
}

}  // namespace

template <class Real>
void save_checkpoint(const std::string& path, const ParticleStore<Real>& s) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  const std::uint32_t tag = scalar_tag<Real>();
  const std::uint8_t has_z = s.has_z ? 1 : 0;
  const std::uint8_t has_vib = s.has_vib ? 1 : 0;
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  os.write(reinterpret_cast<const char*>(&tag), sizeof(tag));
  os.write(reinterpret_cast<const char*>(&has_z), sizeof(has_z));
  os.write(reinterpret_cast<const char*>(&has_vib), sizeof(has_vib));
  write_vec(os, s.x);
  write_vec(os, s.y);
  if (s.has_z) write_vec(os, s.z);
  write_vec(os, s.ux);
  write_vec(os, s.uy);
  write_vec(os, s.uz);
  write_vec(os, s.r0);
  write_vec(os, s.r1);
  if (s.has_vib) {
    write_vec(os, s.v0);
    write_vec(os, s.v1);
  }
  write_vec(os, s.perm);
  write_vec(os, s.cell);
  write_vec(os, s.flags);
  write_vec(os, s.id);
  if (!os) throw std::runtime_error("checkpoint: write failed " + path);
}

template <class Real>
void load_checkpoint(const std::string& path, ParticleStore<Real>& s) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  std::uint64_t magic = 0;
  std::uint32_t tag = 0;
  std::uint8_t has_z = 0;
  std::uint8_t has_vib = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  is.read(reinterpret_cast<char*>(&has_z), sizeof(has_z));
  is.read(reinterpret_cast<char*>(&has_vib), sizeof(has_vib));
  if (!is || magic != kMagic)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  if (tag != scalar_tag<Real>())
    throw std::runtime_error("checkpoint: scalar type mismatch in " + path);
  s.has_z = has_z != 0;
  s.has_vib = has_vib != 0;
  read_vec(is, s.x);
  read_vec(is, s.y);
  if (s.has_z) read_vec(is, s.z);
  read_vec(is, s.ux);
  read_vec(is, s.uy);
  read_vec(is, s.uz);
  read_vec(is, s.r0);
  read_vec(is, s.r1);
  if (s.has_vib) {
    read_vec(is, s.v0);
    read_vec(is, s.v1);
  }
  read_vec(is, s.perm);
  read_vec(is, s.cell);
  read_vec(is, s.flags);
  read_vec(is, s.id);
}

template void save_checkpoint<double>(const std::string&,
                                      const ParticleStore<double>&);
template void load_checkpoint<double>(const std::string&,
                                      ParticleStore<double>&);
template void save_checkpoint<fixedpoint::Fixed32>(
    const std::string&, const ParticleStore<fixedpoint::Fixed32>&);
template void load_checkpoint<fixedpoint::Fixed32>(
    const std::string&, ParticleStore<fixedpoint::Fixed32>&);

}  // namespace cmdsmc::core
