#include "core/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace cmdsmc::core {

namespace {

// Format v2 (axisymmetric weights + balance counters); v1 files are refused
// with a bad-magic error rather than misread.
constexpr std::uint64_t kMagic = 0x434d44534d433033ull;   // "CMDSMC03"
constexpr std::uint64_t kMagicSim = 0x434d44534d433034ull;  // "CMDSMC04"

template <class Real>
constexpr std::uint32_t scalar_tag() {
  if constexpr (std::is_same_v<Real, double>)
    return 1;
  else
    return 2;  // Fixed32
}

template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: truncated header");
}

template <class T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(T)));
}

template <class T>
void read_vec(std::istream& is, std::vector<T>& v) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is) throw std::runtime_error("checkpoint: truncated header");
  v.resize(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!is) throw std::runtime_error("checkpoint: truncated array");
}

template <class Real>
void write_store(std::ostream& os, const ParticleStore<Real>& s) {
  const std::uint8_t has_z = s.has_z ? 1 : 0;
  const std::uint8_t has_vib = s.has_vib ? 1 : 0;
  const std::uint8_t has_weight = s.has_weight ? 1 : 0;
  write_pod(os, has_z);
  write_pod(os, has_vib);
  write_pod(os, has_weight);
  write_vec(os, s.x);
  write_vec(os, s.y);
  if (s.has_z) write_vec(os, s.z);
  write_vec(os, s.ux);
  write_vec(os, s.uy);
  write_vec(os, s.uz);
  write_vec(os, s.r0);
  write_vec(os, s.r1);
  if (s.has_vib) {
    write_vec(os, s.v0);
    write_vec(os, s.v1);
  }
  if (s.has_weight) write_vec(os, s.weight);
  write_vec(os, s.perm);
  write_vec(os, s.cell);
  write_vec(os, s.flags);
  write_vec(os, s.id);
}

template <class Real>
void read_store(std::istream& is, ParticleStore<Real>& s) {
  std::uint8_t has_z = 0;
  std::uint8_t has_vib = 0;
  std::uint8_t has_weight = 0;
  read_pod(is, has_z);
  read_pod(is, has_vib);
  read_pod(is, has_weight);
  s.has_z = has_z != 0;
  s.has_vib = has_vib != 0;
  s.has_weight = has_weight != 0;
  read_vec(is, s.x);
  read_vec(is, s.y);
  if (s.has_z) read_vec(is, s.z);
  read_vec(is, s.ux);
  read_vec(is, s.uy);
  read_vec(is, s.uz);
  read_vec(is, s.r0);
  read_vec(is, s.r1);
  if (s.has_vib) {
    read_vec(is, s.v0);
    read_vec(is, s.v1);
  }
  if (s.has_weight) read_vec(is, s.weight);
  read_vec(is, s.perm);
  read_vec(is, s.cell);
  read_vec(is, s.flags);
  read_vec(is, s.id);
}

}  // namespace

template <class Real>
void save_checkpoint(const std::string& path, const ParticleStore<Real>& s) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  write_pod(os, kMagic);
  write_pod(os, scalar_tag<Real>());
  write_store(os, s);
  if (!os) throw std::runtime_error("checkpoint: write failed " + path);
}

template <class Real>
void load_checkpoint(const std::string& path, ParticleStore<Real>& s) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  std::uint64_t magic = 0;
  std::uint32_t tag = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  if (!is || magic != kMagic)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  if (tag != scalar_tag<Real>())
    throw std::runtime_error("checkpoint: scalar type mismatch in " + path);
  read_store(is, s);
}

template <class Real>
void save_checkpoint(const std::string& path, const Simulation<Real>& sim) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  write_pod(os, kMagicSim);
  write_pod(os, scalar_tag<Real>());
  write_pod(os, sim.geometry_hash());
  const auto st = sim.resume_state();
  write_pod(os, st.step);
  write_pod(os, st.plunger_x);
  write_pod(os, st.res_count);
  write_pod(os, st.res_tail);
  write_pod(os, st.counters.candidates);
  write_pod(os, st.counters.collisions);
  write_pod(os, st.counters.reservoir_collisions);
  write_pod(os, st.counters.removed);
  write_pod(os, st.counters.injected);
  write_pod(os, st.counters.synthesized);
  write_pod(os, st.counters.cloned);
  write_pod(os, st.counters.merged);
  write_pod(os, static_cast<std::int32_t>(st.field_samples));
  write_vec(os, st.field_sums);
  write_pod(os, static_cast<std::int32_t>(st.surface_samples));
  write_vec(os, st.surface_sums);
  write_store(os, sim.particles());
  if (!os) throw std::runtime_error("checkpoint: write failed " + path);
}

template <class Real>
void load_checkpoint(const std::string& path, Simulation<Real>& sim) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  std::uint64_t magic = 0;
  std::uint32_t tag = 0;
  std::uint64_t geom_hash = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  if (!is || magic != kMagicSim)
    throw std::runtime_error("checkpoint: bad magic in " + path +
                             (magic == kMagic
                                  ? " (particle-store checkpoint; load it "
                                    "with the ParticleStore overload)"
                                  : ""));
  if (tag != scalar_tag<Real>())
    throw std::runtime_error("checkpoint: scalar type mismatch in " + path);
  read_pod(is, geom_hash);
  if (geom_hash != sim.geometry_hash())
    throw std::runtime_error(
        "checkpoint: geometry/config mismatch in " + path +
        " (the checkpoint was written by a run with different grid, bodies "
        "or boundary mode)");
  typename Simulation<Real>::ResumeState st;
  std::int32_t samples = 0;
  read_pod(is, st.step);
  read_pod(is, st.plunger_x);
  read_pod(is, st.res_count);
  read_pod(is, st.res_tail);
  read_pod(is, st.counters.candidates);
  read_pod(is, st.counters.collisions);
  read_pod(is, st.counters.reservoir_collisions);
  read_pod(is, st.counters.removed);
  read_pod(is, st.counters.injected);
  read_pod(is, st.counters.synthesized);
  read_pod(is, st.counters.cloned);
  read_pod(is, st.counters.merged);
  read_pod(is, samples);
  st.field_samples = samples;
  read_vec(is, st.field_sums);
  read_pod(is, samples);
  st.surface_samples = samples;
  read_vec(is, st.surface_sums);
  ParticleStore<Real> store;
  read_store(is, store);
  try {
    sim.restore(std::move(store), st);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("checkpoint: ") + e.what() + " in " +
                             path);
  }
}

template void save_checkpoint<double>(const std::string&,
                                      const ParticleStore<double>&);
template void load_checkpoint<double>(const std::string&,
                                      ParticleStore<double>&);
template void save_checkpoint<fixedpoint::Fixed32>(
    const std::string&, const ParticleStore<fixedpoint::Fixed32>&);
template void load_checkpoint<fixedpoint::Fixed32>(
    const std::string&, ParticleStore<fixedpoint::Fixed32>&);
template void save_checkpoint<double>(const std::string&,
                                      const Simulation<double>&);
template void load_checkpoint<double>(const std::string&, Simulation<double>&);
template void save_checkpoint<fixedpoint::Fixed32>(
    const std::string&, const Simulation<fixedpoint::Fixed32>&);
template void load_checkpoint<fixedpoint::Fixed32>(
    const std::string&, Simulation<fixedpoint::Fixed32>&);

}  // namespace cmdsmc::core
