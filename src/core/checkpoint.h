// Binary checkpoint/restart for particle stores: long paper-scale runs
// (1200 + 2000 steps at 512k particles) can be split across sessions, and
// steady-state snapshots can be reused by several analysis passes.
#pragma once

#include <string>

#include "core/particles.h"
#include "fixedpoint/fixed32.h"

namespace cmdsmc::core {

// Writes the full particle store (all arrays + layout flags) to `path`.
// Format: magic, version, scalar tag, counts, then raw arrays.  Throws
// std::runtime_error on I/O failure.
template <class Real>
void save_checkpoint(const std::string& path, const ParticleStore<Real>& s);

// Loads a checkpoint written by save_checkpoint with the same Real type.
// Throws std::runtime_error on I/O failure, format or scalar-type mismatch.
template <class Real>
void load_checkpoint(const std::string& path, ParticleStore<Real>& s);

extern template void save_checkpoint<double>(const std::string&,
                                             const ParticleStore<double>&);
extern template void load_checkpoint<double>(const std::string&,
                                             ParticleStore<double>&);
extern template void save_checkpoint<fixedpoint::Fixed32>(
    const std::string&, const ParticleStore<fixedpoint::Fixed32>&);
extern template void load_checkpoint<fixedpoint::Fixed32>(
    const std::string&, ParticleStore<fixedpoint::Fixed32>&);

}  // namespace cmdsmc::core
