// Binary checkpoint/restart: long paper-scale runs (1200 + 2000 steps at
// 512k particles) can be split across sessions, and steady-state snapshots
// can be reused by several analysis passes.
//
// Two levels:
//  - ParticleStore checkpoints (format CMDSMC01): the raw arrays only.
//    Kept for snapshot reuse, but they carry no run state — a restore
//    resumes at step 0 with zeroed samplers.
//  - Simulation checkpoints (format CMDSMC02): the store *plus* everything
//    a resumed run needs to reproduce the uninterrupted run exactly — the
//    step counter (all counter-RNG streams key on it), plunger phase,
//    reservoir bookkeeping, cumulative counters, and the field/surface
//    sampler accumulators (so a restore mid-averaging keeps its Cd/Cl/
//    heat-flux history instead of silently zeroing it).  The file also
//    records a geometry/config provenance hash; loading against a
//    simulation whose grid, scene bodies or boundary mode differ throws
//    instead of silently mixing incompatible state.
#pragma once

#include <string>

#include "core/particles.h"
#include "core/simulation.h"
#include "fixedpoint/fixed32.h"

namespace cmdsmc::core {

// Writes the full particle store (all arrays + layout flags) to `path`.
// Format: magic, version, scalar tag, counts, then raw arrays.  Throws
// std::runtime_error on I/O failure.
template <class Real>
void save_checkpoint(const std::string& path, const ParticleStore<Real>& s);

// Loads a checkpoint written by save_checkpoint with the same Real type.
// Throws std::runtime_error on I/O failure, format or scalar-type mismatch.
template <class Real>
void load_checkpoint(const std::string& path, ParticleStore<Real>& s);

// Writes a full simulation checkpoint (store + resume state + geometry
// hash).  Throws std::runtime_error on I/O failure.
template <class Real>
void save_checkpoint(const std::string& path, const Simulation<Real>& sim);

// Restores a simulation checkpoint into `sim`, which must have been
// constructed with the *same configuration* (the geometry hash is
// verified).  Sampling enable flags are not part of the checkpoint; the
// caller re-enables them.  Throws std::runtime_error on I/O failure, format,
// scalar-type or geometry mismatch.
template <class Real>
void load_checkpoint(const std::string& path, Simulation<Real>& sim);

extern template void save_checkpoint<double>(const std::string&,
                                             const ParticleStore<double>&);
extern template void load_checkpoint<double>(const std::string&,
                                             ParticleStore<double>&);
extern template void save_checkpoint<fixedpoint::Fixed32>(
    const std::string&, const ParticleStore<fixedpoint::Fixed32>&);
extern template void load_checkpoint<fixedpoint::Fixed32>(
    const std::string&, ParticleStore<fixedpoint::Fixed32>&);
extern template void save_checkpoint<double>(const std::string&,
                                             const Simulation<double>&);
extern template void load_checkpoint<double>(const std::string&,
                                             Simulation<double>&);
extern template void save_checkpoint<fixedpoint::Fixed32>(
    const std::string&, const Simulation<fixedpoint::Fixed32>&);
extern template void load_checkpoint<fixedpoint::Fixed32>(
    const std::string&, Simulation<fixedpoint::Fixed32>&);

}  // namespace cmdsmc::core
