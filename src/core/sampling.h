// Macroscopic field sampling.
//
// Cell-averaged moments are accumulated over many time steps after the
// start-up transient (paper: 1200 steps to steady state, then 2000 steps of
// time averaging).  Cells cut by the wedge are normalized by their fractional
// open volume — the paper's "special allowance ... for the fractional cell
// volume ... in computing the time average cell density".
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cmdp/parallel.h"
#include "cmdp/shard.h"
#include "cmdp/thread_pool.h"
#include "core/particles.h"
#include "geom/grid.h"
#include "physics/numeric.h"

namespace cmdsmc::core {

// Finalized cell fields, all normalized by freestream reference values.
struct FieldStats {
  geom::Grid grid;
  int samples = 0;
  std::vector<double> density;   // rho / rho_inf
  std::vector<double> ux, uy;    // mean velocity (cells per step)
  std::vector<double> t_trans;   // T_trans / T_inf
  std::vector<double> t_rot;     // T_rot / T_inf
  std::vector<double> t_total;   // (3 T_trans + 2 T_rot) / 5 / T_inf
  // Raw average particles per cell (axisymmetric runs: average *weighted*
  // census, i.e. molecule-units per cell).
  std::vector<double> mean_count;

  double at(const std::vector<double>& f, int ix, int iy, int iz = 0) const {
    return f[grid.index(ix, iy, iz)];
  }
};

// Running per-cell moment sums.  Accumulation is lane-parallel into private
// buffers that are reduced per cell.
template <class Real>
class FieldSampler {
 public:
  // `cell_volume` rescales each cell's open volume (axisymmetric runs pass
  // the annular volumes 2*iy + 1, in units of pi; empty = unit cells).
  FieldSampler(const geom::Grid& grid, std::vector<double> open_fraction,
               double n_inf, double sigma_inf,
               std::vector<double> cell_volume = {})
      : grid_(grid),
        open_fraction_(std::move(open_fraction)),
        cell_volume_(std::move(cell_volume)),
        n_inf_(n_inf),
        sigma_inf_(sigma_inf),
        sums_(static_cast<std::size_t>(grid.ncells()) * kMoments, 0.0) {}

  int samples() const { return samples_; }

  void reset() {
    samples_ = 0;
    std::fill(sums_.begin(), sums_.end(), 0.0);
  }

  // Accumulates moments of the first `n_flow` particles (the flow particles;
  // reservoir particles sit behind them after the sort).  Requires
  // store.cell[i] to hold the real grid cell for i < n_flow.  `weights`
  // (when non-null) scales every moment by the particle's statistical
  // weight — the axisymmetric radial weighting; the unweighted loop is kept
  // separate so the planar hot path is untouched.
  void accumulate(cmdp::ThreadPool& pool, const ParticleStore<Real>& store,
                  std::size_t n_flow, const double* weights = nullptr) {
    using N = physics::Num<Real>;
    const std::size_t ncells = static_cast<std::size_t>(grid_.ncells());
    const unsigned lanes = pool.size();
    if (lane_sums_.size() != lanes * ncells * kMoments)
      lane_sums_.assign(static_cast<std::size_t>(lanes) * ncells * kMoments,
                        0.0);
    else
      std::fill(lane_sums_.begin(), lane_sums_.end(), 0.0);
    cmdp::parallel_chunks(pool, n_flow, [&](cmdp::Range r, unsigned tid) {
      double* s = lane_sums_.data() +
                  static_cast<std::size_t>(tid) * ncells * kMoments;
      for (std::size_t i = r.begin; i < r.end; ++i) {
        const std::uint32_t c = store.cell[i];
        if (c >= ncells) continue;  // defensive: pairing band
        const double vx = N::to_double(store.ux[i]);
        const double vy = N::to_double(store.uy[i]);
        const double vz = N::to_double(store.uz[i]);
        const double w0 = N::to_double(store.r0[i]);
        const double w1 = N::to_double(store.r1[i]);
        double* m = s + static_cast<std::size_t>(c) * kMoments;
        if (weights == nullptr) {
          m[0] += 1.0;
          m[1] += vx;
          m[2] += vy;
          m[3] += vz;
          m[4] += vx * vx + vy * vy + vz * vz;
          m[5] += w0;
          m[6] += w1;
          m[7] += w0 * w0 + w1 * w1;
        } else {
          const double w = weights[i];
          m[0] += w;
          m[1] += w * vx;
          m[2] += w * vy;
          m[3] += w * vz;
          m[4] += w * (vx * vx + vy * vy + vz * vz);
          m[5] += w * w0;
          m[6] += w * w1;
          m[7] += w * (w0 * w0 + w1 * w1);
        }
      }
    });
    cmdp::parallel_for(pool, ncells, [&](std::size_t c) {
      double* dst = sums_.data() + c * kMoments;
      for (unsigned t = 0; t < lanes; ++t) {
        const double* src = lane_sums_.data() +
                            (static_cast<std::size_t>(t) * ncells + c) *
                                kMoments;
        for (int m = 0; m < kMoments; ++m) dst[m] += src[m];
      }
    });
    ++samples_;
  }

  // Per-cell accumulation over the sorted runs: after the counting sort,
  // cell c's particles occupy [starts[c], starts[c] + counts[c]), every
  // cell belongs to exactly one lane (its shard's owner), and moments add
  // into sums_ in ascending index order — so the accumulated sums are
  // bit-identical for every lane count and every shard assignment, a
  // stronger guarantee than accumulate()'s lane-major reduction (whose
  // summation order depends on the lane count).  Also skips accumulate()'s
  // lanes * ncells zero-fill and reduction entirely.  When `plan` is
  // inactive (single lane), the cells are walked in order on the control
  // thread — producing the same bits.
  void accumulate_sorted(cmdp::ThreadPool& pool,
                         const ParticleStore<Real>& store,
                         const std::uint32_t* counts,
                         const std::uint32_t* starts,
                         const cmdp::ShardPlan& plan,
                         const double* weights = nullptr) {
    using N = physics::Num<Real>;
    const std::size_t ncells = static_cast<std::size_t>(grid_.ncells());
    auto run = [&](std::size_t cbegin, std::size_t cend) {
      if (cend > ncells) cend = ncells;  // reservoir band carries no field
      for (std::size_t c = cbegin; c < cend; ++c) {
        const std::uint32_t cnt = counts[c];
        if (cnt == 0) continue;
        const std::size_t s = starts[c];
        double* m = sums_.data() + c * kMoments;
        for (std::size_t i = s; i < s + cnt; ++i) {
          const double vx = N::to_double(store.ux[i]);
          const double vy = N::to_double(store.uy[i]);
          const double vz = N::to_double(store.uz[i]);
          const double w0 = N::to_double(store.r0[i]);
          const double w1 = N::to_double(store.r1[i]);
          if (weights == nullptr) {
            m[0] += 1.0;
            m[1] += vx;
            m[2] += vy;
            m[3] += vz;
            m[4] += vx * vx + vy * vy + vz * vz;
            m[5] += w0;
            m[6] += w1;
            m[7] += w0 * w0 + w1 * w1;
          } else {
            const double w = weights[i];
            m[0] += w;
            m[1] += w * vx;
            m[2] += w * vy;
            m[3] += w * vz;
            m[4] += w * (vx * vx + vy * vy + vz * vz);
            m[5] += w * w0;
            m[6] += w * w1;
            m[7] += w * (w0 * w0 + w1 * w1);
          }
        }
      }
    };
    if (plan.active() && plan.lanes == pool.size()) {
      cmdp::parallel_shards(pool, plan,
                            [&](std::uint32_t cbegin, std::uint32_t cend,
                                unsigned) { run(cbegin, cend); });
    } else {
      run(0, ncells);
    }
    ++samples_;
  }

  FieldStats finalize() const {
    FieldStats f;
    f.grid = grid_;
    f.samples = samples_;
    const std::size_t ncells = static_cast<std::size_t>(grid_.ncells());
    f.density.assign(ncells, 0.0);
    f.ux.assign(ncells, 0.0);
    f.uy.assign(ncells, 0.0);
    f.t_trans.assign(ncells, 0.0);
    f.t_rot.assign(ncells, 0.0);
    f.t_total.assign(ncells, 0.0);
    f.mean_count.assign(ncells, 0.0);
    if (samples_ == 0) return f;
    const double tref = sigma_inf_ * sigma_inf_;
    for (std::size_t c = 0; c < ncells; ++c) {
      const double* m = sums_.data() + c * kMoments;
      const double count = m[0];
      f.mean_count[c] = count / samples_;
      const double open =
          c < open_fraction_.size() ? open_fraction_[c] : 1.0;
      const double vol = c < cell_volume_.size() ? cell_volume_[c] : 1.0;
      if (open > 1e-9)
        f.density[c] = f.mean_count[c] / (n_inf_ * open * vol);
      if (count < 2.0) continue;
      const double mux = m[1] / count;
      const double muy = m[2] / count;
      const double muz = m[3] / count;
      const double mr0 = m[5] / count;
      const double mr1 = m[6] / count;
      f.ux[c] = mux;
      f.uy[c] = muy;
      const double var_u =
          m[4] / count - (mux * mux + muy * muy + muz * muz);
      const double var_r = m[7] / count - (mr0 * mr0 + mr1 * mr1);
      f.t_trans[c] = (var_u / 3.0) / tref;
      f.t_rot[c] = (var_r / 2.0) / tref;
      f.t_total[c] = (3.0 * f.t_trans[c] + 2.0 * f.t_rot[c]) / 5.0;
    }
    return f;
  }

  // --- Checkpoint access (core/checkpoint.*) ---
  // The per-cell moment accumulator (ncells * 8 doubles); lane scratch is
  // per-step transient state and never part of a checkpoint.
  const std::vector<double>& accumulated() const { return sums_; }
  void restore(int samples, const std::vector<double>& sums) {
    if (samples < 0 || sums.size() != sums_.size())
      throw std::invalid_argument(
          "FieldSampler::restore: accumulator shape mismatch");
    samples_ = samples;
    sums_ = sums;
  }

 private:
  static constexpr int kMoments = 8;
  geom::Grid grid_;
  std::vector<double> open_fraction_;
  std::vector<double> cell_volume_;  // empty = unit cells (planar)
  double n_inf_;
  double sigma_inf_;
  int samples_ = 0;
  std::vector<double> sums_;
  std::vector<double> lane_sums_;
};

}  // namespace cmdsmc::core
