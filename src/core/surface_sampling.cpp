#include "core/surface_sampling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cmdsmc::core {

namespace {

// Frontal area of a revolved body in the pi-dropped units: r_max^2 (the true
// frontal disc is pi * r_max^2; the pi cancels against the radial weights).
double revolved_ref_area(const geom::Body& body) {
  const double r = std::max(std::abs(body.ymin()), std::abs(body.ymax()));
  return r * r;
}

// Coefficient pass shared by every finalize flavor: normalizes the raw
// fluxes against the freestream and references the force integrals to
// q_inf * chord (planar: per unit span; axisymmetric: q_inf * frontal
// area).  A revolved body has identically zero net lateral force — the
// in-plane radial components cancel azimuthally — so axisymmetric Cl is 0
// by symmetry (fy keeps the raw half-profile radial integral as a
// diagnostic).
void finish(SurfaceStats& out, double chord, double rho_inf, double u_inf,
            bool axisymmetric = false) {
  const double e_ref = 0.5 * rho_inf * u_inf * u_inf * u_inf;
  if (out.q_inf > 0.0) {
    for (SurfaceSegmentStats& s : out.segments) {
      s.cp = (s.p - out.p_inf) / out.q_inf;
      s.cf = s.tau / out.q_inf;
      s.ch = s.q / e_ref;
    }
    if (chord > 0.0) {
      out.cd = out.fx / (out.q_inf * chord);
      out.cl = axisymmetric ? 0.0 : out.fy / (out.q_inf * chord);
    }
  }
}

}  // namespace

SurfaceSampler::SurfaceSampler(int nsegments, unsigned lanes, double span,
                               bool axisymmetric)
    : nseg_(nsegments),
      lanes_(lanes),
      span_(span > 0.0 ? span : 1.0),
      axisymmetric_(axisymmetric) {
  if (nsegments < 0)
    throw std::invalid_argument("SurfaceSampler: negative segment count");
  if (lanes == 0) lanes_ = 1;
  sums_.assign(static_cast<std::size_t>(nseg_) * kMoments, 0.0);
  lane_sums_.assign(static_cast<std::size_t>(lanes_) * nseg_ * kMoments, 0.0);
  lane_events_.assign(lanes_, 0);
}

void SurfaceSampler::reset() {
  samples_ = 0;
  std::fill(sums_.begin(), sums_.end(), 0.0);
  std::fill(lane_sums_.begin(), lane_sums_.end(), 0.0);
  std::fill(lane_events_.begin(), lane_events_.end(), 0);
  events_total_ = 0;
}

void SurfaceSampler::record(unsigned lane, const geom::WallEventBuffer& ev) {
  // Multiplication by 1.0 is exact for every finite double, so delegating
  // keeps the planar accumulation bit-identical.
  record(lane, ev, 1.0);
}

void SurfaceSampler::record(unsigned lane, const geom::WallEventBuffer& ev,
                            double weight) {
  if (lane >= lanes_) lane = lanes_ - 1;
  double* s = lane_sums_.data() +
              static_cast<std::size_t>(lane) * nseg_ * kMoments;
  for (int k = 0; k < ev.count; ++k) {
    const geom::WallEvent& e = ev.events[k];
    if (e.segment < 0 || e.segment >= nseg_) continue;
    ++lane_events_[lane];
    double* m = s + static_cast<std::size_t>(e.segment) * kMoments;
    m[0] += weight;
    m[1] += weight * e.dpx;
    m[2] += weight * e.dpy;
    m[3] += weight * e.de;
    m[4] += weight * e.p_in;
    m[5] += weight * e.p_out;
    m[6] += weight * e.e_in;
    m[7] += weight * e.e_out;
  }
}

void SurfaceSampler::end_step() {
  // Reduce the lanes into the persistent accumulator (lane order, so the
  // result is deterministic for a fixed lane count) and clear them for the
  // next step.  The persistent table is lane-count independent state — the
  // part a checkpoint carries.
  const std::size_t stride = static_cast<std::size_t>(nseg_) * kMoments;
  if (stride != 0) {
    for (unsigned t = 0; t < lanes_; ++t) {
      const double* src = lane_sums_.data() + static_cast<std::size_t>(t) *
                                                  stride;
      for (std::size_t i = 0; i < stride; ++i) sums_[i] += src[i];
    }
    std::fill(lane_sums_.begin(), lane_sums_.end(), 0.0);
  }
  for (std::uint64_t& e : lane_events_) {
    events_total_ += e;
    e = 0;
  }
  ++samples_;
}

void SurfaceSampler::restore(int samples, const std::vector<double>& sums) {
  if (samples < 0 || sums.size() != sums_.size())
    throw std::invalid_argument(
        "SurfaceSampler::restore: accumulator shape mismatch");
  samples_ = samples;
  sums_ = sums;
  std::fill(lane_sums_.begin(), lane_sums_.end(), 0.0);
}

void SurfaceSampler::accumulate_body(const geom::Body& body, int body_index,
                                     int seg_begin, SurfaceStats& out) const {
  const double steps = samples_ > 0 ? static_cast<double>(samples_) : 1.0;
  for (int i = 0; i < body.segment_count(); ++i) {
    const geom::BodySegment& seg =
        body.segments()[static_cast<std::size_t>(i)];
    SurfaceSegmentStats s;
    s.x = seg.mid_x();
    s.y = seg.mid_y();
    s.nx = seg.nx;
    s.ny = seg.ny;
    s.length = seg.length;
    s.embedded = seg.embedded;
    s.body = body_index;
    const double* m =
        sums_.data() + static_cast<std::size_t>(seg_begin + i) * kMoments;
    // Axisymmetric segments are generators of revolved frustums: lateral
    // area pi * (r0 + r1) * slant == (r0 + r1) * length in the pi-dropped
    // units the radial weights use.  A segment *crossing* the axis
    // generates two cones sharing an apex at the crossing point; their
    // combined area is (r0^2 + r1^2) * length / (r0 + r1) — using the
    // frustum formula there would overstate the area up to ~2x and bias
    // the per-area fluxes low.  Segments at (or mirrored below) the axis
    // keep a small floor so zero-flux faces divide cleanly.
    double area = seg.length * span_;
    if (axisymmetric_) {
      const double ra = std::abs(seg.y0);
      const double rb = std::abs(seg.y1);
      const double sum = std::max(ra + rb, 1e-9);
      area = (seg.y0 * seg.y1 < 0.0 ? (ra * ra + rb * rb) / sum : sum) *
             seg.length;
    }
    s.hits_per_step = m[0] / steps;
    // dp is the momentum handed to the wall; its component along the outward
    // normal is negative for a compressing stream, so pressure (force per
    // area pushing the wall inward) is the negated normal component.
    s.p = -(m[1] * seg.nx + m[2] * seg.ny) / (steps * area);
    s.tau = (m[1] * seg.tx + m[2] * seg.ty) / (steps * area);
    s.q = m[3] / (steps * area);
    s.p_incident = m[4] / (steps * area);
    s.p_reflected = m[5] / (steps * area);
    s.q_incident = m[6] / (steps * area);
    s.q_reflected = m[7] / (steps * area);
    out.fx += m[1] / (steps * span_);
    out.fy += m[2] / (steps * span_);
    out.heat_total += m[3] / (steps * span_);
    out.q_incident_total += m[6] / (steps * span_);
    out.q_reflected_total += m[7] / (steps * span_);
    out.segments.push_back(s);
  }
}

SurfaceStats SurfaceSampler::finalize(const geom::Body& body, double rho_inf,
                                      double sigma_inf, double u_inf) const {
  if (body.segment_count() != nseg_)
    throw std::invalid_argument(
        "SurfaceSampler::finalize: body/sampler segment count mismatch");
  SurfaceStats out;
  out.samples = samples_;
  out.p_inf = rho_inf * sigma_inf * sigma_inf;
  out.q_inf = 0.5 * rho_inf * u_inf * u_inf;
  out.body_name = body.name();
  if (nseg_ == 0) return out;
  out.segments.reserve(static_cast<std::size_t>(nseg_));
  accumulate_body(body, 0, 0, out);
  finish(out, axisymmetric_ ? revolved_ref_area(body) : body.chord(),
         rho_inf, u_inf, axisymmetric_);
  return out;
}

SurfaceStats SurfaceSampler::finalize(const geom::Scene& scene,
                                      double rho_inf, double sigma_inf,
                                      double u_inf) const {
  if (scene.total_segments() != nseg_)
    throw std::invalid_argument(
        "SurfaceSampler::finalize: scene/sampler segment count mismatch");
  SurfaceStats out;
  out.samples = samples_;
  out.p_inf = rho_inf * sigma_inf * sigma_inf;
  out.q_inf = 0.5 * rho_inf * u_inf * u_inf;
  if (scene.body_count() == 1) {
    out.body_name = scene.body(0).name();
  } else {
    out.body_index = -1;
    out.body_name = "scene";
  }
  if (nseg_ == 0) return out;
  out.segments.reserve(static_cast<std::size_t>(nseg_));
  double chord_total = 0.0;
  for (int b = 0; b < scene.body_count(); ++b) {
    accumulate_body(scene.body(b), b, scene.segment_base(b), out);
    chord_total += axisymmetric_ ? revolved_ref_area(scene.body(b))
                                 : scene.body(b).chord();
  }
  finish(out, chord_total, rho_inf, u_inf, axisymmetric_);
  return out;
}

std::vector<SurfaceStats> SurfaceSampler::finalize_per_body(
    const geom::Scene& scene, double rho_inf, double sigma_inf,
    double u_inf) const {
  if (scene.total_segments() != nseg_)
    throw std::invalid_argument(
        "SurfaceSampler::finalize_per_body: scene/sampler segment count "
        "mismatch");
  std::vector<SurfaceStats> out;
  out.reserve(static_cast<std::size_t>(scene.body_count()));
  for (int b = 0; b < scene.body_count(); ++b) {
    const geom::Body& body = scene.body(b);
    SurfaceStats s;
    s.samples = samples_;
    s.p_inf = rho_inf * sigma_inf * sigma_inf;
    s.q_inf = 0.5 * rho_inf * u_inf * u_inf;
    s.body_index = b;
    s.body_name = body.name();
    s.segments.reserve(static_cast<std::size_t>(body.segment_count()));
    accumulate_body(body, b, scene.segment_base(b), s);
    finish(s, axisymmetric_ ? revolved_ref_area(body) : body.chord(),
           rho_inf, u_inf, axisymmetric_);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace cmdsmc::core
