#include "core/surface_sampling.h"

#include <stdexcept>

namespace cmdsmc::core {

SurfaceSampler::SurfaceSampler(int nsegments, unsigned lanes, double span)
    : nseg_(nsegments), lanes_(lanes), span_(span > 0.0 ? span : 1.0) {
  if (nsegments < 0)
    throw std::invalid_argument("SurfaceSampler: negative segment count");
  if (lanes == 0) lanes_ = 1;
  lane_sums_.assign(static_cast<std::size_t>(lanes_) * nseg_ * kMoments, 0.0);
}

void SurfaceSampler::reset() {
  samples_ = 0;
  std::fill(lane_sums_.begin(), lane_sums_.end(), 0.0);
}

void SurfaceSampler::record(unsigned lane, const geom::WallEventBuffer& ev) {
  if (lane >= lanes_) lane = lanes_ - 1;
  double* s = lane_sums_.data() +
              static_cast<std::size_t>(lane) * nseg_ * kMoments;
  for (int k = 0; k < ev.count; ++k) {
    const geom::WallEvent& e = ev.events[k];
    if (e.segment < 0 || e.segment >= nseg_) continue;
    double* m = s + static_cast<std::size_t>(e.segment) * kMoments;
    m[0] += 1.0;
    m[1] += e.dpx;
    m[2] += e.dpy;
    m[3] += e.de;
    m[4] += e.p_in;
    m[5] += e.p_out;
    m[6] += e.e_in;
    m[7] += e.e_out;
  }
}

SurfaceStats SurfaceSampler::finalize(const geom::Body& body, double rho_inf,
                                      double sigma_inf, double u_inf) const {
  SurfaceStats out;
  out.samples = samples_;
  if (body.segment_count() != nseg_)
    throw std::invalid_argument(
        "SurfaceSampler::finalize: body/sampler segment count mismatch");
  out.p_inf = rho_inf * sigma_inf * sigma_inf;
  out.q_inf = 0.5 * rho_inf * u_inf * u_inf;
  out.segments.resize(static_cast<std::size_t>(nseg_));
  if (nseg_ == 0) return out;

  // Reduce the lanes into per-segment sums.
  std::vector<double> sums(static_cast<std::size_t>(nseg_) * kMoments, 0.0);
  for (unsigned t = 0; t < lanes_; ++t) {
    const double* src =
        lane_sums_.data() + static_cast<std::size_t>(t) * nseg_ * kMoments;
    for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += src[i];
  }

  const double steps = samples_ > 0 ? static_cast<double>(samples_) : 1.0;
  const double e_ref = 0.5 * rho_inf * u_inf * u_inf * u_inf;
  for (int i = 0; i < nseg_; ++i) {
    const geom::BodySegment& seg =
        body.segments()[static_cast<std::size_t>(i)];
    SurfaceSegmentStats& s = out.segments[static_cast<std::size_t>(i)];
    s.x = seg.mid_x();
    s.y = seg.mid_y();
    s.nx = seg.nx;
    s.ny = seg.ny;
    s.length = seg.length;
    s.embedded = seg.embedded;
    const double* m = sums.data() + static_cast<std::size_t>(i) * kMoments;
    const double area = seg.length * span_;
    s.hits_per_step = m[0] / steps;
    // dp is the momentum handed to the wall; its component along the outward
    // normal is negative for a compressing stream, so pressure (force per
    // area pushing the wall inward) is the negated normal component.
    s.p = -(m[1] * seg.nx + m[2] * seg.ny) / (steps * area);
    s.tau = (m[1] * seg.tx + m[2] * seg.ty) / (steps * area);
    s.q = m[3] / (steps * area);
    s.p_incident = m[4] / (steps * area);
    s.p_reflected = m[5] / (steps * area);
    s.q_incident = m[6] / (steps * area);
    s.q_reflected = m[7] / (steps * area);
    if (out.q_inf > 0.0) {
      s.cp = (s.p - out.p_inf) / out.q_inf;
      s.cf = s.tau / out.q_inf;
      s.ch = s.q / e_ref;
    }
    out.fx += m[1] / (steps * span_);
    out.fy += m[2] / (steps * span_);
    out.heat_total += m[3] / (steps * span_);
    out.q_incident_total += m[6] / (steps * span_);
    out.q_reflected_total += m[7] / (steps * span_);
  }
  const double chord = body.chord();
  if (out.q_inf > 0.0 && chord > 0.0) {
    out.cd = out.fx / (out.q_inf * chord);
    out.cl = out.fy / (out.q_inf * chord);
  }
  return out;
}

}  // namespace cmdsmc::core
