// Structure-of-arrays particle storage.
//
// Physical state (paper): position, translational velocity (3 components),
// rotational velocity (2 components).  Computational state adds the cell
// index and the packed 5-element permutation vector.  One array element ==
// one "virtual processor" of the CM-2 mapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cmdp/parallel.h"
#include "cmdp/sort.h"
#include "cmdp/thread_pool.h"
#include "rng/permutation.h"

namespace cmdsmc::core {

template <class Real>
struct ParticleStore {
  // Physical state.
  std::vector<Real> x, y, z;  // z used only in 3D runs (kept empty in 2D)
  std::vector<Real> ux, uy, uz;
  std::vector<Real> r0, r1;
  // Vibrational "velocities" (2 DOF harmonic oscillator), allocated only
  // when the vibrational extension is enabled.
  std::vector<Real> v0, v1;
  // Radial statistical weight (axisymmetric runs only): how many
  // molecule-units this simulator represents.  Always double — the weight is
  // bookkeeping, not physical state, so it does not follow the fixed-point
  // engine.
  std::vector<double> weight;
  // Computational state.
  std::vector<rng::PackedPerm> perm;
  std::vector<std::uint32_t> cell;
  // Bit 0: particle is parked in the reservoir (not part of the flow).
  std::vector<std::uint8_t> flags;
  // Persistent particle identity (survives sorting) for tracking and
  // pair-correlation diagnostics.
  std::vector<std::uint32_t> id;

  bool has_z = false;
  bool has_vib = false;
  bool has_weight = false;

  static constexpr std::uint8_t kReservoirFlag = 1u;

  std::size_t size() const { return x.size(); }

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    if (has_z) z.resize(n);
    ux.resize(n);
    uy.resize(n);
    uz.resize(n);
    r0.resize(n);
    r1.resize(n);
    if (has_vib) {
      v0.resize(n);
      v1.resize(n);
    }
    if (has_weight) weight.resize(n, 1.0);
    perm.resize(n);
    cell.resize(n);
    flags.resize(n);
    id.resize(n);
  }

  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    if (has_z) z.reserve(n);
    ux.reserve(n);
    uy.reserve(n);
    uz.reserve(n);
    r0.reserve(n);
    r1.reserve(n);
    if (has_weight) weight.reserve(n);
    perm.reserve(n);
    cell.reserve(n);
    flags.reserve(n);
    id.reserve(n);
  }

  void clear() { resize(0); }

  void push_back(Real px, Real py, Real pz, Real vx, Real vy, Real vz,
                 Real rot0, Real rot1, rng::PackedPerm p,
                 std::uint8_t flag = 0, double w = 1.0) {
    x.push_back(px);
    y.push_back(py);
    if (has_z) z.push_back(pz);
    ux.push_back(vx);
    uy.push_back(vy);
    uz.push_back(vz);
    r0.push_back(rot0);
    r1.push_back(rot1);
    if (has_vib) {
      v0.push_back(Real{});
      v1.push_back(Real{});
    }
    if (has_weight) weight.push_back(w);
    perm.push_back(p);
    cell.push_back(0);
    flags.push_back(flag);
    id.push_back(static_cast<std::uint32_t>(id.size()));
  }

  // Copies record `src` over record `dst` in every active array — the one
  // authoritative per-field enumeration compaction and cloning share (a new
  // field only has to be added here and in resize/scatter/reorder).
  void copy_record(std::size_t dst, std::size_t src) {
    x[dst] = x[src];
    y[dst] = y[src];
    if (has_z) z[dst] = z[src];
    ux[dst] = ux[src];
    uy[dst] = uy[src];
    uz[dst] = uz[src];
    r0[dst] = r0[src];
    r1[dst] = r1[src];
    if (has_vib) {
      v0[dst] = v0[src];
      v1[dst] = v1[src];
    }
    if (has_weight) weight[dst] = weight[src];
    perm[dst] = perm[src];
    cell[dst] = cell[src];
    flags[dst] = flags[src];
    id[dst] = id[src];
  }

  // Appends an exact copy of record `src` (same cell, flags and id — clones
  // keep their parent's identity; the weight-balancing pass of axisymmetric
  // runs divides the parent's weight over the copies afterwards).
  void push_clone(std::size_t src) {
    resize(size() + 1);
    copy_record(size() - 1, src);
  }

  // One-pass fused sort -> reorder: moves every record straight to its
  // stable sorted position (scratch[dst] <- this[src]) using a prepared
  // counting-sort plan, then swaps the buffers in.  One sequential read pass
  // over all arrays instead of a permutation array plus one gather pass per
  // array; the result is identical to reorder() with the plan's order.
  void scatter_sorted(cmdp::ThreadPool& pool,
                      std::span<const std::uint32_t> keys,
                      const cmdp::SortPlan& plan, ParticleStore& scratch) {
    scratch.has_z = has_z;
    scratch.has_vib = has_vib;
    scratch.has_weight = has_weight;
    scratch.resize(size());
    // Raw pointers on both sides: the per-element flags (uint8) store would
    // otherwise force the compiler to re-load every source vector pointer.
    const Real* const px = x.data();
    const Real* const py = y.data();
    const Real* const pz = has_z ? z.data() : nullptr;
    const Real* const pux = ux.data();
    const Real* const puy = uy.data();
    const Real* const puz = uz.data();
    const Real* const pr0 = r0.data();
    const Real* const pr1 = r1.data();
    const Real* const pv0 = has_vib ? v0.data() : nullptr;
    const Real* const pv1 = has_vib ? v1.data() : nullptr;
    const double* const pw = has_weight ? weight.data() : nullptr;
    const rng::PackedPerm* const pperm = perm.data();
    const std::uint32_t* const pcell = cell.data();
    const std::uint8_t* const pflags = flags.data();
    const std::uint32_t* const pid = id.data();
    Real* const sx = scratch.x.data();
    Real* const sy = scratch.y.data();
    Real* const sz = has_z ? scratch.z.data() : nullptr;
    Real* const sux = scratch.ux.data();
    Real* const suy = scratch.uy.data();
    Real* const suz = scratch.uz.data();
    Real* const sr0 = scratch.r0.data();
    Real* const sr1 = scratch.r1.data();
    Real* const sv0 = has_vib ? scratch.v0.data() : nullptr;
    Real* const sv1 = has_vib ? scratch.v1.data() : nullptr;
    double* const sw = has_weight ? scratch.weight.data() : nullptr;
    rng::PackedPerm* const sperm = scratch.perm.data();
    std::uint32_t* const scell = scratch.cell.data();
    std::uint8_t* const sflags = scratch.flags.data();
    std::uint32_t* const sid = scratch.id.data();
    cmdp::apply_sort_plan(
        pool, keys, plan, [&](std::size_t src, std::size_t dst) {
          sx[dst] = px[src];
          sy[dst] = py[src];
          if (sz != nullptr) sz[dst] = pz[src];
          sux[dst] = pux[src];
          suy[dst] = puy[src];
          suz[dst] = puz[src];
          sr0[dst] = pr0[src];
          sr1[dst] = pr1[src];
          if (sv0 != nullptr) {
            sv0[dst] = pv0[src];
            sv1[dst] = pv1[src];
          }
          if (sw != nullptr) sw[dst] = pw[src];
          sperm[dst] = pperm[src];
          scell[dst] = pcell[src];
          sflags[dst] = pflags[src];
          sid[dst] = pid[src];
        });
    swap_arrays(scratch);
  }

  // Applies a sort permutation: this[i] <- this[order[i]] for every array.
  // `scratch` provides reusable buffers; contents are swapped in.
  void reorder(cmdp::ThreadPool& pool, std::span<const std::uint32_t> order,
               ParticleStore& scratch) {
    scratch.has_z = has_z;
    scratch.has_vib = has_vib;
    scratch.has_weight = has_weight;
    scratch.resize(size());
    auto apply = [&](std::vector<Real>& a, std::vector<Real>& s) {
      cmdp::gather<Real>(pool, a, order, s);
      a.swap(s);
    };
    apply(x, scratch.x);
    apply(y, scratch.y);
    if (has_z) apply(z, scratch.z);
    apply(ux, scratch.ux);
    apply(uy, scratch.uy);
    apply(uz, scratch.uz);
    apply(r0, scratch.r0);
    apply(r1, scratch.r1);
    if (has_vib) {
      apply(v0, scratch.v0);
      apply(v1, scratch.v1);
    }
    if (has_weight) {
      cmdp::gather<double>(pool, weight, order, scratch.weight);
      weight.swap(scratch.weight);
    }
    cmdp::gather<rng::PackedPerm>(pool, perm, order, scratch.perm);
    perm.swap(scratch.perm);
    cmdp::gather<std::uint32_t>(pool, cell, order, scratch.cell);
    cell.swap(scratch.cell);
    cmdp::gather<std::uint8_t>(pool, flags, order, scratch.flags);
    flags.swap(scratch.flags);
    cmdp::gather<std::uint32_t>(pool, id, order, scratch.id);
    id.swap(scratch.id);
  }

 private:
  void swap_arrays(ParticleStore& scratch) {
    x.swap(scratch.x);
    y.swap(scratch.y);
    if (has_z) z.swap(scratch.z);
    ux.swap(scratch.ux);
    uy.swap(scratch.uy);
    uz.swap(scratch.uz);
    r0.swap(scratch.r0);
    r1.swap(scratch.r1);
    if (has_vib) {
      v0.swap(scratch.v0);
      v1.swap(scratch.v1);
    }
    if (has_weight) weight.swap(scratch.weight);
    perm.swap(scratch.perm);
    cell.swap(scratch.cell);
    flags.swap(scratch.flags);
    id.swap(scratch.id);
  }
};

}  // namespace cmdsmc::core
