// Structure-of-arrays particle storage.
//
// Physical state (paper): position, translational velocity (3 components),
// rotational velocity (2 components).  Computational state adds the cell
// index and the packed 5-element permutation vector.  One array element ==
// one "virtual processor" of the CM-2 mapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cmdp/parallel.h"
#include "cmdp/sort.h"
#include "cmdp/thread_pool.h"
#include "rng/permutation.h"

namespace cmdsmc::core {

template <class Real>
struct ParticleStore {
  // Physical state.
  std::vector<Real> x, y, z;  // z used only in 3D runs (kept empty in 2D)
  std::vector<Real> ux, uy, uz;
  std::vector<Real> r0, r1;
  // Vibrational "velocities" (2 DOF harmonic oscillator), allocated only
  // when the vibrational extension is enabled.
  std::vector<Real> v0, v1;
  // Computational state.
  std::vector<rng::PackedPerm> perm;
  std::vector<std::uint32_t> cell;
  // Bit 0: particle is parked in the reservoir (not part of the flow).
  std::vector<std::uint8_t> flags;
  // Persistent particle identity (survives sorting) for tracking and
  // pair-correlation diagnostics.
  std::vector<std::uint32_t> id;

  bool has_z = false;
  bool has_vib = false;

  static constexpr std::uint8_t kReservoirFlag = 1u;

  std::size_t size() const { return x.size(); }

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    if (has_z) z.resize(n);
    ux.resize(n);
    uy.resize(n);
    uz.resize(n);
    r0.resize(n);
    r1.resize(n);
    if (has_vib) {
      v0.resize(n);
      v1.resize(n);
    }
    perm.resize(n);
    cell.resize(n);
    flags.resize(n);
    id.resize(n);
  }

  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    if (has_z) z.reserve(n);
    ux.reserve(n);
    uy.reserve(n);
    uz.reserve(n);
    r0.reserve(n);
    r1.reserve(n);
    perm.reserve(n);
    cell.reserve(n);
    flags.reserve(n);
    id.reserve(n);
  }

  void clear() { resize(0); }

  void push_back(Real px, Real py, Real pz, Real vx, Real vy, Real vz,
                 Real rot0, Real rot1, rng::PackedPerm p,
                 std::uint8_t flag = 0) {
    x.push_back(px);
    y.push_back(py);
    if (has_z) z.push_back(pz);
    ux.push_back(vx);
    uy.push_back(vy);
    uz.push_back(vz);
    r0.push_back(rot0);
    r1.push_back(rot1);
    if (has_vib) {
      v0.push_back(Real{});
      v1.push_back(Real{});
    }
    perm.push_back(p);
    cell.push_back(0);
    flags.push_back(flag);
    id.push_back(static_cast<std::uint32_t>(id.size()));
  }

  // Applies a sort permutation: this[i] <- this[order[i]] for every array.
  // `scratch` provides reusable buffers; contents are swapped in.
  void reorder(cmdp::ThreadPool& pool, std::span<const std::uint32_t> order,
               ParticleStore& scratch) {
    scratch.has_z = has_z;
    scratch.has_vib = has_vib;
    scratch.resize(size());
    auto apply = [&](std::vector<Real>& a, std::vector<Real>& s) {
      cmdp::gather<Real>(pool, a, order, s);
      a.swap(s);
    };
    apply(x, scratch.x);
    apply(y, scratch.y);
    if (has_z) apply(z, scratch.z);
    apply(ux, scratch.ux);
    apply(uy, scratch.uy);
    apply(uz, scratch.uz);
    apply(r0, scratch.r0);
    apply(r1, scratch.r1);
    if (has_vib) {
      apply(v0, scratch.v0);
      apply(v1, scratch.v1);
    }
    cmdp::gather<rng::PackedPerm>(pool, perm, order, scratch.perm);
    perm.swap(scratch.perm);
    cmdp::gather<std::uint32_t>(pool, cell, order, scratch.cell);
    cell.swap(scratch.cell);
    cmdp::gather<std::uint8_t>(pool, flags, order, scratch.flags);
    flags.swap(scratch.flags);
    cmdp::gather<std::uint32_t>(pool, id, order, scratch.id);
    id.swap(scratch.id);
  }
};

}  // namespace cmdsmc::core
