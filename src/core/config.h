// Simulation configuration: the paper's wind-tunnel set-up plus every
// algorithmic knob the ablation benches exercise.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <optional>
#include <stdexcept>

#include "geom/body.h"
#include "geom/boundary.h"
#include "physics/gas_model.h"
#include "physics/theory.h"

namespace cmdsmc::core {

// Rounding of the fixed-point halvings in the collision kernel.
enum class Rounding {
  kStochastic,  // paper's fix: add 0/1 with equal probability before >> 1
  kTruncate,    // the naive variant that loses energy in stagnation regions
};

// Source of the low-impact random bits (sort mixing, transpositions, signs,
// rounding).
enum class RngMode {
  kCounter,  // counter-based hash (reference quality)
  kDirty,    // low-order bits of the particle's fixed-point state (paper)
};

struct SimConfig {
  // --- Domain (cells; cell width 1). nz > 0 selects the 3D extension. ---
  int nx = 98;
  int ny = 64;
  int nz = 0;
  // Axisymmetric (z-r) mode: the grid's y axis is reinterpreted as radius,
  // cells become unit-width annuli about the r = 0 axis (the domain floor),
  // and particles carry a radial statistical weight proportional to the
  // annular volume of their cell.  The move phase advances particles in 3D
  // and rotates them back into the plane (the azimuthal velocity folds into
  // uz); collision probabilities and field moments use annular cell volumes
  // and weighted counts; a split/merge balancing pass keeps per-cell
  // simulator counts flat as particles migrate in r.  Bodies must be bodies
  // of revolution about r = 0: center them on y = 0 (the half below the axis
  // is the revolved mirror image and is never reached by particles).
  // Requires nz == 0 and the generalized-body path (no legacy wedge).
  bool axisymmetric = false;

  // --- Freestream ---
  double mach = 4.0;
  double sigma = 0.18;  // thermal std dev per component, cells per step
  // Freestream mean free path in cell widths; 0 = near continuum (paper
  // figs. 1-3), 0.5 = the rarefied case (figs. 4-6).
  double lambda_inf = 0.0;
  double particles_per_cell = 16.0;  // freestream number density
  double reservoir_fraction = 0.10;  // extra particles parked in the reservoir

  // --- Body ---
  // Legacy wedge-specific path (the paper's only body).
  bool has_wedge = true;
  double wedge_x0 = 20.0;
  double wedge_base = 25.0;
  double wedge_angle_deg = 30.0;
  // Generalized body: when set it replaces the wedge fields above — the
  // collision path, fractional cell volumes and surface-flux sampling all go
  // through the geom::Body subsystem.  Build one with the Body factories
  // (Body::Wedge reproduces the legacy wedge) and assign per-segment wall
  // models on it before constructing the Simulation; a body left entirely
  // specular inherits `wall` / `wall_sigma` below as its default.
  std::optional<geom::Body> body;
  // Additional bodies of a multi-body scene.  The Simulation assembles
  // `body` (first, when set) and this list into one geom::Scene; every
  // body obeys the same wall-model inheritance rule as `body`.  Surface
  // statistics are reported per body and as scene totals.
  std::vector<geom::Body> bodies;

  bool has_body_scene() const { return body.has_value() || !bodies.empty(); }

  // --- Gas model ---
  physics::GasModel gas{};
  // Vibrational extension (paper "Future Work": "the molecular model should
  // be generalised to allow ... relaxation into vibrational energy").  Two
  // vibrational DOF per molecule; each accepted collision exchanges with
  // them instead of rotation with probability `vib_exchange_prob`
  // (relaxation number Z_v = 1/prob).  Equilibrium: 7 DOF, gamma = 9/7.
  bool vibrational = false;
  double vib_exchange_prob = 0.2;
  // Initial vibrational temperature as a fraction of T_inf (0 = frozen
  // cold start, 1 = fully excited equilibrium).
  double vib_init_temperature = 1.0;

  // --- Boundary handling ---
  // Closed box: all six boundaries specular, no sink/source/plunger.  Used
  // for conservation and relaxation studies.
  bool closed_box = false;
  geom::UpstreamMode upstream = geom::UpstreamMode::kPlunger;
  double plunger_trigger = 3.0;
  geom::WallModel wall = geom::WallModel::kSpecular;
  double wall_sigma = 0.18;  // diffuse-wall temperature (std dev)

  // --- Algorithm knobs (ablations) ---
  int sort_scale = 8;          // cell key scale factor for sort randomization
  bool randomize_sort = true;  // add rand < scale to the key before sorting
  int transpositions_per_collision = 1;
  Rounding rounding = Rounding::kStochastic;
  RngMode rng_mode = RngMode::kCounter;
  bool reservoir_collisions = true;

  // --- Cell-block domain sharding (dynamic load balancing) ---
  // When on (and the pool has more than one lane), selection+collision and
  // field sampling parallelize over contiguous cell-block shards assigned to
  // lanes by a greedy cost partitioner (cmdp/shard.h) instead of the static
  // equal-index split; the per-cell cost is count + collide_weight * pairs,
  // with collide_weight adapted from the phase timers when shard_adapt is
  // set.  Repartitioning happens when the predicted max/mean cost imbalance
  // of the current assignment exceeds shard_rebalance_threshold and at least
  // shard_rebalance_interval steps have passed since the last repartition.
  // Physics is bit-identical to the static split either way; sharding also
  // makes the sampled-field accumulation order (and thus its hashes)
  // independent of the lane count.
  bool shard_enable = true;
  int shard_per_lane = 4;                   // shards = lanes * this
  double shard_rebalance_threshold = 1.10;  // predicted max/mean trigger
  int shard_rebalance_interval = 8;         // min steps between repartitions
  double shard_collide_weight = 1.0;        // initial pair-vs-particle blend
  bool shard_adapt = true;                  // adapt the blend from timers

  std::uint64_t seed = 0x5eed5eedULL;

  // --- Derived quantities ---
  double freestream_speed() const {
    return mach * std::sqrt(physics::theory::kGammaDiatomic) * sigma;
  }
  // Diffuse-wall temperature expressed physically, as T_wall / T_inf.  The
  // wall thermal standard deviation scales as sqrt(T), so this is the one
  // place the sigma <-> temperature coupling lives: setting the ratio keeps
  // the wall consistent with whatever `sigma` currently is, instead of
  // leaving `wall_sigma` at its 0.18 default when sigma is overridden.
  double wall_temperature_ratio() const {
    const double r = wall_sigma / sigma;
    return r * r;
  }
  void set_wall_temperature_ratio(double ratio) {
    if (ratio < 0.0)
      throw std::invalid_argument(
          "SimConfig: wall_temperature_ratio must be >= 0");
    wall_sigma = sigma * std::sqrt(ratio);
  }
  double wedge_angle_rad() const {
    return wedge_angle_deg * std::numbers::pi / 180.0;
  }
  bool is3d() const { return nz > 0; }

  void validate() const {
    if (nx <= 0 || ny <= 0 || nz < 0)
      throw std::invalid_argument("SimConfig: bad grid dimensions");
    if (mach <= 0.0) throw std::invalid_argument("SimConfig: mach must be > 0");
    if (sigma <= 0.0)
      throw std::invalid_argument("SimConfig: sigma must be > 0");
    if (lambda_inf < 0.0)
      throw std::invalid_argument("SimConfig: lambda_inf must be >= 0");
    if (particles_per_cell <= 0.0)
      throw std::invalid_argument("SimConfig: particles_per_cell must be > 0");
    if (reservoir_fraction < 0.0)
      throw std::invalid_argument("SimConfig: reservoir_fraction must be >= 0");
    if (axisymmetric) {
      if (nz > 0)
        throw std::invalid_argument(
            "SimConfig: axisymmetric mode is 2D (z-r); it cannot be combined "
            "with the 3D extension (set nz=0)");
      if (has_wedge && !has_body_scene())
        throw std::invalid_argument(
            "SimConfig: axisymmetric mode needs a generalized body (or none); "
            "the legacy wedge path is planar-only (set has_wedge=false or use "
            "body.kind=...)");
    }
    auto check_body = [&](const geom::Body& b) {
      // Axisymmetric bodies straddle the r = 0 axis (the part below it is
      // the revolved mirror image), so only the upper half must fit.
      const double ymin_floor = axisymmetric ? -static_cast<double>(ny) : 0.0;
      if (b.xmin() < 0.0 || b.xmax() >= nx || b.ymin() < ymin_floor ||
          b.ymax() >= ny)
        throw std::invalid_argument("SimConfig: body '" + b.name() +
                                    "' outside the domain");
      // A body floating wholly above the axis would revolve into a torus:
      // the mirror-image assumption and the frontal-area Cd reference both
      // break, so demand the outline reach r = 0 (center it on y = 0).
      if (axisymmetric && b.ymin() > 0.0)
        throw std::invalid_argument(
            "SimConfig: axisymmetric body '" + b.name() +
            "' does not touch the r=0 axis (bodies of revolution must be "
            "centred on y=0; rings/tori are not supported)");
    };
    for (const geom::Body& b : bodies) check_body(b);
    if (body) {
      check_body(*body);
    } else if (bodies.empty() && has_wedge) {
      if (wedge_x0 < 0.0 || wedge_x0 + wedge_base >= nx)
        throw std::invalid_argument("SimConfig: wedge outside the domain");
      if (wedge_angle_deg <= 0.0 || wedge_angle_deg >= 90.0)
        throw std::invalid_argument("SimConfig: wedge angle must be in (0,90)");
      const double h = wedge_base * std::tan(wedge_angle_rad());
      if (h >= ny)
        throw std::invalid_argument("SimConfig: wedge taller than the tunnel");
    }
    if (shard_per_lane < 1 || shard_per_lane > 256)
      throw std::invalid_argument(
          "SimConfig: shard_per_lane must be in [1, 256]");
    if (shard_rebalance_threshold < 1.0)
      throw std::invalid_argument(
          "SimConfig: shard_rebalance_threshold must be >= 1");
    if (shard_rebalance_interval < 1)
      throw std::invalid_argument(
          "SimConfig: shard_rebalance_interval must be >= 1");
    if (shard_collide_weight < 0.0 || shard_collide_weight > 64.0)
      throw std::invalid_argument(
          "SimConfig: shard_collide_weight must be in [0, 64]");
    if (sort_scale < 1 || sort_scale > 256)
      throw std::invalid_argument("SimConfig: sort_scale must be in [1,256]");
    if (transpositions_per_collision < 0 || transpositions_per_collision > 4)
      throw std::invalid_argument(
          "SimConfig: transpositions_per_collision must be in [0, 4]");
    if (plunger_trigger <= 0.0)
      throw std::invalid_argument("SimConfig: plunger_trigger must be > 0");
    if (vibrational &&
        (vib_exchange_prob < 0.0 || vib_exchange_prob > 1.0))
      throw std::invalid_argument(
          "SimConfig: vib_exchange_prob must be in [0, 1]");
    if (vibrational && vib_init_temperature < 0.0)
      throw std::invalid_argument(
          "SimConfig: vib_init_temperature must be >= 0");
    gas.validate();
    // CFL-like sanity: the stream should not cross more than ~2 cells/step
    // or cell-based collision selection breaks down.
    if (freestream_speed() > 2.0)
      throw std::invalid_argument(
          "SimConfig: freestream speed exceeds 2 cells/step; lower sigma");
  }
};

}  // namespace cmdsmc::core
