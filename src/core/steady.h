// Steady-state detection: the paper runs a fixed 1200 steps "to reach
// steady state"; this helper detects convergence adaptively by watching
// windowed means of scalar signals (flow count, total energy, ...).
#pragma once

#include <cstddef>
#include <deque>

namespace cmdsmc::core {

// Declares a signal steady once the relative difference between the means
// of two consecutive windows stays below `tolerance` for `patience`
// consecutive samples.
class SteadyDetector {
 public:
  explicit SteadyDetector(std::size_t window = 50, double tolerance = 0.01,
                          int patience = 3)
      : window_(window), tolerance_(tolerance), patience_(patience) {}

  // Feeds one sample; returns true once steady.
  bool push(double value) {
    history_.push_back(value);
    if (history_.size() > 2 * window_) history_.pop_front();
    if (history_.size() < 2 * window_) return steady_;
    double old_mean = 0.0;
    double new_mean = 0.0;
    for (std::size_t k = 0; k < window_; ++k) {
      old_mean += history_[k];
      new_mean += history_[k + window_];
    }
    old_mean /= static_cast<double>(window_);
    new_mean /= static_cast<double>(window_);
    const double scale =
        std::abs(old_mean) > 1e-300 ? std::abs(old_mean) : 1.0;
    if (std::abs(new_mean - old_mean) / scale < tolerance_) {
      if (++hits_ >= patience_) steady_ = true;
    } else {
      hits_ = 0;
    }
    return steady_;
  }

  bool steady() const { return steady_; }
  void reset() {
    history_.clear();
    hits_ = 0;
    steady_ = false;
  }

 private:
  std::size_t window_;
  double tolerance_;
  int patience_;
  std::deque<double> history_;
  int hits_ = 0;
  bool steady_ = false;
};

}  // namespace cmdsmc::core
