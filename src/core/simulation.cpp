#include "core/simulation.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "cmdp/parallel.h"
#include "cmdp/scan.h"
#include "cmdp/sort.h"
#include "core/reservoir_policy.h"
#include "physics/collision.h"
#include "rng/samplers.h"

#if defined(CMDSMC_AUDIT)
#include "audit/auditor.h"
#endif

namespace cmdsmc::core {

namespace {

// Displacement bounds (cells per axis per step) of the interior fast path.
// The mask is two-level: cells at least kInteriorMaxDisp from every boundary
// admit any particle under that bound (SimConfig::validate() caps the
// freestream at 2 cells/step, so only extreme thermal outliers miss), and
// the ring at least kInteriorDispL1 away still admits the majority of
// particles, which are slower than one cell per step per axis.
constexpr double kInteriorMaxDisp = 2.0;
constexpr double kInteriorDispL1 = 1.0;

// Salts keep the independent random decisions of one (particle, step)
// decorrelated.
enum Salt : std::uint64_t {
  kSaltInit = 1,
  kSaltResInit,
  kSaltBc,
  kSaltRemoveVel,
  kSaltSortKey,
  kSaltAccept,
  kSaltCollide,
  kSaltTranspose,
  kSaltResCell,
  kSaltInject,
  kSaltWeightKeep,
};

SimConfig validated(SimConfig cfg) {
  // A body whose segment walls were never customized inherits the config's
  // global wall model, so migrating a diffuse-wall setup from the wedge
  // fields to cfg.body / cfg.bodies does not silently fall back to specular
  // walls.
  if (cfg.wall != geom::WallModel::kSpecular) {
    if (cfg.body && !cfg.body->any_diffuse())
      cfg.body->set_wall_model(cfg.wall, cfg.wall_sigma);
    for (geom::Body& b : cfg.bodies)
      if (!b.any_diffuse()) b.set_wall_model(cfg.wall, cfg.wall_sigma);
  }
  cfg.validate();
  return cfg;
}

geom::Grid make_grid(const SimConfig& cfg) {
  geom::Grid g{cfg.nx, cfg.ny, cfg.nz};
  g.validate();
  return g;
}

std::optional<geom::Wedge> make_wedge(const SimConfig& cfg) {
  // Any generalized body replaces the wedge-specific path when present.
  if (cfg.has_body_scene() || !cfg.has_wedge) return std::nullopt;
  return geom::Wedge(cfg.wedge_x0, cfg.wedge_base, cfg.wedge_angle_rad());
}

geom::Scene make_scene(const SimConfig& cfg) {
  if (!cfg.has_body_scene()) return geom::Scene{};
  std::vector<geom::Body> bodies;
  bodies.reserve((cfg.body ? 1 : 0) + cfg.bodies.size());
  if (cfg.body) bodies.push_back(*cfg.body);
  for (const geom::Body& b : cfg.bodies) bodies.push_back(b);
  return geom::Scene(std::move(bodies));
}

std::vector<double> make_open_fraction(const geom::Grid& grid,
                                       const std::optional<geom::Wedge>& w,
                                       const geom::Scene& scene) {
  if (!scene.empty()) return scene.open_fraction_table(grid);
  if (!w) return std::vector<double>(static_cast<std::size_t>(grid.ncells()),
                                     1.0);
  return w->open_fraction_table(grid);
}

// Axisymmetric cell volumes: the cell (ix, iy) is the unit-width annulus
// r in [iy, iy+1), volume pi * (2*iy + 1).  The pi is dropped — the radial
// particle weights, the weighted census and the freestream density all use
// the same pi-free units, so it cancels in every ratio.  Empty when planar
// (unit cells).
std::vector<double> make_cell_volume(const SimConfig& cfg,
                                     const geom::Grid& grid) {
  if (!cfg.axisymmetric) return {};
  std::vector<double> vol(static_cast<std::size_t>(grid.ncells()));
  for (int iy = 0; iy < grid.ny; ++iy)
    for (int ix = 0; ix < grid.nx; ++ix)
      vol[grid.index(ix, iy)] = 2.0 * iy + 1.0;
  return vol;
}

}  // namespace

template <class Real>
Simulation<Real>::Simulation(const SimConfig& cfg, cmdp::ThreadPool* pool)
    : cfg_(validated(cfg)),
      pool_(pool != nullptr ? pool : &cmdp::ThreadPool::global()),
      grid_(make_grid(cfg_)),
      wedge_(make_wedge(cfg_)),
      scene_(make_scene(cfg_)),
      open_frac_(make_open_fraction(grid_, wedge_, scene_)),
      cell_volume_(make_cell_volume(cfg_, grid_)),
      rule_(physics::SelectionRule::make(cfg_.gas, cfg_.lambda_inf, cfg_.sigma,
                                         cfg_.particles_per_cell)),
      sampler_(grid_, open_frac_, cfg_.particles_per_cell, cfg_.sigma,
               cell_volume_) {
  seed_round_ = rng::hash4_seed_round(cfg_.seed);
  shard_collide_weight_ = cfg_.shard_collide_weight;
  u_inf_ = cfg_.closed_box ? 0.0 : cfg_.freestream_speed();
  n_inf_ = cfg_.particles_per_cell;
  ncells_ = static_cast<std::uint32_t>(grid_.ncells());
  store_.has_z = cfg_.is3d();
  scratch_.has_z = cfg_.is3d();
  store_.has_vib = cfg_.vibrational;
  scratch_.has_vib = cfg_.vibrational;
  store_.has_weight = cfg_.axisymmetric;
  scratch_.has_weight = cfg_.axisymmetric;
  phase_id_[kPhaseMove] = timers_.phase_id("move+bc");
  phase_id_[kPhaseSort] = timers_.phase_id("sort");
  phase_id_[kPhaseSelect] = timers_.phase_id("select");
  phase_id_[kPhaseCollide] = timers_.phase_id("collide");
  phase_id_[kPhaseSample] = timers_.phase_id("sample");
  if (!scene_.empty())
    surf_ = SurfaceSampler(scene_.total_segments(), pool_->size(),
                           grid_.is3d() ? grid_.nz : 1.0, cfg_.axisymmetric);
  plunger_.speed = u_inf_;
  plunger_.trigger = cfg_.plunger_trigger;
  rebuild_interior_mask();
  init_particles();
}

template <class Real>
void Simulation<Real>::rebuild_interior_mask() {
  // The interior mask is geometry-only and step-invariant: the plunger's
  // whole sweep range (trigger plus one step of advance) counts as
  // boundary, so the mask never has to track the moving face.  It must be
  // re-derived whenever the boundary state changes (construction and
  // checkpoint restore are the only such points today) — a stale mask next
  // to a newly added body would let particles skip enforce_boundaries at
  // its surface.
  geom::BoundaryConfig bc;
  bc.x_max = grid_.nx;
  bc.y_max = grid_.ny;
  bc.z_max = grid_.is3d() ? grid_.nz : 0.0;
  bc.scene = &scene_;
  bc.wedge = wedge_ ? &wedge_.value() : nullptr;
  const bool plunger_active =
      !cfg_.closed_box && cfg_.upstream == geom::UpstreamMode::kPlunger;
  const double reach = plunger_active ? cfg_.plunger_trigger + u_inf_ : 0.0;
  // Combine the per-displacement masks into levels: mask[c] == L means no
  // boundary is reachable from cell c within the level-L displacement
  // bound (0 = boundary-adjacent, slow path only).
  interior_mask_ = geom::interior_cell_mask(grid_, bc, reach, kInteriorDispL1);
  const std::vector<std::uint8_t> far =
      geom::interior_cell_mask(grid_, bc, reach, kInteriorMaxDisp);
  for (std::size_t c = 0; c < interior_mask_.size(); ++c)
    if (far[c]) interior_mask_[c] = 2;
#ifndef NDEBUG
  // Independent re-verification of the mask's promise: from a masked cell,
  // no displacement within the level's bound can reach any scene body — no
  // facet touches the expanded cell box and the box lies outside every
  // solid.  (The body *bounding box* may legitimately overlap a masked
  // cell: the region above a wedge's hypotenuse is inside its bbox but
  // provably clear of the solid.)
  for (int iz = 0; iz < (grid_.is3d() ? grid_.nz : 1); ++iz) {
    for (int iy = 0; iy < grid_.ny; ++iy) {
      for (int ix = 0; ix < grid_.nx; ++ix) {
        const std::uint8_t level = interior_mask_[grid_.index(ix, iy, iz)];
        if (level == 0) continue;
        const double d = level == 2 ? kInteriorMaxDisp : kInteriorDispL1;
        for (int b = 0; b < scene_.body_count(); ++b) {
          const geom::Body& body = scene_.body(b);
          // Cheap bbox pre-filter before the exact facet tests.
          if (ix - d >= body.xmax() || ix + 1 + d <= body.xmin() ||
              iy - d >= body.ymax() || iy + 1 + d <= body.ymin())
            continue;
          for (const geom::BodySegment& s : body.segments()) {
            const bool touches = geom::segment_touches_box(
                s.x0, s.y0, s.x1, s.y1, ix - d, iy - d, ix + 1 + d,
                iy + 1 + d);
            assert(!touches &&
                   "interior mask covers a cell within reach of a facet");
            (void)touches;
          }
          const bool buried = body.inside(ix + 0.5, iy + 0.5);
          assert(!buried && "interior mask covers a cell inside a body");
          (void)buried;
        }
      }
    }
  }
#endif
}

template <class Real>
std::uint32_t Simulation<Real>::reservoir_pair_cell(std::uint64_t i) const {
  return ncells_ +
         static_cast<std::uint32_t>(bits_for(i, kSaltResCell) % res_cells_);
}

template <class Real>
std::uint64_t Simulation<Real>::dirty_state_bits(std::size_t i) const {
  // "An additional advantage ... is the availability of a quick but dirty
  // random number in the low order bits of a physical state quantity."
  const std::uint64_t a = N::raw32(store_.ux[i]);
  const std::uint64_t b = N::raw32(store_.uy[i]);
  const std::uint64_t c = N::raw32(store_.r0[i]);
  const std::uint64_t d = N::raw32(store_.r1[i]);
  return (a << 32) ^ (b << 16) ^ (c << 48) ^ d ^
         (static_cast<std::uint64_t>(step_) << 24);
}

template <class Real>
void Simulation<Real>::init_particles() {
  double open_volume = 0.0;
  for (double f : open_frac_) open_volume += f;
  const auto n_flow =
      static_cast<std::size_t>(std::llround(cfg_.particles_per_cell *
                                            open_volume));
  const auto n_res = static_cast<std::size_t>(
      std::llround(cfg_.reservoir_fraction * static_cast<double>(n_flow)));
  res_cells_ = static_cast<std::uint32_t>(n_res / 64 + 1);
  store_.resize(n_flow + n_res);
  const double nx = grid_.nx;
  const double ny = grid_.ny;
  const double nz = grid_.is3d() ? grid_.nz : 0.0;
  cmdp::parallel_for(*pool_, n_flow, [&](std::size_t i) {
    rng::SplitMix64 g(rng::hash4(cfg_.seed, i, 0, kSaltInit));
    double x;
    double y;
    do {
      x = g.next_double() * nx;
      y = g.next_double() * ny;
    } while ((wedge_ && wedge_->inside(x, y)) || scene_.inside(x, y));
    const double z = grid_.is3d() ? g.next_double() * nz : 0.0;
    store_.x[i] = N::from_double(x);
    store_.y[i] = N::from_double(y);
    if (store_.has_z) store_.z[i] = N::from_double(z);
    store_.ux[i] =
        N::from_double(u_inf_ + cfg_.sigma * rng::sample_gaussian(g));
    store_.uy[i] = N::from_double(cfg_.sigma * rng::sample_gaussian(g));
    store_.uz[i] = N::from_double(cfg_.sigma * rng::sample_gaussian(g));
    store_.r0[i] = N::from_double(cfg_.sigma * rng::sample_gaussian(g));
    store_.r1[i] = N::from_double(cfg_.sigma * rng::sample_gaussian(g));
    if (cfg_.vibrational) {
      const double sv = cfg_.sigma * std::sqrt(cfg_.vib_init_temperature);
      store_.v0[i] = N::from_double(sv * rng::sample_gaussian(g));
      store_.v1[i] = N::from_double(sv * rng::sample_gaussian(g));
    }
    store_.perm[i] = rng::random_perm(g);
    store_.flags[i] = 0;
    store_.id[i] = static_cast<std::uint32_t>(i);
    store_.cell[i] = grid_.index(static_cast<int>(x), static_cast<int>(y),
                                 static_cast<int>(z));
    // Axisymmetric: ~ppc simulators per cell each representing the cell's
    // annular volume of gas, so the weighted census per cell is ppc * vol.
    if (cfg_.axisymmetric) store_.weight[i] = cell_volume_[store_.cell[i]];
  });
  cmdp::parallel_for(*pool_, n_res, [&](std::size_t j) {
    const std::size_t i = n_flow + j;
    const Velocity5 v = rectangular_freestream(
        cfg_.sigma, u_inf_, rng::hash4(cfg_.seed, i, 0, kSaltResInit));
    store_.x[i] = N::from_double(0.0);
    store_.y[i] = N::from_double(0.0);
    if (store_.has_z) store_.z[i] = N::from_double(0.0);
    store_.ux[i] = N::from_double(v.v[0]);
    store_.uy[i] = N::from_double(v.v[1]);
    store_.uz[i] = N::from_double(v.v[2]);
    store_.r0[i] = N::from_double(v.v[3]);
    store_.r1[i] = N::from_double(v.v[4]);
    rng::SplitMix64 g(rng::hash4(cfg_.seed, i, 1, kSaltResInit));
    if (cfg_.vibrational) {
      const double sv = cfg_.sigma * std::sqrt(cfg_.vib_init_temperature);
      store_.v0[i] = N::from_double(rng::sample_rectangular(g, sv));
      store_.v1[i] = N::from_double(rng::sample_rectangular(g, sv));
    }
    store_.perm[i] = rng::random_perm(g);
    store_.flags[i] = ParticleStore<Real>::kReservoirFlag;
    store_.id[i] = static_cast<std::uint32_t>(i);
    store_.cell[i] = reservoir_pair_cell(i);
  });
  res_count_ = n_res;
  res_tail_ = n_res;
}

template <class Real>
void Simulation<Real>::step() {
  const bool observe = observer_ != nullptr && observer_->wants_step(step_);
  if (observe) begin_observed_step();
  // Invariant audit: hooks run between the phase scopes (outside the
  // timers, so audit cost never pollutes the Table A breakdown).  The
  // cadence decision is latched once so a mid-step boundary cannot split
  // the hook sequence.  Compiled out entirely without -DCMDSMC_AUDIT=1.
#if defined(CMDSMC_AUDIT)
  const bool audited = auditor_ != nullptr && auditor_->wants(step_);
  if (audited) auditor_->begin_step(*this);
#endif
  // With per-lane timing on, each phase scope attaches the timers as the
  // pool's lane-time sink; tp stays null (and the scopes cost nothing
  // extra) otherwise.
  cmdp::ThreadPool* const tp = timers_.lanes() > 1 ? pool_ : nullptr;
  {
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseMove], tp);
    phase_move_and_boundaries();
  }
#if defined(CMDSMC_AUDIT)
  if (audited) auditor_->after_move(*this);
#endif
  {
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseSort], tp);
    phase_sort();
  }
#if defined(CMDSMC_AUDIT)
  if (audited) auditor_->after_sort(*this);
#endif
  {
    // Selection and collision are one fused pass (see
    // phase_select_and_collide); the select timer stays registered so the
    // Table A reporting keeps its slot, reading 0 since the fusion.
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseCollide], tp);
    phase_select_and_collide();
  }
#if defined(CMDSMC_AUDIT)
  if (audited) auditor_->after_collide(*this);
#endif
  if (sampling_) {
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseSample], tp);
    phase_sample();
  }
#if defined(CMDSMC_AUDIT)
  if (audited) auditor_->end_step(*this);
#endif
  if (observe) emit_step_stats();
  ++step_;
}

template <class Real>
void Simulation<Real>::set_step_observer(obs::StepObserver* observer) {
  observer_ = observer;
  if (observer_ != nullptr)
    timers_.enable_lane_accumulation(pool_->size());
  else
    timers_.disable_lane_accumulation();
}

template <class Real>
void Simulation<Real>::begin_observed_step() {
  obs_counters0_ = counters_;
  obs_wall0_ = surf_.events_total();
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    obs_phase0_[p] = timers_.seconds(phase_id_[p]);
  obs_lane0_ = timers_.lane_seconds_table();
}

template <class Real>
void Simulation<Real>::emit_step_stats() {
  obs::StepStats& s = obs_stats_;
  s.step = step_;  // the step just executed (step_ advances after the emit)
  s.flow = flow_count();
  s.reservoir = res_count_;
  s.total = store_.size();
  if (cfg_.axisymmetric) {
    // The weighted census fell out of the sort phase's per-cell refresh
    // (O(cells)).
    double w = 0.0;
    for (double cw : cell_weight_) w += cw;
    s.weighted_census = w;
  } else {
    s.weighted_census = static_cast<double>(s.flow);
  }
  // Sharding gauges (zeros while sharding is inactive).
  const ShardStats sh = shard_stats();
  s.shards = sh.shards;
  s.repartitions = sh.repartitions;
  s.cost_imbalance = sh.cost_imbalance;
  s.post_imbalance = sh.post_imbalance;
  s.candidates = counters_.candidates - obs_counters0_.candidates;
  s.collisions = counters_.collisions - obs_counters0_.collisions;
  s.reservoir_collisions =
      counters_.reservoir_collisions - obs_counters0_.reservoir_collisions;
  s.removed = counters_.removed - obs_counters0_.removed;
  s.injected = counters_.injected - obs_counters0_.injected;
  s.synthesized = counters_.synthesized - obs_counters0_.synthesized;
  s.cloned = counters_.cloned - obs_counters0_.cloned;
  s.merged = counters_.merged - obs_counters0_.merged;
  s.wall_events = surf_.events_total() - obs_wall0_;
  s.accept_rate =
      s.candidates > 0
          ? static_cast<double>(s.collisions + s.reservoir_collisions) /
                static_cast<double>(s.candidates)
          : 0.0;
  s.cum_candidates = counters_.candidates;
  s.cum_collisions = counters_.collisions;
  // Audit gauges (the struct is reused across steps, so clear when off).
  s.audit_active = false;
  s.audit_checks = 0;
  s.audit_violations = 0;
#if defined(CMDSMC_AUDIT)
  if (auditor_ != nullptr) {
    s.audit_active = true;
    s.audit_checks = auditor_->counters().total_checks();
    s.audit_violations = auditor_->counters().total_violations();
  }
#endif
  // Occupancy spread over open flow cells, from the sort plan's per-cell
  // counts (still valid: the collide phase reads but never rewrites them).
  std::uint32_t occ_min = 0xffffffffu;
  std::uint32_t occ_max = 0;
  std::uint64_t occ_sum = 0;
  std::uint64_t open_cells = 0;
  for (std::uint32_t c = 0; c < ncells_; ++c) {
    if (open_frac_[c] <= 0.0) continue;  // solid interior cells
    const std::uint32_t cnt = counts_[c];
    occ_min = cnt < occ_min ? cnt : occ_min;
    occ_max = cnt > occ_max ? cnt : occ_max;
    occ_sum += cnt;
    ++open_cells;
  }
  s.occ_min = open_cells != 0 ? occ_min : 0;
  s.occ_max = occ_max;
  s.occ_mean = open_cells != 0
                   ? static_cast<double>(occ_sum) /
                         static_cast<double>(open_cells)
                   : 0.0;
  s.arena_bytes =
      pool_->workspace().bytes() +
      sizeof(std::uint32_t) * (keys_.capacity() + key_counts_.capacity() +
                               order_.capacity() + counts_.capacity() +
                               starts_.capacity());
  // Timing deltas.
  const unsigned lanes = timers_.lanes();
  s.lanes = lanes;
  const std::vector<double>& lane_now = timers_.lane_seconds_table();
  s.lane_seconds.assign(static_cast<std::size_t>(obs::StepStats::kPhases) *
                            lanes,
                        0.0);
  s.step_seconds = 0.0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const double dt = timers_.seconds(phase_id_[p]) - obs_phase0_[p];
    s.phase_seconds[p] = dt;
    s.step_seconds += dt;
    double lane_max = 0.0;
    double lane_sum = 0.0;
    for (unsigned t = 0; t < lanes; ++t) {
      const std::size_t idx = phase_id_[p] * lanes + t;
      const double lt =
          lane_now[idx] - (idx < obs_lane0_.size() ? obs_lane0_[idx] : 0.0);
      s.lane_seconds[p * lanes + t] = lt;
      lane_max = lt > lane_max ? lt : lane_max;
      lane_sum += lt;
    }
    s.imbalance[p] =
        lane_sum > 0.0 ? lane_max * lanes / lane_sum : 0.0;
  }
  observer_->on_step(s);
}

template <class Real>
void Simulation<Real>::run(int nsteps) {
  for (int s = 0; s < nsteps; ++s) step();
}

template <class Real>
typename Simulation<Real>::KeyParams Simulation<Real>::key_params() const {
  KeyParams kp;
  kp.scale = static_cast<std::uint32_t>(cfg_.sort_scale);
  // The default scales are powers of two; the masked form avoids a 64-bit
  // hardware division per particle per step (identical result).
  kp.mask = (kp.scale & (kp.scale - 1)) == 0 ? kp.scale - 1 : 0;
  kp.randomize = cfg_.randomize_sort && kp.scale > 1;
  kp.dirty = cfg_.rng_mode == RngMode::kDirty;
  kp.seed_round = seed_round_;
  kp.step = static_cast<std::uint64_t>(step_);
  return kp;
}

template <class Real>
inline std::uint32_t Simulation<Real>::key_from(const KeyParams& kp,
                                                std::size_t i,
                                                std::uint32_t cell) const {
  std::uint32_t r = 0;
  if (kp.randomize) {
    const std::uint64_t bits =
        kp.dirty ? dirty_state_bits(i)
                 : rng::hash4_seeded(kp.seed_round, i, kp.step, kSaltSortKey);
    r = kp.mask != 0 ? static_cast<std::uint32_t>(bits & kp.mask)
                     : static_cast<std::uint32_t>(bits % kp.scale);
  }
  return cell * kp.scale + r;
}

template <class Real>
std::uint32_t Simulation<Real>::sort_key_for(std::size_t i) const {
  return key_from(key_params(), i, store_.cell[i]);
}

template <class Real>
void Simulation<Real>::phase_move_and_boundaries() {
  const std::size_t n = store_.size();
  keys_.resize(n);
  const bool plunger_active =
      !cfg_.closed_box && cfg_.upstream == geom::UpstreamMode::kPlunger;
  // Advance (and possibly withdraw) the plunger.  Particles this step still
  // reflect off the face the plunger reached before withdrawal; the void is
  // refilled behind the restarted face after the move loop.
  const double void_width = plunger_active ? plunger_.advance() : 0.0;

  geom::BoundaryConfig bc;
  bc.x_max = grid_.nx;
  bc.y_max = grid_.ny;
  bc.z_max = grid_.is3d() ? grid_.nz : 0.0;
  bc.scene = &scene_;
  bc.wedge = wedge_ ? &wedge_.value() : nullptr;
  bc.plunger_x = plunger_.x + void_width;  // pre-withdrawal face position
  bc.plunger_speed = u_inf_;
  bc.plunger_active = plunger_active;
  bc.wall = cfg_.wall;
  bc.wall_sigma = cfg_.wall_sigma;
  bc.closed = cfg_.closed_box;

  const bool need_bc_bits = !scene_.empty()
                                ? scene_.any_diffuse()
                                : cfg_.wall != geom::WallModel::kSpecular;
  const bool record_surface = surface_sampling_ && !scene_.empty();
  // Interior fast path: a particle whose cell is masked and whose per-axis
  // speed stays under the mask's displacement bound provably reaches no
  // boundary, so it skips the double-precision round trip and
  // enforce_boundaries entirely (to_double/from_double round-trips exactly,
  // so the skipped path would have been a no-op bit for bit).
  const std::uint8_t* interior = interior_mask_.data();
  // Indexed by mask level; level 0 yields an empty speed window, so the
  // level check folds into the speed comparison.
  const Real disp_lo[3] = {N::from_double(0.0), N::from_double(-kInteriorDispL1),
                           N::from_double(-kInteriorMaxDisp)};
  const Real disp_hi[3] = {N::from_double(0.0), N::from_double(kInteriorDispL1),
                           N::from_double(kInteriorMaxDisp)};
  // Soft-source runs tally the first-column strip here, during the move,
  // instead of re-scanning every particle afterwards.
  const bool count_strip =
      !cfg_.closed_box && cfg_.upstream == geom::UpstreamMode::kSoftSource;
  const Real one = N::from_double(1.0);
  // Hoisted loop invariants and raw array pointers: byte stores inside the
  // loop (flags, key counts) would otherwise force the compiler to re-load
  // every member and vector data pointer each iteration.
  const bool has_z = store_.has_z;
  const int gnx = grid_.nx;
  const int gny = grid_.ny;
  const std::uint32_t ncells = ncells_;
  Real* const xp = store_.x.data();
  Real* const yp = store_.y.data();
  Real* const zp = has_z ? store_.z.data() : nullptr;
  Real* const uxp = store_.ux.data();
  Real* const uyp = store_.uy.data();
  Real* const uzp = store_.uz.data();
  std::uint32_t* const cellp = store_.cell.data();
  std::uint32_t* const keysp = keys_.data();
  // sort_key_for() with every config load hoisted (identical result).
  const KeyParams kp = key_params();
  auto key_of = [&](std::size_t i, std::uint32_t cell) {
    return key_from(kp, i, cell);
  };
  // Axisymmetric mode: the move advances particles in 3D and rotates them
  // back into the (z-r) plane; the per-level displacement bound guards the
  // radial excursion |dr| <= hypot(uy, uz).
  const bool axi = cfg_.axisymmetric;
  const double* const weightp = axi ? store_.weight.data() : nullptr;
  const double axi_disp[3] = {0.0, kInteriorDispL1, kInteriorMaxDisp};
  // Key histograms ride along with the key writes: one per scatter lane of
  // the upcoming sort, so phase_sort can skip its counting pass entirely.
  const std::uint32_t key_bound = sort_key_bound();
  key_count_lanes_ =
      key_bound <= cmdp::kDirectSortBound ? cmdp::sort_plan_lanes(*pool_, n)
                                          : 0;
  if (key_count_lanes_ != 0)
    key_counts_.resize(static_cast<std::size_t>(key_count_lanes_) * key_bound);
  std::atomic<std::uint64_t> removed{0};
  std::atomic<std::uint64_t> strip{0};
  cmdp::parallel_chunks(*pool_, n, [&](cmdp::Range r, unsigned tid) {
    std::uint32_t* kc = key_count_lanes_ != 0
                            ? key_counts_.data() +
                                  static_cast<std::size_t>(tid) * key_bound
                            : nullptr;
    if (kc != nullptr) std::fill(kc, kc + key_bound, 0u);
    std::uint64_t local_removed = 0;
    std::uint64_t local_strip = 0;
    // Hoisted out of the loop: entries past `count` are never read, so a
    // per-particle reset of the count alone avoids re-zeroing the buffer in
    // this hot path.
    geom::WallEventBuffer wall_events;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      // cell >= ncells_ <=> the reservoir flag is set (the pairing band
      // starts past the real grid), and the cell index is loaded anyway for
      // the interior mask — so the flags byte stays out of this loop.
      const std::uint32_t c0 = cellp[i];
      if (c0 >= ncells) {
        // Reservoir particles do not move; re-deal their pairing pseudo-cell
        // so partners change between steps.
        const std::uint32_t cell = reservoir_pair_cell(i);
        cellp[i] = cell;
        const std::uint32_t key = key_of(i, cell);
        keysp[i] = key;
        if (kc != nullptr) ++kc[key];
        continue;
      }
      const Real vx = uxp[i];
      const Real vy = uyp[i];
      if (axi) {
        // 1) Collisionless motion in 3D off the plane: the particle moves to
        // (y + uy, uz) in the (r, azimuth) cross-section, then the plane is
        // rotated back so y is the new radius and the azimuthal velocity
        // folds into uz.  Double precision throughout — the rotation needs a
        // sqrt either way; Fixed32 rounds once on write-back like the
        // boundary path.
        const double uxd = N::to_double(vx);
        const double uyd = N::to_double(vy);
        const double uzd = N::to_double(uzp[i]);
        const double ry = N::to_double(yp[i]) + uyd;
        const double rz = uzd;
        const double rr = std::sqrt(ry * ry + rz * rz);
        double ur = uyd;
        double ut = uzd;
        if (rr > 0.0) {
          ur = (uyd * ry + uzd * rz) / rr;
          ut = (uzd * ry - uyd * rz) / rr;
        }
        const Real px = xp[i] + vx;
        const double bound = axi_disp[interior[c0]];
        if (uxd > -bound && uxd < bound &&
            uyd * uyd + uzd * uzd < bound * bound) {
          // Interior fast path: |dr| <= hypot(uy, uz) < bound and |dx| <
          // bound, so no boundary is reachable; skip enforce_boundaries.
          xp[i] = px;
          yp[i] = N::from_double(rr);
          uyp[i] = N::from_double(ur);
          uzp[i] = N::from_double(ut);
          const int ix = static_cast<int>(N::to_double(px));
          const int iy = static_cast<int>(rr);
          const auto cell = static_cast<std::uint32_t>(iy * gnx + ix);
          cellp[i] = cell;
          if (count_strip && px < one) ++local_strip;
          const std::uint32_t key = key_of(i, cell);
          keysp[i] = key;
          if (kc != nullptr) ++kc[key];
          continue;
        }
        // 2) Boundary conditions on the rotated state.  The floor at r = 0
        // is unreachable (rr >= 0 by construction); the y_max ceiling is the
        // outer cylindrical wall and the x boundaries work as in planar
        // mode.  Reflections happen in the plane, which is exact for a
        // surface of revolution (its normal has no azimuthal component).
        geom::ParticleState ps;
        ps.x = N::to_double(px);
        ps.y = rr;
        ps.z = 0.0;
        ps.ux = uxd;
        ps.uy = ur;
        ps.uz = ut;
        ps.r0 = N::to_double(store_.r0[i]);
        ps.r1 = N::to_double(store_.r1[i]);
        const std::uint64_t bbits = need_bc_bits ? bits_for(i, kSaltBc) : 0;
        wall_events.count = 0;
        const bool kept = geom::enforce_boundaries(
            ps, bc, bbits, record_surface ? &wall_events : nullptr);
        if (record_surface && wall_events.count > 0)
          surf_.record(tid, wall_events, weightp[i]);
        if (kept) {
          xp[i] = N::from_double(ps.x);
          yp[i] = N::from_double(ps.y);
          uxp[i] = N::from_double(ps.ux);
          uyp[i] = N::from_double(ps.uy);
          uzp[i] = N::from_double(ps.uz);
          store_.r0[i] = N::from_double(ps.r0);
          store_.r1[i] = N::from_double(ps.r1);
          cellp[i] = grid_.index(static_cast<int>(std::floor(ps.x)),
                                 static_cast<int>(std::floor(ps.y)), 0);
          if (count_strip && xp[i] < one) ++local_strip;
        } else {
          const Velocity5 v = rectangular_freestream(
              cfg_.sigma, u_inf_, bits_for(i, kSaltRemoveVel));
          uxp[i] = N::from_double(v.v[0]);
          uyp[i] = N::from_double(v.v[1]);
          uzp[i] = N::from_double(v.v[2]);
          store_.r0[i] = N::from_double(v.v[3]);
          store_.r1[i] = N::from_double(v.v[4]);
          if (cfg_.vibrational) {
            rng::SplitMix64 gv(bits_for(i, kSaltRemoveVel) ^ 0x5151u);
            const double sv =
                cfg_.sigma * std::sqrt(cfg_.vib_init_temperature);
            store_.v0[i] = N::from_double(rng::sample_rectangular(gv, sv));
            store_.v1[i] = N::from_double(rng::sample_rectangular(gv, sv));
          }
          store_.flags[i] |= ParticleStore<Real>::kReservoirFlag;
          cellp[i] = reservoir_pair_cell(i);
          ++local_removed;
        }
        const std::uint32_t key = key_of(i, cellp[i]);
        keysp[i] = key;
        if (kc != nullptr) ++kc[key];
        continue;
      }
      const Real lo = disp_lo[interior[c0]];
      const Real hi = disp_hi[interior[c0]];
      if (vx > lo && vx < hi && vy > lo && vy < hi &&
          (!has_z || (uzp[i] > lo && uzp[i] < hi))) {
        const Real px = xp[i] + vx;
        const Real py = yp[i] + vy;
        xp[i] = px;
        yp[i] = py;
        double pz = 0.0;
        if (has_z) {
          zp[i] += uzp[i];
          pz = N::to_double(zp[i]);
        }
        // Interior guarantees 0 < pos < n{x,y,z}, so the truncating casts
        // equal floor and the clamped grid_.index() is unnecessary.
        const int ix = static_cast<int>(N::to_double(px));
        const int iy = static_cast<int>(N::to_double(py));
        const int iz = static_cast<int>(pz);
        const auto cell = static_cast<std::uint32_t>(
            (static_cast<std::int64_t>(iz) * gny + iy) * gnx + ix);
        cellp[i] = cell;
        if (count_strip && px < one) ++local_strip;
        const std::uint32_t key = key_of(i, cell);
        keysp[i] = key;
        if (kc != nullptr) ++kc[key];
        continue;
      }
      // 1) Collisionless motion.
      xp[i] += vx;
      yp[i] += vy;
      if (has_z) zp[i] += uzp[i];
      // 2) Boundary conditions (double-precision working copy).
      geom::ParticleState ps;
      ps.x = N::to_double(xp[i]);
      ps.y = N::to_double(yp[i]);
      ps.z = has_z ? N::to_double(zp[i]) : 0.0;
      ps.ux = N::to_double(vx);
      ps.uy = N::to_double(vy);
      ps.uz = N::to_double(uzp[i]);
      ps.r0 = N::to_double(store_.r0[i]);
      ps.r1 = N::to_double(store_.r1[i]);
      const std::uint64_t bbits = need_bc_bits ? bits_for(i, kSaltBc) : 0;
      wall_events.count = 0;
      const bool kept = geom::enforce_boundaries(
          ps, bc, bbits, record_surface ? &wall_events : nullptr);
      if (record_surface && wall_events.count > 0)
        surf_.record(tid, wall_events);
      if (kept) {
        xp[i] = N::from_double(ps.x);
        yp[i] = N::from_double(ps.y);
        if (has_z) zp[i] = N::from_double(ps.z);
        uxp[i] = N::from_double(ps.ux);
        uyp[i] = N::from_double(ps.uy);
        uzp[i] = N::from_double(ps.uz);
        store_.r0[i] = N::from_double(ps.r0);
        store_.r1[i] = N::from_double(ps.r1);
        cellp[i] = grid_.index(static_cast<int>(std::floor(ps.x)),
                               static_cast<int>(std::floor(ps.y)),
                               static_cast<int>(std::floor(ps.z)));
        if (count_strip && xp[i] < one) ++local_strip;
      } else {
        // Exited through the downstream sink: park in the reservoir with a
        // rectangular freestream state (paper: reservoir collisions relax it
        // to the correct Gaussian within a few steps).
        const Velocity5 v = rectangular_freestream(
            cfg_.sigma, u_inf_, bits_for(i, kSaltRemoveVel));
        uxp[i] = N::from_double(v.v[0]);
        uyp[i] = N::from_double(v.v[1]);
        uzp[i] = N::from_double(v.v[2]);
        store_.r0[i] = N::from_double(v.v[3]);
        store_.r1[i] = N::from_double(v.v[4]);
        if (cfg_.vibrational) {
          rng::SplitMix64 gv(bits_for(i, kSaltRemoveVel) ^ 0x5151u);
          const double sv =
              cfg_.sigma * std::sqrt(cfg_.vib_init_temperature);
          store_.v0[i] = N::from_double(rng::sample_rectangular(gv, sv));
          store_.v1[i] = N::from_double(rng::sample_rectangular(gv, sv));
        }
        store_.flags[i] |= ParticleStore<Real>::kReservoirFlag;
        cellp[i] = reservoir_pair_cell(i);
        ++local_removed;
      }
      const std::uint32_t key = key_of(i, cellp[i]);
      keysp[i] = key;
      if (kc != nullptr) ++kc[key];
    }
    removed.fetch_add(local_removed, std::memory_order_relaxed);
    strip.fetch_add(local_strip, std::memory_order_relaxed);
  });
  const std::uint64_t nrem = removed.load();
  res_count_ += nrem;
  counters_.removed += nrem;

  // 2b) Upstream particle introduction.
  if (record_surface) surf_.end_step();
  if (cfg_.closed_box) return;
  if (cfg_.upstream == geom::UpstreamMode::kPlunger) {
    // The plunger withdrew at the trigger crossing this step: refill the
    // trigger-wide void *ahead of the restarted face* (the slab
    // [plunger_.x, plunger_.x + width]) at freestream density.  The region
    // [0, plunger_.x) stays empty — the restarted plunger is sweeping it.
    if (void_width > 0.0) inject_void(void_width, plunger_.x);
  } else {
    soft_source_topup(static_cast<std::size_t>(strip.load()));
  }
}

template <class Real>
void Simulation<Real>::inject_void(double width, double x_offset) {
  const double volume = width * grid_.ny * (grid_.is3d() ? grid_.nz : 1);
  const auto need = static_cast<std::size_t>(std::llround(n_inf_ * volume));
  const std::size_t n = store_.size();
  const std::size_t k = need < res_tail_ ? need : res_tail_;
  const double ny = grid_.ny;
  const double nz = grid_.is3d() ? grid_.nz : 0.0;
  const std::size_t key_bound = sort_key_bound();
  // The move loop counted these tail particles under their reservoir keys;
  // retract those counts before the re-key below (and restore after).
  if (key_count_lanes_ != 0) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t i = n - 1 - j;
      --key_counts_[cmdp::lane_of_index(i, n, key_count_lanes_) * key_bound +
                    keys_[i]];
    }
  }
  cmdp::parallel_for(*pool_, k, [&](std::size_t j) {
    const std::size_t i = n - 1 - j;
    rng::SplitMix64 g(bits_for(i, kSaltInject));
    const double x = x_offset + g.next_double() * width;
    const double y = g.next_double() * ny;
    const double z = grid_.is3d() ? g.next_double() * nz : 0.0;
    store_.x[i] = N::from_double(x);
    store_.y[i] = N::from_double(y);
    if (store_.has_z) store_.z[i] = N::from_double(z);
    // Velocity: the particle keeps its relaxed reservoir state.
    store_.flags[i] &= static_cast<std::uint8_t>(
        ~ParticleStore<Real>::kReservoirFlag);
    store_.cell[i] = grid_.index(static_cast<int>(x), static_cast<int>(y),
                                 static_cast<int>(z));
    // Axisymmetric: uniform-in-r placement at the planar count gives a flat
    // simulator census per radial cell; the per-cell annular weight makes
    // the weighted density exactly freestream.
    if (cfg_.axisymmetric)
      store_.weight[i] = cell_volume_[store_.cell[i]];
    // The move loop keyed this particle as a reservoir dweller; re-key it
    // for its new flow cell.
    keys_[i] = sort_key_for(i);
  });
  if (key_count_lanes_ != 0) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t i = n - 1 - j;
      ++key_counts_[cmdp::lane_of_index(i, n, key_count_lanes_) * key_bound +
                    keys_[i]];
    }
  }
  res_tail_ -= k;
  res_count_ -= k;
  counters_.injected += k;
  if (need > k) {
    // Reservoir ran dry: synthesize the remainder directly (costly path the
    // reservoir design exists to avoid; counted for diagnostics).  Growing
    // the array shifts every scatter lane, so the fused key histograms are
    // void — phase_sort falls back to its own counting pass.
    key_count_lanes_ = 0;
    rng::SplitMix64 g(rng::hash4(cfg_.seed, store_.size(),
                                 static_cast<std::uint64_t>(step_),
                                 kSaltInject));
    for (std::size_t j = k; j < need; ++j) {
      const double x = x_offset + g.next_double() * width;
      const double y = g.next_double() * ny;
      const double z = grid_.is3d() ? g.next_double() * nz : 0.0;
      const Velocity5 v =
          gaussian_freestream(cfg_.sigma, u_inf_, g.next_u64());
      store_.push_back(N::from_double(x), N::from_double(y),
                       N::from_double(z), N::from_double(v.v[0]),
                       N::from_double(v.v[1]), N::from_double(v.v[2]),
                       N::from_double(v.v[3]), N::from_double(v.v[4]),
                       rng::random_perm(g), 0);
      store_.cell.back() = grid_.index(static_cast<int>(x),
                                       static_cast<int>(y),
                                       static_cast<int>(z));
      if (cfg_.axisymmetric)
        store_.weight.back() = cell_volume_[store_.cell.back()];
      keys_.push_back(sort_key_for(store_.size() - 1));
    }
    counters_.synthesized += need - k;
    counters_.injected += need - k;
  }
}

template <class Real>
void Simulation<Real>::soft_source_topup(std::size_t strip_count) {
  // Keep the first column strip at freestream density (the paper's
  // "strength of this source has to be controlled to maintain a constant
  // freestream density").  The strip census rode along with the move loop;
  // nothing here touches the particle arrays unless there is a deficit.
  const auto target = static_cast<std::size_t>(std::llround(
      n_inf_ * grid_.ny * (grid_.is3d() ? grid_.nz : 1)));
  const std::size_t count = strip_count;
  if (count < target) {
    const std::size_t deficit = target - count;
    // Reuse inject_void with an explicit particle count by temporarily
    // scaling the width so need == deficit.
    const double volume = grid_.ny * (grid_.is3d() ? grid_.nz : 1);
    const double width = static_cast<double>(deficit) / (n_inf_ * volume);
    inject_void(width > 1.0 ? 1.0 : width, 0.0);
  }
}

template <class Real>
void Simulation<Real>::phase_sort() {
  // Axisymmetric runs rebalance the radial weights first: splits append
  // clones at the tail (the sort places them), merges retire their slot
  // under the reserved past-the-end key so the scatter parks them behind
  // the reservoir band, where they are truncated below.
  const std::size_t dead =
      cfg_.axisymmetric ? balance_weights(/*mark_dead_keys=*/true) : 0;
  const std::size_t n = store_.size();
  // Keys were generated during the move (and fixed up by the injection
  // paths); the sort phase starts straight at the counting pass.
  const auto scale = static_cast<std::uint32_t>(cfg_.sort_scale);
  const std::uint32_t pair_cells = ncells_ + res_cells_;
  const std::uint32_t key_bound = sort_key_bound();
  counts_.resize(pair_cells);
  starts_.resize(pair_cells);
  if (key_bound <= cmdp::kDirectSortBound) {
    const cmdp::SortPlan plan =
        key_count_lanes_ != 0 &&
                key_count_lanes_ == cmdp::sort_plan_lanes(*pool_, n)
            ? cmdp::counting_sort_plan_from_counts(
                  *pool_, key_counts_, key_count_lanes_, n, key_bound)
            : cmdp::counting_sort_plan(*pool_, keys_, key_bound);
    // Fold the sort_scale sub-keys back into per-cell tables: because the
    // key of cell c lies in [c*scale, (c+1)*scale), the per-cell starts and
    // counts drop out of the plan's key-starts table without another pass
    // over the particles.  Read before the scatter: a single-lane plan's
    // cursors alias the key-starts table and apply consumes them.
    const std::uint32_t* ks = plan.key_starts.data();
    cmdp::parallel_for(*pool_, pair_cells, [&](std::size_t c) {
      const std::uint32_t s = ks[c * scale];
      starts_[c] = s;
      counts_[c] = ks[(c + 1) * scale] - s;
    });
    store_.scatter_sorted(*pool_, keys_, plan, scratch_);
  } else {
    // Key space too large for one counting pass (huge 3D grids): two-pass
    // radix producing a permutation, gather-based reorder, then per-cell
    // tables the classic way.
    order_.resize(n);
    cmdp::stable_sort_index(*pool_, keys_, key_bound, order_);
    store_.reorder(*pool_, order_, scratch_);
    if (dead > 0) {
      store_.resize(n - dead);
      keys_.resize(n - dead);
    }
    cmdp::histogram(*pool_, store_.cell, pair_cells, counts_);
    cmdp::exclusive_scan<std::uint32_t>(
        *pool_, counts_, starts_,
        [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);
  }
  if (dead > 0 && key_bound <= cmdp::kDirectSortBound) {
    // Merged-away slots are now a contiguous tail behind the reservoir
    // band; drop them.
    store_.resize(n - dead);
    keys_.resize(n - dead);
  }
  res_tail_ = res_count_;
  key_count_lanes_ = 0;  // consumed
  if (cfg_.axisymmetric) refresh_cell_weight();
  update_shards();
}

template <class Real>
void Simulation<Real>::refresh_cell_weight() {
  cell_weight_.resize(ncells_);
  const double* const wp = store_.weight.data();
  const std::uint32_t* const countsp = counts_.data();
  const std::uint32_t* const startsp = starts_.data();
  cmdp::parallel_for(*pool_, ncells_, [&](std::size_t c) {
    const std::uint32_t s = startsp[c];
    const std::uint32_t e = s + countsp[c];
    double acc = 0.0;
    for (std::uint32_t i = s; i < e; ++i) acc += wp[i];
    cell_weight_[c] = acc;
  });
}

template <class Real>
void Simulation<Real>::update_shards() {
  const unsigned lanes = pool_->size();
  if (!cfg_.shard_enable || lanes <= 1) {
    shard_plan_.clear();
    return;
  }
  // Adapt the pair-vs-particle cost blend from the aggregate phase timers
  // (always collected, unlike the per-lane tables): seconds-per-candidate in
  // the collide phase against seconds-per-particle in move+sort.  The blend
  // only steers where boundaries land — it cannot perturb physics — so the
  // nondeterminism of measured seconds is confined to performance.
  if (cfg_.shard_adapt) {
    adapt_np_ += store_.size();
    if (step_ - adapt_last_step_ >= cfg_.shard_rebalance_interval) {
      const double d_coll =
          timers_.seconds(phase_id_[kPhaseCollide]) - adapt_collide0_;
      const double d_other = timers_.seconds(phase_id_[kPhaseMove]) +
                             timers_.seconds(phase_id_[kPhaseSort]) -
                             adapt_other0_;
      const std::uint64_t d_pairs = counters_.candidates - adapt_pairs0_;
      const std::uint64_t d_np = adapt_np_ - adapt_np0_;
      if (d_pairs > 1000 && d_np > 1000 && d_coll > 1e-5 && d_other > 1e-5) {
        double target = (d_coll / static_cast<double>(d_pairs)) /
                        (d_other / static_cast<double>(d_np));
        target = target < 0.25 ? 0.25 : (target > 16.0 ? 16.0 : target);
        shard_collide_weight_ += 0.5 * (target - shard_collide_weight_);
        adapt_collide0_ += d_coll;
        adapt_other0_ += d_other;
        adapt_pairs0_ = counters_.candidates;
        adapt_np0_ = adapt_np_;
        adapt_last_step_ = step_;
      }
    }
  }
  const std::uint32_t pair_cells = ncells_ + res_cells_;
  shard_cost_.resize(pair_cells);
  const bool res_collide = cfg_.reservoir_collisions;
  const double cw = shard_collide_weight_;
  const std::uint32_t* const countsp = counts_.data();
  cmdp::parallel_for(*pool_, pair_cells, [&](std::size_t c) {
    const double cnt = static_cast<double>(countsp[c]);
    const bool collides = countsp[c] >= 2 && (c < ncells_ || res_collide);
    shard_cost_[c] = cnt + (collides ? cw * (cnt * 0.5) : 0.0);
  });
  const unsigned nshards =
      lanes * static_cast<unsigned>(cfg_.shard_per_lane);
  const bool stale = !shard_plan_.active() || shard_plan_.lanes != lanes ||
                     shard_plan_.bounds.back() != pair_cells;
  if (!stale) {
    shard_cost_imbalance_ = cmdp::shard_plan_imbalance(shard_plan_, shard_cost_);
    if (shard_cost_imbalance_ <= cfg_.shard_rebalance_threshold ||
        step_ - shard_last_step_ < cfg_.shard_rebalance_interval)
      return;
  }
  shard_plan_ = cmdp::build_shard_plan(shard_cost_, nshards, lanes);
  ++shard_repartitions_;
  shard_last_step_ = step_;
  shard_post_imbalance_ = shard_plan_.imbalance;
  shard_cost_imbalance_ = shard_plan_.imbalance;
}

template <class Real>
std::size_t Simulation<Real>::balance_weights(bool mark_dead_keys) {
  const std::size_t n0 = store_.size();
  const std::uint32_t ncells = ncells_;
  const std::uint32_t dead_key = sort_key_bound() - 1;
  std::uint64_t merged_total = 0;
  // Fixed-granularity chunks make the pass deterministic for every lane
  // count: the chunk walk (not the lane count) decides which particles
  // merge, and clone slots come from a per-chunk prefix, so the result is
  // identical whether one lane or thirty-two execute it.  Which particles
  // merge is randomized for free by the randomized sort of the previous
  // step; merge pairing resets at chunk boundaries (a pending light
  // particle simply waits for the next step's pass).
  constexpr std::size_t kChunk = 8192;
  const std::size_t nchunks = (n0 + kChunk - 1) / kChunk;
  // Pass A (read-only, parallel): per-chunk clone counts -> exclusive
  // prefix, so pass B knows every chunk's first clone slot.
  balance_clone_base_.assign(nchunks + 1, 0);
  {
    const double* const wp = store_.weight.data();
    const std::uint32_t* const cellp = store_.cell.data();
    const double* const volp = cell_volume_.data();
    cmdp::parallel_for(*pool_, nchunks, [&](std::size_t ch) {
      const std::size_t b = ch * kChunk;
      const std::size_t e = b + kChunk < n0 ? b + kChunk : n0;
      std::uint32_t clones = 0;
      for (std::size_t i = b; i < e; ++i) {
        const std::uint32_t c = cellp[i];
        if (c >= ncells) continue;
        const double wi = wp[i];
        if (wi >= 2.0 * volp[c]) {
          int k = static_cast<int>(wi / volp[c]);
          if (k > 8) k = 8;  // churn guard against extreme inward jumps
          clones += static_cast<std::uint32_t>(k - 1);
        }
      }
      balance_clone_base_[ch + 1] = clones;
    });
  }
  for (std::size_t ch = 0; ch < nchunks; ++ch)
    balance_clone_base_[ch + 1] += balance_clone_base_[ch];
  const std::size_t total_clones = balance_clone_base_[nchunks];
  if (total_clones > 0) {
    store_.resize(n0 + total_clones);
    if (mark_dead_keys) keys_.resize(n0 + total_clones);
  }
  // Per-lane merge-candidate tables, epoch-tagged by chunk: a slot is live
  // only when its tag matches the chunk being walked, so stale entries from
  // other chunks/steps never pair and the tables are never cleared.
  const unsigned lanes = pool_->size();
  const std::size_t table =
      static_cast<std::size_t>(lanes) * ncells;
  if (balance_pending_.size() != table ||
      balance_epoch_ + nchunks + 1 > 0xffffffffull) {
    balance_pending_.assign(table, 0);
    balance_epoch_ = 0;
  }
  const std::uint64_t epoch0 = balance_epoch_ + 1;
  balance_epoch_ += nchunks;
  // Pass B (parallel over chunks): splits write their chunk's reserved
  // clone slots, merges pair within chunk+cell.  Chunks touch disjoint
  // slots (their own particles + their own clone range), so the pass is
  // race-free and its writes are independent of which lane runs a chunk.
  std::atomic<std::uint64_t> merged_acc{0};
  const KeyParams kp = key_params();
  pool_->parallel([&](unsigned tid) {
    const cmdp::Range cr = cmdp::lane_range(nchunks, tid, lanes);
    std::uint64_t local_merged = 0;
    std::uint64_t* const pend = balance_pending_.data() +
                                static_cast<std::size_t>(tid) * ncells;
    double* const wp = store_.weight.data();
    const std::uint32_t* const cellp = store_.cell.data();
    const double* const volp = cell_volume_.data();
    for (std::size_t ch = cr.begin; ch < cr.end; ++ch) {
      const std::uint64_t tag = (epoch0 + ch) << 32;
      const std::size_t b = ch * kChunk;
      const std::size_t e = b + kChunk < n0 ? b + kChunk : n0;
      std::size_t slot = n0 + balance_clone_base_[ch];
      for (std::size_t i = b; i < e; ++i) {
        const std::uint32_t c = cellp[i];
        if (c >= ncells) continue;  // reservoir: no radial weight
        const double wi = wp[i];
        const double wt = volp[c];
        if (wi >= 2.0 * wt) {
          // Inward migration built up excess weight: split into k equal
          // copies (identical state, weight wi / k) — exact in mass,
          // momentum and energy.
          int k = static_cast<int>(wi / wt);
          if (k > 8) k = 8;
          const double part = wi / k;
          wp[i] = part;
          for (int j = 1; j < k; ++j, ++slot) {
            store_.copy_record(slot, i);
            wp[slot] = part;
            if (mark_dead_keys)
              keys_[slot] = key_from(kp, slot, cellp[slot]);
          }
        } else if (wi < 0.5 * wt) {
          // Outward migration thinned the weight: merge pairs within the
          // cell.  The mass-weighted velocity average conserves mass and
          // momentum exactly; the kinetic energy released by averaging
          // moves into the rotational DOF (collisions relax it back), so
          // total energy is exact too — unlike plain Russian-roulette
          // destruction, which conserves only in expectation.
          std::uint64_t& pending = pend[c];
          if ((pending & 0xffffffff00000000ull) != tag) {
            pending = tag | static_cast<std::uint64_t>(i);
            continue;
          }
          const auto j =
              static_cast<std::size_t>(pending & 0xffffffffull);
          const double wj = wp[j];
          const double ws = wi + wj;
      const double uxi = N::to_double(store_.ux[i]);
      const double uyi = N::to_double(store_.uy[i]);
      const double uzi = N::to_double(store_.uz[i]);
      const double uxj = N::to_double(store_.ux[j]);
      const double uyj = N::to_double(store_.uy[j]);
      const double uzj = N::to_double(store_.uz[j]);
      const double mx = (wi * uxi + wj * uxj) / ws;
      const double my = (wi * uyi + wj * uyj) / ws;
      const double mz = (wi * uzi + wj * uzj) / ws;
      const double dx = uxi - uxj;
      const double dy = uyi - uyj;
      const double dz = uzi - uzj;
      const double de = 0.5 * (wi * wj / ws) * (dx * dx + dy * dy + dz * dz);
      const double r0i = N::to_double(store_.r0[i]);
      const double r1i = N::to_double(store_.r1[i]);
      const double r0j = N::to_double(store_.r0[j]);
      const double r1j = N::to_double(store_.r1[j]);
      const double erot = 0.5 * (wi * (r0i * r0i + r1i * r1i) +
                                 wj * (r0j * r0j + r1j * r1j)) +
                          de;
      const double rs2 = 2.0 * erot / ws;  // target rotational speed^2
      double nr0;
      double nr1;
      const double base = r0j * r0j + r1j * r1j;
      if (base > 0.0) {
        const double s = std::sqrt(rs2 / base);
        nr0 = r0j * s;
        nr1 = r1j * s;
      } else {
        nr0 = std::sqrt(rs2);
        nr1 = 0.0;
      }
      store_.ux[j] = N::from_double(mx);
      store_.uy[j] = N::from_double(my);
      store_.uz[j] = N::from_double(mz);
      store_.r0[j] = N::from_double(nr0);
      store_.r1[j] = N::from_double(nr1);
      if (store_.has_vib) {
        const double v0i = N::to_double(store_.v0[i]);
        const double v1i = N::to_double(store_.v1[i]);
        const double v0j = N::to_double(store_.v0[j]);
        const double v1j = N::to_double(store_.v1[j]);
        const double evib = 0.5 * (wi * (v0i * v0i + v1i * v1i) +
                                   wj * (v0j * v0j + v1j * v1j));
        const double vs2 = 2.0 * evib / ws;
        const double vbase = v0j * v0j + v1j * v1j;
        if (vbase > 0.0) {
          const double s = std::sqrt(vs2 / vbase);
          store_.v0[j] = N::from_double(v0j * s);
          store_.v1[j] = N::from_double(v1j * s);
        } else {
          store_.v0[j] = N::from_double(std::sqrt(vs2));
          store_.v1[j] = N::from_double(0.0);
        }
      }
      wp[j] = ws;
      wp[i] = 0.0;
      if (mark_dead_keys) keys_[i] = dead_key;
      ++local_merged;
      // A still-light merged particle keeps waiting for the next partner
      // (within this chunk).
      pending = ws < 0.5 * wt ? (tag | static_cast<std::uint64_t>(j)) : 0;
        }
      }
    }
    merged_acc.fetch_add(local_merged, std::memory_order_relaxed);
  });
  merged_total = merged_acc.load();
  counters_.cloned += total_clones;
  counters_.merged += merged_total;
  // Appends and re-keys invalidate the fused per-lane key histograms.
  if (total_clones != 0 || merged_total != 0) key_count_lanes_ = 0;
  return merged_total;
}

template <class Real>
void Simulation<Real>::debug_rebalance() {
  if (!cfg_.axisymmetric) return;
  const std::size_t dead = balance_weights(/*mark_dead_keys=*/false);
  if (dead == 0) return;
  // Stable in-place compaction of the merged-away (weight 0) flow slots.
  const std::size_t n = store_.size();
  std::size_t dst = 0;
  for (std::size_t src = 0; src < n; ++src) {
    if (store_.cell[src] < ncells_ && store_.weight[src] == 0.0) continue;
    if (dst != src) store_.copy_record(dst, src);
    ++dst;
  }
  store_.resize(dst);
  // Keep the weighted census coherent for callers that inspect it before
  // the next sort recomputes it from the sorted runs.
  cell_weight_.assign(ncells_, 0.0);
  for (std::size_t i = 0; i < dst; ++i) {
    const std::uint32_t c = store_.cell[i];
    if (c < ncells_) cell_weight_[c] += store_.weight[i];
  }
}

template <class Real>
void Simulation<Real>::phase_select_and_collide() {
  const std::size_t n = store_.size();
  const std::uint32_t pair_cells = ncells_ + res_cells_;
  // counts_/starts_ came from the sort phase's key table — no histogram or
  // scan over the particles here.  Selection and collision are one fused
  // per-cell traversal: candidate pairs are the (s, s+1), (s+2, s+3), ...
  // index pairs of each sorted cell, visited in the same ascending order as
  // the historical per-particle select-then-collide passes.  Pairs are
  // disjoint, so no pair's acceptance test can observe another pair's
  // collision writes and the fusion is bit-identical — while the accept
  // flags never round-trip through memory, the odd members are never
  // visited, and the cell tables load once per cell instead of per
  // particle.
  const bool res_collide = cfg_.reservoir_collisions;
  const bool need_g = rule_.g_exponent != 0.0 && !rule_.near_continuum;
  const bool dirty = cfg_.rng_mode == RngMode::kDirty;
  const bool truncate = cfg_.rounding == Rounding::kTruncate;
  const int ntrans = cfg_.transpositions_per_collision;
  const bool vibrational = cfg_.vibrational;
  const double vib_prob = cfg_.vib_exchange_prob;
  // Raw pointers: stores through them cannot be assumed by the compiler to
  // alias the vector control blocks, so the hot loop keeps them in registers.
  Real* const uxp = store_.ux.data();
  Real* const uyp = store_.uy.data();
  Real* const uzp = store_.uz.data();
  Real* const r0p = store_.r0.data();
  Real* const r1p = store_.r1.data();
  Real* const v0p = vibrational ? store_.v0.data() : nullptr;
  Real* const v1p = vibrational ? store_.v1.data() : nullptr;
  rng::PackedPerm* const permp = store_.perm.data();
  const std::uint32_t* const countsp = counts_.data();
  const std::uint32_t* const startsp = starts_.data();
  const double* const openp = open_frac_.data();
  // Axisymmetric: the collision density is the weighted census over the
  // annular cell volume (both in the same pi-free units, so it reduces to
  // the planar count/open when every weight sits at the cell target).
  const double* const cellwp =
      cfg_.axisymmetric ? cell_weight_.data() : nullptr;
  const double* const volp = cfg_.axisymmetric ? cell_volume_.data() : nullptr;
  // Unequal-weight pairs use Boyd's species-weighting rule: the lighter
  // particle always takes its post-collision state, the heavier keeps its
  // old state with probability 1 - w_min/w_max.  Without this, collisions
  // systematically hand the outward-biased velocities of light (outward-
  // migrated) particles to heavy partners — a spurious radial mass flux
  // that visibly drains the axis.  Conserves weighted momentum and energy
  // in expectation (exact conservation is restored cell-wise by the
  // split/merge balancing).
  const double* const axiw = cfg_.axisymmetric ? store_.weight.data() : nullptr;
  std::atomic<std::uint64_t> candidates{0};
  std::atomic<std::uint64_t> collided{0};
  std::atomic<std::uint64_t> res_collided{0};
  auto run_cells = [&](std::size_t cbegin, std::size_t cend) {
    std::uint64_t local_cand = 0;
    std::uint64_t local_coll = 0;
    std::uint64_t local_res = 0;
    for (std::size_t c = cbegin; c < cend; ++c) {
      const std::uint32_t cnt = countsp[c];
      if (cnt < 2) continue;
      const std::uint32_t s = startsp[c];
      // Flow cells hold only flow particles and pseudo-cells only reservoir
      // ones, so the cell index replaces the per-particle flag check.
      const bool is_res = c >= ncells_;
      local_cand += cnt / 2;
      double p_cell = 1.0;
      double n_local = 0.0;  // cell density, used by the relative-speed rule
      if (is_res) {
        // Reservoir pseudo-cells: unconditional collisions drive the
        // relaxation to a Maxwellian.
        if (!res_collide) continue;
      } else {
        const double open = openp[c] > 0.05 ? openp[c] : 0.05;
        n_local = cellwp != nullptr
                      ? cellwp[c] / (open * volp[c])
                      : static_cast<double>(cnt) / open;
        if (!need_g) {
          p_cell = rule_.probability(n_local, 0.0);
          if (p_cell <= 0.0) continue;
        }
      }
      for (std::uint32_t k = 0; k + 1 < cnt; k += 2) {
        const std::size_t i = s + k;
        double p = p_cell;
        if (need_g && !is_res) {
          const double dx = N::to_double(uxp[i]) - N::to_double(uxp[i + 1]);
          const double dy = N::to_double(uyp[i]) - N::to_double(uyp[i + 1]);
          const double dz = N::to_double(uzp[i]) - N::to_double(uzp[i + 1]);
          const double g = std::sqrt(dx * dx + dy * dy + dz * dz);
          p = rule_.probability(n_local, g);
        }
        if (p < 1.0) {
          if (p <= 0.0) continue;
          const double u = rng::u64_to_unit_double(bits_for(i, kSaltAccept));
          if (u >= p) continue;
        }
        const std::uint64_t bits =
            dirty ? dirty_state_bits(i) ^ rng::mix64(i)
                  : bits_for(i, kSaltCollide);
        // Vibrational extension: with probability vib_exchange_prob this
        // collision exchanges with the two vibrational DOF instead of the
        // rotational pair (relaxation number Z_v = 1/prob).
        const bool use_vib =
            vibrational &&
            static_cast<double>(bits >> 48) * 0x1.0p-16 < vib_prob;
        Real* const s0 = use_vib ? v0p : r0p;
        Real* const s1 = use_vib ? v1p : r1p;
        physics::Pair5<Real> pv;
        pv.a[0] = uxp[i];
        pv.a[1] = uyp[i];
        pv.a[2] = uzp[i];
        pv.a[3] = s0[i];
        pv.a[4] = s1[i];
        pv.b[0] = uxp[i + 1];
        pv.b[1] = uyp[i + 1];
        pv.b[2] = uzp[i + 1];
        pv.b[3] = s0[i + 1];
        pv.b[4] = s1[i + 1];
        // Either of the pair's permutation vectors works (paper); use the
        // leader's.
        const rng::PackedPerm perm = permp[i];
        if (truncate)
          physics::collide_pair_truncating(pv, perm, bits);
        else
          physics::collide_pair(pv, perm, bits);
        bool write_a = true;
        bool write_b = true;
        if (axiw != nullptr && !is_res) {
          const double wa = axiw[i];
          const double wb = axiw[i + 1];
          if (wa != wb) {
            const double ratio = wa < wb ? wa / wb : wb / wa;
            const double u =
                rng::u64_to_unit_double(bits_for(i, kSaltWeightKeep));
            if (u >= ratio) {
              if (wa < wb)
                write_b = false;
              else
                write_a = false;
            }
          }
        }
        if (write_a) {
          uxp[i] = pv.a[0];
          uyp[i] = pv.a[1];
          uzp[i] = pv.a[2];
          s0[i] = pv.a[3];
          s1[i] = pv.a[4];
        }
        if (write_b) {
          uxp[i + 1] = pv.b[0];
          uyp[i + 1] = pv.b[1];
          uzp[i + 1] = pv.b[2];
          s0[i + 1] = pv.b[3];
          s1[i + 1] = pv.b[4];
        }
        // Refresh both permutation vectors by random transpositions.
        if (ntrans > 0) {
          std::uint64_t ta = dirty ? dirty_state_bits(i)
                                   : bits_for(i, kSaltTranspose);
          std::uint64_t tb = dirty ? dirty_state_bits(i + 1)
                                   : bits_for(i + 1, kSaltTranspose);
          for (int t = 0; t < ntrans; ++t) {
            permp[i] = rng::random_transposition(permp[i], ta);
            permp[i + 1] = rng::random_transposition(permp[i + 1], tb);
            ta >>= 16;
            tb >>= 16;
          }
        }
        if (is_res)
          ++local_res;
        else
          ++local_coll;
      }
    }
    candidates.fetch_add(local_cand, std::memory_order_relaxed);
    collided.fetch_add(local_coll, std::memory_order_relaxed);
    res_collided.fetch_add(local_res, std::memory_order_relaxed);
  };
  if (pool_->size() == 1 || n < cmdp::kSerialCutoff) {
    run_cells(0, pair_cells);
  } else if (shard_plan_.active() && shard_plan_.lanes == pool_->size()) {
    // Cell-block shards: each lane walks the contiguous cell blocks the
    // cost partitioner assigned to it.  Per-cell work is disjoint and every
    // RNG stream is keyed by particle index and step, so the assignment
    // (and any repartition) is bit-identical to the static split below.
    cmdp::parallel_shards(*pool_, shard_plan_,
                          [&](std::uint32_t cbegin, std::uint32_t cend,
                              unsigned) { run_cells(cbegin, cend); });
  } else {
    // Static fallback (shard.enable=0): particle-balanced cell partition —
    // lane t owns the cells whose first particle lies in its equal share of
    // [0, n).
    const unsigned lanes = pool_->size();
    pool_->parallel([&](unsigned tid) {
      const cmdp::Range pr = cmdp::lane_range(n, tid, lanes);
      const auto lo = std::lower_bound(starts_.begin(), starts_.end(),
                                       static_cast<std::uint32_t>(pr.begin));
      const auto hi = std::lower_bound(starts_.begin(), starts_.end(),
                                       static_cast<std::uint32_t>(pr.end));
      run_cells(static_cast<std::size_t>(lo - starts_.begin()),
                static_cast<std::size_t>(hi - starts_.begin()));
    });
  }
  counters_.candidates += candidates.load();
  counters_.collisions += collided.load();
  counters_.reservoir_collisions += res_collided.load();
}

template <class Real>
void Simulation<Real>::phase_sample() {
  // Sharded runs accumulate per cell over the sorted runs (bit-identical
  // for every lane count); shard.enable=0 keeps the historical lane-major
  // reduction, whose summation order is pinned to the lane count.
  if (cfg_.shard_enable)
    sampler_.accumulate_sorted(
        *pool_, store_, counts_.data(), starts_.data(), shard_plan_,
        cfg_.axisymmetric ? store_.weight.data() : nullptr);
  else
    sampler_.accumulate(*pool_, store_, flow_count(),
                        cfg_.axisymmetric ? store_.weight.data() : nullptr);
}

template <class Real>
SurfaceStats Simulation<Real>::surface() const {
  if (scene_.empty()) return SurfaceStats{};
  // u_inf_ is the actual stream speed (0 in closed-box runs, where the raw
  // p/tau/q fluxes stay meaningful but the coefficients are reported as 0).
  return surf_.finalize(scene_, n_inf_, cfg_.sigma, u_inf_);
}

template <class Real>
std::vector<SurfaceStats> Simulation<Real>::surface_per_body() const {
  if (scene_.empty()) return {};
  return surf_.finalize_per_body(scene_, n_inf_, cfg_.sigma, u_inf_);
}

template <class Real>
std::uint64_t Simulation<Real>::geometry_hash() const {
  std::uint64_t h = 1469598103934665603ull;
  h = geom::fnv1a_hash(h, static_cast<std::uint64_t>(grid_.nx));
  h = geom::fnv1a_hash(h, static_cast<std::uint64_t>(grid_.ny));
  h = geom::fnv1a_hash(h, static_cast<std::uint64_t>(grid_.nz));
  h = geom::fnv1a_hash(h, scene_.geometry_hash());
  h = geom::fnv1a_hash(h, wedge_ ? 1u : 0u);
  if (wedge_) {
    h = geom::fnv1a_hash(h, std::bit_cast<std::uint64_t>(cfg_.wedge_x0));
    h = geom::fnv1a_hash(h, std::bit_cast<std::uint64_t>(cfg_.wedge_base));
    h = geom::fnv1a_hash(h, std::bit_cast<std::uint64_t>(cfg_.wedge_angle_deg));
  }
  h = geom::fnv1a_hash(h, cfg_.closed_box ? 1u : 0u);
  h = geom::fnv1a_hash(h, static_cast<std::uint64_t>(cfg_.upstream));
  h = geom::fnv1a_hash(h, std::bit_cast<std::uint64_t>(cfg_.plunger_trigger));
  h = geom::fnv1a_hash(h, cfg_.vibrational ? 1u : 0u);
  // Folded in only when set so every pre-existing planar hash is unchanged.
  if (cfg_.axisymmetric) h = geom::fnv1a_hash(h, 0xA715FEEDull);
  return h;
}

template <class Real>
typename Simulation<Real>::ResumeState Simulation<Real>::resume_state()
    const {
  ResumeState st;
  st.step = step_;
  st.plunger_x = plunger_.x;
  st.res_count = res_count_;
  st.res_tail = res_tail_;
  st.counters = counters_;
  st.field_samples = sampler_.samples();
  st.field_sums = sampler_.accumulated();
  st.surface_samples = surf_.samples();
  st.surface_sums = surf_.accumulated();
  return st;
}

template <class Real>
void Simulation<Real>::restore(ParticleStore<Real> store,
                               const ResumeState& state) {
  if (store.has_z != cfg_.is3d() || store.has_vib != cfg_.vibrational ||
      store.has_weight != cfg_.axisymmetric)
    throw std::invalid_argument(
        "Simulation::restore: store layout does not match the configuration");
  if (state.res_count > store.size() || state.res_tail > state.res_count)
    throw std::invalid_argument(
        "Simulation::restore: inconsistent reservoir bookkeeping");
  // Validate every accumulator shape before mutating anything, so a throw
  // leaves the simulation untouched instead of half-restored.
  if (state.field_samples < 0 ||
      state.field_sums.size() != sampler_.accumulated().size() ||
      state.surface_samples < 0 ||
      state.surface_sums.size() != surf_.accumulated().size())
    throw std::invalid_argument(
        "Simulation::restore: sampler accumulator shape mismatch");
  sampler_.restore(state.field_samples, state.field_sums);
  surf_.restore(state.surface_samples, state.surface_sums);
  store_ = std::move(store);
  step_ = state.step;
  plunger_.x = state.plunger_x;
  res_count_ = static_cast<std::size_t>(state.res_count);
  res_tail_ = static_cast<std::size_t>(state.res_tail);
  counters_ = state.counters;
  key_count_lanes_ = 0;  // transient per-step state; regenerate
  // The shard plan is transient too: the first post-restore sort rebuilds
  // it from fresh counts (the assignment carries no physics, so a restore
  // across a different shard/lane configuration reproduces the same bits).
  shard_plan_.clear();
  shard_last_step_ = -1;
  adapt_last_step_ = -1;
  shard_cost_imbalance_ = 0.0;
  shard_post_imbalance_ = 0.0;
  rebuild_interior_mask();
}

template <class Real>
double Simulation<Real>::total_energy() const {
  return cmdp::parallel_sum<double>(*pool_, store_.size(), [&](std::size_t i) {
    const double vx = N::to_double(store_.ux[i]);
    const double vy = N::to_double(store_.uy[i]);
    const double vz = N::to_double(store_.uz[i]);
    const double w0 = N::to_double(store_.r0[i]);
    const double w1 = N::to_double(store_.r1[i]);
    double e = 0.5 * (vx * vx + vy * vy + vz * vz + w0 * w0 + w1 * w1);
    if (store_.has_vib) {
      const double q0 = N::to_double(store_.v0[i]);
      const double q1 = N::to_double(store_.v1[i]);
      e += 0.5 * (q0 * q0 + q1 * q1);
    }
    return e;
  });
}

template <class Real>
double Simulation<Real>::flow_energy() const {
  return cmdp::parallel_sum<double>(*pool_, store_.size(), [&](std::size_t i) {
    if (store_.flags[i] & ParticleStore<Real>::kReservoirFlag) return 0.0;
    const double vx = N::to_double(store_.ux[i]);
    const double vy = N::to_double(store_.uy[i]);
    const double vz = N::to_double(store_.uz[i]);
    const double w0 = N::to_double(store_.r0[i]);
    const double w1 = N::to_double(store_.r1[i]);
    return 0.5 * (vx * vx + vy * vy + vz * vz + w0 * w0 + w1 * w1);
  });
}

template <class Real>
double Simulation<Real>::flow_weighted_mass() const {
  const bool wts = store_.has_weight;
  return cmdp::parallel_sum<double>(*pool_, store_.size(), [&](std::size_t i) {
    if (store_.flags[i] & ParticleStore<Real>::kReservoirFlag) return 0.0;
    return wts ? store_.weight[i] : 1.0;
  });
}

template <class Real>
std::array<double, 3> Simulation<Real>::flow_weighted_momentum() const {
  using A = std::array<double, 3>;
  const bool wts = store_.has_weight;
  return cmdp::parallel_reduce<A>(
      *pool_, store_.size(), A{0.0, 0.0, 0.0},
      [&](std::size_t i) {
        if (store_.flags[i] & ParticleStore<Real>::kReservoirFlag)
          return A{0.0, 0.0, 0.0};
        const double w = wts ? store_.weight[i] : 1.0;
        return A{w * N::to_double(store_.ux[i]),
                 w * N::to_double(store_.uy[i]),
                 w * N::to_double(store_.uz[i])};
      },
      [](const A& a, const A& b) {
        return A{a[0] + b[0], a[1] + b[1], a[2] + b[2]};
      });
}

template <class Real>
double Simulation<Real>::flow_weighted_energy() const {
  const bool wts = store_.has_weight;
  return cmdp::parallel_sum<double>(*pool_, store_.size(), [&](std::size_t i) {
    if (store_.flags[i] & ParticleStore<Real>::kReservoirFlag) return 0.0;
    const double vx = N::to_double(store_.ux[i]);
    const double vy = N::to_double(store_.uy[i]);
    const double vz = N::to_double(store_.uz[i]);
    const double w0 = N::to_double(store_.r0[i]);
    const double w1 = N::to_double(store_.r1[i]);
    double e = 0.5 * (vx * vx + vy * vy + vz * vz + w0 * w0 + w1 * w1);
    if (store_.has_vib) {
      const double q0 = N::to_double(store_.v0[i]);
      const double q1 = N::to_double(store_.v1[i]);
      e += 0.5 * (q0 * q0 + q1 * q1);
    }
    return (wts ? store_.weight[i] : 1.0) * e;
  });
}

template <class Real>
std::array<double, 3> Simulation<Real>::total_momentum() const {
  // One fused pass; component-wise the summation order matches the old
  // three-pass version exactly, so the result is bit-identical.
  using A = std::array<double, 3>;
  return cmdp::parallel_reduce<A>(
      *pool_, store_.size(), A{0.0, 0.0, 0.0},
      [&](std::size_t i) {
        return A{N::to_double(store_.ux[i]), N::to_double(store_.uy[i]),
                 N::to_double(store_.uz[i])};
      },
      [](const A& a, const A& b) {
        return A{a[0] + b[0], a[1] + b[1], a[2] + b[2]};
      });
}

template class Simulation<double>;
template class Simulation<fixedpoint::Fixed32>;

}  // namespace cmdsmc::core
