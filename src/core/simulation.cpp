#include "core/simulation.h"

#include <atomic>
#include <cmath>

#include "cmdp/parallel.h"
#include "cmdp/scan.h"
#include "cmdp/sort.h"
#include "core/reservoir_policy.h"
#include "physics/collision.h"
#include "rng/samplers.h"

namespace cmdsmc::core {

namespace {

// Salts keep the independent random decisions of one (particle, step)
// decorrelated.
enum Salt : std::uint64_t {
  kSaltInit = 1,
  kSaltResInit,
  kSaltBc,
  kSaltRemoveVel,
  kSaltSortKey,
  kSaltAccept,
  kSaltCollide,
  kSaltTranspose,
  kSaltResCell,
  kSaltInject,
};

SimConfig validated(SimConfig cfg) {
  // A body whose segment walls were never customized inherits the config's
  // global wall model, so migrating a diffuse-wall setup from the wedge
  // fields to cfg.body does not silently fall back to specular walls.
  if (cfg.body && cfg.wall != geom::WallModel::kSpecular &&
      !cfg.body->any_diffuse())
    cfg.body->set_wall_model(cfg.wall, cfg.wall_sigma);
  cfg.validate();
  return cfg;
}

geom::Grid make_grid(const SimConfig& cfg) {
  geom::Grid g{cfg.nx, cfg.ny, cfg.nz};
  g.validate();
  return g;
}

std::optional<geom::Wedge> make_wedge(const SimConfig& cfg) {
  // The generalized body replaces the wedge-specific path when present.
  if (cfg.body || !cfg.has_wedge) return std::nullopt;
  return geom::Wedge(cfg.wedge_x0, cfg.wedge_base, cfg.wedge_angle_rad());
}

std::vector<double> make_open_fraction(const geom::Grid& grid,
                                       const std::optional<geom::Wedge>& w,
                                       const std::optional<geom::Body>& b) {
  if (b) return b->open_fraction_table(grid);
  if (!w) return std::vector<double>(static_cast<std::size_t>(grid.ncells()),
                                     1.0);
  return w->open_fraction_table(grid);
}

}  // namespace

template <class Real>
Simulation<Real>::Simulation(const SimConfig& cfg, cmdp::ThreadPool* pool)
    : cfg_(validated(cfg)),
      pool_(pool != nullptr ? pool : &cmdp::ThreadPool::global()),
      grid_(make_grid(cfg_)),
      wedge_(make_wedge(cfg_)),
      open_frac_(make_open_fraction(grid_, wedge_, cfg_.body)),
      rule_(physics::SelectionRule::make(cfg_.gas, cfg_.lambda_inf, cfg_.sigma,
                                         cfg_.particles_per_cell)),
      sampler_(grid_, open_frac_, cfg_.particles_per_cell, cfg_.sigma) {
  u_inf_ = cfg_.closed_box ? 0.0 : cfg_.freestream_speed();
  n_inf_ = cfg_.particles_per_cell;
  ncells_ = static_cast<std::uint32_t>(grid_.ncells());
  store_.has_z = cfg_.is3d();
  scratch_.has_z = cfg_.is3d();
  store_.has_vib = cfg_.vibrational;
  scratch_.has_vib = cfg_.vibrational;
  phase_id_[kPhaseMove] = timers_.phase_id("move+bc");
  phase_id_[kPhaseSort] = timers_.phase_id("sort");
  phase_id_[kPhaseSelect] = timers_.phase_id("select");
  phase_id_[kPhaseCollide] = timers_.phase_id("collide");
  phase_id_[kPhaseSample] = timers_.phase_id("sample");
  if (cfg_.body)
    surf_ = SurfaceSampler(cfg_.body->segment_count(), pool_->size(),
                           grid_.is3d() ? grid_.nz : 1.0);
  plunger_.speed = u_inf_;
  plunger_.trigger = cfg_.plunger_trigger;
  init_particles();
}

template <class Real>
std::uint32_t Simulation<Real>::reservoir_pair_cell(std::uint64_t i) const {
  return ncells_ + static_cast<std::uint32_t>(
                       rng::hash4(cfg_.seed, i,
                                  static_cast<std::uint64_t>(step_),
                                  kSaltResCell) %
                       res_cells_);
}

template <class Real>
std::uint64_t Simulation<Real>::dirty_state_bits(std::size_t i) const {
  // "An additional advantage ... is the availability of a quick but dirty
  // random number in the low order bits of a physical state quantity."
  const std::uint64_t a = N::raw32(store_.ux[i]);
  const std::uint64_t b = N::raw32(store_.uy[i]);
  const std::uint64_t c = N::raw32(store_.r0[i]);
  const std::uint64_t d = N::raw32(store_.r1[i]);
  return (a << 32) ^ (b << 16) ^ (c << 48) ^ d ^
         (static_cast<std::uint64_t>(step_) << 24);
}

template <class Real>
void Simulation<Real>::init_particles() {
  double open_volume = 0.0;
  for (double f : open_frac_) open_volume += f;
  const auto n_flow =
      static_cast<std::size_t>(std::llround(cfg_.particles_per_cell *
                                            open_volume));
  const auto n_res = static_cast<std::size_t>(
      std::llround(cfg_.reservoir_fraction * static_cast<double>(n_flow)));
  res_cells_ = static_cast<std::uint32_t>(n_res / 64 + 1);
  store_.resize(n_flow + n_res);
  const double nx = grid_.nx;
  const double ny = grid_.ny;
  const double nz = grid_.is3d() ? grid_.nz : 0.0;
  cmdp::parallel_for(*pool_, n_flow, [&](std::size_t i) {
    rng::SplitMix64 g(rng::hash4(cfg_.seed, i, 0, kSaltInit));
    double x;
    double y;
    do {
      x = g.next_double() * nx;
      y = g.next_double() * ny;
    } while ((wedge_ && wedge_->inside(x, y)) ||
             (cfg_.body && cfg_.body->inside(x, y)));
    const double z = grid_.is3d() ? g.next_double() * nz : 0.0;
    store_.x[i] = N::from_double(x);
    store_.y[i] = N::from_double(y);
    if (store_.has_z) store_.z[i] = N::from_double(z);
    store_.ux[i] =
        N::from_double(u_inf_ + cfg_.sigma * rng::sample_gaussian(g));
    store_.uy[i] = N::from_double(cfg_.sigma * rng::sample_gaussian(g));
    store_.uz[i] = N::from_double(cfg_.sigma * rng::sample_gaussian(g));
    store_.r0[i] = N::from_double(cfg_.sigma * rng::sample_gaussian(g));
    store_.r1[i] = N::from_double(cfg_.sigma * rng::sample_gaussian(g));
    if (cfg_.vibrational) {
      const double sv = cfg_.sigma * std::sqrt(cfg_.vib_init_temperature);
      store_.v0[i] = N::from_double(sv * rng::sample_gaussian(g));
      store_.v1[i] = N::from_double(sv * rng::sample_gaussian(g));
    }
    store_.perm[i] = rng::random_perm(g);
    store_.flags[i] = 0;
    store_.id[i] = static_cast<std::uint32_t>(i);
    store_.cell[i] = grid_.index(static_cast<int>(x), static_cast<int>(y),
                                 static_cast<int>(z));
  });
  cmdp::parallel_for(*pool_, n_res, [&](std::size_t j) {
    const std::size_t i = n_flow + j;
    const Velocity5 v = rectangular_freestream(
        cfg_.sigma, u_inf_, rng::hash4(cfg_.seed, i, 0, kSaltResInit));
    store_.x[i] = N::from_double(0.0);
    store_.y[i] = N::from_double(0.0);
    if (store_.has_z) store_.z[i] = N::from_double(0.0);
    store_.ux[i] = N::from_double(v.v[0]);
    store_.uy[i] = N::from_double(v.v[1]);
    store_.uz[i] = N::from_double(v.v[2]);
    store_.r0[i] = N::from_double(v.v[3]);
    store_.r1[i] = N::from_double(v.v[4]);
    rng::SplitMix64 g(rng::hash4(cfg_.seed, i, 1, kSaltResInit));
    if (cfg_.vibrational) {
      const double sv = cfg_.sigma * std::sqrt(cfg_.vib_init_temperature);
      store_.v0[i] = N::from_double(rng::sample_rectangular(g, sv));
      store_.v1[i] = N::from_double(rng::sample_rectangular(g, sv));
    }
    store_.perm[i] = rng::random_perm(g);
    store_.flags[i] = ParticleStore<Real>::kReservoirFlag;
    store_.id[i] = static_cast<std::uint32_t>(i);
    store_.cell[i] = reservoir_pair_cell(i);
  });
  res_count_ = n_res;
  res_tail_ = n_res;
}

template <class Real>
void Simulation<Real>::step() {
  {
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseMove]);
    phase_move_and_boundaries();
  }
  {
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseSort]);
    phase_sort();
  }
  {
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseSelect]);
    phase_select();
  }
  {
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseCollide]);
    phase_collide();
  }
  if (sampling_) {
    cmdp::PhaseTimers::Scope t(timers_, phase_id_[kPhaseSample]);
    phase_sample();
  }
  ++step_;
}

template <class Real>
void Simulation<Real>::run(int nsteps) {
  for (int s = 0; s < nsteps; ++s) step();
}

template <class Real>
void Simulation<Real>::phase_move_and_boundaries() {
  const std::size_t n = store_.size();
  const bool plunger_active =
      !cfg_.closed_box && cfg_.upstream == geom::UpstreamMode::kPlunger;
  // Advance (and possibly withdraw) the plunger.  Particles this step still
  // reflect off the face the plunger reached before withdrawal; the void is
  // refilled behind the restarted face after the move loop.
  const double void_width = plunger_active ? plunger_.advance() : 0.0;

  geom::BoundaryConfig bc;
  bc.x_max = grid_.nx;
  bc.y_max = grid_.ny;
  bc.z_max = grid_.is3d() ? grid_.nz : 0.0;
  bc.body = cfg_.body ? &cfg_.body.value() : nullptr;
  bc.wedge = wedge_ ? &wedge_.value() : nullptr;
  bc.plunger_x = plunger_.x + void_width;  // pre-withdrawal face position
  bc.plunger_speed = u_inf_;
  bc.plunger_active = plunger_active;
  bc.wall = cfg_.wall;
  bc.wall_sigma = cfg_.wall_sigma;
  bc.closed = cfg_.closed_box;

  const bool need_bc_bits = cfg_.body
                                ? cfg_.body->any_diffuse()
                                : cfg_.wall != geom::WallModel::kSpecular;
  const bool record_surface = surface_sampling_ && cfg_.body.has_value();
  std::atomic<std::uint64_t> removed{0};
  cmdp::parallel_chunks(*pool_, n, [&](cmdp::Range r, unsigned tid) {
    std::uint64_t local_removed = 0;
    // Hoisted out of the loop: entries past `count` are never read, so a
    // per-particle reset of the count alone avoids re-zeroing the buffer in
    // this hot path.
    geom::WallEventBuffer wall_events;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (store_.flags[i] & ParticleStore<Real>::kReservoirFlag) {
        // Reservoir particles do not move; re-deal their pairing pseudo-cell
        // so partners change between steps.
        store_.cell[i] = reservoir_pair_cell(i);
        continue;
      }
      // 1) Collisionless motion.
      store_.x[i] += store_.ux[i];
      store_.y[i] += store_.uy[i];
      if (store_.has_z) store_.z[i] += store_.uz[i];
      // 2) Boundary conditions (double-precision working copy).
      geom::ParticleState ps;
      ps.x = N::to_double(store_.x[i]);
      ps.y = N::to_double(store_.y[i]);
      ps.z = store_.has_z ? N::to_double(store_.z[i]) : 0.0;
      ps.ux = N::to_double(store_.ux[i]);
      ps.uy = N::to_double(store_.uy[i]);
      ps.uz = N::to_double(store_.uz[i]);
      ps.r0 = N::to_double(store_.r0[i]);
      ps.r1 = N::to_double(store_.r1[i]);
      const std::uint64_t bbits = need_bc_bits ? bits_for(i, kSaltBc) : 0;
      wall_events.count = 0;
      const bool kept = geom::enforce_boundaries(
          ps, bc, bbits, record_surface ? &wall_events : nullptr);
      if (record_surface && wall_events.count > 0)
        surf_.record(tid, wall_events);
      if (kept) {
        store_.x[i] = N::from_double(ps.x);
        store_.y[i] = N::from_double(ps.y);
        if (store_.has_z) store_.z[i] = N::from_double(ps.z);
        store_.ux[i] = N::from_double(ps.ux);
        store_.uy[i] = N::from_double(ps.uy);
        store_.uz[i] = N::from_double(ps.uz);
        store_.r0[i] = N::from_double(ps.r0);
        store_.r1[i] = N::from_double(ps.r1);
        store_.cell[i] = grid_.index(static_cast<int>(std::floor(ps.x)),
                                     static_cast<int>(std::floor(ps.y)),
                                     static_cast<int>(std::floor(ps.z)));
      } else {
        // Exited through the downstream sink: park in the reservoir with a
        // rectangular freestream state (paper: reservoir collisions relax it
        // to the correct Gaussian within a few steps).
        const Velocity5 v = rectangular_freestream(
            cfg_.sigma, u_inf_, bits_for(i, kSaltRemoveVel));
        store_.ux[i] = N::from_double(v.v[0]);
        store_.uy[i] = N::from_double(v.v[1]);
        store_.uz[i] = N::from_double(v.v[2]);
        store_.r0[i] = N::from_double(v.v[3]);
        store_.r1[i] = N::from_double(v.v[4]);
        if (cfg_.vibrational) {
          rng::SplitMix64 gv(bits_for(i, kSaltRemoveVel) ^ 0x5151u);
          const double sv =
              cfg_.sigma * std::sqrt(cfg_.vib_init_temperature);
          store_.v0[i] = N::from_double(rng::sample_rectangular(gv, sv));
          store_.v1[i] = N::from_double(rng::sample_rectangular(gv, sv));
        }
        store_.flags[i] |= ParticleStore<Real>::kReservoirFlag;
        store_.cell[i] = reservoir_pair_cell(i);
        ++local_removed;
      }
    }
    removed.fetch_add(local_removed, std::memory_order_relaxed);
  });
  const std::uint64_t nrem = removed.load();
  res_count_ += nrem;
  counters_.removed += nrem;

  // 2b) Upstream particle introduction.
  if (record_surface) surf_.end_step();
  if (cfg_.closed_box) return;
  if (cfg_.upstream == geom::UpstreamMode::kPlunger) {
    // The plunger withdrew at the trigger crossing this step: refill the
    // trigger-wide void *ahead of the restarted face* (the slab
    // [plunger_.x, plunger_.x + width]) at freestream density.  The region
    // [0, plunger_.x) stays empty — the restarted plunger is sweeping it.
    if (void_width > 0.0) inject_void(void_width, plunger_.x);
  } else {
    soft_source_topup();
  }
}

template <class Real>
void Simulation<Real>::inject_void(double width, double x_offset) {
  const double volume = width * grid_.ny * (grid_.is3d() ? grid_.nz : 1);
  const auto need = static_cast<std::size_t>(std::llround(n_inf_ * volume));
  const std::size_t n = store_.size();
  const std::size_t k = need < res_tail_ ? need : res_tail_;
  const double ny = grid_.ny;
  const double nz = grid_.is3d() ? grid_.nz : 0.0;
  cmdp::parallel_for(*pool_, k, [&](std::size_t j) {
    const std::size_t i = n - 1 - j;
    rng::SplitMix64 g(bits_for(i, kSaltInject));
    const double x = x_offset + g.next_double() * width;
    const double y = g.next_double() * ny;
    const double z = grid_.is3d() ? g.next_double() * nz : 0.0;
    store_.x[i] = N::from_double(x);
    store_.y[i] = N::from_double(y);
    if (store_.has_z) store_.z[i] = N::from_double(z);
    // Velocity: the particle keeps its relaxed reservoir state.
    store_.flags[i] &= static_cast<std::uint8_t>(
        ~ParticleStore<Real>::kReservoirFlag);
    store_.cell[i] = grid_.index(static_cast<int>(x), static_cast<int>(y),
                                 static_cast<int>(z));
  });
  res_tail_ -= k;
  res_count_ -= k;
  counters_.injected += k;
  if (need > k) {
    // Reservoir ran dry: synthesize the remainder directly (costly path the
    // reservoir design exists to avoid; counted for diagnostics).
    rng::SplitMix64 g(rng::hash4(cfg_.seed, store_.size(),
                                 static_cast<std::uint64_t>(step_),
                                 kSaltInject));
    for (std::size_t j = k; j < need; ++j) {
      const double x = x_offset + g.next_double() * width;
      const double y = g.next_double() * ny;
      const double z = grid_.is3d() ? g.next_double() * nz : 0.0;
      const Velocity5 v =
          gaussian_freestream(cfg_.sigma, u_inf_, g.next_u64());
      store_.push_back(N::from_double(x), N::from_double(y),
                       N::from_double(z), N::from_double(v.v[0]),
                       N::from_double(v.v[1]), N::from_double(v.v[2]),
                       N::from_double(v.v[3]), N::from_double(v.v[4]),
                       rng::random_perm(g), 0);
      store_.cell.back() = grid_.index(static_cast<int>(x),
                                       static_cast<int>(y),
                                       static_cast<int>(z));
    }
    counters_.synthesized += need - k;
    counters_.injected += need - k;
  }
}

template <class Real>
void Simulation<Real>::soft_source_topup() {
  // Keep the first column strip at freestream density (the paper's
  // "strength of this source has to be controlled to maintain a constant
  // freestream density").
  const std::size_t n = store_.size();
  const auto target = static_cast<std::size_t>(std::llround(
      n_inf_ * grid_.ny * (grid_.is3d() ? grid_.nz : 1)));
  const Real one = N::from_double(1.0);
  const auto count = static_cast<std::size_t>(cmdp::parallel_sum<std::uint64_t>(
      *pool_, n, [&](std::size_t i) -> std::uint64_t {
        return (!(store_.flags[i] & ParticleStore<Real>::kReservoirFlag) &&
                store_.x[i] < one)
                   ? 1u
                   : 0u;
      }));
  if (count < target) {
    const std::size_t deficit = target - count;
    // Reuse inject_void with an explicit particle count by temporarily
    // scaling the width so need == deficit.
    const double volume = grid_.ny * (grid_.is3d() ? grid_.nz : 1);
    const double width = static_cast<double>(deficit) / (n_inf_ * volume);
    inject_void(width > 1.0 ? 1.0 : width, 0.0);
  }
}

template <class Real>
void Simulation<Real>::phase_sort() {
  const std::size_t n = store_.size();
  keys_.resize(n);
  order_.resize(n);
  const auto scale = static_cast<std::uint32_t>(cfg_.sort_scale);
  const bool dirty = cfg_.rng_mode == RngMode::kDirty;
  cmdp::parallel_for(*pool_, n, [&](std::size_t i) {
    std::uint32_t r = 0;
    if (cfg_.randomize_sort && scale > 1) {
      const std::uint64_t bits =
          dirty ? dirty_state_bits(i) : bits_for(i, kSaltSortKey);
      r = static_cast<std::uint32_t>(bits % scale);
    }
    keys_[i] = store_.cell[i] * scale + r;
  });
  const std::uint32_t key_bound = (ncells_ + res_cells_) * scale;
  cmdp::stable_sort_index(*pool_, keys_, key_bound, order_);
  store_.reorder(*pool_, order_, scratch_);
  res_tail_ = res_count_;
}

template <class Real>
void Simulation<Real>::phase_select() {
  const std::size_t n = store_.size();
  const std::uint32_t pair_cells = ncells_ + res_cells_;
  counts_.resize(pair_cells);
  starts_.resize(pair_cells);
  cmdp::histogram(*pool_, store_.cell, pair_cells, counts_);
  cmdp::exclusive_scan<std::uint32_t>(
      *pool_, counts_, starts_,
      [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);
  accept_.resize(n);
  const bool res_collide = cfg_.reservoir_collisions;
  const bool need_g = rule_.g_exponent != 0.0 && !rule_.near_continuum;
  std::atomic<std::uint64_t> candidates{0};
  cmdp::parallel_chunks(*pool_, n, [&](cmdp::Range r, unsigned) {
    std::uint64_t local_cand = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      accept_[i] = 0;
      const std::uint32_t c = store_.cell[i];
      const std::uint32_t s = starts_[c];
      const std::uint32_t rank = static_cast<std::uint32_t>(i) - s;
      if (rank & 1u) continue;
      if (i + 1 >= s + counts_[c]) continue;  // unpaired odd leftover
      ++local_cand;
      double p;
      if (store_.flags[i] & ParticleStore<Real>::kReservoirFlag) {
        // Reservoir pseudo-cells: unconditional collisions drive the
        // relaxation to a Maxwellian.
        p = res_collide ? 1.0 : 0.0;
      } else {
        const double open = open_frac_[c] > 0.05 ? open_frac_[c] : 0.05;
        const double n_local = static_cast<double>(counts_[c]) / open;
        double g = 0.0;
        if (need_g) {
          const double dx =
              N::to_double(store_.ux[i]) - N::to_double(store_.ux[i + 1]);
          const double dy =
              N::to_double(store_.uy[i]) - N::to_double(store_.uy[i + 1]);
          const double dz =
              N::to_double(store_.uz[i]) - N::to_double(store_.uz[i + 1]);
          g = std::sqrt(dx * dx + dy * dy + dz * dz);
        }
        p = rule_.probability(n_local, g);
      }
      if (p >= 1.0) {
        accept_[i] = 1;
      } else if (p > 0.0) {
        const double u = rng::u64_to_unit_double(bits_for(i, kSaltAccept));
        accept_[i] = u < p ? 1 : 0;
      }
    }
    candidates.fetch_add(local_cand, std::memory_order_relaxed);
  });
  counters_.candidates += candidates.load();
}

template <class Real>
void Simulation<Real>::phase_collide() {
  const std::size_t n = store_.size();
  const bool dirty = cfg_.rng_mode == RngMode::kDirty;
  const bool truncate = cfg_.rounding == Rounding::kTruncate;
  const int ntrans = cfg_.transpositions_per_collision;
  std::atomic<std::uint64_t> collided{0};
  std::atomic<std::uint64_t> res_collided{0};
  cmdp::parallel_chunks(*pool_, n, [&](cmdp::Range r, unsigned) {
    std::uint64_t local_coll = 0;
    std::uint64_t local_res = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (!accept_[i]) continue;
      const std::uint64_t bits =
          dirty ? dirty_state_bits(i) ^ rng::mix64(i)
                : bits_for(i, kSaltCollide);
      // Vibrational extension: with probability vib_exchange_prob this
      // collision exchanges with the two vibrational DOF instead of the
      // rotational pair (relaxation number Z_v = 1/prob).
      const bool use_vib =
          cfg_.vibrational &&
          static_cast<double>(bits >> 48) * 0x1.0p-16 < cfg_.vib_exchange_prob;
      std::vector<Real>& s0 = use_vib ? store_.v0 : store_.r0;
      std::vector<Real>& s1 = use_vib ? store_.v1 : store_.r1;
      physics::Pair5<Real> pv;
      pv.a[0] = store_.ux[i];
      pv.a[1] = store_.uy[i];
      pv.a[2] = store_.uz[i];
      pv.a[3] = s0[i];
      pv.a[4] = s1[i];
      pv.b[0] = store_.ux[i + 1];
      pv.b[1] = store_.uy[i + 1];
      pv.b[2] = store_.uz[i + 1];
      pv.b[3] = s0[i + 1];
      pv.b[4] = s1[i + 1];
      // Either of the pair's permutation vectors works (paper); use the
      // leader's.
      const rng::PackedPerm perm = store_.perm[i];
      if (truncate)
        physics::collide_pair_truncating(pv, perm, bits);
      else
        physics::collide_pair(pv, perm, bits);
      store_.ux[i] = pv.a[0];
      store_.uy[i] = pv.a[1];
      store_.uz[i] = pv.a[2];
      s0[i] = pv.a[3];
      s1[i] = pv.a[4];
      store_.ux[i + 1] = pv.b[0];
      store_.uy[i + 1] = pv.b[1];
      store_.uz[i + 1] = pv.b[2];
      s0[i + 1] = pv.b[3];
      s1[i + 1] = pv.b[4];
      // Refresh both permutation vectors by random transpositions.
      if (ntrans > 0) {
        std::uint64_t ta = dirty ? dirty_state_bits(i)
                                 : bits_for(i, kSaltTranspose);
        std::uint64_t tb = dirty ? dirty_state_bits(i + 1)
                                 : bits_for(i + 1, kSaltTranspose);
        for (int t = 0; t < ntrans; ++t) {
          store_.perm[i] = rng::random_transposition(store_.perm[i], ta);
          store_.perm[i + 1] =
              rng::random_transposition(store_.perm[i + 1], tb);
          ta >>= 16;
          tb >>= 16;
        }
      }
      if (store_.flags[i] & ParticleStore<Real>::kReservoirFlag)
        ++local_res;
      else
        ++local_coll;
    }
    collided.fetch_add(local_coll, std::memory_order_relaxed);
    res_collided.fetch_add(local_res, std::memory_order_relaxed);
  });
  counters_.collisions += collided.load();
  counters_.reservoir_collisions += res_collided.load();
}

template <class Real>
void Simulation<Real>::phase_sample() {
  sampler_.accumulate(*pool_, store_, flow_count());
}

template <class Real>
SurfaceStats Simulation<Real>::surface() const {
  if (!cfg_.body) return SurfaceStats{};
  // u_inf_ is the actual stream speed (0 in closed-box runs, where the raw
  // p/tau/q fluxes stay meaningful but the coefficients are reported as 0).
  return surf_.finalize(*cfg_.body, n_inf_, cfg_.sigma, u_inf_);
}

template <class Real>
double Simulation<Real>::total_energy() const {
  return cmdp::parallel_sum<double>(*pool_, store_.size(), [&](std::size_t i) {
    const double vx = N::to_double(store_.ux[i]);
    const double vy = N::to_double(store_.uy[i]);
    const double vz = N::to_double(store_.uz[i]);
    const double w0 = N::to_double(store_.r0[i]);
    const double w1 = N::to_double(store_.r1[i]);
    double e = 0.5 * (vx * vx + vy * vy + vz * vz + w0 * w0 + w1 * w1);
    if (store_.has_vib) {
      const double q0 = N::to_double(store_.v0[i]);
      const double q1 = N::to_double(store_.v1[i]);
      e += 0.5 * (q0 * q0 + q1 * q1);
    }
    return e;
  });
}

template <class Real>
double Simulation<Real>::flow_energy() const {
  return cmdp::parallel_sum<double>(*pool_, store_.size(), [&](std::size_t i) {
    if (store_.flags[i] & ParticleStore<Real>::kReservoirFlag) return 0.0;
    const double vx = N::to_double(store_.ux[i]);
    const double vy = N::to_double(store_.uy[i]);
    const double vz = N::to_double(store_.uz[i]);
    const double w0 = N::to_double(store_.r0[i]);
    const double w1 = N::to_double(store_.r1[i]);
    return 0.5 * (vx * vx + vy * vy + vz * vz + w0 * w0 + w1 * w1);
  });
}

template <class Real>
std::array<double, 3> Simulation<Real>::total_momentum() const {
  std::array<double, 3> out{0.0, 0.0, 0.0};
  out[0] = cmdp::parallel_sum<double>(
      *pool_, store_.size(),
      [&](std::size_t i) { return N::to_double(store_.ux[i]); });
  out[1] = cmdp::parallel_sum<double>(
      *pool_, store_.size(),
      [&](std::size_t i) { return N::to_double(store_.uy[i]); });
  out[2] = cmdp::parallel_sum<double>(
      *pool_, store_.size(),
      [&](std::size_t i) { return N::to_double(store_.uz[i]); });
  return out;
}

template class Simulation<double>;
template class Simulation<fixedpoint::Fixed32>;

}  // namespace cmdsmc::core
