// The time-step driver: the paper's four sub-steps
//   1) collisionless motion of particles
//   2) enforcement of boundary conditions
//   3) selection of collision partners
//   4) collision of selected partners
// implemented in the particles-to-processors mapping: per-step randomized
// sort by cell index, even/odd candidate pairing within cells, pairwise
// probabilistic selection (eq. 8) and the Baganoff 5-vector collision.
//
// Reservoir particles live in the same arrays with pairing-cell indices in a
// band past the real grid cells, so the same sort/pair/collide machinery
// relaxes them "for free" — the paper's way of keeping otherwise idle
// processors busy.
//
// Templated on the state scalar: `double` (reference) or
// `fixedpoint::Fixed32` (the paper's integer CM-2 implementation).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cmdp/shard.h"
#include "cmdp/thread_pool.h"
#include "cmdp/timers.h"
#include "core/config.h"
#include "core/particles.h"
#include "core/sampling.h"
#include "core/surface_sampling.h"
#include "fixedpoint/fixed32.h"
#include "geom/body.h"
#include "geom/boundary.h"
#include "geom/grid.h"
#include "geom/scene.h"
#include "geom/wedge.h"
#include "obs/step_stats.h"
#include "physics/selection.h"
#include "rng/rng.h"

namespace cmdsmc::audit {
template <class Real>
class Auditor;
}  // namespace cmdsmc::audit

namespace cmdsmc::core {

// Per-run cumulative counters.
struct SimCounters {
  std::uint64_t candidates = 0;   // candidate pairs examined
  std::uint64_t collisions = 0;   // pairs actually collided (flow)
  std::uint64_t reservoir_collisions = 0;
  std::uint64_t removed = 0;      // particles removed through the sink
  std::uint64_t injected = 0;     // particles injected from the reservoir
  std::uint64_t synthesized = 0;  // fallback Gaussian injections (reservoir
                                  // was empty); 0 in a healthy run
  // Axisymmetric weight balancing: simulators created by splitting a heavy
  // particle and simulators absorbed by merging two light ones (both 0 in
  // planar runs).
  std::uint64_t cloned = 0;
  std::uint64_t merged = 0;
};

template <class Real>
class Simulation {
 public:
  // Phase indices for the performance breakdown (Table A).
  enum Phase : std::size_t {
    kPhaseMove = 0,   // motion + boundary conditions + injection + sort keys
    kPhaseSort,       // one-pass counting sort + fused record scatter
    kPhaseSelect,     // kept for reporting compat; 0 since the select/collide
                      // fusion (cell tables now fall out of the sort)
    kPhaseCollide,    // selection + collision of partners (fused traversal)
    kPhaseSample,     // time-average accumulation
    kPhaseCount,
  };

  explicit Simulation(const SimConfig& cfg,
                      cmdp::ThreadPool* pool = nullptr);

  // Advances one full time step.
  void step();
  void run(int nsteps);

  // Time-average sampling control (off initially; enable after the start-up
  // transient).
  void set_sampling(bool on) { sampling_ = on; }
  void reset_sampling() { sampler_.reset(); }
  FieldStats field() const { return sampler_.finalize(); }

  // Surface-flux sampling (requires a body scene; no-op otherwise).
  void set_surface_sampling(bool on) { surface_sampling_ = on; }
  void reset_surface_sampling() { surf_.reset(); }
  // Time-averaged per-segment Cp/Cf/heat-flux and integrated Cd/Cl, summed
  // over the whole scene (for a one-body scene: exactly that body's stats).
  SurfaceStats surface() const;
  // The same moments resolved per body (empty without a scene).
  std::vector<SurfaceStats> surface_per_body() const;

  // --- Accessors ---
  const SimConfig& config() const { return cfg_; }
  const geom::Grid& grid() const { return grid_; }
  const geom::Wedge* wedge() const {
    return wedge_ ? &wedge_.value() : nullptr;
  }
  // The assembled multi-body scene (empty when the run has no generalized
  // body).  Bodies keep the order (cfg.body first, then cfg.bodies).
  const geom::Scene& scene() const { return scene_; }
  // First scene body (legacy single-body accessor).
  const geom::Body* body() const {
    return scene_.empty() ? nullptr : &scene_.body(0);
  }
  const std::vector<double>& open_fraction() const { return open_frac_; }
  // Per-cell volumes in axisymmetric runs (annulus 2*iy + 1, in units of
  // pi); empty for planar runs (unit cells).  Also the per-particle target
  // weight of each cell.
  const std::vector<double>& cell_volume() const { return cell_volume_; }
  // Per-cell "no boundary reachable" mask driving the move fast path.
  const std::vector<std::uint8_t>& interior_mask() const {
    return interior_mask_;
  }
  const physics::SelectionRule& selection_rule() const { return rule_; }
  ParticleStore<Real>& particles() { return store_; }
  const ParticleStore<Real>& particles() const { return store_; }
  std::size_t total_count() const { return store_.size(); }
  std::size_t reservoir_count() const { return res_count_; }
  std::size_t flow_count() const { return store_.size() - res_count_; }
  std::int64_t step_index() const { return step_; }
  const SimCounters& counters() const { return counters_; }
  double plunger_x() const { return plunger_.x; }

  // Cell-block sharding summary (zeros while sharding is inactive: disabled,
  // single lane, or no step executed yet).  cost_imbalance is the predicted
  // max/mean lane cost of the assignment the last step executed under;
  // post_imbalance is the same gauge right after the most recent
  // repartition — the pair shows the balancer working (drift pushes
  // cost_imbalance up, a repartition snaps it back to ~post_imbalance).
  struct ShardStats {
    unsigned shards = 0;
    std::uint64_t repartitions = 0;  // cumulative plan rebuilds
    double cost_imbalance = 0.0;
    double post_imbalance = 0.0;
  };
  ShardStats shard_stats() const {
    return {static_cast<unsigned>(shard_plan_.count()), shard_repartitions_,
            shard_cost_imbalance_, shard_post_imbalance_};
  }

  // Phase wall-clock seconds (Table A) and their sum.
  double phase_seconds(Phase p) const { return timers_.seconds(phase_id_[p]); }
  double total_seconds() const { return timers_.total_seconds(); }
  cmdp::PhaseTimers& timers() { return timers_; }

  // --- Run telemetry (obs/step_stats.h) ---
  // Attaches a per-step observer: every step the observer wants, the
  // simulation fills a StepStats (census, counter deltas, occupancy spread,
  // per-phase and per-lane seconds) and calls on_step before advancing the
  // step counter.  Attaching also switches the phase timers to per-lane
  // accumulation sized to the pool; nullptr detaches and switches it back
  // off.  With no observer attached the step loop pays a single pointer
  // test.  The observer must outlive the simulation or be detached first.
  void set_step_observer(obs::StepObserver* observer);
  obs::StepObserver* step_observer() const { return observer_; }

  // --- Invariant audit (audit/auditor.h) ---
  // Attaches the in-situ auditor.  The step-loop hooks only exist in
  // -DCMDSMC_AUDIT=1 builds (audit::kAuditCompiled) — attaching in any
  // other build is a silent no-op, which the scenario runner turns into a
  // config error instead.  The auditor must outlive the simulation or be
  // detached first.
  void set_auditor(audit::Auditor<Real>* auditor) { auditor_ = auditor; }
  audit::Auditor<Real>* auditor() const { return auditor_; }

  // Read-only views of the sort phase's per-pairing-cell tables and the
  // executing shard plan, for the audit layer (valid after the first step;
  // the collide phase reads but never rewrites them).
  const std::vector<std::uint32_t>& sort_counts() const { return counts_; }
  const std::vector<std::uint32_t>& sort_starts() const { return starts_; }
  const cmdp::ShardPlan& shard_plan() const { return shard_plan_; }

  // --- Conservation diagnostics (flow + reservoir, double precision) ---
  // Total kinetic + rotational energy per unit mass: sum 0.5 (u^2 + r^2).
  double total_energy() const;
  // Total momentum per unit mass.
  std::array<double, 3> total_momentum() const;
  // Same restricted to flow particles.
  double flow_energy() const;
  // Weighted moments of the flow (axisymmetric runs; weights are 1 in
  // planar runs): sum of w, w*v and w*(0.5 |v|^2 + e_int) over flow
  // particles — the quantities the weight-balancing pass conserves exactly.
  double flow_weighted_mass() const;
  std::array<double, 3> flow_weighted_momentum() const;
  double flow_weighted_energy() const;

  // Test hook: runs the axisymmetric weight-balancing pass (split/merge
  // against each cell's target weight) outside the step pipeline and
  // compacts the merged-away slots immediately, preserving order.  No-op in
  // planar runs.  Counters `cloned` / `merged` record the actions.
  void debug_rebalance();

  // --- Checkpoint/restart support (core/checkpoint.*) ---
  // Everything beyond the particle store a resumed run needs to reproduce
  // the uninterrupted run bit for bit: the step counter (every counter-RNG
  // stream is keyed on it), the plunger phase, reservoir bookkeeping,
  // cumulative counters, and the field/surface sampler accumulators.
  struct ResumeState {
    std::int64_t step = 0;
    double plunger_x = 0.0;
    std::uint64_t res_count = 0;
    std::uint64_t res_tail = 0;
    SimCounters counters;
    int field_samples = 0;
    std::vector<double> field_sums;
    int surface_samples = 0;
    std::vector<double> surface_sums;
  };
  ResumeState resume_state() const;
  // Restores store + state saved by resume_state().  Throws
  // std::invalid_argument when the accumulator shapes do not match this
  // simulation's grid/scene (geometry mismatch).  Rebuilds the interior
  // mask, which must be re-derived whenever the boundary state is replaced.
  void restore(ParticleStore<Real> store, const ResumeState& state);
  // Provenance hash over everything that defines the run's geometry and
  // particle layout; checkpoints refuse to restore across a mismatch.
  std::uint64_t geometry_hash() const;

 private:
  using N = physics::Num<Real>;

  void init_particles();
  void phase_move_and_boundaries();
  void inject_void(double width, double x_offset);
  // `strip_count` = flow particles in the first column, tallied during the
  // move loop (the standalone O(n) counting pass is gone).
  void soft_source_topup(std::size_t strip_count);
  void phase_sort();
  // Axisymmetric weight balancing (called from phase_sort, before the
  // counting plan): splits particles heavier than twice their cell's target
  // weight into equal copies (appended at the tail; the sort places them)
  // and merges pairs of particles lighter than half the target within the
  // same cell (mass- and momentum-conserving velocity average, the lost
  // relative kinetic energy folded into the rotational DOF so total energy
  // is exact too).  Merged-away slots get `mark_dead_keys` ? a past-the-end
  // sort key (the scatter moves them behind the reservoir band where
  // phase_sort truncates them) : weight 0 only (debug_rebalance compacts).
  // Also accumulates the per-cell weighted census cell_weight_ the collision
  // phase divides by the annular volume.  Returns the merged-away count.
  std::size_t balance_weights(bool mark_dead_keys);
  // Recomputes the per-cell weighted census cell_weight_ from the sorted
  // runs (axisymmetric runs; called at the end of phase_sort, after the
  // scatter and dead-slot truncation).  Per-cell array-order sums, so the
  // result is independent of the lane count.
  void refresh_cell_weight();
  // Evaluates the shard cost model against the fresh per-cell counts,
  // repartitions when the predicted imbalance drifted past the threshold
  // (or the plan is stale), and adapts the collide-weight blend from the
  // aggregate phase timers.  Called at the end of phase_sort.
  void update_shards();
  // One fused traversal: candidate pairing + acceptance + collision.  Pairs
  // are disjoint, so fusing is bit-identical to the historical two-pass
  // select-then-collide while skipping the accept-flag round trip.
  void phase_select_and_collide();
  void phase_sample();
  // Randomized sort key of particle i from its current cell/state.  Fused
  // into the move loop (and the injection paths) so the sort phase never
  // makes a separate key-generation pass.  KeyParams hoists every config
  // load; key_from is the single derivation shared by the hot loop and
  // sort_key_for, so the scheme cannot silently diverge between them.
  struct KeyParams {
    std::uint32_t scale = 1;
    std::uint32_t mask = 0;  // scale - 1 when scale is a power of two
    bool randomize = false;
    bool dirty = false;
    std::uint64_t seed_round = 0;
    std::uint64_t step = 0;
  };
  KeyParams key_params() const;
  std::uint32_t key_from(const KeyParams& kp, std::size_t i,
                         std::uint32_t cell) const;
  std::uint32_t sort_key_for(std::size_t i) const;
  // Sort key space: pair cells * sort_scale, plus one reserved past-the-end
  // key value in axisymmetric runs for merged-away slots (they sort behind
  // the reservoir band and are truncated after the scatter).
  std::uint32_t sort_key_bound() const {
    return (ncells_ + res_cells_) *
               static_cast<std::uint32_t>(cfg_.sort_scale) +
           (cfg_.axisymmetric ? 1u : 0u);
  }
  std::uint64_t bits_for(std::uint64_t i, std::uint64_t salt) const {
    // seed_round_ caches hash4's seed-only first round (bit-identical).
    return rng::hash4_seeded(seed_round_, i, static_cast<std::uint64_t>(step_),
                             salt);
  }
  // "Quick but dirty" bits from the low-order state bits (paper).
  std::uint64_t dirty_state_bits(std::size_t i) const;
  std::uint32_t reservoir_pair_cell(std::uint64_t i) const;

  void rebuild_interior_mask();

  // Telemetry bracketing for one observed step: snapshot the cumulative
  // counters/timers, then turn end-of-step deltas into obs_stats_.
  void begin_observed_step();
  void emit_step_stats();

  SimConfig cfg_;
  cmdp::ThreadPool* pool_;
  geom::Grid grid_;
  std::optional<geom::Wedge> wedge_;
  geom::Scene scene_;  // all bodies (cfg.body first, then cfg.bodies)
  std::vector<double> open_frac_;
  // Axisymmetric per-cell annular volumes (empty when planar) and the
  // per-step weighted per-cell census feeding the collision density.
  std::vector<double> cell_volume_;
  std::vector<double> cell_weight_;
  // Balance-pass scratch: per-lane merge-candidate tables (lanes * ncells
  // slots of epoch<<32 | index; a slot is live only when its epoch matches
  // the chunk being walked, so the table never needs clearing) and the
  // per-chunk clone-slot prefix of pass A.
  std::vector<std::uint64_t> balance_pending_;
  std::vector<std::uint32_t> balance_clone_base_;
  std::uint64_t balance_epoch_ = 0;
  std::vector<std::uint8_t> interior_mask_;
  physics::SelectionRule rule_;
  std::uint64_t seed_round_ = 0;  // hash4_seed_round(cfg_.seed)
  double u_inf_ = 0.0;          // freestream speed (cells/step)
  double n_inf_ = 0.0;          // freestream particles per cell volume
  std::uint32_t ncells_ = 0;    // real grid cells
  std::uint32_t res_cells_ = 1;  // reservoir pairing pseudo-cells
  geom::Plunger plunger_;

  ParticleStore<Real> store_;
  ParticleStore<Real> scratch_;
  std::vector<std::uint32_t> keys_;
  // Per-lane key histograms accumulated while the move loop writes keys_,
  // handed to counting_sort_plan_from_counts so the sort phase skips its
  // counting pass.  key_count_lanes_ == 0 marks them invalid (radix-range
  // key space, or the particle array grew after the move loop).
  std::vector<std::uint32_t> key_counts_;
  unsigned key_count_lanes_ = 0;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> counts_;  // per pairing cell
  std::vector<std::uint32_t> starts_;

  std::size_t res_count_ = 0;  // reservoir particles (anywhere in the array)
  std::size_t res_tail_ = 0;   // reservoir particles contiguous at the tail

  // --- Cell-block sharding state (cmdp/shard.h) ---
  // Rebuilt lazily by update_shards() at the end of phase_sort; transient
  // (never checkpointed — a resumed run rebuilds it on its first step, and
  // the assignment carries no physics).
  cmdp::ShardPlan shard_plan_;
  std::vector<double> shard_cost_;  // per pairing cell, refreshed per step
  double shard_collide_weight_ = 1.0;
  std::uint64_t shard_repartitions_ = 0;
  double shard_cost_imbalance_ = 0.0;
  double shard_post_imbalance_ = 0.0;
  std::int64_t shard_last_step_ = -1;
  // Collide-weight adaptation snapshots (phase seconds / counters at the
  // last adaptation; np accumulates particle-steps between them).
  std::int64_t adapt_last_step_ = -1;
  double adapt_collide0_ = 0.0;
  double adapt_other0_ = 0.0;
  std::uint64_t adapt_pairs0_ = 0;
  std::uint64_t adapt_np_ = 0;
  std::uint64_t adapt_np0_ = 0;

  FieldSampler<Real> sampler_;
  bool sampling_ = false;
  SurfaceSampler surf_;
  bool surface_sampling_ = false;
  std::int64_t step_ = 0;
  SimCounters counters_;
  cmdp::PhaseTimers timers_;
  std::array<std::size_t, kPhaseCount> phase_id_{};

  // In-situ invariant auditor (hooks compiled only under CMDSMC_AUDIT;
  // the member itself is unconditional so the class layout never depends
  // on the macro).
  audit::Auditor<Real>* auditor_ = nullptr;

  // Step observer state: the reusable stats record plus the step-start
  // snapshots the per-step deltas are differenced against.
  obs::StepObserver* observer_ = nullptr;
  obs::StepStats obs_stats_;
  SimCounters obs_counters0_;
  std::uint64_t obs_wall0_ = 0;
  std::array<double, kPhaseCount> obs_phase0_{};
  std::vector<double> obs_lane0_;
};

using SimulationD = Simulation<double>;
using SimulationF = Simulation<fixedpoint::Fixed32>;

extern template class Simulation<double>;
extern template class Simulation<fixedpoint::Fixed32>;

}  // namespace cmdsmc::core
