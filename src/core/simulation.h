// The time-step driver: the paper's four sub-steps
//   1) collisionless motion of particles
//   2) enforcement of boundary conditions
//   3) selection of collision partners
//   4) collision of selected partners
// implemented in the particles-to-processors mapping: per-step randomized
// sort by cell index, even/odd candidate pairing within cells, pairwise
// probabilistic selection (eq. 8) and the Baganoff 5-vector collision.
//
// Reservoir particles live in the same arrays with pairing-cell indices in a
// band past the real grid cells, so the same sort/pair/collide machinery
// relaxes them "for free" — the paper's way of keeping otherwise idle
// processors busy.
//
// Templated on the state scalar: `double` (reference) or
// `fixedpoint::Fixed32` (the paper's integer CM-2 implementation).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cmdp/thread_pool.h"
#include "cmdp/timers.h"
#include "core/config.h"
#include "core/particles.h"
#include "core/sampling.h"
#include "core/surface_sampling.h"
#include "fixedpoint/fixed32.h"
#include "geom/body.h"
#include "geom/boundary.h"
#include "geom/grid.h"
#include "geom/wedge.h"
#include "physics/selection.h"

namespace cmdsmc::core {

// Per-run cumulative counters.
struct SimCounters {
  std::uint64_t candidates = 0;   // candidate pairs examined
  std::uint64_t collisions = 0;   // pairs actually collided (flow)
  std::uint64_t reservoir_collisions = 0;
  std::uint64_t removed = 0;      // particles removed through the sink
  std::uint64_t injected = 0;     // particles injected from the reservoir
  std::uint64_t synthesized = 0;  // fallback Gaussian injections (reservoir
                                  // was empty); 0 in a healthy run
};

template <class Real>
class Simulation {
 public:
  // Phase indices for the performance breakdown (Table A).
  enum Phase : std::size_t {
    kPhaseMove = 0,   // motion + boundary conditions + injection
    kPhaseSort,       // key build + rank sort + gather
    kPhaseSelect,     // cell counts + selection rule
    kPhaseCollide,    // collision of selected partners
    kPhaseSample,     // time-average accumulation
    kPhaseCount,
  };

  explicit Simulation(const SimConfig& cfg,
                      cmdp::ThreadPool* pool = nullptr);

  // Advances one full time step.
  void step();
  void run(int nsteps);

  // Time-average sampling control (off initially; enable after the start-up
  // transient).
  void set_sampling(bool on) { sampling_ = on; }
  void reset_sampling() { sampler_.reset(); }
  FieldStats field() const { return sampler_.finalize(); }

  // Surface-flux sampling (requires a generalized body; no-op otherwise).
  void set_surface_sampling(bool on) { surface_sampling_ = on; }
  void reset_surface_sampling() { surf_.reset(); }
  // Time-averaged per-segment Cp/Cf/heat-flux and integrated Cd/Cl.
  SurfaceStats surface() const;

  // --- Accessors ---
  const SimConfig& config() const { return cfg_; }
  const geom::Grid& grid() const { return grid_; }
  const geom::Wedge* wedge() const {
    return wedge_ ? &wedge_.value() : nullptr;
  }
  const geom::Body* body() const {
    return cfg_.body ? &cfg_.body.value() : nullptr;
  }
  const std::vector<double>& open_fraction() const { return open_frac_; }
  const physics::SelectionRule& selection_rule() const { return rule_; }
  ParticleStore<Real>& particles() { return store_; }
  const ParticleStore<Real>& particles() const { return store_; }
  std::size_t total_count() const { return store_.size(); }
  std::size_t reservoir_count() const { return res_count_; }
  std::size_t flow_count() const { return store_.size() - res_count_; }
  std::int64_t step_index() const { return step_; }
  const SimCounters& counters() const { return counters_; }
  double plunger_x() const { return plunger_.x; }

  // Phase wall-clock seconds (Table A) and their sum.
  double phase_seconds(Phase p) const { return timers_.seconds(phase_id_[p]); }
  double total_seconds() const { return timers_.total_seconds(); }
  cmdp::PhaseTimers& timers() { return timers_; }

  // --- Conservation diagnostics (flow + reservoir, double precision) ---
  // Total kinetic + rotational energy per unit mass: sum 0.5 (u^2 + r^2).
  double total_energy() const;
  // Total momentum per unit mass.
  std::array<double, 3> total_momentum() const;
  // Same restricted to flow particles.
  double flow_energy() const;

 private:
  using N = physics::Num<Real>;

  void init_particles();
  void phase_move_and_boundaries();
  void inject_void(double width, double x_offset);
  void soft_source_topup();
  void phase_sort();
  void phase_select();
  void phase_collide();
  void phase_sample();
  std::uint64_t bits_for(std::uint64_t i, std::uint64_t salt) const {
    return rng::hash4(cfg_.seed, i, static_cast<std::uint64_t>(step_), salt);
  }
  // "Quick but dirty" bits from the low-order state bits (paper).
  std::uint64_t dirty_state_bits(std::size_t i) const;
  std::uint32_t reservoir_pair_cell(std::uint64_t i) const;

  SimConfig cfg_;
  cmdp::ThreadPool* pool_;
  geom::Grid grid_;
  std::optional<geom::Wedge> wedge_;
  std::vector<double> open_frac_;
  physics::SelectionRule rule_;
  double u_inf_ = 0.0;          // freestream speed (cells/step)
  double n_inf_ = 0.0;          // freestream particles per cell volume
  std::uint32_t ncells_ = 0;    // real grid cells
  std::uint32_t res_cells_ = 1;  // reservoir pairing pseudo-cells
  geom::Plunger plunger_;

  ParticleStore<Real> store_;
  ParticleStore<Real> scratch_;
  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> counts_;  // per pairing cell
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint8_t> accept_;

  std::size_t res_count_ = 0;  // reservoir particles (anywhere in the array)
  std::size_t res_tail_ = 0;   // reservoir particles contiguous at the tail

  FieldSampler<Real> sampler_;
  bool sampling_ = false;
  SurfaceSampler surf_;
  bool surface_sampling_ = false;
  std::int64_t step_ = 0;
  SimCounters counters_;
  cmdp::PhaseTimers timers_;
  std::array<std::size_t, kPhaseCount> phase_id_{};
};

using SimulationD = Simulation<double>;
using SimulationF = Simulation<fixedpoint::Fixed32>;

extern template class Simulation<double>;
extern template class Simulation<fixedpoint::Fixed32>;

}  // namespace cmdsmc::core
