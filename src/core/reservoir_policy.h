// Small helpers shared by the simulation driver for reservoir particle
// management.
//
// The paper parks particles that are not currently needed in the flow in a
// *reservoir* and lets them collide amongst themselves: removed particles are
// given velocities from a rectangular distribution with the freestream
// variance, and a few collision steps relax them to the correct Maxwellian —
// cheaper than sampling Gaussians for every injected particle, and it keeps
// otherwise idle processors busy.
//
// In this implementation reservoir particles live in the *same* particle
// arrays as flow particles (exactly as they would on the CM): they carry
// pairing-cell indices in a band beyond the real grid cells, so the ordinary
// sort/pair/collide machinery relaxes them with no special-case code.
#pragma once

#include <cstdint>

#include "rng/rng.h"
#include "rng/samplers.h"

namespace cmdsmc::core {

// Velocity 5-tuple [ux, uy, uz, r0, r1] in double precision.
struct Velocity5 {
  double v[5] = {0, 0, 0, 0, 0};
};

// Rectangular (uniform, variance-matched) freestream sample: the state given
// to particles entering the reservoir.
inline Velocity5 rectangular_freestream(double sigma, double drift_ux,
                                        std::uint64_t bits) {
  rng::SplitMix64 g(bits);
  Velocity5 out;
  out.v[0] = drift_ux + rng::sample_rectangular(g, sigma);
  for (int c = 1; c < 5; ++c) out.v[c] = rng::sample_rectangular(g, sigma);
  return out;
}

// Gaussian freestream sample: the fallback used only when the reservoir runs
// dry (the paper's design avoids this cost in the common case).
inline Velocity5 gaussian_freestream(double sigma, double drift_ux,
                                     std::uint64_t bits) {
  rng::SplitMix64 g(bits);
  Velocity5 out;
  out.v[0] = drift_ux + sigma * rng::sample_gaussian(g);
  for (int c = 1; c < 5; ++c) out.v[c] = sigma * rng::sample_gaussian(g);
  return out;
}

}  // namespace cmdsmc::core
