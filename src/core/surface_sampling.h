// Per-(body, segment) surface-flux accumulation.
//
// Every reflection off a geom::Scene facet hands the wall a momentum and
// energy increment (recorded by enforce_boundaries into a WallEventBuffer
// under the scene-wide flat segment index).  This sampler tallies those
// increments per segment over many time steps and finalizes them into
// time-averaged surface distributions — pressure, shear and heat flux,
// normalized as Cp / Cf / Ch — plus integrated drag and lift coefficients,
// resolved per body and as scene totals.  The paper never reports surface
// quantities (its wedge is specular and inviscid); this is the
// instrumentation a general body subsystem exists to feed.
//
// Units: particle mass 1, so rho_inf = n_inf (particles per cell volume),
// freestream static pressure p_inf = n_inf * sigma_inf^2, dynamic pressure
// q_inf = 0.5 * n_inf * u_inf^2.  Fluxes are per unit area per time step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/body.h"
#include "geom/boundary.h"
#include "geom/scene.h"

namespace cmdsmc::core {

struct SurfaceSegmentStats {
  // Segment geometry (midpoint, outward normal, length).
  double x = 0.0, y = 0.0;
  double nx = 0.0, ny = 0.0;
  double length = 0.0;
  bool embedded = false;
  // Owning body (index within the scene) of this segment.
  int body = 0;
  // Raw time-averaged fluxes (sim units, per unit area per step).
  double hits_per_step = 0.0;
  double p = 0.0;    // normal momentum flux into the wall (pressure)
  double tau = 0.0;  // tangential momentum flux along the segment tangent
  double q = 0.0;    // energy flux into the wall (heating > 0)
  // Incident/reflected split of the normal momentum and energy fluxes
  // (accommodation-coefficient studies): p = p_incident + p_reflected and
  // q = q_incident - q_reflected by construction; a specular or adiabatic
  // wall has q_incident == q_reflected.
  double p_incident = 0.0;   // normal momentum delivered by arriving gas
  double p_reflected = 0.0;  // normal momentum carried off by re-emitted gas
  double q_incident = 0.0;   // energy delivered per area per step
  double q_reflected = 0.0;  // energy re-emitted per area per step
  // Normalized coefficients (0 when the freestream is at rest).
  double cp = 0.0;   // (p - p_inf) / q_inf
  double cf = 0.0;   // tau / q_inf
  double ch = 0.0;   // q / (0.5 rho_inf u_inf^3)
};

struct SurfaceStats {
  int samples = 0;
  double p_inf = 0.0;
  double q_inf = 0.0;
  // Which body these stats describe: index within the scene and the body's
  // name.  Scene totals use body_index -1 and name "scene" when more than
  // one body contributed (a one-body total keeps that body's identity).
  int body_index = 0;
  std::string body_name;
  std::vector<SurfaceSegmentStats> segments;
  // Integrated force on the body per unit span per step (sim units) and the
  // corresponding coefficients referenced to q_inf * chord (for totals the
  // reference length is the sum of the bodies' chords).
  double fx = 0.0, fy = 0.0;
  double cd = 0.0, cl = 0.0;
  double heat_total = 0.0;  // integrated energy flux per unit span per step
  // Body-integrated incident/reflected energy fluxes per unit span per step
  // (heat_total = q_incident_total - q_reflected_total).
  double q_incident_total = 0.0;
  double q_reflected_total = 0.0;
};

// Lane-parallel accumulator: each worker lane owns a private slice, so
// recording from the move phase needs no synchronization.  end_step()
// reduces the lanes into one persistent per-segment moment table, which
// keeps the accumulated state independent of the lane count — that is what
// lets checkpoints carry it across sessions exactly.
class SurfaceSampler {
 public:
  SurfaceSampler() = default;
  // `span` is the z-extent of the prism extrusion (1 for 2D runs).  With
  // `axisymmetric` set, each segment is the generator of a revolved frustum:
  // fluxes are per revolved area 2 * r_mid * length (in units of pi, the
  // same convention the radial particle weights use, so the pi cancels) and
  // force coefficients are referenced to the body's frontal area r_max^2
  // (i.e. the true pi * r_max^2 in the same units).
  SurfaceSampler(int nsegments, unsigned lanes, double span,
                 bool axisymmetric = false);

  bool active() const { return nseg_ > 0; }
  int samples() const { return samples_; }
  int segment_count() const { return nseg_; }

  void reset();

  // Called from worker lane `lane` for one particle's wall events
  // (WallEvent::segment is the scene-wide flat segment index).  The weighted
  // overload scales every increment by the particle's statistical weight
  // (axisymmetric radial weighting).
  void record(unsigned lane, const geom::WallEventBuffer& events);
  void record(unsigned lane, const geom::WallEventBuffer& events,
              double weight);

  // Marks the end of one sampled time step: reduces the lane slices into
  // the persistent accumulator.
  void end_step();

  // Total wall events recorded since construction/reset (lane-reduced at
  // end_step; telemetry differences consecutive values for per-step counts).
  std::uint64_t events_total() const { return events_total_; }

  // Reduces and normalizes against the body geometry and the freestream
  // (rho_inf = n_inf for unit-mass particles).  The legacy single-body
  // overload requires body.segment_count() == segment_count().
  SurfaceStats finalize(const geom::Body& body, double rho_inf,
                        double sigma_inf, double u_inf) const;
  // Scene totals: all segments flat, forces summed over bodies, Cd/Cl
  // referenced to the summed chord.  For a one-body scene this is exactly
  // the single-body overload's result.
  SurfaceStats finalize(const geom::Scene& scene, double rho_inf,
                        double sigma_inf, double u_inf) const;
  // Per-body resolution: element b covers scene.body(b)'s segments only,
  // with Cd/Cl referenced to that body's own chord.
  std::vector<SurfaceStats> finalize_per_body(const geom::Scene& scene,
                                              double rho_inf,
                                              double sigma_inf,
                                              double u_inf) const;

  // --- Checkpoint access (core/checkpoint.*) ---
  // The lane-reduced accumulator (nsegments * kMoments doubles).
  const std::vector<double>& accumulated() const { return sums_; }
  // Restores a saved accumulator; throws std::invalid_argument on a shape
  // mismatch (different segment count => different geometry).
  void restore(int samples, const std::vector<double>& sums);

 private:
  // count, dpx, dpy, de, p_in, p_out, e_in, e_out
  static constexpr int kMoments = 8;

  // Accumulates segments [seg_begin, seg_begin + body.segment_count()) of
  // the flat table into `out` (appending to out.segments and the force
  // integrals) without computing coefficients.
  void accumulate_body(const geom::Body& body, int body_index, int seg_begin,
                       SurfaceStats& out) const;

  int nseg_ = 0;
  unsigned lanes_ = 0;
  double span_ = 1.0;
  bool axisymmetric_ = false;
  int samples_ = 0;
  std::vector<double> sums_;       // nseg * kMoments, lane-reduced
  std::vector<double> lane_sums_;  // lanes * nseg * kMoments (per-step)
  std::uint64_t events_total_ = 0;
  std::vector<std::uint64_t> lane_events_;  // per-step raw event tallies
};

}  // namespace cmdsmc::core
