#include "cli/args.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>

namespace cmdsmc::cli {

namespace {

std::string join(const std::vector<std::string>& items) {
  std::ostringstream os;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ", ";
    os << items[i];
  }
  return os.str();
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::vector<KeyValue> parse_key_values(
    const std::vector<std::string>& tokens) {
  std::vector<KeyValue> out;
  out.reserve(tokens.size());
  for (const std::string& tok : tokens) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos)
      throw ArgError("expected key=value, got '" + tok + "'");
    if (eq == 0) throw ArgError("empty key in '" + tok + "'");
    out.push_back({tok.substr(0, eq), tok.substr(eq + 1)});
  }
  return out;
}

std::vector<KeyValue> parse_key_values(int argc, char** argv, int start) {
  std::vector<std::string> tokens;
  for (int i = start; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse_key_values(tokens);
}

int parse_int(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0')
    throw ArgError(key + ": '" + value + "' is not an integer");
  if (errno == ERANGE || v < INT_MIN || v > INT_MAX)
    throw ArgError(key + ": '" + value + "' is out of integer range");
  return static_cast<int>(v);
}

std::uint64_t parse_uint64(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  // Base 0 so seeds can be given in hex (seed=0x5eed).
  const unsigned long long v = std::strtoull(value.c_str(), &end, 0);
  if (value.empty() || end == value.c_str() || *end != '\0' ||
      value.front() == '-')
    throw ArgError(key + ": '" + value + "' is not an unsigned integer");
  if (errno == ERANGE)
    throw ArgError(key + ": '" + value + "' is out of range");
  return static_cast<std::uint64_t>(v);
}

double parse_double(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == value.c_str() || *end != '\0')
    throw ArgError(key + ": '" + value + "' is not a number");
  if (errno == ERANGE)
    throw ArgError(key + ": '" + value + "' is out of range");
  return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
  const std::string v = lower(value);
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  throw ArgError(key + ": '" + value + "' is not a boolean (use 0/1, "
                 "true/false, on/off, yes/no)");
}

void throw_unknown_key(const std::string& key,
                       const std::vector<std::string>& valid) {
  throw ArgError("unknown key '" + key + "'; valid keys: " + join(valid));
}

void throw_bad_choice(const std::string& key, const std::string& value,
                      const std::vector<std::string>& choices) {
  throw ArgError(key + ": '" + value + "' is not one of: " + join(choices));
}

std::string error_json(const std::string& type, const std::string& message) {
  std::string out = "{\"error\": {\"type\": \"";
  const auto escape = [&out](const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n' || c == '\r' || c == '\t') {
        out += ' ';
        continue;
      }
      out += c;
    }
  };
  escape(type);
  out += "\", \"message\": \"";
  escape(message);
  out += "\"}}";
  return out;
}

int error_exit_code(const std::exception& e) {
  if (dynamic_cast<const ArgError*>(&e) != nullptr) return 2;
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) return 2;
  return 3;
}

const char* error_type(const std::exception& e) {
  if (dynamic_cast<const ArgError*>(&e) != nullptr) return "usage";
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
    return "config";
  return "runtime";
}

}  // namespace cmdsmc::cli
