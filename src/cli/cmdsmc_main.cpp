// cmdsmc — the single entry point to every registered scenario.
//
//   cmdsmc list                          all scenarios, one line each
//   cmdsmc describe <scenario>           full spec + valid override keys
//   cmdsmc describe --all                markdown table (docs/scenarios.md)
//   cmdsmc run <scenario> [key=value ..] run with overrides
//
// Overrides address any SimConfig field, the body factory parameters
// (body.*), the run schedule and the output sinks by name; a misspelled
// key is an error listing the valid keys, never a silent no-op.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace {

using namespace cmdsmc;

int usage(std::FILE* to) {
  std::fprintf(to,
               "usage: cmdsmc <command> [...]\n"
               "\n"
               "  list                           list registered scenarios\n"
               "  describe <scenario> | --all    show a scenario (or a\n"
               "                                 markdown table of all)\n"
               "  run <scenario> [key=value ..]  run with overrides\n"
               "\n"
               "examples:\n"
               "  cmdsmc run wedge-mach4 steps=200\n"
               "  cmdsmc run cylinder-mach10 mach=8 body.twall=0.5 "
               "body.facets=48\n"
               "  cmdsmc run tandem_cylinders body1.x0=100 steps=400\n"
               "  cmdsmc run wedge-mach4 precision=fixed lambda=0.5 "
               "sinks=ascii,json\n"
               "  cmdsmc run wedge-mach4 telemetry=out.jsonl "
               "trace=out.trace.json progress=1\n");
  return to == stderr ? 2 : 0;
}

int cmd_list() {
  std::printf("%-22s %s\n", "scenario", "description");
  for (const auto& s : scenario::all_scenarios())
    std::printf("%-22s %s\n", s.name.c_str(), s.description.c_str());
  return 0;
}

std::string grid_string(const core::SimConfig& cfg) {
  std::string g = std::to_string(cfg.nx) + "x" + std::to_string(cfg.ny);
  if (cfg.nz > 0) g += "x" + std::to_string(cfg.nz);
  if (cfg.axisymmetric) g += " (z-r)";
  return g;
}

std::string body_string(const scenario::ScenarioSpec& s) {
  std::string out;
  for (const scenario::BodySpec& b : s.bodies) {
    if (b.kind == scenario::BodyKind::kNone) continue;
    if (!out.empty()) out += " + ";
    out += scenario::body_kind_name(b.kind);
  }
  if (!out.empty()) return out;
  if (s.config.has_wedge) return "wedge (legacy)";
  return "none";
}

int cmd_describe_all() {
  std::printf("| scenario | grid | Mach | lambda_inf | body | schedule | "
              "description |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  for (const auto& s : scenario::all_scenarios()) {
    std::printf("| `%s` | %s | %g | %g | %s | %d+%d | %s |\n", s.name.c_str(),
                grid_string(s.config).c_str(), s.config.mach,
                s.config.lambda_inf, body_string(s).c_str(),
                s.schedule.steady_steps, s.schedule.avg_steps,
                s.description.c_str());
  }
  return 0;
}

int cmd_describe(const std::string& name) {
  const scenario::ScenarioSpec spec = scenario::get_scenario(name);
  std::printf("%s\n  %s\n\n", spec.name.c_str(), spec.description.c_str());
  std::printf("  grid        %s\n", grid_string(spec.config).c_str());
  std::printf("  mach        %g\n", spec.config.mach);
  std::printf("  sigma       %g\n", spec.config.sigma);
  std::printf("  lambda_inf  %g\n", spec.config.lambda_inf);
  std::printf("  ppc         %g\n", spec.config.particles_per_cell);
  std::printf("  body        %s\n", body_string(spec).c_str());
  std::printf("  schedule    %d steady + %d averaging steps\n",
              spec.schedule.steady_steps, spec.schedule.avg_steps);
  std::printf("  sinks      ");
  for (const auto& sink : spec.sinks) std::printf(" %s", sink.c_str());
  std::printf("\n\noverride keys (key=value):\n");
  for (const std::string& key : scenario::override_keys())
    std::printf("  %-30s %s\n", key.c_str(),
                scenario::override_help(key).c_str());
  std::printf(
      "\nbody.* keys address scene body N as body<N>.* (body0.* == body.*);\n"
      "mentioning a new index appends a body, e.g.\n"
      "  cmdsmc run %s body1.kind=cylinder body1.x0=80 body1.y0=32 "
      "body1.radius=4\n",
      spec.name.c_str());
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "run: missing scenario name\n");
    return usage(stderr);
  }
  scenario::ScenarioSpec spec = scenario::get_scenario(argv[2]);
  scenario::apply_overrides(spec, cli::parse_key_values(argc, argv, 3));

  scenario::Runner runner(std::move(spec));
  runner.add_spec_sinks();
  const scenario::RunResult result = runner.run();
  if (result.counters.synthesized > 0)
    std::fprintf(stderr,
                 "warning: %llu synthesized injections (reservoir ran dry)\n",
                 static_cast<unsigned long long>(
                     result.counters.synthesized));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "describe") {
      if (argc < 3) {
        std::fprintf(stderr, "describe: missing scenario name (or --all)\n");
        return usage(stderr);
      }
      if (std::strcmp(argv[2], "--all") == 0) return cmd_describe_all();
      return cmd_describe(argv[2]);
    }
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cmdsmc: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage(stderr);
}
