// cmdsmc — the single entry point to every registered scenario.
//
//   cmdsmc list                          all scenarios, one line each
//   cmdsmc describe <scenario>           full spec + valid override keys
//   cmdsmc describe --all                markdown table (docs/scenarios.md)
//   cmdsmc run <scenario> [key=value ..] run with overrides
//   cmdsmc sweep <scenario> [..]         expand sweep:key=... into a job
//                                        list and run it on the fleet
//   cmdsmc serve [..]                    long-running service: job specs
//                                        from stdin or a spool directory
//
// Overrides address any SimConfig field, the body factory parameters
// (body.*), the run schedule and the output sinks by name; a misspelled
// key is an error listing the valid keys, never a silent no-op.  Every
// failure exits non-zero with one machine-readable JSON error line on
// stdout (exit 2: bad arguments/config; exit 3: runtime failure).
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "fleet/scheduler.h"
#include "fleet/serve.h"
#include "fleet/sweep.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace {

using namespace cmdsmc;

int usage(std::FILE* to) {
  std::fprintf(to,
               "usage: cmdsmc <command> [...]\n"
               "\n"
               "  list                           list registered scenarios\n"
               "  describe <scenario> | --all    show a scenario (or a\n"
               "                                 markdown table of all)\n"
               "  run <scenario> [key=value ..]  run with overrides\n"
               "  sweep <scenario> [key=value ..] [sweep:key=v1,v2 ..]\n"
               "                                 expand a parameter sweep\n"
               "                                 and run it on the fleet\n"
               "  serve [fleet.* ..] [spool=DIR] [once=1] [key=value ..]\n"
               "                                 service mode: job specs\n"
               "                                 from stdin or a spool dir,\n"
               "                                 JSONL results on stdout\n"
               "\n"
               "examples:\n"
               "  cmdsmc run wedge-mach4 steps=200\n"
               "  cmdsmc run cylinder-mach10 mach=8 body.twall=0.5 "
               "body.facets=48\n"
               "  cmdsmc run wedge-mach4 telemetry=out.jsonl "
               "trace=out.trace.json progress=1\n"
               "  cmdsmc sweep wedge-mach4 steps=200 sweep:mach=4,8,12 \\\n"
               "      sweep:lambda=0.01..1/8 fleet.threads=8 "
               "fleet.dir=sweep_out\n"
               "  echo 'cylinder-mach10 mach=12 steps=100' | cmdsmc serve "
               "once=1\n");
  return to == stderr ? 2 : 0;
}

int cmd_list() {
  std::printf("%-22s %s\n", "scenario", "description");
  for (const auto& s : scenario::all_scenarios())
    std::printf("%-22s %s\n", s.name.c_str(), s.description.c_str());
  return 0;
}

std::string grid_string(const core::SimConfig& cfg) {
  std::string g = std::to_string(cfg.nx) + "x" + std::to_string(cfg.ny);
  if (cfg.nz > 0) {
    g += 'x';
    g += std::to_string(cfg.nz);
  }
  if (cfg.axisymmetric) g += " (z-r)";
  return g;
}

std::string body_string(const scenario::ScenarioSpec& s) {
  std::string out;
  for (const scenario::BodySpec& b : s.bodies) {
    if (b.kind == scenario::BodyKind::kNone) continue;
    if (!out.empty()) out += " + ";
    out += scenario::body_kind_name(b.kind);
  }
  if (!out.empty()) return out;
  if (s.config.has_wedge) return "wedge (legacy)";
  return "none";
}

int cmd_describe_all() {
  std::printf("| scenario | grid | Mach | lambda_inf | body | schedule | "
              "description |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  for (const auto& s : scenario::all_scenarios()) {
    std::printf("| `%s` | %s | %g | %g | %s | %d+%d | %s |\n", s.name.c_str(),
                grid_string(s.config).c_str(), s.config.mach,
                s.config.lambda_inf, body_string(s).c_str(),
                s.schedule.steady_steps, s.schedule.avg_steps,
                s.description.c_str());
  }
  return 0;
}

int cmd_describe(const std::string& name) {
  const scenario::ScenarioSpec spec = scenario::get_scenario(name);
  std::printf("%s\n  %s\n\n", spec.name.c_str(), spec.description.c_str());
  std::printf("  grid        %s\n", grid_string(spec.config).c_str());
  std::printf("  mach        %g\n", spec.config.mach);
  std::printf("  sigma       %g\n", spec.config.sigma);
  std::printf("  lambda_inf  %g\n", spec.config.lambda_inf);
  std::printf("  ppc         %g\n", spec.config.particles_per_cell);
  std::printf("  body        %s\n", body_string(spec).c_str());
  std::printf("  schedule    %d steady + %d averaging steps\n",
              spec.schedule.steady_steps, spec.schedule.avg_steps);
  std::printf("  sinks      ");
  for (const auto& sink : spec.sinks) std::printf(" %s", sink.c_str());
  std::printf("\n\noverride keys (key=value):\n");
  for (const std::string& key : scenario::override_keys())
    std::printf("  %-30s %s\n", key.c_str(),
                scenario::override_help(key).c_str());
  std::printf(
      "\nbody.* keys address scene body N as body<N>.* (body0.* == body.*);\n"
      "mentioning a new index appends a body, e.g.\n"
      "  cmdsmc run %s body1.kind=cylinder body1.x0=80 body1.y0=32 "
      "body1.radius=4\n",
      spec.name.c_str());
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "run: missing scenario name\n");
    return usage(stderr);
  }
  scenario::ScenarioSpec spec = scenario::get_scenario(argv[2]);
  scenario::apply_overrides(spec, cli::parse_key_values(argc, argv, 3));

  scenario::Runner runner(std::move(spec));
  runner.add_spec_sinks();
  const scenario::RunResult result = runner.run();
  if (result.counters.synthesized > 0)
    std::fprintf(stderr,
                 "warning: %llu synthesized injections (reservoir ran dry)\n",
                 static_cast<unsigned long long>(
                     result.counters.synthesized));
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "sweep: missing scenario name\n");
    return usage(stderr);
  }
  fleet::SweepRequest request;
  request.scenario = argv[2];
  fleet::FleetOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string token = argv[i];
    if (fleet::is_sweep_token(token)) {
      request.axes.push_back(fleet::parse_sweep_axis(token));
      continue;
    }
    const cli::KeyValue kv = cli::parse_key_values({token})[0];
    if (fleet::apply_fleet_option(options, kv.key, kv.value)) continue;
    request.fixed.push_back(kv);
  }

  const std::vector<fleet::FleetJob> jobs = fleet::expand_sweep(request);
  fleet::FleetScheduler scheduler(options);
  fleet::FleetMeta meta;
  meta.scenario = request.scenario;
  for (const fleet::SweepAxis& axis : request.axes)
    meta.axis_keys.push_back(axis.key);
  meta.fleet_threads = scheduler.options().fleet_threads;
  meta.job_threads = scheduler.options().job_threads;
  scheduler.set_meta(meta);

  std::fprintf(stderr,
               "sweep: %zu jobs on %u fleet threads x %u job threads -> %s\n",
               jobs.size(), scheduler.options().fleet_threads,
               scheduler.options().job_threads, scheduler.options().dir.c_str());
  scheduler.submit(jobs);
  const fleet::FleetSummary summary = scheduler.finish();
  std::fprintf(stderr,
               "sweep: %zu done + %zu cached + %zu failed + %zu skipped in "
               "%.2fs (%.2f jobs/s); aggregate %s\n",
               summary.completed, summary.cached, summary.failed,
               summary.skipped, summary.elapsed_seconds,
               summary.jobs_per_second, summary.aggregate_path.c_str());
  if (summary.failed > 0) {
    std::cout << cli::error_json("jobs",
                                 std::to_string(summary.failed) +
                                     " job(s) failed; see " +
                                     summary.manifest_path)
              << "\n";
    return 3;
  }
  return 0;
}

int cmd_serve(int argc, char** argv) {
  fleet::ServeOptions options;
  for (int i = 2; i < argc; ++i) {
    const cli::KeyValue kv = cli::parse_key_values({std::string(argv[i])})[0];
    if (fleet::apply_serve_option(options, kv.key, kv.value)) continue;
    if (fleet::apply_fleet_option(options.fleet, kv.key, kv.value)) continue;
    // Anything else is a default override applied to every request line.
    options.defaults.push_back(kv);
  }
  return fleet::run_serve(std::move(options), std::cin, std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "describe") {
      if (argc < 3) {
        std::fprintf(stderr, "describe: missing scenario name (or --all)\n");
        return usage(stderr);
      }
      if (std::strcmp(argv[2], "--all") == 0) return cmd_describe_all();
      return cmd_describe(argv[2]);
    }
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(stdout);
  } catch (const std::exception& e) {
    // Contract: non-zero exit + one machine-readable JSON error line on
    // stdout (exit 2 for argument/config errors, 3 for runtime failures);
    // the human-readable message goes to stderr.  Fleet failure isolation
    // and external orchestrators key on this.
    std::printf("%s\n", cli::error_json(cli::error_type(e), e.what()).c_str());
    std::fprintf(stderr, "cmdsmc: %s\n", e.what());
    return cli::error_exit_code(e);
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage(stderr);
}
