// Strict key=value argument parsing for the scenario/runner layer.
//
// The legacy per-binary parsers silently ignored unknown flags and pushed
// every value through atof (so "--facets 36.9" truncated and "--mahc 8"
// did nothing).  This layer is the opposite: every token must be a
// well-formed `key=value` pair, unknown keys raise an error that lists the
// valid keys, and integers are parsed as integers — trailing junk or a
// fractional part is a hard error, not a truncation.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace cmdsmc::cli {

// All parse/override failures throw this; the CLI prints .what() and exits
// nonzero.
class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct KeyValue {
  std::string key;
  std::string value;
};

// Splits `key=value` tokens.  A token without '=' or with an empty key is
// an ArgError.
std::vector<KeyValue> parse_key_values(const std::vector<std::string>& tokens);
std::vector<KeyValue> parse_key_values(int argc, char** argv, int start);

// Strict scalar parsing: the whole token must be consumed.  `key` is used
// in the error message only.
int parse_int(const std::string& key, const std::string& value);
std::uint64_t parse_uint64(const std::string& key, const std::string& value);
double parse_double(const std::string& key, const std::string& value);
// Accepts 0/1, true/false, on/off, yes/no (case-insensitive).
bool parse_bool(const std::string& key, const std::string& value);

// Raises ArgError naming the offending key and listing every valid key.
[[noreturn]] void throw_unknown_key(const std::string& key,
                                    const std::vector<std::string>& valid);

// Raises ArgError naming the key and listing the accepted choices (for
// enum-valued keys like wall=specular|diffuse_isothermal|...).
[[noreturn]] void throw_bad_choice(const std::string& key,
                                   const std::string& value,
                                   const std::vector<std::string>& choices);

// --- Machine-readable failure reporting -------------------------------------
// `cmdsmc run` (and the fleet's failure isolation) promise a non-zero exit
// plus one parseable error line on any failure.  These two helpers are the
// single definition of that contract.

// One JSON line: {"error": {"type": "<type>", "message": "<message>"}}.
std::string error_json(const std::string& type, const std::string& message);

// Exit-code/type classification shared by the CLI commands:
//   ArgError / std::invalid_argument (validate())  -> 2, "usage"/"config"
//   anything else (runtime failure)                -> 3, "runtime"
int error_exit_code(const std::exception& e);
const char* error_type(const std::exception& e);

}  // namespace cmdsmc::cli
