// The run telemetry consumer: one StepObserver that fans a simulation's
// per-step stats out to
//   - a JSONL metrics stream (one JSON object per recorded step),
//   - a Chrome trace-event file (one span per phase per step on a control
//     track, plus one track per lane), viewable in Perfetto, and
//   - a stderr progress heartbeat (step, particles, usec/particle, ETA).
// Attach with Simulation::set_step_observer; the Runner wires it to the
// `telemetry= trace= progress=` overrides.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>

#include "io/chrome_trace.h"
#include "obs/step_stats.h"

namespace cmdsmc::obs {

struct TelemetryOptions {
  std::string jsonl_path;  // empty: no metrics stream
  std::string trace_path;  // empty: no trace
  // Record every Nth step (steps with step % every == 0).  The progress
  // heartbeat, when on, observes every step regardless so its rates stay
  // exact.
  int every = 1;
  bool progress = false;
  // Total steps the run is expected to take (warmup + averaging), for the
  // heartbeat's ETA; 0 = unknown.
  std::int64_t expected_steps = 0;
  // Heartbeat destination; nullptr = std::cerr (tests substitute a stream).
  std::ostream* progress_stream = nullptr;
};

class TelemetrySession final : public StepObserver {
 public:
  explicit TelemetrySession(TelemetryOptions opts);
  ~TelemetrySession() override;

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  // False when a requested output file failed to open.
  bool ok() const { return ok_; }

  bool wants_step(std::int64_t step) const override;
  void on_step(const StepStats& stats) override;

  // Flushes the JSONL stream and closes the trace array; idempotent (the
  // destructor calls it).  After finish() the session records nothing more.
  void finish();

  std::int64_t steps_recorded() const { return records_; }

 private:
  void write_trace(const StepStats& s);
  void write_progress(const StepStats& s);

  TelemetryOptions opts_;
  bool ok_ = true;
  bool finished_ = false;
  std::ofstream jsonl_;
  io::ChromeTraceWriter trace_;
  std::string line_;  // reused JSONL formatting buffer

  std::int64_t records_ = 0;
  std::int64_t steps_seen_ = 0;
  std::int64_t first_step_ = 0;
  double trace_ts_us_ = 0.0;  // monotonic span cursor (recorded steps only)
  bool tracks_named_ = false;

  using Clock = std::chrono::steady_clock;
  Clock::time_point wall_start_;
  Clock::time_point last_progress_;
};

}  // namespace cmdsmc::obs
