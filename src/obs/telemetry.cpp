#include "obs/telemetry.h"

#include <cstdio>
#include <iostream>

#include "io/telemetry_jsonl.h"

namespace cmdsmc::obs {

namespace {

// Trace track ids: the control thread's phase spans on track 0, one track
// per lane starting at 100 (the gap keeps future control-side tracks from
// colliding with lane tracks).
constexpr int kControlTrack = 0;
constexpr int kLaneTrackBase = 100;

// Fused reporting pairs (select's zero slot folds into collide), matching
// the JSONL schema.
struct FusedPhase {
  const char* name;
  int a;
  int b;
};
constexpr FusedPhase kFused[4] = {
    {"move", StepStats::kMove, -1},
    {"sort", StepStats::kSort, -1},
    {"select_collide", StepStats::kSelect, StepStats::kCollide},
    {"sample", StepStats::kSample, -1},
};

}  // namespace

TelemetrySession::TelemetrySession(TelemetryOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.every < 1) opts_.every = 1;
  if (!opts_.jsonl_path.empty()) {
    jsonl_.open(opts_.jsonl_path, std::ios::out | std::ios::trunc);
    if (!jsonl_.is_open()) ok_ = false;
  }
  if (!opts_.trace_path.empty()) {
    trace_.open(opts_.trace_path);
    if (!trace_.ok()) ok_ = false;
  }
}

TelemetrySession::~TelemetrySession() { finish(); }

bool TelemetrySession::wants_step(std::int64_t step) const {
  if (finished_) return false;
  // The heartbeat needs every step for exact rates; the streams record on
  // the cadence only.
  return opts_.progress || step % opts_.every == 0;
}

void TelemetrySession::on_step(const StepStats& s) {
  if (finished_) return;
  if (steps_seen_ == 0) {
    wall_start_ = Clock::now();
    last_progress_ = wall_start_ - std::chrono::hours(1);
    first_step_ = s.step;
  }
  ++steps_seen_;
  if (s.step % opts_.every == 0) {
    ++records_;
    if (jsonl_.is_open()) {
      io::telemetry_json_line(s, line_);
      line_ += '\n';
      jsonl_ << line_;
    }
    if (trace_.is_open()) write_trace(s);
  }
  if (opts_.progress) write_progress(s);
}

void TelemetrySession::write_trace(const StepStats& s) {
  if (!tracks_named_) {
    trace_.thread_name(kControlTrack, "control", 0);
    // With one lane the control track is the lane (stop() credits lane 0
    // with the full aggregate); naming a spanless lane track would just
    // leave an empty row in Perfetto.
    for (unsigned t = 0; s.lanes > 1 && t < s.lanes; ++t) {
      char name[32];
      std::snprintf(name, sizeof(name), "lane %u", t);
      trace_.thread_name(kLaneTrackBase + static_cast<int>(t), name,
                         10 + static_cast<int>(t));
    }
    tracks_named_ = true;
  }
  // The cursor is rebuilt from the recorded step durations, so the trace
  // timeline is the run's busy time over the recorded steps (gaps from the
  // cadence are compressed out).
  for (const FusedPhase& f : kFused) {
    double dur = s.phase_seconds[f.a];
    if (f.b >= 0) dur += s.phase_seconds[f.b];
    if (dur <= 0.0) continue;
    const double dur_us = dur * 1e6;
    trace_.span(f.name, trace_ts_us_, dur_us, kControlTrack);
    if (s.lanes > 1) {
      for (unsigned t = 0; t < s.lanes; ++t) {
        double lt = s.lane_second(f.a, t);
        if (f.b >= 0) lt += s.lane_second(f.b, t);
        if (lt <= 0.0) continue;
        trace_.span(f.name, trace_ts_us_, lt * 1e6,
                    kLaneTrackBase + static_cast<int>(t));
      }
    }
    trace_ts_us_ += dur_us;
  }
}

void TelemetrySession::write_progress(const StepStats& s) {
  const Clock::time_point now = Clock::now();
  const bool last =
      opts_.expected_steps > 0 &&
      s.step - first_step_ + 1 >= opts_.expected_steps;
  if (!last && now - last_progress_ < std::chrono::seconds(1)) return;
  last_progress_ = now;
  const double elapsed =
      std::chrono::duration<double>(now - wall_start_).count();
  const double done = static_cast<double>(s.step - first_step_ + 1);
  const double usec_per_particle =
      s.total > 0 ? s.step_seconds * 1e6 / static_cast<double>(s.total) : 0.0;
  char buf[192];
  if (opts_.expected_steps > 0) {
    const double eta =
        done > 0 ? elapsed * (static_cast<double>(opts_.expected_steps) -
                              done) /
                       done
                 : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "[telemetry] step %lld/%lld  particles %llu  %.3f "
                  "us/particle  eta %.1fs\n",
                  static_cast<long long>(s.step),
                  static_cast<long long>(first_step_ + opts_.expected_steps -
                                         1),
                  static_cast<unsigned long long>(s.total), usec_per_particle,
                  eta < 0.0 ? 0.0 : eta);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "[telemetry] step %lld  particles %llu  %.3f "
                  "us/particle  elapsed %.1fs\n",
                  static_cast<long long>(s.step),
                  static_cast<unsigned long long>(s.total), usec_per_particle,
                  elapsed);
  }
  std::ostream& os =
      opts_.progress_stream != nullptr ? *opts_.progress_stream : std::cerr;
  os << buf;
  os.flush();
}

void TelemetrySession::finish() {
  if (finished_) return;
  finished_ = true;
  if (jsonl_.is_open()) jsonl_.close();
  trace_.close();
}

}  // namespace cmdsmc::obs
