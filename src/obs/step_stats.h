// Per-step run telemetry: the metrics record the Simulation fills once per
// observed step and hands to an attached StepObserver.
//
// The paper's headline result is a per-run wall-clock phase breakdown; this
// struct is the per-step refinement of it — phase seconds, per-lane busy
// seconds and a load-imbalance gauge (the direct input a future
// repartitioner needs), plus the particle census, collision statistics and
// the per-cell occupancy spread the sort plan already computes and used to
// throw away.
//
// Deliberately free of core/ includes: counters arrive as plain integers so
// consumers (io writers, benches, tests) can depend on this header alone.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cmdsmc::obs {

struct StepStats {
  // Phase slots, in Table A order.  Slot kSelect exists for layout compat
  // with Simulation::Phase; it reads 0 since the select/collide fusion and
  // writers report the fused select+collide entry.
  static constexpr int kPhases = 5;
  static constexpr int kMove = 0, kSort = 1, kSelect = 2, kCollide = 3,
                       kSample = 4;
  // Display names of the phase slots (shared by the jsonl and trace
  // writers, so the two outputs cannot drift apart).
  static const char* phase_name(int p) {
    static const char* names[kPhases] = {"move", "sort", "select",
                                         "select_collide", "sample"};
    return names[p];
  }

  // 0-based index of the step these stats describe (the step just executed).
  std::int64_t step = 0;

  // --- Particle census ---
  std::uint64_t flow = 0;
  std::uint64_t reservoir = 0;
  std::uint64_t total = 0;
  // Statistical-weight-weighted flow census (axisymmetric runs weight each
  // simulator by its annular cell volume; planar runs: == flow).
  double weighted_census = 0.0;

  // --- Per-step counter deltas ---
  std::uint64_t candidates = 0;  // candidate pairs examined this step
  std::uint64_t collisions = 0;  // flow pairs collided this step
  std::uint64_t reservoir_collisions = 0;
  std::uint64_t removed = 0;
  std::uint64_t injected = 0;
  std::uint64_t synthesized = 0;
  std::uint64_t cloned = 0;
  std::uint64_t merged = 0;
  // Wall reflections recorded this step (0 unless surface sampling is on —
  // the move loop only routes events to the sampler then).
  std::uint64_t wall_events = 0;
  // (collisions + reservoir_collisions) / candidates; reservoir pairs
  // collide unconditionally, flow pairs via the eq. 8 acceptance test.
  double accept_rate = 0.0;

  // --- Cumulative counters (run totals at the end of this step) ---
  std::uint64_t cum_candidates = 0;
  std::uint64_t cum_collisions = 0;

  // --- Per-cell occupancy over open flow cells (open_fraction > 0),
  // straight from the sort plan's per-cell counts ---
  std::uint32_t occ_min = 0;
  std::uint32_t occ_max = 0;
  double occ_mean = 0.0;

  // Bytes held by the reusable scratch (pool workspace arena + the
  // simulation's sort key/order/table buffers).
  std::size_t arena_bytes = 0;

  // --- Cell-block sharding (zeros while sharding is inactive: disabled,
  // or a single-lane pool) ---
  unsigned shards = 0;              // shard count of the executing plan
  std::uint64_t repartitions = 0;   // cumulative shard-plan rebuilds
  // Predicted max-lane / mean-lane cost (blended per-cell cost model) of
  // the assignment this step executed under, and the same gauge evaluated
  // right after the most recent repartition.  Together with the measured
  // per-phase `imbalance` below, the pair shows the balancer working:
  // drift pushes cost_imbalance above post_imbalance until a repartition
  // snaps it back.
  double cost_imbalance = 0.0;
  double post_imbalance = 0.0;

  // --- Invariant audit (zeros unless an auditor is attached, which
  // requires a -DCMDSMC_AUDIT=1 build + audit=1 at runtime) ---
  bool audit_active = false;
  std::uint64_t audit_checks = 0;      // cumulative checks up to this step
  std::uint64_t audit_violations = 0;  // cumulative violations (0 = healthy)

  // --- Timing ---
  // Control-thread wall seconds per phase slot, this step only.
  std::array<double, kPhases> phase_seconds{};
  double step_seconds = 0.0;  // sum of the slots
  // Per-lane busy seconds inside the step's parallel regions, phase-major:
  // lane_seconds[p * lanes + tid].  Serial fallbacks run on the control
  // thread and are credited to lane 0 only when lanes == 1 (where lane 0
  // equals the aggregate by construction); with more lanes they appear in
  // phase_seconds but in no lane — so sum(lanes) <= phase aggregate.
  unsigned lanes = 0;
  std::vector<double> lane_seconds;
  // Load-imbalance gauge per phase: max-lane / mean-lane busy seconds
  // (1.0 = perfectly balanced, 0 when the phase recorded no lane time).
  std::array<double, kPhases> imbalance{};

  double lane_second(int phase, unsigned tid) const {
    return lane_seconds[static_cast<std::size_t>(phase) * lanes + tid];
  }
};

// Consumer interface.  The Simulation checks `wants_step` before computing
// the (cheap but not free) stats, and calls `on_step` from the control
// thread between steps — implementations need no locking against the
// simulation but must not mutate it.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  // Return false to skip stats collection for `step` entirely.
  virtual bool wants_step(std::int64_t step) const {
    (void)step;
    return true;
  }
  virtual void on_step(const StepStats& stats) = 0;
};

}  // namespace cmdsmc::obs
