// Wall-model extension (paper "Future Work": "the boundary conditions
// should include no slip adiabatic and isothermal walls"): the same wedge
// flow with (a) the paper's inviscid specular surface, (b) a diffuse
// isothermal (cold) wall, (c) a diffuse adiabatic wall.  Prints the
// near-surface slip velocity and temperature, showing the boundary-layer
// behaviour the specular model cannot produce.
#include <cstdio>

#include "core/simulation.h"
#include "io/shock_analysis.h"

namespace {

using namespace cmdsmc;

void run_wall(geom::WallModel wall, double wall_sigma, const char* name) {
  core::SimConfig cfg;
  cfg.nx = 98;
  cfg.ny = 64;
  cfg.mach = 4.0;
  cfg.sigma = 0.12;
  cfg.lambda_inf = 0.5;
  cfg.particles_per_cell = 12.0;
  cfg.wedge_x0 = 20.0;
  cfg.wedge_base = 25.0;
  cfg.wedge_angle_deg = 30.0;
  cfg.wall = wall;
  cfg.wall_sigma = wall_sigma;
  core::SimulationD sim(cfg);
  sim.run(500);
  sim.set_sampling(true);
  sim.run(500);
  const auto f = sim.field();

  // Tangential speed and temperature in the first cell above mid-wedge.
  const int ix = 37;
  const int iy = static_cast<int>(sim.wedge()->surface_y(ix + 0.5)) + 1;
  const double ux = f.at(f.ux, ix, iy);
  const double uy = f.at(f.uy, ix, iy);
  const double speed = std::sqrt(ux * ux + uy * uy);
  const double t_surf = f.at(f.t_total, ix, iy);
  const auto fit = io::measure_oblique_shock(f, *sim.wedge());
  std::printf("%-22s %14.3f %14.2f %12.2f %12.2f\n", name, speed, t_surf,
              fit.angle_deg, fit.density_ratio);
}

}  // namespace

int main() {
  std::printf("wall-model extension: rarefied Mach 4 wedge "
              "(freestream speed = 0.57 cells/step, T_inf = 1)\n\n");
  std::printf("%-22s %14s %14s %12s %12s\n", "wall model", "surface speed",
              "surface T/Tinf", "shock angle", "rho ratio");
  run_wall(cmdsmc::geom::WallModel::kSpecular, 0.12, "specular (paper)");
  run_wall(cmdsmc::geom::WallModel::kDiffuseIsothermal, 0.12,
           "diffuse isothermal");
  run_wall(cmdsmc::geom::WallModel::kDiffuseAdiabatic, 0.12,
           "diffuse adiabatic");
  std::printf("\n(diffuse walls enforce no slip: the surface speed drops and "
              "the isothermal wall cools the shock layer; the specular wall "
              "preserves the full tangential velocity)\n");
  return 0;
}
