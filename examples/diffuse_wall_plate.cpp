// Wall-model extension (paper "Future Work": "the boundary conditions
// should include no slip adiabatic and isothermal walls"): the
// `flat-plate-diffuse` registry scenario run three times with (a) the
// paper's inviscid specular surface, (b) a diffuse isothermal (cold) wall,
// (c) a diffuse adiabatic wall — the `body.wall` override is the only
// difference between the runs.  The surface-flux instrumentation shows the
// boundary-layer behaviour the specular model cannot produce: diffuse
// walls pick up shear (nonzero Cf-driven drag) and the isothermal wall
// absorbs heat while the specular and adiabatic walls cannot.
#include <cstdio>

#include "scenario/runner.h"

namespace {

using namespace cmdsmc;

void run_wall(const char* wall, const char* twall, const char* name) {
  scenario::ScenarioSpec spec = scenario::get_scenario("flat-plate-diffuse");
  scenario::apply_override(spec, "body.wall", wall);
  scenario::apply_override(spec, "body.twall", twall);
  spec.sinks.clear();  // table output only
  scenario::Runner runner(std::move(spec));
  const scenario::RunResult r = runner.run();
  std::printf("%-22s %10.3f %10.3f %12.4f %12.4f %12.4f\n", name,
              r.surface->cd, r.surface->cl, r.surface->heat_total,
              r.surface->q_incident_total, r.surface->q_reflected_total);
}

}  // namespace

int main() {
  std::printf("wall-model extension: rarefied Mach 4 flat plate at 10 deg "
              "incidence\n\n");
  std::printf("%-22s %10s %10s %12s %12s %12s\n", "wall model", "Cd", "Cl",
              "heat", "q_in", "q_out");
  try {
    run_wall("specular", "1.0", "specular (paper)");
    run_wall("diffuse_isothermal", "0.25", "diffuse isothermal");
    run_wall("diffuse_adiabatic", "1.0", "diffuse adiabatic");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "diffuse_wall_plate: %s\n", e.what());
    return 1;
  }
  std::printf("\n(diffuse walls enforce no slip: tangential momentum is "
              "accommodated and drag rises; only the isothermal wall "
              "absorbs net heat — specular and adiabatic walls re-emit "
              "every joule, q_in == q_out)\n");
  return 0;
}
