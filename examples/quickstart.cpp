// Quickstart: the paper's Mach 4 / 30-degree wedge wind tunnel at reduced
// particle count, printing an ASCII density map and the shock metrics that
// validate the solution (theoretical shock angle 45 deg, density rise 3.7x).
//
// Usage: quickstart [particles_per_cell] [steady_steps] [avg_steps]
#include <cstdio>
#include <cstdlib>

#include "core/simulation.h"
#include "io/contour.h"
#include "io/shock_analysis.h"
#include "physics/theory.h"

int main(int argc, char** argv) {
  using namespace cmdsmc;

  core::SimConfig cfg;
  cfg.nx = 98;
  cfg.ny = 64;
  cfg.mach = 4.0;
  cfg.sigma = 0.18;
  cfg.lambda_inf = 0.0;  // near continuum
  cfg.particles_per_cell = argc > 1 ? std::atof(argv[1]) : 16.0;
  cfg.wedge_x0 = 20.0;
  cfg.wedge_base = 25.0;
  cfg.wedge_angle_deg = 30.0;
  const int steady = argc > 2 ? std::atoi(argv[2]) : 400;
  const int avg = argc > 3 ? std::atoi(argv[3]) : 400;

  std::printf("cmdsmc quickstart: Mach %.1f flow over a %.0f-degree wedge\n",
              cfg.mach, cfg.wedge_angle_deg);
  core::SimulationD sim(cfg);
  std::printf("particles: %zu flow + %zu reservoir\n", sim.flow_count(),
              sim.reservoir_count());

  sim.run(steady);
  sim.set_sampling(true);
  sim.run(avg);

  const auto field = sim.field();
  io::ContourOptions opt;
  opt.vmax = 4.5;
  std::printf("\ntime-averaged density / freestream (%d samples):\n%s\n",
              field.samples, io::render_ascii(field, field.density, opt).c_str());

  // Undisturbed freestream density (region upstream of the leading edge).
  double rho_fs = 0.0;
  int nfs = 0;
  for (int ix = 5; ix < 16; ++ix)
    for (int iy = 8; iy < cfg.ny - 8; ++iy) {
      rho_fs += field.at(field.density, ix, iy);
      ++nfs;
    }
  rho_fs /= nfs;
  std::printf("freestream rho: measured %6.3f    | target    1.000\n",
              rho_fs);

  const auto fit = io::measure_oblique_shock(field, *sim.wedge());
  namespace th = physics::theory;
  const double beta =
      th::oblique_shock_angle(cfg.wedge_angle_rad(), cfg.mach);
  const double ratio = th::oblique_shock_density_ratio(beta, cfg.mach);
  std::printf("shock angle   : measured %6.2f deg | theory %6.2f deg\n",
              fit.angle_deg, beta * 180.0 / 3.14159265358979);
  std::printf("density ratio : measured %6.2f     | theory %6.2f\n",
              fit.density_ratio / rho_fs, ratio);
  std::printf("shock width   : %.1f cells (10-90%%, along shock normal)\n",
              fit.thickness_normal);
  const auto wake = io::measure_wake(field, *sim.wedge());
  std::printf("wake          : base density %.3f, recompression %s at x=%.0f\n",
              wake.base_density, wake.shock_present ? "present" : "washed out",
              wake.recovery_x);
  return 0;
}
