// Quickstart: the paper's Mach 4 / 30-degree wedge wind tunnel at reduced
// particle count — the `wedge-mach4` registry scenario driven through the
// standard Runner, printing an ASCII density map and the shock metrics
// that validate the solution (theoretical shock angle 45 deg, density rise
// 3.7x).  The same run is `cmdsmc run wedge-mach4` with any key=value
// override; this wrapper keeps the historical positional interface.
//
// Usage: quickstart [particles_per_cell] [steady_steps] [avg_steps]
// (defaults come from the registry entry: 16 ppc, 600+600 steps)
#include <cstdio>
#include <string>

#include "scenario/runner.h"

int main(int argc, char** argv) {
  using namespace cmdsmc;
  try {
    // The scenario's own 600+600 schedule is tuned to its sigma (slower
    // freestream than the original standalone example); keep it.
    scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
    if (argc > 1)
      scenario::apply_override(spec, "particles_per_cell", argv[1]);
    if (argc > 2) scenario::apply_override(spec, "steady", argv[2]);
    if (argc > 3) scenario::apply_override(spec, "avg", argv[3]);

    std::printf("cmdsmc quickstart: Mach %.1f flow over a %.0f-degree "
                "wedge\n",
                spec.config.mach, spec.config.wedge_angle_deg);
    scenario::Runner runner(std::move(spec));
    runner.add_sink(std::make_unique<scenario::AsciiContourSink>());
    runner.add_sink(std::make_unique<scenario::ConsoleReportSink>());
    runner.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 1;
  }
  return 0;
}
