// Demonstrates the paper's reservoir idea: particles removed from the flow
// are given *rectangular* velocity distributions (cheap: two random numbers
// per component, no transcendentals) and relax to the correct Maxwellian by
// colliding amongst themselves on otherwise-idle processors.
//
// The closed box of rectangular gas is the `reservoir-relax` registry
// scenario (`cmdsmc run reservoir-relax` runs it end to end); this example
// keeps the step-by-step view, printing the convergence of the
// distribution moments to Gaussian values.
#include <cstdio>

#include "core/simulation.h"
#include "rng/samplers.h"
#include "scenario/scenario.h"

namespace {

struct Moments {
  double variance_ratio;  // <u^2>/sigma^2  (target 1)
  double kurtosis;        // <u^4>/<u^2>^2  (uniform 1.8 -> Gaussian 3.0)
  double rot_trans;       // T_rot/T_trans  (target 1)
};

Moments measure(const cmdsmc::core::ParticleStore<double>& s, double sigma) {
  double m2 = 0, m4 = 0, et = 0, er = 0;
  const auto n = static_cast<double>(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    m2 += s.ux[i] * s.ux[i];
    m4 += s.ux[i] * s.ux[i] * s.ux[i] * s.ux[i];
    et += s.ux[i] * s.ux[i] + s.uy[i] * s.uy[i] + s.uz[i] * s.uz[i];
    er += s.r0[i] * s.r0[i] + s.r1[i] * s.r1[i];
  }
  m2 /= n;
  m4 /= n;
  return {m2 / (sigma * sigma), m4 / (m2 * m2), (er / 2.0) / (et / 3.0)};
}

}  // namespace

int main() {
  using namespace cmdsmc;
  const core::SimConfig cfg =
      scenario::get_scenario("reservoir-relax").build_config();
  core::SimulationD sim(cfg);

  // Replace the initial Maxwellian with the reservoir's rectangular
  // distribution (same variance), exactly what removed particles receive.
  rng::SplitMix64 g(1);
  auto& s = sim.particles();
  for (std::size_t i = 0; i < s.size(); ++i) {
    s.ux[i] = rng::sample_rectangular(g, cfg.sigma);
    s.uy[i] = rng::sample_rectangular(g, cfg.sigma);
    s.uz[i] = rng::sample_rectangular(g, cfg.sigma);
    s.r0[i] = rng::sample_rectangular(g, cfg.sigma);
    s.r1[i] = rng::sample_rectangular(g, cfg.sigma);
  }

  std::printf("reservoir relaxation: %zu particles, rectangular start\n\n",
              sim.total_count());
  std::printf("%6s %16s %12s %16s\n", "step", "variance ratio", "kurtosis",
              "T_rot/T_trans");
  const double e0 = sim.total_energy();
  for (int k = 0; k <= 10; ++k) {
    const auto m = measure(sim.particles(), cfg.sigma);
    std::printf("%6d %16.3f %12.3f %16.3f\n", k * 2, m.variance_ratio,
                m.kurtosis, m.rot_trans);
    sim.run(2);
  }
  std::printf("\ntargets: variance 1.000, kurtosis 3.000 (uniform starts at "
              "1.800), equipartition 1.000\n");
  std::printf("energy drift over the whole run: %.2e (collisions conserve "
              "exactly)\n",
              sim.total_energy() / e0 - 1.0);
  std::printf("\nthe paper: \"after a few time steps collisions with other "
              "reservoir particles relaxes these to the correct Gaussian "
              "distributions\"\n");
  return 0;
}
