// Mach 10 rarefied flow over a circular cylinder — the classic blunt-body
// scenario the paper's wedge-only geometry could not express.  Demonstrates
// the generalized Body subsystem: a faceted cylinder with diffuse-isothermal
// walls, per-facet surface coefficients (Cp / Cf / Ch) written to CSV, and
// integrated drag compared against the Newtonian impact estimate
// (Cp_max sin^2 theta => Cd = (2/3) Cp_max referenced to the diameter).
//
// Usage:
//   cylinder_mach10 [--mach M] [--radius R] [--facets N] [--lambda L]
//                   [--ppc N] [--steady S] [--avg A] [--twall F]
//                   [--out PREFIX]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/simulation.h"
#include "io/contour.h"
#include "io/csv.h"
#include "io/surface_csv.h"

namespace {

double arg_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  return fallback;
}

std::string arg_str(int argc, char** argv, const char* name,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmdsmc;

  core::SimConfig cfg;
  cfg.nx = 96;
  cfg.ny = 64;
  cfg.mach = arg_double(argc, argv, "--mach", 10.0);
  cfg.sigma = arg_double(argc, argv, "--sigma", 0.12);
  cfg.lambda_inf = arg_double(argc, argv, "--lambda", 0.5);
  cfg.particles_per_cell = arg_double(argc, argv, "--ppc", 10.0);
  cfg.seed = 0xC1C1ULL;

  const double radius = arg_double(argc, argv, "--radius", 8.0);
  const int facets =
      static_cast<int>(arg_double(argc, argv, "--facets", 36));
  // Wall temperature as a fraction of T_inf (cold-wall default).
  const double twall = arg_double(argc, argv, "--twall", 1.0);

  const int steady = static_cast<int>(arg_double(argc, argv, "--steady", 400));
  const int avg = static_cast<int>(arg_double(argc, argv, "--avg", 400));
  const std::string prefix = arg_str(argc, argv, "--out", "cylinder");

  std::printf("cmdsmc cylinder: Mach %.1f, radius %.1f cells (%d facets), "
              "lambda_inf = %g, T_wall/T_inf = %.2f\n",
              cfg.mach, radius, facets, cfg.lambda_inf, twall);
  try {
    cfg.body = geom::Body::Cylinder(32.0, 32.0, radius, facets);
    cfg.body->set_wall_model(geom::WallModel::kDiffuseIsothermal,
                             cfg.sigma * std::sqrt(twall));
    cfg.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 1;
  }

  core::SimulationD sim(cfg);
  std::printf("particles: %zu flow + %zu reservoir, grid %dx%d\n",
              sim.flow_count(), sim.reservoir_count(), cfg.nx, cfg.ny);
  std::printf("running %d steady + %d averaging steps...\n", steady, avg);
  sim.run(steady);
  sim.set_sampling(true);
  sim.set_surface_sampling(true);
  sim.run(avg);

  const auto f = sim.field();
  io::write_field_csv_file(prefix + "_density.csv", f, f.density, "rho");
  io::write_field_csv_file(prefix + "_t_total.csv", f, f.t_total, "T");

  const core::SurfaceStats s = sim.surface();
  io::write_surface_csv_file(prefix + "_surface.csv", s);
  std::printf("fields written to %s_{density,t_total}.csv, surface "
              "coefficients to %s_surface.csv\n",
              prefix.c_str(), prefix.c_str());

  io::ContourOptions opt;
  opt.vmax = 6.0;
  std::printf("\n%s\n", io::render_ascii(f, f.density, opt).c_str());

  // Stagnation-point Cp and integrated drag vs the Newtonian estimate.
  double cp_max = 0.0;
  for (const auto& seg : s.segments)
    if (seg.cp > cp_max) cp_max = seg.cp;
  const double cp_newt = 2.0;            // classic Newtonian impact limit
  const double cd_newt = 2.0 / 3.0 * cp_newt;  // referenced to the diameter
  std::printf("stagnation Cp : %6.3f (Newtonian limit %.1f)\n", cp_max,
              cp_newt);
  std::printf("drag Cd       : %6.3f (Newtonian estimate %.2f)\n", s.cd,
              cd_newt);
  std::printf("lift Cl       : %6.3f (symmetric body: ~0)\n", s.cl);
  std::printf("wall heating  : %6.3f (integrated Ch-equivalent per span)\n",
              s.heat_total);
  return 0;
}
