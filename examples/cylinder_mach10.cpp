// Mach 10 rarefied flow over a circular cylinder — the classic blunt-body
// scenario the paper's wedge-only geometry could not express, as a thin
// wrapper over the `cylinder-mach10` registry scenario.  Prints the
// stagnation Cp and integrated drag against the Newtonian impact estimate
// (Cp_max sin^2 theta => Cd = (2/3) Cp_max referenced to the diameter).
//
// Usage:
//   cylinder_mach10 [key=value ...]
// e.g.:
//   cylinder_mach10 mach=8 body.twall=0.5 body.facets=48
#include <cstdio>

#include "scenario/runner.h"

int main(int argc, char** argv) {
  using namespace cmdsmc;
  try {
    scenario::ScenarioSpec spec = scenario::get_scenario("cylinder-mach10");
    spec.output_prefix = "cylinder";
    scenario::apply_overrides(spec, cli::parse_key_values(argc, argv, 1));

    std::printf("cmdsmc cylinder: Mach %.1f, radius %.1f cells (%d facets), "
                "lambda_inf = %g, T_wall/T_inf = %.2f\n",
                spec.config.mach, spec.bodies[0].radius, spec.bodies[0].facets,
                spec.config.lambda_inf, spec.bodies[0].wall_temperature_ratio);
    scenario::Runner runner(std::move(spec));
    runner.add_spec_sinks();
    const scenario::RunResult r = runner.run();
    if (!r.surface) return 0;  // body overridden away: report sink said it all

    // Stagnation-point Cp and integrated drag vs the Newtonian estimate.
    const double cp_newt = 2.0;  // classic Newtonian impact limit
    const double cd_newt = 2.0 / 3.0 * cp_newt;  // referenced to the diameter
    std::printf("stagnation Cp : %6.3f (Newtonian limit %.1f)\n", r.cp_max(),
                cp_newt);
    std::printf("drag Cd       : %6.3f (Newtonian estimate %.2f)\n",
                r.surface->cd, cd_newt);
    std::printf("lift Cl       : %6.3f (symmetric body: ~0)\n",
                r.surface->cl);
    std::printf("wall heating  : %6.3f (incident %.3f - reflected %.3f)\n",
                r.surface->heat_total, r.surface->q_incident_total,
                r.surface->q_reflected_total);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cylinder_mach10: %s\n", e.what());
    return 1;
  }
  return 0;
}
