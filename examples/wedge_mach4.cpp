// The paper's full experiment as a thin wrapper over the `wedge-mach4`
// registry scenario: Mach M flow over a wedge, near-continuum or rarefied,
// with CSV/VTK field dumps for external plotting (figures 1-6 are views of
// these fields).
//
// Usage:
//   wedge_mach4 [key=value ...]
//
// Any scenario override is accepted (see `cmdsmc describe wedge-mach4`),
// e.g.:
//   wedge_mach4 mach=5 lambda=0.5 steady=1200 avg=2000
//   wedge_mach4 body.kind=wedge            # generalized-body path +
//                                          # per-segment surface CSV
//   wedge_mach4 precision=fixed            # the paper's Q8.23 engine
//
// The paper-size run is ppc=73 steady=1200 avg=2000.
#include <cstdio>

#include "scenario/runner.h"

int main(int argc, char** argv) {
  using namespace cmdsmc;
  try {
    scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
    spec.output_prefix = "wedge";
    spec.sinks = {"field_csv", "vtk", "surface_csv", "ascii", "report",
                  "json"};
    scenario::apply_overrides(spec, cli::parse_key_values(argc, argv, 1));

    std::printf("cmdsmc wedge wind tunnel: Mach %.2f, %g deg wedge, "
                "lambda_inf = %g (%s)\n",
                spec.config.mach, spec.config.wedge_angle_deg,
                spec.config.lambda_inf,
                spec.config.lambda_inf <= 0 ? "near continuum" : "rarefied");
    scenario::Runner runner(std::move(spec));
    runner.add_spec_sinks();
    const scenario::RunResult r = runner.run();
    std::printf("fields written to %s_{density,t_total,ux,uy}.csv and "
                "%s.vtk%s\n",
                runner.spec().output_prefix.c_str(),
                runner.spec().output_prefix.c_str(),
                r.surface ? "; surface coefficients to *_surface.csv" : "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wedge_mach4: %s\n", e.what());
    return 1;
  }
  return 0;
}
