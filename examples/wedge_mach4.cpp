// The paper's full experiment, configurable from the command line: Mach M
// flow over a wedge, near-continuum or rarefied, with CSV field dumps for
// external plotting (figures 1-6 are views of these fields).
//
// Usage:
//   wedge_mach4 [--mach M] [--angle DEG] [--lambda L] [--ppc N]
//               [--steady S] [--avg A] [--fixed] [--body] [--out PREFIX]
//
// --body routes the run through the generalized geom::Body subsystem
// (Body::Wedge) instead of the wedge-specific path, and additionally emits
// per-segment surface coefficients to PREFIX_surface.csv; the field outputs
// must match the legacy path within statistical noise.
//
// Defaults reproduce a reduced-scale version of the paper's set-up; the
// paper-size run is --ppc 73 --steady 1200 --avg 2000.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/simulation.h"
#include "io/contour.h"
#include "io/csv.h"
#include "io/shock_analysis.h"
#include "io/surface_csv.h"
#include "io/vtk.h"
#include "physics/theory.h"

namespace {

double arg_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

std::string arg_str(int argc, char** argv, const char* name,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

template <class Real>
int run(const cmdsmc::core::SimConfig& cfg, int steady, int avg,
        const std::string& prefix) {
  using namespace cmdsmc;
  core::Simulation<Real> sim(cfg);
  std::printf("particles: %zu flow + %zu reservoir, grid %dx%d (%s path)\n",
              sim.flow_count(), sim.reservoir_count(), cfg.nx, cfg.ny,
              cfg.body ? "generalized body" : "legacy wedge");
  std::printf("running %d steady + %d averaging steps...\n", steady, avg);
  sim.run(steady);
  sim.set_sampling(true);
  if (cfg.body) sim.set_surface_sampling(true);
  sim.run(avg);
  const auto f = sim.field();

  io::write_field_csv_file(prefix + "_density.csv", f, f.density, "rho");
  io::write_field_csv_file(prefix + "_t_total.csv", f, f.t_total, "T");
  io::write_field_csv_file(prefix + "_ux.csv", f, f.ux, "ux");
  io::write_field_csv_file(prefix + "_uy.csv", f, f.uy, "uy");
  io::write_vtk(prefix + ".vtk", f);
  std::printf("fields written to %s_{density,t_total,ux,uy}.csv and %s.vtk\n",
              prefix.c_str(), prefix.c_str());
  if (cfg.body) {
    const auto s = sim.surface();
    io::write_surface_csv_file(prefix + "_surface.csv", s);
    std::printf("surface Cp/Cf/Ch written to %s_surface.csv "
                "(Cd %.3f, Cl %.3f)\n",
                prefix.c_str(), s.cd, s.cl);
  }

  io::ContourOptions opt;
  opt.vmax = 4.5;
  std::printf("\n%s\n", io::render_ascii(f, f.density, opt).c_str());

  namespace th = physics::theory;
  // Shock analysis only needs the wedge outline, which both paths share.
  const geom::Wedge analysis_wedge(cfg.wedge_x0, cfg.wedge_base,
                                   cfg.wedge_angle_rad());
  const auto fit = io::measure_oblique_shock(f, analysis_wedge);
  if (fit.valid) {
    try {
      const double beta =
          th::oblique_shock_angle(cfg.wedge_angle_rad(), cfg.mach);
      std::printf("shock angle   : %6.2f deg (theory %6.2f)\n", fit.angle_deg,
                  beta * 57.2957795);
      std::printf("density ratio : %6.2f     (theory %6.2f)\n",
                  fit.density_ratio,
                  th::oblique_shock_density_ratio(beta, cfg.mach));
    } catch (const std::domain_error&) {
      std::printf("shock angle   : %6.2f deg (theory: detached)\n",
                  fit.angle_deg);
    }
    std::printf("shock width   : %4.1f cells (vertical 10-90%%)\n",
                fit.thickness_vertical);
  } else {
    std::printf("no attached oblique shock detected\n");
  }
  const auto wake = io::measure_wake(f, analysis_wedge);
  std::printf("wake base     : %.3f (%s)\n", wake.base_density,
              wake.shock_present ? "recompression present" : "washed out");
  std::printf("phase shares  : move %.0f%% sort %.0f%% select %.0f%% "
              "collide %.0f%% sample %.0f%%\n",
              100 * sim.phase_seconds(core::Simulation<Real>::kPhaseMove) /
                  sim.total_seconds(),
              100 * sim.phase_seconds(core::Simulation<Real>::kPhaseSort) /
                  sim.total_seconds(),
              100 * sim.phase_seconds(core::Simulation<Real>::kPhaseSelect) /
                  sim.total_seconds(),
              100 * sim.phase_seconds(core::Simulation<Real>::kPhaseCollide) /
                  sim.total_seconds(),
              100 * sim.phase_seconds(core::Simulation<Real>::kPhaseSample) /
                  sim.total_seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmdsmc;
  core::SimConfig cfg;
  cfg.nx = 98;
  cfg.ny = 64;
  cfg.mach = arg_double(argc, argv, "--mach", 4.0);
  cfg.sigma = arg_double(argc, argv, "--sigma", 0.09);
  cfg.lambda_inf = arg_double(argc, argv, "--lambda", 0.0);
  cfg.particles_per_cell = arg_double(argc, argv, "--ppc", 16.0);
  cfg.wedge_x0 = 20.0;
  cfg.wedge_base = 25.0;
  cfg.wedge_angle_deg = arg_double(argc, argv, "--angle", 30.0);
  const int steady =
      static_cast<int>(arg_double(argc, argv, "--steady", 600));
  const int avg = static_cast<int>(arg_double(argc, argv, "--avg", 600));
  const std::string prefix = arg_str(argc, argv, "--out", "wedge");

  std::printf("cmdsmc wedge wind tunnel: Mach %.2f, %g deg wedge, "
              "lambda_inf = %g (%s)\n",
              cfg.mach, cfg.wedge_angle_deg, cfg.lambda_inf,
              cfg.lambda_inf <= 0 ? "near continuum" : "rarefied");
  try {
    if (arg_flag(argc, argv, "--body"))
      cfg.body = geom::Body::Wedge(cfg.wedge_x0, cfg.wedge_base,
                                   cfg.wedge_angle_rad());
    cfg.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 1;
  }
  if (arg_flag(argc, argv, "--fixed")) {
    std::printf("engine: 32-bit fixed point (Q8.23, stochastic rounding)\n");
    return run<fixedpoint::Fixed32>(cfg, steady, avg, prefix);
  }
  std::printf("engine: double precision\n");
  return run<double>(cfg, steady, avg, prefix);
}
