// 3D extension (paper "Future Work": "The code should also be extended to
// 3D"): the `duct3d` registry scenario — hypersonic flow through a duct
// with a compression ramp extruded along z.  The Runner prints the
// mid-plane density map; this wrapper adds the z-uniformity check (the
// ramp is extruded, so all planes must agree).
//
// Usage: duct3d [key=value ...]        e.g. duct3d ppc=12 steps=600
#include <cmath>
#include <cstdio>

#include "scenario/runner.h"

int main(int argc, char** argv) {
  using namespace cmdsmc;
  try {
    scenario::ScenarioSpec spec = scenario::get_scenario("duct3d");
    scenario::apply_overrides(spec, cli::parse_key_values(argc, argv, 1));

    std::printf("3D duct: %dx%dx%d cells, Mach %.1f over a %g-degree ramp, "
                "lambda = %g\n",
                spec.config.nx, spec.config.ny, spec.config.nz,
                spec.config.mach, spec.config.wedge_angle_deg,
                spec.config.lambda_inf);
    const int nz = spec.config.nz;
    scenario::Runner runner(std::move(spec));
    runner.add_spec_sinks();
    const scenario::RunResult r = runner.run();

    // z-uniformity check over the ramp region.
    const auto& f = r.field;
    double mid = 0.0, edge = 0.0;
    int n = 0;
    for (int ix = 18; ix < 30; ++ix)
      for (int iy = 8; iy < 20; ++iy) {
        mid += f.at(f.density, ix, iy, nz / 2);
        edge += f.at(f.density, ix, iy, 1);
        ++n;
      }
    std::printf("ramp-region density: mid-plane %.3f vs near-wall plane "
                "%.3f (z-uniform to %.1f%%)\n",
                mid / n, edge / n, 100.0 * std::abs(mid / edge - 1.0));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "duct3d: %s\n", e.what());
    return 1;
  }
  return 0;
}
