// 3D extension (paper "Future Work": "The code should also be extended to
// 3D"): hypersonic flow through a duct with a compression ramp extruded
// along z.  Prints mid-plane density/temperature maps and checks that the
// solution is z-uniform (the 3D machinery at work with a 2.5D-verifiable
// answer).
#include <cstdio>

#include "core/simulation.h"
#include "io/contour.h"
#include "io/csv.h"

int main(int argc, char** argv) {
  using namespace cmdsmc;
  core::SimConfig cfg;
  cfg.nx = 64;
  cfg.ny = 32;
  cfg.nz = 16;
  cfg.mach = 4.0;
  cfg.sigma = 0.12;
  cfg.lambda_inf = 0.5;
  cfg.particles_per_cell = argc > 1 ? std::atof(argv[1]) : 8.0;
  cfg.reservoir_fraction = 0.2;
  cfg.has_wedge = true;
  cfg.wedge_x0 = 16.0;
  cfg.wedge_base = 16.0;
  cfg.wedge_angle_deg = 25.0;

  std::printf("3D duct: %dx%dx%d cells, Mach %.1f over a %g-degree ramp, "
              "lambda = %g\n",
              cfg.nx, cfg.ny, cfg.nz, cfg.mach, cfg.wedge_angle_deg,
              cfg.lambda_inf);
  core::SimulationD sim(cfg);
  std::printf("particles: %zu flow + %zu reservoir\n", sim.flow_count(),
              sim.reservoir_count());
  sim.run(400);
  sim.set_sampling(true);
  sim.run(400);
  const auto f = sim.field();

  io::ContourOptions opt;
  opt.vmax = 4.0;
  opt.z_plane = cfg.nz / 2;
  std::printf("\nmid-plane density (z = %d):\n%s\n", cfg.nz / 2,
              io::render_ascii(f, f.density, opt).c_str());
  io::write_field_csv_file("duct3d_density_midplane.csv", f, f.density,
                           "rho", cfg.nz / 2);

  // z-uniformity check: the ramp is extruded, so all planes must agree.
  double mid = 0.0, edge = 0.0;
  int n = 0;
  for (int ix = 18; ix < 30; ++ix)
    for (int iy = 8; iy < 20; ++iy) {
      mid += f.at(f.density, ix, iy, cfg.nz / 2);
      edge += f.at(f.density, ix, iy, 1);
      ++n;
    }
  std::printf("ramp-region density: mid-plane %.3f vs near-wall plane %.3f "
              "(z-uniform to %.1f%%)\n",
              mid / n, edge / n, 100.0 * std::abs(mid / edge - 1.0));
  std::printf("collisions so far: %llu\n",
              static_cast<unsigned long long>(sim.counters().collisions));
  return 0;
}
