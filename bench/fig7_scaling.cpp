// Figure 7: computational time per particle per time step as a function of
// the total number of particles, machine size held fixed.  On the CM-2 the
// x-axis is the virtual-processor ratio (32k..512k particles on 32k
// processors); here the machine is a fixed thread pool and the same
// amortization effect appears: per-particle time *decreases* as the
// population grows, with the largest drop at small populations.
//
// The paper ratios the time by the number of particles actually in the
// flow, ~10% less than the total; so does this bench.
//
// A second sweep holds the population fixed and scales the machine instead:
// threads 1..32 through the sharded pipeline, plus a static-partition
// (shard.enable=0) reference at 8/16/32 threads.  Results land in
// BENCH_scaling.json — per-phase speedup, measured lane imbalance and the
// shard gauges per point — which bench/check_bench.py --scaling gates
// against the committed baseline's parallel efficiency.  The JSON records
// hardware_threads so the gate can skip oversubscribed points honestly.
#include <array>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cmdp/thread_pool.h"
#include "obs/step_stats.h"

namespace {

using namespace cmdsmc;
using S = core::SimulationD;

// Per-step observer that averages the per-phase lane-imbalance gauge
// (max-lane / mean-lane busy seconds); attaching it also switches the
// simulation's phase timers to per-lane accumulation, which is what we
// want measured here.
struct ImbalanceProbe : obs::StepObserver {
  std::array<double, obs::StepStats::kPhases> sum{};
  std::int64_t n = 0;
  void on_step(const obs::StepStats& s) override {
    for (int p = 0; p < obs::StepStats::kPhases; ++p) sum[p] += s.imbalance[p];
    ++n;
  }
  double mean(int p) const {
    return n > 0 ? sum[p] / static_cast<double>(n) : 0.0;
  }
};

struct Point {
  unsigned threads = 0;
  double wall_seconds = 0.0;
  double usec_per = 0.0;
  // move, sort, fused select+collide seconds from the phase timers.
  double phase[3] = {0.0, 0.0, 0.0};
  // Mean measured lane imbalance for the same three phases.
  double imb[3] = {0.0, 0.0, 0.0};
  S::ShardStats shard;
  std::size_t total = 0, flow = 0;
};

Point run_point(core::SimConfig cfg, unsigned threads, int warmup,
                int measured) {
  cmdp::ThreadPool pool(threads);
  S sim(cfg, &pool);
  ImbalanceProbe probe;
  sim.run(warmup);
  sim.set_step_observer(&probe);  // per-lane timers on for the timed window
  sim.timers().reset();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run(measured);
  const auto t1 = std::chrono::steady_clock::now();
  sim.set_step_observer(nullptr);

  Point pt;
  pt.threads = threads;
  pt.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  pt.total = sim.total_count();
  pt.flow = sim.flow_count();
  pt.usec_per = 1e6 * pt.wall_seconds /
                (static_cast<double>(pt.flow) * measured);
  pt.phase[0] = sim.phase_seconds(S::kPhaseMove);
  pt.phase[1] = sim.phase_seconds(S::kPhaseSort);
  pt.phase[2] = sim.phase_seconds(S::kPhaseSelect) +
                sim.phase_seconds(S::kPhaseCollide);
  pt.imb[0] = probe.mean(0);
  pt.imb[1] = probe.mean(1);
  pt.imb[2] = probe.mean(3);  // fused select+collide runs under "collide"
  pt.shard = sim.shard_stats();
  return pt;
}

void print_point(const Point& p, const Point& ref, const char* tag) {
  const double speedup = p.wall_seconds > 0.0
                             ? ref.wall_seconds / p.wall_seconds
                             : 0.0;
  std::printf("%8u %10.3f %10.3f %8.2fx %8.1f%% %10.2f %12zu  %s\n",
              p.threads, p.wall_seconds, p.usec_per, speedup,
              100.0 * speedup / p.threads, p.imb[2], p.shard.repartitions,
              tag);
}

void json_point(std::FILE* f, const Point& p, const Point& ref,
                const char* indent) {
  const double speedup =
      p.wall_seconds > 0.0 ? ref.wall_seconds / p.wall_seconds : 0.0;
  static const char* keys[3] = {"move_bc", "sort", "select_collide"};
  std::fprintf(f, "%s{\"threads\": %u, \"wall_seconds\": %.6f, "
               "\"usec_per_particle_step\": %.6f, \"speedup\": %.4f, "
               "\"efficiency\": %.4f,\n",
               indent, p.threads, p.wall_seconds, p.usec_per, speedup,
               speedup / p.threads);
  std::fprintf(f, "%s \"phases\": {", indent);
  for (int k = 0; k < 3; ++k) {
    const double psp =
        p.phase[k] > 0.0 ? ref.phase[k] / p.phase[k] : 0.0;
    std::fprintf(f,
                 "%s\"%s\": {\"seconds\": %.6f, \"speedup\": %.4f, "
                 "\"imbalance\": %.4f}",
                 k == 0 ? "" : ", ", keys[k], p.phase[k], psp, p.imb[k]);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "%s \"shard\": {\"count\": %u, \"repartitions\": %llu, "
               "\"imbalance\": %.4f, \"post_imbalance\": %.4f}}",
               indent, p.shard.shards,
               static_cast<unsigned long long>(p.shard.repartitions),
               p.shard.cost_imbalance, p.shard.post_imbalance);
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  auto& pool = cmdp::ThreadPool::global();

  // Populations chosen to mirror the paper's 32k..512k sweep.
  const double ppc_list[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
  const int warmup = 30;
  const int measured = scale.steady_steps / 3 + 20;

  std::printf("Figure 7: per-particle time vs total particles "
              "(%u threads, %d timed steps per point)\n",
              pool.size(), measured);
  std::printf("%12s %12s %16s %18s\n", "total", "flow", "VP ratio",
              "usec/particle/step");
  double first = 0.0, last = 0.0;
  for (double ppc : ppc_list) {
    auto cfg = bench::paper_wedge_config(scale, 0.0);
    cfg.particles_per_cell = ppc;
    core::SimulationD sim(cfg, &pool);
    sim.run(warmup);
    const auto t0 = std::chrono::steady_clock::now();
    sim.run(measured);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double usec_per = 1e6 * seconds /
                            (static_cast<double>(sim.flow_count()) * measured);
    const double vp =
        static_cast<double>(sim.total_count()) / pool.size() / 1000.0;
    std::printf("%12zu %12zu %13.1fk %18.3f\n", sim.total_count(),
                sim.flow_count(), vp, usec_per);
    if (first == 0.0) first = usec_per;
    last = usec_per;
  }
  std::printf("\npaper (CM-2, 32k procs): 10.5 usec @ 32k -> 7.2 usec @ 512k"
              " (1.46x drop)\n");
  std::printf("this machine:            %.2fx drop from smallest to largest"
              " population\n",
              first / last);
  std::printf("(absolute numbers are hardware-bound; the reproduced claim is"
              " the decreasing shape)\n");

  // --- Thread-scaling sweep: fixed population, machine grows ---
  const unsigned hw = std::thread::hardware_concurrency();
  const auto cfg = bench::paper_wedge_config(scale, 0.0);
  auto cfg_static = cfg;
  cfg_static.shard_enable = false;

  std::printf("\nThread scaling: fixed population, sharded pipeline "
              "(%u hardware threads)\n", hw);
  std::printf("%8s %10s %10s %9s %9s %10s %12s\n", "threads", "wall[s]",
              "usec/p/s", "speedup", "eff", "coll imb", "repartitions");

  std::vector<Point> points;
  for (unsigned t : {1u, 2u, 4u, 8u, 16u, 32u}) {
    points.push_back(run_point(cfg, t, warmup, measured));
    print_point(points.back(), points.front(),
                t > hw ? "(oversubscribed)" : "");
  }
  std::vector<Point> static_points;
  for (unsigned t : {8u, 16u, 32u}) {
    static_points.push_back(run_point(cfg_static, t, warmup, measured));
    print_point(static_points.back(), points.front(), "static partition");
  }

  std::FILE* f = std::fopen("BENCH_scaling.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scaling.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fig7_scaling\",\n");
  std::fprintf(f, "  \"scenario\": \"wedge-mach4 (paper wind tunnel)\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(f, "  \"particles\": %zu,\n", points.front().total);
  std::fprintf(f, "  \"flow_particles\": %zu,\n", points.front().flow);
  std::fprintf(f, "  \"particles_per_cell\": %g,\n", cfg.particles_per_cell);
  std::fprintf(f, "  \"steps\": %d,\n", measured);
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    json_point(f, points[i], points.front(), "    ");
    std::fprintf(f, "%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"static_points\": [\n");
  for (std::size_t i = 0; i < static_points.size(); ++i) {
    json_point(f, static_points[i], points.front(), "    ");
    std::fprintf(f, "%s\n", i + 1 < static_points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"notes\": \"speedup/efficiency are vs the 1-thread "
                  "sharded point; static_points rerun the same problem with "
                  "shard.enable=0 (the pre-sharding lower-bound particle "
                  "split); points past hardware_threads are oversubscribed "
                  "and informational only\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_scaling.json\n");
  return 0;
}
