// Figure 7: computational time per particle per time step as a function of
// the total number of particles, machine size held fixed.  On the CM-2 the
// x-axis is the virtual-processor ratio (32k..512k particles on 32k
// processors); here the machine is a fixed thread pool and the same
// amortization effect appears: per-particle time *decreases* as the
// population grows, with the largest drop at small populations.
//
// The paper ratios the time by the number of particles actually in the
// flow, ~10% less than the total; so does this bench.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "cmdp/thread_pool.h"

int main() {
  using namespace cmdsmc;
  const auto scale = bench::scale_from_env();
  auto& pool = cmdp::ThreadPool::global();

  // Populations chosen to mirror the paper's 32k..512k sweep.
  const double ppc_list[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
  const int warmup = 30;
  const int measured = scale.steady_steps / 3 + 20;

  std::printf("Figure 7: per-particle time vs total particles "
              "(%u threads, %d timed steps per point)\n",
              pool.size(), measured);
  std::printf("%12s %12s %16s %18s\n", "total", "flow", "VP ratio",
              "usec/particle/step");
  double first = 0.0, last = 0.0;
  for (double ppc : ppc_list) {
    auto cfg = bench::paper_wedge_config(scale, 0.0);
    cfg.particles_per_cell = ppc;
    core::SimulationD sim(cfg, &pool);
    sim.run(warmup);
    const auto t0 = std::chrono::steady_clock::now();
    sim.run(measured);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double usec_per = 1e6 * seconds /
                            (static_cast<double>(sim.flow_count()) * measured);
    const double vp =
        static_cast<double>(sim.total_count()) / pool.size() / 1000.0;
    std::printf("%12zu %12zu %13.1fk %18.3f\n", sim.total_count(),
                sim.flow_count(), vp, usec_per);
    if (first == 0.0) first = usec_per;
    last = usec_per;
  }
  std::printf("\npaper (CM-2, 32k procs): 10.5 usec @ 32k -> 7.2 usec @ 512k"
              " (1.46x drop)\n");
  std::printf("this machine:            %.2fx drop from smallest to largest"
              " population\n",
              first / last);
  std::printf("(absolute numbers are hardware-bound; the reproduced claim is"
              " the decreasing shape)\n");
  return 0;
}
