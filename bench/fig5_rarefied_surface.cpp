// Figure 5: density surface for the rarefied (lambda = 0.5) solution.
// Paper: "there is no longer a wake shock ... the wake region is highly
// rarefied and the mean free path in this region is great enough that the
// wake shock is completely washed out."  This bench runs BOTH registry
// scenarios (wedge-mach4 and wedge-mach4-rarefied) and reports the wake
// contrast.
#include <cstdio>

#include "bench_common.h"
#include "io/csv.h"
#include "io/shock_analysis.h"

int main() {
  using namespace cmdsmc;

  std::printf("Figure 5: rarefied density surface + wake contrast\n");
  const auto rare = bench::run_spec(bench::spec_from_env("wedge-mach4-rarefied"));
  const auto& field_r = rare.field;
  io::write_field_csv_file("fig5_density_surface.csv", field_r,
                           field_r.density, "rho");

  const auto cont = bench::run_spec(bench::spec_from_env("wedge-mach4"));
  const auto& field_c = cont.field;

  const auto wake_r =
      io::measure_wake(field_r, bench::analysis_wedge(rare.config));
  const auto wake_c =
      io::measure_wake(field_c, bench::analysis_wedge(cont.config));

  bench::print_header("Figure 5 (vs figure 2)");
  bench::print_text_row("wake shock, near continuum", "present",
                        wake_c.shock_present ? "present" : "absent", "");
  bench::print_text_row("wake shock, rarefied", "washed out",
                        wake_r.shock_present ? "present" : "washed out", "");
  bench::print_kv("wake base density, continuum", wake_c.base_density);
  bench::print_kv("wake base density, rarefied", wake_r.base_density);
  bench::print_kv("continuum / rarefied wake density",
                  wake_c.base_density /
                      (wake_r.base_density > 0 ? wake_r.base_density : 1e-9));
  bench::print_kv("recompression x, continuum", wake_c.recovery_x);
  bench::print_kv("recompression x, rarefied", wake_r.recovery_x);
  std::printf("\nfloor density profiles (wake band):\n%8s %12s %12s\n", "x",
              "continuum", "rarefied");
  for (int ix = 47; ix < field_r.grid.nx - 4; ix += 4) {
    double vc = 0.0, vr = 0.0;
    for (int iy = 0; iy < 3; ++iy) {
      vc += field_c.at(field_c.density, ix, iy) / 3.0;
      vr += field_r.at(field_r.density, ix, iy) / 3.0;
    }
    std::printf("%8d %12.3f %12.3f\n", ix, vc, vr);
  }
  return 0;
}
