#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

namespace cmdsmc::bench {

namespace {
double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double d = std::atof(v);
    if (d > 0.0) return d;
  }
  return fallback;
}
int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int d = std::atoi(v);
    if (d > 0) return d;
  }
  return fallback;
}
}  // namespace

RunScale scale_from_env(RunScale d) {
  if (const char* v = std::getenv("CMDSMC_PAPER_SCALE");
      v != nullptr && std::atoi(v) == 1) {
    d.particles_per_cell = 73.0;
    d.steady_steps = 1200;
    d.avg_steps = 2000;
  }
  d.particles_per_cell = env_double("CMDSMC_PPC", d.particles_per_cell);
  d.steady_steps = env_int("CMDSMC_STEADY_STEPS", d.steady_steps);
  d.avg_steps = env_int("CMDSMC_AVG_STEPS", d.avg_steps);
  return d;
}

scenario::ScenarioSpec spec_from_env(const std::string& name, RunScale d) {
  d = scale_from_env(d);
  scenario::ScenarioSpec spec = scenario::get_scenario(name);
  spec.config.particles_per_cell = d.particles_per_cell;
  spec.schedule.steady_steps = d.steady_steps;
  spec.schedule.avg_steps = d.avg_steps;
  spec.sinks.clear();
  return spec;
}

scenario::RunResult run_spec(scenario::ScenarioSpec spec) {
  scenario::Runner runner(std::move(spec));
  return runner.run();
}

core::SimConfig paper_wedge_config(const RunScale& scale, double lambda_inf) {
  scenario::ScenarioSpec spec = scenario::get_scenario(
      lambda_inf > 0.0 ? "wedge-mach4-rarefied" : "wedge-mach4");
  spec.config.lambda_inf = lambda_inf;
  spec.config.particles_per_cell = scale.particles_per_cell;
  return spec.build_config();
}

geom::Wedge analysis_wedge(const core::SimConfig& cfg) {
  return geom::Wedge(cfg.wedge_x0, cfg.wedge_base, cfg.wedge_angle_rad());
}

core::FieldStats run_and_average(core::SimulationD& sim, const RunScale& s) {
  sim.run(s.steady_steps);
  sim.set_sampling(true);
  sim.run(s.avg_steps);
  return sim.field();
}

core::FieldStats run_and_average_fixed(core::SimulationF& sim,
                                       const RunScale& s) {
  sim.run(s.steady_steps);
  sim.set_sampling(true);
  sim.run(s.avg_steps);
  return sim.field();
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-38s %12s %12s   %s\n", "quantity", "paper", "measured",
              "note");
}

void print_row(const std::string& quantity, double paper, double measured,
               const std::string& note) {
  std::printf("%-38s %12.4g %12.4g   %s\n", quantity.c_str(), paper, measured,
              note.c_str());
}

void print_text_row(const std::string& quantity, const std::string& paper,
                    const std::string& measured, const std::string& note) {
  std::printf("%-38s %12s %12s   %s\n", quantity.c_str(), paper.c_str(),
              measured.c_str(), note.c_str());
}

void print_kv(const std::string& key, double value) {
  std::printf("%-38s %12.6g\n", key.c_str(), value);
}

}  // namespace cmdsmc::bench
