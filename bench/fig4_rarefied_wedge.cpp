// Figure 4: density contours for rarefied Mach 4 flow over a 30-degree
// wedge (the `wedge-mach4-rarefied` registry scenario).  Freestream mean
// free path 0.5 cell widths => Kn = 0.02 over the 25-cell wedge, Re ~ 600.
// Paper: shock thickness 5 cells, wider than the near-continuum 3 cells.
#include <cstdio>

#include "bench_common.h"
#include "io/contour.h"
#include "io/csv.h"
#include "io/shock_analysis.h"
#include "physics/selection.h"
#include "physics/theory.h"

int main() {
  using namespace cmdsmc;
  namespace th = physics::theory;
  auto spec = bench::spec_from_env("wedge-mach4-rarefied");

  std::printf("Figure 4: rarefied Mach 4 / 30 deg wedge, lambda = 0.5 cells "
              "(%.0f ppc, %d+%d steps)\n",
              spec.config.particles_per_cell, spec.schedule.steady_steps,
              spec.schedule.avg_steps);
  const auto r = bench::run_spec(spec);
  const auto& field = r.field;
  const auto& cfg = r.config;

  io::ContourOptions opt;
  opt.vmax = 4.5;
  std::printf("\n%s\n", io::render_ascii(field, field.density, opt).c_str());
  io::write_field_csv_file("fig4_density.csv", field, field.density, "rho");
  std::printf("full field written to fig4_density.csv\n");

  const geom::Wedge wedge = bench::analysis_wedge(cfg);
  const auto fit = io::measure_oblique_shock(field, wedge);
  const double kn = th::knudsen_number(cfg.lambda_inf, cfg.wedge_base);
  const auto wake = io::measure_wake(field, wedge);

  bench::print_header("Figure 4");
  bench::print_row("Knudsen number", 0.02, kn, "lambda/wedge length");
  bench::print_row("Reynolds number", 600.0,
                   th::reynolds_from_mach_knudsen(cfg.mach, kn),
                   "hard-sphere viscosity estimate");
  bench::print_row("shock angle [deg]", 45.0, fit.angle_deg, "");
  bench::print_row("post-shock density ratio", 3.7, fit.density_ratio, "");
  bench::print_row("shock thickness [cells]", 5.0, fit.thickness_vertical,
                   "vertical cut, as read off contours");
  bench::print_kv("shock thickness along normal", fit.thickness_normal);
  bench::print_text_row("wake shock", "washed out",
                        wake.shock_present ? "present" : "washed out", "");
  bench::print_kv("wake base density", wake.base_density);
  const auto rule = physics::SelectionRule::make(
      cfg.gas, cfg.lambda_inf, cfg.sigma, cfg.particles_per_cell);
  bench::print_kv("selection P_inf", rule.pc_inf);
  return 0;
}
