// Table A (in-text, "Performance"): distribution of computational time
// within the algorithm, and the per-particle time.
//
// Paper (CM-2, 32k processors, 512k particles):
//   1) collisionless motion (incl. boundary conditions) -- 14%
//   2) sort                                             -- 27%
//   3) selection of collision partners                  -- 20%
//   4) collision of selected partners                   -- 39%
//   7.2 usec/particle/step; Cray-2 hand-vectorized: 0.8 usec.
#include <cstdio>

#include "bench_common.h"
#include "cmdp/thread_pool.h"

int main() {
  using namespace cmdsmc;
  using S = core::SimulationD;
  const auto scale = bench::scale_from_env();
  auto& pool = cmdp::ThreadPool::global();

  auto cfg = bench::paper_wedge_config(scale, 0.0);
  core::SimulationD sim(cfg, &pool);
  sim.run(40);  // warm-up: reach a representative particle distribution
  sim.timers().reset();
  const int steps = scale.steady_steps / 2 + 50;
  sim.run(steps);

  const double total = sim.total_seconds();
  const double usec_per =
      1e6 * total / (static_cast<double>(sim.flow_count()) * steps);
  const double paper_pct[4] = {14.0, 27.0, 20.0, 39.0};
  const S::Phase phases[4] = {S::kPhaseMove, S::kPhaseSort, S::kPhaseSelect,
                              S::kPhaseCollide};
  const char* names[4] = {"motion + boundary conditions", "sort",
                          "selection of collision partners",
                          "collision of selected partners"};
  const char* notes[4] = {"also generates the sort keys",
                          "one-pass counting sort + record scatter",
                          "fused into the collide pass (reads 0)",
                          "includes partner selection"};

  std::printf("Table A: phase breakdown (%u threads, %zu particles, %d "
              "steps)\n",
              pool.size(), sim.total_count(), steps);
  bench::print_header("phase shares [%]");
  for (int k = 0; k < 4; ++k)
    bench::print_row(names[k], paper_pct[k],
                     100.0 * sim.phase_seconds(phases[k]) / total, notes[k]);
  bench::print_header("per-particle cost [usec/particle/step]");
  bench::print_row("this machine (parallel)", 7.2, usec_per,
                   "paper value is CM-2 @ 32k procs");

  // Single-thread reference: the role the Cray-2 plays in the paper's
  // comparison (a serial/vector reference point on the same algorithm).
  cmdp::ThreadPool serial(1);
  core::SimulationD ssim(cfg, &serial);
  ssim.run(10);
  ssim.timers().reset();
  const int s_steps = steps / 8 + 10;
  ssim.run(s_steps);
  const double s_usec =
      1e6 * ssim.total_seconds() /
      (static_cast<double>(ssim.flow_count()) * s_steps);
  bench::print_row("this machine (1 thread)", 0.8, s_usec,
                   "paper value is Cray-2, 30% assembler");
  std::printf("\nparallel speedup over 1 thread: %.1fx\n", s_usec / usec_per);
  return 0;
}
