// Microbenchmarks of the substrate primitives the paper's phase breakdown
// is built from: rank sort, scans, histogram, gather, the collision kernel
// (double and fixed point), selection, and the RNG.
#include <benchmark/benchmark.h>

#include <vector>

#include "cmdp/parallel.h"
#include "cmdp/scan.h"
#include "cmdp/sort.h"
#include "cmdp/thread_pool.h"
#include "fixedpoint/fixed32.h"
#include "physics/collision.h"
#include "physics/selection.h"
#include "rng/permutation.h"
#include "rng/rng.h"

namespace cmdp = cmdsmc::cmdp;
namespace physics = cmdsmc::physics;
namespace rng = cmdsmc::rng;
using cmdsmc::fixedpoint::Fixed32;

namespace {

std::vector<std::uint32_t> random_keys(std::size_t n, std::uint32_t bound) {
  rng::SplitMix64 g(7);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = g.next_below(bound);
  return keys;
}

// Warm arena: after the first iteration the pool's Workspace owns every
// scratch buffer, so the steady state is allocation-free.
void BM_CountingSort(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::uint32_t bound = 98 * 64 * 8;  // the wedge run's key space
  const auto keys = random_keys(n, bound);
  std::vector<std::uint32_t> order(n);
  for (auto _ : state) {
    cmdp::counting_sort_index(pool, keys, bound, order);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CountingSort)->Arg(1 << 16)->Arg(1 << 19);

// Cold arena: releases the Workspace every iteration, measuring what the
// pre-arena code paid in allocation + first-touch per step.  The gap to
// BM_CountingSort is the arena's win — benchmarked, not asserted.
void BM_CountingSortColdArena(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::uint32_t bound = 98 * 64 * 8;
  const auto keys = random_keys(n, bound);
  std::vector<std::uint32_t> order(n);
  for (auto _ : state) {
    pool.workspace().release();
    cmdp::counting_sort_index(pool, keys, bound, order);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CountingSortColdArena)->Arg(1 << 19);

// The plan/apply pair the simulation's fused sort uses: one counting pass,
// then a single scatter pass moving an 8-array record set (a stand-in for
// the particle store) straight to sorted positions.
void BM_SortPlanScatter(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::uint32_t bound = 98 * 64 * 8;
  const auto keys = random_keys(n, bound);
  constexpr int kArrays = 8;
  std::vector<double> src[kArrays], dst[kArrays];
  for (int a = 0; a < kArrays; ++a) {
    src[a].assign(n, 1.0);
    dst[a].assign(n, 0.0);
  }
  for (auto _ : state) {
    const cmdp::SortPlan plan = cmdp::counting_sort_plan(pool, keys, bound);
    cmdp::apply_sort_plan(pool, keys, plan,
                          [&](std::size_t s, std::size_t d) {
                            for (int a = 0; a < kArrays; ++a)
                              dst[a][d] = src[a][s];
                          });
    benchmark::DoNotOptimize(dst[0].data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SortPlanScatter)->Arg(1 << 19);

// The historical shape of the same job: sort to a permutation, then gather
// every array through it.  Kept as the baseline the fused scatter replaced.
void BM_SortOrderThenGather(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::uint32_t bound = 98 * 64 * 8;
  const auto keys = random_keys(n, bound);
  std::vector<std::uint32_t> order(n);
  constexpr int kArrays = 8;
  std::vector<double> src[kArrays], dst[kArrays];
  for (int a = 0; a < kArrays; ++a) {
    src[a].assign(n, 1.0);
    dst[a].assign(n, 0.0);
  }
  for (auto _ : state) {
    cmdp::counting_sort_index(pool, keys, bound, order);
    for (int a = 0; a < kArrays; ++a)
      cmdp::gather<double>(pool, src[a], order, dst[a]);
    benchmark::DoNotOptimize(dst[0].data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SortOrderThenGather)->Arg(1 << 19);

void BM_RadixSort32(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 0xffffffffu);
  std::vector<std::uint32_t> order(n);
  for (auto _ : state) {
    cmdp::stable_sort_index(pool, keys, 0xffffffffu, order);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSort32)->Arg(1 << 19);

void BM_InclusiveScan(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    cmdp::inclusive_scan<std::int64_t>(
        pool, in, out, [](std::int64_t a, std::int64_t b) { return a + b; },
        0);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InclusiveScan)->Arg(1 << 20);

void BM_SegmentedScan(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> in(n, 1), out(n);
  std::vector<std::uint8_t> seg(n, 0);
  for (std::size_t i = 0; i < n; i += 16) seg[i] = 1;
  for (auto _ : state) {
    cmdp::segmented_inclusive_scan<std::int64_t>(
        pool, in, seg, out,
        [](std::int64_t a, std::int64_t b) { return a + b; }, 0);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegmentedScan)->Arg(1 << 20);

void BM_Histogram(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::uint32_t bound = 98 * 64;
  const auto keys = random_keys(n, bound);
  std::vector<std::uint32_t> counts(bound);
  for (auto _ : state) {
    cmdp::histogram(pool, keys, bound, counts);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Histogram)->Arg(1 << 19);

void BM_HistogramColdArena(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::uint32_t bound = 98 * 64;
  const auto keys = random_keys(n, bound);
  std::vector<std::uint32_t> counts(bound);
  for (auto _ : state) {
    pool.workspace().release();
    cmdp::histogram(pool, keys, bound, counts);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HistogramColdArena)->Arg(1 << 19);

void BM_Gather(benchmark::State& state) {
  auto& pool = cmdp::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, static_cast<std::uint32_t>(n));
  std::vector<std::uint32_t> order(n);
  cmdp::counting_sort_index(pool, keys, static_cast<std::uint32_t>(n), order);
  std::vector<double> in(n, 1.0), out(n);
  for (auto _ : state) {
    cmdp::gather<double>(pool, in, order, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Gather)->Arg(1 << 20);

template <class Real>
void BM_CollisionKernel(benchmark::State& state) {
  rng::SplitMix64 g(9);
  physics::Pair5<Real> p;
  for (int c = 0; c < physics::kDof; ++c) {
    p.a[c] = physics::Num<Real>::from_double(g.next_double() - 0.5);
    p.b[c] = physics::Num<Real>::from_double(g.next_double() - 0.5);
  }
  const auto& table = rng::perm_table();
  std::uint64_t bits = 0x123456789abcdefull;
  std::size_t k = 0;
  for (auto _ : state) {
    physics::collide_pair(p, table[k % rng::kPermCount], bits);
    bits = rng::mix64(bits);
    ++k;
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CollisionKernel<double>);
BENCHMARK(BM_CollisionKernel<Fixed32>);

void BM_SelectionProbability(benchmark::State& state) {
  physics::GasModel gas;
  const auto rule = physics::SelectionRule::make(gas, 0.5, 0.09, 16.0);
  double n_local = 16.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.probability(n_local, 0.0));
    n_local += 0.001;
  }
}
BENCHMARK(BM_SelectionProbability);

void BM_Hash4(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::hash4(42, i, 17, 3));
    ++i;
  }
}
BENCHMARK(BM_Hash4);

void BM_RandomTransposition(benchmark::State& state) {
  rng::PackedPerm p = rng::identity_perm();
  std::uint64_t bits = 0xdeadbeefcafef00dull;
  for (auto _ : state) {
    p = rng::random_transposition(p, bits);
    bits = rng::mix64(bits);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_RandomTransposition);

}  // namespace

BENCHMARK_MAIN();
