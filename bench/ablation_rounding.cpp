// Ablation (a): fixed-point rounding of the collision halvings.
//
// Paper: "the consistent truncation after division by 2 can lead to a
// significant loss in total energy in stagnation regions of the flow.  The
// problem is solved by arbitrarily adding with uniform probability either 0
// or 1 to the result of this division."
//
// A cold closed box (small velocity magnitudes, like a stagnation region)
// is evolved with (1) stochastic rounding, (2) truncation, (3) the double
// reference; total energy drift is reported over time.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cmdsmc;
  core::SimConfig cfg;
  cfg.nx = 24;
  cfg.ny = 24;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;
  cfg.sigma = 0.05;  // cold: stagnation-like magnitudes
  cfg.lambda_inf = 0.0;
  cfg.particles_per_cell = 40.0;
  cfg.reservoir_fraction = 0.0;
  cfg.seed = 4242;

  core::SimulationF stoch(cfg);
  auto cfg_t = cfg;
  cfg_t.rounding = core::Rounding::kTruncate;
  core::SimulationF trunc(cfg_t);
  core::SimulationD ref(cfg);

  const double e_stoch0 = stoch.total_energy();
  const double e_trunc0 = trunc.total_energy();
  const double e_ref0 = ref.total_energy();

  std::printf("Ablation: fixed-point rounding in the collision kernel\n");
  std::printf("cold closed box, sigma = %.2f, %zu particles\n\n", cfg.sigma,
              stoch.total_count());
  std::printf("%8s %22s %22s %22s\n", "step", "fixed+stochastic",
              "fixed+truncate", "double reference");
  const int chunk = 100;
  for (int k = 1; k <= 8; ++k) {
    stoch.run(chunk);
    trunc.run(chunk);
    ref.run(chunk);
    std::printf("%8d %22.3e %22.3e %22.3e\n", k * chunk,
                stoch.total_energy() / e_stoch0 - 1.0,
                trunc.total_energy() / e_trunc0 - 1.0,
                ref.total_energy() / e_ref0 - 1.0);
  }
  std::printf("\n(relative total-energy drift; truncation drifts "
              "systematically negative, the paper's failure mode)\n");
  return 0;
}
