// Ablation (e): upstream boundary treatment.
//
// Paper: on vector/serial machines a *soft source* region is natural; "on
// parallel architectures it is useful to implement a hard boundary in the
// upstream region.  This boundary acts as a plunger ... In this manner the
// introduction of new particles can be delayed an arbitrary number of time
// steps."
//
// Measured: freestream density stability in the inflow strip, injection
// batch statistics, and the resulting shock metrics for both modes.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "io/shock_analysis.h"

namespace {

using namespace cmdsmc;

void run_mode(geom::UpstreamMode mode, const char* name,
              const bench::RunScale& scale) {
  auto cfg = bench::paper_wedge_config(scale, 0.0);
  cfg.upstream = mode;
  core::SimulationD sim(cfg);
  sim.run(scale.steady_steps / 2);
  // Track the inflow-strip density over time.
  double mean = 0.0, m2 = 0.0;
  const int probes = 160;
  const double target = cfg.particles_per_cell * cfg.ny;
  for (int k = 0; k < probes; ++k) {
    sim.run(1);
    const auto& s = sim.particles();
    std::size_t strip = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag) continue;
      if (s.x[i] >= 2.0 && s.x[i] < 3.0) ++strip;
    }
    const double rho = static_cast<double>(strip) / target;
    mean += rho;
    m2 += rho * rho;
  }
  mean /= probes;
  const double sd = std::sqrt(std::max(0.0, m2 / probes - mean * mean));
  sim.set_sampling(true);
  sim.run(scale.avg_steps / 2);
  const auto fit = io::measure_oblique_shock(sim.field(), *sim.wedge());
  std::printf("%-14s %12.3f %12.3f %14llu %12.2f %12.2f\n", name, mean, sd,
              static_cast<unsigned long long>(sim.counters().injected),
              fit.angle_deg, fit.density_ratio);
}

}  // namespace

int main() {
  const auto scale = cmdsmc::bench::scale_from_env();
  std::printf("Ablation: upstream boundary (plunger vs soft source)\n\n");
  std::printf("%-14s %12s %12s %14s %12s %12s\n", "mode", "strip rho",
              "strip sd", "injected", "angle", "ratio");
  run_mode(cmdsmc::geom::UpstreamMode::kPlunger, "plunger", scale);
  run_mode(cmdsmc::geom::UpstreamMode::kSoftSource, "soft source", scale);
  std::printf("\n(both maintain the freestream; the plunger batches "
              "injections so new particles arrive every few steps)\n");
  return 0;
}
