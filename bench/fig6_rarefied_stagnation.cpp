// Figure 6: stagnation-region zoom for the rarefied solution (registry
// scenarios wedge-mach4-rarefied vs wedge-mach4).  Comparing with figure 3
// shows the effect of rarefaction on the shock: the rise to the plateau is
// wider and smoother.
#include <cstdio>

#include "bench_common.h"
#include "io/contour.h"
#include "io/csv.h"
#include "io/shock_analysis.h"

int main() {
  using namespace cmdsmc;

  std::printf("Figure 6: stagnation zoom, rarefied vs near continuum\n");
  const auto rare = bench::run_spec(bench::spec_from_env("wedge-mach4-rarefied"));
  const auto cont = bench::run_spec(bench::spec_from_env("wedge-mach4"));
  const auto& field_r = rare.field;
  const auto& field_c = cont.field;

  io::ContourOptions opt;
  opt.vmax = 4.5;
  opt.x0 = 18;
  opt.x1 = 50;
  opt.y1 = 30;
  std::printf("\nrarefied zoom:\n%s\n",
              io::render_ascii(field_r, field_r.density, opt).c_str());
  io::write_field_csv_file("fig6_stagnation.csv", field_r, field_r.density,
                           "rho");

  const geom::Wedge wedge = bench::analysis_wedge(rare.config);
  const auto fit_r = io::measure_oblique_shock(field_r, wedge);
  const auto fit_c = io::measure_oblique_shock(field_c, wedge);
  const double peak_r = io::stagnation_peak_density(field_r, wedge);
  const double peak_c = io::stagnation_peak_density(field_c, wedge);

  bench::print_header("Figure 6 (vs figure 3)");
  bench::print_row("stagnation peak density, rarefied", 3.7, peak_r, "");
  bench::print_row("stagnation peak density, continuum", 3.7, peak_c, "");
  bench::print_kv("shock 10-90 width, rarefied [cells]",
                  fit_r.thickness_vertical);
  bench::print_kv("shock 10-90 width, continuum [cells]",
                  fit_c.thickness_vertical);
  std::printf("\nwall-normal rise at mid-wedge (x = 37):\n");
  std::printf("%6s %12s %12s\n", "y", "continuum", "rarefied");
  const int y0 = static_cast<int>(wedge.surface_y(37.5));
  for (int iy = y0; iy < y0 + 14 && iy < field_r.grid.ny; ++iy)
    std::printf("%6d %12.3f %12.3f\n", iy, field_c.at(field_c.density, 37, iy),
                field_r.at(field_r.density, 37, iy));
  return 0;
}
