// Shared plumbing for the table/figure benches: scaled-down defaults with
// environment overrides, registry-backed scenario specs, and consistent
// "paper vs measured" reporting.  The wind-tunnel configurations themselves
// live in the scenario registry (src/scenario) — benches look them up by
// name instead of hand-rolling SimConfigs.
#pragma once

#include <string>

#include "core/config.h"
#include "core/sampling.h"
#include "core/simulation.h"
#include "geom/wedge.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace cmdsmc::bench {

struct RunScale {
  double particles_per_cell = 16.0;  // paper: ~73 (460k flow / 6272 cells)
  int steady_steps = 600;            // paper: 1200
  int avg_steps = 600;               // paper: 2000
};

// Reads CMDSMC_PPC / CMDSMC_STEADY_STEPS / CMDSMC_AVG_STEPS (and approves
// CMDSMC_PAPER_SCALE=1 as a shorthand for the full paper parameters).
RunScale scale_from_env(RunScale defaults = {});

// Registry scenario with the env scale applied and file sinks cleared
// (benches report to stdout and write their own CSVs).
scenario::ScenarioSpec spec_from_env(const std::string& name,
                                     RunScale defaults = {});

// Standard warmup + averaging run of a spec through the Runner.
scenario::RunResult run_spec(scenario::ScenarioSpec spec);

// The paper's wind tunnel (98x64 grid, 30 degree wedge, Mach 4), from the
// wedge-mach4[-rarefied] registry entries; for benches that mutate the
// config and drive Simulation directly (ablations, scaling sweeps).
core::SimConfig paper_wedge_config(const RunScale& scale, double lambda_inf);

// The wedge outline of a config, for io/shock_analysis.
geom::Wedge analysis_wedge(const core::SimConfig& cfg);

// Runs the transient then accumulates `avg_steps` of time averaging, for a
// Simulation the bench constructed itself.
core::FieldStats run_and_average(core::SimulationD& sim, const RunScale& s);
core::FieldStats run_and_average_fixed(core::SimulationF& sim,
                                       const RunScale& s);

// --- Reporting helpers ---
void print_header(const std::string& title);
void print_row(const std::string& quantity, double paper, double measured,
               const std::string& note = "");
void print_text_row(const std::string& quantity, const std::string& paper,
                    const std::string& measured,
                    const std::string& note = "");
void print_kv(const std::string& key, double value);

}  // namespace cmdsmc::bench
