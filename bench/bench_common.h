// Shared plumbing for the table/figure benches: scaled-down defaults with
// environment overrides, the paper's wedge wind-tunnel configuration, and
// consistent "paper vs measured" reporting.
#pragma once

#include <string>

#include "core/config.h"
#include "core/sampling.h"
#include "core/simulation.h"

namespace cmdsmc::bench {

struct RunScale {
  double particles_per_cell = 16.0;  // paper: ~73 (460k flow / 6272 cells)
  int steady_steps = 600;            // paper: 1200
  int avg_steps = 600;               // paper: 2000
};

// Reads CMDSMC_PPC / CMDSMC_STEADY_STEPS / CMDSMC_AVG_STEPS (and approves
// CMDSMC_PAPER_SCALE=1 as a shorthand for the full paper parameters).
RunScale scale_from_env(RunScale defaults = {});

// The paper's wind tunnel: 98x64 grid, 30 degree wedge 20 cells from the
// upstream boundary, 25 cells of base, Mach 4 diatomic Maxwell molecules.
core::SimConfig paper_wedge_config(const RunScale& scale, double lambda_inf);

// Runs the transient then accumulates `avg_steps` of time averaging.
core::FieldStats run_and_average(core::SimulationD& sim, const RunScale& s);
core::FieldStats run_and_average_fixed(core::SimulationF& sim,
                                       const RunScale& s);

// --- Reporting helpers ---
void print_header(const std::string& title);
void print_row(const std::string& quantity, double paper, double measured,
               const std::string& note = "");
void print_text_row(const std::string& quantity, const std::string& paper,
                    const std::string& measured,
                    const std::string& note = "");
void print_kv(const std::string& key, double value);

}  // namespace cmdsmc::bench
