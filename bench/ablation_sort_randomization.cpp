// Ablation (c): randomization of the sort key.
//
// Paper: "it is important that candidate partners change between time steps
// otherwise the situation arises where the same partners collide repeatedly
// leading to correlated velocity distributions.  To obtain this additional
// randomization, the cell index of a particle is scaled by some constant
// factor and, before sorting, a random number less than the scale factor is
// added to it."
//
// Measured, for a cold gas (slow cell migration): the fraction of candidate
// pairs identical to the previous step, and the velocity correlation
// between collision partners (zero for an uncorrelated equilibrium gas).
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "rng/samplers.h"

namespace {

using namespace cmdsmc;

// Reconstructs the candidate pairing from the post-step (sorted) store.
std::vector<std::pair<std::uint32_t, std::uint32_t>> current_pairs(
    const core::SimulationD& sim) {
  const auto& s = sim.particles();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(s.size() / 2);
  std::size_t i = 0;
  while (i + 1 < s.size()) {
    if (s.cell[i] == s.cell[i + 1]) {
      pairs.emplace_back(s.id[i], s.id[i + 1]);
      i += 2;
    } else {
      ++i;  // odd leftover in this cell
    }
  }
  return pairs;
}

double repeat_fraction(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& prev,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cur) {
  std::unordered_map<std::uint32_t, std::uint32_t> partner;
  partner.reserve(prev.size() * 2);
  for (const auto& [a, b] : prev) {
    partner[a] = b;
    partner[b] = a;
  }
  std::size_t repeats = 0;
  for (const auto& [a, b] : cur) {
    auto it = partner.find(a);
    if (it != partner.end() && it->second == b) ++repeats;
  }
  return cur.empty() ? 0.0
                     : static_cast<double>(repeats) /
                           static_cast<double>(cur.size());
}

// Pearson correlation of partners' ux components.
double partner_correlation(const core::SimulationD& sim) {
  const auto& s = sim.particles();
  double ma = 0, mb = 0, n = 0;
  std::size_t i = 0;
  std::vector<std::pair<double, double>> ab;
  while (i + 1 < s.size()) {
    if (s.cell[i] == s.cell[i + 1]) {
      ab.emplace_back(s.ux[i], s.ux[i + 1]);
      i += 2;
    } else {
      ++i;
    }
  }
  for (const auto& [a, b] : ab) {
    ma += a;
    mb += b;
    n += 1;
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (const auto& [a, b] : ab) {
    cov += (a - ma) * (b - mb);
    va += (a - ma) * (a - ma);
    vb += (b - mb) * (b - mb);
  }
  return cov / std::sqrt(va * vb);
}

void run_mode(bool randomize, const char* name) {
  core::SimConfig cfg;
  cfg.nx = 24;
  cfg.ny = 24;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;
  // Cold gas: a particle stays in its cell for ~50 steps, so pairing changes
  // only through the key randomization.
  cfg.sigma = 0.02;
  cfg.lambda_inf = 0.0;
  cfg.particles_per_cell = 30.0;
  cfg.reservoir_fraction = 0.0;
  cfg.randomize_sort = randomize;
  cfg.seed = 77;
  core::SimulationD sim(cfg);
  sim.run(5);  // settle
  auto prev = current_pairs(sim);
  double repeat_acc = 0.0;
  const int steps = 40;
  for (int k = 0; k < steps; ++k) {
    sim.run(1);
    auto cur = current_pairs(sim);
    repeat_acc += repeat_fraction(prev, cur);
    prev = std::move(cur);
  }
  std::printf("%-22s %18.3f %22.4f\n", name, repeat_acc / steps,
              partner_correlation(sim));
}

}  // namespace

int main() {
  std::printf("Ablation: sort-key randomization (cold closed box)\n\n");
  std::printf("%-22s %18s %22s\n", "mode", "pair repeat frac",
              "partner ux correlation");
  run_mode(true, "randomized (paper)");
  run_mode(false, "no randomization");
  std::printf("\n(uncorrelated equilibrium: repeat fraction ~ 1/pairs-in-cell"
              ", correlation ~ 0; frozen pairs re-collide and their "
              "velocities stay anti-correlated)\n");
  return 0;
}
