// Table B (in-text, "Results"): the consolidated validation numbers the
// paper states for its solutions -- run set-up, shock angle, density rise,
// shock widths in both regimes, wake behaviour.  Both regimes are the
// registry scenarios run through the standard Runner.
#include <cstdio>

#include "bench_common.h"
#include "io/shock_analysis.h"
#include "physics/theory.h"

int main() {
  using namespace cmdsmc;
  namespace th = physics::theory;
  const auto scale = bench::scale_from_env();

  std::printf("Table B: consolidated validation (both regimes)\n");
  const auto cont = bench::run_spec(bench::spec_from_env("wedge-mach4"));
  const auto rare =
      bench::run_spec(bench::spec_from_env("wedge-mach4-rarefied"));
  const auto& fc = cont.field;
  const auto& fr = rare.field;

  const geom::Wedge wedge = bench::analysis_wedge(cont.config);
  const auto fit_c = io::measure_oblique_shock(fc, wedge);
  const auto fit_r = io::measure_oblique_shock(fr, wedge);
  const auto wake_c = io::measure_wake(fc, wedge);
  const auto wake_r = io::measure_wake(fr, wedge);

  bench::print_header("run set-up (paper values are the full-size run)");
  bench::print_row("total particles", 512.0 * 1024,
                   static_cast<double>(cont.total_count), "scaled by "
                   "CMDSMC_PPC");
  bench::print_row("particles in flow", 460000.0,
                   static_cast<double>(cont.flow_count), "");
  bench::print_row("reservoir particles", 45000.0,
                   static_cast<double>(cont.reservoir_count), "");
  bench::print_row("grid nx", 98.0, cont.config.nx, "");
  bench::print_row("grid ny", 64.0, cont.config.ny, "");
  bench::print_row("steady-state steps", 1200.0, scale.steady_steps, "");
  bench::print_row("averaging steps", 2000.0, scale.avg_steps, "");

  bench::print_header("near continuum (figs. 1-3)");
  bench::print_row("shock angle [deg]", 45.0, fit_c.angle_deg, "");
  bench::print_row("density ratio", 3.7, fit_c.density_ratio, "");
  bench::print_row("shock thickness [cells]", 3.0, fit_c.thickness_vertical,
                   "vertical cut");
  bench::print_text_row("wake shock", "present",
                        wake_c.shock_present ? "present" : "absent", "");

  bench::print_header("rarefied, lambda = 0.5 (figs. 4-6)");
  const double kn = th::knudsen_number(0.5, rare.config.wedge_base);
  bench::print_row("Knudsen number", 0.02, kn, "");
  bench::print_row("shock angle [deg]", 45.0, fit_r.angle_deg, "");
  bench::print_row("density ratio", 3.7, fit_r.density_ratio, "");
  bench::print_row("shock thickness [cells]", 5.0, fit_r.thickness_vertical,
                   "vertical cut");
  bench::print_text_row("wake shock", "washed out",
                        wake_r.shock_present ? "present" : "washed out", "");
  bench::print_kv("width ratio rarefied/continuum",
                  fit_r.thickness_vertical / fit_c.thickness_vertical);

  // Mass bookkeeping sanity for the record.
  bench::print_header("bookkeeping");
  bench::print_row("synthesized fallback particles", 0.0,
                   static_cast<double>(cont.counters.synthesized +
                                       rare.counters.synthesized),
                   "reservoir never ran dry if 0");
  return 0;
}
