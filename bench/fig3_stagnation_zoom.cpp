// Figure 3: expanded view of the density surface in the stagnation region
// by the wedge (the `wedge-mach4` registry scenario).  The paper uses it
// to study how the simulation approaches the theoretical density rise
// behind the shock; the jagged edge in the original figure is the
// fractional-cell-volume artifact of its plotting package (the solution
// itself used proper cut-cell volumes, as does this code).
#include <cstdio>

#include "bench_common.h"
#include "io/contour.h"
#include "io/csv.h"
#include "io/shock_analysis.h"
#include "physics/theory.h"

int main() {
  using namespace cmdsmc;
  namespace th = physics::theory;
  auto spec = bench::spec_from_env("wedge-mach4");

  std::printf("Figure 3: stagnation-region zoom, near continuum (%.0f ppc)\n",
              spec.config.particles_per_cell);
  const auto r = bench::run_spec(spec);
  const auto& field = r.field;
  const auto& cfg = r.config;

  // Zoom window: the compression side of the wedge.
  io::ContourOptions opt;
  opt.vmax = 4.5;
  opt.x0 = 18;
  opt.x1 = 50;
  opt.y0 = 0;
  opt.y1 = 30;
  std::printf("\nzoom (x in [18,50), y in [0,30)):\n%s\n",
              io::render_ascii(field, field.density, opt).c_str());
  io::write_field_csv_file("fig3_stagnation.csv", field, field.density,
                           "rho");

  const double beta = th::oblique_shock_angle(cfg.wedge_angle_rad(), cfg.mach);
  const double ratio = th::oblique_shock_density_ratio(beta, cfg.mach);
  const geom::Wedge wedge = bench::analysis_wedge(cfg);
  const double peak = io::stagnation_peak_density(field, wedge);

  bench::print_header("Figure 3");
  bench::print_row("peak density near surface", ratio, peak,
                   "approach to the theoretical rise");

  // Density profile along the surface normal at mid-wedge: the "approach"
  // the paper studies.
  const int ix = static_cast<int>(cfg.wedge_x0 + 0.7 * cfg.wedge_base);
  std::printf("\nwall-normal density profile at x = %d:\n", ix);
  const int y0 = static_cast<int>(wedge.surface_y(ix + 0.5));
  for (int iy = y0; iy < y0 + 12 && iy < field.grid.ny; ++iy)
    std::printf("  y=%2d  rho=%.3f\n", iy, field.at(field.density, ix, iy));
  return 0;
}
