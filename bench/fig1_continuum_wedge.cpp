// Figure 1: density contours for near-continuum Mach 4 flow over a
// 30-degree wedge — the `wedge-mach4` registry scenario through the
// standard Runner.  Paper validation: shock angle 45 deg, post-shock
// density 3.7x freestream (Rankine-Hugoniot), shock thickness ~3 cell
// widths, correct Prandtl-Meyer fan at the corner, wake shock present.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "io/contour.h"
#include "io/csv.h"
#include "io/shock_analysis.h"
#include "physics/theory.h"

int main() {
  using namespace cmdsmc;
  namespace th = physics::theory;
  auto spec = bench::spec_from_env("wedge-mach4");

  std::printf("Figure 1: near-continuum Mach 4 / 30 deg wedge "
              "(%.0f ppc, %d+%d steps)\n",
              spec.config.particles_per_cell, spec.schedule.steady_steps,
              spec.schedule.avg_steps);
  const auto r = bench::run_spec(spec);
  const auto& field = r.field;
  const auto& cfg = r.config;

  io::ContourOptions opt;
  opt.vmax = 4.5;
  std::printf("\n%s\n", io::render_ascii(field, field.density, opt).c_str());
  io::write_field_csv_file("fig1_density.csv", field, field.density, "rho");
  std::printf("full field written to fig1_density.csv\n");

  const geom::Wedge wedge = bench::analysis_wedge(cfg);
  const auto fit = io::measure_oblique_shock(field, wedge);
  const double beta = th::oblique_shock_angle(cfg.wedge_angle_rad(), cfg.mach);
  const double ratio = th::oblique_shock_density_ratio(beta, cfg.mach);
  const auto wake = io::measure_wake(field, wedge);

  bench::print_header("Figure 1 (paper quotes rounded theory values)");
  bench::print_row("shock angle [deg]", 45.0, fit.angle_deg,
                   "exact theory 45.34");
  char rh_note[48];
  std::snprintf(rh_note, sizeof rh_note, "Rankine-Hugoniot %.2f", ratio);
  bench::print_row("post-shock density ratio", 3.7, fit.density_ratio,
                   rh_note);
  bench::print_row("shock thickness [cells]", 3.0, fit.thickness_normal,
                   "10-90% along shock normal");
  bench::print_row("shock thickness, vertical cut", 3.0,
                   fit.thickness_vertical, "as read off a contour plot");
  bench::print_text_row("wake shock", "present",
                        wake.shock_present ? "present" : "absent", "");
  bench::print_kv("wake base density", wake.base_density);
  bench::print_kv("wake recompression at x", wake.recovery_x);

  // Prandtl-Meyer fan at the corner: measured vs isentropic prediction.
  const double m2 =
      th::oblique_shock_downstream_mach(beta, cfg.wedge_angle_rad(), cfg.mach);
  const auto fan =
      io::expansion_fan_check(field, wedge, fit.density_ratio, m2);
  std::printf("\nPrandtl-Meyer fan at the wedge corner (M_surface = %.2f):\n",
              m2);
  std::printf("%8s %18s %18s\n", "turn", "rho/rho2 measured", "theory");
  double rms = 0.0;
  for (const auto& s : fan) {
    std::printf("%7.1f%% %18.3f %18.3f\n", s.turn_deg, s.measured_ratio,
                s.theory_ratio);
    rms += (s.measured_ratio - s.theory_ratio) *
           (s.measured_ratio - s.theory_ratio);
  }
  if (!fan.empty())
    std::printf("rms deviation: %.3f over %zu samples\n",
                std::sqrt(rms / static_cast<double>(fan.size())),
                fan.size());
  return 0;
}
