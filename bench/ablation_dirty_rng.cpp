// Ablation (f): the "quick but dirty" random number source.
//
// Paper: the low-order bits of a fixed-point physical state quantity serve
// as a free random number "of limited size and unspecified distribution"
// for low-impact decisions (sort mixing, transposition choice, sign bits,
// truncation correction).  This bench compares the dirty source against the
// counter-based reference on equilibrium quality and the wedge solution.
#include <cstdio>

#include "bench_common.h"
#include "io/shock_analysis.h"

namespace {

using namespace cmdsmc;

void report_equilibrium(const char* name, core::RngMode mode) {
  core::SimConfig cfg;
  cfg.nx = 24;
  cfg.ny = 24;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;
  cfg.sigma = 0.2;
  cfg.lambda_inf = 0.0;
  cfg.particles_per_cell = 30.0;
  cfg.reservoir_fraction = 0.0;
  cfg.rng_mode = mode;
  cfg.seed = 21;
  core::SimulationF sim(cfg);
  const double e0 = sim.total_energy();
  sim.run(150);
  const auto& s = sim.particles();
  double m2 = 0.0, m4 = 0.0, mx = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double v = s.ux[i].to_double();
    mx += v;
    m2 += v * v;
    m4 += v * v * v * v;
  }
  const auto n = static_cast<double>(s.size());
  mx /= n;
  m2 /= n;
  m4 /= n;
  std::printf("%-12s %14.3e %12.4f %12.3f %14.2e\n", name,
              sim.total_energy() / e0 - 1.0, m2 / (0.2 * 0.2),
              m4 / (m2 * m2), mx);
}

}  // namespace

int main() {
  std::printf("Ablation: dirty (state low bits) vs counter-based RNG, "
              "fixed-point engine\n\nequilibrium box after 150 steps:\n");
  std::printf("%-12s %14s %12s %12s %14s\n", "rng", "energy drift",
              "T/T_target", "kurtosis", "mean ux");
  report_equilibrium("counter", core::RngMode::kCounter);
  report_equilibrium("dirty", core::RngMode::kDirty);

  const auto scale = cmdsmc::bench::scale_from_env(
      {8.0, 300, 300});  // lighter than the figure benches
  std::printf("\nwedge solution (reduced scale):\n%-12s %12s %12s\n", "rng",
              "angle", "ratio");
  for (auto [name, mode] :
       {std::pair{"counter", core::RngMode::kCounter},
        std::pair{"dirty", core::RngMode::kDirty}}) {
    auto cfg = cmdsmc::bench::paper_wedge_config(scale, 0.0);
    cfg.rng_mode = mode;
    core::SimulationF sim(cfg);
    const auto f = cmdsmc::bench::run_and_average_fixed(sim, scale);
    const auto fit = io::measure_oblique_shock(f, *sim.wedge());
    std::printf("%-12s %12.2f %12.2f\n", name, fit.angle_deg,
                fit.density_ratio);
  }
  std::printf("\n(the dirty source is adequate for its low-impact uses -- "
              "the paper's claim)\n");
  return 0;
}
