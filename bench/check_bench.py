#!/usr/bin/env python3
"""Perf-regression gate over BENCH_pipeline.json / BENCH_scaling.json.

Default mode compares the per-particle step time of a fresh bench run
against the committed baseline and fails (exit 1) when it regresses by
more than the allowed fraction.  Optionally appends the run to a
JSON-lines trajectory file so the uploaded artifact carries the history
instead of a single point.

Usage:
    check_bench.py CURRENT.json BASELINE.json [--max-regress 0.25]
                   [--append TRAJECTORY.jsonl] [--label LABEL]
    check_bench.py --scaling BENCH_scaling.json [--min-efficiency 0.8]

The gate metric is `usec_per_particle_step`.  The baseline is measured at
tiny CI scale (CMDSMC_PPC=4 CMDSMC_STEADY_STEPS=60); refresh it with
    CMDSMC_PPC=4 CMDSMC_STEADY_STEPS=60 ./build/perf_pipeline && \
        cp BENCH_pipeline.json bench/baselines/BENCH_pipeline.baseline.json
when runners or the pipeline change intentionally (note the new number in
the PR).  CMDSMC_BENCH_MAX_REGRESS overrides the threshold without a
workflow edit.

--scaling gates the fig7_scaling thread sweep instead: parallel
efficiency of the sharded pipeline at min(8, hardware_threads) must reach
--min-efficiency (CMDSMC_MIN_EFFICIENCY overrides, default 0.8), and
wherever the hardware genuinely has the cores (8/16/32), the sharded run
must not be slower than the static-partition reference — with the
advantage non-decreasing as the thread count grows.  Points past the
machine's core count are oversubscribed and informational only; on a
single-core runner the gate reports and skips.
"""

import argparse
import json
import os
import sys


def check_scaling(path: str, min_eff: float) -> int:
    with open(path) as f:
        bench = json.load(f)
    hw = int(bench.get("hardware_threads", 0))
    points = {int(p["threads"]): p for p in bench.get("points", [])}
    statics = {int(p["threads"]): p for p in bench.get("static_points", [])}
    if not points:
        print(f"check_bench: FAIL — {path} has no scaling points")
        return 1
    for t in sorted(points):
        p = points[t]
        tag = " (oversubscribed)" if hw and t > hw else ""
        print(f"check_bench: scaling @ {t:2d} threads: "
              f"eff={p['efficiency']:.3f} speedup={p['speedup']:.2f} "
              f"collide_imb="
              f"{p['phases']['select_collide']['imbalance']:.2f}{tag}")
    if hw <= 1:
        print(f"check_bench: SKIP — {hw or 'unknown'} hardware thread(s); "
              f"every multi-thread point is oversubscribed, efficiency "
              f"means nothing here")
        return 0

    # Gate point: the largest measured thread count that fits the machine,
    # capped at 8 (the acceptance target; beyond 8 the gate only checks the
    # sharded-vs-static trend).
    gate_t = max(t for t in points if t <= min(8, hw))
    eff = float(points[gate_t]["efficiency"])
    print(f"check_bench: gate point {gate_t} threads "
          f"(hardware {hw}): efficiency {eff:.3f}, floor {min_eff:.2f}")
    if eff < min_eff:
        print(f"check_bench: FAIL — parallel efficiency {eff:.3f} at "
              f"{gate_t} threads is below {min_eff:.2f}")
        return 1

    # Sharded vs static: only meaningful where the cores exist.
    prev_gain = 0.0
    for t in sorted(statics):
        if t > hw or t not in points:
            continue
        sharded = float(points[t]["wall_seconds"])
        static = float(statics[t]["wall_seconds"])
        gain = static / sharded if sharded > 0 else 0.0
        print(f"check_bench: sharded vs static @ {t} threads: "
              f"{gain:.3f}x")
        if gain < 0.95:
            print(f"check_bench: FAIL — sharded pipeline is slower than "
                  f"the static partition at {t} threads ({gain:.3f}x)")
            return 1
        if gain < prev_gain - 0.05:
            print(f"check_bench: FAIL — sharding advantage shrank from "
                  f"{prev_gain:.3f}x to {gain:.3f}x as threads grew; the "
                  f"rebalancer should matter more at higher lane counts")
            return 1
        prev_gain = max(prev_gain, gain)
    print("check_bench: scaling OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("--max-regress", type=float,
                    default=float(os.environ.get("CMDSMC_BENCH_MAX_REGRESS",
                                                 0.25)),
                    help="allowed fractional slowdown (default 0.25)")
    ap.add_argument("--append", metavar="FILE",
                    help="append the current run to this .jsonl trajectory")
    ap.add_argument("--label", default="",
                    help="free-form tag recorded with the appended run "
                         "(e.g. the commit SHA)")
    ap.add_argument("--scaling", action="store_true",
                    help="gate a BENCH_scaling.json thread sweep instead of "
                         "the pipeline baseline comparison")
    ap.add_argument("--min-efficiency", type=float,
                    default=float(os.environ.get("CMDSMC_MIN_EFFICIENCY",
                                                 0.8)),
                    help="parallel-efficiency floor for --scaling "
                         "(default 0.8)")
    args = ap.parse_args()

    if args.scaling:
        return check_scaling(args.current, args.min_efficiency)
    if args.baseline is None:
        ap.error("BASELINE.json is required without --scaling")

    with open(args.current) as f:
        cur = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    # The audit hooks must be compiled out of whatever binary produced the
    # gated number: audit mode is allowed to be arbitrarily slow, so a
    # number from an audit build proves nothing about the shipped hot path
    # (and "audit is free when off" is itself part of the acceptance).
    if cur.get("audit_compiled"):
        print("check_bench: FAIL — BENCH_pipeline.json came from a "
              "-DCMDSMC_AUDIT=ON build; the perf gate must run the "
              "audit-free binary")
        return 1

    metric = "usec_per_particle_step"
    cur_v = float(cur[metric])
    base_v = float(base[metric])
    if cur_v <= 0 or base_v <= 0:
        print(f"check_bench: bad {metric}: current={cur_v} baseline={base_v}")
        return 1

    ratio = cur_v / base_v
    limit = 1.0 + args.max_regress
    print(f"check_bench: {metric} current={cur_v:.6f} baseline={base_v:.6f} "
          f"ratio={ratio:.3f} limit={limit:.3f} "
          f"(threads {cur.get('threads')} vs {base.get('threads')}, "
          f"particles {cur.get('particles')} vs {base.get('particles')})")

    # Per-particle time at tiny scale is only comparable at equal thread
    # counts (parallel overhead dominates otherwise) — the workflow pins
    # CMDSMC_THREADS to match the baseline.
    if cur.get("threads") != base.get("threads"):
        print(f"check_bench: FAIL — thread count mismatch "
              f"({cur.get('threads')} vs baseline {base.get('threads')}); "
              f"run the bench with CMDSMC_THREADS={base.get('threads')}.")
        return 1

    if args.append:
        rec = dict(cur)
        rec["label"] = args.label
        rec["baseline_" + metric] = base_v
        rec["ratio_vs_baseline"] = ratio
        with open(args.append, "a") as f:
            f.write(json.dumps(rec, sort_keys=True) + "\n")
        print(f"check_bench: appended run to {args.append}")

    if ratio > limit:
        print(f"check_bench: FAIL — per-particle time regressed "
              f"{(ratio - 1.0) * 100:.1f}% (> {args.max_regress * 100:.0f}% "
              f"allowed). If intentional, refresh "
              f"bench/baselines/BENCH_pipeline.baseline.json and explain in "
              f"the PR.")
        return 1
    print("check_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
