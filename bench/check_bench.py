#!/usr/bin/env python3
"""Perf-regression gate over BENCH_pipeline.json.

Compares the per-particle step time of a fresh bench run against the
committed baseline and fails (exit 1) when it regresses by more than the
allowed fraction.  Optionally appends the run to a JSON-lines trajectory
file so the uploaded artifact carries the history instead of a single
point.

Usage:
    check_bench.py CURRENT.json BASELINE.json [--max-regress 0.25]
                   [--append TRAJECTORY.jsonl] [--label LABEL]

The gate metric is `usec_per_particle_step`.  The baseline is measured at
tiny CI scale (CMDSMC_PPC=4 CMDSMC_STEADY_STEPS=60); refresh it with
    CMDSMC_PPC=4 CMDSMC_STEADY_STEPS=60 ./build/perf_pipeline && \
        cp BENCH_pipeline.json bench/baselines/BENCH_pipeline.baseline.json
when runners or the pipeline change intentionally (note the new number in
the PR).  CMDSMC_BENCH_MAX_REGRESS overrides the threshold without a
workflow edit.
"""

import argparse
import json
import os
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--max-regress", type=float,
                    default=float(os.environ.get("CMDSMC_BENCH_MAX_REGRESS",
                                                 0.25)),
                    help="allowed fractional slowdown (default 0.25)")
    ap.add_argument("--append", metavar="FILE",
                    help="append the current run to this .jsonl trajectory")
    ap.add_argument("--label", default="",
                    help="free-form tag recorded with the appended run "
                         "(e.g. the commit SHA)")
    args = ap.parse_args()

    with open(args.current) as f:
        cur = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    metric = "usec_per_particle_step"
    cur_v = float(cur[metric])
    base_v = float(base[metric])
    if cur_v <= 0 or base_v <= 0:
        print(f"check_bench: bad {metric}: current={cur_v} baseline={base_v}")
        return 1

    ratio = cur_v / base_v
    limit = 1.0 + args.max_regress
    print(f"check_bench: {metric} current={cur_v:.6f} baseline={base_v:.6f} "
          f"ratio={ratio:.3f} limit={limit:.3f} "
          f"(threads {cur.get('threads')} vs {base.get('threads')}, "
          f"particles {cur.get('particles')} vs {base.get('particles')})")

    # Per-particle time at tiny scale is only comparable at equal thread
    # counts (parallel overhead dominates otherwise) — the workflow pins
    # CMDSMC_THREADS to match the baseline.
    if cur.get("threads") != base.get("threads"):
        print(f"check_bench: FAIL — thread count mismatch "
              f"({cur.get('threads')} vs baseline {base.get('threads')}); "
              f"run the bench with CMDSMC_THREADS={base.get('threads')}.")
        return 1

    if args.append:
        rec = dict(cur)
        rec["label"] = args.label
        rec["baseline_" + metric] = base_v
        rec["ratio_vs_baseline"] = ratio
        with open(args.append, "a") as f:
            f.write(json.dumps(rec, sort_keys=True) + "\n")
        print(f"check_bench: appended run to {args.append}")

    if ratio > limit:
        print(f"check_bench: FAIL — per-particle time regressed "
              f"{(ratio - 1.0) * 100:.1f}% (> {args.max_regress * 100:.0f}% "
              f"allowed). If intentional, refresh "
              f"bench/baselines/BENCH_pipeline.baseline.json and explain in "
              f"the PR.")
        return 1
    print("check_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
