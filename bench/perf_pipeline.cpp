// Machine-readable per-step pipeline benchmark.
//
// Runs the paper's wedge wind tunnel (scaled by the usual CMDSMC_* env
// knobs) through the fused step pipeline and writes BENCH_pipeline.json to
// the working directory: usec/particle/step, per-phase seconds and shares,
// thread and particle counts.  CI uploads the file as an artifact so the
// perf trajectory is tracked across PRs instead of asserted in prose.
#include <cstdio>

#include "bench_common.h"
#include "cmdp/thread_pool.h"

int main() {
  using namespace cmdsmc;
  using S = core::SimulationD;
  const auto scale = bench::scale_from_env();
  auto& pool = cmdp::ThreadPool::global();

  auto cfg = bench::paper_wedge_config(scale, 0.0);
  S sim(cfg, &pool);
  sim.run(40);  // warm-up: reach a representative particle distribution
  sim.timers().reset();
  const int steps = scale.steady_steps / 2 + 50;
  sim.run(steps);

  const double total = sim.total_seconds();
  const double usec_per =
      1e6 * total / (static_cast<double>(sim.flow_count()) * steps);
  const S::Phase phases[4] = {S::kPhaseMove, S::kPhaseSort, S::kPhaseSelect,
                              S::kPhaseCollide};
  const char* keys[4] = {"move_bc", "sort", "select", "collide"};

  std::printf("perf_pipeline: %u threads, %zu particles, %d steps\n",
              pool.size(), sim.total_count(), steps);
  bench::print_kv("usec/particle/step", usec_per);
  for (int k = 0; k < 4; ++k)
    bench::print_kv(std::string(keys[k]) + " share [%]",
                    total > 0.0 ? 100.0 * sim.phase_seconds(phases[k]) / total
                                : 0.0);

  std::FILE* f = std::fopen("BENCH_pipeline.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_pipeline\",\n");
  std::fprintf(f, "  \"scenario\": \"wedge-mach4 (paper wind tunnel)\",\n");
  std::fprintf(f, "  \"threads\": %u,\n", pool.size());
  std::fprintf(f, "  \"particles\": %zu,\n", sim.total_count());
  std::fprintf(f, "  \"flow_particles\": %zu,\n", sim.flow_count());
  std::fprintf(f, "  \"particles_per_cell\": %g,\n", cfg.particles_per_cell);
  std::fprintf(f, "  \"steps\": %d,\n", steps);
  std::fprintf(f, "  \"total_seconds\": %.6f,\n", total);
  std::fprintf(f, "  \"usec_per_particle_step\": %.6f,\n", usec_per);
  std::fprintf(f, "  \"phases\": {");
  for (int k = 0; k < 4; ++k) {
    const double sec = sim.phase_seconds(phases[k]);
    std::fprintf(f, "%s\"%s\": {\"seconds\": %.6f, \"share\": %.4f}",
                 k == 0 ? "" : ", ", keys[k],
                 sec, total > 0.0 ? sec / total : 0.0);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"notes\": \"select is fused into collide; sort keys "
                  "and cell tables are produced by the move and sort phases "
                  "respectively\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_pipeline.json\n");
  return 0;
}
