// Machine-readable per-step pipeline benchmark.
//
// Runs the paper's wedge wind tunnel (scaled by the usual CMDSMC_* env
// knobs) through the fused step pipeline and writes BENCH_pipeline.json to
// the working directory: usec/particle/step, per-phase seconds and shares,
// thread and particle counts.  CI uploads the file as an artifact so the
// perf trajectory is tracked across PRs instead of asserted in prose.
//
// CMDSMC_TELEMETRY=<path> (and optionally CMDSMC_TRACE=<path>) attach a
// full TelemetrySession for the timed steps — the telemetry-on leg of the
// CI overhead gate (bench/check_telemetry.py --overhead).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "audit/audit.h"
#include "bench_common.h"
#include "cmdp/thread_pool.h"
#include "obs/telemetry.h"

int main() {
  using namespace cmdsmc;
  using S = core::SimulationD;
  const auto scale = bench::scale_from_env();
  auto& pool = cmdp::ThreadPool::global();

  auto cfg = bench::paper_wedge_config(scale, 0.0);
  S sim(cfg, &pool);
  sim.run(40);  // warm-up: reach a representative particle distribution
  sim.timers().reset();
  const int steps = scale.steady_steps / 2 + 50;
  std::unique_ptr<obs::TelemetrySession> telemetry;
  const char* tele_path = std::getenv("CMDSMC_TELEMETRY");
  const char* trace_path = std::getenv("CMDSMC_TRACE");
  if (tele_path != nullptr || trace_path != nullptr) {
    obs::TelemetryOptions topt;
    if (tele_path != nullptr) topt.jsonl_path = tele_path;
    if (trace_path != nullptr) topt.trace_path = trace_path;
    telemetry = std::make_unique<obs::TelemetrySession>(std::move(topt));
    sim.set_step_observer(telemetry.get());
  }
  const auto wall0 = std::chrono::steady_clock::now();
  sim.run(steps);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  // Telemetry overhead, measured honestly: the phase timers cover every
  // phase scope but *not* the between-phase observer work (stats assembly,
  // JSONL formatting, trace spans, file writes), while the wall clock covers
  // both — so (wall - phases)/wall of the attached run is the observer cost
  // directly, with no differencing of two noisy process totals (a detached
  // run's gap measures 0.02%, so the residual loop overhead is negligible).
  double overhead_percent = -1.0;
  if (telemetry) {
    sim.set_step_observer(nullptr);
    telemetry->finish();
    const double phase_sum = sim.total_seconds();
    overhead_percent = wall_seconds > 0.0
                           ? 100.0 * (wall_seconds - phase_sum) / wall_seconds
                           : 0.0;
  }

  // Phase shares come from the phase timers; the headline per-particle cost
  // uses wall clock so between-phase work (including an attached telemetry
  // session's per-step emit) is charged — the timers never see it, and the
  // overhead gate would be blind on phase sums alone.
  const double total = sim.total_seconds();
  const double usec_per =
      1e6 * wall_seconds / (static_cast<double>(sim.flow_count()) * steps);
  const S::Phase phases[4] = {S::kPhaseMove, S::kPhaseSort, S::kPhaseSelect,
                              S::kPhaseCollide};
  const char* keys[4] = {"move_bc", "sort", "select", "collide"};

  std::printf("perf_pipeline: %u threads, %zu particles, %d steps\n",
              pool.size(), sim.total_count(), steps);
  bench::print_kv("usec/particle/step", usec_per);
  if (telemetry) bench::print_kv("telemetry overhead [%]", overhead_percent);
  for (int k = 0; k < 4; ++k)
    bench::print_kv(std::string(keys[k]) + " share [%]",
                    total > 0.0 ? 100.0 * sim.phase_seconds(phases[k]) / total
                                : 0.0);

  std::FILE* f = std::fopen("BENCH_pipeline.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_pipeline\",\n");
  std::fprintf(f, "  \"scenario\": \"wedge-mach4 (paper wind tunnel)\",\n");
  std::fprintf(f, "  \"threads\": %u,\n", pool.size());
  std::fprintf(f, "  \"particles\": %zu,\n", sim.total_count());
  std::fprintf(f, "  \"flow_particles\": %zu,\n", sim.flow_count());
  std::fprintf(f, "  \"particles_per_cell\": %g,\n", cfg.particles_per_cell);
  std::fprintf(f, "  \"steps\": %d,\n", steps);
  std::fprintf(f, "  \"total_seconds\": %.6f,\n", total);
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n", wall_seconds);
  std::fprintf(f, "  \"usec_per_particle_step\": %.6f,\n", usec_per);
  std::fprintf(f, "  \"phases\": {");
  for (int k = 0; k < 4; ++k) {
    const double sec = sim.phase_seconds(phases[k]);
    std::fprintf(f, "%s\"%s\": {\"seconds\": %.6f, \"share\": %.4f}",
                 k == 0 ? "" : ", ", keys[k],
                 sec, total > 0.0 ? sec / total : 0.0);
  }
  std::fprintf(f, "},\n");
  // Fused percentage breakdown (the truthful phase split: select has been
  // fused into collide since PR 3) — baselines carry per-phase data, not
  // just the total.
  const double fused =
      sim.phase_seconds(S::kPhaseSelect) + sim.phase_seconds(S::kPhaseCollide);
  std::fprintf(f,
               "  \"phase_share_percent\": {\"move_bc\": %.2f, "
               "\"sort\": %.2f, \"select_collide\": %.2f, \"sample\": %.2f},\n",
               total > 0.0 ? 100.0 * sim.phase_seconds(S::kPhaseMove) / total
                           : 0.0,
               total > 0.0 ? 100.0 * sim.phase_seconds(S::kPhaseSort) / total
                           : 0.0,
               total > 0.0 ? 100.0 * fused / total : 0.0,
               total > 0.0 ? 100.0 * sim.phase_seconds(S::kPhaseSample) / total
                           : 0.0);
  // The perf gate only accepts numbers from an audit-free binary: the
  // invariant audit must be zero-cost when compiled out, and gating on an
  // audit build would mask a regression in the real hot path.
  std::fprintf(f, "  \"audit_compiled\": %s,\n",
               cmdsmc::audit::kAuditCompiled ? "true" : "false");
  std::fprintf(f, "  \"telemetry_attached\": %s,\n",
               telemetry ? "true" : "false");
  if (telemetry)
    std::fprintf(f, "  \"telemetry_overhead_percent\": %.3f,\n",
                 overhead_percent);
  std::fprintf(f, "  \"notes\": \"select is fused into collide; sort keys "
                  "and cell tables are produced by the move and sort phases "
                  "respectively\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_pipeline.json\n");
  return 0;
}
