// Table C (extension, not in the paper): surface-coefficient validation of
// the generalized body subsystem, driven entirely through registry
// scenarios with key=value-style overrides.  The paper's figures stop at
// field quantities; this table checks the per-segment momentum/energy
// bookkeeping against the classical references available in closed form:
//   - specular wedge ramp Cp vs oblique-shock theory,
//   - wedge drag vs the ramp-pressure estimate Cd = Cp tan(theta),
//   - blunt cylinder stagnation Cp and drag vs the Newtonian impact limit.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/surface_sampling.h"
#include "physics/theory.h"

int main() {
  using namespace cmdsmc;
  namespace th = physics::theory;

  std::printf("Table C: surface coefficients (generalized-body extension)\n");

  // --- Specular wedge via Body::Wedge -------------------------------------
  auto spec = bench::spec_from_env("wedge-mach4");
  scenario::apply_override(spec, "body.kind", "wedge");
  scenario::apply_override(spec, "body.x0", "20");
  scenario::apply_override(spec, "body.chord", "25");
  scenario::apply_override(spec, "body.angle_deg", "30");
  const auto wedge_run = bench::run_spec(spec);
  const core::SurfaceStats& sw = *wedge_run.surface;
  const core::SimConfig& cfg = wedge_run.config;

  const double theta = cfg.wedge_angle_rad();
  const double beta = th::oblique_shock_angle(theta, cfg.mach);
  const double mn = cfg.mach * std::sin(beta);
  const double p_ratio = th::normal_shock_pressure_ratio(mn);
  const double cp_theory =
      (p_ratio - 1.0) / (0.5 * th::kGammaDiatomic * cfg.mach * cfg.mach);
  // Ramp pressure projected on x, referenced to the base chord; the wake
  // back face contributes little at hypersonic speeds.
  const double cd_theory = cp_theory * std::tan(theta);

  const core::SurfaceSegmentStats& ramp = sw.segments[2];
  bench::print_header("specular 30-deg wedge, Mach 4 (oblique-shock theory)");
  bench::print_row("ramp Cp", cp_theory, ramp.cp, "segment-averaged");
  bench::print_row("ramp Cf", 0.0, ramp.cf, "specular: no shear");
  bench::print_row("ramp Ch", 0.0, ramp.ch, "specular: no heat");
  bench::print_row("drag Cd", cd_theory, sw.cd, "ramp-pressure estimate");
  bench::print_kv("back-face Cp", sw.segments[1].cp);
  bench::print_kv("lift Cl (downforce)", sw.cl);

  // --- Diffuse cold-wall wedge ---------------------------------------------
  auto spec_d = bench::spec_from_env("wedge-mach4");
  scenario::apply_override(spec_d, "body.kind", "wedge");
  scenario::apply_override(spec_d, "body.x0", "20");
  scenario::apply_override(spec_d, "body.chord", "25");
  scenario::apply_override(spec_d, "body.angle_deg", "30");
  scenario::apply_override(spec_d, "body.wall", "diffuse_isothermal");
  scenario::apply_override(spec_d, "body.twall", "0.5");
  const auto dwedge = bench::run_spec(spec_d);
  const core::SurfaceStats& sd = *dwedge.surface;
  bench::print_header("diffuse cold-wall wedge (T_w = T_inf / 2)");
  bench::print_kv("ramp Cp", sd.segments[2].cp);
  bench::print_kv("ramp Cf", sd.segments[2].cf);
  bench::print_kv("ramp Ch", sd.segments[2].ch);
  bench::print_kv("drag Cd (friction adds to pressure)", sd.cd);
  bench::print_kv("integrated heating", sd.heat_total);
  bench::print_kv("incident energy flux", sd.q_incident_total);
  bench::print_kv("reflected energy flux", sd.q_reflected_total);

  // --- Blunt cylinder -------------------------------------------------------
  auto spec_c = bench::spec_from_env("cylinder-mach10");
  scenario::apply_override(spec_c, "mach", "6");
  const auto cyl = bench::run_spec(spec_c);
  const core::SurfaceStats& sc = *cyl.surface;
  bench::print_header("diffuse cylinder, Mach 6 (Newtonian impact limit)");
  bench::print_row("stagnation Cp", 2.0, cyl.cp_max(), "Newtonian Cp_max");
  bench::print_row("drag Cd", 2.0 / 3.0 * 2.0, sc.cd,
                   "Newtonian 2/3 Cp_max");
  bench::print_row("lift Cl", 0.0, sc.cl, "symmetric body");
  return 0;
}
