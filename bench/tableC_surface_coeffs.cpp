// Table C (extension, not in the paper): surface-coefficient validation of
// the generalized body subsystem.  The paper's figures stop at field
// quantities; this table checks the per-segment momentum/energy bookkeeping
// against the classical references available in closed form:
//   - specular wedge ramp Cp vs oblique-shock theory,
//   - wedge drag vs the ramp-pressure estimate Cd = Cp tan(theta),
//   - blunt cylinder stagnation Cp and drag vs the Newtonian impact limit.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/surface_sampling.h"
#include "physics/theory.h"

int main() {
  using namespace cmdsmc;
  namespace th = physics::theory;
  const auto scale = bench::scale_from_env();

  std::printf("Table C: surface coefficients (generalized-body extension)\n");

  // --- Specular wedge via Body::Wedge -------------------------------------
  auto cfg = bench::paper_wedge_config(scale, 0.0);
  cfg.body = geom::Body::Wedge(cfg.wedge_x0, cfg.wedge_base,
                               cfg.wedge_angle_rad());
  core::SimulationD wedge(cfg);
  wedge.run(scale.steady_steps);
  wedge.set_sampling(true);
  wedge.set_surface_sampling(true);
  wedge.run(scale.avg_steps);
  const core::SurfaceStats sw = wedge.surface();

  const double theta = cfg.wedge_angle_rad();
  const double beta = th::oblique_shock_angle(theta, cfg.mach);
  const double mn = cfg.mach * std::sin(beta);
  const double p_ratio = th::normal_shock_pressure_ratio(mn);
  const double cp_theory =
      (p_ratio - 1.0) / (0.5 * th::kGammaDiatomic * cfg.mach * cfg.mach);
  // Ramp pressure projected on x, referenced to the base chord; the wake
  // back face contributes little at hypersonic speeds.
  const double cd_theory = cp_theory * std::tan(theta);

  const core::SurfaceSegmentStats& ramp = sw.segments[2];
  bench::print_header("specular 30-deg wedge, Mach 4 (oblique-shock theory)");
  bench::print_row("ramp Cp", cp_theory, ramp.cp, "segment-averaged");
  bench::print_row("ramp Cf", 0.0, ramp.cf, "specular: no shear");
  bench::print_row("ramp Ch", 0.0, ramp.ch, "specular: no heat");
  bench::print_row("drag Cd", cd_theory, sw.cd, "ramp-pressure estimate");
  bench::print_kv("back-face Cp", sw.segments[1].cp);
  bench::print_kv("lift Cl (downforce)", sw.cl);

  // --- Diffuse cold-wall wedge ---------------------------------------------
  auto cfg_d = cfg;
  cfg_d.body->set_wall_model(geom::WallModel::kDiffuseIsothermal,
                             cfg.sigma * std::sqrt(0.5));
  core::SimulationD dwedge(cfg_d);
  dwedge.run(scale.steady_steps);
  dwedge.set_surface_sampling(true);
  dwedge.run(scale.avg_steps);
  const core::SurfaceStats sd = dwedge.surface();
  bench::print_header("diffuse cold-wall wedge (T_w = T_inf / 2)");
  bench::print_kv("ramp Cp", sd.segments[2].cp);
  bench::print_kv("ramp Cf", sd.segments[2].cf);
  bench::print_kv("ramp Ch", sd.segments[2].ch);
  bench::print_kv("drag Cd (friction adds to pressure)", sd.cd);
  bench::print_kv("integrated heating", sd.heat_total);

  // --- Blunt cylinder -------------------------------------------------------
  core::SimConfig cyl_cfg;
  cyl_cfg.nx = 96;
  cyl_cfg.ny = 64;
  cyl_cfg.mach = 6.0;
  cyl_cfg.sigma = 0.12;
  cyl_cfg.lambda_inf = 0.5;
  cyl_cfg.particles_per_cell = scale.particles_per_cell;
  cyl_cfg.body = geom::Body::Cylinder(32.0, 32.0, 8.0, 36);
  cyl_cfg.body->set_wall_model(geom::WallModel::kDiffuseIsothermal,
                               cyl_cfg.sigma);
  core::SimulationD cyl(cyl_cfg);
  cyl.run(scale.steady_steps);
  cyl.set_surface_sampling(true);
  cyl.run(scale.avg_steps);
  const core::SurfaceStats sc = cyl.surface();
  double cp_max = 0.0;
  for (const auto& seg : sc.segments)
    if (seg.cp > cp_max) cp_max = seg.cp;
  bench::print_header("diffuse cylinder, Mach 6 (Newtonian impact limit)");
  bench::print_row("stagnation Cp", 2.0, cp_max, "Newtonian Cp_max");
  bench::print_row("drag Cd", 2.0 / 3.0 * 2.0, sc.cd,
                   "Newtonian 2/3 Cp_max");
  bench::print_row("lift Cl", 0.0, sc.cl, "symmetric body");
  return 0;
}
