// Fleet throughput: jobs/sec of a fixed sweep vs fleet.threads.
//
// Runs the same N-job sweep (cylinder-mach10, scaled down) at fleet widths
// 1,2,4,8 (capped at the hardware) with the result cache off, and writes
// BENCH_fleet.json: per-width jobs/sec and speedup over the single-thread
// fleet.  Jobs are independent, so the speedup should track the width until
// the machine runs out of cores — the paper's throughput story applied
// across runs instead of within one.
//
// Env knobs for CI scale: CMDSMC_FLEET_JOBS (default 12) and
// CMDSMC_FLEET_STEPS (per-job steady=avg step count, default 40).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fleet/scheduler.h"
#include "fleet/sweep.h"

namespace {

int env_int(const char* name, int fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::atoi(s);
}

}  // namespace

int main() {
  using namespace cmdsmc;
  namespace fs = std::filesystem;

  const int n_jobs = std::max(1, env_int("CMDSMC_FLEET_JOBS", 12));
  const int steps = std::max(1, env_int("CMDSMC_FLEET_STEPS", 40));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  fleet::SweepRequest request;
  request.scenario = "cylinder-mach10";
  request.fixed = {{"nx", "64"},
                   {"ny", "48"},
                   {"ppc", "4"},
                   {"steps", std::to_string(steps)}};
  fleet::SweepAxis axis;
  axis.key = "twall";  // valid at any point count (mach hits the speed cap)
  for (int j = 0; j < n_jobs; ++j) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", 0.5 + 0.05 * j);
    axis.values.emplace_back(buf);
  }
  request.axes.push_back(axis);
  const std::vector<fleet::FleetJob> jobs = fleet::expand_sweep(request);

  const fs::path base =
      fs::temp_directory_path() / "cmdsmc_bench_fleet_throughput";
  fs::remove_all(base);

  std::printf("fleet throughput: %d jobs (cylinder-mach10 64x48, %d steps)\n",
              n_jobs, steps);
  std::printf("%8s %12s %12s %10s\n", "threads", "seconds", "jobs/sec",
              "speedup");

  struct Point {
    unsigned threads;
    double seconds;
    double jobs_per_second;
    double speedup;
  };
  std::vector<Point> points;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    if (threads > hw && threads != 1u) {
      std::printf("%8u %12s %12s %10s\n", threads, "-", "-",
                  "(> hardware)");
      continue;
    }
    fleet::FleetOptions options;
    options.fleet_threads = threads;
    options.job_threads = 1;
    options.cache = false;  // measure execution, not replay
    std::string leg = "t";  // sequential appends: GCC 12 -Wrestrict
    leg += std::to_string(threads);
    options.dir = (base / leg).string();

    const auto t0 = std::chrono::steady_clock::now();
    fleet::FleetScheduler scheduler(options);
    scheduler.submit(jobs);
    const fleet::FleetSummary summary = scheduler.finish();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (summary.failed != 0) {
      std::fprintf(stderr, "fleet_throughput: %zu jobs failed\n",
                   summary.failed);
      return 1;
    }
    Point p;
    p.threads = threads;
    p.seconds = seconds;
    p.jobs_per_second = seconds > 0.0 ? n_jobs / seconds : 0.0;
    p.speedup = points.empty()
                    ? 1.0
                    : p.jobs_per_second / points.front().jobs_per_second;
    points.push_back(p);
    std::printf("%8u %12.3f %12.2f %10.2f\n", p.threads, p.seconds,
                p.jobs_per_second, p.speedup);
  }
  fs::remove_all(base);

  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fleet_throughput\",\n"
               "  \"jobs\": %d,\n  \"steps\": %d,\n"
               "  \"hardware_threads\": %u,\n  \"points\": [\n",
               n_jobs, steps, hw);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"fleet_threads\": %u, \"seconds\": %.6f, "
                 "\"jobs_per_second\": %.4f, \"speedup\": %.4f}%s\n",
                 p.threads, p.seconds, p.jobs_per_second, p.speedup,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_fleet.json\n");
  return 0;
}
