// Figure 2: perspective view of the density *surface* for the
// near-continuum solution (the `wedge-mach4` registry scenario).  The
// quantitative content of the figure is the fully developed wake shock
// where the corner-expanded flow meets the tunnel floor; this bench
// regenerates the surface (as CSV + a coarse height-map) and the
// wake-shock evidence.
#include <cstdio>

#include "bench_common.h"
#include "io/contour.h"
#include "io/csv.h"
#include "io/shock_analysis.h"

int main() {
  using namespace cmdsmc;
  auto spec = bench::spec_from_env("wedge-mach4");

  std::printf("Figure 2: density surface, near continuum (%.0f ppc)\n",
              spec.config.particles_per_cell);
  const auto r = bench::run_spec(spec);
  const auto& field = r.field;
  io::write_field_csv_file("fig2_density_surface.csv", field, field.density,
                           "rho");
  std::printf("surface written to fig2_density_surface.csv "
              "(plot z = rho(x, y) for the paper's perspective view)\n");

  // Coarse height map: density quantized to one digit per 2x2 cell block.
  std::printf("\ndensity height map (0 = vacuum .. 9 >= 4.5):\n");
  for (int iy = field.grid.ny - 2; iy >= 0; iy -= 2) {
    for (int ix = 0; ix < field.grid.nx - 1; ix += 2) {
      double v = 0.25 * (field.at(field.density, ix, iy) +
                         field.at(field.density, ix + 1, iy) +
                         field.at(field.density, ix, iy + 1) +
                         field.at(field.density, ix + 1, iy + 1));
      int d = static_cast<int>(v / 0.5);
      if (d > 9) d = 9;
      std::printf("%d", d);
    }
    std::printf("\n");
  }

  const auto wake = io::measure_wake(field, bench::analysis_wedge(r.config));
  bench::print_header("Figure 2");
  bench::print_text_row("wake shock (floor recompression)", "present",
                        wake.shock_present ? "present" : "absent",
                        "expanded corner flow meets the floor");
  bench::print_kv("wake base density (behind back face)", wake.base_density);
  bench::print_kv("wake max floor density", wake.max_density);
  bench::print_kv("recompression front at x", wake.recovery_x);
  return 0;
}
