// Ablation (d): the three collision-partner selection schemes the paper
// discusses, on identical workloads:
//   - Baganoff pairwise (this paper): particle-parallel, conserves exactly
//   - Bird time counter: cell-parallel only, conserves exactly
//   - Nanbu/Ploss: particle-parallel, conserves only in the mean
//
// Comparison axes: wall time per step on (1) a uniform box and (2) a
// load-imbalanced box (the paper's argument for the particles-to-processors
// mapping), plus conservation drift and relaxation quality.
#include <chrono>
#include <cstdio>

#include "baseline/bird_tc.h"
#include "baseline/nanbu.h"
#include "baseline/pairwise.h"
#include "bench_common.h"
#include "cmdp/thread_pool.h"
#include "rng/samplers.h"

namespace {

using namespace cmdsmc;

core::ParticleStore<double> make_gas(const geom::Grid& grid, double ppc,
                                     double sigma, bool imbalanced,
                                     std::uint64_t seed) {
  core::ParticleStore<double> s;
  rng::SplitMix64 g(seed);
  const auto n =
      static_cast<std::size_t>(ppc * static_cast<double>(grid.ncells()));
  s.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = g.next_double() * grid.nx;
    // Imbalanced: 90% of the particles in 10% of the columns (a crude
    // post-shock pile-up).
    if (imbalanced && g.next_double() < 0.9)
      x = g.next_double() * grid.nx * 0.1;
    const double y = g.next_double() * grid.ny;
    s.x[i] = x;
    s.y[i] = y;
    s.ux[i] = rng::sample_rectangular(g, sigma);
    s.uy[i] = rng::sample_rectangular(g, sigma);
    s.uz[i] = rng::sample_rectangular(g, sigma);
    s.r0[i] = rng::sample_rectangular(g, sigma);
    s.r1[i] = rng::sample_rectangular(g, sigma);
    s.perm[i] = rng::perm_table()[g.next_below(rng::kPermCount)];
    s.cell[i] = grid.index(static_cast<int>(x), static_cast<int>(y));
  }
  return s;
}

double energy(const core::ParticleStore<double>& s) {
  double e = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i)
    e += 0.5 * (s.ux[i] * s.ux[i] + s.uy[i] * s.uy[i] + s.uz[i] * s.uz[i] +
                s.r0[i] * s.r0[i] + s.r1[i] * s.r1[i]);
  return e;
}

double kurtosis(const core::ParticleStore<double>& s) {
  double m2 = 0.0, m4 = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    m2 += s.ux[i] * s.ux[i];
    m4 += s.ux[i] * s.ux[i] * s.ux[i] * s.ux[i];
  }
  m2 /= static_cast<double>(s.size());
  m4 /= static_cast<double>(s.size());
  return m4 / (m2 * m2);
}

template <class Scheme>
void run_case(const char* name, const geom::Grid& grid, bool imbalanced) {
  auto& pool = cmdp::ThreadPool::global();
  baseline::BaselineConfig cfg;
  cfg.pc_inf = 0.5;
  cfg.n_inf = 24.0;
  auto gas = make_gas(grid, cfg.n_inf, 0.2, imbalanced, 99);
  Scheme scheme(grid, cfg);
  const double e0 = energy(gas);
  const int steps = 30;
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) scheme.collision_step(pool, gas);
  const auto t1 = std::chrono::steady_clock::now();
  const double usec =
      1e6 * std::chrono::duration<double>(t1 - t0).count() /
      (static_cast<double>(gas.size()) * steps);
  std::printf("%-22s %12.4f %14.2e %12.3f %14llu\n", name, usec,
              energy(gas) / e0 - 1.0, kurtosis(gas),
              static_cast<unsigned long long>(scheme.collisions()));
}

void run_suite(const char* title, bool imbalanced) {
  geom::Grid grid{48, 48, 0};
  std::printf("\n%s\n", title);
  std::printf("%-22s %12s %14s %12s %14s\n", "scheme", "usec/ptcl/step",
              "energy drift", "kurtosis", "collisions");
  run_case<baseline::PairwiseScheme>("Baganoff pairwise", grid, imbalanced);
  run_case<baseline::BirdTimeCounter>("Bird time counter", grid, imbalanced);
  run_case<baseline::NanbuScheme>("Nanbu/Ploss", grid, imbalanced);
}

}  // namespace

int main() {
  std::printf("Ablation: collision-partner selection schemes "
              "(%u threads; rectangular start, kurtosis -> 3.0)\n",
              cmdp::ThreadPool::global().size());
  run_suite("uniform density box:", false);
  run_suite("load-imbalanced box (90% of mass in 10% of cells):", true);
  std::printf("\n(the paper's argument: cell-level schemes are bounded by "
              "the most populated cell, the pairwise scheme load-balances "
              "at particle granularity)\n");
  return 0;
}
