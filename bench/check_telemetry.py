#!/usr/bin/env python3
"""Telemetry artifact validator and overhead gate.

Two modes:

  check_telemetry.py TELEMETRY.jsonl [TRACE.json]
      Validates the per-step telemetry stream: every line parses as JSON,
      carries the full metric schema, and the `step` field is strictly
      monotone.  When a Chrome-trace path is given, checks that it is one
      valid JSON array of well-formed trace events ("M" metadata + "X"
      complete spans with non-negative ts/dur) and that at least one span
      exists per fused pipeline phase.

  check_telemetry.py --overhead BENCH_pipeline.json
      Gates telemetry overhead.  perf_pipeline, when run with
      CMDSMC_TELEMETRY set, embeds `telemetry_overhead_percent`: the gap
      between the timed loop's wall clock and its phase-timer sum, which
      is exactly the observer work since the phase timers never see it
      (process-to-process comparison of two bench runs would drown in
      runner noise).  Fails when that measurement exceeds the allowed
      overhead (default 3%, override with CMDSMC_TELEMETRY_MAX_OVERHEAD
      or --max-overhead).
"""

import argparse
import json
import math
import os
import sys

# One entry per metric the JSONL schema promises (docs/observability.md).
REQUIRED_KEYS = [
    "step", "flow", "reservoir", "total", "weighted_census",
    "candidates", "collisions", "reservoir_collisions", "accept_rate",
    "removed", "injected", "synthesized", "cloned", "merged",
    "wall_events", "occ", "arena_bytes", "shard", "phase_seconds", "lanes",
    "imbalance", "cum",
]
SHARD_KEYS = ["count", "repartitions", "imbalance", "post_imbalance"]
# Optional block: present only on audited runs (CMDSMC_AUDIT build + audit=1).
AUDIT_KEYS = ["checks", "violations"]
PHASE_KEYS = ["move", "sort", "select_collide", "sample", "step"]
FUSED_PHASES = ["move", "sort", "select_collide", "sample"]


def check_jsonl(path: str) -> int:
    prev_step = None
    records = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"check_telemetry: FAIL — {path}:{lineno}: "
                      f"invalid JSON ({e})")
                return 1
            missing = [k for k in REQUIRED_KEYS if k not in rec]
            if missing:
                print(f"check_telemetry: FAIL — {path}:{lineno}: "
                      f"missing keys {missing}")
                return 1
            for k in PHASE_KEYS:
                if k not in rec["phase_seconds"]:
                    print(f"check_telemetry: FAIL — {path}:{lineno}: "
                          f"phase_seconds missing '{k}'")
                    return 1
            for k in SHARD_KEYS:
                if k not in rec["shard"]:
                    print(f"check_telemetry: FAIL — {path}:{lineno}: "
                          f"shard missing '{k}'")
                    return 1
            if "audit" in rec:
                for k in AUDIT_KEYS:
                    if k not in rec["audit"]:
                        print(f"check_telemetry: FAIL — {path}:{lineno}: "
                              f"audit missing '{k}'")
                        return 1
            step = rec["step"]
            if prev_step is not None and step <= prev_step:
                print(f"check_telemetry: FAIL — {path}:{lineno}: step "
                      f"{step} not greater than previous {prev_step}")
                return 1
            if rec["total"] != rec["flow"] + rec["reservoir"]:
                print(f"check_telemetry: FAIL — {path}:{lineno}: total "
                      f"{rec['total']} != flow + reservoir")
                return 1
            if not math.isfinite(rec["accept_rate"]):
                print(f"check_telemetry: FAIL — {path}:{lineno}: "
                      f"non-finite accept_rate")
                return 1
            prev_step = step
            records += 1
    if records == 0:
        print(f"check_telemetry: FAIL — {path}: no records")
        return 1
    print(f"check_telemetry: {path}: {records} records, steps monotone, "
          f"schema OK")
    return 0


def check_trace(path: str) -> int:
    with open(path) as f:
        try:
            events = json.load(f)
        except json.JSONDecodeError as e:
            print(f"check_telemetry: FAIL — {path}: invalid JSON ({e})")
            return 1
    if not isinstance(events, list) or not events:
        print(f"check_telemetry: FAIL — {path}: expected a non-empty "
              f"JSON array of trace events")
        return 1
    span_names = set()
    tracks = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            print(f"check_telemetry: FAIL — {path}: event {i} has "
                  f"ph='{ph}' (only 'M' and 'X' are emitted)")
            return 1
        if ev.get("ts", -1) < 0 or ev.get("dur", -1) < 0:
            print(f"check_telemetry: FAIL — {path}: event {i} has "
                  f"negative ts/dur")
            return 1
        span_names.add(ev.get("name"))
        tracks.add(ev.get("tid"))
    missing = [p for p in FUSED_PHASES if p not in span_names
               and p != "sample"]  # sample track absent when sampling is off
    if missing:
        print(f"check_telemetry: FAIL — {path}: no spans for phases "
              f"{missing}")
        return 1
    print(f"check_telemetry: {path}: {len(events)} events, "
          f"{len(tracks)} tracks, spans {sorted(span_names)} OK")
    return 0


def check_overhead(path: str, max_overhead: float) -> int:
    with open(path) as f:
        bench = json.load(f)
    if not bench.get("telemetry_attached"):
        print("check_telemetry: FAIL — bench run did not have telemetry "
              "attached (telemetry_attached is false); run perf_pipeline "
              "with CMDSMC_TELEMETRY set")
        return 1
    if "telemetry_overhead_percent" not in bench:
        print("check_telemetry: FAIL — no telemetry_overhead_percent in "
              f"{path}; the bench predates the interleaved measurement")
        return 1
    pct = float(bench["telemetry_overhead_percent"])
    limit = max_overhead * 100.0
    print(f"check_telemetry: telemetry overhead {pct:.2f}% "
          f"(wall minus phase-timer sum, {bench.get('threads')} threads), "
          f"limit {limit:.1f}%")
    if pct > limit:
        print(f"check_telemetry: FAIL — telemetry overhead {pct:.2f}% "
              f"exceeds {limit:.1f}% budget")
        return 1
    print("check_telemetry: OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+",
                    help="TELEMETRY.jsonl [TRACE.json], or with --overhead: "
                         "BENCH_pipeline.json from a CMDSMC_TELEMETRY run")
    ap.add_argument("--overhead", action="store_true",
                    help="gate the bench's embedded telemetry overhead "
                         "measurement")
    ap.add_argument("--max-overhead", type=float,
                    default=float(os.environ.get(
                        "CMDSMC_TELEMETRY_MAX_OVERHEAD", 0.03)),
                    help="allowed fractional overhead (default 0.03)")
    args = ap.parse_args()

    if args.overhead:
        if len(args.files) != 1:
            ap.error("--overhead takes exactly one BENCH_pipeline.json")
        return check_overhead(args.files[0], args.max_overhead)

    rc = check_jsonl(args.files[0])
    if rc == 0 and len(args.files) > 1:
        rc = check_trace(args.files[1])
    return rc


if __name__ == "__main__":
    sys.exit(main())
