// Scene-acceleration bench: per-particle step time of a single 72-facet
// cylinder vs two 72-facet cylinders in tandem.
//
// The acceptance bar for the multi-body refactor: the scene's uniform-grid
// acceleration answers inside/nearest-face per cell, never by scanning the
// total facet list, so doubling the body count must not meaningfully change
// the per-particle cost (target: within 10%).  A linear scan over all
// facets would show up here immediately.
#include <cstdio>

#include "bench_common.h"
#include "cmdp/thread_pool.h"

namespace {

using namespace cmdsmc;

core::SimConfig tandem_config(double ppc, bool second_body) {
  core::SimConfig cfg;
  cfg.nx = 140;
  cfg.ny = 64;
  cfg.mach = 10.0;
  cfg.sigma = 0.12;
  cfg.lambda_inf = 0.5;
  cfg.particles_per_cell = ppc;
  cfg.has_wedge = false;
  cfg.body = geom::Body::Cylinder(36.0, 32.0, 6.0, 72);
  if (second_body)
    cfg.bodies.push_back(geom::Body::Cylinder(92.0, 32.0, 6.0, 72));
  cfg.wall = geom::WallModel::kDiffuseIsothermal;
  cfg.seed = 0x7A2DE3ULL;
  return cfg;
}

struct Timing {
  double usec_per_particle = 0.0;
  double move_share = 0.0;
};

Timing run_case(const core::SimConfig& cfg, int steps,
                cmdp::ThreadPool& pool) {
  core::SimulationD sim(cfg, &pool);
  sim.run(30);  // warm-up: establish the bow shocks
  sim.timers().reset();
  sim.run(steps);
  Timing t;
  const double total = sim.total_seconds();
  t.usec_per_particle =
      1e6 * total / (static_cast<double>(sim.flow_count()) * steps);
  t.move_share =
      100.0 * sim.phase_seconds(core::SimulationD::kPhaseMove) / total;
  return t;
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env({8.0, 200, 200});
  auto& pool = cmdp::ThreadPool::global();
  const int steps = scale.steady_steps / 2 + 50;

  const Timing one =
      run_case(tandem_config(scale.particles_per_cell, false), steps, pool);
  const Timing two =
      run_case(tandem_config(scale.particles_per_cell, true), steps, pool);

  std::printf("multibody scene bench (%u threads, %d timed steps)\n",
              pool.size(), steps);
  bench::print_header("per-particle cost [usec/particle/step]");
  bench::print_row("one 72-facet cylinder", one.usec_per_particle,
                   one.usec_per_particle, "baseline");
  bench::print_row("two 72-facet cylinders", one.usec_per_particle,
                   two.usec_per_particle,
                   "target: within 10% of the baseline");
  bench::print_header("move+bc phase share [%]");
  bench::print_row("one cylinder", one.move_share, one.move_share, "");
  bench::print_row("two cylinders", one.move_share, two.move_share, "");
  const double ratio = two.usec_per_particle / one.usec_per_particle;
  std::printf("\ntwo-body / one-body per-particle ratio: %.3f %s\n", ratio,
              ratio <= 1.10 ? "(PASS: scene queries are O(cell), not "
                              "O(total facets))"
                            : "(FAIL: over the 10%% budget)");
  return ratio <= 1.10 ? 0 : 1;
}
