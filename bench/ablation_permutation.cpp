// Ablation (b): permutation-vector refresh rate.
//
// Paper: Aldous & Diaconis require ~n log n (= 10) random transpositions
// for a fully fresh permutation, so 10 collisions decorrelate a particle's
// permutation vector; "however the collision algorithm is only loosely
// bound to the randomness of the permutation ... a single transposition per
// collision is found sufficient to ensure unbiased outcomes."
//
// Measured: relaxation of a rectangular start and the rotational/
// translational equipartition for 0, 1, 2 and 4 transpositions per
// collision.
#include <cstdio>

#include "bench_common.h"
#include "rng/samplers.h"

namespace {

struct Moments {
  double kurtosis;
  double rot_over_trans;
};

Moments measure(cmdsmc::core::SimulationD& sim) {
  const auto& s = sim.particles();
  double m2 = 0.0, m4 = 0.0, et = 0.0, er = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    m2 += s.ux[i] * s.ux[i];
    m4 += s.ux[i] * s.ux[i] * s.ux[i] * s.ux[i];
    et += s.ux[i] * s.ux[i] + s.uy[i] * s.uy[i] + s.uz[i] * s.uz[i];
    er += s.r0[i] * s.r0[i] + s.r1[i] * s.r1[i];
  }
  const auto n = static_cast<double>(s.size());
  return {(m4 / n) / ((m2 / n) * (m2 / n)), (er / 2.0) / (et / 3.0)};
}

}  // namespace

int main() {
  using namespace cmdsmc;
  std::printf("Ablation: transpositions per collision "
              "(target kurtosis 3.0, equipartition 1.0)\n\n");
  std::printf("%14s %12s %14s %18s\n", "transpositions", "kurtosis",
              "T_rot/T_trans", "collisions");
  for (int ntrans : {0, 1, 2, 4}) {
    core::SimConfig cfg;
    cfg.nx = 24;
    cfg.ny = 24;
    cfg.closed_box = true;
    cfg.has_wedge = false;
    cfg.mach = 0.01;
    cfg.sigma = 0.2;
    cfg.lambda_inf = 0.0;
    cfg.particles_per_cell = 30.0;
    cfg.reservoir_fraction = 0.0;
    cfg.transpositions_per_collision = ntrans;
    cfg.seed = 11;
    core::SimulationD sim(cfg);
    // Non-equilibrium start: rectangular translation, zero rotation.
    cmdsmc::rng::SplitMix64 g(6);
    auto& s = sim.particles();
    for (std::size_t i = 0; i < s.size(); ++i) {
      s.ux[i] = cmdsmc::rng::sample_rectangular(g, cfg.sigma);
      s.uy[i] = cmdsmc::rng::sample_rectangular(g, cfg.sigma);
      s.uz[i] = cmdsmc::rng::sample_rectangular(g, cfg.sigma);
      s.r0[i] = 0.0;
      s.r1[i] = 0.0;
    }
    sim.run(40);
    const auto m = measure(sim);
    std::printf("%14d %12.3f %14.3f %18llu\n", ntrans, m.kurtosis,
                m.rot_over_trans,
                static_cast<unsigned long long>(sim.counters().collisions));
  }
  std::printf("\n(1 transposition per collision suffices -- the paper's "
              "choice; partner randomization dominates)\n");
  return 0;
}
