// Randomized invariant (fuzz) tests: boundary enforcement and the full
// driver must uphold their invariants for arbitrary states and a sweep of
// configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cli/args.h"
#include "core/simulation.h"
#include "fleet/sweep.h"
#include "geom/boundary.h"
#include "rng/rng.h"
#include "scenario/scenario.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;
namespace geom = cmdsmc::geom;

namespace {
constexpr double kRad = 3.14159265358979 / 180.0;
}

TEST(BoundaryFuzz, AlwaysEndsInsideOpenDomain) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  geom::BoundaryConfig bc;
  bc.x_max = 98.0;
  bc.y_max = 64.0;
  bc.wedge = &w;
  bc.plunger_active = true;
  bc.plunger_x = 2.0;
  bc.plunger_speed = 0.8;
  cmdsmc::rng::SplitMix64 g(1234);
  for (int trial = 0; trial < 50000; ++trial) {
    geom::ParticleState p;
    // Anywhere in (and slightly beyond) the domain, any plausible velocity.
    p.x = g.next_double() * 102.0 - 2.0;
    p.y = g.next_double() * 68.0 - 2.0;
    p.ux = (g.next_double() - 0.3) * 2.0;
    p.uy = (g.next_double() - 0.5) * 2.0;
    p.uz = (g.next_double() - 0.5) * 2.0;
    const double e_in =
        p.ux * p.ux + p.uy * p.uy + p.uz * p.uz;
    if (geom::enforce_boundaries(p, bc, g.next_u64())) {
      ASSERT_GE(p.x, 0.0);
      ASSERT_LT(p.x, bc.x_max);
      ASSERT_GE(p.y, 0.0);
      ASSERT_LT(p.y, bc.y_max);
      ASSERT_FALSE(w.inside(p.x, p.y))
          << trial << ": " << p.x << "," << p.y;
      // Specular interactions never change the speed except the moving
      // plunger, which can only add energy in the lab frame.
      const double e_out = p.ux * p.ux + p.uy * p.uy + p.uz * p.uz;
      ASSERT_GT(e_out, -1e-12);
      (void)e_in;
    }
  }
}

TEST(BoundaryFuzz, DiffuseWallsAlwaysEject) {
  geom::Wedge w(10.0, 20.0, 40.0 * kRad);
  geom::BoundaryConfig bc;
  bc.x_max = 64.0;
  bc.y_max = 48.0;
  bc.wedge = &w;
  bc.wall = geom::WallModel::kDiffuseIsothermal;
  bc.wall_sigma = 0.2;
  cmdsmc::rng::SplitMix64 g(99);
  for (int trial = 0; trial < 20000; ++trial) {
    geom::ParticleState p;
    p.x = g.next_double() * 64.0;
    p.y = g.next_double() * 48.0;
    p.ux = (g.next_double() - 0.5);
    p.uy = (g.next_double() - 0.5);
    if (geom::enforce_boundaries(p, bc, g.next_u64())) {
      ASSERT_FALSE(w.inside(p.x, p.y));
      ASSERT_GE(p.y, 0.0);
    }
  }
}

struct FuzzCase {
  int nx, ny, nz;
  double mach, sigma, lambda, ppc;
  bool wedge;
  int upstream;  // 0 plunger, 1 soft
  int wall;      // 0 specular, 1 isothermal, 2 adiabatic
};

class SimulationFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(SimulationFuzz, ShortRunUpholdsInvariants) {
  const auto c = GetParam();
  core::SimConfig cfg;
  cfg.nx = c.nx;
  cfg.ny = c.ny;
  cfg.nz = c.nz;
  cfg.mach = c.mach;
  cfg.sigma = c.sigma;
  cfg.lambda_inf = c.lambda;
  cfg.particles_per_cell = c.ppc;
  cfg.has_wedge = c.wedge;
  if (c.wedge) {
    cfg.wedge_x0 = c.nx * 0.25;
    cfg.wedge_base = c.nx * 0.25;
    cfg.wedge_angle_deg = 25.0;
  }
  cfg.upstream = c.upstream == 0 ? geom::UpstreamMode::kPlunger
                                 : geom::UpstreamMode::kSoftSource;
  cfg.wall = c.wall == 0   ? geom::WallModel::kSpecular
             : c.wall == 1 ? geom::WallModel::kDiffuseIsothermal
                           : geom::WallModel::kDiffuseAdiabatic;
  cfg.reservoir_fraction = 0.3;
  cfg.seed = 5150;
  ASSERT_NO_THROW(cfg.validate());
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(cfg, &pool);
  sim.set_sampling(true);
  sim.run(25);
  // Invariants: counts consistent, particles in the open domain, energy
  // finite, counters monotone and consistent.
  EXPECT_EQ(sim.total_count(), sim.flow_count() + sim.reservoir_count());
  EXPECT_TRUE(std::isfinite(sim.total_energy()));
  EXPECT_GT(sim.total_energy(), 0.0);
  EXPECT_LE(sim.counters().collisions + sim.counters().reservoir_collisions,
            sim.counters().candidates);
  const auto& s = sim.particles();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag) continue;
    ASSERT_GE(s.x[i], 0.0);
    ASSERT_LT(s.x[i], static_cast<double>(c.nx));
    ASSERT_GE(s.y[i], 0.0);
    ASSERT_LT(s.y[i], static_cast<double>(c.ny));
    if (c.nz > 0) {
      ASSERT_GE(s.z[i], 0.0);
      ASSERT_LT(s.z[i], static_cast<double>(c.nz));
    }
    if (sim.wedge() != nullptr) {
      ASSERT_FALSE(sim.wedge()->inside(s.x[i], s.y[i]));
    }
  }
  const auto f = sim.field();
  for (double d : f.density) ASSERT_TRUE(std::isfinite(d));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimulationFuzz,
    ::testing::Values(
        FuzzCase{32, 24, 0, 4.0, 0.18, 0.0, 6.0, true, 0, 0},
        FuzzCase{32, 24, 0, 4.0, 0.18, 0.5, 6.0, true, 0, 0},
        FuzzCase{32, 24, 0, 2.0, 0.12, 1.0, 4.0, true, 1, 0},
        FuzzCase{32, 24, 0, 6.0, 0.10, 0.2, 6.0, true, 0, 1},
        FuzzCase{32, 24, 0, 4.0, 0.15, 0.5, 6.0, true, 0, 2},
        FuzzCase{48, 16, 0, 3.0, 0.18, 0.0, 8.0, false, 0, 0},
        FuzzCase{24, 16, 8, 4.0, 0.15, 0.5, 4.0, true, 0, 0},
        FuzzCase{24, 16, 8, 4.0, 0.15, 0.0, 4.0, false, 1, 0},
        FuzzCase{32, 24, 0, 8.0, 0.05, 0.3, 6.0, true, 0, 0},
        FuzzCase{32, 24, 0, 1.2, 0.18, 2.0, 6.0, true, 1, 0}));

TEST(SimulationFuzz, NoParticleEndsInsideAnyBodyOfAMultiBodyScene) {
  // Sweep of 2- and 3-body scenes across upstream modes and wall models:
  // after every step, no flow particle may sit inside any body (the scene
  // union; a stale single-body interior mask or a facet tie-break gap would
  // break this).
  struct SceneCase {
    int upstream;  // 0 plunger, 1 soft source
    int wall;      // 0 specular, 1 diffuse isothermal
    bool third_body;
  };
  for (const SceneCase sc : {SceneCase{0, 1, false}, SceneCase{1, 0, false},
                             SceneCase{0, 0, true}, SceneCase{1, 1, true}}) {
    core::SimConfig cfg;
    cfg.nx = 72;
    cfg.ny = 32;
    cfg.mach = 6.0;
    cfg.sigma = 0.12;
    cfg.lambda_inf = 0.5;
    cfg.particles_per_cell = 6.0;
    cfg.has_wedge = false;
    cfg.body = geom::Body::Cylinder(18.0, 16.0, 5.0, 16);
    cfg.bodies.push_back(geom::Body::Cylinder(42.0, 16.0, 5.0, 16));
    if (sc.third_body)
      cfg.bodies.push_back(
          geom::Body::FlatPlate(54.0, 24.0, 12.0, 1.5, 8.0 * kRad));
    cfg.upstream = sc.upstream == 0 ? geom::UpstreamMode::kPlunger
                                    : geom::UpstreamMode::kSoftSource;
    cfg.wall = sc.wall == 0 ? geom::WallModel::kSpecular
                            : geom::WallModel::kDiffuseIsothermal;
    cfg.reservoir_fraction = 0.3;
    cfg.seed = 0xF022ULL;
    cmdp::ThreadPool pool(4);
    core::SimulationD sim(cfg, &pool);
    ASSERT_EQ(sim.scene().body_count(), sc.third_body ? 3 : 2);
    for (int step = 0; step < 25; ++step) {
      sim.step();
      const auto& s = sim.particles();
      for (std::size_t i = 0; i < s.size(); ++i) {
        if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag)
          continue;
        const int b = sim.scene().inside_body(s.x[i], s.y[i]);
        if (b < 0) continue;
        // Boundary-inclusive inside(): a particle exactly on a facet is
        // legal; penetration beyond rounding depth is not.
        const auto hit = sim.scene().nearest_face(s.x[i], s.y[i]);
        ASSERT_TRUE(hit.has_value());
        ASSERT_GT(hit->hit.depth, -1e-9)
            << "step " << step << " particle " << i << " buried in body "
            << b << " at " << s.x[i] << "," << s.y[i];
      }
    }
    EXPECT_GT(sim.counters().collisions, 0u);
  }
}

TEST(SimulationFuzz, WeightBalancingConservesMassMomentumEnergyAnySeed) {
  // The axisymmetric split/merge pass must conserve the weighted moments
  // *exactly* (not just in expectation, the way Russian-roulette destruction
  // would): splits are identical copies, merges average velocities with the
  // lost relative kinetic energy folded into rotation.  Scramble the weights
  // with arbitrary factors and rebalance — for any seed the weighted mass,
  // momentum and energy must come back unchanged.
  for (std::uint64_t seed : {1ull, 99ull, 0xDEADull, 31415926ull, 777777ull}) {
    core::SimConfig cfg;
    cfg.nx = 24;
    cfg.ny = 16;
    cfg.has_wedge = false;
    cfg.axisymmetric = true;
    cfg.mach = 4.0;
    cfg.sigma = 0.12;
    cfg.particles_per_cell = 8.0;
    cfg.reservoir_fraction = 0.2;
    cfg.seed = seed;
    cmdp::ThreadPool pool(2);
    core::SimulationD sim(cfg, &pool);
    sim.run(5);
    auto& s = sim.particles();
    cmdsmc::rng::SplitMix64 g(seed ^ 0xBA1A4CEull);
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag) continue;
      s.weight[i] *= 0.1 + 7.9 * g.next_double();  // way out of band
    }
    const double mass = sim.flow_weighted_mass();
    const auto mom = sim.flow_weighted_momentum();
    const double energy = sim.flow_weighted_energy();
    const std::uint64_t actions =
        sim.counters().cloned + sim.counters().merged;
    sim.debug_rebalance();
    EXPECT_GT(sim.counters().cloned + sim.counters().merged, actions)
        << "seed " << seed << ": scrambled weights must trigger balancing";
    EXPECT_NEAR(sim.flow_weighted_mass() / mass, 1.0, 1e-12) << seed;
    const auto mom2 = sim.flow_weighted_momentum();
    const double scale = std::abs(mom[0]) + std::abs(mom[1]) +
                         std::abs(mom[2]) + 1.0;
    for (int k = 0; k < 3; ++k)
      EXPECT_NEAR(mom2[k], mom[k], 1e-9 * scale) << seed << " axis " << k;
    EXPECT_NEAR(sim.flow_weighted_energy() / energy, 1.0, 1e-12) << seed;
  }
}

TEST(SimulationFuzz, AxisymmetricClosedBoxConservesWeightedMassExactly) {
  // Step-level conservation: a collisionless closed box removes and injects
  // nothing, so the only thing that could change the weighted mass across
  // whole steps is the clone/destroy bookkeeping.
  for (std::uint64_t seed : {2ull, 0xC0FFEEull, 424242ull}) {
    core::SimConfig cfg;
    cfg.nx = 16;
    cfg.ny = 20;
    cfg.closed_box = true;
    cfg.has_wedge = false;
    cfg.axisymmetric = true;
    cfg.mach = 0.01;
    cfg.sigma = 0.15;
    cfg.lambda_inf = 1e9;  // collisionless: every moment must be exact
    cfg.particles_per_cell = 10.0;
    cfg.reservoir_fraction = 0.0;
    cfg.seed = seed;
    cmdp::ThreadPool pool(4);
    core::SimulationD sim(cfg, &pool);
    const double mass = sim.flow_weighted_mass();
    const double energy = sim.flow_weighted_energy();
    sim.run(40);
    EXPECT_EQ(sim.counters().collisions, 0u);
    EXPECT_GT(sim.counters().cloned + sim.counters().merged, 0u) << seed;
    EXPECT_NEAR(sim.flow_weighted_mass() / mass, 1.0, 1e-12) << seed;
    EXPECT_NEAR(sim.flow_weighted_energy() / energy, 1.0, 1e-9) << seed;
  }
}

TEST(SimulationFuzz, AxisymmetricShortRunsUpholdCoreInvariants) {
  // The multi-config sweep, axisymmetric flavor: bodies on the axis, both
  // upstream modes, wall models; no particle may end up below the axis,
  // outside the domain or buried in the body.
  struct AxiCase {
    int upstream;  // 0 plunger, 1 soft source
    int wall;      // 0 specular, 1 diffuse isothermal
    double lambda;
  };
  for (const AxiCase c : {AxiCase{0, 0, 0.0}, AxiCase{1, 1, 0.5},
                          AxiCase{0, 1, 0.5}, AxiCase{1, 0, 2.0}}) {
    core::SimConfig cfg;
    cfg.nx = 48;
    cfg.ny = 20;
    cfg.has_wedge = false;
    cfg.axisymmetric = true;
    cfg.mach = 5.0;
    cfg.sigma = 0.12;
    cfg.lambda_inf = c.lambda;
    cfg.particles_per_cell = 6.0;
    cfg.reservoir_fraction = 0.3;
    cfg.body = geom::Body::Biconic(14.0, 0.0, 10.0, 25.0 * kRad, 8.0,
                                   10.0 * kRad);
    cfg.upstream = c.upstream == 0 ? geom::UpstreamMode::kPlunger
                                   : geom::UpstreamMode::kSoftSource;
    cfg.wall = c.wall == 0 ? geom::WallModel::kSpecular
                           : geom::WallModel::kDiffuseIsothermal;
    cfg.seed = 0xA71F022ULL;
    cmdp::ThreadPool pool(4);
    core::SimulationD sim(cfg, &pool);
    sim.set_sampling(true);
    for (int step = 0; step < 25; ++step) {
      sim.step();
      const auto& s = sim.particles();
      for (std::size_t i = 0; i < s.size(); ++i) {
        if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag)
          continue;
        ASSERT_GE(s.y[i], 0.0) << "below the axis at step " << step;
        ASSERT_LT(s.y[i], static_cast<double>(cfg.ny));
        ASSERT_GE(s.x[i], 0.0);
        ASSERT_LT(s.x[i], static_cast<double>(cfg.nx));
        ASSERT_GT(s.weight[i], 0.0);
        const int b = sim.scene().inside_body(s.x[i], s.y[i]);
        if (b < 0) continue;
        const auto hit = sim.scene().nearest_face(s.x[i], s.y[i]);
        ASSERT_TRUE(hit.has_value());
        ASSERT_GT(hit->hit.depth, -1e-9)
            << "buried at step " << step << ": " << s.x[i] << "," << s.y[i];
      }
    }
    EXPECT_TRUE(std::isfinite(sim.total_energy()));
    for (double d : sim.field().density) ASSERT_TRUE(std::isfinite(d));
  }
}

// --- CLI argument parser fuzz -------------------------------------------
//
// The cli/args contract: any malformed input raises cli::ArgError (never a
// crash, never a silent no-op, never an uncaught std:: exception from deep
// inside), and error_exit_code classifies it as the usage exit (2).

namespace {

// Deterministic junk-string generator over a charset dense in the parser's
// special characters so separators land in every position.
std::string fuzz_token(cmdsmc::rng::SplitMix64& g, std::size_t max_len) {
  static constexpr char kChars[] =
      "=.,:/-+_ 0123456789abcdefghijklmnopqrstuvwxyzeE\t\"'\\";
  const std::size_t len =
      g.next_below(static_cast<std::uint32_t>(max_len + 1));
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s += kChars[g.next_below(sizeof(kChars) - 1)];
  return s;
}

// Runs `fn` and asserts the cli failure contract: success, or ArgError /
// std::invalid_argument classified as exit 2.  Anything else is a bug.
template <class Fn>
void expect_usage_contract(const std::string& what, Fn&& fn) {
  try {
    fn();
  } catch (const cmdsmc::cli::ArgError& e) {
    EXPECT_EQ(cmdsmc::cli::error_exit_code(e), 2) << what;
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(cmdsmc::cli::error_exit_code(e), 2) << what;
  } catch (const std::exception& e) {
    FAIL() << what << ": unexpected exception type: " << e.what();
  }
}

}  // namespace

TEST(CliFuzz, KeyValueParserUpholdsTheUsageContract) {
  namespace cli = cmdsmc::cli;
  cmdsmc::rng::SplitMix64 g(0xA56u);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::string tok = fuzz_token(g, 24);
    expect_usage_contract(tok, [&] {
      const auto kvs = cli::parse_key_values(std::vector<std::string>{tok});
      // On success the parse must be lossless: key '=' value == token.
      ASSERT_EQ(kvs.size(), 1u);
      EXPECT_EQ(kvs[0].key + "=" + kvs[0].value, tok);
      EXPECT_FALSE(kvs[0].key.empty());
    });
  }
}

TEST(CliFuzz, ScalarParsersNeverTruncateOrCrash) {
  namespace cli = cmdsmc::cli;
  cmdsmc::rng::SplitMix64 g(0x5CA1A8u);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::string v = fuzz_token(g, 12);
    expect_usage_contract(v, [&] {
      const int n = cli::parse_int("k", v);
      // Strict contract: success means the whole token was consumed, so
      // re-parsing as double must agree exactly (no atoi truncation).
      EXPECT_EQ(static_cast<double>(n), cli::parse_double("k", v));
    });
    expect_usage_contract(v, [&] { (void)cli::parse_double("k", v); });
    expect_usage_contract(v, [&] { (void)cli::parse_uint64("k", v); });
    expect_usage_contract(v, [&] { (void)cli::parse_bool("k", v); });
  }
  // The historical truncation bugs, pinned explicitly.
  EXPECT_THROW((void)cli::parse_int("facets", "36.9"), cli::ArgError);
  EXPECT_THROW((void)cli::parse_int("nx", "12abc"), cli::ArgError);
  EXPECT_THROW((void)cli::parse_double("mach", ""), cli::ArgError);
  EXPECT_THROW((void)cli::parse_double("mach", "1.5x"), cli::ArgError);
  EXPECT_THROW((void)cli::parse_bool("audit", "maybe"), cli::ArgError);
}

TEST(CliFuzz, ScenarioOverridesNeverCrash) {
  namespace cli = cmdsmc::cli;
  namespace scenario = cmdsmc::scenario;
  const auto& keys = scenario::override_keys();
  ASSERT_FALSE(keys.empty());
  cmdsmc::rng::SplitMix64 g(0xBEEFu);
  for (int trial = 0; trial < 4000; ++trial) {
    scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
    // Half the trials aim a junk value at a real key; half use a junk key.
    const std::string key = (trial % 2 == 0)
                                ? keys[g.next_below(
                                      static_cast<std::uint32_t>(keys.size()))]
                                : fuzz_token(g, 10);
    const std::string value = fuzz_token(g, 10);
    expect_usage_contract(key + "=" + value, [&] {
      scenario::apply_override(spec, key, value);
      // An accepted override must still build a validatable config or
      // classify as a config error — never crash.
      try {
        (void)spec.build_config();
      } catch (const std::invalid_argument&) {
      }
    });
  }
}

// --- Fleet sweep grammar fuzz ------------------------------------------

TEST(SweepFuzz, GrammarEdgeCasesClassifyAsUsage) {
  namespace cli = cmdsmc::cli;
  namespace fleet = cmdsmc::fleet;
  // Every one of these malformed tokens must raise ArgError (exit 2).
  const char* bad[] = {
      "sweep:",                    // no key, no values
      "sweep:=4",                  // empty key
      "sweep:mach",                // no '='
      "sweep:mach=",               // empty value list
      "sweep:mach=4,,8",           // empty list entry
      "sweep:mach=,",              // only separators
      "sweep:mach=1..4",           // range without point count
      "sweep:mach=1..4/0",         // N = 0
      "sweep:mach=1..4/1",         // N = 1 (needs two endpoints)
      "sweep:mach=1..4/-3",        // negative count
      "sweep:mach=1..4/9999999",   // beyond the range-point cap
      "sweep:mach=1../4",          // empty hi bound
      "sweep:mach=..4/4",          // empty lo bound
      "sweep:mach=a..b/4",         // non-numeric bounds
      "sweep:mach=1..4/x",         // non-numeric count
  };
  for (const char* tok : bad) {
    EXPECT_THROW((void)fleet::parse_sweep_axis(tok), cli::ArgError) << tok;
    try {
      (void)fleet::parse_sweep_axis(tok);
    } catch (const std::exception& e) {
      EXPECT_EQ(cli::error_exit_code(e), 2) << tok;
    }
  }

  // Legal edges: reversed bounds sweep downward; N=2 is the minimal range.
  const auto down = fleet::parse_sweep_axis("sweep:mach=8..2/4");
  ASSERT_EQ(down.values.size(), 4u);
  EXPECT_EQ(down.values.front(), "8");
  EXPECT_EQ(down.values.back(), "2");
  const auto two = fleet::parse_sweep_axis("sweep:lambda=0.1..1/2");
  ASSERT_EQ(two.values.size(), 2u);
  // A single-value list is a legal one-point axis.
  EXPECT_EQ(fleet::parse_sweep_axis("sweep:seed=7").values.size(), 1u);
}

TEST(SweepFuzz, HugeCrossProductsAreRejectedNotExpanded) {
  namespace cli = cmdsmc::cli;
  namespace fleet = cmdsmc::fleet;
  fleet::SweepRequest req;
  req.scenario = "wedge-mach4";
  for (const char* tok :
       {"sweep:mach=1..10/100", "sweep:lambda=0.01..1/100",
        "sweep:sigma=0.05..0.2/11"})
    req.axes.push_back(fleet::parse_sweep_axis(tok));
  // 100 * 100 * 11 jobs would blow the fleet cap: the request must refuse
  // to expand (ArgError, exit 2), not allocate 110000 job descriptors.
  EXPECT_THROW((void)req.job_count(), cli::ArgError);
  try {
    (void)req.job_count();
  } catch (const std::exception& e) {
    EXPECT_EQ(cli::error_exit_code(e), 2);
  }
  // An axis with zero values short-circuits to an empty sweep.
  fleet::SweepRequest empty;
  empty.axes.push_back({"mach", {}});
  EXPECT_EQ(empty.job_count(), 0u);
}

TEST(SweepFuzz, RandomSweepTokensNeverCrash) {
  namespace fleet = cmdsmc::fleet;
  cmdsmc::rng::SplitMix64 g(0x5EEDu);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::string tok = "sweep:" + fuzz_token(g, 20);
    ASSERT_TRUE(fleet::is_sweep_token(tok));
    expect_usage_contract(tok, [&] {
      const auto axis = fleet::parse_sweep_axis(tok);
      // Success implies a well-formed axis: named key, non-empty values.
      EXPECT_FALSE(axis.key.empty());
      EXPECT_FALSE(axis.values.empty());
      for (const std::string& v : axis.values) EXPECT_FALSE(v.empty());
    });
  }
}

TEST(SimulationFuzz, HardSphereAndPowerLawGasesRun) {
  for (auto pot : {cmdsmc::physics::Potential::kHardSphere,
                   cmdsmc::physics::Potential::kInversePower}) {
    core::SimConfig cfg;
    cfg.nx = 32;
    cfg.ny = 24;
    cfg.mach = 4.0;
    cfg.sigma = 0.12;
    cfg.lambda_inf = 0.5;
    cfg.particles_per_cell = 6.0;
    cfg.has_wedge = true;
    cfg.wedge_x0 = 8.0;
    cfg.wedge_base = 8.0;
    cfg.wedge_angle_deg = 25.0;
    cfg.gas.potential = pot;
    cfg.gas.alpha = 9.0;
    cmdp::ThreadPool pool(4);
    core::SimulationD sim(cfg, &pool);
    sim.run(30);
    EXPECT_GT(sim.counters().collisions, 0u);
    EXPECT_TRUE(std::isfinite(sim.total_energy()));
  }
}
