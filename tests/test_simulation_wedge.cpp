// End-to-end integration: a reduced-size run of the paper's Mach 4 wedge
// case must reproduce oblique-shock theory (the paper's own validation:
// shock angle 45 deg, post-shock density 3.7x freestream).
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.h"
#include "io/shock_analysis.h"
#include "physics/theory.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;
namespace io = cmdsmc::io;

namespace {

core::SimConfig wedge_config() {
  core::SimConfig cfg;
  cfg.nx = 98;
  cfg.ny = 64;
  cfg.mach = 4.0;
  cfg.sigma = 0.18;  // fast transit for test runtime
  cfg.lambda_inf = 0.0;
  cfg.particles_per_cell = 8.0;
  cfg.wedge_x0 = 20.0;
  cfg.wedge_base = 25.0;
  cfg.wedge_angle_deg = 30.0;
  cfg.seed = 2024;
  return cfg;
}

}  // namespace

TEST(WedgeIntegration, ReproducesObliqueShockTheory) {
  cmdp::ThreadPool pool(0);  // all cores: this is the heavy test
  core::SimulationD sim(wedge_config(), &pool);
  sim.run(400);
  sim.set_sampling(true);
  sim.run(400);
  const auto f = sim.field();
  const auto fit = io::measure_oblique_shock(f, *sim.wedge());
  ASSERT_TRUE(fit.valid);
  EXPECT_GT(fit.columns_used, 8);

  namespace th = cmdsmc::physics::theory;
  const double beta_deg =
      th::oblique_shock_angle(30.0 * std::numbers::pi / 180.0, 4.0) * 180.0 /
      std::numbers::pi;
  const double ratio = th::oblique_shock_density_ratio(
      beta_deg * std::numbers::pi / 180.0, 4.0);
  EXPECT_NEAR(fit.angle_deg, beta_deg, 2.5);
  EXPECT_NEAR(fit.density_ratio, ratio, 0.35);
  // Shock thickness of a few cells (paper: 3 for the near-continuum case).
  EXPECT_GT(fit.thickness_normal, 1.0);
  EXPECT_LT(fit.thickness_normal, 7.0);

  // Freestream region stays at reference density.
  double rho_fs = 0.0;
  int nfs = 0;
  for (int ix = 5; ix < 16; ++ix)
    for (int iy = 8; iy < 56; ++iy) {
      rho_fs += f.at(f.density, ix, iy);
      ++nfs;
    }
  rho_fs /= nfs;
  EXPECT_NEAR(rho_fs, 1.0, 0.05);

  // Post-shock flow runs parallel to the wedge surface (specular surface).
  const int ix_probe = 38;
  const int iy_probe =
      static_cast<int>(sim.wedge()->surface_y(ix_probe + 0.5)) + 2;
  const double flow_angle =
      std::atan2(f.at(f.uy, ix_probe, iy_probe),
                 f.at(f.ux, ix_probe, iy_probe)) *
      180.0 / std::numbers::pi;
  EXPECT_NEAR(flow_angle, 30.0, 4.0);

  // Reservoir bookkeeping stayed healthy: the Gaussian fallback may fire
  // during the start-up transient (the plateau builds mass before the wake
  // evacuates) but must stay rare.
  EXPECT_LT(sim.counters().synthesized, sim.counters().injected / 10 + 1);
}

TEST(WedgeIntegration, RarefiedShockIsWiderThanContinuum) {
  cmdp::ThreadPool pool(0);
  auto cfg = wedge_config();
  cfg.sigma = 0.09;  // satisfies dt << t_c for lambda = 0.5
  core::SimulationD cont(cfg, &pool);
  cfg.lambda_inf = 0.5;
  core::SimulationD rare(cfg, &pool);
  for (auto* sim : {&cont, &rare}) {
    sim->run(500);
    sim->set_sampling(true);
    sim->run(500);
  }
  const auto fit_c = io::measure_oblique_shock(cont.field(), *cont.wedge());
  const auto fit_r = io::measure_oblique_shock(rare.field(), *rare.wedge());
  ASSERT_TRUE(fit_c.valid);
  ASSERT_TRUE(fit_r.valid);
  // Paper: rarefied shock (5 cells) wider than near-continuum (3 cells).
  EXPECT_GT(fit_r.thickness_vertical, fit_c.thickness_vertical + 0.4);
  // Both still satisfy the jump conditions.
  EXPECT_NEAR(fit_c.density_ratio, 3.7, 0.45);
  EXPECT_NEAR(fit_r.density_ratio, 3.7, 0.45);
  // Paper: the rarefied wake is washed out; near-continuum recompresses.
  const auto wake_c = io::measure_wake(cont.field(), *cont.wedge());
  const auto wake_r = io::measure_wake(rare.field(), *rare.wedge());
  EXPECT_GT(wake_c.base_density, 1.8 * wake_r.base_density);
}

TEST(WedgeIntegration, FixedPointEngineMatchesDoubleEngineFields) {
  cmdp::ThreadPool pool(0);
  auto cfg = wedge_config();
  cfg.particles_per_cell = 6.0;
  core::SimulationD dsim(cfg, &pool);
  core::SimulationF fsim(cfg, &pool);
  for (int phase = 0; phase < 2; ++phase) {
    dsim.run(250);
    fsim.run(250);
    if (phase == 0) {
      dsim.set_sampling(true);
      fsim.set_sampling(true);
    }
  }
  const auto fd = dsim.field();
  const auto ff = fsim.field();
  const auto fit_d = io::measure_oblique_shock(fd, *dsim.wedge());
  const auto fit_f = io::measure_oblique_shock(ff, *fsim.wedge());
  ASSERT_TRUE(fit_d.valid);
  ASSERT_TRUE(fit_f.valid);
  // The paper's integer implementation is physically equivalent.
  EXPECT_NEAR(fit_f.angle_deg, fit_d.angle_deg, 2.0);
  EXPECT_NEAR(fit_f.density_ratio, fit_d.density_ratio, 0.3);
}
