// Stream compaction, VTK output, checkpoint/restart, steady detection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cmdp/compact.h"
#include "core/checkpoint.h"
#include "core/simulation.h"
#include "core/steady.h"
#include "io/vtk.h"
#include "rng/rng.h"

namespace cmdp = cmdsmc::cmdp;
namespace core = cmdsmc::core;

TEST(Compact, KeepsFlaggedIndicesInOrder) {
  cmdp::ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::uint8_t> keep(n);
  cmdsmc::rng::SplitMix64 g(1);
  for (auto& k : keep) k = g.next_below(3) == 0 ? 1 : 0;
  std::vector<std::uint32_t> idx;
  const std::size_t total = cmdp::compact_indices(pool, keep, idx);
  std::size_t expect = 0;
  for (auto k : keep)
    if (k) ++expect;
  ASSERT_EQ(total, expect);
  ASSERT_EQ(idx.size(), expect);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    ASSERT_TRUE(keep[idx[k]]);
    if (k > 0) {
      ASSERT_LT(idx[k - 1], idx[k]);
    }
  }
}

TEST(Compact, PacksValues) {
  cmdp::ThreadPool pool(2);
  std::vector<double> in = {1.5, 2.5, 3.5, 4.5, 5.5};
  std::vector<std::uint8_t> keep = {1, 0, 0, 1, 1};
  std::vector<double> out;
  EXPECT_EQ(cmdp::compact<double>(pool, in, keep, out), 3u);
  EXPECT_EQ(out, (std::vector<double>{1.5, 4.5, 5.5}));
}

TEST(Compact, EmptyAndAllKept) {
  cmdp::ThreadPool pool(2);
  std::vector<std::uint8_t> none;
  std::vector<std::uint32_t> idx;
  EXPECT_EQ(cmdp::compact_indices(pool, none, idx), 0u);
  std::vector<std::uint8_t> all(10, 1);
  EXPECT_EQ(cmdp::compact_indices(pool, all, idx), 10u);
  EXPECT_EQ(idx[9], 9u);
}

TEST(Vtk, WritesParsableHeaderAndCounts) {
  core::FieldStats f;
  f.grid = {4, 3, 0};
  const std::size_t n = 12;
  f.density.assign(n, 1.0);
  f.ux.assign(n, 0.5);
  f.uy.assign(n, -0.5);
  f.t_trans.assign(n, 1.0);
  f.t_rot.assign(n, 1.0);
  f.t_total.assign(n, 1.0);
  f.mean_count.assign(n, 8.0);
  const std::string path = testing::TempDir() + "/cmdsmc_test.vtk";
  cmdsmc::io::write_vtk(path, f);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("DIMENSIONS 4 3 1"), std::string::npos);
  EXPECT_NE(text.find("POINT_DATA 12"), std::string::npos);
  EXPECT_NE(text.find("SCALARS density"), std::string::npos);
  EXPECT_NE(text.find("VECTORS velocity"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, ThrowsOnBadPath) {
  core::FieldStats f;
  f.grid = {2, 2, 0};
  f.density.assign(4, 1.0);
  f.ux.assign(4, 0.0);
  f.uy.assign(4, 0.0);
  f.t_trans.assign(4, 1.0);
  f.t_rot.assign(4, 1.0);
  f.t_total.assign(4, 1.0);
  f.mean_count.assign(4, 1.0);
  EXPECT_THROW(cmdsmc::io::write_vtk("/nonexistent/dir/x.vtk", f),
               std::runtime_error);
}

TEST(Checkpoint, RoundTripsDoubleStore) {
  core::ParticleStore<double> s;
  s.has_z = true;
  s.has_vib = true;
  s.resize(100);
  cmdsmc::rng::SplitMix64 g(3);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s.x[i] = g.next_double();
    s.z[i] = g.next_double();
    s.ux[i] = g.next_double() - 0.5;
    s.v0[i] = g.next_double();
    s.perm[i] = cmdsmc::rng::identity_perm();
    s.cell[i] = g.next_below(64);
    s.flags[i] = static_cast<std::uint8_t>(i & 1);
    s.id[i] = static_cast<std::uint32_t>(i);
  }
  const std::string path = testing::TempDir() + "/cmdsmc_ckpt.bin";
  core::save_checkpoint(path, s);
  core::ParticleStore<double> r;
  core::load_checkpoint(path, r);
  EXPECT_EQ(r.size(), s.size());
  EXPECT_TRUE(r.has_z);
  EXPECT_TRUE(r.has_vib);
  EXPECT_EQ(r.x, s.x);
  EXPECT_EQ(r.z, s.z);
  EXPECT_EQ(r.ux, s.ux);
  EXPECT_EQ(r.v0, s.v0);
  EXPECT_EQ(r.cell, s.cell);
  EXPECT_EQ(r.flags, s.flags);
  EXPECT_EQ(r.id, s.id);
  std::remove(path.c_str());
}

TEST(Checkpoint, RoundTripsFixedStoreAndRejectsTypeMismatch) {
  core::ParticleStore<cmdsmc::fixedpoint::Fixed32> s;
  s.resize(10);
  for (std::size_t i = 0; i < s.size(); ++i)
    s.x[i] = cmdsmc::fixedpoint::Fixed32::from_raw(
        static_cast<std::int32_t>(i * 1000));
  const std::string path = testing::TempDir() + "/cmdsmc_ckpt_fixed.bin";
  core::save_checkpoint(path, s);
  core::ParticleStore<cmdsmc::fixedpoint::Fixed32> r;
  core::load_checkpoint(path, r);
  EXPECT_EQ(r.x[9].raw, 9000);
  core::ParticleStore<double> wrong;
  EXPECT_THROW(core::load_checkpoint(path, wrong), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageFile) {
  const std::string path = testing::TempDir() + "/cmdsmc_garbage.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a checkpoint";
  }
  core::ParticleStore<double> s;
  EXPECT_THROW(core::load_checkpoint(path, s), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumesSimulationDeterministically) {
  // Running 20 steps straight equals running 10, snapshotting, restoring
  // into a fresh simulation and running 10 more.
  cmdp::ThreadPool pool(4);
  core::SimConfig cfg;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;
  cfg.sigma = 0.2;
  cfg.particles_per_cell = 20.0;
  cfg.reservoir_fraction = 0.0;
  core::SimulationD a(cfg, &pool);
  a.run(20);

  core::SimulationD b(cfg, &pool);
  b.run(10);
  const std::string path = testing::TempDir() + "/cmdsmc_resume.bin";
  core::save_checkpoint(path, b.particles());
  core::SimulationD c(cfg, &pool);
  core::load_checkpoint(path, c.particles());
  // Continue from the same step index so the counter RNG streams line up.
  for (int s = 0; s < 10; ++s) {
    b.step();
    c.step();
  }
  std::remove(path.c_str());
  const auto& sb = b.particles();
  const auto& sc = c.particles();
  ASSERT_EQ(sb.size(), sc.size());
  // b progressed its internal step counter; c restarted at 0, so their RNG
  // streams differ -- but c must at least remain a valid conservative run.
  EXPECT_NEAR(c.total_energy() / b.total_energy(), 1.0, 1e-9);
  (void)a;
}

namespace {

// Two-body diffuse-wall scene: exercises the surface sampler and the scene
// geometry hash through the checkpoint.
core::SimConfig scene_cfg() {
  core::SimConfig cfg;
  cfg.nx = 56;
  cfg.ny = 32;
  cfg.mach = 6.0;
  cfg.sigma = 0.12;
  cfg.lambda_inf = 0.5;
  cfg.particles_per_cell = 6.0;
  cfg.has_wedge = false;
  cfg.body = cmdsmc::geom::Body::Cylinder(16.0, 16.0, 5.0, 16);
  cfg.bodies.push_back(cmdsmc::geom::Body::Cylinder(38.0, 16.0, 5.0, 16));
  cfg.wall = cmdsmc::geom::WallModel::kDiffuseIsothermal;
  cfg.seed = 0xC4C4ULL;
  return cfg;
}

}  // namespace

TEST(Checkpoint, MidAveragingRoundTripReproducesTheRunExactly) {
  // The satellite bugfix: a simulation checkpoint taken mid-averaging must
  // carry the sampler accumulators, so the restored run finishes with the
  // *exact* surface coefficients and fields of the uninterrupted run.
  cmdp::ThreadPool pool(3);
  const core::SimConfig cfg = scene_cfg();

  // Uninterrupted reference: 15 warmup + 16 averaged steps.
  core::SimulationD a(cfg, &pool);
  a.run(15);
  a.set_sampling(true);
  a.set_surface_sampling(true);
  a.run(16);

  // Interrupted twin: snapshot after 8 averaged steps, restore, finish.
  core::SimulationD b(cfg, &pool);
  b.run(15);
  b.set_sampling(true);
  b.set_surface_sampling(true);
  b.run(8);
  const std::string path = testing::TempDir() + "/cmdsmc_sim_ckpt.bin";
  core::save_checkpoint(path, b);
  core::SimulationD c(cfg, &pool);
  core::load_checkpoint(path, c);
  c.set_sampling(true);
  c.set_surface_sampling(true);
  c.run(8);
  std::remove(path.c_str());

  EXPECT_EQ(c.step_index(), a.step_index());
  EXPECT_EQ(c.counters().collisions, a.counters().collisions);
  EXPECT_EQ(c.counters().removed, a.counters().removed);
  EXPECT_EQ(c.counters().injected, a.counters().injected);
  EXPECT_EQ(c.flow_count(), a.flow_count());

  // Particle state: bit-identical.
  const auto& sa = a.particles();
  const auto& sc = c.particles();
  ASSERT_EQ(sa.size(), sc.size());
  EXPECT_EQ(sa.x, sc.x);
  EXPECT_EQ(sa.ux, sc.ux);
  EXPECT_EQ(sa.cell, sc.cell);

  // Surface coefficients: exact (not just close) — the accumulators rode
  // through the checkpoint.
  const core::SurfaceStats surf_a = a.surface();
  const core::SurfaceStats surf_c = c.surface();
  ASSERT_EQ(surf_a.samples, surf_c.samples);
  EXPECT_EQ(surf_a.cd, surf_c.cd);
  EXPECT_EQ(surf_a.cl, surf_c.cl);
  EXPECT_EQ(surf_a.heat_total, surf_c.heat_total);
  ASSERT_EQ(surf_a.segments.size(), surf_c.segments.size());
  for (std::size_t i = 0; i < surf_a.segments.size(); ++i) {
    EXPECT_EQ(surf_a.segments[i].p, surf_c.segments[i].p) << i;
    EXPECT_EQ(surf_a.segments[i].q, surf_c.segments[i].q) << i;
    EXPECT_EQ(surf_a.segments[i].hits_per_step,
              surf_c.segments[i].hits_per_step)
        << i;
  }
  const auto per_a = a.surface_per_body();
  const auto per_c = c.surface_per_body();
  ASSERT_EQ(per_a.size(), 2u);
  ASSERT_EQ(per_c.size(), 2u);
  for (std::size_t b2 = 0; b2 < per_a.size(); ++b2)
    EXPECT_EQ(per_a[b2].cd, per_c[b2].cd) << b2;

  // Field accumulators too.
  const core::FieldStats fa = a.field();
  const core::FieldStats fc = c.field();
  ASSERT_EQ(fa.samples, fc.samples);
  EXPECT_EQ(fa.density, fc.density);
  EXPECT_EQ(fa.t_total, fc.t_total);
}

TEST(Checkpoint, RefusesRestoreAgainstMismatchedGeometry) {
  cmdp::ThreadPool pool(2);
  const core::SimConfig cfg = scene_cfg();
  core::SimulationD sim(cfg, &pool);
  sim.run(3);
  const std::string path = testing::TempDir() + "/cmdsmc_geo_ckpt.bin";
  core::save_checkpoint(path, sim);

  // Shifted second body: different scene hash.
  core::SimConfig moved = scene_cfg();
  moved.bodies.clear();
  moved.bodies.push_back(cmdsmc::geom::Body::Cylinder(38.0, 17.0, 5.0, 16));
  core::SimulationD sim_moved(moved, &pool);
  EXPECT_THROW(core::load_checkpoint(path, sim_moved), std::runtime_error);

  // Different grid: refused.
  core::SimConfig wider = scene_cfg();
  wider.nx = 64;
  core::SimulationD sim_wider(wider, &pool);
  EXPECT_THROW(core::load_checkpoint(path, sim_wider), std::runtime_error);

  // Different scalar type: refused.
  core::SimulationF sim_fixed(cfg, &pool);
  EXPECT_THROW(core::load_checkpoint(path, sim_fixed), std::runtime_error);

  // Same config: accepted.
  core::SimulationD sim_same(cfg, &pool);
  EXPECT_NO_THROW(core::load_checkpoint(path, sim_same));
  EXPECT_EQ(sim_same.step_index(), sim.step_index());

  // A store-only (v1) checkpoint is not a simulation checkpoint.
  core::save_checkpoint(path, sim.particles());
  EXPECT_THROW(core::load_checkpoint(path, sim_same), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SteadyDetector, DetectsPlateauAfterTransient) {
  core::SteadyDetector det(20, 0.01, 2);
  int step = 0;
  bool steady_at_transient = false;
  // Exponential transient into a plateau.
  for (; step < 400; ++step) {
    const double v = 100.0 * (1.0 - std::exp(-step / 30.0));
    if (det.push(v) && step < 60) steady_at_transient = true;
  }
  EXPECT_FALSE(steady_at_transient);
  EXPECT_TRUE(det.steady());
}

TEST(SteadyDetector, NeverFiresOnLinearGrowth) {
  core::SteadyDetector det(20, 0.01, 2);
  for (int step = 0; step < 300; ++step) det.push(step * 10.0);
  EXPECT_FALSE(det.steady());
}

TEST(SteadyDetector, ResetClearsState) {
  core::SteadyDetector det(5, 0.5, 1);
  for (int i = 0; i < 50; ++i) det.push(1.0);
  EXPECT_TRUE(det.steady());
  det.reset();
  EXPECT_FALSE(det.steady());
}
