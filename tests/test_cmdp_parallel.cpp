#include "cmdp/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cmdp = cmdsmc::cmdp;

TEST(LaneRange, CoversAllIndicesExactlyOnce) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u, 4097u}) {
    for (unsigned lanes : {1u, 2u, 3u, 8u, 24u}) {
      std::vector<int> hits(n, 0);
      for (unsigned t = 0; t < lanes; ++t) {
        const cmdp::Range r = cmdp::lane_range(n, t, lanes);
        ASSERT_LE(r.begin, r.end);
        for (std::size_t i = r.begin; i < r.end; ++i) ++hits[i];
      }
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "n=" << n << " lanes=" << lanes << " i=" << i;
    }
  }
}

TEST(LaneRange, RangesAreOrdered) {
  const std::size_t n = 1001;
  const unsigned lanes = 7;
  std::size_t prev_end = 0;
  for (unsigned t = 0; t < lanes; ++t) {
    const cmdp::Range r = cmdp::lane_range(n, t, lanes);
    EXPECT_EQ(r.begin, prev_end);
    prev_end = r.end;
  }
  EXPECT_EQ(prev_end, n);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  cmdp::ThreadPool pool(4);
  const std::size_t n = 100000;  // above the serial cutoff
  std::vector<std::atomic<int>> hits(n);
  cmdp::parallel_for(pool, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, SmallSizesRunSerially) {
  cmdp::ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  cmdp::parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelChunks, EveryLaneCalledOnceWithDisjointRanges) {
  cmdp::ThreadPool pool(4);
  const std::size_t n = 50000;
  std::vector<int> lane_calls(pool.size(), 0);
  std::vector<std::atomic<int>> hits(n);
  cmdp::parallel_chunks(pool, n, [&](cmdp::Range r, unsigned tid) {
    ++lane_calls[tid];
    for (std::size_t i = r.begin; i < r.end; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (unsigned t = 0; t < pool.size(); ++t) EXPECT_EQ(lane_calls[t], 1);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelReduce, MatchesSerialSum) {
  cmdp::ThreadPool pool(8);
  const std::size_t n = 200001;
  std::vector<std::int64_t> v(n);
  std::iota(v.begin(), v.end(), -1000);
  const auto expected = std::accumulate(v.begin(), v.end(), std::int64_t{0});
  const auto got = cmdp::parallel_sum<std::int64_t>(
      pool, n, [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(got, expected);
}

TEST(ParallelReduce, MaxReduction) {
  cmdp::ThreadPool pool(4);
  const std::size_t n = 123457;
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<int>((i * 2654435761u) % 1000003);
  const int expected = *std::max_element(v.begin(), v.end());
  const int got = cmdp::parallel_reduce<int>(
      pool, n, 0, [&](std::size_t i) { return v[i]; },
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(got, expected);
}

TEST(ThreadPool, SizeOneRunsInline) {
  cmdp::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int calls = 0;
  pool.parallel([&](unsigned tid) {
    EXPECT_EQ(tid, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RepeatedDispatchesAreStable) {
  cmdp::ThreadPool pool(6);
  std::atomic<int> total{0};
  for (int rep = 0; rep < 200; ++rep) {
    pool.parallel([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 6);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  auto& a = cmdp::ThreadPool::global();
  auto& b = cmdp::ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(LaneRange, LaneOfIndexIsExactInverse) {
  for (std::size_t n : {1u, 7u, 4096u, 100001u}) {
    for (unsigned lanes : {1u, 2u, 3u, 8u, 13u}) {
      if (lanes > n) continue;
      for (unsigned t = 0; t < lanes; ++t) {
        const cmdp::Range r = cmdp::lane_range(n, t, lanes);
        for (std::size_t i : {r.begin, r.begin + r.size() / 2, r.end - 1}) {
          if (r.size() == 0) continue;
          EXPECT_EQ(cmdp::lane_of_index(i, n, lanes), t)
              << "n=" << n << " lanes=" << lanes << " i=" << i;
        }
      }
    }
  }
}
