// Golden bit-identity tests for the fused step pipeline.
//
// The per-step pipeline (move+BC, sort, select, collide) has been
// restructured for speed several times; these tests pin the *exact* results
// (cumulative counters, a hash over every particle's state bits, and a hash
// over the time-averaged fields) of short wedge and cylinder runs at a fixed
// seed, for both the double and the fixed-point engines.  Any refactor that
// changes physics — a different stable order, an extra or missing RNG draw,
// a changed rounding — flips these hashes.
//
// The pinned values were produced by the pre-fusion pipeline (PR 2 state:
// separate key-generation pass, histogram+scan in phase_select, gather-based
// reorder) and must survive every later restructuring bit-for-bit.
//
// Regenerate (after an *intentional* physics change only) with:
//   GOLDEN_PRINT=1 ./test_golden_pipeline
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "cmdp/thread_pool.h"
#include "core/simulation.h"
#include "fixedpoint/fixed32.h"
#include "geom/body.h"
#include "obs/telemetry.h"

namespace {

using namespace cmdsmc;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }
std::uint64_t bits_of(fixedpoint::Fixed32 v) {
  return static_cast<std::uint32_t>(v.raw);
}

// Hash over every particle's full state bits, the array order (the stable
// sort's output), the flags/cells, and the cumulative counters.  Exact: any
// single-bit divergence anywhere in the run changes it.
template <class Real>
std::uint64_t state_hash(const core::Simulation<Real>& sim) {
  const auto& st = sim.particles();
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < st.size(); ++i) {
    h = fnv1a(h, bits_of(st.x[i]));
    h = fnv1a(h, bits_of(st.y[i]));
    if (st.has_z) h = fnv1a(h, bits_of(st.z[i]));
    h = fnv1a(h, bits_of(st.ux[i]));
    h = fnv1a(h, bits_of(st.uy[i]));
    h = fnv1a(h, bits_of(st.uz[i]));
    h = fnv1a(h, bits_of(st.r0[i]));
    h = fnv1a(h, bits_of(st.r1[i]));
    if (st.has_vib) {
      h = fnv1a(h, bits_of(st.v0[i]));
      h = fnv1a(h, bits_of(st.v1[i]));
    }
    h = fnv1a(h, static_cast<std::uint64_t>(st.perm[i]));
    h = fnv1a(h, st.cell[i]);
    h = fnv1a(h, st.flags[i]);
    h = fnv1a(h, st.id[i]);
  }
  const auto& c = sim.counters();
  h = fnv1a(h, c.candidates);
  h = fnv1a(h, c.collisions);
  h = fnv1a(h, c.reservoir_collisions);
  h = fnv1a(h, c.removed);
  h = fnv1a(h, c.injected);
  h = fnv1a(h, c.synthesized);
  h = fnv1a(h, sim.total_count());
  h = fnv1a(h, sim.reservoir_count());
  return h;
}

// Hash over the finalized time-averaged fields.  Since the cell-block
// sharding PR the default sampler accumulates per cell in array order, so
// this hash is thread- and shard-invariant too (with shard_enable=0 the
// legacy lane-major reduction returns and it is only meaningful at the
// pinned kGoldenThreads).
std::uint64_t field_hash(const core::FieldStats& f) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, static_cast<std::uint64_t>(f.samples));
  for (const auto* v : {&f.density, &f.ux, &f.uy, &f.t_trans, &f.t_rot}) {
    for (double x : *v) h = fnv1a(h, bits_of(x));
  }
  return h;
}

// Diagnostics reductions (fused total_momentum) folded into one hash.
template <class Real>
std::uint64_t diag_hash(const core::Simulation<Real>& sim) {
  std::uint64_t h = 1469598103934665603ull;
  const auto p = sim.total_momentum();
  h = fnv1a(h, bits_of(p[0]));
  h = fnv1a(h, bits_of(p[1]));
  h = fnv1a(h, bits_of(p[2]));
  h = fnv1a(h, bits_of(sim.total_energy()));
  return h;
}

// The paper's wedge tunnel scaled down: plunger upstream boundary, specular
// walls, sort randomization on, counter RNG.
core::SimConfig wedge_cfg() {
  core::SimConfig cfg;
  cfg.nx = 60;
  cfg.ny = 32;
  cfg.wedge_x0 = 12.0;
  cfg.wedge_base = 18.0;
  cfg.wedge_angle_deg = 30.0;
  cfg.particles_per_cell = 8.0;
  cfg.lambda_inf = 0.5;
  cfg.seed = 0x5eed601dULL;
  return cfg;
}

// A generalized body + the vector-machine upstream path: cylinder with
// diffuse-isothermal walls, soft-source inflow (exercises the strip-count
// top-up), body open-fraction cells.
core::SimConfig cylinder_cfg() {
  core::SimConfig cfg;
  cfg.nx = 48;
  cfg.ny = 32;
  cfg.has_wedge = false;
  cfg.body = geom::Body::Cylinder(20.0, 16.0, 6.0, 16);
  cfg.upstream = geom::UpstreamMode::kSoftSource;
  cfg.wall = geom::WallModel::kDiffuseIsothermal;
  cfg.particles_per_cell = 8.0;
  cfg.lambda_inf = 0.5;
  cfg.seed = 0x5eed601dULL;
  return cfg;
}

// A two-body scene through the Scene-accelerated path: tandem cylinders
// with diffuse walls, plunger upstream, per-(body, segment) flux indexing.
core::SimConfig tandem_cfg() {
  core::SimConfig cfg;
  cfg.nx = 64;
  cfg.ny = 32;
  cfg.has_wedge = false;
  cfg.body = geom::Body::Cylinder(18.0, 16.0, 5.0, 12);
  cfg.bodies.push_back(geom::Body::Cylinder(44.0, 16.0, 5.0, 12));
  cfg.wall = geom::WallModel::kDiffuseIsothermal;
  cfg.particles_per_cell = 8.0;
  cfg.lambda_inf = 0.5;
  cfg.seed = 0x5eed601dULL;
  return cfg;
}

constexpr unsigned kGoldenThreads = 3;
constexpr int kWarmSteps = 20;
constexpr int kAvgSteps = 10;

struct GoldenTriple {
  std::uint64_t state;
  std::uint64_t field;
  std::uint64_t diag;
};

template <class Real>
GoldenTriple run_case(const core::SimConfig& cfg, unsigned threads) {
  cmdp::ThreadPool pool(threads);
  core::Simulation<Real> sim(cfg, &pool);
  sim.run(kWarmSteps);
  sim.set_sampling(true);
  sim.run(kAvgSteps);
  return {state_hash(sim), field_hash(sim.field()), diag_hash(sim)};
}

void check(const char* name, const GoldenTriple& got,
           const GoldenTriple& want) {
  if (std::getenv("GOLDEN_PRINT") != nullptr) {
    std::printf("  {0x%016llxull, 0x%016llxull, 0x%016llxull},  // %s\n",
                static_cast<unsigned long long>(got.state),
                static_cast<unsigned long long>(got.field),
                static_cast<unsigned long long>(got.diag), name);
    return;
  }
  EXPECT_EQ(got.state, want.state) << name << ": particle state diverged";
  EXPECT_EQ(got.field, want.field) << name << ": sampled fields diverged";
  EXPECT_EQ(got.diag, want.diag) << name << ": diagnostics diverged";
}

// Pinned pre-refactor values (see header comment).  The tandem pair was
// pinned when the multi-body Scene landed (no pre-Scene pipeline could run
// it); it guards the scene-accelerated path against later drift.
// The field hashes were re-pinned when the cell-block sharding PR switched
// field accumulation to per-cell array-order sums (an intentional
// summation-order change that made them thread-invariant); the state and
// diag hashes survived that PR untouched, as they must.
constexpr GoldenTriple kGolden[6] = {
    {0x1a0ebf06f9f54e5aull, 0x38cd33d62ea6e3d7ull, 0x83726853f599984cull},
    // wedge double ^, wedge fixed v
    {0x52a549304519061eull, 0x0b468d37601ee949ull, 0x45b437e2a62ca66aull},
    {0x71f2d96154f643f1ull, 0xd566160955eabf63ull, 0x2115fcd97095ffddull},
    // cylinder double ^, cylinder fixed v
    {0x3d29e0bd4bb9eff4ull, 0x3d9ca9dca00b77fdull, 0xd9542098dd6ab304ull},
    {0x500abe99af585c80ull, 0xae4a91c8aed12b0bull, 0x12a1458a37e9df02ull},
    // tandem double ^, tandem fixed v
    {0xb4073cb330ed867dull, 0xc026021f015b9042ull, 0x839cd7da3c979a70ull},
};

}  // namespace

TEST(GoldenPipeline, WedgeDouble) {
  check("wedge double", run_case<double>(wedge_cfg(), kGoldenThreads),
        kGolden[0]);
}

TEST(GoldenPipeline, WedgeFixed) {
  check("wedge fixed", run_case<fixedpoint::Fixed32>(wedge_cfg(),
                                                     kGoldenThreads),
        kGolden[1]);
}

TEST(GoldenPipeline, CylinderDouble) {
  check("cylinder double", run_case<double>(cylinder_cfg(), kGoldenThreads),
        kGolden[2]);
}

TEST(GoldenPipeline, CylinderFixed) {
  check("cylinder fixed",
        run_case<fixedpoint::Fixed32>(cylinder_cfg(), kGoldenThreads),
        kGolden[3]);
}

TEST(GoldenPipeline, TandemCylindersDouble) {
  check("tandem double", run_case<double>(tandem_cfg(), kGoldenThreads),
        kGolden[4]);
}

TEST(GoldenPipeline, TandemCylindersFixed) {
  check("tandem fixed",
        run_case<fixedpoint::Fixed32>(tandem_cfg(), kGoldenThreads),
        kGolden[5]);
}

// Telemetry is a pure observer: attaching a full session (per-step JSONL +
// Chrome trace + per-lane timer accumulation) must not perturb a single bit
// of the physics.  Any RNG draw, reordering, or extra particle touch made by
// the observability layer flips the pinned hashes.
TEST(GoldenPipeline, TelemetryOnMatchesGolden) {
  cmdp::ThreadPool pool(kGoldenThreads);
  core::SimulationD sim(wedge_cfg(), &pool);

  obs::TelemetryOptions topt;
  topt.jsonl_path = "golden_telemetry.jsonl";
  topt.trace_path = "golden_trace.json";
  obs::TelemetrySession telemetry(std::move(topt));
  ASSERT_TRUE(telemetry.ok());
  sim.set_step_observer(&telemetry);

  sim.run(kWarmSteps);
  sim.set_sampling(true);
  sim.run(kAvgSteps);
  sim.set_step_observer(nullptr);
  telemetry.finish();

  EXPECT_EQ(telemetry.steps_recorded(), kWarmSteps + kAvgSteps);
  const GoldenTriple got = {state_hash(sim), field_hash(sim.field()),
                            diag_hash(sim)};
  check("wedge double + telemetry", got, kGolden[0]);
  std::remove("golden_telemetry.jsonl");
  std::remove("golden_trace.json");
}

// The particle state (sorted order, counters, every state bit) must not
// depend on the thread count: the sort is stable and deterministic per lane
// partition, all counters are integers, and no RNG draw depends on a lane
// id.  Since the sharding PR the sampled fields accumulate per cell in
// array order, so their hash is thread-invariant too — the 16- and 32-lane
// legs exercise shard counts well past the pinned 3.
// (The diag hash stays lane-summed parallel_reduce doubles and legitimately
// changes association with the thread count; it is pinned at kGoldenThreads
// only.)
TEST(GoldenPipeline, StateIsThreadCountInvariant) {
  const auto a = run_case<double>(wedge_cfg(), 1);
  for (const unsigned threads : {kGoldenThreads, 16u, 32u}) {
    const auto b = run_case<double>(wedge_cfg(), threads);
    EXPECT_EQ(a.state, b.state) << "wedge state @ " << threads << " lanes";
    EXPECT_EQ(a.field, b.field) << "wedge field @ " << threads << " lanes";
  }
  const auto c = run_case<fixedpoint::Fixed32>(cylinder_cfg(), 1);
  const auto d = run_case<fixedpoint::Fixed32>(cylinder_cfg(),
                                               kGoldenThreads);
  EXPECT_EQ(c.state, d.state);
  EXPECT_EQ(c.field, d.field);
  const auto e = run_case<double>(tandem_cfg(), 1);
  const auto f = run_case<double>(tandem_cfg(), 16);
  EXPECT_EQ(e.state, f.state);
  EXPECT_EQ(e.field, f.field);
}

// The shard partitioner only decides which lane executes a cell block;
// turning it off (the static particle-balanced split) must not move a
// single state bit.  The shard knobs must not perturb the partition either.
TEST(GoldenPipeline, ShardPlanDoesNotChangeState) {
  core::SimConfig off = wedge_cfg();
  off.shard_enable = false;
  const auto a = run_case<double>(off, kGoldenThreads);
  EXPECT_EQ(a.state, kGolden[0].state)
      << "shard.enable=0 changed the particle state";

  core::SimConfig aggressive = wedge_cfg();
  aggressive.shard_per_lane = 7;
  aggressive.shard_rebalance_threshold = 1.0;  // repartition every chance
  aggressive.shard_rebalance_interval = 1;
  aggressive.shard_adapt = false;
  const auto b = run_case<double>(aggressive, kGoldenThreads);
  EXPECT_EQ(b.state, kGolden[0].state);
  EXPECT_EQ(b.field, kGolden[0].field);
}

// Mid-run repartitioning across a checkpoint: save at step 10, restore into
// a simulation with a different lane count AND different shard knobs (so
// the rebuilt plan has a different shard count and repartitions every
// step), and finish the run.  The full golden triple must reproduce — the
// shard plan is transient state that carries no physics.  This is the same
// save/restore mechanism core/checkpoint.* serializes to disk.
TEST(GoldenPipeline, RepartitionAcrossCheckpointReproducesHashes) {
  cmdp::ThreadPool pool_a(kGoldenThreads);
  core::SimulationD a(wedge_cfg(), &pool_a);
  a.run(10);
  const auto store_snapshot = a.particles();
  const auto state_snapshot = a.resume_state();

  core::SimConfig cfg_b = wedge_cfg();
  cfg_b.shard_per_lane = 2;
  cfg_b.shard_rebalance_threshold = 1.0;
  cfg_b.shard_rebalance_interval = 1;
  cmdp::ThreadPool pool_b(16);
  core::SimulationD b(cfg_b, &pool_b);
  b.restore(store_snapshot, state_snapshot);
  b.run(kWarmSteps - 10);
  b.set_sampling(true);
  b.run(kAvgSteps);

  EXPECT_EQ(state_hash(b), kGolden[0].state);
  EXPECT_EQ(field_hash(b.field()), kGolden[0].field);
  // The aggressive knobs really did exercise the repartitioner.
  const auto sh = b.shard_stats();
  EXPECT_GT(sh.shards, 0u);
  EXPECT_GT(sh.repartitions, 1u);
  EXPECT_GE(sh.post_imbalance, 1.0);
}
