#include "core/sampling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/rng.h"
#include "rng/samplers.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;
namespace geom = cmdsmc::geom;

namespace {

// Fills a store with a uniform drifting Maxwellian over the grid.
core::ParticleStore<double> uniform_gas(const geom::Grid& grid, double ppc,
                                        double sigma, double drift,
                                        std::uint64_t seed) {
  core::ParticleStore<double> s;
  const auto n =
      static_cast<std::size_t>(ppc * static_cast<double>(grid.ncells()));
  s.resize(n);
  cmdsmc::rng::SplitMix64 g(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = g.next_double() * grid.nx;
    const double y = g.next_double() * grid.ny;
    s.x[i] = x;
    s.y[i] = y;
    s.ux[i] = drift + sigma * cmdsmc::rng::sample_gaussian(g);
    s.uy[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.uz[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.r0[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.r1[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.cell[i] = grid.index(static_cast<int>(x), static_cast<int>(y));
    s.flags[i] = 0;
  }
  return s;
}

}  // namespace

TEST(FieldSampler, UniformGasGivesUnitDensityAndTemperature) {
  cmdp::ThreadPool pool(4);
  geom::Grid grid{16, 16, 0};
  const double ppc = 50.0;
  const double sigma = 0.2;
  const double drift = 0.7;
  core::FieldSampler<double> sampler(
      grid, std::vector<double>(grid.ncells(), 1.0), ppc, sigma);
  for (int rep = 0; rep < 20; ++rep) {
    auto s = uniform_gas(grid, ppc, sigma, drift, 100 + rep);
    sampler.accumulate(pool, s, s.size());
  }
  const auto f = sampler.finalize();
  EXPECT_EQ(f.samples, 20);
  double min_rho = 1e9, max_rho = 0.0, mean_t = 0.0, mean_ux = 0.0;
  for (std::size_t c = 0; c < f.density.size(); ++c) {
    min_rho = std::min(min_rho, f.density[c]);
    max_rho = std::max(max_rho, f.density[c]);
    mean_t += f.t_total[c];
    mean_ux += f.ux[c];
  }
  mean_t /= static_cast<double>(f.density.size());
  mean_ux /= static_cast<double>(f.density.size());
  EXPECT_GT(min_rho, 0.85);
  EXPECT_LT(max_rho, 1.15);
  EXPECT_NEAR(mean_t, 1.0, 0.03);
  EXPECT_NEAR(mean_ux, drift, 0.01);
}

TEST(FieldSampler, TranslationalAndRotationalTemperaturesSeparate) {
  cmdp::ThreadPool pool(2);
  geom::Grid grid{8, 8, 0};
  const double ppc = 200.0;
  const double sigma = 0.2;
  core::FieldSampler<double> sampler(
      grid, std::vector<double>(grid.ncells(), 1.0), ppc, sigma);
  // Gas with hot rotation: r sampled at 2x sigma -> T_rot = 4 T_ref.
  auto s = uniform_gas(grid, ppc, sigma, 0.0, 7);
  cmdsmc::rng::SplitMix64 g(8);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s.r0[i] = 2.0 * sigma * cmdsmc::rng::sample_gaussian(g);
    s.r1[i] = 2.0 * sigma * cmdsmc::rng::sample_gaussian(g);
  }
  sampler.accumulate(pool, s, s.size());
  const auto f = sampler.finalize();
  double t_trans = 0.0, t_rot = 0.0;
  for (std::size_t c = 0; c < f.density.size(); ++c) {
    t_trans += f.t_trans[c];
    t_rot += f.t_rot[c];
  }
  t_trans /= static_cast<double>(f.density.size());
  t_rot /= static_cast<double>(f.density.size());
  EXPECT_NEAR(t_trans, 1.0, 0.05);
  EXPECT_NEAR(t_rot, 4.0, 0.2);
  // t_total is the 5-DOF weighted mean.
  const double expect_total = (3.0 * 1.0 + 2.0 * 4.0) / 5.0;
  double t_total = 0.0;
  for (std::size_t c = 0; c < f.density.size(); ++c) t_total += f.t_total[c];
  t_total /= static_cast<double>(f.density.size());
  EXPECT_NEAR(t_total, expect_total, 0.1);
}

TEST(FieldSampler, OpenFractionNormalizesCutCells) {
  cmdp::ThreadPool pool(1);
  geom::Grid grid{4, 1, 0};
  // Cell 2 is half solid: same raw count should read double density without
  // normalization; with open fraction 0.5 it reads the true density.
  std::vector<double> open = {1.0, 1.0, 0.5, 1.0};
  const double ppc = 1000.0;
  core::FieldSampler<double> sampler(grid, open, ppc, 0.2);
  core::ParticleStore<double> s;
  // Fill cells 0,1,3 with ppc particles and cell 2 with ppc/2 (its open half
  // at the same physical density).
  auto fill_cell = [&](int cell, int count) {
    for (int k = 0; k < count; ++k) {
      s.push_back(cell + 0.5, 0.5, 0, 0, 0, 0, 0, 0,
                  cmdsmc::rng::identity_perm());
      s.cell.back() = static_cast<std::uint32_t>(cell);
    }
  };
  fill_cell(0, 1000);
  fill_cell(1, 1000);
  fill_cell(2, 500);
  fill_cell(3, 1000);
  sampler.accumulate(pool, s, s.size());
  const auto f = sampler.finalize();
  for (int c = 0; c < 4; ++c)
    EXPECT_NEAR(f.density[static_cast<std::size_t>(c)], 1.0, 1e-9) << c;
}

TEST(FieldSampler, FullySolidCellReportsZeroDensity) {
  cmdp::ThreadPool pool(1);
  geom::Grid grid{2, 1, 0};
  std::vector<double> open = {1.0, 0.0};
  core::FieldSampler<double> sampler(grid, open, 10.0, 0.2);
  core::ParticleStore<double> s;
  s.push_back(0.5, 0.5, 0, 0, 0, 0, 0, 0, cmdsmc::rng::identity_perm());
  s.cell.back() = 0;
  sampler.accumulate(pool, s, s.size());
  const auto f = sampler.finalize();
  EXPECT_EQ(f.density[1], 0.0);
}

TEST(FieldSampler, ResetClearsAccumulation) {
  cmdp::ThreadPool pool(1);
  geom::Grid grid{4, 4, 0};
  core::FieldSampler<double> sampler(
      grid, std::vector<double>(grid.ncells(), 1.0), 10.0, 0.2);
  auto s = uniform_gas(grid, 10.0, 0.2, 0.0, 9);
  sampler.accumulate(pool, s, s.size());
  EXPECT_EQ(sampler.samples(), 1);
  sampler.reset();
  EXPECT_EQ(sampler.samples(), 0);
  const auto f = sampler.finalize();
  for (double d : f.density) EXPECT_EQ(d, 0.0);
}

TEST(FieldSampler, IgnoresReservoirTail) {
  cmdp::ThreadPool pool(1);
  geom::Grid grid{2, 2, 0};
  core::FieldSampler<double> sampler(
      grid, std::vector<double>(grid.ncells(), 1.0), 1.0, 0.2);
  core::ParticleStore<double> s;
  s.push_back(0.5, 0.5, 0, 0, 0, 0, 0, 0, cmdsmc::rng::identity_perm());
  s.cell.back() = 0;
  // Tail particle beyond n_flow must not be counted.
  s.push_back(0.5, 0.5, 0, 0, 0, 0, 0, 0, cmdsmc::rng::identity_perm(), 1);
  s.cell.back() = 0;
  sampler.accumulate(pool, s, 1);
  const auto f = sampler.finalize();
  EXPECT_NEAR(f.mean_count[0], 1.0, 1e-12);
}
