// The scenario/runner layer: registry lookup, key=value override
// round-trips onto every SimConfig field, invalid-key rejection, and the
// golden-run regression — the Runner must reproduce the legacy
// examples/wedge_mach4 run loop (counters and fields) at equal seed.
#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cmdp/thread_pool.h"
#include "core/simulation.h"
#include "scenario/runner.h"

namespace core = cmdsmc::core;
namespace geom = cmdsmc::geom;
namespace cli = cmdsmc::cli;
namespace scenario = cmdsmc::scenario;
namespace cmdp = cmdsmc::cmdp;
namespace physics = cmdsmc::physics;

// --- Registry ----------------------------------------------------------------

TEST(ScenarioRegistry, ContainsThePaperScenarios) {
  for (const char* name :
       {"wedge-mach4", "wedge-mach4-rarefied", "cylinder-mach10", "biconic",
        "flat-plate-diffuse", "duct3d", "reservoir-relax", "biconic_axi",
        "sphere_axi"}) {
    ASSERT_NE(scenario::find_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(scenario::find_scenario("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, EverySpecBuildsAValidConfig) {
  for (const auto& spec : scenario::all_scenarios()) {
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_NO_THROW({
      const core::SimConfig cfg = spec.build_config();
      (void)cfg;
    }) << spec.name;
  }
}

TEST(ScenarioRegistry, GetScenarioUnknownNameListsChoices) {
  try {
    scenario::get_scenario("wedge-mach5");
    FAIL() << "expected ArgError";
  } catch (const cli::ArgError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("wedge-mach5"), std::string::npos);
    EXPECT_NE(msg.find("wedge-mach4"), std::string::npos);
  }
}

// --- Overrides ---------------------------------------------------------------

TEST(ScenarioOverrides, RoundTripsEverySimConfigField) {
  scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
  const std::pair<const char*, const char*> overrides[] = {
      {"nx", "50"},
      {"ny", "40"},
      {"nz", "8"},
      {"mach", "5.5"},
      {"sigma", "0.1"},
      {"lambda_inf", "0.25"},
      {"particles_per_cell", "9.5"},
      {"reservoir_fraction", "0.15"},
      {"has_wedge", "false"},
      {"wedge_x0", "11"},
      {"wedge_base", "13"},
      {"wedge_angle_deg", "22"},
      {"potential", "inverse_power"},
      {"alpha", "6"},
      {"vibrational", "true"},
      {"vib_exchange_prob", "0.3"},
      {"vib_init_temperature", "0.5"},
      {"closed_box", "false"},
      {"upstream", "source"},
      {"plunger_trigger", "2.5"},
      {"wall", "diffuse_adiabatic"},
      {"twall", "0.25"},
      {"sort_scale", "4"},
      {"randomize_sort", "false"},
      {"transpositions_per_collision", "2"},
      {"rounding", "truncate"},
      {"rng_mode", "dirty"},
      {"reservoir_collisions", "false"},
      {"seed", "0x123"},
  };
  for (const auto& [k, v] : overrides)
    scenario::apply_override(spec, k, v);

  const core::SimConfig& c = spec.config;
  EXPECT_EQ(c.nx, 50);
  EXPECT_EQ(c.ny, 40);
  EXPECT_EQ(c.nz, 8);
  EXPECT_DOUBLE_EQ(c.mach, 5.5);
  EXPECT_DOUBLE_EQ(c.sigma, 0.1);
  EXPECT_DOUBLE_EQ(c.lambda_inf, 0.25);
  EXPECT_DOUBLE_EQ(c.particles_per_cell, 9.5);
  EXPECT_DOUBLE_EQ(c.reservoir_fraction, 0.15);
  EXPECT_FALSE(c.has_wedge);
  EXPECT_DOUBLE_EQ(c.wedge_x0, 11.0);
  EXPECT_DOUBLE_EQ(c.wedge_base, 13.0);
  EXPECT_DOUBLE_EQ(c.wedge_angle_deg, 22.0);
  EXPECT_EQ(c.gas.potential, physics::Potential::kInversePower);
  EXPECT_DOUBLE_EQ(c.gas.alpha, 6.0);
  EXPECT_TRUE(c.vibrational);
  EXPECT_DOUBLE_EQ(c.vib_exchange_prob, 0.3);
  EXPECT_DOUBLE_EQ(c.vib_init_temperature, 0.5);
  EXPECT_FALSE(c.closed_box);
  EXPECT_EQ(c.upstream, geom::UpstreamMode::kSoftSource);
  EXPECT_DOUBLE_EQ(c.plunger_trigger, 2.5);
  EXPECT_EQ(c.wall, geom::WallModel::kDiffuseAdiabatic);
  EXPECT_EQ(c.sort_scale, 4);
  EXPECT_FALSE(c.randomize_sort);
  EXPECT_EQ(c.transpositions_per_collision, 2);
  EXPECT_EQ(c.rounding, core::Rounding::kTruncate);
  EXPECT_EQ(c.rng_mode, core::RngMode::kDirty);
  EXPECT_FALSE(c.reservoir_collisions);
  EXPECT_EQ(c.seed, 0x123ULL);

  // The wall temperature ratio is applied physically at build time, derived
  // from the final sigma (the satellite fix: overriding sigma can no longer
  // leave wall_sigma at its default).
  const core::SimConfig built = spec.build_config();
  EXPECT_NEAR(built.wall_sigma, 0.1 * std::sqrt(0.25), 1e-12);
  EXPECT_NEAR(built.wall_temperature_ratio(), 0.25, 1e-12);
}

TEST(ScenarioOverrides, AliasesAndScheduleKeys) {
  scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
  scenario::apply_override(spec, "ppc", "7");
  scenario::apply_override(spec, "lambda", "0.5");
  scenario::apply_override(spec, "steps", "33");
  scenario::apply_override(spec, "precision", "fixed");
  EXPECT_DOUBLE_EQ(spec.config.particles_per_cell, 7.0);
  EXPECT_DOUBLE_EQ(spec.config.lambda_inf, 0.5);
  EXPECT_EQ(spec.schedule.steady_steps, 33);
  EXPECT_EQ(spec.schedule.avg_steps, 33);
  EXPECT_EQ(spec.schedule.precision, scenario::Precision::kFixed);
}

TEST(ScenarioOverrides, BodyKeysDriveTheFactory) {
  scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
  scenario::apply_override(spec, "body.kind", "cylinder");
  scenario::apply_override(spec, "body.x0", "40");
  scenario::apply_override(spec, "body.y0", "32");
  scenario::apply_override(spec, "body.radius", "6");
  scenario::apply_override(spec, "body.facets", "24");
  scenario::apply_override(spec, "body.wall", "diffuse_isothermal");
  scenario::apply_override(spec, "body.twall", "0.5");
  const core::SimConfig cfg = spec.build_config();
  ASSERT_TRUE(cfg.body.has_value());
  EXPECT_EQ(cfg.body->segment_count(), 24);
  EXPECT_TRUE(cfg.body->any_diffuse());
  EXPECT_NEAR(cfg.body->segments()[0].wall_sigma,
              cfg.sigma * std::sqrt(0.5), 1e-12);
  // The atof-truncation footgun is gone: fractional facet counts error.
  EXPECT_THROW(scenario::apply_override(spec, "body.facets", "36.9"),
               cli::ArgError);
}

TEST(ScenarioOverrides, RejectsUnknownAndMalformedKeys) {
  scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
  EXPECT_THROW(scenario::apply_override(spec, "mcah", "8"), cli::ArgError);
  EXPECT_THROW(scenario::apply_override(spec, "", "8"), cli::ArgError);
  EXPECT_THROW(scenario::apply_override(spec, "mach", "fast"),
               cli::ArgError);
  EXPECT_THROW(scenario::apply_override(spec, "nx", "98.5"), cli::ArgError);
  EXPECT_THROW(scenario::apply_override(spec, "wall", "sticky"),
               cli::ArgError);
  EXPECT_THROW(scenario::apply_override(spec, "body.kind", "sphere"),
               cli::ArgError);
  // The unknown-key message lists the valid keys.
  try {
    scenario::apply_override(spec, "mcah", "8");
    FAIL() << "expected ArgError";
  } catch (const cli::ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("mach"), std::string::npos);
  }
  // Every advertised key has help text.
  for (const std::string& key : scenario::override_keys())
    EXPECT_FALSE(scenario::override_help(key).empty()) << key;
}

TEST(ScenarioOverrides, AxisymmetricFlagRoundTripsAndRejectsIncompatible) {
  // The flag round-trips like any SimConfig field...
  scenario::ScenarioSpec spec = scenario::get_scenario("sphere_axi");
  EXPECT_TRUE(spec.config.axisymmetric);
  scenario::apply_override(spec, "axisymmetric", "false");
  EXPECT_FALSE(spec.config.axisymmetric);
  // ...but planar mode cannot build a body straddling the axis (ymin < 0).
  EXPECT_THROW(spec.build_config(), std::invalid_argument);
  // Axisymmetric on an incompatible 3D scenario is rejected at build time.
  scenario::ScenarioSpec duct = scenario::get_scenario("duct3d");
  scenario::apply_override(duct, "axisymmetric", "true");
  EXPECT_THROW(duct.build_config(), std::invalid_argument);
  // The legacy-wedge path is planar-only.
  scenario::ScenarioSpec wedge = scenario::get_scenario("wedge-mach4");
  scenario::apply_override(wedge, "axisymmetric", "true");
  EXPECT_THROW(wedge.build_config(), std::invalid_argument);
}

TEST(ScenarioRunner, AxisymmetricRunReportsRevolvedBodyCoefficients) {
  cmdp::ThreadPool pool(0);
  scenario::ScenarioSpec spec = scenario::get_scenario("biconic_axi");
  scenario::apply_override(spec, "steps", "8");
  scenario::apply_override(spec, "ppc", "3");
  scenario::Runner runner(spec);
  const scenario::RunResult r = runner.run(&pool);
  EXPECT_TRUE(r.config.axisymmetric);
  ASSERT_TRUE(r.surface.has_value());
  EXPECT_GT(r.surface->cd, 0.0);
  EXPECT_EQ(r.surface->cl, 0.0);  // revolved body: zero lateral force
  ASSERT_EQ(r.surfaces.size(), 1u);
  const std::string json = scenario::JsonSummarySink::to_json(r);
  EXPECT_NE(json.find("\"axisymmetric\": true"), std::string::npos);
  EXPECT_NE(json.find("\"bodies\": ["), std::string::npos);
  EXPECT_NE(json.find("\"cloned\":"), std::string::npos);
}

TEST(SimConfigWallTemperature, RatioAccessorDerivesFromSigma) {
  core::SimConfig cfg;
  cfg.sigma = 0.2;
  cfg.set_wall_temperature_ratio(0.25);
  EXPECT_NEAR(cfg.wall_sigma, 0.1, 1e-12);
  EXPECT_NEAR(cfg.wall_temperature_ratio(), 0.25, 1e-12);
  EXPECT_THROW(cfg.set_wall_temperature_ratio(-1.0), std::invalid_argument);
}

// --- Golden run: Runner vs the legacy example loop ---------------------------

TEST(ScenarioRunner, WedgeMach4MatchesLegacyExampleCountersAtEqualSeed) {
  cmdp::ThreadPool pool(0);

  // `cmdsmc run wedge-mach4 steps=20` through the Runner.
  scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
  scenario::apply_override(spec, "steps", "20");
  scenario::Runner runner(spec);
  const scenario::RunResult r = runner.run(&pool);
  EXPECT_EQ(r.steady_steps, 20);
  EXPECT_EQ(r.avg_steps, 20);

  // The legacy examples/wedge_mach4 loop: construct, run steady, enable
  // sampling, run averaging — same config, same seed.
  const core::SimConfig cfg = spec.build_config();
  core::SimulationD sim(cfg, &pool);
  sim.run(20);
  sim.set_sampling(true);
  sim.run(20);

  EXPECT_EQ(r.counters.candidates, sim.counters().candidates);
  EXPECT_EQ(r.counters.collisions, sim.counters().collisions);
  EXPECT_EQ(r.counters.reservoir_collisions,
            sim.counters().reservoir_collisions);
  EXPECT_EQ(r.counters.removed, sim.counters().removed);
  EXPECT_EQ(r.counters.injected, sim.counters().injected);
  EXPECT_EQ(r.counters.synthesized, sim.counters().synthesized);
  EXPECT_EQ(r.flow_count, sim.flow_count());
  EXPECT_EQ(r.reservoir_count, sim.reservoir_count());

  // Identical time-averaged fields, cell for cell.
  const core::FieldStats f = sim.field();
  ASSERT_EQ(r.field.samples, f.samples);
  ASSERT_EQ(r.field.density.size(), f.density.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < f.density.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(r.field.density[i] - f.density[i]));
  EXPECT_LT(max_diff, 1e-12);
}

TEST(ScenarioRunner, SurfaceStatsAndJsonSummaryForBodyScenarios) {
  cmdp::ThreadPool pool(0);
  scenario::ScenarioSpec spec = scenario::get_scenario("cylinder-mach10");
  scenario::apply_override(spec, "steps", "15");
  scenario::apply_override(spec, "ppc", "4");
  scenario::Runner runner(spec);
  const scenario::RunResult r = runner.run(&pool);
  ASSERT_TRUE(r.surface.has_value());
  EXPECT_EQ(r.surface->segments.size(), 36u);
  EXPECT_GT(r.surface->cd, 0.0);
  EXPECT_GT(r.cp_max(), 0.0);
  // Energy bookkeeping of the split: heat = incident - reflected.
  EXPECT_NEAR(r.surface->heat_total,
              r.surface->q_incident_total - r.surface->q_reflected_total,
              1e-9 * std::max(1.0, r.surface->q_incident_total));

  const std::string json = scenario::JsonSummarySink::to_json(r);
  EXPECT_NE(json.find("\"scenario\": \"cylinder-mach10\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cd\":"), std::string::npos);
  EXPECT_NE(json.find("\"cp_max\":"), std::string::npos);
  EXPECT_NE(json.find("\"q_incident\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":"), std::string::npos);
}

TEST(ScenarioRunner, AutoSteadyStopsWithinTheCap) {
  cmdp::ThreadPool pool(0);
  scenario::ScenarioSpec spec = scenario::get_scenario("reservoir-relax");
  spec.schedule.auto_steady = true;
  spec.schedule.max_steady_steps = 60;
  spec.schedule.avg_steps = 5;
  scenario::Runner runner(spec);
  const scenario::RunResult r = runner.run(&pool);
  EXPECT_LE(r.steady_steps, 60);
  EXPECT_EQ(r.avg_steps, 5);
  EXPECT_EQ(r.field.samples, 5);
}

TEST(ScenarioRunner, FixedPrecisionRunsEndToEnd) {
  cmdp::ThreadPool pool(0);
  scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
  scenario::apply_override(spec, "steps", "5");
  scenario::apply_override(spec, "ppc", "4");
  scenario::apply_override(spec, "precision", "fixed");
  scenario::Runner runner(spec);
  const scenario::RunResult r = runner.run(&pool);
  EXPECT_EQ(r.precision, scenario::Precision::kFixed);
  EXPECT_GT(r.counters.collisions, 0u);
  EXPECT_EQ(r.field.samples, 5);
}
