#include "physics/theory.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace th = cmdsmc::physics::theory;

namespace {
constexpr double kRad = std::numbers::pi / 180.0;
}

TEST(NormalShock, Mach2AirTextbookValues) {
  const double g = 1.4;
  EXPECT_NEAR(th::normal_shock_density_ratio(2.0, g), 2.6667, 1e-3);
  EXPECT_NEAR(th::normal_shock_pressure_ratio(2.0, g), 4.5, 1e-6);
  EXPECT_NEAR(th::normal_shock_downstream_mach(2.0, g), 0.5774, 1e-4);
  EXPECT_NEAR(th::normal_shock_temperature_ratio(2.0, g), 1.6875, 1e-4);
}

TEST(NormalShock, MachOneIsIdentity) {
  EXPECT_NEAR(th::normal_shock_density_ratio(1.0), 1.0, 1e-12);
  EXPECT_NEAR(th::normal_shock_pressure_ratio(1.0), 1.0, 1e-12);
  EXPECT_NEAR(th::normal_shock_downstream_mach(1.0), 1.0, 1e-12);
}

TEST(NormalShock, StrongShockDensityLimitIs6ForDiatomic) {
  // (gamma+1)/(gamma-1) = 6 for gamma = 7/5.
  EXPECT_NEAR(th::normal_shock_density_ratio(100.0), 6.0, 0.01);
}

TEST(ObliqueShock, PaperCaseMach4Wedge30GivesBeta45AndRatio3p7) {
  // The validation numbers the paper quotes for figs. 1-3.
  // Exact theory gives beta = 45.34 deg, ratio = 3.71; the paper quotes the
  // rounded 45 deg / 3.7x.
  const double beta = th::oblique_shock_angle(30.0 * kRad, 4.0);
  EXPECT_NEAR(beta / kRad, 45.0, 0.6);
  const double ratio = th::oblique_shock_density_ratio(beta, 4.0);
  EXPECT_NEAR(ratio, 3.7, 0.08);
}

TEST(ObliqueShock, DeflectionIsInverseOfShockAngle) {
  for (double theta_deg : {5.0, 10.0, 20.0, 30.0}) {
    const double beta = th::oblique_shock_angle(theta_deg * kRad, 4.0);
    EXPECT_NEAR(th::deflection_angle(beta, 4.0) / kRad, theta_deg, 1e-6);
  }
}

TEST(ObliqueShock, ZeroDeflectionGivesMachWave) {
  const double beta = th::oblique_shock_angle(0.0, 2.0);
  EXPECT_NEAR(beta, std::asin(0.5), 1e-9);
}

TEST(ObliqueShock, DetachedThrows) {
  // Max deflection at M=2 (gamma 1.4) is ~23 degrees.
  EXPECT_THROW(th::oblique_shock_angle(35.0 * kRad, 2.0),
               std::domain_error);
}

TEST(ObliqueShock, DownstreamMachPaperCaseStaysSupersonic) {
  const double beta = th::oblique_shock_angle(30.0 * kRad, 4.0);
  const double m2 = th::oblique_shock_downstream_mach(beta, 30.0 * kRad, 4.0);
  EXPECT_GT(m2, 1.0);
  EXPECT_LT(m2, 4.0);
  // M1n = 4 sin(45.34 deg) = 2.85, M2n = 0.485, M2 = M2n / sin(beta - theta)
  // = 1.85 for M = 4, theta = 30 deg, gamma = 1.4.
  EXPECT_NEAR(m2, 1.85, 0.03);
}

TEST(PrandtlMeyer, TextbookValues) {
  // nu(M=2, gamma=1.4) = 26.38 degrees.
  EXPECT_NEAR(th::prandtl_meyer(2.0, 1.4) / kRad, 26.38, 0.02);
  EXPECT_NEAR(th::prandtl_meyer(1.0, 1.4), 0.0, 1e-9);
  EXPECT_THROW(th::prandtl_meyer(0.5, 1.4), std::domain_error);
}

TEST(PrandtlMeyer, InverseRoundTrips) {
  for (double m : {1.1, 1.5, 2.0, 3.0, 5.0}) {
    const double nu = th::prandtl_meyer(m);
    EXPECT_NEAR(th::mach_from_prandtl_meyer(nu), m, 1e-6);
  }
  EXPECT_THROW(th::mach_from_prandtl_meyer(-0.1), std::domain_error);
}

TEST(Isentropic, DensityRatioDecreasesWithMach) {
  double prev = th::isentropic_density_ratio(0.0);
  EXPECT_NEAR(prev, 1.0, 1e-12);
  for (double m = 0.5; m < 5.0; m += 0.5) {
    const double r = th::isentropic_density_ratio(m);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Kinetic, SoundSpeedAndMeanSpeed) {
  EXPECT_NEAR(th::sound_speed(1.0), std::sqrt(1.4), 1e-12);
  EXPECT_NEAR(th::maxwell_mean_speed(1.0), std::sqrt(8.0 / std::numbers::pi),
              1e-12);
}

TEST(Kinetic, PaperKnudsenAndReynolds) {
  // Paper: lambda = 0.5 cells, wedge 25 cells -> Kn = 0.02, Re = 600.
  const double kn = th::knudsen_number(0.5, 25.0);
  EXPECT_NEAR(kn, 0.02, 1e-12);
  const double re = th::reynolds_from_mach_knudsen(4.0, kn);
  EXPECT_NEAR(re, 600.0, 320.0);  // same order; the paper's exact viscosity
                                  // model is not specified
}
