// The comparator collision schemes the paper discusses: Bird's per-cell
// time counter and Nanbu's one-sided scheme.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bird_tc.h"
#include "baseline/nanbu.h"
#include "rng/rng.h"
#include "rng/samplers.h"

namespace baseline = cmdsmc::baseline;
namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;
namespace geom = cmdsmc::geom;

namespace {

core::ParticleStore<double> equilibrium_gas(const geom::Grid& grid,
                                            double ppc, double sigma,
                                            std::uint64_t seed) {
  core::ParticleStore<double> s;
  const auto n =
      static_cast<std::size_t>(ppc * static_cast<double>(grid.ncells()));
  s.resize(n);
  cmdsmc::rng::SplitMix64 g(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = g.next_double() * grid.nx;
    const double y = g.next_double() * grid.ny;
    s.x[i] = x;
    s.y[i] = y;
    s.ux[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.uy[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.uz[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.r0[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.r1[i] = sigma * cmdsmc::rng::sample_gaussian(g);
    s.cell[i] = grid.index(static_cast<int>(x), static_cast<int>(y));
  }
  return s;
}

double total_energy(const core::ParticleStore<double>& s) {
  double e = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i)
    e += 0.5 * (s.ux[i] * s.ux[i] + s.uy[i] * s.uy[i] + s.uz[i] * s.uz[i] +
                s.r0[i] * s.r0[i] + s.r1[i] * s.r1[i]);
  return e;
}

double momentum_x(const core::ParticleStore<double>& s) {
  double p = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) p += s.ux[i];
  return p;
}

double ux_kurtosis(const core::ParticleStore<double>& s) {
  double m2 = 0.0, m4 = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    m2 += s.ux[i] * s.ux[i];
    m4 += s.ux[i] * s.ux[i] * s.ux[i] * s.ux[i];
  }
  m2 /= static_cast<double>(s.size());
  m4 /= static_cast<double>(s.size());
  return m4 / (m2 * m2);
}

}  // namespace

TEST(BirdTimeCounter, ConservesEnergyAndMomentumExactly) {
  cmdp::ThreadPool pool(4);
  geom::Grid grid{8, 8, 0};
  auto gas = equilibrium_gas(grid, 40.0, 0.2, 1);
  baseline::BaselineConfig cfg;
  cfg.pc_inf = 0.5;
  cfg.n_inf = 40.0;
  baseline::BirdTimeCounter bird(grid, cfg);
  const double e0 = total_energy(gas);
  const double p0 = momentum_x(gas);
  for (int s = 0; s < 20; ++s) bird.collision_step(pool, gas);
  EXPECT_GT(bird.collisions(), 0u);
  EXPECT_NEAR(total_energy(gas) / e0, 1.0, 1e-12);
  EXPECT_NEAR(momentum_x(gas), p0, 1e-9);
}

TEST(BirdTimeCounter, CollisionRateMatchesTheCalibration) {
  cmdp::ThreadPool pool(4);
  geom::Grid grid{8, 8, 0};
  const double ppc = 40.0;
  auto gas = equilibrium_gas(grid, ppc, 0.2, 2);
  baseline::BaselineConfig cfg;
  cfg.pc_inf = 0.4;
  cfg.n_inf = ppc;
  baseline::BirdTimeCounter bird(grid, cfg);
  const int steps = 30;
  for (int s = 0; s < steps; ++s) bird.collision_step(pool, gas);
  // At n = n_inf the per-particle collision frequency should be pc_inf per
  // step: expected collisions = N * pc_inf / 2 per step.
  const double expected =
      static_cast<double>(gas.size()) * cfg.pc_inf * steps / 2.0;
  EXPECT_NEAR(static_cast<double>(bird.collisions()), expected,
              0.1 * expected);
}

TEST(BirdTimeCounter, RelaxesRectangularToMaxwellian) {
  cmdp::ThreadPool pool(4);
  geom::Grid grid{6, 6, 0};
  auto gas = equilibrium_gas(grid, 60.0, 0.2, 3);
  cmdsmc::rng::SplitMix64 g(4);
  for (std::size_t i = 0; i < gas.size(); ++i) {
    gas.ux[i] = cmdsmc::rng::sample_rectangular(g, 0.2);
    gas.uy[i] = cmdsmc::rng::sample_rectangular(g, 0.2);
    gas.uz[i] = cmdsmc::rng::sample_rectangular(g, 0.2);
  }
  baseline::BaselineConfig cfg;
  cfg.pc_inf = 1.0;
  cfg.n_inf = 60.0;
  baseline::BirdTimeCounter bird(grid, cfg);
  EXPECT_NEAR(ux_kurtosis(gas), 1.8, 0.1);
  for (int s = 0; s < 25; ++s) bird.collision_step(pool, gas);
  EXPECT_NEAR(ux_kurtosis(gas), 3.0, 0.2);
}

TEST(Nanbu, ConservesOnlyInTheMean) {
  cmdp::ThreadPool pool(4);
  geom::Grid grid{8, 8, 0};
  auto gas = equilibrium_gas(grid, 40.0, 0.2, 5);
  baseline::BaselineConfig cfg;
  cfg.pc_inf = 0.5;
  cfg.n_inf = 40.0;
  baseline::NanbuScheme nanbu(grid, cfg);
  const double e0 = total_energy(gas);
  for (int s = 0; s < 20; ++s) nanbu.collision_step(pool, gas);
  EXPECT_GT(nanbu.collisions(), 0u);
  const double rel_drift = std::abs(total_energy(gas) / e0 - 1.0);
  // Not exactly conservative (unlike Bird/Baganoff)...
  EXPECT_GT(rel_drift, 1e-9);
  // ...but statistically stationary: drift stays within a few percent.
  EXPECT_LT(rel_drift, 0.05);
}

TEST(Nanbu, PreservesEquilibriumTemperature) {
  cmdp::ThreadPool pool(4);
  geom::Grid grid{8, 8, 0};
  auto gas = equilibrium_gas(grid, 40.0, 0.2, 6);
  baseline::BaselineConfig cfg;
  cfg.pc_inf = 0.5;
  cfg.n_inf = 40.0;
  baseline::NanbuScheme nanbu(grid, cfg);
  for (int s = 0; s < 40; ++s) nanbu.collision_step(pool, gas);
  double m2 = 0.0;
  for (std::size_t i = 0; i < gas.size(); ++i) m2 += gas.ux[i] * gas.ux[i];
  m2 /= static_cast<double>(gas.size());
  EXPECT_NEAR(m2, 0.04, 0.004);  // sigma^2 = 0.2^2
}

TEST(Nanbu, RelaxesRectangularToMaxwellian) {
  cmdp::ThreadPool pool(4);
  geom::Grid grid{6, 6, 0};
  auto gas = equilibrium_gas(grid, 60.0, 0.2, 7);
  cmdsmc::rng::SplitMix64 g(8);
  for (std::size_t i = 0; i < gas.size(); ++i) {
    gas.ux[i] = cmdsmc::rng::sample_rectangular(g, 0.2);
    gas.uy[i] = cmdsmc::rng::sample_rectangular(g, 0.2);
    gas.uz[i] = cmdsmc::rng::sample_rectangular(g, 0.2);
  }
  baseline::BaselineConfig cfg;
  cfg.pc_inf = 1.0;
  cfg.n_inf = 60.0;
  baseline::NanbuScheme nanbu(grid, cfg);
  for (int s = 0; s < 40; ++s) nanbu.collision_step(pool, gas);
  EXPECT_NEAR(ux_kurtosis(gas), 3.0, 0.25);
}

TEST(Baselines, EmptyAndSingletonCellsAreHandled) {
  cmdp::ThreadPool pool(2);
  geom::Grid grid{4, 4, 0};
  core::ParticleStore<double> gas;
  // One particle alone in one cell: nothing may collide, nothing may crash.
  gas.push_back(0.5, 0.5, 0, 0.1, 0, 0, 0, 0, cmdsmc::rng::identity_perm());
  gas.cell.back() = grid.index(0, 0);
  baseline::BaselineConfig cfg;
  baseline::BirdTimeCounter bird(grid, cfg);
  baseline::NanbuScheme nanbu(grid, cfg);
  bird.collision_step(pool, gas);
  nanbu.collision_step(pool, gas);
  EXPECT_EQ(bird.collisions(), 0u);
  EXPECT_EQ(nanbu.collisions(), 0u);
  EXPECT_DOUBLE_EQ(gas.ux[0], 0.1);
}
