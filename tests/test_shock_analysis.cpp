// Shock-metric extraction validated on synthetic fields with known
// analytic structure.
#include "io/shock_analysis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace io = cmdsmc::io;
namespace core = cmdsmc::core;
namespace geom = cmdsmc::geom;

namespace {

constexpr double kRad = std::numbers::pi / 180.0;

core::FieldStats blank_field(int nx, int ny) {
  core::FieldStats f;
  f.grid = {nx, ny, 0};
  f.samples = 1;
  const auto n = static_cast<std::size_t>(nx * ny);
  f.density.assign(n, 1.0);
  f.ux.assign(n, 0.0);
  f.uy.assign(n, 0.0);
  f.t_trans.assign(n, 1.0);
  f.t_rot.assign(n, 1.0);
  f.t_total.assign(n, 1.0);
  f.mean_count.assign(n, 16.0);
  return f;
}

// Synthetic oblique shock: density ramps from 1 to `ratio` across a tanh
// front along the line y = (x - x0) tan(beta), with the wedge solid zeroed.
core::FieldStats synthetic_shock(const geom::Wedge& w, double beta_deg,
                                 double ratio, double width) {
  auto f = blank_field(98, 64);
  const double tb = std::tan(beta_deg * kRad);
  for (int ix = 0; ix < 98; ++ix) {
    for (int iy = 0; iy < 64; ++iy) {
      const double x = ix + 0.5;
      const double y = iy + 0.5;
      const std::size_t c = f.grid.index(ix, iy);
      if (w.inside(x, y)) {
        f.density[c] = 0.0;
        continue;
      }
      const double yfront = (x - w.x0()) * tb;
      const double t = (yfront - y) / width;  // positive below the front
      f.density[c] = 1.0 + (ratio - 1.0) * 0.5 * (1.0 + std::tanh(t));
    }
  }
  return f;
}

}  // namespace

TEST(ShockFit, RecoversSyntheticAngleAndRatio) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  const auto f = synthetic_shock(w, 45.0, 3.7, 1.2);
  const auto fit = io::measure_oblique_shock(f, w);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.angle_deg, 45.0, 1.0);
  EXPECT_NEAR(fit.density_ratio, 3.7, 0.1);
}

TEST(ShockFit, RecoversDifferentAngles) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  for (double beta : {40.0, 50.0}) {
    const auto f = synthetic_shock(w, beta, 3.0, 1.0);
    const auto fit = io::measure_oblique_shock(f, w);
    ASSERT_TRUE(fit.valid) << beta;
    EXPECT_NEAR(fit.angle_deg, beta, 1.5) << beta;
  }
}

TEST(ShockFit, ThicknessTracksFrontWidth) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  const auto thin = io::measure_oblique_shock(synthetic_shock(w, 45, 3.7, 0.8),
                                              w);
  const auto wide = io::measure_oblique_shock(synthetic_shock(w, 45, 3.7, 2.0),
                                              w);
  ASSERT_TRUE(thin.valid);
  ASSERT_TRUE(wide.valid);
  EXPECT_GT(wide.thickness_vertical, 1.5 * thin.thickness_vertical);
  // Normal thickness = vertical * cos(beta).
  EXPECT_NEAR(thin.thickness_normal,
              thin.thickness_vertical * std::cos(45.0 * kRad), 0.15);
}

TEST(ShockFit, InvalidWhenNoShock) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  const auto f = blank_field(98, 64);  // uniform density everywhere
  const auto fit = io::measure_oblique_shock(f, w);
  EXPECT_FALSE(fit.valid);
}

TEST(ShockFit, InvalidOnTinyWindow) {
  geom::Wedge w(2.0, 4.0, 30.0 * kRad);
  auto f = blank_field(16, 16);
  const auto fit = io::measure_oblique_shock(f, w);
  EXPECT_FALSE(fit.valid);
}

TEST(Wake, DetectsRecompressionBase) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  auto f = blank_field(98, 64);
  // Wake band: density 0.06 near the back face rising to 0.4 downstream.
  for (int ix = 45; ix < 98; ++ix)
    for (int iy = 0; iy < 6; ++iy)
      f.density[f.grid.index(ix, iy)] =
          0.06 + 0.34 * (ix - 45) / 53.0;
  const auto wm = io::measure_wake(f, w);
  EXPECT_TRUE(wm.shock_present);
  EXPECT_NEAR(wm.base_density, 0.08, 0.03);
  EXPECT_GT(wm.recovery_x, 60.0);
  // A washed-out wake: an order of magnitude emptier.
  for (int ix = 45; ix < 98; ++ix)
    for (int iy = 0; iy < 6; ++iy)
      f.density[f.grid.index(ix, iy)] *= 0.2;
  const auto wm2 = io::measure_wake(f, w);
  EXPECT_FALSE(wm2.shock_present);
  EXPECT_LT(wm2.base_density, wm.base_density);
}

TEST(Stagnation, PeakDensityFindsMaximumNearSurface) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  auto f = blank_field(98, 64);
  const int ix = 38;
  const int iy = static_cast<int>(w.surface_y(ix + 0.5)) + 1;
  f.density[f.grid.index(ix, iy)] = 4.2;
  EXPECT_NEAR(io::stagnation_peak_density(f, w), 4.2, 1e-12);
}

TEST(ExpansionFan, TheoryFollowsMeasuredTurning) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  auto f = synthetic_shock(w, 45.0, 3.7, 1.0);
  // Synthetic centered fan: flow direction rotates with the geometric ray
  // angle around the corner (from the surface direction down to -40 deg).
  const double cx = w.apex_x();
  const double cy = w.height();
  for (int ix = 0; ix < f.grid.nx; ++ix)
    for (int iy = 0; iy < f.grid.ny; ++iy) {
      double phi = std::atan2(iy + 0.5 - cy, ix + 0.5 - cx);
      phi = std::clamp(phi, w.angle() - 40.0 * kRad, w.angle());
      f.ux[f.grid.index(ix, iy)] = 0.6 * std::cos(phi);
      f.uy[f.grid.index(ix, iy)] = 0.6 * std::sin(phi);
    }
  const auto samples = io::expansion_fan_check(f, w, 3.7, 1.85, 6.0, 40.0, 5.0);
  ASSERT_GE(samples.size(), 5u);
  // Turn angles increase along the arc; theory ratio decreases with turn.
  for (std::size_t k = 1; k < samples.size(); ++k) {
    EXPECT_GE(samples[k].turn_deg, samples[k - 1].turn_deg - 1e-9);
    EXPECT_LE(samples[k].theory_ratio, samples[k - 1].theory_ratio + 1e-9);
  }
  // Near-zero turn predicts the plateau density.
  EXPECT_NEAR(samples.front().theory_ratio, 1.0, 0.05);
}
