#include "rng/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rng/samplers.h"

namespace rng = cmdsmc::rng;

TEST(Hash4, DeterministicAndSensitiveToEveryArgument) {
  const auto base = rng::hash4(1, 2, 3, 4);
  EXPECT_EQ(base, rng::hash4(1, 2, 3, 4));
  EXPECT_NE(base, rng::hash4(2, 2, 3, 4));
  EXPECT_NE(base, rng::hash4(1, 3, 3, 4));
  EXPECT_NE(base, rng::hash4(1, 2, 4, 4));
  EXPECT_NE(base, rng::hash4(1, 2, 3, 5));
}

TEST(Hash4, StreamsLookIndependent) {
  // Bit agreement between two salted streams should be ~50%.
  std::int64_t agree = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    const auto a = rng::hash4(7, i, 0, 1);
    const auto b = rng::hash4(7, i, 0, 2);
    agree += 64 - std::popcount(a ^ b);
  }
  const double frac = static_cast<double>(agree) / (64.0 * kTrials);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(SplitMix64, UniformMomentsOfNextDouble) {
  rng::SplitMix64 g(11);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = g.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sumsq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sumsq / n - 0.25, 1.0 / 12.0, 0.005);
}

TEST(SplitMix64, NextBelowStaysInBoundsAndIsRoughlyUniform) {
  rng::SplitMix64 g(12);
  const std::uint32_t bound = 7;
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    const auto v = g.next_below(bound);
    ASSERT_LT(v, bound);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(SplitMix64, SignIsBalanced) {
  rng::SplitMix64 g(13);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += g.next_sign();
  EXPECT_NEAR(acc / n, 0.0, 0.02);
}

TEST(Samplers, GaussianMoments) {
  rng::SplitMix64 g(14);
  const int n = 300000;
  double m1 = 0, m2 = 0, m4 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng::sample_gaussian(g);
    m1 += x;
    m2 += x * x;
    m4 += x * x * x * x;
  }
  m1 /= n;
  m2 /= n;
  m4 /= n;
  EXPECT_NEAR(m1, 0.0, 0.01);
  EXPECT_NEAR(m2, 1.0, 0.02);
  EXPECT_NEAR(m4 / (m2 * m2), 3.0, 0.1);  // Gaussian kurtosis
}

TEST(Samplers, RectangularHasMatchedVarianceButFlatKurtosis) {
  rng::SplitMix64 g(15);
  const double sigma = 0.37;
  const int n = 300000;
  double m2 = 0, m4 = 0, lo = 1e9, hi = -1e9;
  for (int i = 0; i < n; ++i) {
    const double x = rng::sample_rectangular(g, sigma);
    m2 += x * x;
    m4 += x * x * x * x;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  m2 /= n;
  m4 /= n;
  EXPECT_NEAR(m2, sigma * sigma, 0.01 * sigma * sigma);
  EXPECT_NEAR(m4 / (m2 * m2), 1.8, 0.05);  // uniform kurtosis = 9/5
  EXPECT_GE(lo, -sigma * std::sqrt(3.0) - 1e-12);
  EXPECT_LE(hi, sigma * std::sqrt(3.0) + 1e-12);
}

TEST(Samplers, FluxNormalIsPositiveWithRayleighMoments) {
  rng::SplitMix64 g(16);
  const double sigma = 0.5;
  const int n = 200000;
  double m1 = 0, m2 = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng::sample_flux_normal(g, sigma);
    ASSERT_GT(v, 0.0);
    m1 += v;
    m2 += v * v;
  }
  m1 /= n;
  m2 /= n;
  // Rayleigh(sigma): mean = sigma sqrt(pi/2), second moment = 2 sigma^2.
  EXPECT_NEAR(m1, sigma * std::sqrt(std::numbers::pi / 2.0), 0.01);
  EXPECT_NEAR(m2, 2.0 * sigma * sigma, 0.02);
}

TEST(Samplers, MeanSpeedFormula) {
  EXPECT_NEAR(rng::mean_speed(1.0), std::sqrt(8.0 / std::numbers::pi), 1e-12);
}

TEST(UnitDouble, MapsBitsToHalfOpenUnitInterval) {
  EXPECT_EQ(rng::u64_to_unit_double(0), 0.0);
  EXPECT_LT(rng::u64_to_unit_double(~0ull), 1.0);
  EXPECT_GT(rng::u64_to_unit_double(~0ull), 0.999999);
}
