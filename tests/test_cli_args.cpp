// Regression tests for the strict key=value parser: the legacy per-binary
// parsers silently ignored unknown flags and pushed integers through atof
// truncation; cli::args must reject both.
#include "cli/args.h"

#include <gtest/gtest.h>

namespace cli = cmdsmc::cli;

TEST(CliArgs, SplitsKeyValueTokens) {
  const auto kvs = cli::parse_key_values({"mach=4.5", "body.kind=cylinder",
                                          "out=a=b"});
  ASSERT_EQ(kvs.size(), 3u);
  EXPECT_EQ(kvs[0].key, "mach");
  EXPECT_EQ(kvs[0].value, "4.5");
  EXPECT_EQ(kvs[1].key, "body.kind");
  EXPECT_EQ(kvs[1].value, "cylinder");
  // Only the first '=' splits; values may contain '='.
  EXPECT_EQ(kvs[2].key, "out");
  EXPECT_EQ(kvs[2].value, "a=b");
}

TEST(CliArgs, RejectsMalformedTokens) {
  EXPECT_THROW(cli::parse_key_values({"mach"}), cli::ArgError);
  EXPECT_THROW(cli::parse_key_values({"--mach", "4"}), cli::ArgError);
  EXPECT_THROW(cli::parse_key_values({"=4"}), cli::ArgError);
}

TEST(CliArgs, ParsesIntegersStrictly) {
  EXPECT_EQ(cli::parse_int("n", "42"), 42);
  EXPECT_EQ(cli::parse_int("n", "-7"), -7);
  // The atof-truncation footgun: a fractional value is an error, not 36.
  EXPECT_THROW(cli::parse_int("facets", "36.9"), cli::ArgError);
  EXPECT_THROW(cli::parse_int("n", "12x"), cli::ArgError);
  EXPECT_THROW(cli::parse_int("n", ""), cli::ArgError);
  EXPECT_THROW(cli::parse_int("n", "abc"), cli::ArgError);
  EXPECT_THROW(cli::parse_int("n", "99999999999999999999"), cli::ArgError);
}

TEST(CliArgs, ParsesUnsignedWithHex) {
  EXPECT_EQ(cli::parse_uint64("seed", "0x5eed"), 0x5eedULL);
  EXPECT_EQ(cli::parse_uint64("seed", "12345"), 12345ULL);
  EXPECT_THROW(cli::parse_uint64("seed", "-1"), cli::ArgError);
  EXPECT_THROW(cli::parse_uint64("seed", "0xzz"), cli::ArgError);
}

TEST(CliArgs, ParsesDoublesStrictly) {
  EXPECT_DOUBLE_EQ(cli::parse_double("m", "4.5"), 4.5);
  EXPECT_DOUBLE_EQ(cli::parse_double("m", "-1e-3"), -1e-3);
  EXPECT_THROW(cli::parse_double("m", "4.5x"), cli::ArgError);
  EXPECT_THROW(cli::parse_double("m", ""), cli::ArgError);
}

TEST(CliArgs, ParsesBooleans) {
  EXPECT_TRUE(cli::parse_bool("b", "1"));
  EXPECT_TRUE(cli::parse_bool("b", "true"));
  EXPECT_TRUE(cli::parse_bool("b", "ON"));
  EXPECT_TRUE(cli::parse_bool("b", "yes"));
  EXPECT_FALSE(cli::parse_bool("b", "0"));
  EXPECT_FALSE(cli::parse_bool("b", "False"));
  EXPECT_FALSE(cli::parse_bool("b", "off"));
  EXPECT_THROW(cli::parse_bool("b", "2"), cli::ArgError);
  EXPECT_THROW(cli::parse_bool("b", "maybe"), cli::ArgError);
}

TEST(CliArgs, UnknownKeyErrorListsValidKeys) {
  try {
    cli::throw_unknown_key("mcah", {"mach", "sigma"});
    FAIL() << "expected ArgError";
  } catch (const cli::ArgError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mcah"), std::string::npos);
    EXPECT_NE(msg.find("mach"), std::string::npos);
    EXPECT_NE(msg.find("sigma"), std::string::npos);
  }
}

TEST(CliArgs, ErrorJsonIsOneEscapedLine) {
  const std::string json =
      cli::error_json("usage", "unknown key 'mcah'\nvalid keys: mach");
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"usage\""), std::string::npos);
  EXPECT_NE(json.find("unknown key"), std::string::npos);
  // Quotes and backslashes are escaped, newlines mapped to spaces.
  const std::string tricky = cli::error_json("runtime", "a \"b\" c:\\d");
  EXPECT_NE(tricky.find("a \\\"b\\\" c:\\\\d"), std::string::npos);
}

TEST(CliArgs, ErrorClassificationDrivesExitCodes) {
  const cli::ArgError usage("bad flag");
  const std::invalid_argument config("SimConfig: bad grid dimensions");
  const std::runtime_error runtime("cannot open file");

  EXPECT_STREQ(cli::error_type(usage), "usage");
  EXPECT_STREQ(cli::error_type(config), "config");
  EXPECT_STREQ(cli::error_type(runtime), "runtime");

  // 2 = the caller's fault (usage/config), 3 = the environment's.
  EXPECT_EQ(cli::error_exit_code(usage), 2);
  EXPECT_EQ(cli::error_exit_code(config), 2);
  EXPECT_EQ(cli::error_exit_code(runtime), 3);
}
