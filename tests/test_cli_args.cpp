// Regression tests for the strict key=value parser: the legacy per-binary
// parsers silently ignored unknown flags and pushed integers through atof
// truncation; cli::args must reject both.
#include "cli/args.h"

#include <gtest/gtest.h>

namespace cli = cmdsmc::cli;

TEST(CliArgs, SplitsKeyValueTokens) {
  const auto kvs = cli::parse_key_values({"mach=4.5", "body.kind=cylinder",
                                          "out=a=b"});
  ASSERT_EQ(kvs.size(), 3u);
  EXPECT_EQ(kvs[0].key, "mach");
  EXPECT_EQ(kvs[0].value, "4.5");
  EXPECT_EQ(kvs[1].key, "body.kind");
  EXPECT_EQ(kvs[1].value, "cylinder");
  // Only the first '=' splits; values may contain '='.
  EXPECT_EQ(kvs[2].key, "out");
  EXPECT_EQ(kvs[2].value, "a=b");
}

TEST(CliArgs, RejectsMalformedTokens) {
  EXPECT_THROW(cli::parse_key_values({"mach"}), cli::ArgError);
  EXPECT_THROW(cli::parse_key_values({"--mach", "4"}), cli::ArgError);
  EXPECT_THROW(cli::parse_key_values({"=4"}), cli::ArgError);
}

TEST(CliArgs, ParsesIntegersStrictly) {
  EXPECT_EQ(cli::parse_int("n", "42"), 42);
  EXPECT_EQ(cli::parse_int("n", "-7"), -7);
  // The atof-truncation footgun: a fractional value is an error, not 36.
  EXPECT_THROW(cli::parse_int("facets", "36.9"), cli::ArgError);
  EXPECT_THROW(cli::parse_int("n", "12x"), cli::ArgError);
  EXPECT_THROW(cli::parse_int("n", ""), cli::ArgError);
  EXPECT_THROW(cli::parse_int("n", "abc"), cli::ArgError);
  EXPECT_THROW(cli::parse_int("n", "99999999999999999999"), cli::ArgError);
}

TEST(CliArgs, ParsesUnsignedWithHex) {
  EXPECT_EQ(cli::parse_uint64("seed", "0x5eed"), 0x5eedULL);
  EXPECT_EQ(cli::parse_uint64("seed", "12345"), 12345ULL);
  EXPECT_THROW(cli::parse_uint64("seed", "-1"), cli::ArgError);
  EXPECT_THROW(cli::parse_uint64("seed", "0xzz"), cli::ArgError);
}

TEST(CliArgs, ParsesDoublesStrictly) {
  EXPECT_DOUBLE_EQ(cli::parse_double("m", "4.5"), 4.5);
  EXPECT_DOUBLE_EQ(cli::parse_double("m", "-1e-3"), -1e-3);
  EXPECT_THROW(cli::parse_double("m", "4.5x"), cli::ArgError);
  EXPECT_THROW(cli::parse_double("m", ""), cli::ArgError);
}

TEST(CliArgs, ParsesBooleans) {
  EXPECT_TRUE(cli::parse_bool("b", "1"));
  EXPECT_TRUE(cli::parse_bool("b", "true"));
  EXPECT_TRUE(cli::parse_bool("b", "ON"));
  EXPECT_TRUE(cli::parse_bool("b", "yes"));
  EXPECT_FALSE(cli::parse_bool("b", "0"));
  EXPECT_FALSE(cli::parse_bool("b", "False"));
  EXPECT_FALSE(cli::parse_bool("b", "off"));
  EXPECT_THROW(cli::parse_bool("b", "2"), cli::ArgError);
  EXPECT_THROW(cli::parse_bool("b", "maybe"), cli::ArgError);
}

TEST(CliArgs, UnknownKeyErrorListsValidKeys) {
  try {
    cli::throw_unknown_key("mcah", {"mach", "sigma"});
    FAIL() << "expected ArgError";
  } catch (const cli::ArgError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mcah"), std::string::npos);
    EXPECT_NE(msg.find("mach"), std::string::npos);
    EXPECT_NE(msg.find("sigma"), std::string::npos);
  }
}
