// Conservation and relaxation properties of the full engine in a closed box
// (all walls specular, no sink/source): the settings where the collision
// algorithm's invariants are observable end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/simulation.h"
#include "rng/samplers.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;

namespace {

core::SimConfig box_config() {
  core::SimConfig cfg;
  cfg.nx = 24;
  cfg.ny = 24;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;  // negligible drift
  cfg.sigma = 0.2;
  cfg.lambda_inf = 0.0;  // collide every candidate pair: fastest relaxation
  cfg.particles_per_cell = 30.0;
  cfg.reservoir_fraction = 0.0;
  cfg.seed = 99;
  return cfg;
}

// Kurtosis of the x velocity component over the flow particles.
template <class Real>
double ux_kurtosis(core::Simulation<Real>& sim) {
  using N = cmdsmc::physics::Num<Real>;
  const auto& s = sim.particles();
  double m1 = 0, n = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    m1 += N::to_double(s.ux[i]);
    n += 1;
  }
  m1 /= n;
  double m2 = 0, m4 = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double d = N::to_double(s.ux[i]) - m1;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m4 /= n;
  return m4 / (m2 * m2);
}

}  // namespace

TEST(ClosedBox, DoubleEngineConservesEnergyTightly) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(box_config(), &pool);
  const double e0 = sim.total_energy();
  sim.run(100);
  EXPECT_EQ(sim.counters().removed, 0u);
  EXPECT_EQ(sim.counters().injected, 0u);
  EXPECT_NEAR(sim.total_energy() / e0, 1.0, 1e-10);
}

TEST(ClosedBox, CountIsConserved) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(box_config(), &pool);
  const auto n0 = sim.total_count();
  sim.run(100);
  EXPECT_EQ(sim.total_count(), n0);
  EXPECT_EQ(sim.flow_count(), n0);
}

TEST(ClosedBox, FixedEngineEnergyDriftIsTiny) {
  cmdp::ThreadPool pool(4);
  core::SimulationF sim(box_config(), &pool);
  const double e0 = sim.total_energy();
  sim.run(200);
  const double e1 = sim.total_energy();
  // Stochastic rounding: zero-mean ulp noise accumulates as a random walk;
  // after 200 steps the relative drift must stay far below a percent.
  EXPECT_NEAR(e1 / e0, 1.0, 2e-3);
}

TEST(ClosedBox, TruncatingRoundingLosesEnergySystematically) {
  cmdp::ThreadPool pool(4);
  auto cfg = box_config();
  // Cold, slow gas: the paper's stagnation-region regime where velocity
  // magnitudes are small and the half-ulp truncation bite is relatively big.
  cfg.sigma = 0.05;
  cfg.rounding = core::Rounding::kTruncate;
  core::SimulationF trunc(cfg, &pool);
  cfg.rounding = core::Rounding::kStochastic;
  core::SimulationF stoch(cfg, &pool);
  const double e0t = trunc.total_energy();
  const double e0s = stoch.total_energy();
  trunc.run(200);
  stoch.run(200);
  const double drift_trunc = trunc.total_energy() / e0t - 1.0;
  const double drift_stoch = stoch.total_energy() / e0s - 1.0;
  // The paper's observation: consistent truncation leads to a systematic
  // energy loss; stochastic rounding fixes it.
  EXPECT_LT(drift_trunc, -2e-5);
  EXPECT_LT(std::abs(drift_stoch), std::abs(drift_trunc) / 3.0);
}

TEST(ClosedBox, RectangularVelocitiesRelaxToMaxwellian) {
  cmdp::ThreadPool pool(4);
  auto cfg = box_config();
  core::SimulationD sim(cfg, &pool);
  // Overwrite the initial Gaussian with a rectangular distribution of the
  // same variance, then let collisions thermalize it.
  auto& s = sim.particles();
  cmdsmc::rng::SplitMix64 g(3);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s.ux[i] = cmdsmc::rng::sample_rectangular(g, cfg.sigma);
    s.uy[i] = cmdsmc::rng::sample_rectangular(g, cfg.sigma);
    s.uz[i] = cmdsmc::rng::sample_rectangular(g, cfg.sigma);
    s.r0[i] = cmdsmc::rng::sample_rectangular(g, cfg.sigma);
    s.r1[i] = cmdsmc::rng::sample_rectangular(g, cfg.sigma);
  }
  EXPECT_NEAR(ux_kurtosis(sim), 1.8, 0.1);  // uniform kurtosis
  sim.run(30);
  // A few collisions per particle suffice (paper: "after a few time steps
  // collisions with other reservoir particles relaxes these to the correct
  // Gaussian distributions").
  EXPECT_NEAR(ux_kurtosis(sim), 3.0, 0.15);  // Gaussian kurtosis
}

TEST(ClosedBox, RotationalAndTranslationalTemperaturesEquilibrate) {
  cmdp::ThreadPool pool(4);
  auto cfg = box_config();
  core::SimulationD sim(cfg, &pool);
  // Kill all rotational energy initially.
  auto& s = sim.particles();
  for (std::size_t i = 0; i < s.size(); ++i) {
    s.r0[i] = 0.0;
    s.r1[i] = 0.0;
  }
  const double e0 = sim.total_energy();
  sim.run(40);
  EXPECT_NEAR(sim.total_energy() / e0, 1.0, 1e-10);
  // Measure equipartition directly.
  double et = 0.0, er = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    et += s.ux[i] * s.ux[i] + s.uy[i] * s.uy[i] + s.uz[i] * s.uz[i];
    er += s.r0[i] * s.r0[i] + s.r1[i] * s.r1[i];
  }
  EXPECT_NEAR((er / 2.0) / (et / 3.0), 1.0, 0.05);
}

TEST(ClosedBox, MomentumXIsStatisticallyStationaryUnderCollisions) {
  // Collisions conserve momentum exactly; only wall reflections exchange
  // momentum.  With zero drift the net x momentum stays near its (small)
  // initial statistical value.
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(box_config(), &pool);
  const double scale =
      std::sqrt(static_cast<double>(sim.total_count())) * 0.2;
  sim.run(50);
  const auto p = sim.total_momentum();
  EXPECT_LT(std::abs(p[0]), 6.0 * scale);
  EXPECT_LT(std::abs(p[1]), 6.0 * scale);
}

TEST(ClosedBox, RarefiedCollisionRateMatchesMeanFreePath) {
  // In equilibrium, each particle should suffer ~ <|c|>/lambda collisions
  // per step; verify the selection-rule calibration end to end.
  cmdp::ThreadPool pool(4);
  auto cfg = box_config();
  cfg.lambda_inf = 2.0;  // long mean free path => P well below 1
  core::SimulationD sim(cfg, &pool);
  const int steps = 60;
  sim.run(steps);
  const double per_particle_per_step =
      2.0 * static_cast<double>(sim.counters().collisions) /
      (static_cast<double>(sim.flow_count()) * steps);
  const double mean_speed =
      2.0 * cfg.sigma * std::sqrt(2.0 / std::numbers::pi);
  const double expected = mean_speed / cfg.lambda_inf;
  // Pairing leaves odd leftovers unpaired, so the measured rate runs a few
  // percent low; accept 15%.
  EXPECT_NEAR(per_particle_per_step, expected, 0.15 * expected);
}

TEST(ClosedBox, DisablingTranspositionsStillConserves) {
  cmdp::ThreadPool pool(2);
  auto cfg = box_config();
  cfg.transpositions_per_collision = 0;
  core::SimulationD sim(cfg, &pool);
  const double e0 = sim.total_energy();
  sim.run(30);
  EXPECT_NEAR(sim.total_energy() / e0, 1.0, 1e-10);
}

TEST(ClosedBox, DirtyRngModeRunsAndConserves) {
  cmdp::ThreadPool pool(4);
  auto cfg = box_config();
  cfg.rng_mode = core::RngMode::kDirty;
  core::SimulationF sim(cfg, &pool);
  const double e0 = sim.total_energy();
  sim.run(100);
  EXPECT_NEAR(sim.total_energy() / e0, 1.0, 5e-3);
}
