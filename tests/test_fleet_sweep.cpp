// Sweep grammar: expansion counts, range/step forms, cross-products,
// strict rejection of unknown/ill-formed sweep keys, determinism of the
// job order, and per-job seed derivation.
#include <gtest/gtest.h>

#include <set>

#include "fleet/sweep.h"

namespace fleet = cmdsmc::fleet;
namespace cli = cmdsmc::cli;

namespace {

fleet::SweepRequest wedge_request() {
  fleet::SweepRequest req;
  req.scenario = "wedge-mach4";
  req.fixed = {{"nx", "64"}, {"ny", "32"}, {"ppc", "2"}, {"steps", "5"}};
  return req;
}

TEST(SweepToken, Detection) {
  EXPECT_TRUE(fleet::is_sweep_token("sweep:mach=4,8"));
  EXPECT_FALSE(fleet::is_sweep_token("mach=4"));
  EXPECT_FALSE(fleet::is_sweep_token("swep:mach=4"));
}

TEST(SweepToken, ListForm) {
  const fleet::SweepAxis axis = fleet::parse_sweep_axis("sweep:mach=4,8,12");
  EXPECT_EQ(axis.key, "mach");
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_EQ(axis.values[0], "4");
  EXPECT_EQ(axis.values[1], "8");
  EXPECT_EQ(axis.values[2], "12");
}

TEST(SweepToken, RangeForm) {
  const fleet::SweepAxis axis = fleet::parse_sweep_axis("sweep:lambda=0..1/5");
  EXPECT_EQ(axis.key, "lambda");
  ASSERT_EQ(axis.values.size(), 5u);
  EXPECT_EQ(axis.values.front(), "0");
  EXPECT_EQ(axis.values[1], "0.25");
  EXPECT_EQ(axis.values.back(), "1");
}

TEST(SweepToken, RangeEndsInclusive) {
  const fleet::SweepAxis axis =
      fleet::parse_sweep_axis("sweep:mach=4..12/3");
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_EQ(axis.values[0], "4");
  EXPECT_EQ(axis.values[1], "8");
  EXPECT_EQ(axis.values[2], "12");
}

TEST(SweepToken, Malformed) {
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach"), cli::ArgError);
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:=4,8"), cli::ArgError);
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach="), cli::ArgError);
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach=4,,8"), cli::ArgError);
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach=4,8,"), cli::ArgError);
  // Range needs a point count, >= 2 of them, and numeric endpoints.
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach=4..12"), cli::ArgError);
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach=4..12/1"), cli::ArgError);
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach=a..12/3"), cli::ArgError);
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach=4..b/3"), cli::ArgError);
  EXPECT_THROW(fleet::parse_sweep_axis("sweep:mach=4..12/x"), cli::ArgError);
}

TEST(SweepExpand, CrossProductCountAndOrder) {
  fleet::SweepRequest req = wedge_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,4,5"));
  req.axes.push_back(fleet::parse_sweep_axis("sweep:lambda=0.1,0.3"));
  EXPECT_EQ(req.job_count(), 6u);

  const std::vector<fleet::FleetJob> jobs = fleet::expand_sweep(req);
  ASSERT_EQ(jobs.size(), 6u);
  // Row-major: the LAST axis advances fastest.
  EXPECT_EQ(jobs[0].params[0].value, "3");
  EXPECT_EQ(jobs[0].params[1].value, "0.1");
  EXPECT_EQ(jobs[1].params[0].value, "3");
  EXPECT_EQ(jobs[1].params[1].value, "0.3");
  EXPECT_EQ(jobs[2].params[0].value, "4");
  EXPECT_EQ(jobs[5].params[0].value, "5");
  EXPECT_EQ(jobs[5].params[1].value, "0.3");
  // Every job carries the fixed overrides followed by its point.
  ASSERT_EQ(jobs[0].overrides.size(), req.fixed.size() + 2);
  EXPECT_EQ(jobs[0].overrides[0].key, "nx");
  EXPECT_EQ(jobs[0].overrides.back().key, "lambda");
}

TEST(SweepExpand, DeterministicAcrossCalls) {
  fleet::SweepRequest req = wedge_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,4"));
  req.axes.push_back(fleet::parse_sweep_axis("sweep:lambda=0..0.5/3"));
  const auto a = fleet::expand_sweep(req);
  const auto b = fleet::expand_sweep(req);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].hash, b[i].hash);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(SweepExpand, NoAxesIsOneJob) {
  const auto jobs = fleet::expand_sweep(wedge_request());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].params.empty());
}

TEST(SweepExpand, UnknownKeyRejectedListingValid) {
  fleet::SweepRequest req = wedge_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mcah=3,4"));
  try {
    fleet::expand_sweep(req);
    FAIL() << "unknown sweep key was accepted";
  } catch (const cli::ArgError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mcah"), std::string::npos);
    EXPECT_NE(what.find("valid keys"), std::string::npos);
    EXPECT_NE(what.find("mach"), std::string::npos);
  }
}

TEST(SweepExpand, MalformedValueRejected) {
  fleet::SweepRequest req = wedge_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=4,abc"));
  EXPECT_THROW(fleet::expand_sweep(req), cli::ArgError);
}

TEST(SweepExpand, UnknownScenarioRejected) {
  fleet::SweepRequest req;
  req.scenario = "no-such-scenario";
  EXPECT_THROW(fleet::expand_sweep(req), cli::ArgError);
}

TEST(SweepExpand, DuplicateAxisRejected) {
  fleet::SweepRequest req = wedge_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,4"));
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=5,6"));
  EXPECT_THROW(fleet::expand_sweep(req), cli::ArgError);
}

TEST(SweepSeeds, DistinctEvenWhenPinned) {
  // The satellite bugfix: a pinned seed= must still give every sweep point
  // its own RNG stream.
  fleet::SweepRequest req = wedge_request();
  req.fixed.push_back({"seed", "12345"});
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,4,5,6"));
  const auto jobs = fleet::expand_sweep(req);
  std::set<std::uint64_t> seeds;
  for (const auto& job : jobs) {
    seeds.insert(job.seed);
    EXPECT_NE(job.seed, 12345u);  // never the raw base
  }
  EXPECT_EQ(seeds.size(), jobs.size());
}

TEST(SweepSeeds, DerivationIsSplitmixStyleHash) {
  const std::uint64_t base = 0x5eed5eedULL;
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i)
    seen.insert(fleet::derive_job_seed(base, i));
  EXPECT_EQ(seen.size(), 1000u);
  // Different base => different streams for the same index.
  EXPECT_NE(fleet::derive_job_seed(1, 0), fleet::derive_job_seed(2, 0));
  // Deterministic.
  EXPECT_EQ(fleet::derive_job_seed(base, 7), fleet::derive_job_seed(base, 7));
}

TEST(SweepSeeds, ExplicitSeedAxisUsedVerbatim) {
  fleet::SweepRequest req = wedge_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:seed=41,42"));
  const auto jobs = fleet::expand_sweep(req);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].seed, 41u);
  EXPECT_EQ(jobs[1].seed, 42u);
}

TEST(SweepHash, TracksContent) {
  fleet::SweepRequest req = wedge_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,4"));
  const auto jobs = fleet::expand_sweep(req);
  EXPECT_NE(jobs[0].hash, jobs[1].hash);

  fleet::SweepRequest other = req;
  other.fixed.push_back({"sigma", "0.12"});
  const auto changed = fleet::expand_sweep(other);
  EXPECT_NE(jobs[0].hash, changed[0].hash);

  // Hash is a pure function of (scenario, overrides, seed).
  EXPECT_EQ(jobs[0].hash,
            fleet::job_content_hash(jobs[0].scenario, jobs[0].overrides,
                                    jobs[0].seed));
}

TEST(SweepHash, JobNamesAreFilesystemSafe) {
  fleet::SweepRequest req = wedge_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:body.twall=0.5,1"));
  req.scenario = "cylinder-mach10";
  const auto jobs = fleet::expand_sweep(req);
  for (const auto& job : jobs)
    for (char c : job.name)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-')
          << "bad char '" << c << "' in " << job.name;
}

}  // namespace
