#include "geom/boundary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rng/rng.h"

namespace geom = cmdsmc::geom;

namespace {

constexpr double kRad = std::numbers::pi / 180.0;

geom::BoundaryConfig tunnel() {
  geom::BoundaryConfig bc;
  bc.x_max = 98.0;
  bc.y_max = 64.0;
  return bc;
}

double speed2(const geom::ParticleState& p) {
  return p.ux * p.ux + p.uy * p.uy + p.uz * p.uz;
}

double energy(const geom::ParticleState& p) {
  return 0.5 * (speed2(p) + p.r0 * p.r0 + p.r1 * p.r1);
}

}  // namespace

TEST(Boundary, InteriorParticleUntouched) {
  auto bc = tunnel();
  geom::ParticleState p{50, 30, 0, 0.5, -0.2, 0.1, 0.3, -0.4};
  const auto before = p;
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_EQ(p.x, before.x);
  EXPECT_EQ(p.uy, before.uy);
}

TEST(Boundary, FloorReflectsSpecularly) {
  auto bc = tunnel();
  geom::ParticleState p{50, -0.3, 0, 0.5, -0.6, 0, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_NEAR(p.y, 0.3, 1e-12);
  EXPECT_NEAR(p.uy, 0.6, 1e-12);
  EXPECT_NEAR(p.ux, 0.5, 1e-12);  // tangential untouched
}

TEST(Boundary, CeilingReflectsSpecularly) {
  auto bc = tunnel();
  geom::ParticleState p{50, 64.4, 0, 0.5, 0.8, 0, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_NEAR(p.y, 63.6, 1e-12);
  EXPECT_NEAR(p.uy, -0.8, 1e-12);
}

TEST(Boundary, DownstreamSinkRemovesParticle) {
  auto bc = tunnel();
  geom::ParticleState p{98.5, 30, 0, 0.9, 0, 0, 0, 0};
  EXPECT_FALSE(geom::enforce_boundaries(p, bc, 0));
}

TEST(Boundary, ClosedBoxReflectsAtDownstreamPlane) {
  auto bc = tunnel();
  bc.closed = true;
  geom::ParticleState p{98.5, 30, 0, 0.9, 0, 0, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_NEAR(p.x, 97.5, 1e-12);
  EXPECT_NEAR(p.ux, -0.9, 1e-12);
}

TEST(Boundary, UpstreamFixedWallReflects) {
  auto bc = tunnel();
  geom::ParticleState p{-0.2, 30, 0, -0.5, 0, 0, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_NEAR(p.x, 0.2, 1e-12);
  EXPECT_NEAR(p.ux, 0.5, 1e-12);
}

TEST(Boundary, MovingPlungerReflectsInWallFrame) {
  auto bc = tunnel();
  bc.plunger_active = true;
  bc.plunger_x = 2.0;
  bc.plunger_speed = 0.8;
  // Particle slower than the plunger gets run over: u' = 2 U - u.
  geom::ParticleState p{1.5, 30, 0, 0.1, 0, 0, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_NEAR(p.x, 2.5, 1e-12);
  EXPECT_NEAR(p.ux, 1.5, 1e-12);
  // A particle already outrunning the plunger keeps its velocity.
  geom::ParticleState q{1.9, 30, 0, 2.0, 0, 0, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(q, bc, 0));
  EXPECT_NEAR(q.ux, 2.0, 1e-12);
  EXPECT_NEAR(q.x, 2.1, 1e-12);
}

TEST(Boundary, WedgeSpecularPreservesSpeedAndEjects) {
  auto bc = tunnel();
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  bc.wedge = &w;
  cmdsmc::rng::SplitMix64 g(41);
  for (int trial = 0; trial < 500; ++trial) {
    // Random point slightly inside the wedge near the ramp.
    const double x = 21.0 + g.next_double() * 23.0;
    const double y = w.surface_y(x) - 0.05 - 0.1 * g.next_double();
    if (y <= 0.0) continue;
    geom::ParticleState p{x, y, 0, 0.5, -0.5, 0.1, 0.2, 0.3};
    const double s2 = speed2(p);
    ASSERT_TRUE(geom::enforce_boundaries(p, bc, 0));
    ASSERT_FALSE(w.inside(p.x, p.y)) << p.x << "," << p.y;
    ASSERT_NEAR(speed2(p), s2, 1e-9);
  }
}

TEST(Boundary, WedgeBackFaceReflectsHorizontally) {
  auto bc = tunnel();
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  bc.wedge = &w;
  geom::ParticleState p{44.9, 2.0, 0, -0.4, 0.0, 0, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_NEAR(p.x, 45.1, 1e-9);
  EXPECT_NEAR(p.ux, 0.4, 1e-12);
}

TEST(Boundary, LeadingEdgeCornerIsHandled) {
  auto bc = tunnel();
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  bc.wedge = &w;
  // A particle that dives below the floor right at the wedge leading edge:
  // needs the floor reflection then possibly a wedge reflection.
  geom::ParticleState p{20.2, -0.05, 0, 0.7, -0.3, 0, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_GE(p.y, 0.0);
  EXPECT_FALSE(w.inside(p.x, p.y));
}

TEST(Boundary, DiffuseIsothermalReemitsOutward) {
  auto bc = tunnel();
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  bc.wedge = &w;
  bc.wall = geom::WallModel::kDiffuseIsothermal;
  bc.wall_sigma = 0.25;
  const double nx = -std::sin(30.0 * kRad);
  const double ny = std::cos(30.0 * kRad);
  cmdsmc::rng::SplitMix64 g(42);
  for (int trial = 0; trial < 300; ++trial) {
    const double x = 25.0 + g.next_double() * 15.0;
    const double y = w.surface_y(x) - 0.05;
    geom::ParticleState p{x, y, 0, 0.8, -0.4, 0, 0.1, 0.1};
    ASSERT_TRUE(geom::enforce_boundaries(p, bc, g.next_u64()));
    ASSERT_FALSE(w.inside(p.x, p.y));
    // Outgoing: velocity has a positive component along the outward normal.
    EXPECT_GT(p.ux * nx + p.uy * ny, 0.0);
  }
}

TEST(Boundary, DiffuseAdiabaticPreservesParticleEnergy) {
  auto bc = tunnel();
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  bc.wedge = &w;
  bc.wall = geom::WallModel::kDiffuseAdiabatic;
  bc.wall_sigma = 0.25;
  cmdsmc::rng::SplitMix64 g(43);
  for (int trial = 0; trial < 300; ++trial) {
    const double x = 25.0 + g.next_double() * 15.0;
    const double y = w.surface_y(x) - 0.05;
    geom::ParticleState p{x, y, 0, 0.8, -0.4, 0.2, 0.1, -0.3};
    const double e = energy(p);
    ASSERT_TRUE(geom::enforce_boundaries(p, bc, g.next_u64()));
    ASSERT_NEAR(energy(p), e, 1e-9);
  }
}

TEST(Boundary, ZWallsReflectIn3D) {
  auto bc = tunnel();
  bc.z_max = 16.0;
  geom::ParticleState p{50, 30, -0.4, 0, 0, -0.3, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(p, bc, 0));
  EXPECT_NEAR(p.z, 0.4, 1e-12);
  EXPECT_NEAR(p.uz, 0.3, 1e-12);
  geom::ParticleState q{50, 30, 16.5, 0, 0, 0.7, 0, 0};
  EXPECT_TRUE(geom::enforce_boundaries(q, bc, 0));
  EXPECT_NEAR(q.z, 15.5, 1e-12);
  EXPECT_NEAR(q.uz, -0.7, 1e-12);
}

TEST(Plunger, AdvanceAndRetract) {
  geom::Plunger pl;
  pl.speed = 0.8;
  pl.trigger = 3.0;
  double width = 0.0;
  int steps = 0;
  while (width == 0.0 && steps < 10) {
    width = pl.advance();
    ++steps;
  }
  EXPECT_EQ(steps, 4);  // 0.8 * 4 = 3.2 >= 3.0
  // Withdrawal happens at the trigger crossing: the void is exactly
  // `trigger` wide and the 0.2 overshoot carries over into the next cycle
  // (the old behavior returned 3.2, conflating trigger and width).
  EXPECT_NEAR(width, 3.0, 1e-12);
  EXPECT_NEAR(pl.x, 0.2, 1e-12);
}

TEST(Plunger, SpeedAboveTriggerStaysBoundedAndConservesFlux) {
  // With speed > trigger the plunger crosses the trigger every step (even
  // multiple times); x must stay bounded by trigger instead of drifting
  // downstream, and the swept volume must still all be reported.
  geom::Plunger pl;
  pl.speed = 1.8;
  pl.trigger = 0.5;
  double injected = 0.0;
  for (int s = 0; s < 200; ++s) {
    injected += pl.advance();
    ASSERT_LT(pl.x, pl.trigger);
    ASSERT_GE(pl.x, 0.0);
  }
  EXPECT_NEAR(injected + pl.x, pl.speed * 200, 1e-9);
}

TEST(Plunger, SweptVolumeMatchesInjectedVolumeOverManyCycles) {
  geom::Plunger pl;
  pl.speed = 0.7;
  pl.trigger = 3.0;
  double injected = 0.0;
  const int nsteps = 1000;
  for (int s = 0; s < nsteps; ++s) injected += pl.advance();
  // Flux conservation: total refilled void == total distance travelled.
  EXPECT_NEAR(injected + pl.x, pl.speed * nsteps, 1e-9);
}

// --- Interior-mask precomputation (the move-phase fast path) ---

namespace {

// Brute-force safety check: from every corner of a masked cell, move by every
// combination of +/-d per axis and verify enforce_boundaries is a no-op.
void expect_mask_is_safe(const geom::Grid& grid, const geom::BoundaryConfig& bc,
                         const std::vector<std::uint8_t>& mask, double d) {
  int checked = 0;
  for (int iy = 0; iy < grid.ny; ++iy) {
    for (int ix = 0; ix < grid.nx; ++ix) {
      if (!mask[grid.index(ix, iy)]) continue;
      for (double fx : {0.0, 0.5, 0.999}) {
        for (double fy : {0.0, 0.5, 0.999}) {
          for (double dx : {-d, 0.0, d}) {
            for (double dy : {-d, 0.0, d}) {
              geom::ParticleState p;
              p.x = ix + fx + dx;
              p.y = iy + fy + dy;
              p.ux = dx;
              p.uy = dy;
              const geom::ParticleState before = p;
              ASSERT_TRUE(geom::enforce_boundaries(p, bc, 123u));
              ASSERT_EQ(p.x, before.x) << "cell " << ix << "," << iy;
              ASSERT_EQ(p.y, before.y);
              ASSERT_EQ(p.ux, before.ux);
              ASSERT_EQ(p.uy, before.uy);
              ++checked;
            }
          }
        }
      }
    }
  }
  ASSERT_GT(checked, 0) << "mask is empty - test misconfigured";
}

}  // namespace

TEST(InteriorMask, WedgeTunnelMaskIsConservativeAndUseful) {
  const geom::Grid grid{98, 64, 0};
  geom::Wedge wedge(20.0, 25.0, 30.0 * kRad);
  geom::BoundaryConfig bc = tunnel();
  bc.wedge = &wedge;
  const double d = 2.0;
  const double reach = 3.0 + 0.9;  // plunger trigger + one step of sweep
  const auto mask = geom::interior_cell_mask(grid, bc, reach, d);
  expect_mask_is_safe(grid, bc, mask, d);
  // Cells adjacent to the domain faces, the plunger sweep range and the
  // wedge must never be masked.
  for (int ix = 0; ix < grid.nx; ++ix) {
    EXPECT_FALSE(mask[grid.index(ix, 0)]);
    EXPECT_FALSE(mask[grid.index(ix, grid.ny - 1)]);
  }
  for (int iy = 0; iy < grid.ny; ++iy) {
    EXPECT_FALSE(mask[grid.index(0, iy)]);            // upstream
    EXPECT_FALSE(mask[grid.index(5, iy)]);            // inside plunger reach
    EXPECT_FALSE(mask[grid.index(grid.nx - 1, iy)]);  // sink
  }
  EXPECT_FALSE(mask[grid.index(30, 5)]);  // inside the wedge
  EXPECT_FALSE(mask[grid.index(19, 1)]);  // hugging the leading edge
  EXPECT_FALSE(mask[grid.index(46, 8)]);  // behind the back face
  // The far field and the region above the hypotenuse (well clear of it)
  // must be masked - the bounding box would wrongly exclude the latter.
  EXPECT_TRUE(mask[grid.index(60, 32)]);
  EXPECT_TRUE(mask[grid.index(24, 20)]);  // above the ramp, inside its bbox
}

TEST(InteriorMask, BodyMaskRespectsCylinder) {
  const geom::Grid grid{48, 32, 0};
  const geom::Body body = geom::Body::Cylinder(20.0, 16.0, 6.0, 16);
  const geom::Scene scene(std::vector<geom::Body>{body});
  geom::BoundaryConfig bc;
  bc.x_max = 48.0;
  bc.y_max = 32.0;
  bc.scene = &scene;
  const double d = 1.0;
  const auto mask = geom::interior_cell_mask(grid, bc, 0.0, d);
  expect_mask_is_safe(grid, bc, mask, d);
  EXPECT_FALSE(mask[grid.index(20, 16)]);  // center of the body
  EXPECT_FALSE(mask[grid.index(13, 16)]);  // one cell off the windward face
  EXPECT_TRUE(mask[grid.index(40, 16)]);   // wake, clear of everything
  EXPECT_TRUE(mask[grid.index(20, 28)]);   // above the body
}

TEST(InteriorMask, ThreeDMasksZFaces) {
  const geom::Grid grid{32, 16, 12};
  geom::BoundaryConfig bc;
  bc.x_max = 32.0;
  bc.y_max = 16.0;
  bc.z_max = 12.0;
  const auto mask = geom::interior_cell_mask(grid, bc, 0.0, 2.0);
  for (int iy = 0; iy < grid.ny; ++iy) {
    for (int ix = 0; ix < grid.nx; ++ix) {
      EXPECT_FALSE(mask[grid.index(ix, iy, 0)]);
      EXPECT_FALSE(mask[grid.index(ix, iy, grid.nz - 1)]);
    }
  }
  EXPECT_TRUE(mask[grid.index(16, 8, 6)]);
}
