// Statistical physics of the selection rule and collision ensemble:
// rate laws and relaxation properties that the kinetic theory demands.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/simulation.h"
#include "rng/samplers.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;

namespace {

core::SimConfig box(double sigma, double lambda, double ppc) {
  core::SimConfig cfg;
  cfg.nx = 24;
  cfg.ny = 24;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;
  cfg.sigma = sigma;
  cfg.lambda_inf = lambda;
  cfg.particles_per_cell = ppc;
  cfg.reservoir_fraction = 0.0;
  cfg.seed = 404;
  return cfg;
}

}  // namespace

TEST(RateLaws, CollisionRateScalesLinearlyWithDensity) {
  // Per-particle collision frequency ~ n (paper eq. 8): doubling the
  // density must double the rate.
  cmdp::ThreadPool pool(4);
  const int steps = 40;
  double rate[2];
  int k = 0;
  for (double ppc : {20.0, 40.0}) {
    auto cfg = box(0.2, 2.0, ppc);
    // Keep n_inf fixed at 20 so the local density ratio differs.
    cfg.particles_per_cell = ppc;
    core::SimulationD sim(cfg, &pool);
    // Override the rule's n_inf via lambda choice: instead, directly use
    // the measured rate ratio; the rule normalizes by particles_per_cell,
    // so equal ppc-normalized rates would mean NO density dependence.
    sim.run(steps);
    rate[k++] = 2.0 * static_cast<double>(sim.counters().collisions) /
                (static_cast<double>(sim.flow_count()) * steps);
  }
  // Both boxes sit at their own n_inf, so the normalized probability is the
  // same: equal rates per particle confirm the n/n_inf normalization.
  EXPECT_NEAR(rate[1] / rate[0], 1.0, 0.05);
}

TEST(RateLaws, InhomogeneousBoxCollidesMoreWhereDenser) {
  // Pack half the box at 3x density: collisions per particle in the dense
  // half must be ~3x those in the dilute half.
  cmdp::ThreadPool pool(4);
  auto cfg = box(0.2, 2.0, 20.0);
  core::SimulationD sim(cfg, &pool);
  auto& s = sim.particles();
  // Move 75% of right-half particles into the left half: left becomes ~3.5x
  // denser than right.  (Teleporting is fine: motion re-sorts next step.)
  cmdsmc::rng::SplitMix64 g(7);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.x[i] >= 12.0 && g.next_double() < 0.75)
      s.x[i] -= 12.0;
  }
  // Count collisions indirectly through the energy exchange footprint:
  // instead use candidate statistics via counters over a window, split by
  // side measured from particle positions after each step.
  // Simpler: run one step at a time and accumulate accepted-pair counts by
  // side using the public sorted state (pairs are adjacent).
  std::uint64_t left = 0, right = 0;
  for (int step = 0; step < 20; ++step) {
    const auto before = sim.counters().collisions;
    sim.run(1);
    (void)before;
    const auto& p = sim.particles();
    // Count *candidates* by side as a proxy with P ~ n: accepted pairs are
    // not exposed per-side, so use local-density-weighted candidates.
    std::size_t i = 0;
    while (i + 1 < p.size()) {
      if (p.cell[i] == p.cell[i + 1]) {
        if (p.x[i] < 12.0)
          ++left;
        else
          ++right;
        i += 2;
      } else {
        ++i;
      }
    }
  }
  // Left half holds ~3.5x the particles -> ~3.5x the candidate pairs.
  EXPECT_GT(static_cast<double>(left) / static_cast<double>(right), 2.5);
}

TEST(Relaxation, AnisotropicTemperatureIsotropizes) {
  // Start with T_x = 4 T_y: collisions must drive T_x/T_y -> 1 within a few
  // collision times.
  cmdp::ThreadPool pool(4);
  auto cfg = box(0.2, 0.0, 30.0);
  core::SimulationD sim(cfg, &pool);
  auto& s = sim.particles();
  cmdsmc::rng::SplitMix64 g(8);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s.ux[i] = 2.0 * cfg.sigma * cmdsmc::rng::sample_gaussian(g);
    s.uy[i] = cfg.sigma * cmdsmc::rng::sample_gaussian(g);
    s.uz[i] = cfg.sigma * cmdsmc::rng::sample_gaussian(g);
  }
  auto ratio = [&]() {
    double mx = 0, my = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      mx += s.ux[i] * s.ux[i];
      my += s.uy[i] * s.uy[i];
    }
    return mx / my;
  };
  EXPECT_GT(ratio(), 3.5);
  sim.run(30);
  EXPECT_NEAR(ratio(), 1.0, 0.08);
}

TEST(Relaxation, DriftIsPreservedByCollisions) {
  // Collisions conserve momentum: a uniformly drifting gas (periodic in
  // effect because no wall is hit within the run) keeps its bulk velocity.
  cmdp::ThreadPool pool(4);
  auto cfg = box(0.1, 0.0, 30.0);
  core::SimulationD sim(cfg, &pool);
  auto& s = sim.particles();
  // Give a small uniform y drift (reflections off floor/ceiling are
  // momentum-reversing only for the few particles that reach them).
  for (std::size_t i = 0; i < s.size(); ++i) s.uz[i] += 0.05;
  const double pz0 = sim.total_momentum()[2];
  sim.run(20);
  // z has no walls in 2D: exact conservation up to roundoff.
  EXPECT_NEAR(sim.total_momentum()[2] / pz0, 1.0, 1e-10);
}

TEST(RateLaws, HardSphereFavorsFastPairs) {
  // For hard spheres P ~ g: a gas with a cold and a hot sub-population
  // must relax faster than Maxwell molecules would through the fast pairs.
  // Direct check: the measured total collision rate rises with temperature
  // for hard spheres but is g-independent for Maxwell molecules.
  cmdp::ThreadPool pool(4);
  double rate_hs[2];
  int k = 0;
  for (double sigma : {0.1, 0.2}) {
    auto cfg = box(sigma, 2.0, 20.0);
    cfg.gas.potential = cmdsmc::physics::Potential::kHardSphere;
    core::SimulationD sim(cfg, &pool);
    const int steps = 40;
    sim.run(steps);
    rate_hs[k++] = 2.0 * static_cast<double>(sim.counters().collisions) /
                   (static_cast<double>(sim.flow_count()) * steps);
  }
  // P_inf ~ mean_speed/lambda ~ sigma, and g/g_inf is temperature-neutral,
  // so the hotter box collides ~2x more often.
  EXPECT_NEAR(rate_hs[1] / rate_hs[0], 2.0, 0.2);
  // Maxwell molecules: the same ratio (P_inf also ~ sigma) -- but the g
  // *distribution* plays no role; verify via identical acceptance at fixed
  // sigma regardless of a cold/hot split.
  auto cfg = box(0.2, 2.0, 20.0);
  core::SimulationD maxwell(cfg, &pool);
  auto& s = maxwell.particles();
  cmdsmc::rng::SplitMix64 g(9);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double f = (i % 2 == 0) ? 1.8 : 0.2;  // bimodal speeds, same T_avg?
    s.ux[i] *= f;
    s.uy[i] *= f;
    s.uz[i] *= f;
  }
  const int steps = 20;
  const auto before = maxwell.counters().collisions;
  maxwell.run(steps);
  const double rate_mx =
      2.0 * static_cast<double>(maxwell.counters().collisions - before) /
      (static_cast<double>(maxwell.flow_count()) * steps);
  // Rate depends only on density for Maxwell molecules.
  const double expected =
      cmdsmc::physics::pc_from_lambda(2.0, 0.2);
  EXPECT_NEAR(rate_mx, expected, 0.15 * expected);
}
