#include "physics/collision.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fixedpoint/fixed32.h"
#include "rng/rng.h"
#include "rng/samplers.h"

namespace physics = cmdsmc::physics;
namespace rng = cmdsmc::rng;
using cmdsmc::fixedpoint::Fixed32;

namespace {

template <class Real>
physics::Pair5<Real> random_pair(rng::SplitMix64& g, double scale) {
  physics::Pair5<Real> p;
  for (int c = 0; c < physics::kDof; ++c) {
    p.a[c] = physics::Num<Real>::from_double((g.next_double() - 0.5) * scale);
    p.b[c] = physics::Num<Real>::from_double((g.next_double() - 0.5) * scale);
  }
  return p;
}

template <class Real>
double pair_energy(const physics::Pair5<Real>& p) {
  double e = 0.0;
  for (int c = 0; c < physics::kDof; ++c) {
    const double a = physics::Num<Real>::to_double(p.a[c]);
    const double b = physics::Num<Real>::to_double(p.b[c]);
    e += 0.5 * (a * a + b * b);
  }
  return e;
}

template <class Real>
std::array<double, physics::kDof> pair_momentum(
    const physics::Pair5<Real>& p) {
  std::array<double, physics::kDof> m{};
  for (int c = 0; c < physics::kDof; ++c)
    m[c] = physics::Num<Real>::to_double(p.a[c]) +
           physics::Num<Real>::to_double(p.b[c]);
  return m;
}

}  // namespace

TEST(CollisionDouble, ConservesMomentumToRoundoff) {
  rng::SplitMix64 g(31);
  for (int trial = 0; trial < 2000; ++trial) {
    auto p = random_pair<double>(g, 2.0);
    const auto before = pair_momentum(p);
    physics::collide_pair(p, rng::random_perm(g), g.next_u64());
    const auto after = pair_momentum(p);
    for (int c = 0; c < physics::kDof; ++c)
      ASSERT_NEAR(before[c], after[c], 1e-15 * (1.0 + std::abs(before[c])));
  }
}

TEST(CollisionDouble, ConservesEnergyToRoundoff) {
  rng::SplitMix64 g(32);
  for (int trial = 0; trial < 2000; ++trial) {
    auto p = random_pair<double>(g, 2.0);
    const double before = pair_energy(p);
    physics::collide_pair(p, rng::random_perm(g), g.next_u64());
    ASSERT_NEAR(pair_energy(p), before, 1e-13 * (1.0 + before));
  }
}

TEST(CollisionDouble, PreservesRelativeSpeedNorm) {
  // |G'| = |G| by construction (signed permutation).
  rng::SplitMix64 g(33);
  for (int trial = 0; trial < 500; ++trial) {
    auto p = random_pair<double>(g, 2.0);
    double g2_before = 0.0;
    for (int c = 0; c < physics::kDof; ++c) {
      const double d = p.a[c] - p.b[c];
      g2_before += d * d;
    }
    physics::collide_pair(p, rng::random_perm(g), g.next_u64());
    double g2_after = 0.0;
    for (int c = 0; c < physics::kDof; ++c) {
      const double d = p.a[c] - p.b[c];
      g2_after += d * d;
    }
    ASSERT_NEAR(g2_after, g2_before, 1e-12 * (1.0 + g2_before));
  }
}

TEST(CollisionDouble, IdenticalVelocitiesStayIdentical) {
  // Zero relative velocity: the collision must be a no-op (G = 0).
  physics::Pair5<double> p;
  for (int c = 0; c < physics::kDof; ++c) p.a[c] = p.b[c] = 0.3 * (c + 1);
  physics::collide_pair(p, rng::pack_perm({3, 1, 4, 0, 2}), 0x2bull);
  for (int c = 0; c < physics::kDof; ++c) {
    EXPECT_DOUBLE_EQ(p.a[c], 0.3 * (c + 1));
    EXPECT_DOUBLE_EQ(p.b[c], 0.3 * (c + 1));
  }
}

TEST(CollisionDouble, SignBitsFlipComponents) {
  // With the identity permutation and all sign bits set, G' = -G, so the
  // particles simply exchange their 5-vectors.
  physics::Pair5<double> p;
  for (int c = 0; c < physics::kDof; ++c) {
    p.a[c] = c + 1.0;
    p.b[c] = -(c + 1.0);
  }
  const std::uint64_t all_signs = 0x1f;  // bits 0..4
  auto q = p;
  physics::collide_pair(q, rng::identity_perm(), all_signs);
  for (int c = 0; c < physics::kDof; ++c) {
    EXPECT_DOUBLE_EQ(q.a[c], p.b[c]);
    EXPECT_DOUBLE_EQ(q.b[c], p.a[c]);
  }
}

TEST(CollisionFixed, ConservesMomentumBitExactly) {
  rng::SplitMix64 g(34);
  for (int trial = 0; trial < 2000; ++trial) {
    auto p = random_pair<Fixed32>(g, 2.0);
    std::array<std::int64_t, physics::kDof> before{};
    for (int c = 0; c < physics::kDof; ++c)
      before[c] = static_cast<std::int64_t>(p.a[c].raw) + p.b[c].raw;
    physics::collide_pair(p, rng::random_perm(g), g.next_u64());
    for (int c = 0; c < physics::kDof; ++c)
      ASSERT_EQ(static_cast<std::int64_t>(p.a[c].raw) + p.b[c].raw,
                before[c]);
  }
}

TEST(CollisionFixed, EnergyErrorIsZeroMeanWithStochasticRounding) {
  rng::SplitMix64 g(35);
  double drift = 0.0;
  const int kTrials = 50000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto p = random_pair<Fixed32>(g, 1.0);
    const double before = pair_energy(p);
    physics::collide_pair(p, rng::random_perm(g), g.next_u64());
    drift += pair_energy(p) - before;
  }
  const double ulp = std::ldexp(1.0, -23);
  // Mean energy error per collision should be well below an ulp of energy.
  EXPECT_LT(std::abs(drift / kTrials), 0.5 * ulp);
}

TEST(CollisionFixed, TruncationSystematicallyLosesEnergy) {
  rng::SplitMix64 g(36);
  double drift = 0.0;
  const int kTrials = 50000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto p = random_pair<Fixed32>(g, 1.0);
    const double before = pair_energy(p);
    physics::collide_pair_truncating(p, rng::random_perm(g), g.next_u64());
    drift += pair_energy(p) - before;
  }
  // The paper's failure mode: consistent truncation loses energy.
  EXPECT_LT(drift / kTrials, 0.0);
}

TEST(CollisionOneSided, ConservesOnlyInTheMean) {
  rng::SplitMix64 g(37);
  double mean_de = 0.0;
  double max_abs_de = 0.0;
  const int kTrials = 50000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto p = random_pair<double>(g, 1.0);
    const double before = pair_energy(p);
    double a[physics::kDof];
    double b[physics::kDof];
    for (int c = 0; c < physics::kDof; ++c) {
      a[c] = p.a[c];
      b[c] = p.b[c];
    }
    physics::collide_one_sided(a, b, rng::random_perm(g), g.next_u64());
    for (int c = 0; c < physics::kDof; ++c) p.a[c] = a[c];
    const double de = pair_energy(p) - before;
    mean_de += de;
    max_abs_de = std::max(max_abs_de, std::abs(de));
  }
  mean_de /= kTrials;
  // Individual collisions are not conservative...
  EXPECT_GT(max_abs_de, 0.01);
  // ...but the ensemble mean error is small relative to typical energy O(1).
  EXPECT_LT(std::abs(mean_de), 0.01);
}

TEST(CollisionEnsemble, EquipartitionsTranslationAndRotation) {
  // Start with all energy translational; repeated collisions of a pool of
  // particles should spread it over all 5 degrees of freedom (diatomic
  // equilibrium: T_rot = T_trans).
  rng::SplitMix64 g(38);
  const int n = 4000;
  std::vector<std::array<double, 5>> v(n);
  for (auto& p : v) {
    for (int c = 0; c < 3; ++c) p[c] = rng::sample_gaussian(g);
    p[3] = p[4] = 0.0;
  }
  for (int sweep = 0; sweep < 40; ++sweep) {
    for (int i = 0; i + 1 < n; i += 2) {
      const int j = static_cast<int>(g.next_below(n));
      const int k = static_cast<int>(g.next_below(n));
      if (j == k) continue;
      physics::Pair5<double> p;
      for (int c = 0; c < 5; ++c) {
        p.a[c] = v[j][c];
        p.b[c] = v[k][c];
      }
      physics::collide_pair(p, rng::random_perm(g), g.next_u64());
      for (int c = 0; c < 5; ++c) {
        v[j][c] = p.a[c];
        v[k][c] = p.b[c];
      }
    }
  }
  double e_trans = 0.0, e_rot = 0.0;
  for (const auto& p : v) {
    e_trans += p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
    e_rot += p[3] * p[3] + p[4] * p[4];
  }
  // Per-DOF energies should match: e_trans/3 ~= e_rot/2 within a few %.
  EXPECT_NEAR((e_rot / 2.0) / (e_trans / 3.0), 1.0, 0.06);
}
