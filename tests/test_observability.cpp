// The observability layer: StepStats correctness, physics invariance under
// an attached observer, per-lane timing consistency, JSONL schema, Chrome
// trace structure, and checkpoint-aware telemetry continuity.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cmdp/thread_pool.h"
#include "core/checkpoint.h"
#include "core/simulation.h"
#include "geom/body.h"
#include "io/chrome_trace.h"
#include "io/telemetry_jsonl.h"
#include "obs/step_stats.h"
#include "obs/telemetry.h"

namespace {

using namespace cmdsmc;

core::SimConfig small_cfg() {
  core::SimConfig cfg;
  cfg.nx = 40;
  cfg.ny = 24;
  cfg.wedge_x0 = 10.0;
  cfg.wedge_base = 14.0;
  cfg.wedge_angle_deg = 30.0;
  cfg.particles_per_cell = 6.0;
  cfg.lambda_inf = 0.5;
  cfg.seed = 0xabcdef12ULL;
  return cfg;
}

// Collects every StepStats verbatim.
struct Recorder : obs::StepObserver {
  std::vector<obs::StepStats> steps;
  void on_step(const obs::StepStats& s) override { steps.push_back(s); }
};

// Records only every Nth step (cadence filter as TelemetrySession uses it).
struct CadenceRecorder : obs::StepObserver {
  std::int64_t every;
  std::vector<obs::StepStats> steps;
  explicit CadenceRecorder(std::int64_t n) : every(n) {}
  bool wants_step(std::int64_t step) const override {
    return step % every == 0;
  }
  void on_step(const obs::StepStats& s) override { steps.push_back(s); }
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

template <class Real>
std::uint64_t state_hash(const core::Simulation<Real>& sim) {
  const auto& st = sim.particles();
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < st.size(); ++i) {
    h = fnv1a(h, std::bit_cast<std::uint64_t>(st.x[i]));
    h = fnv1a(h, std::bit_cast<std::uint64_t>(st.ux[i]));
    h = fnv1a(h, st.cell[i]);
    h = fnv1a(h, st.id[i]);
  }
  h = fnv1a(h, sim.counters().collisions);
  h = fnv1a(h, sim.counters().candidates);
  return h;
}

// Extracts "key":<number> from a JSON line (flat keys only).
double json_number(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const auto pos = line.find(pat);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return -1.0;
  return std::strtod(line.c_str() + pos + pat.size(), nullptr);
}

TEST(StepStats, CensusAndDeltasMatchSimulation) {
  cmdp::ThreadPool pool(2);
  core::SimulationD sim(small_cfg(), &pool);
  Recorder rec;
  sim.set_step_observer(&rec);
  sim.run(8);
  sim.set_step_observer(nullptr);

  ASSERT_EQ(rec.steps.size(), 8u);
  // The last record's census is the simulation's state now.
  const obs::StepStats& last = rec.steps.back();
  EXPECT_EQ(last.step, 7);
  EXPECT_EQ(last.flow, sim.flow_count());
  EXPECT_EQ(last.reservoir, sim.reservoir_count());
  EXPECT_EQ(last.total, sim.total_count());
  // Planar run: weighted census == flow census, no clone/merge.
  EXPECT_DOUBLE_EQ(last.weighted_census, static_cast<double>(last.flow));
  EXPECT_EQ(last.cloned, 0u);
  EXPECT_EQ(last.merged, 0u);

  // Per-step deltas sum to the cumulative counters.
  std::uint64_t cand = 0, coll = 0, removed = 0, injected = 0;
  for (const auto& s : rec.steps) {
    cand += s.candidates;
    coll += s.collisions;
    removed += s.removed;
    injected += s.injected;
    EXPECT_GE(s.step_seconds, 0.0);
    EXPECT_GT(s.arena_bytes, 0u);
    if (s.candidates > 0) {
      EXPECT_GE(s.accept_rate, 0.0);
      EXPECT_LE(s.accept_rate, 1.0);
    }
    // Occupancy is over open cells of a populated domain.
    EXPECT_GT(s.occ_mean, 0.0);
    EXPECT_LE(s.occ_min, s.occ_max);
  }
  EXPECT_EQ(cand, sim.counters().candidates);
  EXPECT_EQ(coll, sim.counters().collisions);
  EXPECT_EQ(removed, sim.counters().removed);
  EXPECT_EQ(injected, sim.counters().injected);
  EXPECT_EQ(last.cum_candidates, sim.counters().candidates);
  EXPECT_EQ(last.cum_collisions, sim.counters().collisions);
}

TEST(StepStats, CadenceDeltasArePerStepNotPerInterval) {
  // wants_step gates the *snapshot* too: a record at cadence N still carries
  // single-step deltas, because begin_observed_step only runs on observed
  // steps and the deltas difference that step alone.
  cmdp::ThreadPool pool(1);
  core::SimulationD sim_a(small_cfg(), &pool);
  Recorder all;
  sim_a.set_step_observer(&all);
  sim_a.run(9);
  sim_a.set_step_observer(nullptr);

  core::SimulationD sim_b(small_cfg(), &pool);
  CadenceRecorder every3(3);
  sim_b.set_step_observer(&every3);
  sim_b.run(9);
  sim_b.set_step_observer(nullptr);

  ASSERT_EQ(every3.steps.size(), 3u);
  for (const auto& s : every3.steps) {
    ASSERT_LT(static_cast<std::size_t>(s.step), all.steps.size());
    const auto& full = all.steps[static_cast<std::size_t>(s.step)];
    EXPECT_EQ(s.candidates, full.candidates) << "step " << s.step;
    EXPECT_EQ(s.collisions, full.collisions) << "step " << s.step;
    EXPECT_EQ(s.flow, full.flow) << "step " << s.step;
  }
}

TEST(StepStats, ObserverDoesNotPerturbPhysics) {
  cmdp::ThreadPool pool(3);
  core::SimulationD bare(small_cfg(), &pool);
  bare.run(12);

  cmdp::ThreadPool pool2(3);
  core::SimulationD observed(small_cfg(), &pool2);
  Recorder rec;
  observed.set_step_observer(&rec);
  observed.run(12);
  observed.set_step_observer(nullptr);

  EXPECT_EQ(state_hash(bare), state_hash(observed));
}

TEST(StepStats, LaneSecondsSingleThreadEqualsAggregate) {
  cmdp::ThreadPool pool(1);
  core::SimulationD sim(small_cfg(), &pool);
  Recorder rec;
  sim.set_step_observer(&rec);
  sim.run(5);
  sim.set_step_observer(nullptr);

  for (const auto& s : rec.steps) {
    ASSERT_EQ(s.lanes, 1u);
    for (int p = 0; p < obs::StepStats::kPhases; ++p) {
      // With one lane the timer credits lane 0 with the full aggregate.
      EXPECT_DOUBLE_EQ(s.lane_second(p, 0), s.phase_seconds[p])
          << obs::StepStats::phase_name(p);
    }
  }
}

TEST(StepStats, LaneSecondsMultiThreadBoundedByAggregate) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(small_cfg(), &pool);
  Recorder rec;
  sim.set_step_observer(&rec);
  sim.run(6);
  sim.set_step_observer(nullptr);

  for (const auto& s : rec.steps) {
    ASSERT_EQ(s.lanes, 4u);
    for (int p = 0; p < obs::StepStats::kPhases; ++p) {
      double lane_sum = 0.0, lane_max = 0.0;
      for (unsigned t = 0; t < s.lanes; ++t) {
        const double v = s.lane_second(p, t);
        EXPECT_GE(v, 0.0);
        lane_sum += v;
        lane_max = std::max(lane_max, v);
      }
      // Serial sections (small-N cutoffs) run outside the pool, so lane
      // time can undershoot the aggregate but never exceed the aggregate
      // times the lane count (plus timer-resolution slack).
      EXPECT_LE(lane_sum,
                s.phase_seconds[p] * s.lanes * (1.0 + 0.25) + 1e-4)
          << obs::StepStats::phase_name(p);
      // A lane cannot be busy longer than the phase's wall time (slack for
      // clock resolution).
      EXPECT_LE(lane_max, s.phase_seconds[p] + 1e-3);
      if (lane_sum > 0.0) {
        EXPECT_GT(s.imbalance[p], 0.0);
      }
    }
  }
}

TEST(StepStats, ShardMetricsReportPlanAndImbalancePair) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(small_cfg(), &pool);
  Recorder rec;
  sim.set_step_observer(&rec);
  sim.run(10);
  sim.set_step_observer(nullptr);

  const auto& last = rec.steps.back();
  // Default knobs: shard_per_lane shards per lane, first sort builds a plan.
  EXPECT_EQ(last.shards, 4u * static_cast<unsigned>(
                                  core::SimConfig{}.shard_per_lane));
  EXPECT_GE(last.repartitions, 1u);
  // The pair: current predicted imbalance (drifts between repartitions) and
  // the value right after the last repartition (the achievable floor).
  EXPECT_GE(last.cost_imbalance, 1.0);
  EXPECT_GE(last.post_imbalance, 1.0);
  // Repartition count is cumulative and non-decreasing.
  for (std::size_t i = 1; i < rec.steps.size(); ++i)
    EXPECT_GE(rec.steps[i].repartitions, rec.steps[i - 1].repartitions);

  // Single lane: sharding never activates, the gauges read zero.
  cmdp::ThreadPool serial(1);
  core::SimulationD ssim(small_cfg(), &serial);
  Recorder srec;
  ssim.set_step_observer(&srec);
  ssim.run(3);
  ssim.set_step_observer(nullptr);
  EXPECT_EQ(srec.steps.back().shards, 0u);
  EXPECT_EQ(srec.steps.back().repartitions, 0u);
}

TEST(TelemetryJsonl, LineCarriesFullSchema) {
  cmdp::ThreadPool pool(2);
  core::SimulationD sim(small_cfg(), &pool);
  Recorder rec;
  sim.set_step_observer(&rec);
  sim.run(3);
  sim.set_step_observer(nullptr);

  const std::string line = io::telemetry_json_line(rec.steps.back());
  for (const char* key :
       {"step", "flow", "reservoir", "total", "weighted_census",
        "candidates", "collisions", "reservoir_collisions", "accept_rate",
        "removed", "injected", "synthesized", "cloned", "merged",
        "wall_events", "occ", "arena_bytes", "shard", "count",
        "repartitions", "post_imbalance", "phase_seconds", "lanes",
        "imbalance", "cum", "move", "sort", "select_collide", "sample"}) {
    EXPECT_NE(line.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing key " << key << " in: " << line;
  }
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  // Braces and brackets balance (cheap well-formedness check without a
  // JSON parser; CI runs the real validator in bench/check_telemetry.py).
  int depth = 0;
  for (char c : line) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json_number(line, "step"), 2.0);
  EXPECT_EQ(json_number(line, "total"),
            static_cast<double>(sim.total_count()));
}

TEST(ChromeTrace, WriterProducesBalancedEventArray) {
  const char* path = "trace_writer_test.json";
  {
    io::ChromeTraceWriter w;
    w.open(path);
    ASSERT_TRUE(w.is_open());
    w.thread_name(0, "control", 0);
    w.thread_name(100, "lane 0", 10);
    w.span("move", 0, 120, 0);
    w.span("sort", 120, 80, 0);
    w.span("move", 0, 110, 100);
    w.close();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), '\n');
  int depth = 0;
  for (char c : text) {
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // 2 thread_name calls emit 2 metadata events each, plus 3 spans.
  std::size_t events = 0;
  for (std::size_t p = text.find("\"ph\""); p != std::string::npos;
       p = text.find("\"ph\"", p + 1))
    ++events;
  EXPECT_EQ(events, 7u);
  std::remove(path);
}

TEST(TelemetrySession, WritesMonotoneStreamAndTrace) {
  cmdp::ThreadPool pool(2);
  core::SimulationD sim(small_cfg(), &pool);

  obs::TelemetryOptions topt;
  topt.jsonl_path = "session_test.jsonl";
  topt.trace_path = "session_trace.json";
  topt.every = 2;
  obs::TelemetrySession session(std::move(topt));
  ASSERT_TRUE(session.ok());
  sim.set_step_observer(&session);
  sim.run(10);
  sim.set_step_observer(nullptr);
  session.finish();
  EXPECT_EQ(session.steps_recorded(), 5);

  std::ifstream in("session_test.jsonl");
  std::string line;
  std::int64_t prev = -1;
  int count = 0;
  while (std::getline(in, line)) {
    const auto step = static_cast<std::int64_t>(json_number(line, "step"));
    EXPECT_GT(step, prev);
    EXPECT_EQ(step % 2, 0) << "cadence=2 must only record even steps";
    prev = step;
    ++count;
  }
  EXPECT_EQ(count, 5);

  std::ifstream tr("session_trace.json");
  std::stringstream ss;
  ss << tr.rdbuf();
  const std::string trace = ss.str();
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  std::remove("session_test.jsonl");
  std::remove("session_trace.json");
}

// Checkpoint-aware telemetry: run A straight through; run B to the midpoint,
// checkpoint, restore into C and finish.  The concatenated B+C stream must
// be step-monotone with no cumulative-counter discontinuity, and must agree
// record-for-record with A (restore is bit-exact, so even the physics
// metrics match).
TEST(TelemetrySession, CheckpointRestartStreamIsContinuous) {
  const int kHalf = 6;
  cmdp::ThreadPool pool(2);

  core::SimulationD a(small_cfg(), &pool);
  Recorder rec_a;
  a.set_step_observer(&rec_a);
  a.run(2 * kHalf);
  a.set_step_observer(nullptr);

  const char* ckpt = "telemetry_ckpt_test.bin";
  core::SimulationD b(small_cfg(), &pool);
  Recorder rec_b;
  b.set_step_observer(&rec_b);
  b.run(kHalf);
  b.set_step_observer(nullptr);
  core::save_checkpoint(ckpt, b);

  core::SimulationD c(small_cfg(), &pool);
  core::load_checkpoint(ckpt, c);
  EXPECT_EQ(c.step_index(), kHalf);
  Recorder rec_c;
  c.set_step_observer(&rec_c);
  c.run(kHalf);
  c.set_step_observer(nullptr);
  std::remove(ckpt);

  // Concatenate the two streams as a restart run's telemetry file would.
  std::vector<obs::StepStats> joined = rec_b.steps;
  joined.insert(joined.end(), rec_c.steps.begin(), rec_c.steps.end());
  ASSERT_EQ(joined.size(), rec_a.steps.size());

  std::int64_t prev_step = -1;
  std::uint64_t prev_cum_cand = 0, prev_cum_coll = 0;
  for (std::size_t i = 0; i < joined.size(); ++i) {
    const auto& s = joined[i];
    const auto& ref = rec_a.steps[i];
    EXPECT_GT(s.step, prev_step);
    // Cumulative counters never step backwards across the restore seam and
    // grow exactly by the per-step delta.
    EXPECT_EQ(s.cum_candidates, prev_cum_cand + s.candidates)
        << "cum discontinuity at step " << s.step;
    EXPECT_EQ(s.cum_collisions, prev_cum_coll + s.collisions)
        << "cum discontinuity at step " << s.step;
    prev_step = s.step;
    prev_cum_cand = s.cum_candidates;
    prev_cum_coll = s.cum_collisions;
    // Bit-exact restore: the restart stream reproduces the straight run.
    EXPECT_EQ(s.step, ref.step);
    EXPECT_EQ(s.flow, ref.flow);
    EXPECT_EQ(s.candidates, ref.candidates);
    EXPECT_EQ(s.collisions, ref.collisions);
    EXPECT_EQ(s.cum_candidates, ref.cum_candidates);
    EXPECT_EQ(s.cum_collisions, ref.cum_collisions);
  }
  EXPECT_EQ(state_hash(a), state_hash(c));
}

}  // namespace
