#include "core/simulation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;
using cmdsmc::fixedpoint::Fixed32;

namespace {

core::SimConfig small_wedge_config() {
  core::SimConfig cfg;
  cfg.nx = 49;
  cfg.ny = 32;
  cfg.wedge_x0 = 10.0;
  cfg.wedge_base = 12.0;
  cfg.particles_per_cell = 8.0;
  cfg.seed = 77;
  return cfg;
}

}  // namespace

TEST(SimConfigValidate, RejectsNonsense) {
  auto bad = small_wedge_config();
  bad.mach = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = small_wedge_config();
  bad.sigma = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = small_wedge_config();
  bad.lambda_inf = -0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = small_wedge_config();
  bad.particles_per_cell = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = small_wedge_config();
  bad.wedge_x0 = 45.0;  // wedge pokes out of the domain
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = small_wedge_config();
  bad.wedge_angle_deg = 70.0;  // taller than the tunnel
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = small_wedge_config();
  bad.sort_scale = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = small_wedge_config();
  bad.transpositions_per_collision = 9;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = small_wedge_config();
  bad.sigma = 1.0;  // Mach 4 stream would cross > 2 cells/step
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  EXPECT_NO_THROW(small_wedge_config().validate());
}

TEST(Simulation, ConstructsWithExpectedPopulation) {
  cmdp::ThreadPool pool(4);
  const auto cfg = small_wedge_config();
  core::SimulationD sim(cfg, &pool);
  // Flow fill: ppc * open volume; reservoir: 10% on top.
  double open = 0.0;
  for (double f : sim.open_fraction()) open += f;
  const auto expect_flow =
      static_cast<std::size_t>(std::llround(cfg.particles_per_cell * open));
  EXPECT_EQ(sim.flow_count(), expect_flow);
  EXPECT_EQ(sim.reservoir_count(),
            static_cast<std::size_t>(
                std::llround(0.10 * static_cast<double>(expect_flow))));
  EXPECT_EQ(sim.total_count(), sim.flow_count() + sim.reservoir_count());
  EXPECT_EQ(sim.step_index(), 0);
}

TEST(Simulation, NoParticleStartsInsideTheWedge) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(small_wedge_config(), &pool);
  const auto& s = sim.particles();
  const auto* w = sim.wedge();
  ASSERT_NE(w, nullptr);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag) continue;
    ASSERT_FALSE(w->inside(s.x[i], s.y[i])) << i;
  }
}

TEST(Simulation, StepKeepsTotalCountAndInvariants) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(small_wedge_config(), &pool);
  const std::size_t total = sim.total_count();
  sim.run(25);
  EXPECT_EQ(sim.step_index(), 25);
  // Total conserved unless the reservoir ran dry (it should not).
  EXPECT_EQ(sim.counters().synthesized, 0u);
  EXPECT_EQ(sim.total_count(), total);
  EXPECT_EQ(sim.total_count(), sim.flow_count() + sim.reservoir_count());
  // Particles stay inside the domain and outside the wedge.
  const auto& s = sim.particles();
  const auto* w = sim.wedge();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag) continue;
    ASSERT_GE(s.x[i], 0.0);
    ASSERT_LT(s.x[i], 49.0);
    ASSERT_GE(s.y[i], 0.0);
    ASSERT_LT(s.y[i], 32.0);
    ASSERT_FALSE(w->inside(s.x[i], s.y[i]));
  }
}

TEST(Simulation, CollisionsHappenAndAreCounted) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(small_wedge_config(), &pool);
  sim.run(5);
  const auto& c = sim.counters();
  EXPECT_GT(c.candidates, 0u);
  EXPECT_GT(c.collisions, 0u);
  EXPECT_GT(c.reservoir_collisions, 0u);
  EXPECT_LE(c.collisions, c.candidates);
  // Near continuum (lambda = 0): every flow candidate pair collides.
  EXPECT_EQ(c.collisions + c.reservoir_collisions, c.candidates);
}

TEST(Simulation, DeterministicAcrossThreadCounts) {
  // Counter-based RNG + stable sort => the particle state evolution is
  // bit-identical no matter how many lanes execute it.
  cmdp::ThreadPool pool1(1);
  cmdp::ThreadPool pool7(7);
  const auto cfg = small_wedge_config();
  core::SimulationD a(cfg, &pool1);
  core::SimulationD b(cfg, &pool7);
  a.run(12);
  b.run(12);
  ASSERT_EQ(a.total_count(), b.total_count());
  const auto& sa = a.particles();
  const auto& sb = b.particles();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa.x[i], sb.x[i]) << i;
    ASSERT_EQ(sa.y[i], sb.y[i]) << i;
    ASSERT_EQ(sa.ux[i], sb.ux[i]) << i;
    ASSERT_EQ(sa.uy[i], sb.uy[i]) << i;
    ASSERT_EQ(sa.uz[i], sb.uz[i]) << i;
    ASSERT_EQ(sa.perm[i], sb.perm[i]) << i;
  }
  EXPECT_EQ(a.counters().collisions, b.counters().collisions);
}

TEST(Simulation, DifferentSeedsDiverge) {
  cmdp::ThreadPool pool(4);
  auto cfg = small_wedge_config();
  core::SimulationD a(cfg, &pool);
  cfg.seed = 78;
  core::SimulationD b(cfg, &pool);
  a.run(5);
  b.run(5);
  EXPECT_NE(a.total_energy(), b.total_energy());
}

TEST(Simulation, FixedPointEngineRuns) {
  cmdp::ThreadPool pool(4);
  core::SimulationF sim(small_wedge_config(), &pool);
  const double e0 = sim.total_energy();
  sim.run(10);
  EXPECT_GT(e0, 0.0);
  EXPECT_EQ(sim.counters().synthesized, 0u);
  // Fixed-point run stays numerically sane.
  const double e1 = sim.total_energy();
  EXPECT_NEAR(e1 / e0, 1.0, 0.2);
}

TEST(Simulation, PlungerCyclesAndRefills) {
  cmdp::ThreadPool pool(4);
  auto cfg = small_wedge_config();
  core::SimulationD sim(cfg, &pool);
  const auto res0 = sim.reservoir_count();
  sim.run(40);
  // The plunger must have retracted at least once and pulled reservoir
  // particles into the flow.
  EXPECT_GT(sim.counters().injected, 0u);
  EXPECT_GT(sim.counters().removed, 0u);
  // Reservoir level stays within a sane band (injections ~ removals).
  EXPECT_GT(sim.reservoir_count(), res0 / 4);
  EXPECT_LT(sim.reservoir_count(), res0 * 4);
}

TEST(Simulation, SoftSourceModeAlsoMaintainsInflow) {
  cmdp::ThreadPool pool(4);
  auto cfg = small_wedge_config();
  cfg.upstream = cmdsmc::geom::UpstreamMode::kSoftSource;
  core::SimulationD sim(cfg, &pool);
  sim.run(40);
  EXPECT_GT(sim.counters().injected, 0u);
  // Upstream strip density should be near freestream.
  const auto& s = sim.particles();
  std::size_t strip = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag) continue;
    if (s.x[i] < 1.0) ++strip;
  }
  const double target = cfg.particles_per_cell * cfg.ny;
  EXPECT_NEAR(static_cast<double>(strip), target, 0.35 * target);
}

TEST(Simulation, SamplingAccumulatesOnlyWhenEnabled) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(small_wedge_config(), &pool);
  sim.run(3);
  EXPECT_EQ(sim.field().samples, 0);
  sim.set_sampling(true);
  sim.run(4);
  EXPECT_EQ(sim.field().samples, 4);
  sim.reset_sampling();
  EXPECT_EQ(sim.field().samples, 0);
}

TEST(Simulation, PhaseTimersCoverAllPhases) {
  cmdp::ThreadPool pool(2);
  core::SimulationD sim(small_wedge_config(), &pool);
  sim.set_sampling(true);
  sim.run(5);
  using S = core::SimulationD;
  EXPECT_GT(sim.phase_seconds(S::kPhaseMove), 0.0);
  EXPECT_GT(sim.phase_seconds(S::kPhaseSort), 0.0);
  // Selection is fused into the collide traversal; its slot reads 0 and the
  // fused pass reports under kPhaseCollide.
  EXPECT_EQ(sim.phase_seconds(S::kPhaseSelect), 0.0);
  EXPECT_GT(sim.phase_seconds(S::kPhaseCollide), 0.0);
  EXPECT_GT(sim.phase_seconds(S::kPhaseSample), 0.0);
  EXPECT_NEAR(sim.total_seconds(),
              sim.phase_seconds(S::kPhaseMove) +
                  sim.phase_seconds(S::kPhaseSort) +
                  sim.phase_seconds(S::kPhaseSelect) +
                  sim.phase_seconds(S::kPhaseCollide) +
                  sim.phase_seconds(S::kPhaseSample),
              1e-9);
}
