// Axisymmetric (z-r) mode: radially weighted particles, annular cell
// volumes, split/merge weight balancing and revolved-body surface
// coefficients.
//
// Physics anchors:
//  - a uniform freestream must stay uniform in r (the radial weighting
//    scheme has no spurious radial mass flux) with temperature preserved;
//  - the drag of a sphere (faceted circle on the axis, revolved) in the
//    collisionless limit must match the free-molecular analytic Cd.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numbers>
#include <numeric>

#include "core/checkpoint.h"
#include "core/simulation.h"
#include "geom/body.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;
namespace geom = cmdsmc::geom;

namespace {

// Free-molecular drag coefficient of a sphere with specular reflection at
// molecular speed ratio s = U / sqrt(2 R T) (Bird, Molecular Gas Dynamics):
//   Cd = exp(-s^2) (2s^2 + 1) / (sqrt(pi) s^3)
//      + erf(s) (4s^4 + 4s^2 - 1) / (2 s^4)
// (the diffuse re-emission term is absent for specular walls).  Hypersonic
// limit: Cd -> 2.
double sphere_cd_free_molecular_specular(double s) {
  const double s2 = s * s;
  const double s4 = s2 * s2;
  return std::exp(-s2) * (2.0 * s2 + 1.0) /
             (std::sqrt(std::numbers::pi) * s2 * s) +
         std::erf(s) * (4.0 * s4 + 4.0 * s2 - 1.0) / (2.0 * s4);
}

core::SimConfig tunnel_config() {
  core::SimConfig cfg;
  cfg.nx = 48;
  cfg.ny = 24;
  cfg.has_wedge = false;
  cfg.axisymmetric = true;
  cfg.mach = 4.0;
  cfg.sigma = 0.12;
  cfg.particles_per_cell = 10.0;
  cfg.reservoir_fraction = 0.4;
  return cfg;
}

}  // namespace

TEST(AxisymmetricConfig, ValidationRules) {
  core::SimConfig cfg = tunnel_config();
  EXPECT_NO_THROW(cfg.validate());
  // 3D and axisymmetric are mutually exclusive.
  cfg.nz = 8;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.nz = 0;
  // The legacy wedge path is planar-only.
  cfg.has_wedge = true;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.has_wedge = false;
  // Bodies of revolution straddle the axis: ymin < 0 is legal here...
  cfg.body = geom::Body::Cylinder(24.0, 0.0, 6.0, 16);
  EXPECT_NO_THROW(cfg.validate());
  // ...but not in planar mode.
  cfg.axisymmetric = false;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.axisymmetric = true;
  // A body wholly above the axis would revolve into a torus: rejected.
  cfg.body = geom::Body::Cylinder(24.0, 12.0, 6.0, 16);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Axisymmetric, FreeStreamStaysUniformInRadius) {
  // Open tunnel, no body, near-continuum collisions (the hardest case for
  // the weighting: every candidate pair collides every step, so any
  // weight-velocity collision bias would visibly drain the axis).
  core::SimConfig cfg = tunnel_config();
  cfg.lambda_inf = 0.0;
  cfg.seed = 0xF5EEDULL;
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(cfg, &pool);
  sim.run(150);
  sim.set_sampling(true);
  sim.run(200);
  const core::FieldStats f = sim.field();
  // Mean weighted density of each radial band (over x), against the global
  // mean: the plunger cycle sets the absolute level (same as planar runs),
  // uniformity in r is what the weighting must deliver.
  std::vector<double> band(static_cast<std::size_t>(cfg.ny), 0.0);
  for (int iy = 0; iy < cfg.ny; ++iy) {
    for (int ix = 0; ix < cfg.nx; ++ix) band[iy] += f.at(f.density, ix, iy);
    band[iy] /= cfg.nx;
  }
  const double mean =
      std::accumulate(band.begin(), band.end(), 0.0) /
      static_cast<double>(band.size());
  EXPECT_GT(mean, 0.9);
  EXPECT_LT(mean, 1.05);
  for (int iy = 0; iy < cfg.ny; ++iy)
    EXPECT_NEAR(band[iy] / mean, 1.0, 0.06) << "radial band " << iy;
  // Temperature preserved through 350 steps of weighted transport,
  // balancing and collisions.
  double t_mean = 0.0;
  int t_cells = 0;
  for (int iy = 0; iy < cfg.ny; ++iy)
    for (int ix = 0; ix < cfg.nx; ++ix) {
      t_mean += f.at(f.t_total, ix, iy);
      ++t_cells;
    }
  t_mean /= t_cells;
  EXPECT_NEAR(t_mean, 1.0, 0.03);
}

TEST(Axisymmetric, WeightsStayNearTheCellTarget) {
  core::SimConfig cfg = tunnel_config();
  cfg.lambda_inf = 0.5;
  cmdp::ThreadPool pool(2);
  core::SimulationD sim(cfg, &pool);
  sim.run(60);
  // After a step the last rebalance ran against the current cells (the move
  // precedes sort+balance, nothing moves afterwards): every flow particle
  // sits within the split/merge band of its cell, modulo the split cap
  // (k <= 8) for extreme inward jumps.
  const auto& s = sim.particles();
  const auto& vol = sim.cell_volume();
  ASSERT_EQ(vol.size(), static_cast<std::size_t>(cfg.nx) * cfg.ny);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag) continue;
    const double wt = vol[s.cell[i]];
    ASSERT_GT(s.weight[i], 0.0);
    ASSERT_LE(s.weight[i], 4.0 * wt) << "particle " << i;
  }
  EXPECT_GT(sim.counters().cloned, 0u);
  EXPECT_GT(sim.counters().merged, 0u);
}

TEST(Axisymmetric, SphereDragMatchesFreeMolecularTheory) {
  // Collisionless Mach 4 flow over a 32-facet circle centred on the axis —
  // revolved, a sphere of radius 6 in a tunnel of radius 36 (blockage and
  // re-reflection off the outer wall below the test tolerance).
  core::SimConfig cfg;
  cfg.nx = 64;
  cfg.ny = 36;
  cfg.has_wedge = false;
  cfg.axisymmetric = true;
  cfg.mach = 4.0;
  cfg.sigma = 0.12;
  cfg.lambda_inf = 1e9;  // free molecular
  cfg.particles_per_cell = 8.0;
  cfg.reservoir_fraction = 0.3;
  cfg.body = geom::Body::Cylinder(24.0, 0.0, 6.0, 32);  // specular wall
  cfg.seed = 0x5b3ULL;
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(cfg, &pool);
  sim.run(150);
  sim.set_surface_sampling(true);
  sim.run(300);
  const core::SurfaceStats s = sim.surface();
  const double speed_ratio =
      cfg.mach * std::sqrt(cmdsmc::physics::theory::kGammaDiatomic / 2.0);
  const double cd_fm = sphere_cd_free_molecular_specular(speed_ratio);
  EXPECT_NEAR(s.cd / cd_fm, 1.0, 0.10)
      << "Cd " << s.cd << " vs free-molecular " << cd_fm;
  // A revolved body has zero net lateral force by symmetry.
  EXPECT_EQ(s.cl, 0.0);
  // The run really was collisionless.
  EXPECT_EQ(sim.counters().collisions, 0u);
}

TEST(Axisymmetric, CheckpointRoundTripReproducesTheRun) {
  core::SimConfig cfg = tunnel_config();
  cfg.lambda_inf = 0.5;
  cfg.body = geom::Body::Cylinder(24.0, 0.0, 5.0, 16);
  cmdp::ThreadPool pool(2);

  core::SimulationD sim(cfg, &pool);
  sim.set_sampling(true);
  sim.set_surface_sampling(true);
  sim.run(25);
  const std::string path = "axi_checkpoint_test.bin";
  core::save_checkpoint(path, sim);
  sim.run(15);
  const core::SurfaceStats want = sim.surface();
  const double want_mass = sim.flow_weighted_mass();

  core::SimulationD resumed(cfg, &pool);
  core::load_checkpoint(path, resumed);
  resumed.set_sampling(true);
  resumed.set_surface_sampling(true);
  resumed.run(15);
  const core::SurfaceStats got = resumed.surface();
  EXPECT_EQ(got.samples, want.samples);
  EXPECT_EQ(got.cd, want.cd);
  EXPECT_EQ(got.heat_total, want.heat_total);
  EXPECT_EQ(resumed.flow_weighted_mass(), want_mass);
  EXPECT_EQ(resumed.counters().cloned, sim.counters().cloned);
  EXPECT_EQ(resumed.counters().merged, sim.counters().merged);
  std::remove(path.c_str());
}

TEST(Axisymmetric, PlanarRunsCarryNoWeightArray) {
  core::SimConfig cfg;
  cfg.nx = 32;
  cfg.ny = 24;
  cfg.has_wedge = false;
  cfg.particles_per_cell = 6.0;
  cmdp::ThreadPool pool(2);
  core::SimulationD sim(cfg, &pool);
  sim.run(5);
  EXPECT_FALSE(sim.particles().has_weight);
  EXPECT_TRUE(sim.particles().weight.empty());
  EXPECT_TRUE(sim.cell_volume().empty());
  EXPECT_EQ(sim.counters().cloned, 0u);
  EXPECT_EQ(sim.counters().merged, 0u);
}
