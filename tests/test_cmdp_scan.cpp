#include "cmdp/scan.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "rng/rng.h"

namespace cmdp = cmdsmc::cmdp;

namespace {

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed) {
  cmdsmc::rng::SplitMix64 g(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(g.next_below(1000)) - 500;
  return v;
}

struct Add {
  std::int64_t operator()(std::int64_t a, std::int64_t b) const {
    return a + b;
  }
};

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

}  // namespace

TEST_P(ScanSizes, InclusiveMatchesSerialReference) {
  const std::size_t n = GetParam();
  cmdp::ThreadPool pool(5);
  const auto in = random_values(n, 42 + n);
  std::vector<std::int64_t> out(n), ref(n);
  std::partial_sum(in.begin(), in.end(), ref.begin());
  cmdp::inclusive_scan<std::int64_t>(pool, in, out, Add{}, 0);
  EXPECT_EQ(out, ref);
}

TEST_P(ScanSizes, ExclusiveMatchesSerialReference) {
  const std::size_t n = GetParam();
  cmdp::ThreadPool pool(5);
  const auto in = random_values(n, 99 + n);
  std::vector<std::int64_t> out(n), ref(n);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ref[i] = acc;
    acc += in[i];
  }
  const auto total = cmdp::exclusive_scan<std::int64_t>(pool, in, out, Add{}, 0);
  EXPECT_EQ(out, ref);
  EXPECT_EQ(total, acc);
}

TEST_P(ScanSizes, SegmentedInclusiveMatchesReference) {
  const std::size_t n = GetParam();
  cmdp::ThreadPool pool(5);
  const auto in = random_values(n, 7 + n);
  cmdsmc::rng::SplitMix64 g(1234);
  std::vector<std::uint8_t> seg(n, 0);
  for (std::size_t i = 0; i < n; ++i) seg[i] = g.next_below(10) == 0 ? 1 : 0;
  if (n > 0) seg[0] = 1;
  std::vector<std::int64_t> out(n), ref(n);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc = seg[i] ? in[i] : acc + in[i];
    ref[i] = acc;
  }
  cmdp::segmented_inclusive_scan<std::int64_t>(pool, in, seg, out, Add{}, 0);
  EXPECT_EQ(out, ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0, 1, 2, 100, 4095, 4096, 4097,
                                           50000, 262144));

TEST(Scan, InclusiveInPlaceAliasing) {
  cmdp::ThreadPool pool(4);
  std::vector<std::int64_t> v = random_values(70000, 5);
  std::vector<std::int64_t> ref(v.size());
  std::partial_sum(v.begin(), v.end(), ref.begin());
  cmdp::inclusive_scan<std::int64_t>(
      pool, std::span<const std::int64_t>(v), std::span<std::int64_t>(v),
      Add{}, 0);
  EXPECT_EQ(v, ref);
}

TEST(Scan, SegmentedWithNoSegmentStartsAfterFirstEqualsPlainScan) {
  cmdp::ThreadPool pool(3);
  const std::size_t n = 30000;
  const auto in = random_values(n, 8);
  std::vector<std::uint8_t> seg(n, 0);
  seg[0] = 1;
  std::vector<std::int64_t> out(n), ref(n);
  std::partial_sum(in.begin(), in.end(), ref.begin());
  cmdp::segmented_inclusive_scan<std::int64_t>(pool, in, seg, out, Add{}, 0);
  EXPECT_EQ(out, ref);
}

TEST(Scan, SegmentedEverySlotIsStart) {
  cmdp::ThreadPool pool(3);
  const std::size_t n = 20000;
  const auto in = random_values(n, 9);
  std::vector<std::uint8_t> seg(n, 1);
  std::vector<std::int64_t> out(n);
  cmdp::segmented_inclusive_scan<std::int64_t>(pool, in, seg, out, Add{}, 0);
  EXPECT_EQ(out, in);
}

TEST(Scan, MaxScanWithNonAdditiveOperator) {
  cmdp::ThreadPool pool(4);
  const std::size_t n = 65536;
  const auto in = random_values(n, 10);
  std::vector<std::int64_t> out(n), ref(n);
  std::int64_t acc = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 0; i < n; ++i) {
    acc = std::max(acc, in[i]);
    ref[i] = acc;
  }
  cmdp::inclusive_scan<std::int64_t>(
      pool, in, out,
      [](std::int64_t a, std::int64_t b) { return a > b ? a : b; },
      std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(out, ref);
}

TEST(MarkSegmentStarts, FlagsKeyChanges) {
  cmdp::ThreadPool pool(2);
  std::vector<std::uint32_t> keys = {3, 3, 3, 5, 5, 9, 9, 9, 9, 12};
  std::vector<std::uint8_t> flags;
  cmdp::mark_segment_starts(pool, keys, flags);
  const std::vector<std::uint8_t> expected = {1, 0, 0, 1, 0, 1, 0, 0, 0, 1};
  EXPECT_EQ(flags, expected);
}
