#include "geom/body.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/boundary.h"
#include "geom/wedge.h"
#include "rng/rng.h"

namespace geom = cmdsmc::geom;

namespace {

constexpr double kRad = std::numbers::pi / 180.0;

double speed2(const geom::ParticleState& p) {
  return p.ux * p.ux + p.uy * p.uy + p.uz * p.uz;
}

double energy(const geom::ParticleState& p) {
  return 0.5 * (speed2(p) + p.r0 * p.r0 + p.r1 * p.r1);
}

}  // namespace

// --- Construction and factories ---------------------------------------------

TEST(Body, WedgeFactoryMatchesLegacyTriangle) {
  const geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  const geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  ASSERT_EQ(b.segment_count(), 3);
  EXPECT_NEAR(b.xmin(), 20.0, 1e-12);
  EXPECT_NEAR(b.xmax(), 45.0, 1e-12);
  EXPECT_NEAR(b.ymax(), w.height(), 1e-12);
  EXPECT_NEAR(b.chord(), 25.0, 1e-12);
  EXPECT_NEAR(b.area(), 0.5 * 25.0 * w.height(), 1e-9);
  EXPECT_TRUE(b.convex());
  // Floor edge is embedded; back face and hypotenuse are live.
  EXPECT_TRUE(b.segments()[0].embedded);
  EXPECT_FALSE(b.segments()[1].embedded);
  EXPECT_FALSE(b.segments()[2].embedded);
  // Back face outward normal +x, hypotenuse normal (-sin a, cos a).
  EXPECT_NEAR(b.segments()[1].nx, 1.0, 1e-12);
  EXPECT_NEAR(b.segments()[1].ny, 0.0, 1e-12);
  EXPECT_NEAR(b.segments()[2].nx, -std::sin(30.0 * kRad), 1e-12);
  EXPECT_NEAR(b.segments()[2].ny, std::cos(30.0 * kRad), 1e-12);
}

TEST(Body, CylinderFactoryApproximatesCircle) {
  const geom::Body b = geom::Body::Cylinder(24.0, 24.0, 6.0, 32);
  ASSERT_EQ(b.segment_count(), 32);
  EXPECT_TRUE(b.convex());
  // Polygon area slightly below pi r^2, converging with facet count.
  EXPECT_GT(b.area(), 0.97 * std::numbers::pi * 36.0);
  EXPECT_LT(b.area(), std::numbers::pi * 36.0);
  // Every outward normal points away from the center.
  for (const geom::BodySegment& s : b.segments()) {
    const double rx = s.mid_x() - 24.0;
    const double ry = s.mid_y() - 24.0;
    EXPECT_GT(s.nx * rx + s.ny * ry, 0.0);
  }
  EXPECT_TRUE(b.inside(24.0, 24.0));
  EXPECT_FALSE(b.inside(24.0, 31.0));
}

TEST(Body, FlatPlateAndBiconicAreConvexClosedShapes) {
  const geom::Body plate =
      geom::Body::FlatPlate(10.0, 20.0, 12.0, 1.0, 10.0 * kRad);
  EXPECT_EQ(plate.segment_count(), 4);
  EXPECT_TRUE(plate.convex());
  EXPECT_NEAR(plate.area(), 12.0, 1e-9);

  const geom::Body bic =
      geom::Body::Biconic(10.0, 24.0, 8.0, 25.0 * kRad, 10.0, 10.0 * kRad);
  EXPECT_EQ(bic.segment_count(), 5);
  EXPECT_TRUE(bic.convex());
  // Nose is the leftmost point on the axis.
  EXPECT_NEAR(bic.xmin(), 10.0, 1e-12);
  EXPECT_TRUE(bic.inside(12.0, 24.0));
  EXPECT_FALSE(bic.inside(9.0, 24.0));
}

TEST(Body, RejectsDegenerateInput) {
  // Too few vertices.
  EXPECT_THROW(geom::Body({{0, 0}, {1, 0}}), std::invalid_argument);
  // Clockwise winding (negative area).
  EXPECT_THROW(geom::Body({{0, 0}, {0, 1}, {1, 1}, {1, 0}}),
               std::invalid_argument);
  // Zero-length edge.
  EXPECT_THROW(geom::Body({{0, 0}, {1, 0}, {1, 0}, {0, 1}}),
               std::invalid_argument);
  // Factory validation.
  EXPECT_THROW(geom::Body::Wedge(0.0, -1.0, 30.0 * kRad),
               std::invalid_argument);
  EXPECT_THROW(geom::Body::Cylinder(0.0, 0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(geom::Body::FlatPlate(0.0, 0.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(geom::Body::Biconic(0, 0, 1.0, 0.0, 1.0, 0.1),
               std::invalid_argument);
}

// --- Inside / nearest-face queries -------------------------------------------

TEST(Body, WedgeInsideMatchesLegacyWedgeExactly) {
  const geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  const geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  cmdsmc::rng::SplitMix64 g(7);
  for (int trial = 0; trial < 20000; ++trial) {
    const double x = g.next_double() * 60.0;
    const double y = g.next_double() * 20.0 - 2.0;
    ASSERT_EQ(b.inside(x, y), w.inside(x, y)) << x << "," << y;
  }
}

TEST(Body, NearestFaceOnInclinedFace) {
  const geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  // Just below the ramp surface at x = 30: hypotenuse (segment 2).
  const double y = 10.0 * std::tan(30.0 * kRad) - 0.1;
  const auto hit = b.nearest_face(30.0, y);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->segment, 2);
  EXPECT_NEAR(hit->nx, -std::sin(30.0 * kRad), 1e-12);
  EXPECT_NEAR(hit->ny, std::cos(30.0 * kRad), 1e-12);
  EXPECT_LT(hit->depth, 0.0);
  // Plane depth: the perpendicular penetration of the ramp.
  EXPECT_NEAR(hit->depth, -0.1 * std::cos(30.0 * kRad), 1e-9);
}

TEST(Body, NearestFaceOnVerticalFace) {
  const geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  const auto hit = b.nearest_face(44.95, 2.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->segment, 1);
  EXPECT_NEAR(hit->nx, 1.0, 1e-12);
  EXPECT_NEAR(hit->ny, 0.0, 1e-12);
  EXPECT_NEAR(hit->depth, -0.05, 1e-9);
  // Outside: no face.
  EXPECT_FALSE(b.nearest_face(10.0, 1.0).has_value());
}

TEST(Body, NearestFaceNeverReturnsEmbeddedFloor) {
  const geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  // Deep inside just above the floor: the embedded floor edge is closest in
  // pure distance but must never be reported.
  cmdsmc::rng::SplitMix64 g(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const double x = 21.0 + g.next_double() * 23.0;
    const double y = 0.01 + g.next_double() * 0.2;
    if (!b.inside(x, y)) continue;
    const auto hit = b.nearest_face(x, y);
    ASSERT_TRUE(hit.has_value());
    EXPECT_NE(hit->segment, 0);
  }
}

TEST(Body, NearestFaceAgreesWithLegacyWedge) {
  const geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  const geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  cmdsmc::rng::SplitMix64 g(13);
  int compared = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const double x = 20.0 + g.next_double() * 26.0;
    const double y = g.next_double() * 15.0;
    const auto hb = b.nearest_face(x, y);
    const auto hw = w.nearest_face(x, y);
    ASSERT_EQ(hb.has_value(), hw.has_value());
    if (!hb) continue;
    ++compared;
    // Same normal and plane depth whenever both paths pick the same face
    // (they may differ in a measure-zero sliver near the apex corner where
    // plane- and segment-distance orderings disagree).
    if (hb->nx == hw->nx) {
      EXPECT_NEAR(hb->ny, hw->ny, 1e-12);
      EXPECT_NEAR(hb->depth, hw->depth, 1e-9);
    }
  }
  EXPECT_GT(compared, 1000);
}

// --- Open fractions ----------------------------------------------------------

TEST(Body, WedgeOpenFractionTableMatchesLegacy) {
  const geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  const geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  const geom::Grid grid{98, 64, 0};
  const auto tb = b.open_fraction_table(grid);
  const auto tw = w.open_fraction_table(grid);
  ASSERT_EQ(tb.size(), tw.size());
  for (std::size_t i = 0; i < tb.size(); ++i)
    ASSERT_NEAR(tb[i], tw[i], 1e-9) << "cell " << i;
}

TEST(Body, CylinderOpenFractionConservesArea) {
  const geom::Body b = geom::Body::Cylinder(24.0, 20.0, 6.0, 48);
  const geom::Grid grid{64, 48, 0};
  const auto table = b.open_fraction_table(grid);
  double solid = 0.0;
  for (double f : table) solid += 1.0 - f;
  EXPECT_NEAR(solid, b.area(), 1e-6);
}

TEST(Body, OpenFractionTable3DRepeatsPerPlane) {
  const geom::Body b = geom::Body::Wedge(4.0, 4.0, 30.0 * kRad);
  const geom::Grid g{16, 8, 3};
  const auto table = b.open_fraction_table(g);
  for (int ix = 0; ix < g.nx; ++ix)
    for (int iy = 0; iy < g.ny; ++iy) {
      const double f0 = table[g.index(ix, iy, 0)];
      EXPECT_EQ(f0, table[g.index(ix, iy, 1)]);
      EXPECT_EQ(f0, table[g.index(ix, iy, 2)]);
    }
}

// --- Boundary interaction ----------------------------------------------------

TEST(BodyBoundary, SpecularConservesEnergyOnArbitraryAngleSegment) {
  // A plate at 17 degrees incidence: its faces align with no axis.
  const geom::Body plate =
      geom::Body::FlatPlate(30.0, 25.0, 15.0, 2.0, 17.0 * kRad);
  geom::BoundaryConfig bc;
  bc.x_max = 98.0;
  bc.y_max = 64.0;
  const geom::Scene scene_plate(std::vector<geom::Body>{plate});
  bc.scene = &scene_plate;
  cmdsmc::rng::SplitMix64 g(17);
  int reflected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const double x = plate.xmin() + g.next_double() * plate.chord();
    const double y = plate.ymin() + g.next_double() * plate.height();
    if (!plate.inside(x, y)) continue;
    geom::ParticleState p{x, y, 0, 0.6 * (2 * g.next_double() - 1),
                          0.6 * (2 * g.next_double() - 1), 0.1, 0.2, -0.3};
    const double e = energy(p);
    ASSERT_TRUE(geom::enforce_boundaries(p, bc, 0));
    ASSERT_FALSE(plate.inside(p.x, p.y)) << p.x << "," << p.y;
    ASSERT_NEAR(energy(p), e, 1e-9);
    ++reflected;
  }
  EXPECT_GT(reflected, 1000);
}

TEST(BodyBoundary, DiffuseIsothermalRefluxTemperature) {
  geom::Body plate = geom::Body::FlatPlate(30.0, 25.0, 15.0, 2.0, 0.0);
  const double sigma_w = 0.25;
  plate.set_wall_model(geom::WallModel::kDiffuseIsothermal, sigma_w);
  geom::BoundaryConfig bc;
  bc.x_max = 98.0;
  bc.y_max = 64.0;
  const geom::Scene scene_plate(std::vector<geom::Body>{plate});
  bc.scene = &scene_plate;
  cmdsmc::rng::SplitMix64 g(19);
  double sum_vn2 = 0.0;
  double sum_e = 0.0;
  int n = 0;
  // Drop cold particles just inside the top face and measure the re-emitted
  // distribution: flux-weighted normal with E[vn^2] = 2 sigma_w^2, Gaussian
  // tangential/rotational with sigma_w^2 each; mean energy 3 sigma_w^2.
  for (int trial = 0; trial < 40000; ++trial) {
    const double x = 31.0 + g.next_double() * 13.0;
    geom::ParticleState p{x, 26.95, 0, 0.05, -0.05, 0, 0, 0};
    ASSERT_TRUE(geom::enforce_boundaries(p, bc, g.next_u64()));
    // Top face outward normal is +y.
    const double vn = p.uy;
    ASSERT_GT(vn, 0.0);
    sum_vn2 += vn * vn;
    sum_e += energy(p);
    ++n;
  }
  const double s2 = sigma_w * sigma_w;
  EXPECT_NEAR(sum_vn2 / n, 2.0 * s2, 0.05 * s2);
  EXPECT_NEAR(sum_e / n, 3.0 * s2, 0.10 * s2);
}

TEST(BodyBoundary, DiffuseAdiabaticPreservesParticleEnergy) {
  geom::Body cyl = geom::Body::Cylinder(30.0, 30.0, 8.0, 24);
  cyl.set_wall_model(geom::WallModel::kDiffuseAdiabatic, 0.25);
  geom::BoundaryConfig bc;
  bc.x_max = 98.0;
  bc.y_max = 64.0;
  const geom::Scene scene_cyl(std::vector<geom::Body>{cyl});
  bc.scene = &scene_cyl;
  cmdsmc::rng::SplitMix64 g(23);
  for (int trial = 0; trial < 2000; ++trial) {
    const double a = 2.0 * std::numbers::pi * g.next_double();
    const double x = 30.0 + 7.9 * std::cos(a);
    const double y = 30.0 + 7.9 * std::sin(a);
    if (!cyl.inside(x, y)) continue;
    geom::ParticleState p{x, y, 0, 0.4, -0.2, 0.1, 0.2, -0.3};
    const double e = energy(p);
    ASSERT_TRUE(geom::enforce_boundaries(p, bc, g.next_u64()));
    ASSERT_NEAR(energy(p), e, 1e-9);
  }
}

TEST(BodyBoundary, WallEventsRecordMomentumAndEnergyTransfer) {
  const geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  geom::BoundaryConfig bc;
  bc.x_max = 98.0;
  bc.y_max = 64.0;
  const geom::Scene scene_b(std::vector<geom::Body>{b});
  bc.scene = &scene_b;
  // Head-on specular hit on the vertical back face: the wall receives
  // 2 m |ux| of -x momentum and no energy.
  geom::ParticleState p{44.9, 2.0, 0, -0.4, 0.0, 0, 0, 0};
  geom::WallEventBuffer ev;
  ASSERT_TRUE(geom::enforce_boundaries(p, bc, 0, &ev));
  ASSERT_EQ(ev.count, 1);
  EXPECT_EQ(ev.events[0].segment, 1);
  EXPECT_NEAR(ev.events[0].dpx, -0.8, 1e-12);
  EXPECT_NEAR(ev.events[0].dpy, 0.0, 1e-12);
  EXPECT_NEAR(ev.events[0].de, 0.0, 1e-12);
  EXPECT_NEAR(p.x, 45.1, 1e-9);
  EXPECT_NEAR(p.ux, 0.4, 1e-12);
}

TEST(BodyBoundary, MixedPerSegmentWallModels) {
  // Diffuse-isothermal ramp, specular back face on the same body.
  geom::Body b = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  b.set_segment_wall(2, geom::WallModel::kDiffuseIsothermal, 0.25);
  EXPECT_TRUE(b.any_diffuse());
  geom::BoundaryConfig bc;
  bc.x_max = 98.0;
  bc.y_max = 64.0;
  const geom::Scene scene_b(std::vector<geom::Body>{b});
  bc.scene = &scene_b;
  // Back face stays deterministic-specular.
  geom::ParticleState p{44.9, 2.0, 0, -0.4, 0.0, 0, 0, 0};
  ASSERT_TRUE(geom::enforce_boundaries(p, bc, 12345));
  EXPECT_NEAR(p.ux, 0.4, 1e-12);
  // Ramp hit resamples the velocity (diffuse): outgoing along the ramp
  // normal, and the pre-hit tangential velocity is not preserved.
  cmdsmc::rng::SplitMix64 g(29);
  const double nx = -std::sin(30.0 * kRad);
  const double ny = std::cos(30.0 * kRad);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = 25.0 + g.next_double() * 15.0;
    const double y = (x - 20.0) * std::tan(30.0 * kRad) - 0.05;
    geom::ParticleState q{x, y, 0, 0.8, -0.4, 0, 0.1, 0.1};
    ASSERT_TRUE(geom::enforce_boundaries(q, bc, g.next_u64()));
    EXPECT_GT(q.ux * nx + q.uy * ny, 0.0);
  }
}
