// Multi-body scenes end to end: the tandem_cylinders scenario, per-body
// surface statistics in the RunResult/JSON, the bodyN.* override grammar,
// and the superposition sanity check (well-separated bodies reproduce the
// single-body coefficients).
#include <gtest/gtest.h>

#include <cmath>

#include "cmdp/thread_pool.h"
#include "core/simulation.h"
#include "io/surface_csv.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace core = cmdsmc::core;
namespace geom = cmdsmc::geom;
namespace cli = cmdsmc::cli;
namespace cmdp = cmdsmc::cmdp;
namespace scenario = cmdsmc::scenario;

TEST(MultiBodyScenario, RegistryContainsTheMultiBodyScenes) {
  for (const char* name : {"tandem_cylinders", "biconic_flare"}) {
    const scenario::ScenarioSpec* s = scenario::find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->bodies.size(), 2u) << name;
    EXPECT_NO_THROW({
      const core::SimConfig cfg = s->build_config();
      EXPECT_TRUE(cfg.has_body_scene());
      EXPECT_EQ(cfg.bodies.size(), 1u);  // second scene body
    }) << name;
  }
}

TEST(MultiBodyScenario, TandemCylindersRunsWithPerBodyCoefficients) {
  cmdp::ThreadPool pool(0);
  scenario::ScenarioSpec spec = scenario::get_scenario("tandem_cylinders");
  scenario::apply_override(spec, "steps", "20");
  scenario::apply_override(spec, "ppc", "4");
  scenario::Runner runner(spec);
  const scenario::RunResult r = runner.run(&pool);

  ASSERT_TRUE(r.surface.has_value());
  EXPECT_EQ(r.surface->segments.size(), 72u);  // 2 x 36 facets
  ASSERT_EQ(r.surfaces.size(), 2u);
  for (const core::SurfaceStats& b : r.surfaces) {
    EXPECT_EQ(b.segments.size(), 36u);
    EXPECT_GT(b.cd, 0.0);
    EXPECT_EQ(b.body_name, "cylinder");
  }
  // The scene totals integrate both bodies' forces: total force equals the
  // sum of the per-body forces.
  EXPECT_NEAR(r.surface->fx, r.surfaces[0].fx + r.surfaces[1].fx, 1e-12);
  EXPECT_NEAR(r.surface->fy, r.surfaces[0].fy + r.surfaces[1].fy, 1e-12);

  // Per-body coefficients reach the JSON summary.
  const std::string json = scenario::JsonSummarySink::to_json(r);
  EXPECT_NE(json.find("\"bodies\": ["), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"body0\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"body1\""), std::string::npos);

  // ... and the multi-body CSV leads with body/name columns.
  std::ostringstream os;
  cmdsmc::io::write_scene_surface_csv(os, r.surfaces);
  EXPECT_NE(os.str().find("body,name,segment,"), std::string::npos);
  EXPECT_NE(os.str().find("# body1 name=cylinder"), std::string::npos);
}

TEST(MultiBodyScenario, BodyNOverridesGrowAndAddressTheBodyList) {
  scenario::ScenarioSpec spec = scenario::get_scenario("wedge-mach4");
  ASSERT_EQ(spec.bodies.size(), 1u);
  // body.* and body0.* address the same body.
  scenario::apply_override(spec, "body.kind", "cylinder");
  scenario::apply_override(spec, "body0.x0", "30");
  scenario::apply_override(spec, "body0.y0", "32");
  scenario::apply_override(spec, "body.radius", "5");
  // Mentioning body1/body2 grows the list.
  scenario::apply_override(spec, "body1.kind", "cylinder");
  scenario::apply_override(spec, "body1.x0", "60");
  scenario::apply_override(spec, "body1.y0", "32");
  scenario::apply_override(spec, "body1.radius", "4");
  scenario::apply_override(spec, "body2.kind", "flat_plate");
  scenario::apply_override(spec, "body2.x0", "75");
  scenario::apply_override(spec, "body2.y0", "20");
  scenario::apply_override(spec, "body2.chord", "10");
  scenario::apply_override(spec, "body2.thickness", "1");
  scenario::apply_override(spec, "has_wedge", "false");
  ASSERT_EQ(spec.bodies.size(), 3u);
  EXPECT_EQ(spec.bodies[0].kind, scenario::BodyKind::kCylinder);
  EXPECT_DOUBLE_EQ(spec.bodies[0].radius, 5.0);
  EXPECT_DOUBLE_EQ(spec.bodies[1].x0, 60.0);
  EXPECT_EQ(spec.bodies[2].kind, scenario::BodyKind::kFlatPlate);

  const core::SimConfig cfg = spec.build_config();
  ASSERT_TRUE(cfg.body.has_value());
  EXPECT_EQ(cfg.bodies.size(), 2u);
  cmdp::ThreadPool pool(2);
  core::SimulationD sim(cfg, &pool);
  EXPECT_EQ(sim.scene().body_count(), 3);
  EXPECT_EQ(sim.scene().total_segments(),
            sim.scene().body(0).segment_count() +
                sim.scene().body(1).segment_count() + 4);
}

TEST(MultiBodyScenario, RejectsUnknownBodyKeysAndBadIndices) {
  scenario::ScenarioSpec spec = scenario::get_scenario("tandem_cylinders");
  EXPECT_THROW(scenario::apply_override(spec, "body1.typo", "1"),
               cli::ArgError);
  EXPECT_THROW(scenario::apply_override(spec, "body20.radius", "2"),
               cli::ArgError);
  EXPECT_THROW(scenario::apply_override(spec, "body1.kind", "sphere"),
               cli::ArgError);
  // The error message enumerates the valid body keys.
  try {
    scenario::apply_override(spec, "body1.typo", "1");
    FAIL() << "expected ArgError";
  } catch (const cli::ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("radius"), std::string::npos);
  }
  // Advertised body keys all have help text.
  EXPECT_FALSE(scenario::override_help("body.kind").empty());
  EXPECT_FALSE(scenario::override_help("body3.radius").empty());
}

TEST(MultiBodyScenario, GlobalTwallReachesBodiesAddedLater) {
  // `twall=` must not be order-dependent: a body appended by a later
  // bodyN.* override still inherits the global wall-temperature ratio.
  scenario::ScenarioSpec spec = scenario::get_scenario("cylinder-mach10");
  scenario::apply_override(spec, "twall", "0.5");
  scenario::apply_override(spec, "body1.kind", "cylinder");
  scenario::apply_override(spec, "body1.x0", "72");
  scenario::apply_override(spec, "body1.y0", "32");
  scenario::apply_override(spec, "body1.radius", "4");
  scenario::apply_override(spec, "body1.wall", "diffuse_isothermal");
  ASSERT_EQ(spec.bodies.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.bodies[1].wall_temperature_ratio, 0.5);
  // An explicit per-body override still wins.
  scenario::apply_override(spec, "body1.twall", "0.25");
  const core::SimConfig cfg = spec.build_config();
  ASSERT_EQ(cfg.bodies.size(), 1u);
  EXPECT_NEAR(cfg.bodies[0].segments()[0].wall_sigma,
              cfg.sigma * std::sqrt(0.25), 1e-12);
}

TEST(MultiBodyScenario, WellSeparatedCylindersMatchSingleCylinderDrag) {
  // Superposition sanity: two cylinders placed side by side, far enough
  // apart that neither sits in the other's disturbance, must each report
  // the single-cylinder Cd within statistical noise.
  cmdp::ThreadPool pool(0);
  auto configure = [](scenario::ScenarioSpec& spec) {
    scenario::apply_override(spec, "steps", "120");
    scenario::apply_override(spec, "ppc", "6");
    scenario::apply_override(spec, "sinks", "none");
  };

  // Side-by-side pair (same x station, lateral separation ~2.7 diameters).
  scenario::ScenarioSpec pair = scenario::get_scenario("tandem_cylinders");
  configure(pair);
  scenario::apply_override(pair, "body0.x0", "36");
  scenario::apply_override(pair, "body0.y0", "16");
  scenario::apply_override(pair, "body1.x0", "36");
  scenario::apply_override(pair, "body1.y0", "48");
  const scenario::RunResult rp = scenario::Runner(pair).run(&pool);
  ASSERT_EQ(rp.surfaces.size(), 2u);

  // The same cylinder alone, mid-tunnel.
  scenario::ScenarioSpec solo = scenario::get_scenario("tandem_cylinders");
  configure(solo);
  scenario::apply_override(solo, "body0.x0", "36");
  scenario::apply_override(solo, "body0.y0", "32");
  scenario::apply_override(solo, "body1.kind", "none");
  const scenario::RunResult rs = scenario::Runner(solo).run(&pool);
  ASSERT_EQ(rs.surfaces.size(), 1u);
  const double cd_solo = rs.surfaces[0].cd;
  ASSERT_GT(cd_solo, 0.0);

  for (const core::SurfaceStats& b : rp.surfaces) {
    EXPECT_NEAR(b.cd / cd_solo, 1.0, 0.10)
        << "body " << b.body_index << " cd " << b.cd << " vs solo "
        << cd_solo;
  }
  // Mirror symmetry of the pair itself.
  EXPECT_NEAR(rp.surfaces[0].cd / rp.surfaces[1].cd, 1.0, 0.08);
}
