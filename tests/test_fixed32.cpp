#include "fixedpoint/fixed32.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/rng.h"

using cmdsmc::fixedpoint::Fixed32;
using cmdsmc::fixedpoint::dirty_bits;
using cmdsmc::fixedpoint::half_stochastic;
using cmdsmc::fixedpoint::half_truncate;

TEST(Fixed32, RoundTripConversion) {
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.5, 97.25, -127.125, 3.1415926}) {
    const Fixed32 f = Fixed32::from_double(v);
    EXPECT_NEAR(f.to_double(), v, 1.0 / (1 << 23)) << v;
  }
}

TEST(Fixed32, ResolutionIsTwoToMinus23) {
  const Fixed32 eps = Fixed32::from_raw(1);
  EXPECT_DOUBLE_EQ(eps.to_double(), std::ldexp(1.0, -23));
  // 23 fraction bits beats the IEEE single-precision mantissa granularity at
  // magnitude 1 (the paper's comparison).
  EXPECT_LE(eps.to_double(), std::ldexp(1.0, -23));
}

TEST(Fixed32, AdditionSubtractionExact) {
  cmdsmc::rng::SplitMix64 g(1);
  for (int i = 0; i < 1000; ++i) {
    const double a = (g.next_double() - 0.5) * 100.0;
    const double b = (g.next_double() - 0.5) * 100.0;
    const Fixed32 fa = Fixed32::from_double(a);
    const Fixed32 fb = Fixed32::from_double(b);
    // Fixed-point addition is exact: result equals the sum of the raws.
    EXPECT_EQ((fa + fb).raw, fa.raw + fb.raw);
    EXPECT_EQ((fa - fb).raw, fa.raw - fb.raw);
    EXPECT_EQ((-fa).raw, -fa.raw);
  }
}

TEST(Fixed32, CompoundAssignment) {
  Fixed32 a = Fixed32::from_double(1.5);
  a += Fixed32::from_double(0.25);
  EXPECT_DOUBLE_EQ(a.to_double(), 1.75);
  a -= Fixed32::from_double(2.0);
  EXPECT_DOUBLE_EQ(a.to_double(), -0.25);
}

TEST(Fixed32, Comparisons) {
  const Fixed32 a = Fixed32::from_double(1.0);
  const Fixed32 b = Fixed32::from_double(2.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, Fixed32::from_double(1.0));
  EXPECT_GT(b, a);
}

TEST(Fixed32, MulRoundsToNearest) {
  const Fixed32 a = Fixed32::from_double(3.0);
  const Fixed32 b = Fixed32::from_double(0.5);
  EXPECT_DOUBLE_EQ(mul(a, b).to_double(), 1.5);
  const Fixed32 c = Fixed32::from_double(-2.25);
  EXPECT_DOUBLE_EQ(mul(c, b).to_double(), -1.125);
}

TEST(Fixed32, TruncatingHalveRoundsTowardZero) {
  // 3 raw units / 2 -> 1 (loses half an ulp of magnitude)
  EXPECT_EQ(half_truncate(Fixed32::from_raw(3)).raw, 1);
  // -3 raw units / 2 -> -1 (also loses magnitude: the systematic energy sink)
  EXPECT_EQ(half_truncate(Fixed32::from_raw(-3)).raw, -1);
  // Even values halve exactly.
  EXPECT_EQ(half_truncate(Fixed32::from_raw(8)).raw, 4);
  EXPECT_EQ(half_truncate(Fixed32::from_raw(-8)).raw, -4);
}

TEST(Fixed32, StochasticHalveIsExactInExpectation) {
  // For an odd raw value v, (v+0)>>1 and (v+1)>>1 bracket v/2; averaging the
  // two bit choices gives exactly v/2.
  for (std::int32_t v : {3, 5, -3, -5, 101, -999}) {
    const double lo = half_stochastic(Fixed32::from_raw(v), 0).raw;
    const double hi = half_stochastic(Fixed32::from_raw(v), 1).raw;
    EXPECT_DOUBLE_EQ(0.5 * (lo + hi), v / 2.0) << v;
  }
}

TEST(Fixed32, StochasticHalveMatchesTruncateOnEvenValues) {
  for (std::int32_t v : {4, -4, 1024, -65536}) {
    EXPECT_EQ(half_stochastic(Fixed32::from_raw(v), 0).raw,
              half_truncate(Fixed32::from_raw(v)).raw);
    EXPECT_EQ(half_stochastic(Fixed32::from_raw(v), 1).raw,
              half_truncate(Fixed32::from_raw(v)).raw);
  }
}

TEST(Fixed32, TruncatingHalvingShrinksMagnitudeStochasticDoesNot) {
  // The paper's observation in miniature: truncated halving systematically
  // shrinks magnitudes (energy), stochastic rounding is unbiased.
  cmdsmc::rng::SplitMix64 g(2);
  double trunc_mag = 0.0;
  double stoch_val = 0.0;
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    const auto raw = static_cast<std::int32_t>(g.next_below(1 << 20)) -
                     (1 << 19);
    const double exact = raw / 2.0;
    trunc_mag +=
        std::abs(static_cast<double>(half_truncate(Fixed32::from_raw(raw)).raw)) -
        std::abs(exact);
    stoch_val +=
        half_stochastic(Fixed32::from_raw(raw), g.next_u64() & 1).raw - exact;
  }
  trunc_mag /= kTrials;
  stoch_val /= kTrials;
  EXPECT_LT(trunc_mag, -0.2);          // ~ -0.25 ulp magnitude bias
  EXPECT_NEAR(stoch_val, 0.0, 0.02);   // unbiased in value
}

TEST(Fixed32, DirtyBitsExtractLowOrderBits) {
  const Fixed32 v = Fixed32::from_raw(0b1011011);
  EXPECT_EQ(dirty_bits(v, 3), 0b011u);
  EXPECT_EQ(dirty_bits(v, 7), 0b1011011u);
  EXPECT_EQ(dirty_bits(Fixed32::from_raw(-1), 5), 31u);
}

TEST(Fixed32, DirtyBitsOfThermalStatesLookUniformEnough) {
  // Low bits of a Gaussian-ish population should be close to uniform: the
  // paper's justification for the "quick but dirty" source.
  cmdsmc::rng::SplitMix64 g(3);
  int ones = 0;
  const int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    const Fixed32 v = Fixed32::from_double((g.next_double() - 0.5) * 2.0);
    ones += dirty_bits(v, 1);
  }
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.5, 0.02);
}
