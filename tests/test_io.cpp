#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/contour.h"
#include "io/csv.h"

namespace io = cmdsmc::io;
namespace core = cmdsmc::core;

namespace {

core::FieldStats make_field(int nx, int ny) {
  core::FieldStats f;
  f.grid = {nx, ny, 0};
  f.samples = 1;
  const auto n = static_cast<std::size_t>(nx * ny);
  f.density.assign(n, 0.0);
  f.ux.assign(n, 0.0);
  f.uy.assign(n, 0.0);
  f.t_trans.assign(n, 0.0);
  f.t_rot.assign(n, 0.0);
  f.t_total.assign(n, 0.0);
  f.mean_count.assign(n, 0.0);
  return f;
}

}  // namespace

TEST(Contour, RendersExpectedShapeAndGlyphs) {
  auto f = make_field(4, 2);
  // Bottom row: low values; top row: high values.
  for (int ix = 0; ix < 4; ++ix) {
    f.density[f.grid.index(ix, 0)] = 0.0;
    f.density[f.grid.index(ix, 1)] = 4.0;
  }
  io::ContourOptions opt;
  opt.vmin = 0.0;
  opt.vmax = 4.0;
  const std::string map = io::render_ascii(f, f.density, opt);
  // Two rows of four glyphs plus newlines; y increases upward so the high
  // row prints first.
  EXPECT_EQ(map, "@@@@\n    \n");
}

TEST(Contour, ClampsOutOfRangeValues) {
  auto f = make_field(2, 1);
  f.density[0] = -5.0;
  f.density[1] = 99.0;
  io::ContourOptions opt;
  opt.vmin = 0.0;
  opt.vmax = 1.0;
  const std::string map = io::render_ascii(f, f.density, opt);
  EXPECT_EQ(map, " @\n");
}

TEST(Contour, WindowSelectsSubregion) {
  auto f = make_field(10, 10);
  f.density[f.grid.index(5, 5)] = 1.0;
  io::ContourOptions opt;
  opt.vmin = 0.0;
  opt.vmax = 1.0;
  opt.x0 = 5;
  opt.y0 = 5;
  opt.x1 = 6;
  opt.y1 = 6;
  EXPECT_EQ(io::render_ascii(f, f.density, opt), "@\n");
}

TEST(Contour, Profiles) {
  auto f = make_field(3, 4);
  for (int iy = 0; iy < 4; ++iy)
    f.density[f.grid.index(1, iy)] = iy * 1.0;
  const auto col = io::column_profile(f, f.density, 1);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_EQ(col[0], 0.0);
  EXPECT_EQ(col[3], 3.0);
  const auto row = io::row_profile(f, f.density, 2);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], 2.0);
}

TEST(CsvTable, WritesHeaderAndRows) {
  io::CsvTable t({"a", "b"});
  t.add_row({1.0, 2.5});
  t.add_row({-3.0, 4.0});
  std::ostringstream os;
  t.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n-3,4\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(CsvTable, RejectsMismatchedRow) {
  io::CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
}

TEST(CsvTable, WriteFileRoundTrips) {
  io::CsvTable t({"x"});
  t.add_row({42.0});
  const std::string path = testing::TempDir() + "/cmdsmc_test.csv";
  t.write_file(path);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x");
  std::getline(is, line);
  EXPECT_EQ(line, "42");
  std::remove(path.c_str());
}

TEST(FieldCsv, EmitsOneRowPerCell) {
  auto f = make_field(3, 2);
  f.density[f.grid.index(2, 1)] = 7.0;
  std::ostringstream os;
  io::write_field_csv(os, f, f.density, "rho");
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x,y,rho");
  int rows = 0;
  std::string last;
  while (std::getline(is, line)) {
    ++rows;
    last = line;
  }
  EXPECT_EQ(rows, 6);
  EXPECT_EQ(last, "2.5,1.5,7");
}
