// geom::Scene: accelerated multi-body queries must agree exactly with the
// brute-force per-body scans, open fractions must compose, and the facet
// tie-break fixes must hold at exact vertex coordinates.
#include "geom/scene.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/boundary.h"
#include "rng/rng.h"

namespace geom = cmdsmc::geom;

namespace {

constexpr double kRad = std::numbers::pi / 180.0;

std::vector<geom::Body> tandem_bodies() {
  std::vector<geom::Body> v;
  v.push_back(geom::Body::Cylinder(24.0, 20.0, 6.0, 24));
  v.push_back(geom::Body::Cylinder(56.0, 20.0, 6.0, 24));
  return v;
}

// Brute-force reference: first body strictly containing the point.
int brute_inside(const std::vector<geom::Body>& bodies, double x, double y) {
  for (std::size_t b = 0; b < bodies.size(); ++b)
    if (bodies[b].inside(x, y)) return static_cast<int>(b);
  return -1;
}

}  // namespace

TEST(Scene, EmptySceneMissesEverything) {
  const geom::Scene s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_segments(), 0);
  EXPECT_FALSE(s.inside(1.0, 1.0));
  EXPECT_FALSE(s.nearest_face(1.0, 1.0).has_value());
  EXPECT_FALSE(s.segment_hit(0.0, 0.0, 10.0, 10.0).has_value());
}

TEST(Scene, FlatSegmentIndexing) {
  const geom::Scene s(tandem_bodies());
  EXPECT_EQ(s.body_count(), 2);
  EXPECT_EQ(s.total_segments(), 48);
  EXPECT_EQ(s.segment_base(0), 0);
  EXPECT_EQ(s.segment_base(1), 24);
  EXPECT_EQ(s.body_of_segment(0), 0);
  EXPECT_EQ(s.body_of_segment(23), 0);
  EXPECT_EQ(s.body_of_segment(24), 1);
  EXPECT_EQ(s.body_of_segment(47), 1);
  EXPECT_EQ(s.body_of_segment(48), -1);
  EXPECT_EQ(s.body_of_segment(-1), -1);
}

TEST(Scene, InsideAgreesWithBruteForceEverywhere) {
  // Mixed shapes, including a wedge with an embedded floor edge.
  std::vector<geom::Body> bodies;
  bodies.push_back(geom::Body::Wedge(8.0, 10.0, 30.0 * kRad));
  bodies.push_back(geom::Body::Cylinder(40.0, 18.0, 5.0, 20));
  bodies.push_back(
      geom::Body::FlatPlate(22.0, 26.0, 12.0, 1.5, 12.0 * kRad));
  const geom::Scene scene(bodies);
  cmdsmc::rng::SplitMix64 g(42);
  for (int trial = 0; trial < 200000; ++trial) {
    const double x = g.next_double() * 60.0 - 2.0;
    const double y = g.next_double() * 40.0 - 2.0;
    ASSERT_EQ(scene.inside_body(x, y), brute_inside(bodies, x, y))
        << x << "," << y;
  }
}

TEST(Scene, NearestFaceMatchesSingleBodyQueriesBitForBit) {
  // The one-body Scene must answer exactly like the Body it wraps: that is
  // what keeps the single-body golden runs pinned.
  const geom::Body cyl = geom::Body::Cylinder(20.0, 16.0, 6.0, 16);
  const geom::Scene scene(std::vector<geom::Body>{cyl});
  cmdsmc::rng::SplitMix64 g(7);
  int hits = 0;
  for (int trial = 0; trial < 50000; ++trial) {
    const double x = g.next_double() * 40.0;
    const double y = g.next_double() * 32.0;
    const auto sh = scene.nearest_face(x, y);
    const auto bh = cyl.nearest_face(x, y);
    ASSERT_EQ(sh.has_value(), bh.has_value());
    if (!sh) continue;
    ++hits;
    EXPECT_EQ(sh->body, 0);
    EXPECT_EQ(sh->flat_segment, bh->segment);
    EXPECT_EQ(sh->hit.segment, bh->segment);
    EXPECT_EQ(sh->hit.nx, bh->nx);
    EXPECT_EQ(sh->hit.ny, bh->ny);
    EXPECT_EQ(sh->hit.depth, bh->depth);
  }
  EXPECT_GT(hits, 1000);
}

TEST(Scene, NearestFaceIdentifiesTheBodyAndFlatSegment) {
  const geom::Scene s(tandem_bodies());
  const auto h0 = s.nearest_face(24.0, 20.0);  // center of body 0
  ASSERT_TRUE(h0.has_value());
  EXPECT_EQ(h0->body, 0);
  EXPECT_EQ(h0->flat_segment, h0->hit.segment);
  const auto h1 = s.nearest_face(56.0, 20.0);  // center of body 1
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(h1->body, 1);
  EXPECT_EQ(h1->flat_segment, 24 + h1->hit.segment);
  EXPECT_FALSE(s.nearest_face(40.0, 20.0).has_value());  // between bodies
}

TEST(Scene, OpenFractionSingleBodyIsBitIdentical) {
  const geom::Body cyl = geom::Body::Cylinder(20.0, 16.0, 6.0, 32);
  const geom::Scene scene(std::vector<geom::Body>{cyl});
  const geom::Grid grid{48, 32, 0};
  const auto ts = scene.open_fraction_table(grid);
  const auto tb = cyl.open_fraction_table(grid);
  ASSERT_EQ(ts.size(), tb.size());
  for (std::size_t i = 0; i < ts.size(); ++i)
    ASSERT_EQ(ts[i], tb[i]) << "cell " << i;
}

TEST(Scene, OpenFractionAddsSolidAreasOfDisjointBodies) {
  const geom::Scene scene(tandem_bodies());
  const geom::Grid grid{80, 40, 0};
  const auto table = scene.open_fraction_table(grid);
  double solid = 0.0;
  for (double f : table) solid += 1.0 - f;
  EXPECT_NEAR(solid,
              scene.body(0).area() + scene.body(1).area(), 1e-6);
}

TEST(Scene, SegmentHitFindsTheEarliestFacetCrossing) {
  const geom::Scene s(tandem_bodies());
  // Horizontal ray through both cylinders: first crossing is body 0's
  // windward side at x = 24 - 6 (up to faceting).
  const auto hit = s.segment_hit(0.0, 20.0, 80.0, 20.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, 0);
  EXPECT_NEAR(hit->x, 18.0, 0.3);  // 24-facet polygon slightly inside r=6
  EXPECT_NEAR(hit->y, 20.0, 1e-12);
  // Starting between the bodies: the aft cylinder is hit first.
  const auto hit2 = s.segment_hit(40.0, 20.0, 80.0, 20.0);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->body, 1);
  // A segment clear of everything misses.
  EXPECT_FALSE(s.segment_hit(0.0, 35.0, 80.0, 35.0).has_value());
  // A short segment entirely inside the gap misses.
  EXPECT_FALSE(s.segment_hit(34.0, 20.0, 46.0, 20.0).has_value());
}

TEST(Scene, GeometryHashDistinguishesScenes) {
  const geom::Scene a(tandem_bodies());
  const geom::Scene b(tandem_bodies());
  EXPECT_EQ(a.geometry_hash(), b.geometry_hash());
  std::vector<geom::Body> moved;
  moved.push_back(geom::Body::Cylinder(24.0, 20.0, 6.0, 24));
  moved.push_back(geom::Body::Cylinder(56.0, 20.5, 6.0, 24));  // shifted
  EXPECT_NE(a.geometry_hash(),
            geom::Scene(std::move(moved)).geometry_hash());
  std::vector<geom::Body> rewalled = tandem_bodies();
  rewalled[1].set_wall_model(geom::WallModel::kDiffuseIsothermal, 0.2);
  EXPECT_NE(a.geometry_hash(),
            geom::Scene(std::move(rewalled)).geometry_hash());
  // One body vs two.
  std::vector<geom::Body> one;
  one.push_back(geom::Body::Cylinder(24.0, 20.0, 6.0, 24));
  EXPECT_NE(a.geometry_hash(), geom::Scene(std::move(one)).geometry_hash());
}

// --- Vertex/edge tie-break regressions (the tunneling bugfix) ----------------

TEST(SceneTieBreak, ExactWedgeVerticesAreClaimed) {
  const geom::Body w = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  const double h = 25.0 * std::tan(30.0 * kRad);
  // Apex and leading-edge vertices, at their exact coordinates.
  EXPECT_TRUE(w.inside(45.0, h));    // apex (shared by hypotenuse + back)
  EXPECT_TRUE(w.inside(20.0, 0.0));  // leading edge (floor + hypotenuse)
  EXPECT_TRUE(w.inside(45.0, 0.0));  // trailing corner (floor + back face)
  // On-edge midpoints.
  EXPECT_TRUE(w.inside(45.0, 0.5 * h));  // back face (x == 45 exactly)
  // Clearly-outside points stay outside.
  EXPECT_FALSE(w.inside(19.999999, 0.0));
  EXPECT_FALSE(w.inside(45.000001, 0.5 * h));
  // The claim is actionable: nearest_face resolves deterministically to the
  // lowest-index non-embedded face.
  const auto hit = w.nearest_face(45.0, h);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->segment, 1);  // back face (floor is embedded, seg 0)
}

TEST(SceneTieBreak, ExactCylinderAndBiconicVerticesAreClaimed) {
  const geom::Body cyl = geom::Body::Cylinder(24.0, 24.0, 6.0, 20);
  // Every polygon vertex, at its exact floating-point coordinates.
  for (const geom::BodySegment& s : cyl.segments()) {
    EXPECT_TRUE(cyl.inside(s.x0, s.y0)) << s.x0 << "," << s.y0;
    const auto hit = cyl.nearest_face(s.x0, s.y0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_NEAR(hit->depth, 0.0, 1e-12);
  }
  const geom::Body bic =
      geom::Body::Biconic(10.0, 24.0, 8.0, 25.0 * kRad, 10.0, 10.0 * kRad);
  for (const geom::BodySegment& s : bic.segments()) {
    EXPECT_TRUE(bic.inside(s.x0, s.y0)) << s.x0 << "," << s.y0;
    EXPECT_TRUE(bic.nearest_face(s.x0, s.y0).has_value());
  }
}

TEST(SceneTieBreak, SurfaceRidingParticleCannotTunnel) {
  // The original bug: a particle sliding exactly along the floor (y == 0)
  // into the wedge footprint was inside no face's strict half-plane and
  // sailed through the solid.  It must now be reflected (or at minimum
  // ejected by the defensive clamp) and never end up inside.
  const geom::Body w = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  const geom::Scene scene(std::vector<geom::Body>{w});
  geom::BoundaryConfig bc;
  bc.x_max = 98.0;
  bc.y_max = 64.0;
  bc.scene = &scene;
  for (double x : {20.0, 22.0, 30.0, 44.0, 45.0}) {
    geom::ParticleState p{x, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0};
    ASSERT_TRUE(geom::enforce_boundaries(p, bc, 1234));
    // At worst the particle grazes the surface afterwards; it must never
    // remain buried in the solid.
    if (const auto hit = w.nearest_face(p.x, p.y)) {
      EXPECT_GT(hit->depth, -1e-9) << x << " -> " << p.x << "," << p.y;
    }
  }
  // A particle dropped exactly on the cylinder's topmost vertex moving
  // straight down must reflect off the surface, not pass into the solid.
  const geom::Body cyl = geom::Body::Cylinder(40.0, 20.0, 6.0, 16);
  const geom::Scene cs(std::vector<geom::Body>{cyl});
  geom::BoundaryConfig bc2;
  bc2.x_max = 98.0;
  bc2.y_max = 64.0;
  bc2.scene = &cs;
  geom::ParticleState q{40.0 + 6.0 * std::cos(std::numbers::pi / 2),
                        20.0 + 6.0 * std::sin(std::numbers::pi / 2),
                        0.0, 0.0, -0.4, 0.0, 0.0, 0.0};
  ASSERT_TRUE(geom::enforce_boundaries(q, bc2, 99));
  EXPECT_FALSE(cyl.inside(q.x, q.y - 1e-9));
  EXPECT_GE(q.uy, 0.0);  // moving away from the body again
}
