// Fleet scheduler: tiny sweeps end to end — record counts, failure
// isolation, cache replay, kill/resume via the max_jobs budget, and the
// bit-identity of a fleet job vs the same spec run standalone.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "cmdp/thread_pool.h"
#include "fleet/results.h"
#include "fleet/scheduler.h"
#include "fleet/sweep.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace fleet = cmdsmc::fleet;
namespace scenario = cmdsmc::scenario;
namespace cli = cmdsmc::cli;
namespace cmdp = cmdsmc::cmdp;
namespace fs = std::filesystem;

namespace {

// A cylinder flow small enough that a job takes milliseconds but still has
// a body scene, so the records carry surface metrics (Cd/heat).  The grid
// must keep the default cylinder (center 32,32 radius 8) inside.
fleet::SweepRequest tiny_request() {
  fleet::SweepRequest req;
  req.scenario = "cylinder-mach10";
  req.fixed = {{"nx", "64"}, {"ny", "48"}, {"ppc", "2"},
               {"steps", "3"}, {"avg", "2"}};
  return req;
}

std::string fresh_dir(const char* tag) {
  // Sequential appends: GCC 12's -Wrestrict trips on chained operator+.
  std::string dir = testing::TempDir();
  dir += "/cmdsmc_fleet_";
  dir += tag;
  fs::remove_all(dir);
  return dir;
}

const fleet::JobRecord* find_index(const std::vector<fleet::JobRecord>& recs,
                                   std::size_t index) {
  for (const auto& r : recs)
    if (r.index == index) return &r;
  return nullptr;
}

TEST(FleetScheduler, RunsAllJobsAndWritesArtifacts) {
  const std::string dir = fresh_dir("run");
  fleet::SweepRequest req = tiny_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,5"));
  req.axes.push_back(fleet::parse_sweep_axis("sweep:twall=0.5,1"));
  const auto jobs = fleet::expand_sweep(req);
  ASSERT_EQ(jobs.size(), 4u);

  fleet::FleetOptions options;
  options.fleet_threads = 2;
  options.dir = dir;
  fleet::FleetScheduler scheduler(options);
  scheduler.submit(jobs);
  const fleet::FleetSummary summary = scheduler.finish();

  EXPECT_EQ(summary.jobs, 4u);
  EXPECT_EQ(summary.completed, 4u);
  EXPECT_EQ(summary.failed, 0u);
  EXPECT_GT(summary.jobs_per_second, 0.0);

  // Records come back in job-index order with live metrics.
  const auto& recs = scheduler.records();
  ASSERT_EQ(recs.size(), 4u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].index, i);
    EXPECT_EQ(recs[i].status, fleet::JobStatus::kDone);
    EXPECT_TRUE(recs[i].has_surface);
    EXPECT_GT(recs[i].flow, 0u);
    EXPECT_GT(recs[i].collisions, 0u);
    ASSERT_EQ(recs[i].params.size(), 2u);
  }

  // Manifest: one well-formed line per job; aggregate exists and carries
  // the table.
  const auto manifest = fleet::load_manifest(summary.manifest_path);
  EXPECT_EQ(manifest.size(), 4u);
  std::ifstream agg(summary.aggregate_path);
  ASSERT_TRUE(agg.good());
  std::stringstream buf;
  buf << agg.rdbuf();
  EXPECT_NE(buf.str().find("\"fleet\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"table\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"jobs\": 4"), std::string::npos);
  fs::remove_all(dir);
}

TEST(FleetScheduler, FailureIsolation) {
  const std::string dir = fresh_dir("fail");
  fleet::SweepRequest req = tiny_request();
  // mach=-1 parses as a sweep value but fails SimConfig::validate() inside
  // the job — exactly the "one bad job" case.
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,-1"));
  const auto jobs = fleet::expand_sweep(req);

  fleet::FleetOptions options;
  options.fleet_threads = 2;
  options.dir = dir;
  fleet::FleetScheduler scheduler(options);
  scheduler.submit(jobs);
  const fleet::FleetSummary summary = scheduler.finish();

  EXPECT_EQ(summary.jobs, 2u);
  EXPECT_EQ(summary.completed, 1u);
  EXPECT_EQ(summary.failed, 1u);
  const fleet::JobRecord* bad = find_index(scheduler.records(), 1);
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->status, fleet::JobStatus::kFailed);
  EXPECT_FALSE(bad->error.empty());
  const fleet::JobRecord* good = find_index(scheduler.records(), 0);
  ASSERT_NE(good, nullptr);
  EXPECT_EQ(good->status, fleet::JobStatus::kDone);
  EXPECT_GT(good->collisions, 0u);
  fs::remove_all(dir);
}

TEST(FleetScheduler, SecondRunIsFullyCached) {
  const std::string dir = fresh_dir("cache");
  fleet::SweepRequest req = tiny_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,5"));
  const auto jobs = fleet::expand_sweep(req);

  fleet::FleetOptions options;
  options.fleet_threads = 2;
  options.dir = dir;
  std::vector<fleet::JobRecord> first;
  {
    fleet::FleetScheduler scheduler(options);
    scheduler.submit(jobs);
    const auto summary = scheduler.finish();
    EXPECT_EQ(summary.completed, 2u);
    first = scheduler.records();
  }
  {
    fleet::FleetScheduler scheduler(options);
    scheduler.submit(jobs);
    const auto summary = scheduler.finish();
    EXPECT_EQ(summary.jobs, 2u);
    EXPECT_EQ(summary.completed, 0u);
    EXPECT_EQ(summary.cached, 2u);
    // Cached metrics replay the original run exactly.
    for (std::size_t i = 0; i < 2; ++i) {
      const fleet::JobRecord* rec = find_index(scheduler.records(), i);
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(rec->status, fleet::JobStatus::kCached);
      EXPECT_EQ(rec->collisions, first[i].collisions);
      EXPECT_EQ(rec->candidates, first[i].candidates);
      EXPECT_EQ(rec->flow, first[i].flow);
      EXPECT_EQ(rec->seed, first[i].seed);
      EXPECT_DOUBLE_EQ(rec->cd, first[i].cd);
    }
  }
  fs::remove_all(dir);
}

TEST(FleetScheduler, CacheDisabledRerunsEverything) {
  const std::string dir = fresh_dir("nocache");
  const auto jobs = fleet::expand_sweep(tiny_request());
  fleet::FleetOptions options;
  options.fleet_threads = 1;
  options.dir = dir;
  options.cache = false;
  for (int pass = 0; pass < 2; ++pass) {
    fleet::FleetScheduler scheduler(options);
    scheduler.submit(jobs);
    const auto summary = scheduler.finish();
    EXPECT_EQ(summary.completed, 1u);
    EXPECT_EQ(summary.cached, 0u);
  }
  fs::remove_all(dir);
}

TEST(FleetScheduler, ResumeAfterPartialRunMatchesUninterrupted) {
  const std::string interrupted = fresh_dir("resume_a");
  const std::string uninterrupted = fresh_dir("resume_b");
  fleet::SweepRequest req = tiny_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,4,5,6"));
  const auto jobs = fleet::expand_sweep(req);
  ASSERT_EQ(jobs.size(), 4u);

  // "Killed" first pass: the budget stops the fleet after 2 fresh jobs, so
  // the manifest holds 2 completed records — the same state a kill -9
  // mid-sweep leaves behind (torn trailing lines are dropped on load).
  {
    fleet::FleetOptions options;
    options.fleet_threads = 1;  // deterministic: jobs 0,1 run; 2,3 skipped
    options.dir = interrupted;
    options.max_jobs = 2;
    fleet::FleetScheduler scheduler(options);
    scheduler.submit(jobs);
    const auto summary = scheduler.finish();
    EXPECT_EQ(summary.completed, 2u);
    EXPECT_EQ(summary.skipped, 2u);
  }
  // Restart: completed jobs replay from the manifest cache, the rest run.
  std::vector<fleet::JobRecord> resumed;
  {
    fleet::FleetOptions options;
    options.fleet_threads = 2;
    options.dir = interrupted;
    fleet::FleetScheduler scheduler(options);
    scheduler.submit(jobs);
    const auto summary = scheduler.finish();
    EXPECT_EQ(summary.cached, 2u);
    EXPECT_EQ(summary.completed, 2u);
    EXPECT_EQ(summary.failed, 0u);
    resumed = scheduler.records();
  }
  // Control: the same sweep run in one go.
  std::vector<fleet::JobRecord> control;
  {
    fleet::FleetOptions options;
    options.fleet_threads = 2;
    options.dir = uninterrupted;
    fleet::FleetScheduler scheduler(options);
    scheduler.submit(jobs);
    scheduler.finish();
    control = scheduler.records();
  }
  ASSERT_EQ(resumed.size(), control.size());
  for (std::size_t i = 0; i < control.size(); ++i) {
    const fleet::JobRecord* r = find_index(resumed, i);
    const fleet::JobRecord* c = find_index(control, i);
    ASSERT_NE(r, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(r->seed, c->seed);
    EXPECT_EQ(r->hash, c->hash);
    EXPECT_EQ(r->collisions, c->collisions) << "job " << i;
    EXPECT_EQ(r->candidates, c->candidates) << "job " << i;
    EXPECT_EQ(r->flow, c->flow) << "job " << i;
    EXPECT_DOUBLE_EQ(r->cd, c->cd) << "job " << i;
    EXPECT_DOUBLE_EQ(r->heat_total, c->heat_total) << "job " << i;
  }
  fs::remove_all(interrupted);
  fs::remove_all(uninterrupted);
}

TEST(FleetScheduler, JobBitIdenticalToStandaloneRun) {
  const std::string dir = fresh_dir("golden");
  fleet::SweepRequest req = tiny_request();
  req.axes.push_back(fleet::parse_sweep_axis("sweep:mach=3,5"));
  const auto jobs = fleet::expand_sweep(req);

  fleet::FleetOptions options;
  options.fleet_threads = 2;
  options.job_threads = 1;
  options.dir = dir;
  fleet::FleetScheduler scheduler(options);
  scheduler.submit(jobs);
  scheduler.finish();

  // Re-run job 1 standalone, the way `cmdsmc run wedge-mach4 <overrides>
  // seed=<derived>` would, on a pool of a *different* width: physics is
  // thread-count invariant, so everything must match exactly.
  const fleet::FleetJob& job = jobs[1];
  scenario::ScenarioSpec spec = scenario::get_scenario(job.scenario);
  scenario::apply_overrides(spec, job.overrides);
  spec.config.seed = job.seed;
  cmdp::ThreadPool pool(3);
  scenario::Runner runner(std::move(spec));
  const scenario::RunResult r = runner.run(&pool);

  const fleet::JobRecord* rec = find_index(scheduler.records(), 1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->collisions, r.counters.collisions);
  EXPECT_EQ(rec->candidates, r.counters.candidates);
  EXPECT_EQ(rec->flow, r.flow_count);
  ASSERT_TRUE(r.surface.has_value());
  EXPECT_DOUBLE_EQ(rec->cd, r.surface->cd);
  EXPECT_DOUBLE_EQ(rec->cl, r.surface->cl);
  EXPECT_DOUBLE_EQ(rec->heat_total, r.surface->heat_total);
  fs::remove_all(dir);
}

TEST(FleetScheduler, StreamEmitsOneLinePerJob) {
  const std::string dir = fresh_dir("stream");
  const auto jobs = fleet::expand_sweep(tiny_request());
  std::ostringstream stream;
  fleet::FleetOptions options;
  options.fleet_threads = 1;
  options.dir = dir;
  options.stream = &stream;
  fleet::FleetScheduler scheduler(options);
  scheduler.submit(jobs);
  scheduler.finish();

  std::istringstream lines(stream.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(fleet::JobRecord::from_json_line(line).has_value())
        << "unparseable stream line: " << line;
  }
  EXPECT_EQ(n, 1u);
  fs::remove_all(dir);
}

TEST(FleetRecord, JsonRoundTrip) {
  fleet::JobRecord rec;
  rec.index = 7;
  rec.name = "wedge-mach4_job0007_mach-5";
  rec.scenario = "wedge-mach4";
  rec.hash = "00deadbeef00cafe";
  rec.status = fleet::JobStatus::kDone;
  rec.seed = 0x123456789abcdef0ull;
  rec.params = {{"mach", "5"}, {"twall", "0.5"}};
  rec.seconds = 1.25;
  rec.has_surface = true;
  rec.cd = 1.875;
  rec.cl = -0.125;
  rec.cp_max = 2.5;
  rec.heat_total = -3.0;
  rec.collisions = 123456789;
  rec.candidates = 987654321;
  rec.flow = 424242;
  rec.steps = 25;
  rec.usec_per_particle_step = 0.75;

  const auto parsed = fleet::JobRecord::from_json_line(rec.to_json_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->index, rec.index);
  EXPECT_EQ(parsed->name, rec.name);
  EXPECT_EQ(parsed->scenario, rec.scenario);
  EXPECT_EQ(parsed->hash, rec.hash);
  EXPECT_EQ(parsed->status, rec.status);
  EXPECT_EQ(parsed->seed, rec.seed);
  ASSERT_EQ(parsed->params.size(), 2u);
  EXPECT_EQ(parsed->params[1].key, "twall");
  EXPECT_EQ(parsed->params[1].value, "0.5");
  EXPECT_TRUE(parsed->has_surface);
  EXPECT_DOUBLE_EQ(parsed->cd, rec.cd);
  EXPECT_DOUBLE_EQ(parsed->cl, rec.cl);
  EXPECT_DOUBLE_EQ(parsed->heat_total, rec.heat_total);
  EXPECT_EQ(parsed->collisions, rec.collisions);
  EXPECT_EQ(parsed->candidates, rec.candidates);
  EXPECT_EQ(parsed->flow, rec.flow);
  EXPECT_EQ(parsed->steps, rec.steps);

  // Errors with JSON-hostile characters survive the trip.
  fleet::JobRecord failed;
  failed.index = 1;
  failed.name = "j";
  failed.scenario = "s";
  failed.hash = "h";
  failed.status = fleet::JobStatus::kFailed;
  failed.seed = 1;
  failed.error = "bad \"value\"\nwith\\escapes";
  const auto fparsed =
      fleet::JobRecord::from_json_line(failed.to_json_line());
  ASSERT_TRUE(fparsed.has_value());
  EXPECT_EQ(fparsed->status, fleet::JobStatus::kFailed);
  EXPECT_NE(fparsed->error.find("bad \"value\""), std::string::npos);
}

TEST(FleetRecord, NonFiniteMetricsSerializeAsNull) {
  fleet::JobRecord rec;
  rec.index = 2;
  rec.name = "diverged";
  rec.scenario = "s";
  rec.hash = "h2";
  rec.status = fleet::JobStatus::kDone;
  rec.seed = 3;
  rec.has_surface = true;
  rec.cd = std::numeric_limits<double>::quiet_NaN();
  rec.heat_total = std::numeric_limits<double>::infinity();
  rec.cl = 0.5;

  const std::string line = rec.to_json_line();
  // 'nan'/'inf' are not JSON; non-finite metrics must come out as null.
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
  EXPECT_NE(line.find("\"cd\": null"), std::string::npos) << line;

  const auto parsed = fleet::JobRecord::from_json_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(std::isnan(parsed->cd));
  EXPECT_TRUE(std::isnan(parsed->heat_total));
  EXPECT_DOUBLE_EQ(parsed->cl, 0.5);
}

TEST(FleetRecord, ManifestSkipsTornLines) {
  const std::string path =
      testing::TempDir() + "/cmdsmc_fleet_torn_manifest.jsonl";
  fleet::JobRecord rec;
  rec.index = 0;
  rec.name = "j";
  rec.scenario = "s";
  rec.hash = "abc";
  rec.seed = 9;
  {
    std::ofstream out(path, std::ios::trunc);
    out << rec.to_json_line() << '\n';
    out << "{\"event\": \"job\", \"index\": 1, \"name\": \"tor";  // killed mid-write
  }
  const auto records = fleet::load_manifest(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].hash, "abc");
  fs::remove(path);
}

TEST(FleetOptions, OptionGrammar) {
  fleet::FleetOptions options;
  EXPECT_TRUE(fleet::apply_fleet_option(options, "fleet.threads", "4"));
  EXPECT_EQ(options.fleet_threads, 4u);
  EXPECT_TRUE(fleet::apply_fleet_option(options, "job.threads", "2"));
  EXPECT_EQ(options.job_threads, 2u);
  EXPECT_TRUE(fleet::apply_fleet_option(options, "fleet.dir", "/tmp/x"));
  EXPECT_EQ(options.dir, "/tmp/x");
  EXPECT_TRUE(fleet::apply_fleet_option(options, "fleet.cache", "0"));
  EXPECT_FALSE(options.cache);
  EXPECT_TRUE(fleet::apply_fleet_option(options, "fleet.max_jobs", "3"));
  EXPECT_EQ(options.max_jobs, 3u);

  // Non-fleet keys pass through untouched...
  EXPECT_FALSE(fleet::apply_fleet_option(options, "mach", "4"));
  // ...but a fleet-addressed typo is an error listing the valid keys.
  try {
    fleet::apply_fleet_option(options, "fleet.thread", "4");
    FAIL() << "unknown fleet key was accepted";
  } catch (const cli::ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("fleet.threads"), std::string::npos);
  }
  EXPECT_THROW(fleet::apply_fleet_option(options, "job.threads", "0"),
               cli::ArgError);
}

}  // namespace
