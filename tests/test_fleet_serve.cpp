// Serve mode: the request-line grammar, in-band rejects, the stdin
// service loop end to end, and spool-directory intake.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fleet/results.h"
#include "fleet/serve.h"

namespace fleet = cmdsmc::fleet;
namespace cli = cmdsmc::cli;
namespace fs = std::filesystem;

namespace {

const std::vector<cli::KeyValue> kTinyDefaults = {
    {"nx", "64"}, {"ny", "32"}, {"ppc", "2"}, {"steps", "3"}};

std::string fresh_dir(const char* tag) {
  // Sequential appends: GCC 12's -Wrestrict trips on chained operator+.
  std::string dir = testing::TempDir();
  dir += "/cmdsmc_serve_";
  dir += tag;
  fs::remove_all(dir);
  return dir;
}

struct ServeOutput {
  std::vector<fleet::JobRecord> jobs;
  std::vector<std::string> rejects;
};

ServeOutput parse_output(const std::string& text) {
  ServeOutput out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto rec = fleet::JobRecord::from_json_line(line);
    if (rec)
      out.jobs.push_back(*rec);
    else if (line.find("\"event\": \"reject\"") != std::string::npos)
      out.rejects.push_back(line);
    else
      ADD_FAILURE() << "unclassifiable serve output line: " << line;
  }
  return out;
}

TEST(ServeGrammar, ParseJobLine) {
  const auto jobs =
      fleet::parse_job_line("wedge-mach4 mach=5 sweep:twall=0.5,1",
                            kTinyDefaults);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].scenario, "wedge-mach4");
  // Defaults come first, then the line's fixed overrides, then the point.
  EXPECT_EQ(jobs[0].overrides.front().key, "nx");
  EXPECT_EQ(jobs[0].overrides.back().key, "twall");
  EXPECT_EQ(jobs[0].overrides.back().value, "0.5");
  EXPECT_EQ(jobs[1].overrides.back().value, "1");
  // Indices are local to the line, so an identical request hashes
  // identically regardless of what was submitted before it.
  EXPECT_EQ(jobs[0].index, 0u);
  EXPECT_EQ(jobs[1].index, 1u);
  const auto again =
      fleet::parse_job_line("wedge-mach4 mach=5 sweep:twall=0.5,1",
                            kTinyDefaults);
  EXPECT_EQ(jobs[0].hash, again[0].hash);
  EXPECT_EQ(jobs[1].hash, again[1].hash);
}

TEST(ServeGrammar, RejectsBadLines) {
  EXPECT_THROW(fleet::parse_job_line("   ", {}), cli::ArgError);
  EXPECT_THROW(fleet::parse_job_line("no-such-scenario", {}), cli::ArgError);
  EXPECT_THROW(fleet::parse_job_line("wedge-mach4 bogus=1", {}),
               cli::ArgError);
  EXPECT_THROW(fleet::parse_job_line("wedge-mach4 sweep:mach=", {}),
               cli::ArgError);
}

TEST(ServeGrammar, ServeOptionKeys) {
  fleet::ServeOptions options;
  EXPECT_TRUE(fleet::apply_serve_option(options, "spool", "/tmp/spool"));
  EXPECT_EQ(options.spool_dir, "/tmp/spool");
  EXPECT_TRUE(fleet::apply_serve_option(options, "poll_ms", "50"));
  EXPECT_EQ(options.poll_ms, 50);
  EXPECT_TRUE(fleet::apply_serve_option(options, "once", "1"));
  EXPECT_TRUE(options.once);
  EXPECT_FALSE(fleet::apply_serve_option(options, "mach", "4"));
  EXPECT_THROW(fleet::apply_serve_option(options, "poll_ms", "0"),
               cli::ArgError);
}

TEST(ServeLoop, StdinModeStreamsRecordsAndRejects) {
  const std::string dir = fresh_dir("stdin");
  fleet::ServeOptions options;
  options.fleet.fleet_threads = 2;
  options.fleet.dir = dir;
  options.defaults = kTinyDefaults;

  std::istringstream in(
      "# comment lines and blanks are skipped\n"
      "\n"
      "wedge-mach4 sweep:mach=3,5\n"
      "not-a-scenario mach=4\n"
      "wedge-mach4 mach=6\n");
  std::ostringstream out;
  const int rc = fleet::run_serve(options, in, out);
  EXPECT_EQ(rc, 0);

  const ServeOutput result = parse_output(out.str());
  EXPECT_EQ(result.jobs.size(), 3u);
  ASSERT_EQ(result.rejects.size(), 1u);
  EXPECT_NE(result.rejects[0].find("not-a-scenario"), std::string::npos);
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.status, fleet::JobStatus::kDone);
    EXPECT_GT(job.flow, 0u);
  }
  // The service also leaves the fleet artifacts behind.
  EXPECT_TRUE(fs::exists(dir + "/manifest.jsonl"));
  EXPECT_TRUE(fs::exists(dir + "/aggregate.json"));
  fs::remove_all(dir);
}

TEST(ServeLoop, RepeatedRequestIsServedFromCache) {
  const std::string dir = fresh_dir("cachehit");
  fleet::ServeOptions options;
  options.fleet.fleet_threads = 1;
  options.fleet.dir = dir;
  options.defaults = kTinyDefaults;

  std::istringstream in(
      "wedge-mach4 mach=5\n"
      "wedge-mach4 mach=5\n");
  std::ostringstream out;
  fleet::run_serve(options, in, out);

  const ServeOutput result = parse_output(out.str());
  ASSERT_EQ(result.jobs.size(), 2u);
  std::size_t done = 0, cached = 0;
  for (const auto& job : result.jobs) {
    if (job.status == fleet::JobStatus::kDone) ++done;
    if (job.status == fleet::JobStatus::kCached) ++cached;
  }
  EXPECT_EQ(done, 1u);
  EXPECT_EQ(cached, 1u);
  EXPECT_EQ(result.jobs[0].hash, result.jobs[1].hash);
  EXPECT_EQ(result.jobs[0].collisions, result.jobs[1].collisions);
  fs::remove_all(dir);
}

TEST(ServeLoop, SpoolModeProcessesAndRetiresJobFiles) {
  const std::string dir = fresh_dir("spool_out");
  const std::string spool = fresh_dir("spool_in");
  fs::create_directories(spool);
  {
    std::ofstream f(spool + "/a.job");
    f << "wedge-mach4 sweep:mach=3,5\n";
    f << "# trailing comment\n";
  }
  {
    std::ofstream f(spool + "/b.job");
    f << "bad-scenario\n";
  }

  fleet::ServeOptions options;
  options.fleet.fleet_threads = 2;
  options.fleet.dir = dir;
  options.defaults = kTinyDefaults;
  options.spool_dir = spool;
  options.once = true;

  std::istringstream in;  // unused in spool mode
  std::ostringstream out;
  const int rc = fleet::run_serve(options, in, out);
  EXPECT_EQ(rc, 0);

  const ServeOutput result = parse_output(out.str());
  EXPECT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.rejects.size(), 1u);
  // Processed files are renamed so the next scan skips them.
  EXPECT_FALSE(fs::exists(spool + "/a.job"));
  EXPECT_TRUE(fs::exists(spool + "/a.job.done"));
  EXPECT_FALSE(fs::exists(spool + "/b.job"));
  fs::remove_all(dir);
  fs::remove_all(spool);
}

}  // namespace
