#include "core/particles.h"

#include <gtest/gtest.h>

#include <numeric>

#include "fixedpoint/fixed32.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;
using cmdsmc::fixedpoint::Fixed32;

TEST(ParticleStore, ResizeAndPushBack) {
  core::ParticleStore<double> s;
  s.resize(3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.z.size(), 0u);  // 2D: z not allocated
  s.push_back(1, 2, 0, 3, 4, 5, 6, 7, cmdsmc::rng::identity_perm(), 1);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.flags[3], 1);
  EXPECT_EQ(s.x[3], 1.0);
  EXPECT_EQ(s.r1[3], 7.0);
}

TEST(ParticleStore, HasZAllocatesZ) {
  core::ParticleStore<double> s;
  s.has_z = true;
  s.resize(5);
  EXPECT_EQ(s.z.size(), 5u);
  s.push_back(1, 2, 9, 3, 4, 5, 6, 7, cmdsmc::rng::identity_perm());
  EXPECT_EQ(s.z[5], 9.0);
}

TEST(ParticleStore, ReorderAppliesPermutationToEveryArray) {
  cmdp::ThreadPool pool(3);
  core::ParticleStore<double> s;
  const std::size_t n = 10000;
  s.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<double>(i);
    s.x[i] = v;
    s.y[i] = v + 0.1;
    s.ux[i] = v + 0.2;
    s.uy[i] = v + 0.3;
    s.uz[i] = v + 0.4;
    s.r0[i] = v + 0.5;
    s.r1[i] = v + 0.6;
    s.perm[i] = static_cast<cmdsmc::rng::PackedPerm>(i & 0x7fff);
    s.cell[i] = static_cast<std::uint32_t>(i);
    s.flags[i] = static_cast<std::uint8_t>(i & 1);
  }
  // Reverse permutation.
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i)
    order[i] = static_cast<std::uint32_t>(n - 1 - i);
  core::ParticleStore<double> scratch;
  s.reorder(pool, order, scratch);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<double>(n - 1 - i);
    ASSERT_EQ(s.x[i], v);
    ASSERT_EQ(s.y[i], v + 0.1);
    ASSERT_EQ(s.ux[i], v + 0.2);
    ASSERT_EQ(s.uy[i], v + 0.3);
    ASSERT_EQ(s.uz[i], v + 0.4);
    ASSERT_EQ(s.r0[i], v + 0.5);
    ASSERT_EQ(s.r1[i], v + 0.6);
    ASSERT_EQ(s.cell[i], static_cast<std::uint32_t>(n - 1 - i));
    ASSERT_EQ(s.flags[i], static_cast<std::uint8_t>((n - 1 - i) & 1));
  }
}

TEST(ParticleStore, ReorderWorksForFixed32) {
  cmdp::ThreadPool pool(2);
  core::ParticleStore<Fixed32> s;
  const std::size_t n = 5000;
  s.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    s.x[i] = Fixed32::from_raw(static_cast<std::int32_t>(i));
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::reverse(order.begin(), order.end());
  core::ParticleStore<Fixed32> scratch;
  s.reorder(pool, order, scratch);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(s.x[i].raw, static_cast<std::int32_t>(n - 1 - i));
}
