// The cell-block shard partitioner: quantile boundary placement, greedy LPT
// lane assignment, degenerate inputs (hot cells, all-zero cost), plan
// re-evaluation, and the parallel_shards coverage contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cmdp/shard.h"
#include "cmdp/thread_pool.h"

namespace {

using namespace cmdsmc;

// Every cell in [0, ncells) appears in exactly one shard, shards are
// contiguous and ascending, and order/lane_begin index every shard once.
void check_integrity(const cmdp::ShardPlan& plan, std::size_t ncells,
                     unsigned lanes) {
  ASSERT_FALSE(plan.bounds.empty());
  EXPECT_EQ(plan.bounds.front(), 0u);
  EXPECT_EQ(plan.bounds.back(), ncells);
  for (std::size_t s = 0; s + 1 < plan.bounds.size(); ++s)
    EXPECT_LE(plan.bounds[s], plan.bounds[s + 1]);

  EXPECT_EQ(plan.lanes, lanes);
  ASSERT_EQ(plan.lane_begin.size(), lanes + 1);
  EXPECT_EQ(plan.lane_begin.front(), 0u);
  EXPECT_EQ(plan.lane_begin.back(), plan.order.size());
  EXPECT_EQ(plan.order.size(), plan.count());
  std::vector<std::uint32_t> seen(plan.count(), 0);
  for (const std::uint32_t s : plan.order) {
    ASSERT_LT(s, plan.count());
    ++seen[s];
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](std::uint32_t c) { return c == 1; }))
      << "order must visit every shard exactly once";
  // Within a lane the shards stay in ascending cell order (the executor
  // walks them front to back; keeps memory access monotone).
  for (unsigned t = 0; t < lanes; ++t)
    for (std::uint32_t k = plan.lane_begin[t];
         k + 1 < plan.lane_begin[t + 1]; ++k)
      EXPECT_LT(plan.order[k], plan.order[k + 1]);
}

TEST(ShardPlan, UniformCostSplitsAtQuantiles) {
  const std::vector<double> cost(64, 1.0);
  const auto plan = cmdp::build_shard_plan(cost, 8, 4);
  check_integrity(plan, 64, 4);
  ASSERT_EQ(plan.count(), 8u);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(plan.bounds[s + 1] - plan.bounds[s], 8u)
        << "uniform cost must give equal-size shards";
    EXPECT_DOUBLE_EQ(plan.shard_cost[s], 8.0);
  }
  // Equal loads on every lane: perfectly balanced.
  EXPECT_DOUBLE_EQ(plan.imbalance, 1.0);
}

TEST(ShardPlan, BoundariesTrackCostNotCellCount) {
  // All the cost lives in the first quarter (a shock layer): the shards
  // there must be narrow, the downstream ones wide.
  std::vector<double> cost(100, 0.01);
  for (int c = 0; c < 25; ++c) cost[c] = 10.0;
  const auto plan = cmdp::build_shard_plan(cost, 10, 2);
  check_integrity(plan, 100, 2);
  const std::uint32_t first = plan.bounds[1] - plan.bounds[0];
  const std::uint32_t last = plan.bounds[plan.count()] -
                             plan.bounds[plan.count() - 1];
  EXPECT_LT(first, 10u) << "hot region should get narrow shards";
  EXPECT_GT(last, 10u) << "cold region should get wide shards";
}

TEST(ShardPlan, HotCellYieldsEmptyShardsNotASplitCell) {
  // One cell carries ~all the cost across several quantiles.  The cell must
  // not split; the plan absorbs it as empty shards beside one hot shard.
  std::vector<double> cost(16, 1e-6);
  cost[7] = 1000.0;
  const auto plan = cmdp::build_shard_plan(cost, 8, 4);
  check_integrity(plan, 16, 4);
  std::size_t empties = 0, hot = 0;
  for (std::size_t s = 0; s < plan.count(); ++s) {
    const std::uint32_t w = plan.bounds[s + 1] - plan.bounds[s];
    if (w == 0) ++empties;
    if (plan.bounds[s] <= 7 && 7 < plan.bounds[s + 1]) ++hot;
  }
  EXPECT_EQ(hot, 1u) << "cell 7 must land in exactly one shard";
  EXPECT_GT(empties, 0u);
  // One dominant shard on a 4-lane plan: the assignment is (nearly) all on
  // one lane, imbalance ~ lanes.
  EXPECT_GT(plan.imbalance, 3.0);
}

TEST(ShardPlan, GreedyAssignmentBalancesSkewedShards) {
  // Shard costs engineered 8,7,6,...,1 via unit cells; greedy LPT on 2
  // lanes reaches the optimum (18 | 18) here.
  std::vector<double> cost;
  for (int s = 8; s >= 1; --s)
    for (int i = 0; i < s; ++i) cost.push_back(1.0);
  const auto plan = cmdp::build_shard_plan(cost, 8, 2);
  check_integrity(plan, cost.size(), 2);
  std::vector<double> load(2, 0.0);
  for (unsigned t = 0; t < 2; ++t)
    for (std::uint32_t k = plan.lane_begin[t]; k < plan.lane_begin[t + 1];
         ++k)
      load[t] += plan.shard_cost[plan.order[k]];
  EXPECT_DOUBLE_EQ(load[0] + load[1], 36.0);
  EXPECT_NEAR(load[0], load[1], 4.0 + 1e-12)
      << "LPT must not leave more than one shard of spread";
  EXPECT_LE(plan.imbalance, 36.0 / 36.0 + 0.25);
}

TEST(ShardPlan, AllZeroCostFallsBackToEqualCells) {
  const std::vector<double> cost(40, 0.0);
  const auto plan = cmdp::build_shard_plan(cost, 4, 2);
  check_integrity(plan, 40, 2);
  ASSERT_EQ(plan.count(), 4u);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_EQ(plan.bounds[s + 1] - plan.bounds[s], 10u);
}

TEST(ShardPlan, ShardCountClampsToCellCount) {
  const std::vector<double> cost(3, 1.0);
  const auto plan = cmdp::build_shard_plan(cost, 64, 2);
  check_integrity(plan, 3, 2);
  EXPECT_LE(plan.count(), 3u);
  const auto one = cmdp::build_shard_plan(cost, 0, 1);
  check_integrity(one, 3, 1);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_FALSE(one.active()) << "single lane never activates sharding";
}

TEST(ShardPlan, DeterministicForIdenticalInput) {
  std::vector<double> cost(128);
  for (std::size_t c = 0; c < cost.size(); ++c)
    cost[c] = static_cast<double>((c * 2654435761u) % 97) + 0.5;
  const auto a = cmdp::build_shard_plan(cost, 12, 3);
  const auto b = cmdp::build_shard_plan(cost, 12, 3);
  EXPECT_EQ(a.bounds, b.bounds);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.lane_begin, b.lane_begin);
  EXPECT_DOUBLE_EQ(a.imbalance, b.imbalance);
}

TEST(ShardPlan, ImbalanceReevaluationTracksFreshCosts) {
  std::vector<double> cost(64, 1.0);
  auto plan = cmdp::build_shard_plan(cost, 8, 4);
  EXPECT_DOUBLE_EQ(cmdp::shard_plan_imbalance(plan, cost), 1.0);
  // Load drifts into the first shard's cells: the stale assignment's
  // predicted imbalance must rise without any boundary moving.
  const auto bounds_before = plan.bounds;
  for (std::uint32_t c = plan.bounds[0]; c < plan.bounds[1]; ++c)
    cost[c] = 50.0;
  const double imb = cmdp::shard_plan_imbalance(plan, cost);
  EXPECT_GT(imb, 1.5);
  EXPECT_EQ(plan.bounds, bounds_before);
  // shard_cost was refreshed in place.
  EXPECT_DOUBLE_EQ(plan.shard_cost[0],
                   50.0 * (plan.bounds[1] - plan.bounds[0]));
}

TEST(ShardPlan, ParallelShardsCoversEveryCellOnce) {
  std::vector<double> cost(257);
  for (std::size_t c = 0; c < cost.size(); ++c)
    cost[c] = static_cast<double>(c % 13) + 1.0;
  cmdp::ThreadPool pool(4);
  const auto plan = cmdp::build_shard_plan(cost, 16, pool.size());
  ASSERT_TRUE(plan.active());
  std::vector<std::atomic<int>> hits(cost.size());
  for (auto& h : hits) h.store(0);
  cmdp::parallel_shards(pool, plan,
                        [&](std::uint32_t cb, std::uint32_t ce, unsigned) {
                          for (std::uint32_t c = cb; c < ce; ++c)
                            hits[c].fetch_add(1);
                        });
  for (std::size_t c = 0; c < hits.size(); ++c)
    ASSERT_EQ(hits[c].load(), 1) << "cell " << c;
}

}  // namespace
