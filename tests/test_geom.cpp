#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/clip.h"
#include "geom/grid.h"
#include "geom/wedge.h"

namespace geom = cmdsmc::geom;

namespace {
constexpr double kRad = std::numbers::pi / 180.0;
}

TEST(Grid, Indexing2D) {
  geom::Grid g{10, 5, 0};
  g.validate();
  EXPECT_EQ(g.ncells(), 50);
  EXPECT_EQ(g.index(0, 0), 0u);
  EXPECT_EQ(g.index(9, 4), 49u);
  EXPECT_EQ(g.index(3, 2), 23u);
  EXPECT_EQ(g.cell_ix(23), 3);
  EXPECT_EQ(g.cell_iy(23), 2);
  EXPECT_EQ(g.cell_iz(23), 0);
}

TEST(Grid, IndexClampsOutOfRange) {
  geom::Grid g{10, 5, 0};
  EXPECT_EQ(g.index(-3, 2), g.index(0, 2));
  EXPECT_EQ(g.index(99, 2), g.index(9, 2));
  EXPECT_EQ(g.index(3, -1), g.index(3, 0));
  EXPECT_EQ(g.index(3, 50), g.index(3, 4));
}

TEST(Grid, Indexing3D) {
  geom::Grid g{4, 3, 2};
  g.validate();
  EXPECT_TRUE(g.is3d());
  EXPECT_EQ(g.ncells(), 24);
  EXPECT_EQ(g.index(1, 2, 1), static_cast<std::uint32_t>((1 * 3 + 2) * 4 + 1));
  EXPECT_EQ(g.cell_iz(g.index(1, 2, 1)), 1);
  EXPECT_EQ(g.cell_ix(g.index(1, 2, 1)), 1);
  EXPECT_EQ(g.cell_iy(g.index(1, 2, 1)), 2);
}

TEST(Grid, ValidateRejectsBadDimensions) {
  EXPECT_THROW((geom::Grid{0, 5, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((geom::Grid{5, -1, 0}).validate(), std::invalid_argument);
}

TEST(Clip, PolygonAreaTriangleAndSquare) {
  std::vector<geom::Vec2> tri = {{0, 0}, {2, 0}, {0, 2}};
  EXPECT_NEAR(geom::polygon_area(tri), 2.0, 1e-12);
  std::vector<geom::Vec2> sq = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_NEAR(geom::polygon_area(sq), 1.0, 1e-12);
  // Clockwise winding gives negative signed area.
  std::vector<geom::Vec2> cw = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};
  EXPECT_NEAR(geom::polygon_area(cw), -1.0, 1e-12);
}

TEST(Clip, HalfplaneCutsSquareInHalf) {
  std::vector<geom::Vec2> sq = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const auto cut = geom::clip_halfplane(sq, 1.0, 0.0, 0.5);  // x <= 0.5
  EXPECT_NEAR(std::abs(geom::polygon_area(cut)), 0.5, 1e-12);
}

TEST(Clip, RectIntersectionAreas) {
  std::vector<geom::Vec2> tri = {{0, 0}, {4, 0}, {4, 4}};
  // Whole triangle inside a big rect.
  EXPECT_NEAR(geom::intersection_area_rect(tri, -1, -1, 5, 5), 8.0, 1e-12);
  // Unit cell fully inside the triangle: cell (2.5..3.5 is inside? use
  // (2,0)-(3,1): below the diagonal y=x, inside.
  EXPECT_NEAR(geom::intersection_area_rect(tri, 2, 0, 3, 1), 1.0, 1e-12);
  // Cell fully outside.
  EXPECT_NEAR(geom::intersection_area_rect(tri, 0, 3, 1, 4), 0.0, 1e-12);
  // Cell cut by the diagonal y = x: half area.
  EXPECT_NEAR(geom::intersection_area_rect(tri, 1, 1, 2, 2), 0.5, 1e-12);
}

TEST(Wedge, BasicShape) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  EXPECT_NEAR(w.height(), 25.0 * std::tan(30.0 * kRad), 1e-12);
  EXPECT_NEAR(w.apex_x(), 45.0, 1e-12);
  EXPECT_NEAR(w.surface_y(20.0), 0.0, 1e-12);
  EXPECT_NEAR(w.surface_y(32.5), 12.5 * std::tan(30.0 * kRad), 1e-12);
  EXPECT_NEAR(w.surface_y(50.0), 0.0, 1e-12);  // outside footprint
}

TEST(Wedge, InsideTests) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  EXPECT_TRUE(w.inside(30.0, 1.0));    // low above floor, inside triangle
  EXPECT_FALSE(w.inside(30.0, 10.0));  // above the ramp at x=30 (5.77)
  EXPECT_FALSE(w.inside(10.0, 1.0));   // upstream of leading edge
  EXPECT_FALSE(w.inside(46.0, 1.0));   // behind the back face
  EXPECT_FALSE(w.inside(30.0, -1.0));  // below the floor
}

TEST(Wedge, NearestFacePicksShallowestPenetration) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  // Just below the ramp surface: hypotenuse is the nearest face.
  const double x = 30.0;
  const double y = w.surface_y(x) - 0.1;
  auto hit = w.nearest_face(x, y);
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(hit->depth, 0.0);
  EXPECT_NEAR(hit->nx, -std::sin(30.0 * kRad), 1e-12);
  EXPECT_NEAR(hit->ny, std::cos(30.0 * kRad), 1e-12);
  // Just inside the back face.
  auto hit2 = w.nearest_face(44.95, 2.0);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_NEAR(hit2->nx, 1.0, 1e-12);
  EXPECT_NEAR(hit2->ny, 0.0, 1e-12);
  EXPECT_NEAR(hit2->depth, -0.05, 1e-9);
  // Outside: no face.
  EXPECT_FALSE(w.nearest_face(10.0, 1.0).has_value());
}

TEST(Wedge, OpenFractionsMatchAnalyticCells) {
  geom::Wedge w(20.0, 25.0, 45.0 * kRad);  // 45 degrees for easy analytics
  // Cell fully inside the solid: e.g. (30..31, 0..1), surface at y = 10..11.
  EXPECT_NEAR(w.cell_open_fraction(30, 0), 0.0, 1e-12);
  // Cell fully open (well above the ramp).
  EXPECT_NEAR(w.cell_open_fraction(30, 30), 1.0, 1e-12);
  // Cell cut exactly in half by the 45-degree surface: (30..31, 10..11).
  EXPECT_NEAR(w.cell_open_fraction(30, 10), 0.5, 1e-12);
}

TEST(Wedge, OpenFractionTableConservesTriangleArea) {
  geom::Wedge w(20.0, 25.0, 30.0 * kRad);
  geom::Grid g{98, 64, 0};
  const auto table = w.open_fraction_table(g);
  double solid = 0.0;
  for (double f : table) solid += 1.0 - f;
  const double triangle = 0.5 * 25.0 * w.height();
  EXPECT_NEAR(solid, triangle, 1e-9);
}

TEST(Wedge, OpenFractionTable3DRepeatsPerPlane) {
  geom::Wedge w(4.0, 4.0, 30.0 * kRad);
  geom::Grid g{16, 8, 3};
  const auto table = w.open_fraction_table(g);
  for (int ix = 0; ix < g.nx; ++ix)
    for (int iy = 0; iy < g.ny; ++iy) {
      const double f0 = table[g.index(ix, iy, 0)];
      EXPECT_EQ(f0, table[g.index(ix, iy, 1)]);
      EXPECT_EQ(f0, table[g.index(ix, iy, 2)]);
    }
}

TEST(Wedge, RejectsBadParameters) {
  EXPECT_THROW(geom::Wedge(0.0, -1.0, 30.0 * kRad), std::invalid_argument);
  EXPECT_THROW(geom::Wedge(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(geom::Wedge(0.0, 1.0, 95.0 * kRad), std::invalid_argument);
}
